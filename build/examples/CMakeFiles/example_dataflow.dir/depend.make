# Empty dependencies file for example_dataflow.
# This may be replaced when dependencies are built.
