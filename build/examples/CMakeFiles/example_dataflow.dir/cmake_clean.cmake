file(REMOVE_RECURSE
  "CMakeFiles/example_dataflow.dir/dataflow.cpp.o"
  "CMakeFiles/example_dataflow.dir/dataflow.cpp.o.d"
  "dataflow"
  "dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
