# Empty dependencies file for example_flowanalysis.
# This may be replaced when dependencies are built.
