file(REMOVE_RECURSE
  "CMakeFiles/example_flowanalysis.dir/flowanalysis.cpp.o"
  "CMakeFiles/example_flowanalysis.dir/flowanalysis.cpp.o.d"
  "flowanalysis"
  "flowanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flowanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
