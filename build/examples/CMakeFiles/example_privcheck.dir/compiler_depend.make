# Empty compiler generated dependencies file for example_privcheck.
# This may be replaced when dependencies are built.
