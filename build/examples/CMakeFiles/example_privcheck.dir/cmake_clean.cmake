file(REMOVE_RECURSE
  "CMakeFiles/example_privcheck.dir/privcheck.cpp.o"
  "CMakeFiles/example_privcheck.dir/privcheck.cpp.o.d"
  "privcheck"
  "privcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_privcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
