# Empty compiler generated dependencies file for example_filestate.
# This may be replaced when dependencies are built.
