file(REMOVE_RECURSE
  "CMakeFiles/example_filestate.dir/filestate.cpp.o"
  "CMakeFiles/example_filestate.dir/filestate.cpp.o.d"
  "filestate"
  "filestate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_filestate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
