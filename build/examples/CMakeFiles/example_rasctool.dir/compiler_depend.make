# Empty compiler generated dependencies file for example_rasctool.
# This may be replaced when dependencies are built.
