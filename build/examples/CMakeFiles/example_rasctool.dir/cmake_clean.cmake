file(REMOVE_RECURSE
  "CMakeFiles/example_rasctool.dir/rasctool.cpp.o"
  "CMakeFiles/example_rasctool.dir/rasctool.cpp.o.d"
  "rasctool"
  "rasctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rasctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
