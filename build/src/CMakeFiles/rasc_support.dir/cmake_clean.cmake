file(REMOVE_RECURSE
  "CMakeFiles/rasc_support.dir/support/Support.cpp.o"
  "CMakeFiles/rasc_support.dir/support/Support.cpp.o.d"
  "librasc_support.a"
  "librasc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
