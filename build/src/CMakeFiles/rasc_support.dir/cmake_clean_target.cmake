file(REMOVE_RECURSE
  "librasc_support.a"
)
