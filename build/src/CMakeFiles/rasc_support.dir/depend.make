# Empty dependencies file for rasc_support.
# This may be replaced when dependencies are built.
