file(REMOVE_RECURSE
  "CMakeFiles/rasc_progen.dir/progen/ProgramGen.cpp.o"
  "CMakeFiles/rasc_progen.dir/progen/ProgramGen.cpp.o.d"
  "librasc_progen.a"
  "librasc_progen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_progen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
