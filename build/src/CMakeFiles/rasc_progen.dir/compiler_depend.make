# Empty compiler generated dependencies file for rasc_progen.
# This may be replaced when dependencies are built.
