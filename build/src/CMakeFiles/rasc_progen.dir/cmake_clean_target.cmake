file(REMOVE_RECURSE
  "librasc_progen.a"
)
