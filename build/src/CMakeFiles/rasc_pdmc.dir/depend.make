# Empty dependencies file for rasc_pdmc.
# This may be replaced when dependencies are built.
