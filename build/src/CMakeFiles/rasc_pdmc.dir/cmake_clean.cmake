file(REMOVE_RECURSE
  "CMakeFiles/rasc_pdmc.dir/pdmc/Checker.cpp.o"
  "CMakeFiles/rasc_pdmc.dir/pdmc/Checker.cpp.o.d"
  "CMakeFiles/rasc_pdmc.dir/pdmc/Program.cpp.o"
  "CMakeFiles/rasc_pdmc.dir/pdmc/Program.cpp.o.d"
  "CMakeFiles/rasc_pdmc.dir/pdmc/Properties.cpp.o"
  "CMakeFiles/rasc_pdmc.dir/pdmc/Properties.cpp.o.d"
  "librasc_pdmc.a"
  "librasc_pdmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_pdmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
