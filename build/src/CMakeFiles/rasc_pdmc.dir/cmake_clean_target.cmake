file(REMOVE_RECURSE
  "librasc_pdmc.a"
)
