
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ConstraintSystem.cpp" "src/CMakeFiles/rasc_core.dir/core/ConstraintSystem.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/ConstraintSystem.cpp.o.d"
  "/root/repo/src/core/Domains.cpp" "src/CMakeFiles/rasc_core.dir/core/Domains.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/Domains.cpp.o.d"
  "/root/repo/src/core/GroundTerm.cpp" "src/CMakeFiles/rasc_core.dir/core/GroundTerm.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/GroundTerm.cpp.o.d"
  "/root/repo/src/core/ReferenceSolver.cpp" "src/CMakeFiles/rasc_core.dir/core/ReferenceSolver.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/ReferenceSolver.cpp.o.d"
  "/root/repo/src/core/Solver.cpp" "src/CMakeFiles/rasc_core.dir/core/Solver.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/Solver.cpp.o.d"
  "/root/repo/src/core/SubstEnv.cpp" "src/CMakeFiles/rasc_core.dir/core/SubstEnv.cpp.o" "gcc" "src/CMakeFiles/rasc_core.dir/core/SubstEnv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rasc_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
