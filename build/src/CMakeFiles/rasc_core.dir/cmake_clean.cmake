file(REMOVE_RECURSE
  "CMakeFiles/rasc_core.dir/core/ConstraintSystem.cpp.o"
  "CMakeFiles/rasc_core.dir/core/ConstraintSystem.cpp.o.d"
  "CMakeFiles/rasc_core.dir/core/Domains.cpp.o"
  "CMakeFiles/rasc_core.dir/core/Domains.cpp.o.d"
  "CMakeFiles/rasc_core.dir/core/GroundTerm.cpp.o"
  "CMakeFiles/rasc_core.dir/core/GroundTerm.cpp.o.d"
  "CMakeFiles/rasc_core.dir/core/ReferenceSolver.cpp.o"
  "CMakeFiles/rasc_core.dir/core/ReferenceSolver.cpp.o.d"
  "CMakeFiles/rasc_core.dir/core/Solver.cpp.o"
  "CMakeFiles/rasc_core.dir/core/Solver.cpp.o.d"
  "CMakeFiles/rasc_core.dir/core/SubstEnv.cpp.o"
  "CMakeFiles/rasc_core.dir/core/SubstEnv.cpp.o.d"
  "librasc_core.a"
  "librasc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
