file(REMOVE_RECURSE
  "CMakeFiles/rasc_flow.dir/flow/Analysis.cpp.o"
  "CMakeFiles/rasc_flow.dir/flow/Analysis.cpp.o.d"
  "CMakeFiles/rasc_flow.dir/flow/Lang.cpp.o"
  "CMakeFiles/rasc_flow.dir/flow/Lang.cpp.o.d"
  "librasc_flow.a"
  "librasc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
