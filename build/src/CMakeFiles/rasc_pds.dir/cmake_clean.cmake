file(REMOVE_RECURSE
  "CMakeFiles/rasc_pds.dir/pds/Pds.cpp.o"
  "CMakeFiles/rasc_pds.dir/pds/Pds.cpp.o.d"
  "CMakeFiles/rasc_pds.dir/pds/Unidirectional.cpp.o"
  "CMakeFiles/rasc_pds.dir/pds/Unidirectional.cpp.o.d"
  "librasc_pds.a"
  "librasc_pds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_pds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
