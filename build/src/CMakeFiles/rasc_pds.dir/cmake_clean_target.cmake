file(REMOVE_RECURSE
  "librasc_pds.a"
)
