# Empty compiler generated dependencies file for rasc_pds.
# This may be replaced when dependencies are built.
