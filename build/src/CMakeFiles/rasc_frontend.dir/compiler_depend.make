# Empty compiler generated dependencies file for rasc_frontend.
# This may be replaced when dependencies are built.
