file(REMOVE_RECURSE
  "CMakeFiles/rasc_frontend.dir/frontend/ConstraintParser.cpp.o"
  "CMakeFiles/rasc_frontend.dir/frontend/ConstraintParser.cpp.o.d"
  "librasc_frontend.a"
  "librasc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
