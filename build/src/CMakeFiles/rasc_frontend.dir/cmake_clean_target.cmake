file(REMOVE_RECURSE
  "librasc_frontend.a"
)
