file(REMOVE_RECURSE
  "librasc_spec.a"
)
