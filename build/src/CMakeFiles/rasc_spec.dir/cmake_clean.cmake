file(REMOVE_RECURSE
  "CMakeFiles/rasc_spec.dir/spec/SpecParser.cpp.o"
  "CMakeFiles/rasc_spec.dir/spec/SpecParser.cpp.o.d"
  "librasc_spec.a"
  "librasc_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
