# Empty dependencies file for rasc_spec.
# This may be replaced when dependencies are built.
