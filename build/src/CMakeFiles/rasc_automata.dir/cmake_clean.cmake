file(REMOVE_RECURSE
  "CMakeFiles/rasc_automata.dir/automata/Dfa.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/Dfa.cpp.o.d"
  "CMakeFiles/rasc_automata.dir/automata/DfaOps.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/DfaOps.cpp.o.d"
  "CMakeFiles/rasc_automata.dir/automata/Machines.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/Machines.cpp.o.d"
  "CMakeFiles/rasc_automata.dir/automata/Monoid.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/Monoid.cpp.o.d"
  "CMakeFiles/rasc_automata.dir/automata/Nfa.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/Nfa.cpp.o.d"
  "CMakeFiles/rasc_automata.dir/automata/RegexParser.cpp.o"
  "CMakeFiles/rasc_automata.dir/automata/RegexParser.cpp.o.d"
  "librasc_automata.a"
  "librasc_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
