file(REMOVE_RECURSE
  "librasc_automata.a"
)
