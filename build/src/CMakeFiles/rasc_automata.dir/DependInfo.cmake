
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/Dfa.cpp" "src/CMakeFiles/rasc_automata.dir/automata/Dfa.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/Dfa.cpp.o.d"
  "/root/repo/src/automata/DfaOps.cpp" "src/CMakeFiles/rasc_automata.dir/automata/DfaOps.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/DfaOps.cpp.o.d"
  "/root/repo/src/automata/Machines.cpp" "src/CMakeFiles/rasc_automata.dir/automata/Machines.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/Machines.cpp.o.d"
  "/root/repo/src/automata/Monoid.cpp" "src/CMakeFiles/rasc_automata.dir/automata/Monoid.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/Monoid.cpp.o.d"
  "/root/repo/src/automata/Nfa.cpp" "src/CMakeFiles/rasc_automata.dir/automata/Nfa.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/Nfa.cpp.o.d"
  "/root/repo/src/automata/RegexParser.cpp" "src/CMakeFiles/rasc_automata.dir/automata/RegexParser.cpp.o" "gcc" "src/CMakeFiles/rasc_automata.dir/automata/RegexParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rasc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
