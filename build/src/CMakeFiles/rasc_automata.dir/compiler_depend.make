# Empty compiler generated dependencies file for rasc_automata.
# This may be replaced when dependencies are built.
