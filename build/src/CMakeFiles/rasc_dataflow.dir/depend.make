# Empty dependencies file for rasc_dataflow.
# This may be replaced when dependencies are built.
