file(REMOVE_RECURSE
  "librasc_dataflow.a"
)
