file(REMOVE_RECURSE
  "CMakeFiles/rasc_dataflow.dir/dataflow/BitVector.cpp.o"
  "CMakeFiles/rasc_dataflow.dir/dataflow/BitVector.cpp.o.d"
  "librasc_dataflow.a"
  "librasc_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
