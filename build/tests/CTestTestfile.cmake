# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/automata_property_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/flow_pn_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/genkill_test[1]_include.cmake")
include("/root/repo/build/tests/groundterm_test[1]_include.cmake")
include("/root/repo/build/tests/monoid_test[1]_include.cmake")
include("/root/repo/build/tests/pdmc_test[1]_include.cmake")
include("/root/repo/build/tests/pds_test[1]_include.cmake")
include("/root/repo/build/tests/progen_test[1]_include.cmake")
include("/root/repo/build/tests/solver_property_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/substenv_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/unidirectional_test[1]_include.cmake")
