file(REMOVE_RECURSE
  "CMakeFiles/groundterm_test.dir/groundterm_test.cpp.o"
  "CMakeFiles/groundterm_test.dir/groundterm_test.cpp.o.d"
  "groundterm_test"
  "groundterm_test.pdb"
  "groundterm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groundterm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
