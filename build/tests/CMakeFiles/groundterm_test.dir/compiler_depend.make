# Empty compiler generated dependencies file for groundterm_test.
# This may be replaced when dependencies are built.
