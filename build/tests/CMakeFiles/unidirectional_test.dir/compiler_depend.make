# Empty compiler generated dependencies file for unidirectional_test.
# This may be replaced when dependencies are built.
