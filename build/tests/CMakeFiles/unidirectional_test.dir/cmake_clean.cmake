file(REMOVE_RECURSE
  "CMakeFiles/unidirectional_test.dir/unidirectional_test.cpp.o"
  "CMakeFiles/unidirectional_test.dir/unidirectional_test.cpp.o.d"
  "unidirectional_test"
  "unidirectional_test.pdb"
  "unidirectional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unidirectional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
