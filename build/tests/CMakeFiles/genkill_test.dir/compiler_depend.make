# Empty compiler generated dependencies file for genkill_test.
# This may be replaced when dependencies are built.
