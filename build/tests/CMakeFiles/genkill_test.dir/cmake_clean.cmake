file(REMOVE_RECURSE
  "CMakeFiles/genkill_test.dir/genkill_test.cpp.o"
  "CMakeFiles/genkill_test.dir/genkill_test.cpp.o.d"
  "genkill_test"
  "genkill_test.pdb"
  "genkill_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genkill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
