# Empty dependencies file for monoid_test.
# This may be replaced when dependencies are built.
