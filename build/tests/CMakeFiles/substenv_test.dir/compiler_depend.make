# Empty compiler generated dependencies file for substenv_test.
# This may be replaced when dependencies are built.
