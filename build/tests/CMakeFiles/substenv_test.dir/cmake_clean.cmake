file(REMOVE_RECURSE
  "CMakeFiles/substenv_test.dir/substenv_test.cpp.o"
  "CMakeFiles/substenv_test.dir/substenv_test.cpp.o.d"
  "substenv_test"
  "substenv_test.pdb"
  "substenv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substenv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
