file(REMOVE_RECURSE
  "CMakeFiles/automata_property_test.dir/automata_property_test.cpp.o"
  "CMakeFiles/automata_property_test.dir/automata_property_test.cpp.o.d"
  "automata_property_test"
  "automata_property_test.pdb"
  "automata_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automata_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
