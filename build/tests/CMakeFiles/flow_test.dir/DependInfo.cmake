
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/flow_test.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/flow_test.dir/flow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rasc_progen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_pdmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_pds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rasc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
