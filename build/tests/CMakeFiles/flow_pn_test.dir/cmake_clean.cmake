file(REMOVE_RECURSE
  "CMakeFiles/flow_pn_test.dir/flow_pn_test.cpp.o"
  "CMakeFiles/flow_pn_test.dir/flow_pn_test.cpp.o.d"
  "flow_pn_test"
  "flow_pn_test.pdb"
  "flow_pn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_pn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
