# Empty dependencies file for flow_pn_test.
# This may be replaced when dependencies are built.
