file(REMOVE_RECURSE
  "CMakeFiles/pdmc_test.dir/pdmc_test.cpp.o"
  "CMakeFiles/pdmc_test.dir/pdmc_test.cpp.o.d"
  "pdmc_test"
  "pdmc_test.pdb"
  "pdmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
