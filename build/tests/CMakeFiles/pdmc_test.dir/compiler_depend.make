# Empty compiler generated dependencies file for pdmc_test.
# This may be replaced when dependencies are built.
