file(REMOVE_RECURSE
  "CMakeFiles/pds_test.dir/pds_test.cpp.o"
  "CMakeFiles/pds_test.dir/pds_test.cpp.o.d"
  "pds_test"
  "pds_test.pdb"
  "pds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
