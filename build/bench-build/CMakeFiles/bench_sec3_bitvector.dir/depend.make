# Empty dependencies file for bench_sec3_bitvector.
# This may be replaced when dependencies are built.
