file(REMOVE_RECURSE
  "../bench/bench_sec3_bitvector"
  "../bench/bench_sec3_bitvector.pdb"
  "CMakeFiles/bench_sec3_bitvector.dir/bench_sec3_bitvector.cpp.o"
  "CMakeFiles/bench_sec3_bitvector.dir/bench_sec3_bitvector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
