# Empty dependencies file for bench_table1_privilege.
# This may be replaced when dependencies are built.
