file(REMOVE_RECURSE
  "../bench/bench_table1_privilege"
  "../bench/bench_table1_privilege.pdb"
  "CMakeFiles/bench_table1_privilege.dir/bench_table1_privilege.cpp.o"
  "CMakeFiles/bench_table1_privilege.dir/bench_table1_privilege.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_privilege.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
