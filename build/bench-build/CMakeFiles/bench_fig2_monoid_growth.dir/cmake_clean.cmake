file(REMOVE_RECURSE
  "../bench/bench_fig2_monoid_growth"
  "../bench/bench_fig2_monoid_growth.pdb"
  "CMakeFiles/bench_fig2_monoid_growth.dir/bench_fig2_monoid_growth.cpp.o"
  "CMakeFiles/bench_fig2_monoid_growth.dir/bench_fig2_monoid_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_monoid_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
