# Empty compiler generated dependencies file for bench_fig2_monoid_growth.
# This may be replaced when dependencies are built.
