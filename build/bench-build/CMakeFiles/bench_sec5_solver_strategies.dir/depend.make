# Empty dependencies file for bench_sec5_solver_strategies.
# This may be replaced when dependencies are built.
