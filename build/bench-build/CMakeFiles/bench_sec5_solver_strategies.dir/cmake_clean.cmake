file(REMOVE_RECURSE
  "../bench/bench_sec5_solver_strategies"
  "../bench/bench_sec5_solver_strategies.pdb"
  "CMakeFiles/bench_sec5_solver_strategies.dir/bench_sec5_solver_strategies.cpp.o"
  "CMakeFiles/bench_sec5_solver_strategies.dir/bench_sec5_solver_strategies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_solver_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
