file(REMOVE_RECURSE
  "../bench/bench_sec4_core_scaling"
  "../bench/bench_sec4_core_scaling.pdb"
  "CMakeFiles/bench_sec4_core_scaling.dir/bench_sec4_core_scaling.cpp.o"
  "CMakeFiles/bench_sec4_core_scaling.dir/bench_sec4_core_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
