file(REMOVE_RECURSE
  "../bench/bench_sec6_parametric"
  "../bench/bench_sec6_parametric.pdb"
  "CMakeFiles/bench_sec6_parametric.dir/bench_sec6_parametric.cpp.o"
  "CMakeFiles/bench_sec6_parametric.dir/bench_sec6_parametric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
