file(REMOVE_RECURSE
  "../bench/bench_sec7_flow"
  "../bench/bench_sec7_flow.pdb"
  "CMakeFiles/bench_sec7_flow.dir/bench_sec7_flow.cpp.o"
  "CMakeFiles/bench_sec7_flow.dir/bench_sec7_flow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
