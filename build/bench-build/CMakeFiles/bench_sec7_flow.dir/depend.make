# Empty dependencies file for bench_sec7_flow.
# This may be replaced when dependencies are built.
