//===- examples/rascd.cpp - Persistent solve service daemon -----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rascd daemon binary: a thin shell around service/Rascd.h that
/// parses flags, starts the daemon, and turns SIGTERM/SIGINT into a
/// graceful drain (stop admitting, finish in-flight requests, flush a
/// final snapshot of every resident system, exit 0). A client DRAIN
/// op has the same effect. See README ("The solve service") for the
/// wire format and a walkthrough.
///
///   rascd --data DIR [options]
///
///   --host A             numeric IPv4 listen address (127.0.0.1)
///   --port N             listen port; 0 = ephemeral (default)
///   --port-file F        write the bound port to F once listening
///   --data DIR           durable state directory (required)
///   --max-sessions N     admission cap / session pool width (8)
///   --session-deadline S per-solve wall-clock budget, seconds (0)
///   --session-max-edges N    per-session edge budget (2^24)
///   --session-max-steps N    per-session compose-step budget (0)
///   --session-max-memory B   per-session memory budget, bytes (0)
///   --max-memory B       aggregate memory cap across systems (0)
///   --solve-threads N    frontier-parallel closure width per solve (1)
///   --checkpoint-every-pops N  periodic checkpoint cadence (2^14)
///   --idle-timeout-ms N  per-session read/stall budget (30000)
///   --write-timeout-ms N per-response write budget (5000)
///   --retry-after-ms N   backoff hint in Busy frames (200)
///   --max-frame-bytes N  request frame cap (8 MiB)
///
/// Exits 0 after a clean drain, 1 on startup failure.
///
//===----------------------------------------------------------------------===//

#include "service/Rascd.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

using namespace rasc;
using namespace rasc::service;

namespace {

std::atomic<bool> StopRequested{false};

void requestStop(int) {
  StopRequested.store(true, std::memory_order_relaxed);
}

} // namespace

int main(int Argc, char **Argv) {
  RascdOptions Opts;
  const char *PortFile = nullptr;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto strArg = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Argv[I]);
        std::exit(1);
      }
      return Argv[++I];
    };
    auto numArg = [&]() { return std::strtoull(strArg(), nullptr, 10); };
    if (Arg == "--host")
      Opts.Host = strArg();
    else if (Arg == "--port")
      Opts.Port = static_cast<uint16_t>(numArg());
    else if (Arg == "--port-file")
      PortFile = strArg();
    else if (Arg == "--data")
      Opts.DataDir = strArg();
    else if (Arg == "--max-sessions")
      Opts.MaxSessions = static_cast<unsigned>(numArg());
    else if (Arg == "--session-deadline")
      Opts.Session.DeadlineSeconds = std::strtod(strArg(), nullptr);
    else if (Arg == "--session-max-edges")
      Opts.Session.MaxEdges = numArg();
    else if (Arg == "--session-max-steps")
      Opts.Session.MaxComposeSteps = numArg();
    else if (Arg == "--session-max-memory")
      Opts.Session.MaxMemoryBytes = numArg();
    else if (Arg == "--max-memory")
      Opts.MaxTotalMemoryBytes = numArg();
    else if (Arg == "--solve-threads")
      Opts.Session.Threads = static_cast<unsigned>(numArg());
    else if (Arg == "--checkpoint-every-pops")
      Opts.CheckpointEveryPops = numArg();
    else if (Arg == "--idle-timeout-ms")
      Opts.IdleTimeoutMs = static_cast<int>(numArg());
    else if (Arg == "--write-timeout-ms")
      Opts.WriteTimeoutMs = static_cast<int>(numArg());
    else if (Arg == "--retry-after-ms")
      Opts.RetryAfterMs = static_cast<int>(numArg());
    else if (Arg == "--max-frame-bytes")
      Opts.MaxFrameBytes = static_cast<uint32_t>(numArg());
    else {
      std::fprintf(stderr, "unknown option %s\n", Argv[I]);
      return 1;
    }
  }

  std::signal(SIGINT, requestStop);
  std::signal(SIGTERM, requestStop);
  std::signal(SIGPIPE, SIG_IGN);

  Rascd Daemon(Opts);
  if (std::optional<Diag> D = Daemon.start()) {
    std::fprintf(stderr, "rascd: %s\n", D->render().c_str());
    return 1;
  }
  if (PortFile) {
    std::ofstream F(PortFile);
    F << Daemon.port() << "\n";
  }
  std::fprintf(stderr, "rascd: listening on %s:%u (data: %s, %zu "
                       "systems resident)\n",
               Opts.Host.c_str(), Daemon.port(), Opts.DataDir.c_str(),
               Daemon.numResidentSystems());

  // Park until a signal or a client DRAIN asks us to wind down; the
  // actual teardown (stop admitting, finish in-flight work, flush
  // final snapshots) lives in Rascd::stop().
  while (!StopRequested.load(std::memory_order_relaxed) &&
         !Daemon.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::fprintf(stderr, "rascd: draining\n");
  Daemon.stop();
  std::fprintf(stderr, "rascd: drained, exiting\n");
  return 0;
}
