//===- examples/filestate.cpp - Parametric annotations ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6.4 application: tracking per-descriptor file state
/// with parametric annotations open(x)/close(x). Reproduces the
/// Figure 6 walkthrough — including printing the composed substitution
/// environment of Section 6.4.1 — and then checks a buggy program for
/// double-open violations.
///
//===----------------------------------------------------------------------===//

#include "core/Solver.h"
#include "core/SubstEnv.h"
#include "pdmc/Checker.h"
#include "pdmc/Properties.h"

#include <cstdio>

using namespace rasc;

int main() {
  std::printf("== Parametric file-state tracking (Section 6.4) ==\n\n");
  std::printf("Property (Figure 5):\n%s\n", fileStateSpecText().c_str());

  // --- Figure 6 walkthrough at the constraint level --------------------
  //   s1: int fd1 = open("file1");
  //   s2: int fd2 = open("file2");
  //   s3: close(fd1);
  SpecAutomaton Spec = fileStateSpec();
  MonoidDomain Base(Spec.machine());
  SubstEnvDomain Env(Base);

  uint32_t PX = Env.name("x");
  uint32_t Fd1 = Env.name("fd1"), Fd2 = Env.name("fd2");
  AnnId Phi1 = Env.instantiate({{PX, Fd1}}, Base.symbolAnn("open"));
  AnnId Phi2 = Env.instantiate({{PX, Fd2}}, Base.symbolAnn("open"));
  AnnId Phi3 = Env.instantiate({{PX, Fd1}}, Base.symbolAnn("close"));
  std::printf("phi1 = %s\n", Env.toString(Phi1).c_str());
  std::printf("phi2 = %s\n", Env.toString(Phi2).c_str());
  std::printf("phi3 = %s\n", Env.toString(Phi3).c_str());

  AnnId Composed = Env.compose(Phi3, Env.compose(Phi2, Phi1));
  std::printf("\nphi3 ∘ phi2 ∘ phi1 = %s\n", Env.toString(Composed).c_str());

  StateId Closed = *Spec.stateByName("Closed");
  auto stateOf = [&](uint32_t Label) {
    return Spec.stateName(
        Base.apply(Env.lookup(Composed, {{PX, Label}}), Closed));
  };
  std::printf("  after the trace: fd1 is %s, fd2 is %s\n",
              stateOf(Fd1).c_str(), stateOf(Fd2).c_str());

  // --- A buggy program, checked end to end ------------------------------
  //   helper(fd): open(fd3); ...no close...
  //   main: open(fd1); helper(); open(fd1)  <- double open of fd1
  Program P;
  FuncId Main = P.addFunction("main");
  FuncId Helper = P.addFunction("helper");
  StmtId O1 = P.addOp(Main, "open", {"fd1"}, "open(fd1)");
  StmtId CallH = P.addCall(Main, Helper, "helper()");
  StmtId C1 = P.addOp(Main, "close", {"fd1"}, "close(fd1)");
  StmtId O1b = P.addOp(Main, "open", {"fd1"}, "open(fd1) again (ok)");
  StmtId O1c = P.addOp(Main, "open", {"fd1"}, "open(fd1) AGAIN (bug)");
  P.addEdge(P.entry(Main), O1);
  P.addEdge(O1, CallH);
  P.addEdge(CallH, C1);
  P.addEdge(C1, O1b);
  P.addEdge(O1b, O1c);
  StmtId O3 = P.addOp(Helper, "open", {"fd3"}, "open(fd3)");
  StmtId C3 = P.addOp(Helper, "close", {"fd3"}, "close(fd3)");
  P.addEdge(P.entry(Helper), O3);
  P.addEdge(O3, C3);
  P.finalize();

  std::printf("\nChecking a program with a double open of fd1...\n");
  RascChecker Checker(P, Spec);
  std::vector<Violation> Vs = Checker.check();
  for (const Violation &V : Vs) {
    std::printf("  violation at %s (instantiation %s)\n",
                P.describe(V.Where).c_str(), V.Instantiation.c_str());
    for (StmtId S : V.CallStack)
      std::printf("    called from %s\n", P.describe(S).c_str());
  }
  if (Vs.empty())
    std::printf("  no violations (unexpected!)\n");

  MopsChecker Mops(P, Spec);
  std::printf("MOPS baseline agrees: %s\n",
              Mops.check() == Vs ? "yes" : "NO (bug)");
  return 0;
}
