//===- examples/rasccheck.cpp - Standalone proof-log validator ------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
//
// rasccheck — validates a derivation log streamed by the solver
// (SolverOptions::ProofLogPath, or SOLVE proof=1 against rascd).
//
// The binary links *only* the checker library: its CRC, decoding,
// annotation algebra, union-find, SCC, and (for --system) .rasc /
// spec / regex parsers are all independent re-implementations, so the
// verdict does not trust one line of solver code. See DESIGN.md §12.
//
//   rasccheck LOG                 validate the log itself
//   rasccheck LOG --system FILE   additionally prove it is about FILE
//   rasccheck LOG -v              print per-pass obligation counters
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"

#include <cstdio>
#include <cstring>

namespace {

int usage(const char *Argv0, int Code) {
  std::FILE *Out = Code == 0 ? stdout : stderr;
  std::fprintf(
      Out,
      "usage: %s LOG [--system FILE] [-v]\n"
      "\n"
      "Validates a solver derivation log from first principles: every\n"
      "derived edge must be justified by a closure-rule instance over\n"
      "earlier records, every collapse by an identity-constraint cycle,\n"
      "and the processed prefix must be closed under the paper's rules.\n"
      "With --system, the log must additionally prove exactly the\n"
      "constraint system in FILE (re-parsed with the checker's own\n"
      "frontend).\n"
      "\n"
      "exit codes:\n"
      "  0   valid proof, final status Solved\n"
      "  1   valid proof, final status Inconsistent (conflict witnessed)\n"
      "  10  valid partial proof, solver deadline\n"
      "  11  valid partial proof, edge budget exhausted\n"
      "  12  valid partial proof, step budget exhausted\n"
      "  13  valid partial proof, memory budget exhausted\n"
      "  14  valid partial proof, cooperative cancellation\n"
      "  22  invalid derivation (well-formed log, broken justification)\n"
      "  23  malformed input (undecodable log or unparsable --system file)\n"
      "  24  --system cross-check mismatch\n"
      "  25  incomplete proof (torn tail, missing trailer, or a log the\n"
      "      solver abandoned as unproven)\n"
      "  64  bad command line\n",
      Argv0);
  return Code;
}

} // namespace

int main(int argc, char **argv) {
  rasccheck::CheckOptions Opts;
  for (int I = 1; I != argc; ++I) {
    const char *A = argv[I];
    if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0)
      return usage(argv[0], 0);
    if (std::strcmp(A, "-v") == 0 || std::strcmp(A, "--verbose") == 0) {
      Opts.Verbose = true;
    } else if (std::strcmp(A, "--system") == 0) {
      if (++I == argc) {
        std::fprintf(stderr, "rasccheck: --system needs a file\n");
        return 64;
      }
      Opts.SystemPath = argv[I];
    } else if (A[0] == '-') {
      std::fprintf(stderr, "rasccheck: unknown option '%s'\n", A);
      return usage(argv[0], 64);
    } else if (Opts.LogPath.empty()) {
      Opts.LogPath = A;
    } else {
      std::fprintf(stderr, "rasccheck: more than one log path\n");
      return usage(argv[0], 64);
    }
  }
  if (Opts.LogPath.empty())
    return usage(argv[0], 64);

  rasccheck::CheckResult R = rasccheck::checkProofLog(Opts);
  std::fprintf(R.ok() ? stdout : stderr, "rasccheck: %s: %s\n",
               Opts.LogPath.c_str(), R.Message.c_str());
  if (Opts.Verbose)
    std::fprintf(stdout,
                 "rasccheck: %llu chunks, %llu records: %llu edges, %llu "
                 "conflicts, %llu constraints, %llu collapses, %llu fn-var\n"
                 "rasccheck: obligations: %llu transitive, %llu decompose, "
                 "%llu projection, %llu surface\n",
                 static_cast<unsigned long long>(R.Chunks),
                 static_cast<unsigned long long>(R.Records),
                 static_cast<unsigned long long>(R.Edges),
                 static_cast<unsigned long long>(R.Conflicts),
                 static_cast<unsigned long long>(R.Constraints),
                 static_cast<unsigned long long>(R.Collapses),
                 static_cast<unsigned long long>(R.FnVarConstraints),
                 static_cast<unsigned long long>(R.TransitiveObligations),
                 static_cast<unsigned long long>(R.DecomposeObligations),
                 static_cast<unsigned long long>(R.ProjectionObligations),
                 static_cast<unsigned long long>(R.SurfaceObligations));
  return R.ExitCode;
}
