//===- examples/flowanalysis.cpp - Type-based flow analysis -----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 7 application: context-sensitive, field-sensitive label
/// flow with polymorphic recursion and non-structural subtyping, on
/// the Figure 11 program and a larger example. Runs both the primal
/// analysis (terms for calls, regular annotations for pairs) and the
/// dual analysis (Section 7.6), and demonstrates a stack-aware alias
/// query (Section 7.5).
///
//===----------------------------------------------------------------------===//

#include "flow/Analysis.h"

#include <cstdio>

using namespace rasc;

namespace {

const char *ModeName(FlowMode M) {
  return M == FlowMode::Primal ? "primal" : "dual  ";
}

void showFlows(const FlowProgram &P, FExprId Target,
               const char *TargetName) {
  for (FlowMode Mode : {FlowMode::Primal, FlowMode::Dual}) {
    FlowAnalysis FA(P, Mode);
    std::printf("  [%s] literals flowing to %s:", ModeName(Mode),
                TargetName);
    for (FExprId Lit : P.literals())
      if (FA.flows(Lit, Target))
        std::printf(" %ld", P.expr(Lit).LitValue);
    std::printf("\n");
  }
}

} // namespace

int main() {
  std::printf("== Type-based flow analysis (paper Section 7) ==\n");

  // --- Figure 11 --------------------------------------------------------
  const char *Fig11 = R"(
pair (y : int) : (int, int) = (1, y);
main (z : int) : int = pair(2).2;
)";
  std::printf("\n-- Figure 11 --\n%s\n", Fig11);
  std::optional<FlowProgram> P = FlowProgram::parse(Fig11);
  if (!P) {
    std::printf("parse error\n");
    return 1;
  }

  Dfa PairM = buildPairAutomaton(*P);
  std::printf("Pair-matching automaton (Figure 10): %u states, "
              "%u symbols.\n",
              PairM.numStates(), PairM.numSymbols());

  FExprId MainBody = P->functions()[1].Body;
  std::printf("main's result = pair(2).2; which literals reach it?\n");
  showFlows(*P, MainBody, "main's result");
  std::printf("  (2 flows via o_i(B) ⊆ Y ⊆^[2 P ⊆ H, o_i^-1(H) ⊆ T "
              "⊆^]2 V — Figure 12.)\n");

  // --- A richer program: swapping and nesting ---------------------------
  const char *Bigger = R"(
swap (p : (int, int)) : (int, int) = (p.2, p.1);
fst  (p : (int, int)) : int = p.1;
main (z : int) : int = fst(swap((10, 20)));
)";
  std::printf("\n-- swap/fst --\n%s\n", Bigger);
  std::optional<FlowProgram> Q = FlowProgram::parse(Bigger);
  if (!Q) {
    std::printf("parse error\n");
    return 1;
  }
  FExprId QMain = Q->functions()[2].Body;
  std::printf("main = fst(swap((10,20))) — should be exactly 20:\n");
  showFlows(*Q, QMain, "main's result");

  // --- Stack-aware aliasing (Section 7.5) --------------------------------
  const char *AliasSrc = R"(
use  (p : (int, int)) : int = 0;
main (z : int) : int = (use((1, 2)), use((3, 4))).1;
)";
  std::printf("\n-- stack-aware alias queries --\n%s\n", AliasSrc);
  std::optional<FlowProgram> A = FlowProgram::parse(AliasSrc);
  if (!A) {
    std::printf("parse error\n");
    return 1;
  }
  std::vector<FExprId> ArgPairs;
  for (FExprId E = 0; E != A->numExprs(); ++E) {
    const FExpr &Ex = A->expr(E);
    if (Ex.Kind == FExpr::MkPair &&
        A->expr(Ex.Kid0).Kind == FExpr::Lit)
      ArgPairs.push_back(E);
  }
  FlowAnalysis FA(*A, FlowMode::Dual);
  std::printf("use's parameter vs argument (1,2): %s\n",
              FA.mayAlias(FA.paramLabel(0), FA.labelOf(ArgPairs[0]))
                  ? "may alias"
                  : "no alias");
  std::printf("argument (1,2) vs argument (3,4): %s\n",
              FA.mayAlias(FA.labelOf(ArgPairs[0]),
                          FA.labelOf(ArgPairs[1]))
                  ? "may alias (imprecise!)"
                  : "no alias (the solutions are context-sensitive "
                    "term sets)");
  return 0;
}
