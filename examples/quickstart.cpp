//===- examples/quickstart.cpp - Library tour -------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A guided tour of the public API, reproducing Example 2.4 of the
/// paper end to end:
///
///   1. define the annotation language (the 1-bit machine M_1bit of
///      Figure 1) and inspect its representative functions;
///   2. build the constraint system
///        c ⊆^g W   o(W) ⊆^g X   X ⊆ o(Y)   o(Y) ⊆ Z
///   3. solve, and look at the solved form and the least solution.
///
//===----------------------------------------------------------------------===//

#include "automata/Machines.h"
#include "core/Domains.h"
#include "core/Solver.h"

#include <cstdio>

using namespace rasc;

int main() {
  std::printf("== Regularly annotated set constraints: quickstart ==\n\n");

  // --- 1. The annotation language -------------------------------------
  // Annotations are words of a regular language; the solver only ever
  // sees the transition monoid F_M^≡ of its DFA.
  MonoidDomain Dom(buildOneBitMachine());
  const TransitionMonoid &Mon = Dom.monoid();
  std::printf("M_1bit has %u states; |F_M^≡| = %zu classes:\n",
              Dom.machine().numStates(), Mon.size());
  for (FnId F = 0; F != Mon.size(); ++F)
    std::printf("  f%-2u %s%s\n", F, Mon.toString(F).c_str(),
                Mon.acceptingFromStart(F) ? "   (in F_accept)" : "");

  AnnId G = Dom.symbolAnn("g");
  AnnId K = Dom.symbolAnn("k");
  std::printf("\ncompose(f_g, f_g) = f_g: %s\n",
              Dom.compose(G, G) == G ? "yes" : "no");
  std::printf("compose(f_k, f_g) = f_k: %s (a kill cancels a gen)\n",
              Dom.compose(K, G) == K ? "yes" : "no");

  // --- 2. The constraint system (Example 2.4) -------------------------
  ConstraintSystem CS(Dom);
  ConsId C = CS.addConstant("c");
  ConsId O = CS.addConstructor("o", 1);
  VarId W = CS.freshVar("W"), X = CS.freshVar("X");
  VarId Y = CS.freshVar("Y"), Z = CS.freshVar("Z");

  CS.add(CS.cons(C), CS.var(W), G);        // c ⊆^g W
  CS.add(CS.cons(O, {W}), CS.var(X), G);   // o(W) ⊆^g X
  CS.add(CS.var(X), CS.cons(O, {Y}));      // X ⊆ o(Y)
  CS.add(CS.cons(O, {Y}), CS.var(Z));      // o(Y) ⊆ Z

  std::printf("\nSurface constraints:\n");
  for (const Constraint &Con : CS.constraints())
    std::printf("  %s ⊆^%s %s\n", CS.exprToString(Con.Lhs).c_str(),
                Dom.toString(Con.Ann).c_str(),
                CS.exprToString(Con.Rhs).c_str());

  // --- 3. Solve and query ---------------------------------------------
  BidirectionalSolver Solver(CS);
  if (Solver.solve() != BidirectionalSolver::Status::Solved) {
    std::printf("unexpected: system is inconsistent\n");
    return 1;
  }
  std::printf("\nSolved: %llu edges inserted, %llu compositions.\n",
              static_cast<unsigned long long>(
                  Solver.stats().EdgesInserted),
              static_cast<unsigned long long>(
                  Solver.stats().ComposeCalls));

  // The derived transitive constraint c ⊆^{f_g} Y (f_g ∘ f_g = f_g).
  std::printf("\nAnnotations of c in Y:");
  for (AnnId F : Solver.constantAnnotations(C, Y))
    std::printf(" %s", Dom.toString(F).c_str());
  std::printf("\nentails c-in-Y along a word of L(M): %s\n",
              Solver.entailsConstant(C, Y) ? "yes" : "no");

  // The least solution of Z contains the paper's o^{f_g}(c^{f_g}).
  std::printf("\nLeast solution of Z (up to depth 3):\n");
  for (const GroundTerm &T : Solver.groundTerms(Z, 3))
    std::printf("  %s\n", toString(CS, T).c_str());

  // Function-variable constraints produced by the structural rule.
  std::printf("\nRepresentative-function constraints:\n");
  for (const FnVarConstraint &FC : Solver.fnVarConstraints())
    std::printf("  %s ∘ a%u ⊆ a%u\n", Dom.toString(FC.Fn).c_str(),
                FC.From, FC.To);
  return 0;
}
