//===- examples/privcheck.cpp - Pushdown model checking ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6 application: checking the Unix process-privilege
/// property on the paper's Section 6.3 example program, plus an
/// interprocedural variant, with both the annotated-constraint checker
/// and the MOPS-style pushdown baseline. Prints the property (in the
/// Section 8 specification language), the discovered violations, and
/// their witness call stacks.
///
//===----------------------------------------------------------------------===//

#include "pdmc/Checker.h"
#include "pdmc/Properties.h"

#include <cstdio>

using namespace rasc;

namespace {

void report(const char *Tool, const Program &P,
            const std::vector<Violation> &Vs) {
  std::printf("  [%s] %zu violation(s)\n", Tool, Vs.size());
  for (const Violation &V : Vs) {
    std::printf("    at %s", P.describe(V.Where).c_str());
    if (!V.Instantiation.empty())
      std::printf("  (instantiation %s)", V.Instantiation.c_str());
    std::printf("\n");
    for (StmtId S : V.CallStack)
      std::printf("      called from %s\n", P.describe(S).c_str());
    if (!V.EventTrace.empty()) {
      std::printf("      event trace:");
      for (const std::string &Ev : V.EventTrace)
        std::printf(" %s", Ev.c_str());
      std::printf("\n");
    }
  }
}

void checkBoth(const char *Title, const Program &P,
               const SpecAutomaton &Spec) {
  std::printf("\n-- %s --\n", Title);
  RascChecker R(P, Spec);
  report("rasc", P, R.check());
  std::printf("        (%zu constraints, %zu derived edges, %.3fs)\n",
              R.stats().Constraints, R.stats().Derived,
              R.stats().Seconds);
  MopsChecker M(P, Spec);
  report("mops", P, M.check());
}

} // namespace

int main() {
  std::printf("== Process privilege checking (paper Section 6) ==\n\n");
  std::printf("Property (Figure 3), in the Section 8 spec language:\n%s\n",
              simplePrivilegeSpecText().c_str());
  SpecAutomaton Spec = simplePrivilegeSpec();

  // The Section 6.3 example:
  //   s1: seteuid(0);
  //   s2: if (...) { s3: seteuid(getuid()); } else { s4: ... }
  //   s5: execl("/bin/sh", "sh", NULL);
  Program P;
  FuncId Main = P.addFunction("main");
  StmtId S1 = P.addOp(Main, "seteuid_zero", {}, "s1: seteuid(0)");
  StmtId S2 = P.addNop(Main, "s2: if (...)");
  StmtId S3 =
      P.addOp(Main, "seteuid_nonzero", {}, "s3: seteuid(getuid())");
  StmtId S4 = P.addNop(Main, "s4: ...");
  StmtId S5 = P.addOp(Main, "execl", {}, "s5: execl(\"/bin/sh\")");
  P.addEdge(P.entry(Main), S1);
  P.addEdge(S1, S2);
  P.addEdge(S2, S3);
  P.addEdge(S2, S4);
  P.addEdge(S3, S5);
  P.addEdge(S4, S5);
  P.finalize();

  checkBoth("Section 6.3: privilege dropped on one branch only", P, Spec);

  // An interprocedural variant: privilege acquired in a helper, shell
  // executed in another function.
  Program Q;
  FuncId QMain = Q.addFunction("main");
  FuncId Helper = Q.addFunction("become_root");
  FuncId Shell = Q.addFunction("run_shell");
  StmtId CallHelper = Q.addCall(QMain, Helper, "call become_root()");
  StmtId CallShell = Q.addCall(QMain, Shell, "call run_shell()");
  Q.addEdge(Q.entry(QMain), CallHelper);
  Q.addEdge(CallHelper, CallShell);
  StmtId Acq = Q.addOp(Helper, "seteuid_zero", {}, "seteuid(0)");
  Q.addEdge(Q.entry(Helper), Acq);
  StmtId Exec = Q.addOp(Shell, "execl", {}, "execl(\"/bin/sh\")");
  Q.addEdge(Q.entry(Shell), Exec);
  Q.finalize();

  checkBoth("interprocedural: exec in a callee", Q, Spec);

  // The full 11-state model (Table 1's property) distinguishes
  // temporary and permanent privilege drops.
  SpecAutomaton Full = fullPrivilegeSpec();
  std::printf("\nFull model: %u states, %u symbols.\n",
              Full.machine().numStates(), Full.machine().numSymbols());

  Program T;
  FuncId TMain = T.addFunction("main");
  StmtId Tmp = T.addOp(TMain, "seteuid_user", {}, "seteuid(user)");
  StmtId Re = T.addOp(TMain, "seteuid_zero", {}, "seteuid(0)");
  StmtId Ex = T.addOp(TMain, "execl", {}, "execl(...)");
  T.addEdge(T.entry(TMain), Tmp);
  T.addEdge(Tmp, Re);
  T.addEdge(Re, Ex);
  T.finalize();
  checkBoth("temporary drop, regain, exec (full model)", T, Full);
  return 0;
}
