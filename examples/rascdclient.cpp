//===- examples/rascdclient.cpp - rascd client and load harness -*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scripting client and load harness for the rascd solve service:
///
///   rascdclient [--host H] (--port N | --port-file F) CMD ...
///
///   ping                  liveness probe
///   load NAME FILE        create system NAME from FILE's program text
///   attach NAME           check that NAME is resident
///   add NAME FILE         append FILE's statements to NAME
///   retract NAME INDEX    withdraw constraint INDEX (0-based) from
///                         NAME and re-solve incrementally; the
///                         "retract INDEX;" statement is persisted
///                         before the Ok, so it replays on a warm boot
///   solve NAME [--proof]  solve NAME and print the response; the exit
///                         code mirrors rasctool (solved=0,
///                         inconsistent=1, deadline=10, ...). With
///                         --proof the daemon streams a derivation log
///                         to DataDir/NAME.rprf (validate it with
///                         rasccheck; see DESIGN.md §12)
///   entail NAME "c in V"  matched entailment query (Section 3.2)
///   pn NAME "c in V"      PN reachability query (Section 6.2)
///   stats                 print the daemon's metrics JSON
///   drain                 ask the daemon to drain and shut down
///   bench [--connections N] [--ops M] [--json] [--stats-out F]
///                         load test: N concurrent connections, each
///                         creating its own system and cycling
///                         add/solve/entail M times; prints client-side
///                         p50/p99 round-trip latency. Busy responses
///                         are retried with the server's hinted
///                         backoff and counted, not failed.
///
/// Every command retries its whole request script on a Busy response
/// or refused connect under capped exponential backoff with jitter
/// (service/Backoff.h); the server's retry-after-ms hint floors each
/// delay, so admission-control rejections are backpressure, not
/// errors, and simultaneous rejects don't retry in lockstep. Protocol
/// or server errors exit 2.
///
//===----------------------------------------------------------------------===//

#include "service/Backoff.h"
#include "service/Protocol.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace rasc;
using namespace rasc::service;

namespace {

struct GlobalOpts {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
};

void sleepMs(int Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

/// Runs \p Reqs in order on one fresh connection and collects the
/// replies. A Busy frame (or a connection refused/reset during the
/// first exchange, which is how a Busy can be lost on a draining
/// server) restarts the whole script after a capped-exponential,
/// jittered backoff floored by the server's retry-after-ms hint, so a
/// caller's attach+op sequence stays atomic per connection and retry
/// storms decorrelate. \p Seed decorrelates concurrent callers (bench
/// shards) while keeping any single schedule deterministic.
/// \returns false with \p Err set on a protocol/server failure.
bool runScript(const GlobalOpts &G, const std::vector<Frame> &Reqs,
               std::vector<Frame> &Replies, std::string *Err,
               uint64_t *BusyRetries = nullptr,
               std::vector<uint64_t> *LatencyUs = nullptr,
               int MaxAttempts = 200, uint64_t Seed = 0) {
  Backoff B(BackoffPolicy{}, Seed ? Seed : 0x9e3779b97f4a7c15ull);
  for (int Attempt = 0; Attempt < MaxAttempts; ++Attempt) {
    Replies.clear();
    std::string ConnErr;
    int Fd = connectTcp(G.Host, G.Port, &ConnErr);
    if (Fd < 0) {
      // A refused connect while the daemon boots or drains its accept
      // queue is retryable like a Busy, just without a hint.
      if (BusyRetries)
        ++*BusyRetries;
      sleepMs(B.nextDelayMs());
      continue;
    }
    Conn C(Fd);
    bool Restart = false;
    for (const Frame &Req : Reqs) {
      auto T0 = std::chrono::steady_clock::now();
      if (!C.writeFrame(Req.Kind, Req.Body, Err)) {
        Restart = true;
        break;
      }
      Frame R;
      ReadStatus RS = C.readFrame(R, DefaultMaxFrameBytes, nullptr,
                                  /*IdleTimeoutMs=*/30000, Err);
      if (RS != ReadStatus::Ok) {
        if (Err && Err->empty())
          *Err = readStatusName(RS);
        Restart = true;
        break;
      }
      if (R.Kind == Op::Busy) {
        if (BusyRetries)
          ++*BusyRetries;
        sleepMs(B.nextDelayMs(
            std::atoi(kvGet(R.Body, "retry-after-ms").c_str())));
        Restart = true;
        break;
      }
      if (LatencyUs)
        LatencyUs->push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - T0)
                .count()));
      Replies.push_back(std::move(R));
    }
    if (!Restart)
      return true;
  }
  if (Err && Err->empty())
    *Err = "gave up after repeated busy/retry responses";
  return false;
}

std::optional<std::string> readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

int exitCodeForStatus(const std::string &S) {
  if (S == "solved")
    return 0;
  if (S == "inconsistent")
    return 1;
  if (S == "deadline")
    return 10;
  if (S == "edge-limit")
    return 11;
  if (S == "step-limit")
    return 12;
  if (S == "memory-limit")
    return 13;
  if (S == "cancelled")
    return 14;
  return 2;
}

/// One bench connection's work: create a private system, then cycle
/// add / solve / entail, measuring round-trip latency per op.
struct BenchShard {
  uint64_t OpsOk = 0;
  uint64_t Errors = 0;
  uint64_t BusyRetries = 0;
  std::vector<uint64_t> LatUs;
};

void benchWorker(const GlobalOpts &G, int Idx, int Ops, BenchShard &Out) {
  std::string Name =
      "bench-" + std::to_string(getpid()) + "-" + std::to_string(Idx);
  std::string Base = "language regex \"g*\";\n"
                     "constant c;\n"
                     "var X0;\n"
                     "c <= X0;\n"
                     "query c in X0;\n";
  // The whole session is one script so a Busy at admission retries
  // cleanly; the server serializes ops per connection anyway.
  std::vector<Frame> Reqs;
  Reqs.push_back({Op::Load, Name + "\n" + Base});
  int Var = 0;
  for (int I = 0; I < Ops; ++I) {
    switch (I % 3) {
    case 0: {
      ++Var;
      Reqs.push_back({Op::Add, "var X" + std::to_string(Var) + ";\nX" +
                                   std::to_string(Var - 1) + " <= X" +
                                   std::to_string(Var) + ";\n"});
      break;
    }
    case 1:
      Reqs.push_back({Op::Solve, ""});
      break;
    default:
      Reqs.push_back({Op::Entail, "c in X" + std::to_string(Var)});
      break;
    }
  }
  std::vector<Frame> Replies;
  std::string Err;
  if (!runScript(G, Reqs, Replies, &Err, &Out.BusyRetries, &Out.LatUs,
                 /*MaxAttempts=*/200,
                 /*Seed=*/static_cast<uint64_t>(Idx) * 0x9e3779b9u + 1)) {
    ++Out.Errors;
    std::fprintf(stderr, "bench[%d]: %s\n", Idx, Err.c_str());
    return;
  }
  for (const Frame &R : Replies) {
    if (R.Kind == Op::Ok)
      ++Out.OpsOk;
    else {
      ++Out.Errors;
      std::fprintf(stderr, "bench[%d]: server error: %s\n", Idx,
                   R.Body.c_str());
    }
  }
}

uint64_t percentile(std::vector<uint64_t> &V, double Q) {
  if (V.empty())
    return 0;
  size_t I = static_cast<size_t>(Q * static_cast<double>(V.size()));
  return V[std::min(I, V.size() - 1)];
}

int runBench(const GlobalOpts &G, int Connections, int Ops, bool Json,
             const char *StatsOut) {
  std::vector<BenchShard> Shards(Connections);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Connections; ++I)
    Threads.emplace_back(
        [&, I] { benchWorker(G, I, Ops, Shards[I]); });
  for (std::thread &T : Threads)
    T.join();

  std::vector<uint64_t> Lat;
  uint64_t OpsOk = 0, Errors = 0, Busy = 0;
  for (BenchShard &S : Shards) {
    OpsOk += S.OpsOk;
    Errors += S.Errors;
    Busy += S.BusyRetries;
    Lat.insert(Lat.end(), S.LatUs.begin(), S.LatUs.end());
  }
  std::sort(Lat.begin(), Lat.end());
  uint64_t P50 = percentile(Lat, 0.50), P99 = percentile(Lat, 0.99);

  if (Json)
    std::printf("{\"benchmark\":\"service\",\"connections\":%d,"
                "\"ops_per_connection\":%d,\"ops_ok\":%llu,"
                "\"busy_retries\":%llu,\"errors\":%llu,"
                "\"p50_us\":%llu,\"p99_us\":%llu}\n",
                Connections, Ops,
                static_cast<unsigned long long>(OpsOk),
                static_cast<unsigned long long>(Busy),
                static_cast<unsigned long long>(Errors),
                static_cast<unsigned long long>(P50),
                static_cast<unsigned long long>(P99));
  else
    std::printf("service bench: conns=%d ops=%d ok=%llu busy_retries=%llu "
                "errors=%llu p50_us=%llu p99_us=%llu\n",
                Connections, Ops,
                static_cast<unsigned long long>(OpsOk),
                static_cast<unsigned long long>(Busy),
                static_cast<unsigned long long>(Errors),
                static_cast<unsigned long long>(P50),
                static_cast<unsigned long long>(P99));

  if (StatsOut) {
    std::vector<Frame> Replies;
    std::string Err;
    if (!runScript(G, {{Op::Stats, ""}}, Replies, &Err) ||
        Replies[0].Kind != Op::Ok) {
      std::fprintf(stderr, "stats-out: %s\n", Err.c_str());
      return 2;
    }
    std::ofstream F(StatsOut);
    F << Replies[0].Body << "\n";
  }
  return Errors ? 2 : 0;
}

/// Runs a single attach+op (or standalone) script and prints the one
/// interesting reply body.
int runSimple(const GlobalOpts &G, std::vector<Frame> Reqs) {
  std::vector<Frame> Replies;
  std::string Err;
  if (!runScript(G, Reqs, Replies, &Err)) {
    std::fprintf(stderr, "rascdclient: %s\n", Err.c_str());
    return 2;
  }
  std::printf("%s\n", Replies.back().Body.c_str());
  for (const Frame &R : Replies)
    if (R.Kind != Op::Ok) {
      std::fprintf(stderr, "rascdclient: %s\n", R.Body.c_str());
      return 2;
    }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  GlobalOpts G;
  int I = 1;
  auto strArg = [&]() -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "%s needs a value\n", Argv[I]);
      std::exit(1);
    }
    return Argv[++I];
  };
  for (; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--host")
      G.Host = strArg();
    else if (Arg == "--port")
      G.Port = static_cast<uint16_t>(std::atoi(strArg()));
    else if (Arg == "--port-file") {
      std::ifstream F(strArg());
      int P = 0;
      F >> P;
      G.Port = static_cast<uint16_t>(P);
    } else
      break;
  }
  if (I >= Argc || G.Port == 0) {
    std::fprintf(stderr,
                 "usage: rascdclient [--host H] (--port N | --port-file "
                 "F) CMD ...\n");
    return 1;
  }
  std::string_view Cmd = Argv[I];
  auto positional = [&]() -> std::string {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "%s needs an argument\n",
                   std::string(Cmd).c_str());
      std::exit(1);
    }
    return Argv[++I];
  };

  if (Cmd == "ping")
    return runSimple(G, {{Op::Ping, ""}});
  if (Cmd == "stats")
    return runSimple(G, {{Op::Stats, ""}});
  if (Cmd == "drain")
    return runSimple(G, {{Op::Drain, ""}});
  if (Cmd == "attach")
    return runSimple(G, {{Op::Load, positional()}});
  if (Cmd == "load") {
    std::string Name = positional();
    std::string Path = positional();
    std::optional<std::string> Text = readWholeFile(Path);
    if (!Text) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    return runSimple(G, {{Op::Load, Name + "\n" + *Text}});
  }
  if (Cmd == "add") {
    std::string Name = positional();
    std::string Path = positional();
    std::optional<std::string> Text = readWholeFile(Path);
    if (!Text) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    return runSimple(G, {{Op::Load, Name}, {Op::Add, *Text}});
  }
  if (Cmd == "retract") {
    std::string Name = positional();
    std::string Index = positional();
    return runSimple(G, {{Op::Load, Name}, {Op::Retract, Index}});
  }
  if (Cmd == "solve") {
    std::string Name = positional();
    std::string SolveBody;
    if (I + 1 < Argc && std::string_view(Argv[I + 1]) == "--proof") {
      ++I;
      SolveBody = "proof=1";
    }
    std::vector<Frame> Replies;
    std::string Err;
    if (!runScript(G, {{Op::Load, Name}, {Op::Solve, SolveBody}}, Replies,
                   &Err)) {
      std::fprintf(stderr, "rascdclient: %s\n", Err.c_str());
      return 2;
    }
    for (const Frame &R : Replies)
      if (R.Kind != Op::Ok) {
        std::fprintf(stderr, "rascdclient: %s\n", R.Body.c_str());
        return 2;
      }
    std::printf("%s\n", Replies.back().Body.c_str());
    return exitCodeForStatus(kvGet(Replies.back().Body, "status"));
  }
  if (Cmd == "entail" || Cmd == "pn") {
    std::string Name = positional();
    std::string Query = positional();
    return runSimple(
        G, {{Op::Load, Name},
            {Cmd == "entail" ? Op::Entail : Op::QueryPn, Query}});
  }
  if (Cmd == "bench") {
    int Connections = 4, Ops = 21;
    bool Json = false;
    const char *StatsOut = nullptr;
    for (++I; I < Argc; ++I) {
      std::string_view Arg = Argv[I];
      if (Arg == "--connections")
        Connections = std::atoi(strArg());
      else if (Arg == "--ops")
        Ops = std::atoi(strArg());
      else if (Arg == "--json")
        Json = true;
      else if (Arg == "--stats-out")
        StatsOut = strArg();
      else {
        std::fprintf(stderr, "unknown bench option %s\n", Argv[I]);
        return 1;
      }
    }
    return runBench(G, Connections, Ops, Json, StatsOut);
  }
  std::fprintf(stderr, "unknown command '%s'\n", std::string(Cmd).c_str());
  return 1;
}
