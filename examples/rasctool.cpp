//===- examples/rasctool.cpp - Constraint file runner -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line driver for textual constraint problems:
///
///   rasctool [options] file.rasc   solve the file and answer its queries
///   rasctool [options] --batch dir solve every .rasc file in dir
///   rasctool [options]             run the embedded demo (Example 2.4)
///
/// eBPF bytecode front-end (DESIGN.md §13):
///
///   rasctool --ebpf FILE       decode raw eBPF bytecode, build the
///                              CFG, and run all three analyses on it
///                              (map-check typestate, register
///                              init dataflow, context label flow)
///   rasctool --ebpf-batch DIR  the same for every .bpf file under
///                              DIR, all constraint systems solved
///                              concurrently on one BatchSolver pool
///
/// Both honour --threads and --certify; a malformed input is reported
/// as the decoder's structured diagnostic (byte offset and slot) and
/// exits 1.
///
/// Options (resource governance; see DESIGN.md sections 7 and 8):
///
///   --max-edges N    stop after N inserted edges (0 = unlimited)
///   --step-budget N  stop after N compose steps (0 = unlimited)
///   --deadline S     wall-clock budget in seconds (0 = none);
///                    in batch mode this is shared by the whole batch
///   --threads N      single file: frontier-parallel closure workers;
///                    batch: solve pool width (0 = hardware threads)
///   --batch DIR      solve every .rasc file under DIR concurrently on
///                    one SolvePool, then print per-system status and
///                    the aggregate solver statistics
///   --no-resume      report an interrupted solve instead of resuming
///   --explain        on inconsistency, print a derivation witness
///   --retract N      after the solve reaches a fixpoint, withdraw
///                    constraint N (0-based ingestion order) and
///                    re-solve incrementally (DESIGN.md section 11);
///                    repeatable, applied in order. Implies
///                    provenance + incremental indexes. Falls back to
///                    a fresh re-solve if the incremental
///                    preconditions fail (e.g. after cycle collapse).
///   --incremental    solve with the provenance + incremental indexes
///                    maintained even without --retract — needed to
///                    restore/--certify snapshots written by an
///                    incremental solver (e.g. rascd's, which keeps
///                    retraction live by default): snapshot options
///                    are semantic and must match on restore.
///
/// Durability (DESIGN.md section 7, "Durability"):
///
///   --checkpoint P   single file: save crash-safe snapshots to P and
///                    restore from P when it exists, so a killed run
///                    resumes instead of restarting; batch: P is a
///                    directory holding one task-<i>.rsnap per system
///   --checkpoint-every N
///                    also snapshot every N worklist pops (default:
///                    only at the end of each solve call)
///   --certify        independently re-verify the final closure
///                    against the resolution rules (core/Certifier.h)
///
/// Proof logging (DESIGN.md section 12):
///
///   --prove FILE     stream a machine-checkable derivation log to
///                    FILE while solving (SolverOptions::ProofLogPath).
///                    The log is self-describing — the rasccheck tool
///                    validates it without this binary, the solver, or
///                    the input file. Emission degrades, never aborts:
///                    if the log cannot be written (or a retraction
///                    invalidates already-emitted derivations) the
///                    solve continues and the abandonment reason is
///                    reported on stderr.
///   --check FILE     after the run, validate FILE with the embedded
///                    proof checker (the same verdict the standalone
///                    rasccheck binary would give). Combine with
///                    --prove FILE for a solve-then-verify round trip.
///
/// Observability (DESIGN.md section 9):
///
///   --trace FILE     record structured solver events and write a
///                    Chrome trace_event JSON to FILE on exit (load
///                    it at https://ui.perfetto.dev or chrome://tracing)
///   --metrics        print the metrics registry snapshot (counters,
///                    gauges, histograms) as JSON on exit
///   --progress N     print a one-line progress report to stderr
///                    every N seconds while solving (implies metrics
///                    collection for the gauges it reads)
///
/// An interrupted solve is resumed with the budgets lifted (unless
/// --no-resume), demonstrating the solver's resumability contract:
/// the second solve() continues from the persisted closure state and
/// reaches the same fixpoint a fresh unbudgeted run would.
///
/// Exit codes (scriptable; see statusExitCode in core/Solver.h):
/// solved=0, inconsistent=1, and with --no-resume the interrupt kind:
/// deadline=10, edge limit=11, step limit=12, memory limit=13,
/// cancelled=14. A checkpoint that exists but cannot be restored
/// exits 20; a failed --certify exits 21. A failed --check exits with
/// the checker verdict (check/Checker.h): invalid derivation=22,
/// malformed log=23, incomplete proof=25. Usage errors exit 1.
///
/// SIGINT/SIGTERM trip a cooperative cancel flag wired as every
/// solver's CancelFlag: the in-flight solve interrupts with Cancelled
/// at its next governance check instead of dying mid-write, the
/// end-of-solve snapshot still runs when --checkpoint is active, and
/// the process exits 14 — so Ctrl-C during a checkpointed run leaves
/// a restorable snapshot, and rerunning the same command resumes from
/// where the interrupt landed.
///
/// See frontend/ConstraintParser.h for the file format.
///
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "core/BatchSolver.h"
#include "core/Certifier.h"
#include "core/Observe.h"
#include "dataflow/BitVector.h"
#include "ebpf/Cfg.h"
#include "ebpf/Decode.h"
#include "ebpf/Lower.h"
#include "flow/Analysis.h"
#include "frontend/ConstraintParser.h"
#include "pdmc/Checker.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace rasc;

namespace {

using Status = BidirectionalSolver::Status;

/// Set by SIGINT/SIGTERM and wired as every solver's CancelFlag; the
/// resume loops check it so a signal ends the run with the Cancelled
/// exit code instead of re-solving forever against a set flag.
std::atomic<bool> InterruptRequested{false};

void requestInterrupt(int) {
  InterruptRequested.store(true, std::memory_order_relaxed);
}

const char *Demo = R"(# Example 2.4 (paper Section 2.4) over the 1-bit language.
language regex "(g | k)* g";

constant c;
constructor o 1;
var W X Y Z;

c <= [g] W;
o(W) <= [g] X;
X <= o(Y);
o(Y) <= Z;

query c in W;
query c in Y;
query c in Z;
query pn c in Z;
)";

const char *statusName(Status S) {
  switch (S) {
  case Status::Solved:
    return "solved";
  case Status::Inconsistent:
    return "inconsistent";
  case Status::EdgeLimit:
    return "edge limit";
  case Status::StepLimit:
    return "step limit";
  case Status::Deadline:
    return "deadline";
  case Status::MemoryLimit:
    return "memory limit";
  case Status::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

struct CliOptions {
  SolverOptions Solver;
  unsigned Threads = 1;
  bool Resume = true;
  bool Explain = false;
  std::string CheckpointPath; // batch mode: a directory
  bool Certify = false;
  std::vector<uint32_t> Retract; // applied in order after the solve
  std::string CheckPath;         // --check: validate this proof log
};

/// Runs the standalone proof checker on \p Path and prints its
/// verdict; \returns the checker exit code (0/1 = valid proof).
int checkProof(const std::string &Path) {
  rasccheck::CheckOptions CO;
  CO.LogPath = Path;
  rasccheck::CheckResult R = rasccheck::checkProofLog(CO);
  std::fprintf(R.ok() ? stdout : stderr, "rasccheck: %s: %s\n",
               Path.c_str(), R.Message.c_str());
  return R.ExitCode;
}

/// Runs the independent certifier and prints its verdict; \returns
/// the process exit code (0 = certified).
int certify(const BidirectionalSolver &Solver, const char *Name) {
  CertificationReport Rep = certifyFixpoint(Solver);
  std::printf("%s: %s\n", Name, Rep.summary().c_str());
  if (Rep.Ok)
    return 0;
  for (const std::string &F : Rep.Failures)
    std::fprintf(stderr, "  %s\n", F.c_str());
  return ExitCodeCertifyFailed;
}

int run(const std::string &Source, const char *Name, CliOptions Cli) {
  Expected<ConstraintProgram> P = ConstraintProgram::parseEx(Source);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, P.error().render().c_str());
    return 1;
  }

  const MonoidDomain &Dom = P->domain();
  std::printf("%s: %zu constraints, annotation language with %u "
              "states, |F_M^≡| = %zu\n",
              Name, P->system().constraints().size(),
              Dom.machine().numStates(), Dom.size());

  Cli.Solver.TrackProvenance |= Cli.Explain;
  if (!Cli.Retract.empty()) {
    // The retraction indexes must exist from the first solve.
    Cli.Solver.TrackProvenance = true;
    Cli.Solver.Incremental = true;
  }
  Cli.Solver.Threads = Cli.Threads;
  Cli.Solver.CheckpointPath = Cli.CheckpointPath;
  BidirectionalSolver Solver(P->system(), Cli.Solver);
  if (!Cli.CheckpointPath.empty() &&
      std::filesystem::exists(Cli.CheckpointPath)) {
    // A checkpoint that exists must restore: a corrupt or mismatched
    // one is a distinct, scriptable failure (the caller decides
    // whether to delete it and start over).
    if (std::optional<Diag> D = Solver.restore(Cli.CheckpointPath)) {
      std::fprintf(stderr, "%s\n", D->render().c_str());
      return ExitCodeCorruptSnapshot;
    }
    std::printf("restored checkpoint %s (%zu edges, %zu pending)\n",
                Cli.CheckpointPath.c_str(),
                Solver.processedEdges() + Solver.pendingEdges(),
                Solver.pendingEdges());
  }
  Status S = Solver.solve();
  while (BidirectionalSolver::isInterrupted(S)) {
    std::printf("interrupted (%s) after %llu edges, %llu compositions\n",
                statusName(S),
                static_cast<unsigned long long>(
                    Solver.stats().EdgesInserted),
                static_cast<unsigned long long>(
                    Solver.stats().ComposeCalls));
    if (!Cli.Resume)
      return statusExitCode(S);
    if (S == Status::Cancelled &&
        InterruptRequested.load(std::memory_order_relaxed)) {
      // A signal, not a budget: resuming would immediately re-cancel.
      // The end-of-solve snapshot (when --checkpoint is active) was
      // already flushed by solve(), so rerunning resumes from here.
      std::printf("cancelled by signal%s\n",
                  Cli.CheckpointPath.empty() ? ""
                                             : " (checkpoint flushed)");
      return statusExitCode(S);
    }
    std::printf("resuming with budgets lifted...\n");
    Solver.options().MaxEdges = 0;
    Solver.options().MaxComposeSteps = 0;
    Solver.options().DeadlineSeconds = 0;
    Solver.options().MaxMemoryBytes = 0;
    S = Solver.solve();
  }

  for (uint32_t Idx : Cli.Retract) {
    // Flag the constraint in the system first (retract() validates the
    // flag), then invalidate its derivation cone and re-close.
    std::optional<Diag> FlagDiag =
        P->addStatements("retract " + std::to_string(Idx) + ";", nullptr);
    if (FlagDiag) {
      std::fprintf(stderr, "%s: %s\n", Name, FlagDiag->render().c_str());
      return 1;
    }
    uint64_t RemovedBefore = Solver.stats().RetractedEdges;
    uint64_t RequeuedBefore = Solver.stats().RequeuedEdges;
    Expected<Status> RS = Solver.retract(Idx);
    if (RS) {
      S = *RS;
      std::printf("retracted constraint %u: removed %llu edges, "
                  "requeued %llu, now %s\n",
                  Idx,
                  static_cast<unsigned long long>(
                      Solver.stats().RetractedEdges - RemovedBefore),
                  static_cast<unsigned long long>(
                      Solver.stats().RequeuedEdges - RequeuedBefore),
                  statusName(S));
    } else {
      // E.g. cycle elimination collapsed variables: representatives
      // cannot be un-merged, so re-solve the edited system fresh.
      std::printf("retract %u: %s; re-solving from scratch\n", Idx,
                  RS.error().message().c_str());
      Solver.resetToFresh();
      S = Solver.solve();
    }
  }

  if (!Cli.Solver.ProofLogPath.empty())
    if (const std::optional<Diag> &D = Solver.lastProofDiag())
      std::fprintf(stderr, "%s: proof log abandoned: %s\n", Name,
                   D->render().c_str());

  const SolverStats &Stats = Solver.stats();
  std::printf("%s: %llu edges, %llu compositions, %llu function "
              "constraints%s\n\n",
              statusName(S),
              static_cast<unsigned long long>(Stats.EdgesInserted),
              static_cast<unsigned long long>(Stats.ComposeCalls),
              static_cast<unsigned long long>(Stats.FnVarConstraints),
              Stats.Resumes ? " (resumed)" : "");

  if (S == Status::Inconsistent && Cli.Explain &&
      !Solver.conflicts().empty()) {
    std::printf("why inconsistent:\n");
    Expected<std::vector<std::string>> W = Solver.conflictWitnessEx(0);
    if (W)
      for (const std::string &Line : *W)
        std::printf("  %s\n", Line.c_str());
    else
      std::printf("  %s\n", W.error().message().c_str());
    std::printf("\n");
  }

  for (const ConstraintProgram::Answer &A : P->answer(Solver))
    std::printf("  %-40s %s\n", A.Q->Text.c_str(),
                A.Holds ? "holds" : "does not hold");

  if (Cli.Certify)
    if (int Exit = certify(Solver, Name))
      return Exit;
  if (!Cli.CheckPath.empty())
    if (int Exit = checkProof(Cli.CheckPath);
        Exit >= rasccheck::ExitInvalidDerivation)
      return Exit;
  return statusExitCode(S);
}

/// Batch mode: every .rasc file under \p Dir becomes one solver task
/// on one pool; the --deadline budget is shared by the whole batch.
int runBatch(const std::string &Dir, CliOptions Cli) {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC))
    if (E.is_regular_file() && E.path().extension() == ".rasc")
      Paths.push_back(E.path().string());
  if (EC) {
    std::fprintf(stderr, "cannot read %s: %s\n", Dir.c_str(),
                 EC.message().c_str());
    return 1;
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "no .rasc files under %s\n", Dir.c_str());
    return 1;
  }
  std::sort(Paths.begin(), Paths.end());

  std::vector<ConstraintProgram> Programs;
  for (const std::string &Path : Paths) {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << File.rdbuf();
    Expected<ConstraintProgram> P = ConstraintProgram::parseEx(SS.str());
    if (!P) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                   P.error().render().c_str());
      return 1;
    }
    Programs.push_back(std::move(*P));
  }

  // One solver per system; within the batch each task solves
  // sequentially (the pool supplies the parallelism).
  std::vector<std::unique_ptr<BidirectionalSolver>> Solvers;
  std::vector<BidirectionalSolver *> Ptrs;
  for (ConstraintProgram &P : Programs) {
    Solvers.push_back(
        std::make_unique<BidirectionalSolver>(P.system(), Cli.Solver));
    Ptrs.push_back(Solvers.back().get());
  }

  BatchSolver::Options BO;
  BO.Threads = Cli.Threads;
  BO.DeadlineSeconds = Cli.Solver.DeadlineSeconds;
  BO.CancelFlag = &InterruptRequested;
  BO.CheckpointDir = Cli.CheckpointPath;
  BO.CheckpointEveryPops = Cli.Solver.CheckpointEveryPops;
  BatchSolver Batch(BO);
  std::printf("batch: %zu systems on %u threads\n\n", Programs.size(),
              Batch.numThreads());
  std::vector<BatchSolver::Result> Results = Batch.solveAll(Ptrs);

  bool Interrupted = false;
  for (const BatchSolver::Result &R : Results)
    Interrupted |= BidirectionalSolver::isInterrupted(R.St);
  if (Interrupted && Cli.Resume &&
      !InterruptRequested.load(std::memory_order_relaxed)) {
    std::printf("interrupted tasks; resuming with budgets lifted...\n");
    for (std::unique_ptr<BidirectionalSolver> &S : Solvers) {
      S->options().MaxEdges = 0;
      S->options().MaxComposeSteps = 0;
      S->options().DeadlineSeconds = 0;
      S->options().MaxMemoryBytes = 0;
    }
    BO.DeadlineSeconds = 0;
    BatchSolver Resume(BO);
    Results = Resume.solveAll(Ptrs);
  }

  int Exit = 0;
  SolverStats Total;
  for (size_t I = 0; I != Programs.size(); ++I) {
    const SolverStats &St = Solvers[I]->stats();
    Total += St;
    std::printf("%s: %s, %llu edges, %llu compositions (%.3fs)\n",
                Paths[I].c_str(), statusName(Results[I].St),
                static_cast<unsigned long long>(St.EdgesInserted),
                static_cast<unsigned long long>(St.ComposeCalls),
                Results[I].Seconds);
    Exit = std::max(Exit, statusExitCode(Results[I].St));
    if (BidirectionalSolver::isInterrupted(Results[I].St))
      continue;
    for (const ConstraintProgram::Answer &A :
         Programs[I].answer(*Solvers[I]))
      std::printf("  %-40s %s\n", A.Q->Text.c_str(),
                  A.Holds ? "holds" : "does not hold");
    if (Cli.Certify)
      if (int CE = certify(*Solvers[I], Paths[I].c_str()))
        Exit = std::max(Exit, CE);
  }
  std::printf("\nbatch total: %llu edges, %llu compositions, "
              "%llu parallel rounds\n",
              static_cast<unsigned long long>(Total.EdgesInserted),
              static_cast<unsigned long long>(Total.ComposeCalls),
              static_cast<unsigned long long>(Total.ParallelRounds));
  return Exit;
}

//===----------------------------------------------------------------------===//
// eBPF bytecode front-end (--ebpf / --ebpf-batch)
//===----------------------------------------------------------------------===//

std::optional<std::vector<uint8_t>> readBytes(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  if (!File)
    return std::nullopt;
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(File)),
                              std::istreambuf_iterator<char>());
}

/// One decoded program's three analyses. Heap-pinned: the analysis
/// objects hold references into the lowerings, so the whole bundle is
/// created in place and never moved.
struct EbpfAnalyses {
  ebpf::Cfg G;
  ebpf::PdmcLowering Pd;
  ebpf::DataflowLowering Df;
  ebpf::FlowLowering Fl;
  std::unique_ptr<RascChecker> Checker;
  std::unique_ptr<AnnotatedBitVectorAnalysis> Reg;
  std::unique_ptr<FlowAnalysis> Flow;
};

std::unique_ptr<EbpfAnalyses> makeEbpfAnalyses(ebpf::Cfg G,
                                               const SpecAutomaton &Spec,
                                               const SolverOptions &Opts) {
  auto A = std::make_unique<EbpfAnalyses>();
  A->G = std::move(G);
  A->Pd = ebpf::lowerToProgram(A->G);
  A->Df = ebpf::lowerToDataflow(A->G);
  A->Fl = ebpf::lowerToFlowProgram(A->G);
  A->Checker = std::make_unique<RascChecker>(*A->Pd.Prog, Spec);
  A->Checker->setSolverOptions(Opts);
  A->Reg = std::make_unique<AnnotatedBitVectorAnalysis>(*A->Df.Problem);
  A->Flow = std::make_unique<FlowAnalysis>(A->Fl.Prog, FlowMode::Primal);
  return A;
}

int runEbpf(const std::string &Path, CliOptions Cli) {
  std::optional<std::vector<uint8_t>> Bytes = readBytes(Path);
  if (!Bytes) {
    std::fprintf(stderr, "cannot open %s\n", Path.c_str());
    return 1;
  }
  Expected<ebpf::DecodedProgram> D = ebpf::decode(*Bytes);
  if (!D) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                 D.error().render().c_str());
    return 1;
  }
  ebpf::Cfg G = ebpf::buildCfg(std::move(*D));
  std::printf("%s: %u instructions (%u slots), %u blocks, %u edges\n\n%s\n",
              Path.c_str(), G.Prog.numInsns(), G.Prog.numSlots(),
              G.numBlocks(), G.numEdges(), ebpf::dump(G.Prog).c_str());

  SolverOptions Opts = Cli.Solver;
  Opts.Threads = Cli.Threads;
  SpecAutomaton Spec = ebpf::mapCheckSpec();
  std::unique_ptr<EbpfAnalyses> A =
      makeEbpfAnalyses(std::move(G), Spec, Opts);

  std::vector<Violation> Violations = A->Checker->check();
  std::printf("map-check: %zu violation(s)\n", Violations.size());
  for (const Violation &V : Violations)
    std::printf("  unchecked dereference at %s\n",
                A->Pd.Prog->stmt(V.Where).Note.c_str());

  A->Reg->prepare(Opts);
  A->Reg->solve();
  std::vector<ebpf::UninitRead> Uninit = ebpf::uninitReads(A->Df, *A->Reg);
  std::printf("register init: %zu read(s) before initialization\n",
              Uninit.size());
  for (const ebpf::UninitRead &U : Uninit)
    std::printf("  r%u %s at %u: %s\n", U.Reg,
                U.Definite ? "never initialized" : "maybe uninitialized",
                A->G.Prog.SlotOf[U.InsnIdx],
                ebpf::toString(A->G.Prog.Insns[U.InsnIdx]).c_str());

  A->Flow->prepare(Opts);
  bool Ctx = A->Flow->flowsPN(A->Fl.CtxLit, A->Fl.ResultExpr);
  std::printf("label flow: context pointer (r1) %s to the return value\n",
              Ctx ? "flows" : "does not flow");

  if (Cli.Certify) {
    if (int E = certify(*A->Checker->solver(), "map-check"))
      return E;
    if (int E = certify(*A->Reg->solver(), "register init"))
      return E;
    if (int E = certify(A->Flow->solver(), "label flow"))
      return E;
  }
  return 0;
}

/// Batch mode: every .bpf file under \p Dir, the three constraint
/// systems per program all solved concurrently on one pool.
int runEbpfBatch(const std::string &Dir, CliOptions Cli) {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC))
    if (E.is_regular_file() && E.path().extension() == ".bpf")
      Paths.push_back(E.path().string());
  if (EC) {
    std::fprintf(stderr, "cannot read %s: %s\n", Dir.c_str(),
                 EC.message().c_str());
    return 1;
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "no .bpf files under %s\n", Dir.c_str());
    return 1;
  }
  std::sort(Paths.begin(), Paths.end());

  int Exit = 0;
  // Each task solves sequentially; the pool supplies the parallelism.
  SolverOptions Opts = Cli.Solver;
  Opts.Threads = 1;
  SpecAutomaton Spec = ebpf::mapCheckSpec();
  std::vector<std::string> Kept;
  std::vector<std::unique_ptr<EbpfAnalyses>> All;
  for (const std::string &Path : Paths) {
    std::optional<std::vector<uint8_t>> Bytes = readBytes(Path);
    if (!Bytes) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      Exit = std::max(Exit, 1);
      continue;
    }
    Expected<ebpf::DecodedProgram> D = ebpf::decode(*Bytes);
    if (!D) {
      std::fprintf(stderr, "%s: %s\n", Path.c_str(),
                   D.error().render().c_str());
      Exit = std::max(Exit, 1);
      continue;
    }
    Kept.push_back(Path);
    All.push_back(makeEbpfAnalyses(ebpf::buildCfg(std::move(*D)), Spec,
                                   Opts));
  }
  if (All.empty())
    return std::max(Exit, 1);

  std::vector<BidirectionalSolver *> Ptrs;
  for (std::unique_ptr<EbpfAnalyses> &A : All) {
    A->Checker->prepare();
    A->Reg->prepare(Opts);
    A->Flow->prepare(Opts);
    Ptrs.push_back(A->Checker->solver());
    Ptrs.push_back(A->Reg->solver());
    // FlowAnalysis re-solves lazily on the first query; handing its
    // solver to the pool just brings it to the fixpoint early.
    Ptrs.push_back(const_cast<BidirectionalSolver *>(&A->Flow->solver()));
  }

  BatchSolver::Options BO;
  BO.Threads = Cli.Threads;
  BO.DeadlineSeconds = Cli.Solver.DeadlineSeconds;
  BO.CancelFlag = &InterruptRequested;
  BatchSolver Batch(BO);
  std::printf("ebpf batch: %zu programs (%zu systems) on %u threads\n\n",
              All.size(), Ptrs.size(), Batch.numThreads());
  std::vector<BatchSolver::Result> Results = Batch.solveAll(Ptrs);

  size_t TotalInsns = 0, TotalViolations = 0, TotalUninit = 0,
         TotalCtxFlows = 0;
  for (size_t I = 0; I != All.size(); ++I) {
    EbpfAnalyses &A = *All[I];
    int FileExit = 0;
    for (size_t S = 0; S != 3; ++S)
      FileExit = std::max(FileExit, statusExitCode(Results[3 * I + S].St));
    Exit = std::max(Exit, FileExit);

    std::vector<Violation> Violations = A.Checker->collectViolations();
    A.Reg->finalize();
    std::vector<ebpf::UninitRead> Uninit = ebpf::uninitReads(A.Df, *A.Reg);
    bool Ctx = A.Flow->flowsPN(A.Fl.CtxLit, A.Fl.ResultExpr);
    TotalInsns += A.G.Prog.numInsns();
    TotalViolations += Violations.size();
    TotalUninit += Uninit.size();
    TotalCtxFlows += Ctx;
    std::printf("%s: %u insns, %u blocks; %zu map-check violation(s), "
                "%zu uninit read(s), ctx->ret %s\n",
                Kept[I].c_str(), A.G.Prog.numInsns(), A.G.numBlocks(),
                Violations.size(), Uninit.size(), Ctx ? "yes" : "no");
    if (Cli.Certify) {
      if (int E = certify(*A.Checker->solver(), Kept[I].c_str()))
        Exit = std::max(Exit, E);
      if (int E = certify(*A.Reg->solver(), Kept[I].c_str()))
        Exit = std::max(Exit, E);
      if (int E = certify(A.Flow->solver(), Kept[I].c_str()))
        Exit = std::max(Exit, E);
    }
  }
  std::printf("\nebpf batch total: %zu programs, %zu instructions, "
              "%zu violations, %zu uninit reads, %zu ctx-flows\n",
              All.size(), TotalInsns, TotalViolations, TotalUninit,
              TotalCtxFlows);
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  const char *Path = nullptr;
  const char *BatchDir = nullptr;
  const char *EbpfPath = nullptr;
  const char *EbpfDir = nullptr;
  const char *TracePath = nullptr;
  bool Metrics = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto numArg = [&](uint64_t &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Argv[I]);
        return false;
      }
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    if (Arg == "--max-edges") {
      if (!numArg(Cli.Solver.MaxEdges))
        return 1;
    } else if (Arg == "--step-budget") {
      if (!numArg(Cli.Solver.MaxComposeSteps))
        return 1;
    } else if (Arg == "--deadline") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--deadline needs a value\n");
        return 1;
      }
      Cli.Solver.DeadlineSeconds = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--threads") {
      uint64_t N = 0;
      if (!numArg(N))
        return 1;
      Cli.Threads = static_cast<unsigned>(N);
    } else if (Arg == "--batch") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--batch needs a directory\n");
        return 1;
      }
      BatchDir = Argv[++I];
    } else if (Arg == "--ebpf") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--ebpf needs a file\n");
        return 1;
      }
      EbpfPath = Argv[++I];
    } else if (Arg == "--ebpf-batch") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--ebpf-batch needs a directory\n");
        return 1;
      }
      EbpfDir = Argv[++I];
    } else if (Arg == "--checkpoint") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--checkpoint needs a path\n");
        return 1;
      }
      Cli.CheckpointPath = Argv[++I];
    } else if (Arg == "--checkpoint-every") {
      if (!numArg(Cli.Solver.CheckpointEveryPops))
        return 1;
    } else if (Arg == "--trace") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--trace needs a file\n");
        return 1;
      }
      TracePath = Argv[++I];
    } else if (Arg == "--metrics") {
      Metrics = true;
    } else if (Arg == "--progress") {
      uint64_t N = 0;
      if (!numArg(N))
        return 1;
      observe::setProgressEverySeconds(static_cast<unsigned>(N));
      observe::setMetricsEnabled(true);
    } else if (Arg == "--retract") {
      uint64_t N = 0;
      if (!numArg(N))
        return 1;
      Cli.Retract.push_back(static_cast<uint32_t>(N));
    } else if (Arg == "--incremental") {
      Cli.Solver.Incremental = true;
      Cli.Solver.TrackProvenance = true;
    } else if (Arg == "--prove") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--prove needs a file\n");
        return 1;
      }
      Cli.Solver.ProofLogPath = Argv[++I];
    } else if (Arg == "--check") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--check needs a file\n");
        return 1;
      }
      Cli.CheckPath = Argv[++I];
    } else if (Arg == "--certify") {
      Cli.Certify = true;
    } else if (Arg == "--no-resume") {
      Cli.Resume = false;
    } else if (Arg == "--explain") {
      Cli.Explain = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", Argv[I]);
      return 1;
    } else {
      Path = Argv[I];
    }
  }

  if (BatchDir &&
      (!Cli.Solver.ProofLogPath.empty() || !Cli.CheckPath.empty())) {
    // One log path cannot serve a pool of solvers writing concurrently.
    std::fprintf(stderr,
                 "--prove/--check apply to a single system, not --batch\n");
    return 1;
  }

  // Cooperative cancellation: a signal interrupts the solve at its
  // next governance check (Status::Cancelled, exit 14), letting the
  // end-of-solve checkpoint and trace/metrics epilogues still run.
  std::signal(SIGINT, requestInterrupt);
  std::signal(SIGTERM, requestInterrupt);
  Cli.Solver.CancelFlag = &InterruptRequested;

  if (TracePath)
    trace::setEnabled(true);
  if (Metrics)
    observe::setMetricsEnabled(true);

  int Exit;
  if (EbpfPath) {
    Exit = runEbpf(EbpfPath, Cli);
  } else if (EbpfDir) {
    Exit = runEbpfBatch(EbpfDir, Cli);
  } else if (BatchDir) {
    Exit = runBatch(BatchDir, Cli);
  } else if (!Path) {
    std::printf("(no input file; running the embedded Example 2.4 "
                "demo)\n\n");
    Exit = run(Demo, "demo", Cli);
  } else {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "cannot open %s\n", Path);
      return 1;
    }
    std::ostringstream SS;
    SS << File.rdbuf();
    Exit = run(SS.str(), Path, Cli);
  }

  if (TracePath) {
    trace::setEnabled(false);
    std::string Err;
    if (!trace::writeChromeJson(TracePath, &Err)) {
      std::fprintf(stderr, "cannot write trace: %s\n", Err.c_str());
      Exit = std::max(Exit, 1);
    } else {
      std::fprintf(stderr, "wrote %llu trace events to %s (%llu dropped)\n",
                   static_cast<unsigned long long>(trace::eventCount()),
                   TracePath,
                   static_cast<unsigned long long>(trace::droppedCount()));
    }
  }
  if (Metrics)
    std::printf("%s\n",
                MetricsRegistry::global().snapshot().toJson().c_str());
  return Exit;
}
