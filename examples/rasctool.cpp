//===- examples/rasctool.cpp - Constraint file runner -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line driver for textual constraint problems:
///
///   rasctool [options] file.rasc   solve the file and answer its queries
///   rasctool [options]             run the embedded demo (Example 2.4)
///
/// Options (resource governance; see DESIGN.md section 7):
///
///   --max-edges N    stop after N inserted edges (0 = unlimited)
///   --step-budget N  stop after N compose steps (0 = unlimited)
///   --deadline S     wall-clock budget in seconds (0 = none)
///   --no-resume      report an interrupted solve instead of resuming
///   --explain        on inconsistency, print a derivation witness
///
/// An interrupted solve is resumed with the budgets lifted (unless
/// --no-resume), demonstrating the solver's resumability contract:
/// the second solve() continues from the persisted closure state and
/// reaches the same fixpoint a fresh unbudgeted run would.
///
/// See frontend/ConstraintParser.h for the file format.
///
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintParser.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace rasc;

namespace {

using Status = BidirectionalSolver::Status;

const char *Demo = R"(# Example 2.4 (paper Section 2.4) over the 1-bit language.
language regex "(g | k)* g";

constant c;
constructor o 1;
var W X Y Z;

c <= [g] W;
o(W) <= [g] X;
X <= o(Y);
o(Y) <= Z;

query c in W;
query c in Y;
query c in Z;
query pn c in Z;
)";

const char *statusName(Status S) {
  switch (S) {
  case Status::Solved:
    return "solved";
  case Status::Inconsistent:
    return "inconsistent";
  case Status::EdgeLimit:
    return "edge limit";
  case Status::StepLimit:
    return "step limit";
  case Status::Deadline:
    return "deadline";
  case Status::MemoryLimit:
    return "memory limit";
  case Status::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

struct CliOptions {
  SolverOptions Solver;
  bool Resume = true;
  bool Explain = false;
};

int run(const std::string &Source, const char *Name, CliOptions Cli) {
  Expected<ConstraintProgram> P = ConstraintProgram::parseEx(Source);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, P.error().render().c_str());
    return 1;
  }

  const MonoidDomain &Dom = P->domain();
  std::printf("%s: %zu constraints, annotation language with %u "
              "states, |F_M^≡| = %zu\n",
              Name, P->system().constraints().size(),
              Dom.machine().numStates(), Dom.size());

  Cli.Solver.TrackProvenance |= Cli.Explain;
  BidirectionalSolver Solver(P->system(), Cli.Solver);
  Status S = Solver.solve();
  while (BidirectionalSolver::isInterrupted(S)) {
    std::printf("interrupted (%s) after %llu edges, %llu compositions\n",
                statusName(S),
                static_cast<unsigned long long>(
                    Solver.stats().EdgesInserted),
                static_cast<unsigned long long>(
                    Solver.stats().ComposeCalls));
    if (!Cli.Resume)
      return 2;
    std::printf("resuming with budgets lifted...\n");
    Solver.options().MaxEdges = 0;
    Solver.options().MaxComposeSteps = 0;
    Solver.options().DeadlineSeconds = 0;
    Solver.options().MaxMemoryBytes = 0;
    S = Solver.solve();
  }

  const SolverStats &Stats = Solver.stats();
  std::printf("%s: %llu edges, %llu compositions, %llu function "
              "constraints%s\n\n",
              statusName(S),
              static_cast<unsigned long long>(Stats.EdgesInserted),
              static_cast<unsigned long long>(Stats.ComposeCalls),
              static_cast<unsigned long long>(Stats.FnVarConstraints),
              Stats.Resumes ? " (resumed)" : "");

  if (S == Status::Inconsistent && Cli.Explain &&
      !Solver.conflicts().empty()) {
    std::printf("why inconsistent:\n");
    for (const std::string &Line : Solver.conflictWitness(0))
      std::printf("  %s\n", Line.c_str());
    std::printf("\n");
  }

  for (const ConstraintProgram::Answer &A : P->answer(Solver))
    std::printf("  %-40s %s\n", A.Q->Text.c_str(),
                A.Holds ? "holds" : "does not hold");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto numArg = [&](uint64_t &Out) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Argv[I]);
        return false;
      }
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    if (Arg == "--max-edges") {
      if (!numArg(Cli.Solver.MaxEdges))
        return 1;
    } else if (Arg == "--step-budget") {
      if (!numArg(Cli.Solver.MaxComposeSteps))
        return 1;
    } else if (Arg == "--deadline") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--deadline needs a value\n");
        return 1;
      }
      Cli.Solver.DeadlineSeconds = std::strtod(Argv[++I], nullptr);
    } else if (Arg == "--no-resume") {
      Cli.Resume = false;
    } else if (Arg == "--explain") {
      Cli.Explain = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", Argv[I]);
      return 1;
    } else {
      Path = Argv[I];
    }
  }

  if (!Path) {
    std::printf("(no input file; running the embedded Example 2.4 "
                "demo)\n\n");
    return run(Demo, "demo", Cli);
  }
  std::ifstream File(Path);
  if (!File) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return 1;
  }
  std::ostringstream SS;
  SS << File.rdbuf();
  return run(SS.str(), Path, Cli);
}
