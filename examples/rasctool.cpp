//===- examples/rasctool.cpp - Constraint file runner -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line driver for textual constraint problems:
///
///   rasctool file.rasc     solve the file and answer its queries
///   rasctool               run the embedded demo (Example 2.4)
///
/// See frontend/ConstraintParser.h for the file format.
///
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintParser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace rasc;

namespace {

const char *Demo = R"(# Example 2.4 (paper Section 2.4) over the 1-bit language.
language regex "(g | k)* g";

constant c;
constructor o 1;
var W X Y Z;

c <= [g] W;
o(W) <= [g] X;
X <= o(Y);
o(Y) <= Z;

query c in W;
query c in Y;
query c in Z;
query pn c in Z;
)";

int run(const std::string &Source, const char *Name) {
  std::string Err;
  std::optional<ConstraintProgram> P =
      ConstraintProgram::parse(Source, &Err);
  if (!P) {
    std::fprintf(stderr, "%s: %s\n", Name, Err.c_str());
    return 1;
  }

  const MonoidDomain &Dom = P->domain();
  std::printf("%s: %zu constraints, annotation language with %u "
              "states, |F_M^≡| = %zu\n",
              Name, P->system().constraints().size(),
              Dom.machine().numStates(), Dom.size());

  SolverStats Stats;
  auto Answers = P->solveAndAnswer({}, &Stats);
  std::printf("solved: %llu edges, %llu compositions, %llu function "
              "constraints\n\n",
              static_cast<unsigned long long>(Stats.EdgesInserted),
              static_cast<unsigned long long>(Stats.ComposeCalls),
              static_cast<unsigned long long>(Stats.FnVarConstraints));
  for (const ConstraintProgram::Answer &A : Answers)
    std::printf("  %-40s %s\n", A.Q->Text.c_str(),
                A.Holds ? "holds" : "does not hold");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::printf("(no input file; running the embedded Example 2.4 "
                "demo)\n\n");
    return run(Demo, "demo");
  }
  std::ifstream File(Argv[1]);
  if (!File) {
    std::fprintf(stderr, "cannot open %s\n", Argv[1]);
    return 1;
  }
  std::ostringstream SS;
  SS << File.rdbuf();
  return run(SS.str(), Argv[1]);
}
