//===- examples/dataflow.cpp - Bit-vector dataflow --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 3.3 application: interprocedural gen/kill dataflow as a
/// regular annotation language. A small "taint tracking" scenario:
/// fact 0 = "input is tainted", fact 1 = "input was sanitized",
/// tracked across calls with full call/return matching, answered by
/// the annotated solver and cross-checked against the classical
/// iterative interprocedural solver.
///
//===----------------------------------------------------------------------===//

#include "dataflow/BitVector.h"

#include <cstdio>

using namespace rasc;

int main() {
  std::printf("== Interprocedural bit-vector dataflow (Section 3.3) "
              "==\n\n");

  // main:
  //   t = read_input()        // gen TAINT
  //   if (...) sanitize()     // callee kills TAINT, gens CLEAN
  //   sink(t)                 // is TAINT possible here? CLEAN certain?
  Program P;
  FuncId Main = P.addFunction("main");
  FuncId San = P.addFunction("sanitize");
  StmtId Read = P.addNop(Main, "t = read_input()");
  StmtId Branch = P.addNop(Main, "if (...)");
  StmtId CallSan = P.addCall(Main, San, "sanitize()");
  StmtId Skip = P.addNop(Main, "else skip");
  StmtId Sink = P.addNop(Main, "sink(t)");
  P.addEdge(P.entry(Main), Read);
  P.addEdge(Read, Branch);
  P.addEdge(Branch, CallSan);
  P.addEdge(Branch, Skip);
  P.addEdge(CallSan, Sink);
  P.addEdge(Skip, Sink);
  StmtId Scrub = P.addNop(San, "scrub buffer");
  P.addEdge(P.entry(San), Scrub);
  P.finalize();

  enum { Taint = 0, Clean = 1 };
  BitVectorProblem Prob(P, 2);
  Prob.setGen(Read, Taint);
  Prob.setKill(Scrub, Taint);
  Prob.setGen(Scrub, Clean);

  AnnotatedBitVectorAnalysis A(Prob);
  A.solve();
  IterativeBitVectorAnalysis I(Prob);
  I.solve();

  auto show = [&](const char *Name, StmtId S) {
    std::printf("%-18s taint: may=%d must=%d   clean: may=%d must=%d"
                "   (%zu path classes)\n",
                Name, A.mayHold(S, Taint), A.mustHold(S, Taint),
                A.mayHold(S, Clean), A.mustHold(S, Clean),
                A.numReachingClasses(S));
  };
  std::printf("annotated-constraint analysis:\n");
  show("after read:", Branch);
  show("inside sanitize:", Scrub);
  show("at sink:", Sink);

  bool Agree = true;
  for (StmtId S = 0; S != P.numStatements(); ++S)
    for (unsigned B = 0; B != 2; ++B)
      Agree &= A.mayHold(S, B) == I.mayHold(S, B) &&
               A.mustHold(S, B) == I.mustHold(S, B);
  std::printf("\niterative interprocedural baseline agrees on every "
              "statement and fact: %s\n",
              Agree ? "yes" : "NO (bug)");

  std::printf("\nThe verdict: the sink may still see tainted input "
              "(the else branch skips sanitize),\nso 'may taint' = %d "
              "and 'must clean' = %d.\n",
              A.mayHold(Sink, Taint), A.mustHold(Sink, Clean));
  return 0;
}
