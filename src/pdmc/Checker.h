//===- pdmc/Checker.h - Temporal safety checking ----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two pushdown model checkers for temporal safety properties over
/// Program CFGs:
///
///   * RascChecker — the paper's approach (Section 6): one constraint
///     variable per statement, constraints S ⊆^op Si for relevant
///     statements, o_i(S) ⊆ F_entry / o_i^-1(F_exit) ⊆ Si for calls,
///     pc ⊆ S_main; violations are PN-reachability queries for pc with
///     an annotation leading to an accepting (error) state, and the
///     witness stack is the term's constructor spine (the runtime
///     stack). Parametric properties (Section 6.4) use substitution
///     environments transparently.
///
///   * MopsChecker — the baseline the paper compares against in
///     Table 1: the direct MOPS-style encoding of the program as a
///     pushdown system (stack = return addresses) with the property
///     automaton as control, checked via post* saturation. Parametric
///     properties are handled the way MOPS instantiates pattern
///     variables: one run per instantiation found in the program.
///
/// Both checkers report the same violations (differentially tested).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PDMC_CHECKER_H
#define RASC_PDMC_CHECKER_H

#include "core/BatchSolver.h"
#include "core/Domains.h"
#include "core/Solver.h"
#include "core/SubstEnv.h"
#include "pdmc/Program.h"
#include "pds/Pds.h"
#include "spec/SpecParser.h"

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rasc {

/// One property violation: the program point where the automaton can
/// be driven into an accepting (error) state.
struct Violation {
  StmtId Where;
  /// Parameter bindings of the violating instantiation (empty for
  /// non-parametric properties), e.g. "x:fd1".
  std::string Instantiation;
  /// Unreturned call sites (outermost first) of one violating path.
  std::vector<StmtId> CallStack;
  /// Property-relevant events of one violating path, ending with this
  /// statement's own operation (a word of L(M), reconstructed from the
  /// representative function's sample word). Bidirectional
  /// non-parametric checking only; empty otherwise.
  std::vector<std::string> EventTrace;

  friend bool operator<(const Violation &A, const Violation &B) {
    return A.Where != B.Where ? A.Where < B.Where
                              : A.Instantiation < B.Instantiation;
  }
  friend bool operator==(const Violation &A, const Violation &B) {
    return A.Where == B.Where && A.Instantiation == B.Instantiation;
  }
};

/// Statistics shared by both checkers (for Table 1).
struct CheckStats {
  double Seconds = 0;
  size_t Constraints = 0; ///< RASC: constraints; MOPS: PDS rules.
  size_t Derived = 0;     ///< RASC: edges; MOPS: automaton transitions.
};

/// Which resolution strategy the RascChecker uses (paper Section 5).
enum class SolveStrategy {
  /// The paper's implementation: bidirectional closure over F_M^≡.
  Bidirectional,
  /// Forward (post*) solving over the coarser right congruence
  /// (|S| classes); asymptotically cheaper, whole-program only.
  Forward,
};

/// The annotated-set-constraint checker (the paper's system).
class RascChecker {
public:
  /// \p Spec is the temporal safety property; violations are entries
  /// into its accepting states. Parametric properties require the
  /// bidirectional strategy (asserted).
  RascChecker(const Program &Prog, const SpecAutomaton &Spec,
              SolveStrategy Strategy = SolveStrategy::Bidirectional);

  /// Runs constraint generation + resolution + queries.
  /// Violations are sorted and deduplicated by (statement,
  /// instantiation).
  std::vector<Violation> check();

  /// Splits check() for batch solving (checkAllProperties): generates
  /// the constraint system and constructs the bidirectional solver
  /// without solving. Idempotent. The Forward strategy has no
  /// separate solver object; prepare() only generates.
  void prepare();

  /// The prepared solver (null before prepare(), and always for the
  /// Forward strategy). The batch entry point hands these to a
  /// BatchSolver; queries then run through collectViolations().
  BidirectionalSolver *solver() { return Solver.get(); }

  /// The query half of check(): reads violations off the solved (or
  /// interrupted — then incomplete but sound) solver. Requires
  /// prepare() and a solve() on the bidirectional strategy.
  std::vector<Violation> collectViolations();

  /// Overrides the bidirectional solver's options (e.g. MaxEdges for
  /// benchmarks that want blow-ups reported instead of endured).
  void setSolverOptions(SolverOptions O) { SolverOpts = O; }

  /// Reports whether the last check()'s solve was interrupted by any
  /// resource budget (edge cap, step budget, deadline, memory,
  /// cancellation); the reported violations are then incomplete
  /// (sound so far, but more may exist).
  bool hitEdgeLimit() const { return EdgeLimit; }

  const CheckStats &stats() const { return Stats; }

  /// The constraint variable of a statement (for tests).
  VarId stmtVar(StmtId S) const { return StmtVars[S]; }
  const ConstraintSystem &system() const { return *CS; }

private:
  bool isRelevant(const Stmt &St) const;
  AnnId opAnn(const Stmt &St) const;
  void generate();
  std::vector<Violation> checkForward();

  const Program &Prog;
  const SpecAutomaton &Spec;
  SolveStrategy Strategy;
  bool Parametric;
  std::unique_ptr<MonoidDomain> Base;
  std::unique_ptr<SubstEnvDomain> EnvDom;
  std::unique_ptr<ConstraintSystem> CS;
  std::vector<VarId> StmtVars;
  ConsId Pc = 0;
  std::vector<std::pair<StmtId, ConsId>> CallCons; // call site -> o_i
  std::map<ConsId, StmtId> ConsToCall;
  std::unique_ptr<BidirectionalSolver> Solver;
  bool Generated = false;
  SolverOptions SolverOpts;
  bool EdgeLimit = false;
  CheckStats Stats;
};

/// Batch checking: one constraint system per property, all solved
/// concurrently on a BatchSolver pool under the shared governance in
/// \p BatchOpts; \p SolverOpts applies to every per-property solver.
/// Returns the violations per spec, in input order — identical to
/// running RascChecker::check() per spec (each system is independent).
/// When \p MergedStats is non-null it receives the field-wise sum of
/// the per-property solver stats. Setting
/// BatchSolver::Options::CheckpointDir makes each per-property solve
/// crash-safe: a snapshot per property, restored on rerun; properties
/// whose snapshot is missing or corrupt re-check from scratch.
std::vector<std::vector<Violation>>
checkAllProperties(const Program &Prog,
                   std::span<const SpecAutomaton *const> Specs,
                   const BatchSolver::Options &BatchOpts = {},
                   const SolverOptions &SolverOpts = {},
                   SolverStats *MergedStats = nullptr);

/// The MOPS-style pushdown model checker baseline.
class MopsChecker {
public:
  MopsChecker(const Program &Prog, const SpecAutomaton &Spec);

  std::vector<Violation> check();

  const CheckStats &stats() const { return Stats; }

private:
  /// Checks one (possibly specialized) instantiation; \p Bindings maps
  /// parametric symbols to the label tuple this run tracks.
  void checkInstance(const std::vector<std::string> &Labels,
                     std::vector<Violation> &Out);

  const Program &Prog;
  const SpecAutomaton &Spec;
  CheckStats Stats;
};

} // namespace rasc

#endif // RASC_PDMC_CHECKER_H
