//===- pdmc/Program.h - CFG program representation --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program representation consumed by the pushdown model checker
/// of paper Section 6 (and by the interprocedural dataflow analyses of
/// Section 3.3): a set of functions, each with a control flow graph of
/// statements. A statement is either irrelevant (Nop), an *operation*
/// (a symbol of the property's alphabet, possibly with parameter
/// labels such as open(fd1)), or a call to another function.
///
/// Every function has a dedicated entry and exit statement (Nops);
/// statements with no explicit successor fall through to the
/// function's exit.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PDMC_PROGRAM_H
#define RASC_PDMC_PROGRAM_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace rasc {

using FuncId = uint32_t;
using StmtId = uint32_t;

constexpr FuncId InvalidFunc = ~FuncId(0);

/// One CFG statement.
struct Stmt {
  enum KindTy : uint8_t {
    Nop,  ///< Irrelevant to the property.
    Op,   ///< Security-relevant operation (property alphabet symbol).
    Call, ///< Call to another function; each call site is unique.
  };

  KindTy Kind = Nop;
  std::string OpSymbol;              ///< Op: the property symbol.
  std::vector<std::string> OpLabels; ///< Op: parameter labels, if any.
  FuncId Callee = InvalidFunc;       ///< Call.
  FuncId Parent = InvalidFunc;
  std::vector<StmtId> Succs;
  std::string Note; ///< Free-form source location for diagnostics.
};

/// A whole program: functions, statements, edges.
class Program {
public:
  /// Creates a function with fresh entry/exit Nop statements. The
  /// first function created is main.
  FuncId addFunction(std::string Name);

  StmtId entry(FuncId F) const { return Funcs[F].Entry; }
  StmtId exit(FuncId F) const { return Funcs[F].Exit; }
  const std::string &funcName(FuncId F) const { return Funcs[F].Name; }

  /// Adds a Nop statement to \p F.
  StmtId addNop(FuncId F, std::string Note = "");

  /// Adds an operation statement (a property-alphabet symbol with
  /// optional parameter labels).
  StmtId addOp(FuncId F, std::string Symbol,
               std::vector<std::string> Labels = {}, std::string Note = "");

  /// Adds a call statement.
  StmtId addCall(FuncId F, FuncId Callee, std::string Note = "");

  /// Adds a CFG edge.
  void addEdge(StmtId From, StmtId To) {
    assert(From < Stmts.size() && To < Stmts.size() && "bad statement");
    assert(Stmts[From].Parent == Stmts[To].Parent &&
           "CFG edges are intraprocedural");
    Stmts[From].Succs.push_back(To);
  }

  /// Routes every statement without a successor (except exits) to its
  /// function's exit. Call once after construction.
  void finalize();

  FuncId mainFunction() const { return 0; }
  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Funcs.size());
  }
  uint32_t numStatements() const {
    return static_cast<uint32_t>(Stmts.size());
  }
  const Stmt &stmt(StmtId S) const {
    assert(S < Stmts.size() && "statement out of range");
    return Stmts[S];
  }

  /// A short human-readable description of a statement.
  std::string describe(StmtId S) const;

private:
  struct Func {
    std::string Name;
    StmtId Entry;
    StmtId Exit;
  };

  StmtId addStmt(FuncId F, Stmt St);

  std::vector<Func> Funcs;
  std::vector<Stmt> Stmts;
};

} // namespace rasc

#endif // RASC_PDMC_PROGRAM_H
