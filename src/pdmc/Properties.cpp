//===- pdmc/Properties.cpp - Security properties from the paper -*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pdmc/Properties.h"

#include <cassert>
#include <functional>
#include <sstream>

using namespace rasc;

std::string rasc::simplePrivilegeSpecText() {
  return R"(# Figure 3: Unix process privilege (simple model).
# Self-loops follow Figure 4's representative functions: irrelevant
# operations keep the state, Error absorbs.
start state Unpriv :
  | seteuid_zero -> Priv
  | seteuid_nonzero -> Unpriv
  | execl -> Unpriv;

state Priv :
  | seteuid_zero -> Priv
  | seteuid_nonzero -> Unpriv
  | execl -> Error;

accept state Error :
  | seteuid_zero -> Error
  | seteuid_nonzero -> Error
  | execl -> Error;
)";
}

namespace {

/// Abstract (effective, real, saved) uid triple; false = root.
struct Uids {
  bool E, R, S;
};

/// One abstract transition of the full privilege model.
Uids stepUids(Uids U, const std::string &Sym) {
  bool Privileged = !U.E;
  if (Sym == "setuid_zero") {
    if (Privileged)
      return {false, false, false};
    if (!U.R || !U.S)
      return {false, U.R, U.S};
    return U;
  }
  if (Sym == "setuid_user") {
    if (Privileged)
      return {true, true, true}; // permanent drop
    return {true, U.R, U.S};
  }
  if (Sym == "seteuid_zero") {
    if (!U.R || !U.S || Privileged)
      return {false, U.R, U.S};
    return U;
  }
  if (Sym == "seteuid_user")
    return {true, U.R, U.S}; // temporary drop, saved uid kept
  if (Sym == "setreuid_user") {
    if (Privileged)
      return {true, true, U.S};
    return {true, true, U.S && U.R};
  }
  if (Sym == "setresuid_user")
    return {true, true, true};
  if (Sym == "drop_priv")
    return {true, true, true};
  if (Sym == "fork")
    return U;
  assert(false && "not a uid-changing symbol");
  return U;
}

std::string uidStateName(Uids U) {
  std::string N = "S";
  N += U.E ? '1' : '0';
  N += U.R ? '1' : '0';
  N += U.S ? '1' : '0';
  return N;
}

} // namespace

std::string rasc::fullPrivilegeSpecText() {
  // Generated from the abstract uid semantics so the transition table
  // stays consistent; 11 states (Init, 8 uid triples, ExecSafe,
  // Error), 9 symbols.
  const char *UidSyms[] = {"setuid_zero",   "setuid_user",
                           "seteuid_zero",  "seteuid_user",
                           "setreuid_user", "setresuid_user",
                           "drop_priv",     "fork"};
  std::ostringstream OS;
  OS << "# Full process-privilege model (reconstruction of MOPS "
        "Property 1):\n"
     << "# a process must not exec while its effective uid is root.\n"
     << "# States track the abstract (effective, real, saved) uid "
        "triple.\n";

  auto emitState = [&](const std::string &Name, bool Start, bool Accept,
                       Uids U, bool IsTerminal) {
    if (Start)
      OS << "start ";
    if (Accept)
      OS << "accept ";
    OS << "state " << Name << " :\n";
    for (const char *Sym : UidSyms) {
      std::string Target =
          IsTerminal ? Name : uidStateName(stepUids(U, Sym));
      OS << "  | " << Sym << " -> " << Target << "\n";
    }
    OS << "  | execl -> "
       << (IsTerminal ? Name : (!U.E ? "Error" : "ExecSafe")) << ";\n\n";
  };

  // Init behaves like a root daemon start: (root, root, root).
  emitState("Init", /*Start=*/true, /*Accept=*/false,
            {false, false, false}, /*IsTerminal=*/false);
  for (int Bits = 0; Bits != 8; ++Bits) {
    Uids U{(Bits & 4) != 0, (Bits & 2) != 0, (Bits & 1) != 0};
    emitState(uidStateName(U), false, false, U, false);
  }
  emitState("ExecSafe", false, false, {true, true, true},
            /*IsTerminal=*/true);
  emitState("Error", false, /*Accept=*/true, {false, false, false},
            /*IsTerminal=*/true);
  return OS.str();
}

std::string rasc::fileStateSpecText() {
  return R"(# Figure 5: file-descriptor state with a parametric handle.
# The accepting Error state marks misuse (double open, stray close);
# the checkers report transitions into accepting states.
start state Closed :
  | open(x) -> Opened
  | close(x) -> Error;

state Opened :
  | close(x) -> Closed
  | open(x) -> Error;

accept state Error :
  | open(x) -> Error
  | close(x) -> Error;
)";
}

namespace {

SpecAutomaton compileOrDie(const std::string &Text) {
  std::string Err;
  std::optional<SpecAutomaton> A = parseSpec(Text, &Err);
  assert(A && "built-in property failed to parse");
  if (!A)
    __builtin_trap();
  return std::move(*A);
}

} // namespace

SpecAutomaton rasc::simplePrivilegeSpec() {
  return compileOrDie(simplePrivilegeSpecText());
}

SpecAutomaton rasc::fullPrivilegeSpec() {
  return compileOrDie(fullPrivilegeSpecText());
}

SpecAutomaton rasc::fileStateSpec() {
  return compileOrDie(fileStateSpecText());
}
