//===- pdmc/Program.cpp - CFG program representation ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pdmc/Program.h"

#include <sstream>

using namespace rasc;

FuncId Program::addFunction(std::string Name) {
  FuncId F = static_cast<FuncId>(Funcs.size());
  Funcs.push_back({std::move(Name), 0, 0});
  Stmt Entry;
  Entry.Note = "entry";
  Funcs[F].Entry = addStmt(F, std::move(Entry));
  Stmt Exit;
  Exit.Note = "exit";
  Funcs[F].Exit = addStmt(F, std::move(Exit));
  return F;
}

StmtId Program::addStmt(FuncId F, Stmt St) {
  assert(F < Funcs.size() && "function out of range");
  St.Parent = F;
  Stmts.push_back(std::move(St));
  return static_cast<StmtId>(Stmts.size() - 1);
}

StmtId Program::addNop(FuncId F, std::string Note) {
  Stmt St;
  St.Note = std::move(Note);
  return addStmt(F, std::move(St));
}

StmtId Program::addOp(FuncId F, std::string Symbol,
                      std::vector<std::string> Labels, std::string Note) {
  Stmt St;
  St.Kind = Stmt::Op;
  St.OpSymbol = std::move(Symbol);
  St.OpLabels = std::move(Labels);
  St.Note = std::move(Note);
  return addStmt(F, std::move(St));
}

StmtId Program::addCall(FuncId F, FuncId Callee, std::string Note) {
  assert(Callee < Funcs.size() && "callee out of range");
  Stmt St;
  St.Kind = Stmt::Call;
  St.Callee = Callee;
  St.Note = std::move(Note);
  return addStmt(F, std::move(St));
}

void Program::finalize() {
  for (StmtId S = 0; S != Stmts.size(); ++S) {
    if (!Stmts[S].Succs.empty())
      continue;
    FuncId F = Stmts[S].Parent;
    if (S == Funcs[F].Exit)
      continue;
    Stmts[S].Succs.push_back(Funcs[F].Exit);
  }
}

std::string Program::describe(StmtId S) const {
  const Stmt &St = stmt(S);
  std::ostringstream OS;
  OS << funcName(St.Parent) << ":" << S << " ";
  switch (St.Kind) {
  case Stmt::Nop:
    OS << (St.Note.empty() ? "nop" : St.Note);
    break;
  case Stmt::Op:
    OS << St.OpSymbol;
    if (!St.OpLabels.empty()) {
      OS << "(";
      for (size_t I = 0; I != St.OpLabels.size(); ++I) {
        if (I)
          OS << ", ";
        OS << St.OpLabels[I];
      }
      OS << ")";
    }
    break;
  case Stmt::Call:
    OS << "call " << funcName(St.Callee);
    break;
  }
  return OS.str();
}
