//===- pdmc/Checker.cpp - Temporal safety checking --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pdmc/Checker.h"

#include "pds/Unidirectional.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <set>

using namespace rasc;

namespace {

double secondsSince(
    std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// RascChecker
//===----------------------------------------------------------------------===//

RascChecker::RascChecker(const Program &Prog, const SpecAutomaton &Spec,
                         SolveStrategy Strategy)
    : Prog(Prog), Spec(Spec), Strategy(Strategy) {
  Parametric = false;
  for (SymbolId S = 0, E = Spec.machine().numSymbols(); S != E; ++S)
    Parametric |= Spec.isParametric(S);
  assert((!Parametric || Strategy == SolveStrategy::Bidirectional) &&
         "parametric annotations require the bidirectional solver");
  Base = std::make_unique<MonoidDomain>(Spec.machine());
  if (Parametric) {
    EnvDom = std::make_unique<SubstEnvDomain>(*Base);
    CS = std::make_unique<ConstraintSystem>(*EnvDom);
  } else {
    CS = std::make_unique<ConstraintSystem>(*Base);
  }
}

bool RascChecker::isRelevant(const Stmt &St) const {
  return St.Kind == Stmt::Op &&
         Spec.machine().symbol(St.OpSymbol).has_value();
}

AnnId RascChecker::opAnn(const Stmt &St) const {
  const Dfa &M = Spec.machine();
  SymbolId Sym = *M.symbol(St.OpSymbol);
  AnnId BaseAnn = Base->symbolAnn(Sym);
  if (!Parametric)
    return BaseAnn;
  const SpecSymbol &Decl = Spec.symbols()[Sym];
  if (Decl.Params.empty())
    return EnvDom->lift(BaseAnn);
  assert(Decl.Params.size() == St.OpLabels.size() &&
         "operation label count must match the symbol declaration");
  std::vector<ParamBinding> Key;
  for (size_t I = 0; I != Decl.Params.size(); ++I)
    Key.push_back(
        {EnvDom->name(Decl.Params[I]), EnvDom->name(St.OpLabels[I])});
  return EnvDom->instantiate(std::move(Key), BaseAnn);
}

void RascChecker::generate() {
  if (Generated)
    return;
  Generated = true;

  // Constraint generation (Section 6.1).
  StmtVars.assign(Prog.numStatements(), 0);
  for (StmtId S = 0; S != Prog.numStatements(); ++S)
    StmtVars[S] = CS->freshVar("S" + std::to_string(S));

  Pc = CS->addConstant("pc");
  CS->add(CS->cons(Pc), CS->var(StmtVars[Prog.entry(Prog.mainFunction())]));

  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    if (St.Kind == Stmt::Call) {
      // o_i(S) ⊆ F_entry and o_i^-1(F_exit) ⊆ S_i.
      ConsId O = CS->addConstructor("o@" + std::to_string(S), 1);
      ConsToCall[O] = S;
      CallCons.emplace_back(S, O);
      CS->add(CS->cons(O, {StmtVars[S]}),
              CS->var(StmtVars[Prog.entry(St.Callee)]));
      for (StmtId Succ : St.Succs)
        CS->add(CS->proj(O, 0, StmtVars[Prog.exit(St.Callee)]),
                CS->var(StmtVars[Succ]));
      continue;
    }
    AnnId Ann = isRelevant(St) ? opAnn(St) : CS->domain().identity();
    for (StmtId Succ : St.Succs)
      CS->add(CS->var(StmtVars[S]), CS->var(StmtVars[Succ]), Ann);
  }

  Stats.Constraints = CS->constraints().size();
}

void RascChecker::prepare() {
  RASC_TRACE_SCOPE("pdmc.prepare");
  generate();
  if (Strategy == SolveStrategy::Bidirectional && !Solver)
    Solver = std::make_unique<BidirectionalSolver>(*CS, SolverOpts);
}

std::vector<Violation> RascChecker::check() {
  RASC_TRACE_SCOPE("pdmc.check");
  auto Start = std::chrono::steady_clock::now();

  prepare();

  if (Strategy == SolveStrategy::Forward) {
    std::vector<Violation> Out = checkForward();
    Stats.Seconds = secondsSince(Start);
    return Out;
  }

  Solver->solve();
  std::vector<Violation> Out = collectViolations();
  Stats.Seconds = secondsSince(Start);
  return Out;
}

std::vector<Violation> RascChecker::collectViolations() {
  RASC_TRACE_SCOPE("pdmc.collect");
  assert(Solver && "collectViolations requires a prepared solver");
  const Dfa &M = Spec.machine();
  EdgeLimit = BidirectionalSolver::isInterrupted(Solver->status());
  Stats.Derived = Solver->stats().EdgesInserted;

  AtomReachability AR = Solver->atomReachability(Pc);

  // A violation at an operation statement s: pc reaches s with a word
  // w such that delta(w . op, s0) is accepting.
  std::set<Violation> Found;
  StateId Start0 = M.start();
  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    if (!isRelevant(St))
      continue;
    AnnId StepAnn = opAnn(St);
    for (AnnId F : AR.annotations(StmtVars[S])) {
      std::vector<ConsId> Spine = AR.witnessStack(StmtVars[S], F);
      std::vector<StmtId> CallStack;
      for (ConsId C : Spine) {
        auto It = ConsToCall.find(C);
        if (It != ConsToCall.end())
          CallStack.push_back(It->second);
      }
      auto report = [&](std::string Inst) {
        Violation V;
        V.Where = S;
        V.Instantiation = std::move(Inst);
        V.CallStack = CallStack;
        Found.insert(std::move(V));
      };

      // Report transitions *into* an accepting state only: an op that
      // runs after the property has already failed is not a separate
      // violation (the MOPS baseline attributes violations the same
      // way).
      if (!Parametric) {
        AnnId Total = Base->compose(StepAnn, F);
        if (M.isAccepting(Base->apply(Total, Start0)) &&
            !M.isAccepting(Base->apply(F, Start0))) {
          Violation V;
          V.Where = S;
          V.CallStack = CallStack;
          // The event trace: a sample word of the reaching class,
          // then this statement's own operation.
          for (SymbolId Sym : Base->monoid().sampleWord(F))
            V.EventTrace.push_back(M.symbolName(Sym));
          V.EventTrace.push_back(St.OpSymbol);
          Found.insert(std::move(V));
        }
        continue;
      }
      AnnId Total = EnvDom->compose(StepAnn, F);
      if (M.isAccepting(Base->apply(EnvDom->residual(Total), Start0)) &&
          !M.isAccepting(Base->apply(EnvDom->residual(F), Start0)))
        report("");
      for (const SubstEntry &E : EnvDom->entries(Total)) {
        if (!M.isAccepting(Base->apply(E.Value, Start0)))
          continue;
        if (M.isAccepting(Base->apply(EnvDom->lookup(F, E.Key), Start0)))
          continue; // already failed before this op
        std::string Inst;
        for (size_t I = 0; I != E.Key.size(); ++I) {
          if (I)
            Inst += ",";
          Inst += EnvDom->nameStr(E.Key[I].Param) + ":" +
                  EnvDom->nameStr(E.Key[I].Label);
        }
        report(std::move(Inst));
      }
    }
  }

  return std::vector<Violation>(Found.begin(), Found.end());
}

std::vector<std::vector<Violation>>
rasc::checkAllProperties(const Program &Prog,
                         std::span<const SpecAutomaton *const> Specs,
                         const BatchSolver::Options &BatchOpts,
                         const SolverOptions &SolverOpts,
                         SolverStats *MergedStats) {
  // One checker — one constraint system, one solver — per property;
  // generation is sequential (it is cheap next to solving), the
  // solves run concurrently on the pool.
  std::vector<std::unique_ptr<RascChecker>> Checkers;
  std::vector<BidirectionalSolver *> Solvers;
  Checkers.reserve(Specs.size());
  Solvers.reserve(Specs.size());
  for (const SpecAutomaton *Spec : Specs) {
    auto C = std::make_unique<RascChecker>(Prog, *Spec);
    C->setSolverOptions(SolverOpts);
    C->prepare();
    Solvers.push_back(C->solver());
    Checkers.push_back(std::move(C));
  }

  BatchSolver Batch(BatchOpts);
  Batch.solveAll(Solvers);

  std::vector<std::vector<Violation>> Out;
  Out.reserve(Checkers.size());
  for (auto &C : Checkers)
    Out.push_back(C->collectViolations());
  if (MergedStats)
    *MergedStats = Batch.mergedStats();
  return Out;
}

std::vector<Violation> RascChecker::checkForward() {
  // Section 5: forward solving tracks facts (pc, variable, state of
  // the right congruence) with the unmatched calls as a pushdown
  // stack; one post* answers every query. Witness call stacks are not
  // reconstructed in this mode.
  const Dfa &M = Spec.machine();
  UnidirectionalSolver U(*CS, *Base);
  std::set<Violation> Found;
  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    if (!isRelevant(St))
      continue;
    SymbolId Sym = *M.symbol(St.OpSymbol);
    for (StateId Q : U.pnStates(Pc, StmtVars[S]))
      if (!M.isAccepting(Q) && M.isAccepting(M.next(Q, Sym))) {
        Violation V;
        V.Where = S;
        Found.insert(std::move(V));
        break;
      }
  }
  Stats.Derived = U.stats().PostStarTransitions;
  return std::vector<Violation>(Found.begin(), Found.end());
}

//===----------------------------------------------------------------------===//
// MopsChecker
//===----------------------------------------------------------------------===//

MopsChecker::MopsChecker(const Program &Prog, const SpecAutomaton &Spec)
    : Prog(Prog), Spec(Spec) {}

std::vector<Violation> MopsChecker::check() {
  auto Start = std::chrono::steady_clock::now();

  // Collect the label tuples of parametric operations; MOPS checks
  // each instantiation separately.
  std::set<std::vector<std::string>> Instances;
  bool AnyParametric = false;
  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    if (St.Kind != Stmt::Op)
      continue;
    auto Sym = Spec.machine().symbol(St.OpSymbol);
    if (!Sym || !Spec.isParametric(*Sym))
      continue;
    AnyParametric = true;
    Instances.insert(St.OpLabels);
  }

  std::vector<Violation> Out;
  if (!AnyParametric) {
    checkInstance({}, Out);
  } else {
    for (const std::vector<std::string> &L : Instances)
      checkInstance(L, Out);
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  Stats.Seconds = secondsSince(Start);
  return Out;
}

void MopsChecker::checkInstance(const std::vector<std::string> &Labels,
                                std::vector<Violation> &Out) {
  const Dfa &M = Spec.machine();

  // Is this statement a property transition in this instance?
  auto relevantSym = [&](const Stmt &St) -> std::optional<SymbolId> {
    if (St.Kind != Stmt::Op)
      return std::nullopt;
    auto Sym = M.symbol(St.OpSymbol);
    if (!Sym)
      return std::nullopt;
    if (Spec.isParametric(*Sym) && St.OpLabels != Labels)
      return std::nullopt;
    return Sym;
  };

  Pds P;
  for (StateId Q = 0; Q != M.numStates(); ++Q) {
    PdsState C = P.addControlState();
    assert(C == Q && "controls mirror property states");
    (void)C;
  }
  // One stack symbol per statement.
  std::vector<StackSym> StmtSym(Prog.numStatements());
  for (StmtId S = 0; S != Prog.numStatements(); ++S)
    StmtSym[S] = P.addStackSymbol();

  std::map<StackSym, StmtId> ReturnSiteToCall;
  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    bool IsExit = S == Prog.exit(St.Parent);
    if (IsExit) {
      for (StateId Q = 0; Q != M.numStates(); ++Q)
        P.addRule(Q, StmtSym[S], Q, {});
      continue;
    }
    if (St.Kind == Stmt::Call) {
      for (StmtId Succ : St.Succs) {
        ReturnSiteToCall.emplace(StmtSym[Succ], S);
        for (StateId Q = 0; Q != M.numStates(); ++Q)
          P.addRule(Q, StmtSym[S], Q,
                    {StmtSym[Prog.entry(St.Callee)], StmtSym[Succ]});
      }
      continue;
    }
    std::optional<SymbolId> Sym = relevantSym(St);
    for (StmtId Succ : St.Succs)
      for (StateId Q = 0; Q != M.numStates(); ++Q)
        P.addRule(Q, StmtSym[S], Sym ? M.next(Q, *Sym) : Q,
                  {StmtSym[Succ]});
  }
  Stats.Constraints += P.rules().size();

  ConfigAutomaton Init(P.numControls());
  uint32_t Qf = Init.addState();
  Init.setAccepting(Qf);
  Init.addTransition(M.start(), StmtSym[Prog.entry(Prog.mainFunction())],
                     Qf);
  ConfigAutomaton A = postStar(P, Init);
  Stats.Derived += A.numTransitions();

  // Top-of-stack pairs (q, stmt) reachable: from control q, after
  // epsilon moves, a transition on StmtSym[stmt].
  std::vector<std::vector<uint32_t>> EpsAdj(A.numStates());
  for (uint32_t S = 0; S != A.numStates(); ++S)
    for (auto [Sym, T] : A.transitionsFrom(S))
      if (Sym == EpsilonSym)
        EpsAdj[S].push_back(T);

  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    std::optional<SymbolId> Sym = relevantSym(St);
    if (!Sym)
      continue;
    for (StateId Q = 0; Q != M.numStates(); ++Q) {
      if (M.isAccepting(Q) || !M.isAccepting(M.next(Q, *Sym)))
        continue;
      // Is ⟨Q, S ...⟩ reachable? BFS the epsilon closure of Q, then
      // one step on StmtSym[S]; the rest of the stack is whatever the
      // automaton still accepts (witness below).
      std::vector<uint32_t> Closure{Q};
      std::vector<bool> Seen(A.numStates(), false);
      Seen[Q] = true;
      uint32_t After = ~0u;
      for (size_t I = 0; I != Closure.size() && After == ~0u; ++I) {
        for (auto [Sm, T] : A.transitionsFrom(Closure[I])) {
          if (Sm == StmtSym[S]) {
            After = T;
            break;
          }
          if (Sm == EpsilonSym && !Seen[T]) {
            Seen[T] = true;
            Closure.push_back(T);
          }
        }
      }
      if (After == ~0u)
        continue;

      // Witness / co-reachability: ⟨Q, S w⟩ is only a real
      // configuration if some accepting state is reachable from After.
      std::vector<std::optional<std::pair<uint32_t, StackSym>>> Par(
          A.numStates());
      std::vector<bool> Seen2(A.numStates(), false);
      std::deque<uint32_t> Work{After};
      Seen2[After] = true;
      uint32_t Found = A.isAccepting(After) ? After : ~0u;
      while (!Work.empty() && Found == ~0u) {
        uint32_t Cur = Work.front();
        Work.pop_front();
        for (auto [Sm, T] : A.transitionsFrom(Cur)) {
          if (Seen2[T])
            continue;
          Seen2[T] = true;
          Par[T] = std::make_pair(Cur, Sm);
          if (A.isAccepting(T)) {
            Found = T;
            break;
          }
          Work.push_back(T);
        }
      }
      if (Found == ~0u)
        continue;

      Violation V;
      V.Where = S;
      if (!Labels.empty()) {
        const SpecSymbol &Decl = Spec.symbols()[*Sym];
        for (size_t I = 0;
             I != Decl.Params.size() && I != Labels.size(); ++I) {
          if (I)
            V.Instantiation += ",";
          V.Instantiation += Decl.Params[I] + ":" + Labels[I];
        }
      }
      // The accepted stack word below the top is the list of pending
      // return sites; translate them to call statements.
      std::vector<StmtId> Stack;
      for (uint32_t Cur = Found; Cur != After;) {
        auto [Prev, Sm] = *Par[Cur];
        auto It = ReturnSiteToCall.find(Sm);
        if (Sm != EpsilonSym && It != ReturnSiteToCall.end())
          Stack.push_back(It->second);
        Cur = Prev;
      }
      std::reverse(Stack.begin(), Stack.end());
      V.CallStack = std::move(Stack);
      Out.push_back(std::move(V));
      break; // next statement
    }
  }
}
