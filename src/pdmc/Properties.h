//===- pdmc/Properties.h - Security properties from the paper ---*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The temporal safety properties used in the paper's examples and
/// experiments, written in the Section 8 specification language:
///
///   * simplePrivilegeSpec — Figure 3: seteuid(0)/seteuid(!0)/execl
///     (with the self-loops Figure 4's representative functions
///     imply).
///   * fullPrivilegeSpec — a reconstruction of "Property 1 of [4]"
///     used for Table 1: the complete process-privilege model with 11
///     states and 9 alphabet symbols, tracking the abstract (real,
///     effective, saved) uid triple through the setuid family. The
///     MOPS paper's exact automaton is not published in reusable form;
///     this model matches its published shape (state/symbol counts and
///     the exec-with-privilege error condition). EXPERIMENTS.md
///     records the measured |F_M^≡| next to the paper's 58.
///   * fileStateSpec — Figure 5: parametric open(x)/close(x).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PDMC_PROPERTIES_H
#define RASC_PDMC_PROPERTIES_H

#include "spec/SpecParser.h"

#include <string>

namespace rasc {

/// Source text of the Figure 3 property.
std::string simplePrivilegeSpecText();

/// Source text of the 11-state, 9-symbol full privilege model.
std::string fullPrivilegeSpecText();

/// Source text of the Figure 5 parametric file property.
std::string fileStateSpecText();

/// Compiled versions (assert on parse failure).
SpecAutomaton simplePrivilegeSpec();
SpecAutomaton fullPrivilegeSpec();
SpecAutomaton fileStateSpec();

} // namespace rasc

#endif // RASC_PDMC_PROPERTIES_H
