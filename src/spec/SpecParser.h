//===- spec/SpecParser.h - Annotation specification language ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The annotation specification language of paper Section 8: an
/// ML-pattern-matching-flavoured syntax for finite state properties,
/// compiled to a total DFA whose transition monoid the solver uses.
/// The process-privilege property of Figure 3 is written:
///
///   start state Unpriv :
///     | seteuid_zero -> Priv;
///
///   state Priv :
///     | seteuid_nonzero -> Unpriv
///     | execl -> Error;
///
///   accept state Error;
///
/// Extensions supported here:
///   * '#' line comments;
///   * parametric symbols (Section 6.4): "| open(x) -> Opened;"
///     declares a symbol with parameter x, instantiated on the fly by
///     substitution environments;
///   * "symbols a, b, c;" declares extra alphabet symbols that label
///     no transition (they implicitly go to the dead state), so that
///     several properties can share one alphabet.
///
/// Transitions not written implicitly go to a rejecting sink state; a
/// missing transition means the word has left the property's language.
/// Symbols are *not* implicitly self-looping — a property that should
/// ignore a symbol in a state must say "| sym -> SameState".
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SPEC_SPECPARSER_H
#define RASC_SPEC_SPECPARSER_H

#include "automata/Dfa.h"
#include "support/Diag.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rasc {

/// An alphabet symbol declared by a specification, with the names of
/// its parameters (empty for non-parametric symbols).
struct SpecSymbol {
  std::string Name;
  std::vector<std::string> Params;
};

/// A compiled specification: the total DFA plus the naming metadata
/// needed by applications (state names for diagnostics, parametric
/// symbol declarations for substitution environments).
class SpecAutomaton {
public:
  SpecAutomaton(Dfa Machine, std::vector<std::string> StateNames,
                std::vector<SpecSymbol> Symbols)
      : Machine(std::move(Machine)), StateNames(std::move(StateNames)),
        Symbols(std::move(Symbols)) {}

  const Dfa &machine() const { return Machine; }

  /// State name for diagnostics; the implicit sink is "<dead>".
  const std::string &stateName(StateId S) const {
    assert(S < StateNames.size() && "state out of range");
    return StateNames[S];
  }

  std::optional<StateId> stateByName(std::string_view Name) const {
    for (StateId I = 0, E = static_cast<StateId>(StateNames.size()); I != E;
         ++I)
      if (StateNames[I] == Name)
        return I;
    return std::nullopt;
  }

  const std::vector<SpecSymbol> &symbols() const { return Symbols; }

  /// \returns true if the given symbol takes parameters.
  bool isParametric(SymbolId Sym) const {
    assert(Sym < Symbols.size() && "symbol out of range");
    return !Symbols[Sym].Params.empty();
  }

private:
  Dfa Machine;
  std::vector<std::string> StateNames;
  std::vector<SpecSymbol> Symbols;
};

/// Parses and compiles \p Text. On failure the Diag carries the
/// message and the 1-based line (and, for syntax errors, column) of
/// the offending token.
Expected<SpecAutomaton> parseSpecEx(std::string_view Text);

/// Convenience wrapper over parseSpecEx(): returns std::nullopt and
/// sets \p Error to the rendered diagnostic on failure.
std::optional<SpecAutomaton> parseSpec(std::string_view Text,
                                       std::string *Error = nullptr);

} // namespace rasc

#endif // RASC_SPEC_SPECPARSER_H
