//===- spec/SpecParser.cpp - Annotation specification language --*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "spec/SpecParser.h"

#include <cctype>
#include <map>

using namespace rasc;

namespace {

enum class TokKind {
  Ident,
  Colon,
  Semi,
  Pipe,
  Arrow,
  LParen,
  RParen,
  Comma,
  End,
};

struct Token {
  TokKind Kind;
  std::string Text;
  unsigned Line;
};

class Lexer {
public:
  explicit Lexer(std::string_view Input) : Input(Input) {}

  Token next() {
    skipTrivia();
    if (Pos >= Input.size())
      return {TokKind::End, "", Line};
    char C = Input[Pos];
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Input.size() &&
             (std::isalnum(static_cast<unsigned char>(Input[Pos])) ||
              Input[Pos] == '_'))
        ++Pos;
      return {TokKind::Ident,
              std::string(Input.substr(Start, Pos - Start)), Line};
    }
    switch (C) {
    case ':':
      ++Pos;
      return {TokKind::Colon, ":", Line};
    case ';':
      ++Pos;
      return {TokKind::Semi, ";", Line};
    case '|':
      ++Pos;
      return {TokKind::Pipe, "|", Line};
    case '(':
      ++Pos;
      return {TokKind::LParen, "(", Line};
    case ')':
      ++Pos;
      return {TokKind::RParen, ")", Line};
    case ',':
      ++Pos;
      return {TokKind::Comma, ",", Line};
    case '-':
      if (Pos + 1 < Input.size() && Input[Pos + 1] == '>') {
        Pos += 2;
        return {TokKind::Arrow, "->", Line};
      }
      break;
    default:
      break;
    }
    return {TokKind::End, std::string(1, C), Line}; // reported as error
  }

private:
  void skipTrivia() {
    while (Pos < Input.size()) {
      char C = Input[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Input.size() && Input[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Input;
  size_t Pos = 0;
  unsigned Line = 1;
};

struct Arm {
  std::string Symbol;
  std::vector<std::string> Params;
  std::string Target;
  unsigned Line;
};

struct StateDecl {
  std::string Name;
  bool IsStart = false;
  bool IsAccept = false;
  std::vector<Arm> Arms;
  unsigned Line;
};

class Parser {
public:
  Parser(std::string_view Input, std::string *Error)
      : Lex(Input), Error(Error) {
    Tok = Lex.next();
  }

  bool parse(std::vector<StateDecl> &States,
             std::vector<std::string> &ExtraSymbols) {
    while (Tok.Kind != TokKind::End || !Tok.Text.empty()) {
      if (Tok.Kind == TokKind::End && Tok.Text.empty())
        break;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected declaration");
      if (Tok.Text == "symbols") {
        if (!parseSymbolsDecl(ExtraSymbols))
          return false;
        continue;
      }
      StateDecl D;
      if (!parseStateDecl(D))
        return false;
      States.push_back(std::move(D));
    }
    return true;
  }

private:
  bool fail(std::string_view Msg) {
    if (Error && Error->empty())
      *Error = std::string(Msg) + " on line " + std::to_string(Tok.Line);
    return false;
  }

  void advance() { Tok = Lex.next(); }

  bool expect(TokKind K, std::string_view What) {
    if (Tok.Kind != K)
      return fail(std::string("expected ") + std::string(What));
    advance();
    return true;
  }

  bool parseSymbolsDecl(std::vector<std::string> &ExtraSymbols) {
    advance(); // 'symbols'
    while (true) {
      if (Tok.Kind != TokKind::Ident)
        return fail("expected symbol name");
      ExtraSymbols.push_back(Tok.Text);
      advance();
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      return expect(TokKind::Semi, "';'");
    }
  }

  bool parseStateDecl(StateDecl &D) {
    D.Line = Tok.Line;
    while (Tok.Kind == TokKind::Ident &&
           (Tok.Text == "start" || Tok.Text == "accept")) {
      (Tok.Text == "start" ? D.IsStart : D.IsAccept) = true;
      advance();
    }
    if (Tok.Kind != TokKind::Ident || Tok.Text != "state")
      return fail("expected 'state'");
    advance();
    if (Tok.Kind != TokKind::Ident)
      return fail("expected state name");
    D.Name = Tok.Text;
    advance();
    if (Tok.Kind == TokKind::Semi) {
      advance();
      return true;
    }
    if (!expect(TokKind::Colon, "':' or ';'"))
      return false;
    while (Tok.Kind == TokKind::Pipe) {
      advance();
      Arm A;
      A.Line = Tok.Line;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected symbol name");
      A.Symbol = Tok.Text;
      advance();
      if (Tok.Kind == TokKind::LParen) {
        advance();
        while (true) {
          if (Tok.Kind != TokKind::Ident)
            return fail("expected parameter name");
          A.Params.push_back(Tok.Text);
          advance();
          if (Tok.Kind == TokKind::Comma) {
            advance();
            continue;
          }
          break;
        }
        if (!expect(TokKind::RParen, "')'"))
          return false;
      }
      if (!expect(TokKind::Arrow, "'->'"))
        return false;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected target state name");
      A.Target = Tok.Text;
      advance();
      D.Arms.push_back(std::move(A));
    }
    return expect(TokKind::Semi, "';'");
  }

  Lexer Lex;
  Token Tok;
  std::string *Error;
};

} // namespace

std::optional<SpecAutomaton> rasc::parseSpec(std::string_view Text,
                                             std::string *Error) {
  std::string LocalError;
  if (!Error)
    Error = &LocalError;

  std::vector<StateDecl> States;
  std::vector<std::string> ExtraSymbols;
  Parser P(Text, Error);
  if (!P.parse(States, ExtraSymbols))
    return std::nullopt;

  if (States.empty()) {
    *Error = "specification declares no states";
    return std::nullopt;
  }

  DfaBuilder B;
  std::map<std::string, StateId> StateIds;
  std::vector<std::string> StateNames;
  for (const StateDecl &D : States) {
    if (StateIds.count(D.Name)) {
      *Error = "duplicate state '" + D.Name + "' on line " +
               std::to_string(D.Line);
      return std::nullopt;
    }
    StateIds[D.Name] = B.addState(D.Name);
    StateNames.push_back(D.Name);
  }

  std::vector<SpecSymbol> Symbols;
  auto addSymbol = [&](const std::string &Name,
                       const std::vector<std::string> &Params,
                       unsigned Line) -> std::optional<SymbolId> {
    SymbolId Id = B.addSymbol(Name);
    if (Id == Symbols.size()) {
      Symbols.push_back({Name, Params});
      return Id;
    }
    if (Symbols[Id].Params != Params) {
      *Error = "symbol '" + Name +
               "' used with inconsistent parameters on line " +
               std::to_string(Line);
      return std::nullopt;
    }
    return Id;
  };

  for (const std::string &S : ExtraSymbols)
    if (!addSymbol(S, {}, 0))
      return std::nullopt;

  std::map<uint64_t, int> SeenTransitions;
  bool HaveStart = false, HaveAccept = false;
  for (const StateDecl &D : States) {
    StateId S = StateIds[D.Name];
    if (D.IsStart) {
      if (HaveStart) {
        *Error = "multiple start states ('" + D.Name + "' on line " +
                 std::to_string(D.Line) + ")";
        return std::nullopt;
      }
      B.setStart(S);
      HaveStart = true;
    }
    if (D.IsAccept) {
      B.setAccepting(S);
      HaveAccept = true;
    }
    for (const Arm &A : D.Arms) {
      auto TargetIt = StateIds.find(A.Target);
      if (TargetIt == StateIds.end()) {
        *Error = "unknown target state '" + A.Target + "' on line " +
                 std::to_string(A.Line);
        return std::nullopt;
      }
      std::optional<SymbolId> Sym = addSymbol(A.Symbol, A.Params, A.Line);
      if (!Sym)
        return std::nullopt;
      if (!SeenTransitions
               .emplace((static_cast<uint64_t>(S) << 32) | *Sym, 0)
               .second) {
        *Error = "duplicate transition on '" + A.Symbol + "' from state '" +
                 D.Name + "' on line " + std::to_string(A.Line);
        return std::nullopt;
      }
      B.addTransition(S, *Sym, TargetIt->second);
    }
  }

  if (!HaveStart) {
    *Error = "no start state declared";
    return std::nullopt;
  }
  if (!HaveAccept) {
    *Error = "no accept state declared";
    return std::nullopt;
  }

  Dfa M = B.build();
  // Name the implicit dead state, if build() created one.
  while (StateNames.size() < M.numStates())
    StateNames.push_back("<dead>");
  return SpecAutomaton(std::move(M), std::move(StateNames),
                       std::move(Symbols));
}
