//===- spec/SpecParser.cpp - Annotation specification language --*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "spec/SpecParser.h"

#include <cctype>
#include <map>

using namespace rasc;

namespace {

enum class TokKind {
  Ident,
  Colon,
  Semi,
  Pipe,
  Arrow,
  LParen,
  RParen,
  Comma,
  End,
};

struct Token {
  TokKind Kind;
  std::string Text;
  uint32_t Line;
  uint32_t Col;
};

class Lexer {
public:
  explicit Lexer(std::string_view Input) : Input(Input) {}

  Token next() {
    skipTrivia();
    uint32_t Col = static_cast<uint32_t>(Pos - LineStart + 1);
    if (Pos >= Input.size())
      return {TokKind::End, "", Line, Col};
    char C = Input[Pos];
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Input.size() &&
             (std::isalnum(static_cast<unsigned char>(Input[Pos])) ||
              Input[Pos] == '_'))
        ++Pos;
      return {TokKind::Ident,
              std::string(Input.substr(Start, Pos - Start)), Line, Col};
    }
    switch (C) {
    case ':':
      ++Pos;
      return {TokKind::Colon, ":", Line, Col};
    case ';':
      ++Pos;
      return {TokKind::Semi, ";", Line, Col};
    case '|':
      ++Pos;
      return {TokKind::Pipe, "|", Line, Col};
    case '(':
      ++Pos;
      return {TokKind::LParen, "(", Line, Col};
    case ')':
      ++Pos;
      return {TokKind::RParen, ")", Line, Col};
    case ',':
      ++Pos;
      return {TokKind::Comma, ",", Line, Col};
    case '-':
      if (Pos + 1 < Input.size() && Input[Pos + 1] == '>') {
        Pos += 2;
        return {TokKind::Arrow, "->", Line, Col};
      }
      break;
    default:
      break;
    }
    return {TokKind::End, std::string(1, C), Line, Col}; // reported as error
  }

private:
  void skipTrivia() {
    while (Pos < Input.size()) {
      char C = Input[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Input.size() && Input[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Input;
  size_t Pos = 0;
  size_t LineStart = 0;
  uint32_t Line = 1;
};

struct Arm {
  std::string Symbol;
  std::vector<std::string> Params;
  std::string Target;
  unsigned Line;
};

struct StateDecl {
  std::string Name;
  bool IsStart = false;
  bool IsAccept = false;
  std::vector<Arm> Arms;
  unsigned Line;
};

class Parser {
public:
  explicit Parser(std::string_view Input) : Lex(Input) {
    Tok = Lex.next();
  }

  Diag err() const { return Err ? *Err : Diag("parse error"); }

  bool parse(std::vector<StateDecl> &States,
             std::vector<std::string> &ExtraSymbols) {
    while (Tok.Kind != TokKind::End || !Tok.Text.empty()) {
      if (Tok.Kind == TokKind::End && Tok.Text.empty())
        break;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected declaration");
      if (Tok.Text == "symbols") {
        if (!parseSymbolsDecl(ExtraSymbols))
          return false;
        continue;
      }
      StateDecl D;
      if (!parseStateDecl(D))
        return false;
      States.push_back(std::move(D));
    }
    return true;
  }

private:
  bool fail(std::string_view Msg) {
    if (!Err)
      Err = Diag(std::string(Msg), SourceLoc{Tok.Line, Tok.Col});
    return false;
  }

  void advance() { Tok = Lex.next(); }

  bool expect(TokKind K, std::string_view What) {
    if (Tok.Kind != K)
      return fail(std::string("expected ") + std::string(What));
    advance();
    return true;
  }

  bool parseSymbolsDecl(std::vector<std::string> &ExtraSymbols) {
    advance(); // 'symbols'
    while (true) {
      if (Tok.Kind != TokKind::Ident)
        return fail("expected symbol name");
      ExtraSymbols.push_back(Tok.Text);
      advance();
      if (Tok.Kind == TokKind::Comma) {
        advance();
        continue;
      }
      return expect(TokKind::Semi, "';'");
    }
  }

  bool parseStateDecl(StateDecl &D) {
    D.Line = Tok.Line;
    while (Tok.Kind == TokKind::Ident &&
           (Tok.Text == "start" || Tok.Text == "accept")) {
      (Tok.Text == "start" ? D.IsStart : D.IsAccept) = true;
      advance();
    }
    if (Tok.Kind != TokKind::Ident || Tok.Text != "state")
      return fail("expected 'state'");
    advance();
    if (Tok.Kind != TokKind::Ident)
      return fail("expected state name");
    D.Name = Tok.Text;
    advance();
    if (Tok.Kind == TokKind::Semi) {
      advance();
      return true;
    }
    if (!expect(TokKind::Colon, "':' or ';'"))
      return false;
    while (Tok.Kind == TokKind::Pipe) {
      advance();
      Arm A;
      A.Line = Tok.Line;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected symbol name");
      A.Symbol = Tok.Text;
      advance();
      if (Tok.Kind == TokKind::LParen) {
        advance();
        while (true) {
          if (Tok.Kind != TokKind::Ident)
            return fail("expected parameter name");
          A.Params.push_back(Tok.Text);
          advance();
          if (Tok.Kind == TokKind::Comma) {
            advance();
            continue;
          }
          break;
        }
        if (!expect(TokKind::RParen, "')'"))
          return false;
      }
      if (!expect(TokKind::Arrow, "'->'"))
        return false;
      if (Tok.Kind != TokKind::Ident)
        return fail("expected target state name");
      A.Target = Tok.Text;
      advance();
      D.Arms.push_back(std::move(A));
    }
    return expect(TokKind::Semi, "';'");
  }

  Lexer Lex;
  Token Tok;
  std::optional<Diag> Err;
};

} // namespace

Expected<SpecAutomaton> rasc::parseSpecEx(std::string_view Text) {
  std::vector<StateDecl> States;
  std::vector<std::string> ExtraSymbols;
  Parser P(Text);
  if (!P.parse(States, ExtraSymbols))
    return P.err();

  auto at = [](unsigned Line) { return SourceLoc{Line, 0}; };

  if (States.empty())
    return Diag("specification declares no states");

  DfaBuilder B;
  std::map<std::string, StateId> StateIds;
  std::vector<std::string> StateNames;
  for (const StateDecl &D : States) {
    if (StateIds.count(D.Name))
      return Diag("duplicate state '" + D.Name + "'", at(D.Line));
    StateIds[D.Name] = B.addState(D.Name);
    StateNames.push_back(D.Name);
  }

  std::vector<SpecSymbol> Symbols;
  std::optional<Diag> SymErr;
  auto addSymbol = [&](const std::string &Name,
                       const std::vector<std::string> &Params,
                       unsigned Line) -> std::optional<SymbolId> {
    SymbolId Id = B.addSymbol(Name);
    if (Id == Symbols.size()) {
      Symbols.push_back({Name, Params});
      return Id;
    }
    if (Symbols[Id].Params != Params) {
      SymErr = Diag("symbol '" + Name +
                        "' used with inconsistent parameters",
                    at(Line));
      return std::nullopt;
    }
    return Id;
  };

  for (const std::string &S : ExtraSymbols)
    if (!addSymbol(S, {}, 0))
      return *SymErr;

  std::map<uint64_t, int> SeenTransitions;
  bool HaveStart = false, HaveAccept = false;
  for (const StateDecl &D : States) {
    StateId S = StateIds[D.Name];
    if (D.IsStart) {
      if (HaveStart)
        return Diag("multiple start states ('" + D.Name + "')", at(D.Line));
      B.setStart(S);
      HaveStart = true;
    }
    if (D.IsAccept) {
      B.setAccepting(S);
      HaveAccept = true;
    }
    for (const Arm &A : D.Arms) {
      auto TargetIt = StateIds.find(A.Target);
      if (TargetIt == StateIds.end())
        return Diag("unknown target state '" + A.Target + "'", at(A.Line));
      std::optional<SymbolId> Sym = addSymbol(A.Symbol, A.Params, A.Line);
      if (!Sym)
        return *SymErr;
      if (!SeenTransitions
               .emplace((static_cast<uint64_t>(S) << 32) | *Sym, 0)
               .second)
        return Diag("duplicate transition on '" + A.Symbol +
                        "' from state '" + D.Name + "'",
                    at(A.Line));
      B.addTransition(S, *Sym, TargetIt->second);
    }
  }

  if (!HaveStart)
    return Diag("no start state declared");
  if (!HaveAccept)
    return Diag("no accept state declared");

  Dfa M = B.build();
  // Name the implicit dead state, if build() created one.
  while (StateNames.size() < M.numStates())
    StateNames.push_back("<dead>");
  return SpecAutomaton(std::move(M), std::move(StateNames),
                       std::move(Symbols));
}

std::optional<SpecAutomaton> rasc::parseSpec(std::string_view Text,
                                             std::string *Error) {
  Expected<SpecAutomaton> A = parseSpecEx(Text);
  if (A)
    return std::move(*A);
  if (Error && Error->empty())
    *Error = A.error().render();
  return std::nullopt;
}
