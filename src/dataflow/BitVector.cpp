//===- dataflow/BitVector.cpp - Interprocedural bit-vector dataflow -*- C++ -*//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "dataflow/BitVector.h"

#include "support/Trace.h"

#include <deque>

using namespace rasc;

//===----------------------------------------------------------------------===//
// AnnotatedBitVectorAnalysis
//===----------------------------------------------------------------------===//

AnnotatedBitVectorAnalysis::AnnotatedBitVectorAnalysis(
    const BitVectorProblem &Problem)
    : Problem(Problem) {
  Dom = std::make_unique<GenKillDomain>(Problem.numBits());
  CS = std::make_unique<ConstraintSystem>(*Dom);
}

void AnnotatedBitVectorAnalysis::prepare(SolverOptions Opts) {
  RASC_TRACE_SCOPE("dataflow.prepare");
  if (Generated) {
    if (!Solver)
      Solver = std::make_unique<BidirectionalSolver>(*CS, Opts);
    return;
  }
  Generated = true;
  const Program &Prog = Problem.program();
  StmtVars.assign(Prog.numStatements(), 0);
  for (StmtId S = 0; S != Prog.numStatements(); ++S)
    StmtVars[S] = CS->freshVar("S" + std::to_string(S));

  Pc = CS->addConstant("pc");
  CS->add(CS->cons(Pc),
          CS->var(StmtVars[Prog.entry(Prog.mainFunction())]));

  for (StmtId S = 0; S != Prog.numStatements(); ++S) {
    const Stmt &St = Prog.stmt(S);
    if (St.Kind == Stmt::Call) {
      ConsId O = CS->addConstructor("o@" + std::to_string(S), 1);
      CS->add(CS->cons(O, {StmtVars[S]}),
              CS->var(StmtVars[Prog.entry(St.Callee)]));
      for (StmtId Succ : St.Succs)
        CS->add(CS->proj(O, 0, StmtVars[Prog.exit(St.Callee)]),
                CS->var(StmtVars[Succ]));
      continue;
    }
    AnnId Ann = Dom->transfer(Problem.gens(S), Problem.kills(S));
    for (StmtId Succ : St.Succs)
      CS->add(CS->var(StmtVars[S]), CS->var(StmtVars[Succ]), Ann);
  }

  Solver = std::make_unique<BidirectionalSolver>(*CS, Opts);
}

void AnnotatedBitVectorAnalysis::finalize() {
  RASC_TRACE_SCOPE("dataflow.finalize");
  assert(Solver && "finalize() requires prepare()");
  const Program &Prog = Problem.program();
  AtomReachability AR = Solver->atomReachability(Pc);
  Reaching.assign(Prog.numStatements(), {});
  for (StmtId S = 0; S != Prog.numStatements(); ++S)
    Reaching[S] = AR.annotations(StmtVars[S]);
}

void AnnotatedBitVectorAnalysis::solve() {
  RASC_TRACE_SCOPE("dataflow.solve");
  prepare();
  Solver->solve();
  finalize();
}

std::vector<BatchSolver::Result> AnnotatedBitVectorAnalysis::solveAll(
    std::span<AnnotatedBitVectorAnalysis *const> Analyses,
    const BatchSolver::Options &BatchOpts, SolverStats *MergedStats) {
  std::vector<BidirectionalSolver *> Solvers;
  Solvers.reserve(Analyses.size());
  for (AnnotatedBitVectorAnalysis *A : Analyses) {
    A->prepare();
    Solvers.push_back(A->solver());
  }
  BatchSolver Batch(BatchOpts);
  std::vector<BatchSolver::Result> Results = Batch.solveAll(Solvers);
  for (AnnotatedBitVectorAnalysis *A : Analyses)
    A->finalize();
  if (MergedStats)
    *MergedStats = Batch.mergedStats();
  return Results;
}

bool AnnotatedBitVectorAnalysis::mayHold(StmtId S, unsigned Bit) const {
  for (AnnId F : Reaching[S])
    if ((Dom->apply(F, 0) >> Bit) & 1)
      return true;
  return false;
}

bool AnnotatedBitVectorAnalysis::mustHold(StmtId S, unsigned Bit) const {
  if (Reaching[S].empty())
    return false;
  for (AnnId F : Reaching[S])
    if (!((Dom->apply(F, 0) >> Bit) & 1))
      return false;
  return true;
}

size_t AnnotatedBitVectorAnalysis::numReachingClasses(StmtId S) const {
  return Reaching[S].size();
}

//===----------------------------------------------------------------------===//
// IterativeBitVectorAnalysis
//===----------------------------------------------------------------------===//

namespace {

/// A gen/kill transfer pair in normal form (Gen and Kill disjoint).
struct Transfer {
  uint64_t Gen = 0;
  uint64_t Kill = 0;

  friend bool operator==(const Transfer &A, const Transfer &B) {
    return A.Gen == B.Gen && A.Kill == B.Kill;
  }
};

uint64_t applyT(Transfer T, uint64_t X) { return (X & ~T.Kill) | T.Gen; }

/// Sequential composition: \p First then \p Then.
Transfer composeT(Transfer First, Transfer Then) {
  uint64_t Gen = Then.Gen | (First.Gen & ~Then.Kill);
  uint64_t Kill = (First.Kill | Then.Kill) & ~Gen;
  return {Gen, Kill};
}

/// Path merge for may-analysis (union of outputs).
Transfer mergeMay(Transfer A, Transfer B) {
  uint64_t Gen = A.Gen | B.Gen;
  return {Gen, (A.Kill & B.Kill) & ~Gen};
}

/// Path merge for must-analysis (intersection of outputs); relies on
/// the disjoint normal form.
Transfer mergeMust(Transfer A, Transfer B) {
  uint64_t Gen = A.Gen & B.Gen;
  return {Gen, (A.Kill | B.Kill) & ~Gen};
}

constexpr uint64_t AllBits = ~uint64_t(0);

/// Merge identities ("no path yet").
const Transfer MayBottom{0, AllBits};
const Transfer MustTop{AllBits, 0};

} // namespace

IterativeBitVectorAnalysis::IterativeBitVectorAnalysis(
    const BitVectorProblem &Problem)
    : Problem(Problem) {}

void IterativeBitVectorAnalysis::solve() {
  const Program &Prog = Problem.program();
  uint32_t NumStmts = Prog.numStatements();
  uint32_t NumFuncs = Prog.numFunctions();

  // Per-function summaries (entry-to-exit), iterated to a fixpoint
  // over the call graph; T*[S] are entry-to-S path transfers.
  std::vector<Transfer> SumMay(NumFuncs, MayBottom);
  std::vector<Transfer> SumMust(NumFuncs, MustTop);
  std::vector<Transfer> TMay(NumStmts, MayBottom);
  std::vector<Transfer> TMust(NumStmts, MustTop);
  std::vector<bool> IntraReach(NumStmts, false);
  // A call to a function that cannot reach its exit blocks the path;
  // Returns[] is part of the summary fixpoint (least, so recursive
  // functions that never bottom out correctly stay "non-returning").
  std::vector<bool> Returns(NumFuncs, false);

  auto stmtTransfer = [&](StmtId S, bool May) -> Transfer {
    const Stmt &St = Prog.stmt(S);
    if (St.Kind == Stmt::Call)
      return May ? SumMay[St.Callee] : SumMust[St.Callee];
    return {Problem.gens(S), Problem.kills(S)};
  };

  bool SummariesChanged = true;
  while (SummariesChanged) {
    SummariesChanged = false;
    ++Iterations;
    for (FuncId F = 0; F != NumFuncs; ++F) {
      // Intraprocedural fixpoint for this function, recomputed from
      // scratch against the current callee summaries.
      for (StmtId S = 0; S != NumStmts; ++S)
        if (Prog.stmt(S).Parent == F) {
          TMay[S] = MayBottom;
          TMust[S] = MustTop;
          IntraReach[S] = false;
        }
      std::deque<StmtId> Work{Prog.entry(F)};
      TMay[Prog.entry(F)] = Transfer{};
      TMust[Prog.entry(F)] = Transfer{};
      IntraReach[Prog.entry(F)] = true;
      while (!Work.empty()) {
        StmtId S = Work.front();
        Work.pop_front();
        const Stmt &St = Prog.stmt(S);
        if (St.Kind == Stmt::Call && !Returns[St.Callee])
          continue; // the callee never returns; path blocked here
        Transfer OutMay = composeT(TMay[S], stmtTransfer(S, true));
        Transfer OutMust = composeT(TMust[S], stmtTransfer(S, false));
        for (StmtId Succ : Prog.stmt(S).Succs) {
          Transfer NewMay =
              IntraReach[Succ] ? mergeMay(TMay[Succ], OutMay) : OutMay;
          Transfer NewMust =
              IntraReach[Succ] ? mergeMust(TMust[Succ], OutMust) : OutMust;
          if (!IntraReach[Succ] || !(NewMay == TMay[Succ]) ||
              !(NewMust == TMust[Succ])) {
            IntraReach[Succ] = true;
            TMay[Succ] = NewMay;
            TMust[Succ] = NewMust;
            Work.push_back(Succ);
          }
        }
      }
      StmtId Exit = Prog.exit(F);
      Transfer NewSumMay = IntraReach[Exit] ? TMay[Exit] : MayBottom;
      Transfer NewSumMust = IntraReach[Exit] ? TMust[Exit] : MustTop;
      if (!(NewSumMay == SumMay[F]) || !(NewSumMust == SumMust[F]) ||
          Returns[F] != IntraReach[Exit]) {
        SumMay[F] = NewSumMay;
        SumMust[F] = NewSumMust;
        Returns[F] = IntraReach[Exit];
        SummariesChanged = true;
      }
    }
  }

  // Entry-value propagation over the call graph.
  std::vector<uint64_t> EntryMay(NumFuncs, 0);
  std::vector<uint64_t> EntryMust(NumFuncs, AllBits);
  std::vector<bool> FuncReach(NumFuncs, false);
  FuncReach[Prog.mainFunction()] = true;
  EntryMust[Prog.mainFunction()] = 0; // no facts hold initially

  bool EntriesChanged = true;
  while (EntriesChanged) {
    EntriesChanged = false;
    ++Iterations;
    for (FuncId F = 0; F != NumFuncs; ++F) {
      if (!FuncReach[F])
        continue;
      for (StmtId S = 0; S != NumStmts; ++S) {
        const Stmt &St = Prog.stmt(S);
        if (St.Parent != F || St.Kind != Stmt::Call || !IntraReach[S])
          continue;
        uint64_t CtxMay = applyT(TMay[S], EntryMay[F]);
        uint64_t CtxMust = applyT(TMust[S], EntryMust[F]);
        FuncId G = St.Callee;
        uint64_t NewMay = EntryMay[G] | CtxMay;
        uint64_t NewMust = FuncReach[G] ? (EntryMust[G] & CtxMust) : CtxMust;
        if (!FuncReach[G] || NewMay != EntryMay[G] ||
            NewMust != EntryMust[G]) {
          FuncReach[G] = true;
          EntryMay[G] = NewMay;
          EntryMust[G] = NewMust;
          EntriesChanged = true;
        }
      }
    }
  }

  MayIn.assign(NumStmts, 0);
  MustIn.assign(NumStmts, 0);
  Reachable.assign(NumStmts, false);
  for (StmtId S = 0; S != NumStmts; ++S) {
    FuncId F = Prog.stmt(S).Parent;
    if (!FuncReach[F] || !IntraReach[S])
      continue;
    Reachable[S] = true;
    MayIn[S] = applyT(TMay[S], EntryMay[F]);
    MustIn[S] = applyT(TMust[S], EntryMust[F]);
  }
  if (unsigned Bits = Problem.numBits(); Bits < 64) {
    uint64_t Mask = (uint64_t(1) << Bits) - 1;
    for (StmtId S = 0; S != NumStmts; ++S) {
      MayIn[S] &= Mask;
      MustIn[S] &= Mask;
    }
  }
}
