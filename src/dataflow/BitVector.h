//===- dataflow/BitVector.h - Interprocedural bit-vector dataflow -*- C++ -*-//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural bit-vector dataflow via regularly annotated set
/// constraints (paper Sections 3.3 and 6): the gen/kill language over
/// the alphabet {g_1..g_n, k_1..k_n} annotates CFG edges, and the set
/// of reaching transfer-function classes at a statement is exactly the
/// meet-over-valid-paths information. The n-bit language's
/// representative functions are the 3^n classical transfer functions
/// (id/gen/kill per bit), which GenKillDomain represents directly as
/// mask pairs; there is no need to build the 2^n-state product DFA.
///
/// The baseline is a classical summary-based iterative interprocedural
/// solver (the functional approach specialized to distributive
/// gen/kill problems): per-function (MayGen, MustKill) summaries to a
/// fixpoint over the call graph, then a statement-level MFP
/// propagation. For distributive problems MFP equals the
/// meet-over-valid-paths solution, so the two implementations must
/// agree on may-queries (differentially tested).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_DATAFLOW_BITVECTOR_H
#define RASC_DATAFLOW_BITVECTOR_H

#include "core/BatchSolver.h"
#include "core/Domains.h"
#include "core/Solver.h"
#include "pdmc/Program.h"

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace rasc {

/// A forward may/must bit-vector problem over a Program: each
/// statement may generate and kill facts (bits).
class BitVectorProblem {
public:
  BitVectorProblem(const Program &Prog, unsigned NumBits)
      : Prog(Prog), NumBits(NumBits), Gens(Prog.numStatements(), 0),
        Kills(Prog.numStatements(), 0) {
    assert(NumBits >= 1 && NumBits <= 64 && "1..64 facts supported");
  }

  const Program &program() const { return Prog; }
  unsigned numBits() const { return NumBits; }

  void setGen(StmtId S, unsigned Bit) { Gens[S] |= uint64_t(1) << Bit; }
  void setKill(StmtId S, unsigned Bit) { Kills[S] |= uint64_t(1) << Bit; }

  /// Whole-mask transfer setter (ORs into the existing masks) for
  /// front-ends that compute per-statement gen/kill sets as words —
  /// the eBPF lowering's register effects in particular.
  void addTransfer(StmtId S, uint64_t GenMask, uint64_t KillMask) {
    assert((NumBits == 64 || ((GenMask | KillMask) >> NumBits) == 0) &&
           "mask wider than the problem");
    Gens[S] |= GenMask;
    Kills[S] |= KillMask;
  }

  uint64_t gens(StmtId S) const { return Gens[S]; }
  /// Kills are applied before gens at the same statement (a statement
  /// that both kills and gens leaves the fact set).
  uint64_t kills(StmtId S) const { return Kills[S] & ~Gens[S]; }

private:
  const Program &Prog;
  unsigned NumBits;
  std::vector<uint64_t> Gens;
  std::vector<uint64_t> Kills;
};

/// The annotated-constraint solver for a BitVectorProblem.
class AnnotatedBitVectorAnalysis {
public:
  explicit AnnotatedBitVectorAnalysis(const BitVectorProblem &Problem);

  /// Runs constraint generation and resolution.
  void solve();

  /// Splits solve() for batch use (solveAll): generates the
  /// constraints and constructs the solver without running it.
  /// Idempotent.
  void prepare(SolverOptions Opts = SolverOptions());

  /// The prepared solver (null before prepare()). Exposed for
  /// governance and durability: callers may set budgets, save a
  /// checkpoint, or restore one before solve(). Note that the
  /// gen/kill domain interns annotations lazily during constraint
  /// generation, so a snapshot from another process may carry a
  /// different interning order; restore() then rejects with a
  /// domain-mismatch Diag and leaves the solver fresh — re-solving
  /// from scratch is the correct (and tested) fallback.
  BidirectionalSolver *solver() { return Solver.get(); }

  /// The query half of solve(): reads the reaching classes off the
  /// solved constraint graph. Requires prepare() and a solve.
  void finalize();

  /// Solves many independent analyses concurrently on one BatchSolver
  /// pool under shared governance; equivalent to calling solve() on
  /// each (differentially tested). Returns the per-analysis results
  /// in input order; interrupted analyses have partial (sound)
  /// query answers and resume under a later solveAll or solve.
  static std::vector<BatchSolver::Result>
  solveAll(std::span<AnnotatedBitVectorAnalysis *const> Analyses,
           const BatchSolver::Options &BatchOpts = {},
           SolverStats *MergedStats = nullptr);

  /// May-analysis: can fact \p Bit hold on entry to \p S on some valid
  /// interprocedural path from main's entry (all facts initially
  /// false)?
  bool mayHold(StmtId S, unsigned Bit) const;

  /// Must-analysis: does fact \p Bit hold on entry to \p S on *every*
  /// valid path reaching it? (False when S is unreachable.)
  bool mustHold(StmtId S, unsigned Bit) const;

  /// The distinct path transfer-function classes reaching \p S; the
  /// size is bounded by 3^n regardless of path count (Section 4's
  /// order-independence argument).
  size_t numReachingClasses(StmtId S) const;

  const SolverStats &solverStats() const { return Solver->stats(); }

  /// The generated constraint system (populated by solve()); exposed
  /// so tests can re-solve the same system under different budgets.
  const ConstraintSystem &system() const { return *CS; }

private:
  const BitVectorProblem &Problem;
  std::unique_ptr<GenKillDomain> Dom;
  std::unique_ptr<ConstraintSystem> CS;
  std::unique_ptr<BidirectionalSolver> Solver;
  std::vector<VarId> StmtVars;
  bool Generated = false;
  ConsId Pc = 0;
  // Reaching annotation classes per statement, filled by solve().
  std::vector<std::vector<AnnId>> Reaching;
};

/// Classical summary-based iterative baseline.
class IterativeBitVectorAnalysis {
public:
  explicit IterativeBitVectorAnalysis(const BitVectorProblem &Problem);

  void solve();

  bool mayHold(StmtId S, unsigned Bit) const {
    return (MayIn[S] >> Bit) & 1;
  }
  bool mustHold(StmtId S, unsigned Bit) const {
    return Reachable[S] && ((MustIn[S] >> Bit) & 1);
  }

  size_t iterations() const { return Iterations; }

private:
  const BitVectorProblem &Problem;
  std::vector<uint64_t> MayIn, MustIn;
  std::vector<bool> Reachable;
  size_t Iterations = 0;
};

} // namespace rasc

#endif // RASC_DATAFLOW_BITVECTOR_H
