//===- automata/Dfa.h - Deterministic finite automata -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic finite automata over a symbolic alphabet. The
/// annotation language of a regularly annotated constraint system is
/// given by a (minimized) DFA M; the solver itself only ever sees M's
/// transition monoid (see Monoid.h), but construction, products,
/// substring closure, and the specification-language compiler all
/// operate on automata.
///
/// DFAs are always *total*: every (state, symbol) pair has a successor.
/// A rejecting sink ("dead") state is materialized when needed. This is
/// important because representative functions (paper Section 2.4) are
/// total functions on states.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_AUTOMATA_DFA_H
#define RASC_AUTOMATA_DFA_H

#include "support/DynamicBitset.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rasc {

using StateId = uint32_t;
using SymbolId = uint32_t;

constexpr StateId InvalidState = ~StateId(0);
constexpr SymbolId InvalidSymbol = ~SymbolId(0);

/// A word over the (dense) symbol alphabet.
using Word = std::vector<SymbolId>;

/// A total deterministic finite automaton.
///
/// States and symbols are dense indices. The alphabet is a list of
/// symbol names; automata combined by products or used to drive the
/// same constraint system must share identical alphabets (asserted).
class Dfa {
public:
  Dfa(std::vector<std::string> SymbolNames, uint32_t NumStates,
      StateId Start, DynamicBitset Accepting, std::vector<StateId> Trans)
      : SymbolNames(std::move(SymbolNames)), NumStatesVal(NumStates),
        StartState(Start), AcceptingStates(std::move(Accepting)),
        Transitions(std::move(Trans)) {
    assert(StartState < NumStatesVal && "start state out of range");
    assert(AcceptingStates.size() == NumStatesVal && "accept set size");
    assert(Transitions.size() ==
               static_cast<size_t>(NumStatesVal) * this->SymbolNames.size() &&
           "transition table size");
  }

  uint32_t numStates() const { return NumStatesVal; }
  uint32_t numSymbols() const {
    return static_cast<uint32_t>(SymbolNames.size());
  }
  StateId start() const { return StartState; }

  bool isAccepting(StateId S) const {
    assert(S < NumStatesVal && "state out of range");
    return AcceptingStates.test(S);
  }

  const DynamicBitset &acceptingStates() const { return AcceptingStates; }

  /// The successor of \p S on \p Sym; always defined (total automaton).
  StateId next(StateId S, SymbolId Sym) const {
    assert(S < NumStatesVal && "state out of range");
    assert(Sym < SymbolNames.size() && "symbol out of range");
    return Transitions[static_cast<size_t>(S) * SymbolNames.size() + Sym];
  }

  /// Runs the automaton on \p W from \p From (default: the start state).
  StateId run(std::span<const SymbolId> W, StateId From = InvalidState) const {
    StateId S = From == InvalidState ? StartState : From;
    for (SymbolId Sym : W)
      S = next(S, Sym);
    return S;
  }

  /// \returns true if \p W is in the automaton's language.
  bool accepts(std::span<const SymbolId> W) const {
    return isAccepting(run(W));
  }

  const std::string &symbolName(SymbolId Sym) const {
    assert(Sym < SymbolNames.size() && "symbol out of range");
    return SymbolNames[Sym];
  }

  const std::vector<std::string> &alphabet() const { return SymbolNames; }

  /// \returns the id of the symbol named \p Name, if any.
  std::optional<SymbolId> symbol(std::string_view Name) const {
    for (SymbolId I = 0, E = numSymbols(); I != E; ++I)
      if (SymbolNames[I] == Name)
        return I;
    return std::nullopt;
  }

  /// \returns the set of states from which some accepting state is
  /// reachable ("live" states). A word whose representative function
  /// maps every state to a dead state can never be extended to a word
  /// in L(M); the solver uses this to drop useless annotations.
  DynamicBitset liveStates() const;

  /// \returns the set of states reachable from the start state.
  DynamicBitset reachableStates() const;

  /// Graphviz rendering, for documentation and debugging.
  std::string toDot(std::string_view Title = "M") const;

private:
  std::vector<std::string> SymbolNames;
  uint32_t NumStatesVal;
  StateId StartState;
  DynamicBitset AcceptingStates;
  std::vector<StateId> Transitions; // NumStates x NumSymbols, row-major
};

/// Incremental construction of a total DFA with named states. Missing
/// transitions are routed to an implicitly created dead state.
class DfaBuilder {
public:
  /// Adds (or finds) an alphabet symbol.
  SymbolId addSymbol(std::string_view Name);

  /// Adds a new state. \p Name is used only for diagnostics.
  StateId addState(std::string_view Name = "");

  void setStart(StateId S) { Start = S; }
  void setAccepting(StateId S, bool Accepting = true);
  void addTransition(StateId From, SymbolId Sym, StateId To);

  uint32_t numStates() const { return static_cast<uint32_t>(Names.size()); }

  /// Finalizes the automaton. Unset transitions go to a fresh dead
  /// state (created only if some transition is missing).
  Dfa build() const;

private:
  std::vector<std::string> Symbols;
  std::vector<std::string> Names;
  std::vector<bool> Accepting;
  // Trans[s * Symbols.size() + a], InvalidState if unset. Resized lazily
  // in build(); stored sparsely here.
  std::vector<std::vector<StateId>> Rows;
  StateId Start = 0;
};

} // namespace rasc

#endif // RASC_AUTOMATA_DFA_H
