//===- automata/Machines.cpp - Machines from the paper ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/Machines.h"

#include <string>

using namespace rasc;

Dfa rasc::buildOneBitMachine() {
  DfaBuilder B;
  SymbolId G = B.addSymbol("g");
  SymbolId K = B.addSymbol("k");
  StateId S0 = B.addState("0");
  StateId S1 = B.addState("1");
  B.setStart(S0);
  B.setAccepting(S1);
  B.addTransition(S0, G, S1);
  B.addTransition(S1, G, S1);
  B.addTransition(S0, K, S0);
  B.addTransition(S1, K, S0);
  return B.build();
}

Dfa rasc::buildNBitMachine(unsigned NumBits) {
  assert(NumBits >= 1 && NumBits <= 20 && "unreasonable bit count");
  DfaBuilder B;
  std::vector<SymbolId> Gens(NumBits), Kills(NumBits);
  for (unsigned I = 0; I != NumBits; ++I) {
    Gens[I] = B.addSymbol("g" + std::to_string(I));
    Kills[I] = B.addSymbol("k" + std::to_string(I));
  }
  // One state per bit-vector value.
  uint32_t NumStates = 1u << NumBits;
  for (uint32_t V = 0; V != NumStates; ++V)
    B.addState(std::to_string(V));
  B.setStart(0);
  for (uint32_t V = 0; V != NumStates; ++V) {
    if (V == NumStates - 1)
      B.setAccepting(V);
    for (unsigned I = 0; I != NumBits; ++I) {
      B.addTransition(V, Gens[I], V | (1u << I));
      B.addTransition(V, Kills[I], V & ~(1u << I));
    }
  }
  return B.build();
}

Dfa rasc::buildAdversarialMachine(unsigned NumStates) {
  assert(NumStates >= 2 && "need at least two states");
  DfaBuilder B;
  SymbolId Rotate = B.addSymbol("rotate");
  SymbolId Swap = B.addSymbol("swap");
  SymbolId Merge = B.addSymbol("merge");
  for (unsigned I = 0; I != NumStates; ++I)
    B.addState(std::to_string(I));
  B.setStart(0);
  B.setAccepting(0);
  for (unsigned I = 0; I != NumStates; ++I) {
    // rotate: i -> i + 1 with wraparound.
    B.addTransition(I, Rotate, (I + 1) % NumStates);
    // swap: exchange states 0 and 1 (paper: states 1 and 2).
    StateId SwapTo = I == 0 ? 1 : (I == 1 ? 0 : I);
    B.addTransition(I, Swap, SwapTo);
    // merge: 1 -> 0 (paper: state 2 -> state 1), others fixed.
    StateId MergeTo = I == 1 ? 0 : I;
    B.addTransition(I, Merge, MergeTo);
  }
  return B.build();
}

Dfa rasc::buildFileStateMachine() {
  DfaBuilder B;
  SymbolId Open = B.addSymbol("open");
  SymbolId Close = B.addSymbol("close");
  StateId Closed = B.addState("closed");
  StateId Opened = B.addState("opened");
  B.setStart(Closed);
  B.setAccepting(Closed);
  B.addTransition(Closed, Open, Opened);
  B.addTransition(Opened, Close, Closed);
  // Double open / close on closed fall into the implicit dead state.
  return B.build();
}
