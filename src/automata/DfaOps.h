//===- automata/DfaOps.h - Automaton algorithms -----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classical automaton algorithms: subset construction, Moore
/// minimization, products, and the closure constructions the paper's
/// solver strategies need (Sections 2.3 and 5):
///
///   * substring closure, for the bidirectional domain T^{M^sub};
///   * prefix closure, for the forward domain T^{M^pre};
///   * suffix closure, for the backward domain T^{M^suf}.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_AUTOMATA_DFAOPS_H
#define RASC_AUTOMATA_DFAOPS_H

#include "automata/Dfa.h"
#include "automata/Nfa.h"

namespace rasc {

/// Subset construction. The result is total (a dead state is the empty
/// subset) and contains only reachable subsets.
Dfa determinize(const Nfa &N);

/// Moore partition refinement; the result is the unique minimal total
/// DFA for the language (up to state renaming). Unreachable states are
/// removed first.
Dfa minimize(const Dfa &M);

/// How to combine accept conditions in a product automaton.
enum class ProductKind { Intersection, Union, Difference };

/// Product of two DFAs over the *same* alphabet (asserted); only
/// reachable pairs are materialized.
Dfa product(const Dfa &A, const Dfa &B, ProductKind Kind);

/// Views a DFA as an NFA (e.g. to feed the closure constructions).
Nfa toNfa(const Dfa &M);

/// Minimal DFA accepting all substrings of L(M): the domain for
/// bidirectional solving (paper Section 2.3, "M^sub").
Dfa substringClosure(const Dfa &M);

/// Minimal DFA accepting all prefixes of L(M): forward solving.
Dfa prefixClosure(const Dfa &M);

/// Minimal DFA accepting all suffixes of L(M): backward solving.
Dfa suffixClosure(const Dfa &M);

/// \returns true if L(M) is empty.
bool isEmptyLanguage(const Dfa &M);

/// \returns true if A and B accept the same language. Requires equal
/// alphabets (asserted).
bool equivalent(const Dfa &A, const Dfa &B);

/// Enumerates up to \p Limit words of L(M) in shortlex order; useful in
/// tests and for producing witness annotations.
std::vector<Word> enumerateWords(const Dfa &M, size_t Limit,
                                 size_t MaxLength = 12);

} // namespace rasc

#endif // RASC_AUTOMATA_DFAOPS_H
