//===- automata/RegexParser.h - Regex frontend ------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small regular-expression frontend over symbolic alphabets.
/// Annotation languages can be given either as an explicit automaton
/// specification (src/spec) or as a regex; both compile down to a
/// minimized DFA whose transition monoid drives the solver.
///
/// Grammar (symbols are identifiers, whitespace separates them):
///
///   alt   ::= cat ('|' cat)*
///   cat   ::= rep rep*
///   rep   ::= atom ('*' | '+' | '?')*
///   atom  ::= IDENT | '(' alt ')' | '%eps'
///
/// Example: "(g k)* g" or "seteuid_zero (seteuid_nonzero seteuid_zero)*".
///
//===----------------------------------------------------------------------===//

#ifndef RASC_AUTOMATA_REGEXPARSER_H
#define RASC_AUTOMATA_REGEXPARSER_H

#include "automata/Dfa.h"
#include "automata/Nfa.h"
#include "support/Diag.h"

#include <optional>
#include <string>
#include <string_view>

namespace rasc {

/// Parses \p Pattern into an NFA via Thompson's construction.
/// \p ExtraSymbols are added to the alphabet even if unused in the
/// pattern (so machines over a common alphabet can be combined).
/// On failure the Diag's column is the 1-based offset into the
/// pattern. Hostile input is contained: nesting depth and pattern
/// length are capped with clean errors, and repetition operators
/// never duplicate the AST.
Expected<Nfa>
parseRegexToNfaEx(std::string_view Pattern,
                  const std::vector<std::string> &ExtraSymbols = {});

/// Parse, determinize, and minimize; error reporting as above.
Expected<Dfa>
compileRegexEx(std::string_view Pattern,
               const std::vector<std::string> &ExtraSymbols = {});

/// Convenience wrappers rendering the diagnostic into \p Error.
std::optional<Nfa>
parseRegexToNfa(std::string_view Pattern,
                const std::vector<std::string> &ExtraSymbols,
                std::string *Error);
std::optional<Dfa>
compileRegex(std::string_view Pattern,
             const std::vector<std::string> &ExtraSymbols = {},
             std::string *Error = nullptr);

} // namespace rasc

#endif // RASC_AUTOMATA_REGEXPARSER_H
