//===- automata/Machines.h - Machines from the paper ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the specific automata the paper discusses:
///
///   * Figure 1: the 1-bit gen/kill language M_1bit, and its n-bit
///     product generalization (Section 3.3).
///   * Figure 2: the adversarial rotate/swap/merge machine whose
///     transition monoid contains all |S|^|S| functions.
///   * Figure 5: the parametric open/close file-state automaton
///     (ignoring parameters; parameters live in SubstEnv).
///   * Figure 10: the bounded pair-matching automaton for type
///     constructor/destructor flow (built in src/flow from a program's
///     types; a fixed-shape variant is provided here for tests).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_AUTOMATA_MACHINES_H
#define RASC_AUTOMATA_MACHINES_H

#include "automata/Dfa.h"

namespace rasc {

/// Figure 1. States {0, 1}, start 0, accept {1}; symbol "g" sets the
/// bit, "k" clears it. F_M^≡ = {f_eps, f_g, f_k}.
Dfa buildOneBitMachine();

/// Product of \p NumBits independent 1-bit machines. Symbols are
/// "g0".."g{n-1}" and "k0".."k{n-1}"; the accept condition is "all
/// bits set" so that minimization keeps all 2^n states distinct. Used
/// to compare the explicit product DFA (monoid size 3^n) against the
/// specialized gen/kill annotation domain.
Dfa buildNBitMachine(unsigned NumBits);

/// Figure 2. \p NumStates states with symbols "rotate", "swap", and
/// "merge"; the transition monoid is the full function monoid of size
/// NumStates^NumStates. Start/accept are state 0 (they do not matter
/// for monoid-size experiments).
Dfa buildAdversarialMachine(unsigned NumStates);

/// Figure 5 without parameters: states closed -> opened via "open",
/// opened -> closed via "close"; double open/close is an error (dead).
/// Start and accept at "closed" (a balanced open/close discipline).
Dfa buildFileStateMachine();

} // namespace rasc

#endif // RASC_AUTOMATA_MACHINES_H
