//===- automata/RegexParser.cpp - Regex frontend ----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/RegexParser.h"

#include "automata/DfaOps.h"

#include <cctype>
#include <memory>

using namespace rasc;

namespace {

/// Regex AST.
struct Regex {
  enum KindTy { Empty, Epsilon, Symbol, Concat, Alt, Star } Kind;
  std::string Name;                     // Symbol
  std::unique_ptr<Regex> Lhs, Rhs;      // Concat / Alt / Star (Lhs only)

  explicit Regex(KindTy K) : Kind(K) {}
};

using RegexPtr = std::unique_ptr<Regex>;

RegexPtr makeNode(Regex::KindTy K, RegexPtr L = nullptr,
                  RegexPtr R = nullptr) {
  auto N = std::make_unique<Regex>(K);
  N->Lhs = std::move(L);
  N->Rhs = std::move(R);
  return N;
}

/// Recursive-descent parser.
class Parser {
public:
  Parser(std::string_view Input, std::string *Error)
      : Input(Input), Error(Error) {}

  RegexPtr parse() {
    RegexPtr R = parseAlt();
    if (!R)
      return nullptr;
    skipSpace();
    if (Pos != Input.size()) {
      fail("unexpected trailing input");
      return nullptr;
    }
    return R;
  }

private:
  void skipSpace() {
    while (Pos < Input.size() &&
           std::isspace(static_cast<unsigned char>(Input[Pos])))
      ++Pos;
  }

  bool atAtomStart() {
    skipSpace();
    if (Pos >= Input.size())
      return false;
    char C = Input[Pos];
    return C == '(' || C == '%' || C == '_' ||
           std::isalnum(static_cast<unsigned char>(C));
  }

  void fail(std::string_view Msg) {
    if (Error && Error->empty())
      *Error = std::string(Msg) + " at offset " + std::to_string(Pos);
  }

  RegexPtr parseAlt() {
    RegexPtr L = parseCat();
    if (!L)
      return nullptr;
    skipSpace();
    while (Pos < Input.size() && Input[Pos] == '|') {
      ++Pos;
      RegexPtr R = parseCat();
      if (!R)
        return nullptr;
      L = makeNode(Regex::Alt, std::move(L), std::move(R));
      skipSpace();
    }
    return L;
  }

  RegexPtr parseCat() {
    RegexPtr L = parseRep();
    if (!L)
      return nullptr;
    while (atAtomStart()) {
      RegexPtr R = parseRep();
      if (!R)
        return nullptr;
      L = makeNode(Regex::Concat, std::move(L), std::move(R));
    }
    return L;
  }

  RegexPtr parseRep() {
    RegexPtr A = parseAtom();
    if (!A)
      return nullptr;
    skipSpace();
    while (Pos < Input.size() &&
           (Input[Pos] == '*' || Input[Pos] == '+' || Input[Pos] == '?')) {
      char Op = Input[Pos++];
      if (Op == '*') {
        A = makeNode(Regex::Star, std::move(A));
      } else if (Op == '+') {
        // A+ == A A*  -- duplicate by deep copy.
        RegexPtr Copy = clone(*A);
        A = makeNode(Regex::Concat, std::move(A),
                     makeNode(Regex::Star, std::move(Copy)));
      } else { // '?'
        A = makeNode(Regex::Alt, std::move(A),
                     makeNode(Regex::Epsilon));
      }
      skipSpace();
    }
    return A;
  }

  RegexPtr parseAtom() {
    skipSpace();
    if (Pos >= Input.size()) {
      fail("expected symbol, '(' or '%eps'");
      return nullptr;
    }
    char C = Input[Pos];
    if (C == '(') {
      ++Pos;
      RegexPtr R = parseAlt();
      if (!R)
        return nullptr;
      skipSpace();
      if (Pos >= Input.size() || Input[Pos] != ')') {
        fail("expected ')'");
        return nullptr;
      }
      ++Pos;
      return R;
    }
    if (C == '%') {
      if (Input.substr(Pos, 4) == "%eps") {
        Pos += 4;
        return makeNode(Regex::Epsilon);
      }
      fail("unknown escape; only %eps is recognized");
      return nullptr;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Input.size() &&
             (std::isalnum(static_cast<unsigned char>(Input[Pos])) ||
              Input[Pos] == '_'))
        ++Pos;
      auto N = makeNode(Regex::Symbol);
      N->Name = std::string(Input.substr(Start, Pos - Start));
      return N;
    }
    fail("unexpected character");
    return nullptr;
  }

  static RegexPtr clone(const Regex &R) {
    auto N = std::make_unique<Regex>(R.Kind);
    N->Name = R.Name;
    if (R.Lhs)
      N->Lhs = clone(*R.Lhs);
    if (R.Rhs)
      N->Rhs = clone(*R.Rhs);
    return N;
  }

  std::string_view Input;
  std::string *Error;
  size_t Pos = 0;
};

void collectSymbols(const Regex &R, std::vector<std::string> &Out) {
  if (R.Kind == Regex::Symbol) {
    for (const std::string &S : Out)
      if (S == R.Name)
        return;
    Out.push_back(R.Name);
    return;
  }
  if (R.Lhs)
    collectSymbols(*R.Lhs, Out);
  if (R.Rhs)
    collectSymbols(*R.Rhs, Out);
}

/// Thompson construction: returns (entry, exit) of a fragment with a
/// single entry and single accepting exit.
std::pair<StateId, StateId> thompson(const Regex &R, Nfa &N) {
  StateId In = N.addState();
  StateId Out = N.addState();
  switch (R.Kind) {
  case Regex::Empty:
    break; // no path from In to Out
  case Regex::Epsilon:
    N.addEpsilon(In, Out);
    break;
  case Regex::Symbol: {
    SymbolId Sym = InvalidSymbol;
    for (SymbolId I = 0, E = N.numSymbols(); I != E; ++I)
      if (N.alphabet()[I] == R.Name) {
        Sym = I;
        break;
      }
    assert(Sym != InvalidSymbol && "symbol collected earlier");
    N.addTransition(In, Sym, Out);
    break;
  }
  case Regex::Concat: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    auto [BIn, BOut] = thompson(*R.Rhs, N);
    N.addEpsilon(In, AIn);
    N.addEpsilon(AOut, BIn);
    N.addEpsilon(BOut, Out);
    break;
  }
  case Regex::Alt: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    auto [BIn, BOut] = thompson(*R.Rhs, N);
    N.addEpsilon(In, AIn);
    N.addEpsilon(In, BIn);
    N.addEpsilon(AOut, Out);
    N.addEpsilon(BOut, Out);
    break;
  }
  case Regex::Star: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    N.addEpsilon(In, Out);
    N.addEpsilon(In, AIn);
    N.addEpsilon(AOut, AIn);
    N.addEpsilon(AOut, Out);
    break;
  }
  }
  return {In, Out};
}

} // namespace

std::optional<Nfa>
rasc::parseRegexToNfa(std::string_view Pattern,
                      const std::vector<std::string> &ExtraSymbols,
                      std::string *Error) {
  Parser P(Pattern, Error);
  RegexPtr R = P.parse();
  if (!R)
    return std::nullopt;

  std::vector<std::string> Symbols = ExtraSymbols;
  collectSymbols(*R, Symbols);

  Nfa N(Symbols);
  auto [In, Out] = thompson(*R, N);
  N.setStart(In);
  N.setAccepting(Out);
  return N;
}

std::optional<Dfa>
rasc::compileRegex(std::string_view Pattern,
                   const std::vector<std::string> &ExtraSymbols,
                   std::string *Error) {
  std::optional<Nfa> N = parseRegexToNfa(Pattern, ExtraSymbols, Error);
  if (!N)
    return std::nullopt;
  return minimize(determinize(*N));
}
