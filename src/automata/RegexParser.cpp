//===- automata/RegexParser.cpp - Regex frontend ----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/RegexParser.h"

#include "automata/DfaOps.h"

#include <cctype>
#include <memory>
#include <vector>

using namespace rasc;

namespace {

/// Hostile-input containment. Nesting is capped so recursive descent
/// (and the recursive AST walks below) cannot overflow the stack, and
/// the pattern length is capped so a single regex cannot consume
/// unbounded memory. Flat sequences ("a b c ...", "a|b|c|...") are
/// folded into *balanced* trees, so AST depth is O(MaxNesting +
/// log(pattern length)) rather than linear in the pattern.
constexpr unsigned MaxNesting = 500;
constexpr size_t MaxPatternBytes = 1u << 20;

/// Regex AST. Plus is a dedicated node kind (not desugared to "A A*")
/// so that repetition never duplicates subtrees: "a++++..." used to
/// clone the operand per '+', doubling the AST each time.
struct Regex {
  enum KindTy { Empty, Epsilon, Symbol, Concat, Alt, Star, Plus } Kind;
  std::string Name;                // Symbol
  std::unique_ptr<Regex> Lhs, Rhs; // Concat / Alt; Star / Plus use Lhs only

  explicit Regex(KindTy K) : Kind(K) {}
};

using RegexPtr = std::unique_ptr<Regex>;

RegexPtr makeNode(Regex::KindTy K, RegexPtr L = nullptr,
                  RegexPtr R = nullptr) {
  auto N = std::make_unique<Regex>(K);
  N->Lhs = std::move(L);
  N->Rhs = std::move(R);
  return N;
}

/// Folds \p Parts into a balanced binary tree of \p K nodes by
/// repeated pairwise combination. Depth is ceil(log2(n)).
RegexPtr foldBalanced(std::vector<RegexPtr> Parts, Regex::KindTy K) {
  while (Parts.size() > 1) {
    std::vector<RegexPtr> Next;
    Next.reserve(Parts.size() / 2 + 1);
    size_t I = 0;
    for (; I + 1 < Parts.size(); I += 2)
      Next.push_back(
          makeNode(K, std::move(Parts[I]), std::move(Parts[I + 1])));
    if (I < Parts.size())
      Next.push_back(std::move(Parts[I]));
    Parts = std::move(Next);
  }
  return std::move(Parts.front());
}

/// Recursive-descent parser.
class Parser {
public:
  explicit Parser(std::string_view Input) : Input(Input) {}

  Diag takeErr() { return Err ? *Err : Diag("regex parse error"); }

  RegexPtr parse() {
    if (Input.size() > MaxPatternBytes) {
      fail("regex pattern too large");
      return nullptr;
    }
    RegexPtr R = parseAlt();
    if (!R)
      return nullptr;
    skipSpace();
    if (Pos != Input.size()) {
      fail("unexpected trailing input");
      return nullptr;
    }
    return R;
  }

private:
  void skipSpace() {
    while (Pos < Input.size() &&
           std::isspace(static_cast<unsigned char>(Input[Pos])))
      ++Pos;
  }

  bool atAtomStart() {
    skipSpace();
    if (Pos >= Input.size())
      return false;
    char C = Input[Pos];
    return C == '(' || C == '%' || C == '_' ||
           std::isalnum(static_cast<unsigned char>(C));
  }

  void fail(std::string_view Msg) {
    // The column is the 1-based offset into the pattern; callers
    // embedding a regex in a larger file rebase it onto file
    // coordinates.
    if (!Err)
      Err = Diag(std::string(Msg),
                 SourceLoc{1, static_cast<uint32_t>(Pos + 1)});
  }

  RegexPtr parseAlt() {
    std::vector<RegexPtr> Arms;
    RegexPtr L = parseCat();
    if (!L)
      return nullptr;
    Arms.push_back(std::move(L));
    skipSpace();
    while (Pos < Input.size() && Input[Pos] == '|') {
      ++Pos;
      RegexPtr R = parseCat();
      if (!R)
        return nullptr;
      Arms.push_back(std::move(R));
      skipSpace();
    }
    return foldBalanced(std::move(Arms), Regex::Alt);
  }

  RegexPtr parseCat() {
    std::vector<RegexPtr> Parts;
    RegexPtr L = parseRep();
    if (!L)
      return nullptr;
    Parts.push_back(std::move(L));
    while (atAtomStart()) {
      RegexPtr R = parseRep();
      if (!R)
        return nullptr;
      Parts.push_back(std::move(R));
    }
    return foldBalanced(std::move(Parts), Regex::Concat);
  }

  RegexPtr parseRep() {
    RegexPtr A = parseAtom();
    if (!A)
      return nullptr;
    skipSpace();
    while (Pos < Input.size() &&
           (Input[Pos] == '*' || Input[Pos] == '+' || Input[Pos] == '?')) {
      char Op = Input[Pos++];
      if (Op == '*') {
        A = makeNode(Regex::Star, std::move(A));
      } else if (Op == '+') {
        A = makeNode(Regex::Plus, std::move(A));
      } else { // '?'
        A = makeNode(Regex::Alt, std::move(A), makeNode(Regex::Epsilon));
      }
      skipSpace();
    }
    return A;
  }

  RegexPtr parseAtom() {
    skipSpace();
    if (Pos >= Input.size()) {
      fail("expected symbol, '(' or '%eps'");
      return nullptr;
    }
    char C = Input[Pos];
    if (C == '(') {
      if (Depth >= MaxNesting) {
        fail("regex nesting too deep");
        return nullptr;
      }
      ++Depth;
      ++Pos;
      RegexPtr R = parseAlt();
      --Depth;
      if (!R)
        return nullptr;
      skipSpace();
      if (Pos >= Input.size() || Input[Pos] != ')') {
        fail("expected ')'");
        return nullptr;
      }
      ++Pos;
      return R;
    }
    if (C == '%') {
      if (Input.substr(Pos, 4) == "%eps") {
        Pos += 4;
        return makeNode(Regex::Epsilon);
      }
      fail("unknown escape; only %eps is recognized");
      return nullptr;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Input.size() &&
             (std::isalnum(static_cast<unsigned char>(Input[Pos])) ||
              Input[Pos] == '_'))
        ++Pos;
      auto N = makeNode(Regex::Symbol);
      N->Name = std::string(Input.substr(Start, Pos - Start));
      return N;
    }
    fail("unexpected character");
    return nullptr;
  }

  std::string_view Input;
  size_t Pos = 0;
  unsigned Depth = 0;
  std::optional<Diag> Err;
};

void collectSymbols(const Regex &R, std::vector<std::string> &Out) {
  if (R.Kind == Regex::Symbol) {
    for (const std::string &S : Out)
      if (S == R.Name)
        return;
    Out.push_back(R.Name);
    return;
  }
  if (R.Lhs)
    collectSymbols(*R.Lhs, Out);
  if (R.Rhs)
    collectSymbols(*R.Rhs, Out);
}

/// Thompson construction: returns (entry, exit) of a fragment with a
/// single entry and single accepting exit.
std::pair<StateId, StateId> thompson(const Regex &R, Nfa &N) {
  StateId In = N.addState();
  StateId Out = N.addState();
  switch (R.Kind) {
  case Regex::Empty:
    break; // no path from In to Out
  case Regex::Epsilon:
    N.addEpsilon(In, Out);
    break;
  case Regex::Symbol: {
    SymbolId Sym = InvalidSymbol;
    for (SymbolId I = 0, E = N.numSymbols(); I != E; ++I)
      if (N.alphabet()[I] == R.Name) {
        Sym = I;
        break;
      }
    assert(Sym != InvalidSymbol && "symbol collected earlier");
    N.addTransition(In, Sym, Out);
    break;
  }
  case Regex::Concat: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    auto [BIn, BOut] = thompson(*R.Rhs, N);
    N.addEpsilon(In, AIn);
    N.addEpsilon(AOut, BIn);
    N.addEpsilon(BOut, Out);
    break;
  }
  case Regex::Alt: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    auto [BIn, BOut] = thompson(*R.Rhs, N);
    N.addEpsilon(In, AIn);
    N.addEpsilon(In, BIn);
    N.addEpsilon(AOut, Out);
    N.addEpsilon(BOut, Out);
    break;
  }
  case Regex::Star: {
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    N.addEpsilon(In, Out);
    N.addEpsilon(In, AIn);
    N.addEpsilon(AOut, AIn);
    N.addEpsilon(AOut, Out);
    break;
  }
  case Regex::Plus: {
    // Like Star but without the In->Out bypass: at least one
    // iteration of the operand is required.
    auto [AIn, AOut] = thompson(*R.Lhs, N);
    N.addEpsilon(In, AIn);
    N.addEpsilon(AOut, AIn);
    N.addEpsilon(AOut, Out);
    break;
  }
  }
  return {In, Out};
}

} // namespace

Expected<Nfa>
rasc::parseRegexToNfaEx(std::string_view Pattern,
                        const std::vector<std::string> &ExtraSymbols) {
  Parser P(Pattern);
  RegexPtr R = P.parse();
  if (!R)
    return P.takeErr();

  std::vector<std::string> Symbols = ExtraSymbols;
  collectSymbols(*R, Symbols);

  Nfa N(Symbols);
  auto [In, Out] = thompson(*R, N);
  N.setStart(In);
  N.setAccepting(Out);
  return N;
}

Expected<Dfa>
rasc::compileRegexEx(std::string_view Pattern,
                     const std::vector<std::string> &ExtraSymbols) {
  Expected<Nfa> N = parseRegexToNfaEx(Pattern, ExtraSymbols);
  if (!N)
    return N.error();
  return minimize(determinize(*N));
}

std::optional<Nfa>
rasc::parseRegexToNfa(std::string_view Pattern,
                      const std::vector<std::string> &ExtraSymbols,
                      std::string *Error) {
  Expected<Nfa> N = parseRegexToNfaEx(Pattern, ExtraSymbols);
  if (N)
    return std::move(*N);
  if (Error && Error->empty())
    *Error = N.error().render();
  return std::nullopt;
}

std::optional<Dfa>
rasc::compileRegex(std::string_view Pattern,
                   const std::vector<std::string> &ExtraSymbols,
                   std::string *Error) {
  Expected<Dfa> D = compileRegexEx(Pattern, ExtraSymbols);
  if (D)
    return std::move(*D);
  if (Error && Error->empty())
    *Error = D.error().render();
  return std::nullopt;
}
