//===- automata/Nfa.cpp - Nondeterministic finite automata ------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/Nfa.h"

#include <deque>

using namespace rasc;

void Nfa::epsilonClose(DynamicBitset &Set) const {
  std::deque<StateId> Work;
  for (size_t S = Set.findFirst(); S != Set.size(); S = Set.findNext(S + 1))
    Work.push_back(static_cast<StateId>(S));
  while (!Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (StateId T : States[S].Eps)
      if (!Set.test(T)) {
        Set.set(T);
        Work.push_back(T);
      }
  }
}

bool Nfa::accepts(std::span<const SymbolId> W) const {
  DynamicBitset Cur(numStates());
  Cur.set(Start);
  epsilonClose(Cur);
  for (SymbolId Sym : W) {
    DynamicBitset Next(numStates());
    for (size_t S = Cur.findFirst(); S != Cur.size();
         S = Cur.findNext(S + 1))
      for (auto [A, T] : States[S].Trans)
        if (A == Sym)
          Next.set(T);
    epsilonClose(Next);
    Cur = std::move(Next);
  }
  for (size_t S = Cur.findFirst(); S != Cur.size(); S = Cur.findNext(S + 1))
    if (States[S].Accepting)
      return true;
  return false;
}
