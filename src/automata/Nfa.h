//===- automata/Nfa.h - Nondeterministic finite automata --------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nondeterministic finite automata with epsilon moves. NFAs are the
/// intermediate representation produced by the regex frontend and by
/// the closure constructions (substring / prefix / suffix closure of a
/// regular language, paper Section 2.3); they are determinized and
/// minimized before the transition monoid is extracted.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_AUTOMATA_NFA_H
#define RASC_AUTOMATA_NFA_H

#include "automata/Dfa.h"
#include "support/DynamicBitset.h"

#include <string>
#include <vector>

namespace rasc {

/// An NFA over the same dense symbolic alphabet as Dfa.
class Nfa {
public:
  explicit Nfa(std::vector<std::string> SymbolNames)
      : SymbolNames(std::move(SymbolNames)) {}

  StateId addState() {
    States.emplace_back();
    return static_cast<StateId>(States.size() - 1);
  }

  void setStart(StateId S) { Start = S; }
  StateId start() const { return Start; }

  void setAccepting(StateId S, bool Accepting = true) {
    assert(S < States.size() && "state out of range");
    States[S].Accepting = Accepting;
  }

  bool isAccepting(StateId S) const { return States[S].Accepting; }

  void addTransition(StateId From, SymbolId Sym, StateId To) {
    assert(From < States.size() && To < States.size() && "state range");
    assert(Sym < SymbolNames.size() && "symbol out of range");
    States[From].Trans.emplace_back(Sym, To);
  }

  void addEpsilon(StateId From, StateId To) {
    assert(From < States.size() && To < States.size() && "state range");
    States[From].Eps.push_back(To);
  }

  uint32_t numStates() const { return static_cast<uint32_t>(States.size()); }
  uint32_t numSymbols() const {
    return static_cast<uint32_t>(SymbolNames.size());
  }

  const std::vector<std::string> &alphabet() const { return SymbolNames; }

  const std::vector<std::pair<SymbolId, StateId>> &
  transitions(StateId S) const {
    return States[S].Trans;
  }

  const std::vector<StateId> &epsilons(StateId S) const {
    return States[S].Eps;
  }

  /// Epsilon-closes \p Set in place.
  void epsilonClose(DynamicBitset &Set) const;

  /// Direct NFA simulation; used as a reference in tests.
  bool accepts(std::span<const SymbolId> W) const;

private:
  struct State {
    std::vector<std::pair<SymbolId, StateId>> Trans;
    std::vector<StateId> Eps;
    bool Accepting = false;
  };

  std::vector<std::string> SymbolNames;
  std::vector<State> States;
  StateId Start = 0;
};

} // namespace rasc

#endif // RASC_AUTOMATA_NFA_H
