//===- automata/Dfa.cpp - Deterministic finite automata ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/Dfa.h"

#include <deque>
#include <sstream>

using namespace rasc;

DynamicBitset Dfa::liveStates() const {
  // Reverse reachability from the accepting states.
  std::vector<std::vector<StateId>> Preds(NumStatesVal);
  for (StateId S = 0; S != NumStatesVal; ++S)
    for (SymbolId A = 0, E = numSymbols(); A != E; ++A)
      Preds[next(S, A)].push_back(S);

  DynamicBitset Live(NumStatesVal);
  std::deque<StateId> Work;
  for (StateId S = 0; S != NumStatesVal; ++S)
    if (AcceptingStates.test(S)) {
      Live.set(S);
      Work.push_back(S);
    }
  while (!Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (StateId P : Preds[S])
      if (!Live.test(P)) {
        Live.set(P);
        Work.push_back(P);
      }
  }
  return Live;
}

DynamicBitset Dfa::reachableStates() const {
  DynamicBitset Seen(NumStatesVal);
  Seen.set(StartState);
  std::deque<StateId> Work{StartState};
  while (!Work.empty()) {
    StateId S = Work.front();
    Work.pop_front();
    for (SymbolId A = 0, E = numSymbols(); A != E; ++A) {
      StateId T = next(S, A);
      if (!Seen.test(T)) {
        Seen.set(T);
        Work.push_back(T);
      }
    }
  }
  return Seen;
}

std::string Dfa::toDot(std::string_view Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n  rankdir=LR;\n";
  OS << "  __start [shape=point];\n";
  for (StateId S = 0; S != NumStatesVal; ++S)
    OS << "  s" << S << " [shape="
       << (isAccepting(S) ? "doublecircle" : "circle") << "];\n";
  OS << "  __start -> s" << StartState << ";\n";
  for (StateId S = 0; S != NumStatesVal; ++S)
    for (SymbolId A = 0, E = numSymbols(); A != E; ++A)
      OS << "  s" << S << " -> s" << next(S, A) << " [label=\""
         << SymbolNames[A] << "\"];\n";
  OS << "}\n";
  return OS.str();
}

SymbolId DfaBuilder::addSymbol(std::string_view Name) {
  for (SymbolId I = 0, E = static_cast<SymbolId>(Symbols.size()); I != E; ++I)
    if (Symbols[I] == Name)
      return I;
  Symbols.emplace_back(Name);
  for (auto &Row : Rows)
    Row.push_back(InvalidState);
  return static_cast<SymbolId>(Symbols.size() - 1);
}

StateId DfaBuilder::addState(std::string_view Name) {
  Names.emplace_back(Name);
  Accepting.push_back(false);
  Rows.emplace_back(Symbols.size(), InvalidState);
  return static_cast<StateId>(Names.size() - 1);
}

void DfaBuilder::setAccepting(StateId S, bool IsAccepting) {
  assert(S < Names.size() && "state out of range");
  Accepting[S] = IsAccepting;
}

void DfaBuilder::addTransition(StateId From, SymbolId Sym, StateId To) {
  assert(From < Names.size() && To < Names.size() && "state out of range");
  assert(Sym < Symbols.size() && "symbol out of range");
  assert((Rows[From][Sym] == InvalidState || Rows[From][Sym] == To) &&
         "conflicting deterministic transition");
  Rows[From][Sym] = To;
}

Dfa DfaBuilder::build() const {
  uint32_t N = static_cast<uint32_t>(Names.size());
  assert(N > 0 && "automaton needs at least one state");
  bool NeedDead = false;
  for (const auto &Row : Rows)
    for (StateId T : Row)
      if (T == InvalidState)
        NeedDead = true;

  uint32_t Total = N + (NeedDead ? 1 : 0);
  StateId Dead = N;
  DynamicBitset Acc(Total);
  for (uint32_t I = 0; I != N; ++I)
    if (Accepting[I])
      Acc.set(I);

  std::vector<StateId> Trans(static_cast<size_t>(Total) * Symbols.size());
  for (uint32_t S = 0; S != N; ++S)
    for (uint32_t A = 0, E = static_cast<uint32_t>(Symbols.size()); A != E;
         ++A) {
      StateId T = Rows[S][A];
      Trans[static_cast<size_t>(S) * Symbols.size() + A] =
          T == InvalidState ? Dead : T;
    }
  if (NeedDead)
    for (uint32_t A = 0, E = static_cast<uint32_t>(Symbols.size()); A != E;
         ++A)
      Trans[static_cast<size_t>(Dead) * Symbols.size() + A] = Dead;

  return Dfa(Symbols, Total, Start, std::move(Acc), std::move(Trans));
}
