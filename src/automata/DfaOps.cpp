//===- automata/DfaOps.cpp - Automaton algorithms ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/DfaOps.h"

#include "support/Hashing.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

using namespace rasc;

Dfa rasc::determinize(const Nfa &N) {
  uint32_t NumSyms = N.numSymbols();

  std::unordered_map<DynamicBitset, StateId, BitsetHash> SubsetIds;
  std::vector<DynamicBitset> Subsets;
  std::vector<StateId> Trans;
  std::deque<StateId> Work;

  auto internSubset = [&](DynamicBitset Set) -> StateId {
    auto It = SubsetIds.find(Set);
    if (It != SubsetIds.end())
      return It->second;
    StateId Id = static_cast<StateId>(Subsets.size());
    SubsetIds.emplace(Set, Id);
    Subsets.push_back(std::move(Set));
    Trans.resize(Trans.size() + NumSyms, InvalidState);
    Work.push_back(Id);
    return Id;
  };

  DynamicBitset StartSet(N.numStates());
  StartSet.set(N.start());
  N.epsilonClose(StartSet);
  StateId Start = internSubset(std::move(StartSet));

  while (!Work.empty()) {
    StateId Cur = Work.front();
    Work.pop_front();
    for (SymbolId A = 0; A != NumSyms; ++A) {
      DynamicBitset Next(N.numStates());
      const DynamicBitset &CurSet = Subsets[Cur];
      for (size_t S = CurSet.findFirst(); S != CurSet.size();
           S = CurSet.findNext(S + 1))
        for (auto [Sym, T] : N.transitions(static_cast<StateId>(S)))
          if (Sym == A)
            Next.set(T);
      N.epsilonClose(Next);
      StateId NextId = internSubset(std::move(Next));
      // internSubset may reallocate Trans; index afterwards.
      Trans[static_cast<size_t>(Cur) * NumSyms + A] = NextId;
    }
  }

  uint32_t NumStates = static_cast<uint32_t>(Subsets.size());
  DynamicBitset Acc(NumStates);
  for (StateId S = 0; S != NumStates; ++S) {
    const DynamicBitset &Set = Subsets[S];
    for (size_t Q = Set.findFirst(); Q != Set.size();
         Q = Set.findNext(Q + 1))
      if (N.isAccepting(static_cast<StateId>(Q))) {
        Acc.set(S);
        break;
      }
  }

  return Dfa(N.alphabet(), NumStates, Start, std::move(Acc),
             std::move(Trans));
}

Dfa rasc::minimize(const Dfa &M) {
  uint32_t NumSyms = M.numSymbols();

  // Restrict to reachable states first.
  DynamicBitset Reach = M.reachableStates();
  std::vector<StateId> Compact(M.numStates(), InvalidState);
  std::vector<StateId> Orig;
  for (size_t S = Reach.findFirst(); S != Reach.size();
       S = Reach.findNext(S + 1)) {
    Compact[S] = static_cast<StateId>(Orig.size());
    Orig.push_back(static_cast<StateId>(S));
  }
  uint32_t N = static_cast<uint32_t>(Orig.size());

  // Moore refinement: start from the accepting/rejecting split and
  // refine by successor-block signatures until stable.
  std::vector<uint32_t> Block(N);
  for (uint32_t I = 0; I != N; ++I)
    Block[I] = M.isAccepting(Orig[I]) ? 1 : 0;
  uint32_t NumBlocks = 2;

  // Degenerate case: all states agree on acceptance.
  {
    bool Any0 = false, Any1 = false;
    for (uint32_t B : Block)
      (B ? Any1 : Any0) = true;
    if (!Any0 || !Any1) {
      NumBlocks = 1;
      std::fill(Block.begin(), Block.end(), 0u);
    }
  }

  while (true) {
    // Signature: own block + successor blocks.
    std::map<std::vector<uint32_t>, uint32_t> SigIds;
    std::vector<uint32_t> NewBlock(N);
    for (uint32_t I = 0; I != N; ++I) {
      std::vector<uint32_t> Sig;
      Sig.reserve(NumSyms + 1);
      Sig.push_back(Block[I]);
      for (SymbolId A = 0; A != NumSyms; ++A)
        Sig.push_back(Block[Compact[M.next(Orig[I], A)]]);
      auto [It, Inserted] =
          SigIds.emplace(std::move(Sig), static_cast<uint32_t>(SigIds.size()));
      NewBlock[I] = It->second;
      (void)Inserted;
    }
    uint32_t NewCount = static_cast<uint32_t>(SigIds.size());
    Block = std::move(NewBlock);
    if (NewCount == NumBlocks)
      break;
    NumBlocks = NewCount;
  }

  // Build the quotient automaton.
  DynamicBitset Acc(NumBlocks);
  std::vector<StateId> Trans(static_cast<size_t>(NumBlocks) * NumSyms,
                             InvalidState);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t B = Block[I];
    if (M.isAccepting(Orig[I]))
      Acc.set(B);
    for (SymbolId A = 0; A != NumSyms; ++A)
      Trans[static_cast<size_t>(B) * NumSyms + A] =
          Block[Compact[M.next(Orig[I], A)]];
  }
  return Dfa(M.alphabet(), NumBlocks, Block[Compact[M.start()]],
             std::move(Acc), std::move(Trans));
}

Dfa rasc::product(const Dfa &A, const Dfa &B, ProductKind Kind) {
  assert(A.alphabet() == B.alphabet() && "product needs equal alphabets");
  uint32_t NumSyms = A.numSymbols();

  auto acceptPair = [&](StateId SA, StateId SB) {
    switch (Kind) {
    case ProductKind::Intersection:
      return A.isAccepting(SA) && B.isAccepting(SB);
    case ProductKind::Union:
      return A.isAccepting(SA) || B.isAccepting(SB);
    case ProductKind::Difference:
      return A.isAccepting(SA) && !B.isAccepting(SB);
    }
    return false;
  };

  std::unordered_map<uint64_t, StateId> PairIds;
  std::vector<std::pair<StateId, StateId>> Pairs;
  std::vector<StateId> Trans;
  std::deque<StateId> Work;

  auto internPair = [&](StateId SA, StateId SB) -> StateId {
    uint64_t Key = (static_cast<uint64_t>(SA) << 32) | SB;
    auto It = PairIds.find(Key);
    if (It != PairIds.end())
      return It->second;
    StateId Id = static_cast<StateId>(Pairs.size());
    PairIds.emplace(Key, Id);
    Pairs.emplace_back(SA, SB);
    Trans.resize(Trans.size() + NumSyms, InvalidState);
    Work.push_back(Id);
    return Id;
  };

  StateId Start = internPair(A.start(), B.start());
  while (!Work.empty()) {
    StateId Cur = Work.front();
    Work.pop_front();
    auto [SA, SB] = Pairs[Cur];
    for (SymbolId Sym = 0; Sym != NumSyms; ++Sym) {
      StateId T = internPair(A.next(SA, Sym), B.next(SB, Sym));
      Trans[static_cast<size_t>(Cur) * NumSyms + Sym] = T;
    }
  }

  uint32_t NumStates = static_cast<uint32_t>(Pairs.size());
  DynamicBitset Acc(NumStates);
  for (StateId S = 0; S != NumStates; ++S)
    if (acceptPair(Pairs[S].first, Pairs[S].second))
      Acc.set(S);
  return Dfa(A.alphabet(), NumStates, Start, std::move(Acc),
             std::move(Trans));
}

Nfa rasc::toNfa(const Dfa &M) {
  Nfa N(M.alphabet());
  for (uint32_t S = 0, E = M.numStates(); S != E; ++S)
    N.addState();
  N.setStart(M.start());
  for (StateId S = 0, E = M.numStates(); S != E; ++S) {
    N.setAccepting(S, M.isAccepting(S));
    for (SymbolId A = 0, AE = M.numSymbols(); A != AE; ++A)
      N.addTransition(S, A, M.next(S, A));
  }
  return N;
}

namespace {

/// Shared skeleton for the closure constructions. A word w is in
///   * the substring closure iff exists reachable q with delta(w, q) live;
///   * the prefix closure    iff delta(w, s0) is live;
///   * the suffix closure    iff exists reachable q with delta(w, q)
///     accepting.
/// We build the corresponding NFA and determinize + minimize.
enum class ClosureKind { Substring, Prefix, Suffix };

Dfa closure(const Dfa &M, ClosureKind Kind) {
  DynamicBitset Reach = M.reachableStates();
  DynamicBitset Live = M.liveStates();

  Nfa N = toNfa(M);
  // Fresh start state with epsilon moves into the chosen entry states.
  StateId NewStart = N.addState();
  N.setStart(NewStart);
  if (Kind == ClosureKind::Substring || Kind == ClosureKind::Suffix) {
    for (size_t S = Reach.findFirst(); S != Reach.size();
         S = Reach.findNext(S + 1))
      N.addEpsilon(NewStart, static_cast<StateId>(S));
  } else {
    N.addEpsilon(NewStart, M.start());
  }
  // Accepting condition.
  if (Kind == ClosureKind::Substring || Kind == ClosureKind::Prefix) {
    for (StateId S = 0, E = M.numStates(); S != E; ++S)
      N.setAccepting(S, Live.test(S));
    N.setAccepting(NewStart, Live.intersects(Reach));
  } else {
    N.setAccepting(NewStart, Reach.intersects(M.acceptingStates()));
  }
  return minimize(determinize(N));
}

} // namespace

Dfa rasc::substringClosure(const Dfa &M) {
  return closure(M, ClosureKind::Substring);
}

Dfa rasc::prefixClosure(const Dfa &M) {
  return closure(M, ClosureKind::Prefix);
}

Dfa rasc::suffixClosure(const Dfa &M) {
  return closure(M, ClosureKind::Suffix);
}

bool rasc::isEmptyLanguage(const Dfa &M) {
  DynamicBitset Reach = M.reachableStates();
  return !Reach.intersects(M.acceptingStates());
}

bool rasc::equivalent(const Dfa &A, const Dfa &B) {
  return isEmptyLanguage(product(A, B, ProductKind::Difference)) &&
         isEmptyLanguage(product(B, A, ProductKind::Difference));
}

std::vector<Word> rasc::enumerateWords(const Dfa &M, size_t Limit,
                                       size_t MaxLength) {
  std::vector<Word> Result;
  std::deque<std::pair<Word, StateId>> Work;
  Work.emplace_back(Word{}, M.start());
  DynamicBitset Live = M.liveStates();
  while (!Work.empty() && Result.size() < Limit) {
    auto [W, S] = std::move(Work.front());
    Work.pop_front();
    if (M.isAccepting(S))
      Result.push_back(W);
    if (W.size() >= MaxLength)
      continue;
    for (SymbolId A = 0, E = M.numSymbols(); A != E; ++A) {
      StateId T = M.next(S, A);
      if (!Live.test(T))
        continue;
      Word Ext = W;
      Ext.push_back(A);
      Work.emplace_back(std::move(Ext), T);
    }
  }
  return Result;
}
