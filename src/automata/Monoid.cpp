//===- automata/Monoid.cpp - Transition monoid of a DFA ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/Monoid.h"

#include <algorithm>
#include <deque>
#include <sstream>

using namespace rasc;

TransitionMonoid::TransitionMonoid(const Dfa &M, Options Opts)
    : M(M), NumStates(M.numStates()), Start(M.start()),
      Accepting(M.acceptingStates()), Live(M.liveStates()) {
  // Identity first so identity() == 0.
  std::vector<StateId> Id(NumStates);
  for (StateId S = 0; S != NumStates; ++S)
    Id[S] = S;
  intern(std::move(Id));

  // Generators: one function per alphabet symbol.
  SymbolFns.reserve(M.numSymbols());
  for (SymbolId A = 0, E = M.numSymbols(); A != E; ++A) {
    std::vector<StateId> Fn(NumStates);
    for (StateId S = 0; S != NumStates; ++S)
      Fn[S] = M.next(S, A);
    SymbolFns.push_back(intern(std::move(Fn)));
  }

  // Close under right extension by generators: every f_w is reached by
  // extending words one symbol at a time (f_{w sigma} = f_sigma ∘ f_w).
  // Record generator provenance (the generators' sample word is the
  // single symbol; the identity's is empty).
  for (SymbolId A = 0, E = M.numSymbols(); A != E; ++A)
    if (Parents[SymbolFns[A]].Sym == InvalidSymbol &&
        SymbolFns[A] != identity())
      Parents[SymbolFns[A]] = {identity(), A};

  std::deque<FnId> Work;
  for (FnId F = 0, E = static_cast<FnId>(size()); F != E; ++F)
    Work.push_back(F);
  while (!Work.empty() && !Overflowed) {
    FnId F = Work.front();
    Work.pop_front();
    for (SymbolId A = 0, AE = M.numSymbols(); A != AE; ++A) {
      FnId G = SymbolFns[A];
      std::vector<StateId> Fn(NumStates);
      for (StateId S = 0; S != NumStates; ++S)
        Fn[S] = apply(G, apply(F, S));
      size_t Before = size();
      if (Before >= Opts.MaxElements) {
        Overflowed = true;
        break;
      }
      FnId New = intern(std::move(Fn));
      if (New == Before) { // freshly interned
        Parents[New] = {F, A};
        Work.push_back(New);
      }
    }
  }

  // Composition acceleration.
  if (!Overflowed && size() <= Opts.DenseTableLimit) {
    UseDenseTable = true;
    size_t N = size();
    DenseTable.resize(N * N);
    for (FnId F = 0; F != N; ++F)
      for (FnId G = 0; G != N; ++G)
        DenseTable[static_cast<size_t>(F) * N + G] = composeSlow(F, G);
    // Transpose for composeRowRhs(): a cheap copy next to the O(N^2)
    // composeSlow sweep above.
    DenseTableT.resize(N * N);
    for (FnId F = 0; F != N; ++F)
      for (FnId G = 0; G != N; ++G)
        DenseTableT[static_cast<size_t>(G) * N + F] =
            DenseTable[static_cast<size_t>(F) * N + G];
  } else {
    // Memo path: expect a quadratic-ish working set of hot pairs;
    // pre-sizing avoids rehash storms in the closure loop.
    Memo.reserve(std::min<size_t>(size() * 16, size_t(1) << 20));
  }
}

FnId TransitionMonoid::intern(std::vector<StateId> Fn) {
  auto It = FnIds.find(Fn);
  if (It != FnIds.end())
    return It->second;
  FnId Id = static_cast<FnId>(size());
  FnIds.emplace(Fn, Id);
  Funcs.insert(Funcs.end(), Fn.begin(), Fn.end());
  bool AllDead = true;
  for (StateId S : Fn)
    if (Live.test(S)) {
      AllDead = false;
      break;
    }
  Useless.push_back(AllDead);
  Parents.push_back({});
  return Id;
}

FnId TransitionMonoid::wordFn(std::span<const SymbolId> W) const {
  FnId F = identity();
  for (SymbolId Sym : W)
    F = compose(symbolFn(Sym), F);
  return F;
}

FnId TransitionMonoid::compose(FnId F, FnId G) const {
  assert(!Overflowed && "composition on an overflowed monoid");
  assert(F < size() && G < size() && "fn out of range");
  if (UseDenseTable)
    return DenseTable[static_cast<size_t>(F) * size() + G];
  uint64_t Key = (static_cast<uint64_t>(F) << 32) | G;
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  FnId R = composeSlow(F, G);
  Memo.emplace(Key, R);
  return R;
}

FnId TransitionMonoid::composeSlow(FnId F, FnId G) const {
  std::vector<StateId> Fn(NumStates);
  for (StateId S = 0; S != NumStates; ++S)
    Fn[S] = apply(F, apply(G, S));
  auto It = FnIds.find(Fn);
  assert(It != FnIds.end() &&
         "monoid closure missing a product; overflowed?");
  return It->second;
}

Word TransitionMonoid::sampleWord(FnId F) const {
  assert(F < size() && "fn out of range");
  Word W;
  while (F != identity()) {
    const Provenance &P = Parents[F];
    assert(P.Sym != InvalidSymbol &&
           "element has no closure provenance");
    W.push_back(P.Sym);
    F = P.Prev;
  }
  std::reverse(W.begin(), W.end());
  return W;
}

std::string TransitionMonoid::toString(FnId F) const {
  std::ostringstream OS;
  OS << "[";
  for (StateId S = 0; S != NumStates; ++S) {
    if (S)
      OS << ", ";
    OS << S << "->" << apply(F, S);
  }
  OS << "]";
  return OS.str();
}
