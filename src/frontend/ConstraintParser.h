//===- frontend/ConstraintParser.h - Textual constraint files ---*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual frontend for whole constraint problems, in the spirit of
/// BANSHEE's "specify an analysis, get a solver" workflow (paper
/// Section 8): one file declares the annotation language (either as a
/// Section 8 automaton specification or as a regex), the constructors
/// and variables, the annotated constraints, and the queries to run.
///
///   # the annotation language
///   language {
///     start state Unpriv : | acquire -> Priv;
///     accept state Priv  : | acquire -> Priv;
///   }
///   # or: language regex "(g k)* g";
///
///   constant pc;
///   constructor o 1;            # name arity
///   var X Y Z;
///
///   pc <= X;                    # epsilon annotation
///   X <= [acquire] Y;           # single-symbol annotation
///   o(Y) <= Z;                  # constructor expression
///   proj o 1 Z <= X;            # o^-1(Z) ⊆ X   (1-based index)
///
///   query pc in Y;              # matched entailment (Section 3.2)
///   query pn pc in Z;           # PN reachability (Section 6.2)
///
/// parse() builds the domain and constraint system; solveAndAnswer()
/// runs the bidirectional solver and evaluates the queries.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_FRONTEND_CONSTRAINTPARSER_H
#define RASC_FRONTEND_CONSTRAINTPARSER_H

#include "core/Domains.h"
#include "core/Solver.h"
#include "support/Diag.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rasc {

/// A parsed constraint problem: the annotation domain, the system,
/// the declared names, and the queries.
class ConstraintProgram {
public:
  struct Query {
    enum KindTy { Matched, Pn } Kind;
    ConsId Constant;
    VarId Var;
    std::string Text; ///< the original line, for reporting
  };

  struct Answer {
    const Query *Q;
    bool Holds;
  };

  /// Parses \p Source; on failure the Diag carries the message and
  /// the 1-based line/column of the offending token.
  static Expected<ConstraintProgram> parseEx(std::string_view Source);

  /// Convenience wrapper over parseEx(): returns std::nullopt and
  /// sets \p Error to the rendered diagnostic on failure.
  static std::optional<ConstraintProgram>
  parse(std::string_view Source, std::string *Error = nullptr);

  const ConstraintSystem &system() const { return *CS; }
  const MonoidDomain &domain() const { return *Dom; }
  const std::vector<Query> &queries() const { return Queries; }

  std::optional<VarId> varByName(std::string_view Name) const;
  std::optional<ConsId> consByName(std::string_view Name) const;

  /// Parses and applies additional statements (declarations,
  /// constraints, queries — everything but a 'language' block) against
  /// this already-parsed program, so a resident system can grow online
  /// (the solver's online contract picks appended constraints up on
  /// its next solve()). Statements are applied in order; on a Diag the
  /// statements *before* the offending one stand, and \p AppliedBytes
  /// (when non-null) receives the length of the source prefix that was
  /// fully applied — callers that persist the program text append
  /// exactly that prefix so the durable text never diverges from the
  /// in-memory system.
  std::optional<Diag> addStatements(std::string_view Source,
                                    size_t *AppliedBytes = nullptr);

  /// Solves (bidirectional) and evaluates every query.
  /// \returns the answers in declaration order, plus the solver via
  /// out-parameter for callers that want more (may be null).
  std::vector<Answer> solveAndAnswer(SolverOptions Options = {},
                                     SolverStats *StatsOut = nullptr);

  /// Evaluates every query against \p Solver, which must have been
  /// constructed over system() and solved to completion. Lets callers
  /// drive budgeted / resumable solves themselves (see README).
  std::vector<Answer> answer(BidirectionalSolver &Solver) const;

private:
  ConstraintProgram() = default;

  std::unique_ptr<MonoidDomain> Dom;
  std::unique_ptr<ConstraintSystem> CS;
  std::vector<std::pair<std::string, VarId>> Vars;
  std::vector<std::pair<std::string, ConsId>> Constructors;
  std::vector<Query> Queries;

  friend class ConstraintFileParser;
};

} // namespace rasc

#endif // RASC_FRONTEND_CONSTRAINTPARSER_H
