//===- frontend/ConstraintParser.cpp - Textual constraint files -*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "frontend/ConstraintParser.h"

#include "automata/RegexParser.h"
#include "spec/SpecParser.h"

#include <cctype>

using namespace rasc;

namespace rasc {

/// Line-oriented recursive-descent parser for constraint files.
class ConstraintFileParser {
public:
  explicit ConstraintFileParser(std::string_view In) : In(In) {}

  Expected<ConstraintProgram> parse() {
    ConstraintProgram P;
    if (!parseLanguage(P))
      return takeErr();
    while (true) {
      skipTrivia();
      if (Pos >= In.size())
        break;
      if (!parseStatement(P))
        return takeErr();
    }
    return P;
  }

  /// Parses statements (no language block) into an existing program.
  /// \p AppliedBytes tracks the fully-applied source prefix: it is
  /// advanced past each statement only after the statement succeeded.
  std::optional<Diag> parseInto(ConstraintProgram &P,
                                size_t *AppliedBytes) {
    while (true) {
      skipTrivia();
      if (Pos >= In.size()) {
        if (AppliedBytes)
          *AppliedBytes = In.size();
        return std::nullopt;
      }
      if (!parseStatement(P))
        return takeErr();
      if (AppliedBytes)
        *AppliedBytes = Pos;
    }
  }

private:
  /// 1-based column of the cursor on the current line.
  uint32_t col() const { return static_cast<uint32_t>(Pos - LineStart + 1); }

  bool fail(const std::string &Msg) {
    if (!Err)
      Err = Diag(Msg, SourceLoc{Line, col()});
    return false;
  }

  /// Records a failure at an explicit location (for errors reported
  /// by the nested spec/regex parsers).
  bool failAt(const std::string &Msg, SourceLoc Loc) {
    if (!Err)
      Err = Diag(Msg, Loc);
    return false;
  }

  Diag takeErr() const { return Err ? *Err : Diag("parse error"); }

  void skipTrivia() {
    while (Pos < In.size()) {
      char C = In[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < In.size() && In[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool eat(char C) {
    skipTrivia();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool peekIs(char C) {
    skipTrivia();
    return Pos < In.size() && In[Pos] == C;
  }

  std::optional<std::string> ident() {
    skipTrivia();
    if (Pos >= In.size() ||
        !(std::isalpha(static_cast<unsigned char>(In[Pos])) ||
          In[Pos] == '_')) {
      fail("expected identifier");
      return std::nullopt;
    }
    size_t Start = Pos;
    while (Pos < In.size() &&
           (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '_'))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  std::optional<unsigned> number() {
    skipTrivia();
    if (Pos >= In.size() ||
        !std::isdigit(static_cast<unsigned char>(In[Pos]))) {
      fail("expected number");
      return std::nullopt;
    }
    // Cap far below the overflow point: every number in this grammar
    // is an arity or a projection index, and an overlong literal must
    // be a clean error, not a silent wrap.
    constexpr unsigned Max = 1u << 20;
    unsigned N = 0;
    bool Over = false;
    while (Pos < In.size() &&
           std::isdigit(static_cast<unsigned char>(In[Pos]))) {
      N = N * 10 + static_cast<unsigned>(In[Pos++] - '0');
      if (N > Max) {
        Over = true;
        N = Max;
      }
    }
    if (Over) {
      fail("number too large (max " + std::to_string(Max) + ")");
      return std::nullopt;
    }
    return N;
  }

  bool parseLanguage(ConstraintProgram &P) {
    auto Kw = ident();
    if (!Kw || *Kw != "language")
      return fail("constraint files start with a 'language' block");
    skipTrivia();
    if (peekIs('{')) {
      // Automaton specification block: find the matching brace.
      ++Pos;
      size_t Start = Pos;
      unsigned StartLine = Line;
      int Depth = 1;
      while (Pos < In.size() && Depth != 0) {
        if (In[Pos] == '{')
          ++Depth;
        else if (In[Pos] == '}')
          --Depth;
        else if (In[Pos] == '\n') {
          ++Line;
          LineStart = Pos + 1;
        }
        ++Pos;
      }
      if (Depth != 0)
        return fail("unterminated language block");
      std::string SpecText(In.substr(Start, Pos - 1 - Start));
      Expected<SpecAutomaton> Spec = parseSpecEx(SpecText);
      if (!Spec) {
        // Map the spec's position into this file: spec line 1 is the
        // text right after '{' on line StartLine.
        SourceLoc L = Spec.error().loc();
        L.Line = L.valid() ? StartLine + L.Line - 1 : StartLine;
        return failAt("language block: " + Spec.error().message(), L);
      }
      P.Dom = std::make_unique<MonoidDomain>(Spec->machine());
    } else {
      auto Sub = ident();
      if (!Sub || *Sub != "regex")
        return fail("expected '{' or 'regex' after 'language'");
      skipTrivia();
      if (Pos >= In.size() || In[Pos] != '"')
        return fail("expected a quoted regex");
      ++Pos;
      size_t Start = Pos;
      while (Pos < In.size() && In[Pos] != '"')
        ++Pos;
      if (Pos >= In.size())
        return fail("unterminated regex string");
      std::string Pattern(In.substr(Start, Pos - Start));
      ++Pos;
      Expected<Dfa> M = compileRegexEx(Pattern);
      if (!M) {
        // The regex diagnostic's column is an offset into the quoted
        // pattern; shift it to this file's coordinates.
        SourceLoc L = M.error().loc();
        uint32_t PatCol = L.Col ? L.Col : 1;
        return failAt("regex: " + M.error().message(),
                      SourceLoc{Line, static_cast<uint32_t>(
                                          Start - LineStart + PatCol)});
      }
      P.Dom = std::make_unique<MonoidDomain>(std::move(*M));
      if (!eat(';'))
        return false;
    }
    P.CS = std::make_unique<ConstraintSystem>(*P.Dom);
    return true;
  }

  std::optional<VarId> lookupVar(ConstraintProgram &P,
                                 const std::string &Name) {
    for (const auto &[N, V] : P.Vars)
      if (N == Name)
        return V;
    fail("unknown variable '" + Name + "'");
    return std::nullopt;
  }

  std::optional<ConsId> lookupCons(ConstraintProgram &P,
                                   const std::string &Name) {
    for (const auto &[N, C] : P.Constructors)
      if (N == Name)
        return C;
    fail("unknown constructor '" + Name + "'");
    return std::nullopt;
  }

  bool isDeclared(const ConstraintProgram &P, const std::string &Name) {
    for (const auto &[N, V] : P.Vars)
      if (N == Name)
        return true;
    for (const auto &[N, C] : P.Constructors)
      if (N == Name)
        return true;
    return false;
  }

  /// Parses one side of a constraint: var | cons(args) | constant.
  std::optional<ExprId> parseSide(ConstraintProgram &P) {
    auto Name = ident();
    if (!Name)
      return std::nullopt;
    // Variable?
    for (const auto &[N, V] : P.Vars)
      if (N == *Name)
        return P.CS->var(V);
    // Constructor / constant.
    auto C = lookupCons(P, *Name);
    if (!C)
      return std::nullopt;
    std::vector<VarId> Args;
    if (peekIs('(')) {
      ++Pos;
      while (true) {
        auto ArgName = ident();
        if (!ArgName)
          return std::nullopt;
        auto V = lookupVar(P, *ArgName);
        if (!V)
          return std::nullopt;
        Args.push_back(*V);
        if (peekIs(',')) {
          ++Pos;
          continue;
        }
        break;
      }
      if (!eat(')'))
        return std::nullopt;
    }
    if (Args.size() != P.CS->constructor(*C).Arity) {
      fail("constructor '" + *Name + "' expects " +
           std::to_string(P.CS->constructor(*C).Arity) + " argument(s)");
      return std::nullopt;
    }
    return P.CS->cons(*C, std::move(Args));
  }

  /// Optional [symbol] annotation after "<=".
  std::optional<AnnId> parseAnnotation(ConstraintProgram &P) {
    if (!peekIs('['))
      return P.Dom->identity();
    ++Pos;
    auto Sym = ident();
    if (!Sym)
      return std::nullopt;
    auto S = P.Dom->machine().symbol(*Sym);
    if (!S) {
      fail("'" + *Sym + "' is not a symbol of the annotation language");
      return std::nullopt;
    }
    if (!eat(']'))
      return std::nullopt;
    return P.Dom->symbolAnn(*S);
  }

  bool expectLeq() {
    skipTrivia();
    if (Pos + 1 < In.size() && In[Pos] == '<' && In[Pos + 1] == '=') {
      Pos += 2;
      return true;
    }
    return fail("expected '<='");
  }

  bool parseStatement(ConstraintProgram &P) {
    size_t Save = Pos;
    unsigned SaveLine = Line;
    size_t SaveLineStart = LineStart;
    auto Kw = ident();
    if (!Kw)
      return false;

    if (*Kw == "var") {
      while (true) {
        auto Name = ident();
        if (!Name)
          return false;
        if (isDeclared(P, *Name))
          return fail("'" + *Name + "' is already declared");
        P.Vars.emplace_back(*Name, P.CS->freshVar(*Name));
        if (peekIs(';')) {
          ++Pos;
          return true;
        }
      }
    }
    if (*Kw == "constant" || *Kw == "constructor") {
      auto Name = ident();
      if (!Name)
        return false;
      if (isDeclared(P, *Name))
        return fail("'" + *Name + "' is already declared");
      uint32_t Arity = 0;
      if (*Kw == "constructor") {
        auto N = number();
        if (!N)
          return false;
        // Arities beyond any real analysis are rejected up front so a
        // hostile file cannot make downstream passes allocate
        // per-argument state for millions of components.
        if (*N > 1024)
          return fail("constructor arity " + std::to_string(*N) +
                      " too large (max 1024)");
        Arity = *N;
      }
      P.Constructors.emplace_back(
          *Name, P.CS->addConstructor(*Name, Arity));
      return eat(';');
    }
    if (*Kw == "proj") {
      auto ConsName = ident();
      if (!ConsName)
        return false;
      auto C = lookupCons(P, *ConsName);
      if (!C)
        return false;
      auto Index = number();
      if (!Index)
        return false;
      if (*Index < 1 || *Index > P.CS->constructor(*C).Arity)
        return fail("projection index out of range (1-based)");
      auto SubjName = ident();
      if (!SubjName)
        return false;
      auto Subject = lookupVar(P, *SubjName);
      if (!Subject)
        return false;
      if (!expectLeq())
        return false;
      auto Ann = parseAnnotation(P);
      if (!Ann)
        return false;
      auto TargetName = ident();
      if (!TargetName)
        return false;
      auto Target = lookupVar(P, *TargetName);
      if (!Target)
        return false;
      P.CS->add(P.CS->proj(*C, *Index - 1, *Subject),
                P.CS->var(*Target), *Ann);
      return eat(';');
    }
    if (*Kw == "query") {
      ConstraintProgram::Query Q;
      size_t LineStart = Save;
      auto Next = ident();
      if (!Next)
        return false;
      Q.Kind = ConstraintProgram::Query::Matched;
      if (*Next == "pn") {
        Q.Kind = ConstraintProgram::Query::Pn;
        Next = ident();
        if (!Next)
          return false;
      }
      auto C = lookupCons(P, *Next);
      if (!C)
        return false;
      if (P.CS->constructor(*C).Arity != 0)
        return fail("queries are about constants");
      Q.Constant = *C;
      auto InKw = ident();
      if (!InKw || *InKw != "in")
        return fail("expected 'in'");
      auto VarName = ident();
      if (!VarName)
        return false;
      auto V = lookupVar(P, *VarName);
      if (!V)
        return false;
      Q.Var = *V;
      if (!eat(';'))
        return false;
      Q.Text = std::string(In.substr(LineStart, Pos - LineStart));
      P.Queries.push_back(std::move(Q));
      return true;
    }
    if (*Kw == "retract") {
      // "retract N;" flags the N-th constraint (0-based ingestion
      // order, counting every earlier constraint statement including
      // proj) as withdrawn. The flag replays on a warm boot exactly
      // like the statement that added the constraint did.
      auto N = number();
      if (!N)
        return false;
      if (std::optional<Diag> D = P.CS->retract(*N))
        return fail(D->message());
      return eat(';');
    }

    // Otherwise: a constraint "side <= [ann] side;".
    Pos = Save;
    Line = SaveLine;
    LineStart = SaveLineStart;
    auto Lhs = parseSide(P);
    if (!Lhs)
      return false;
    if (!expectLeq())
      return false;
    auto Ann = parseAnnotation(P);
    if (!Ann)
      return false;
    auto Rhs = parseSide(P);
    if (!Rhs)
      return false;
    if (P.CS->expr(*Rhs).Kind == ExprKind::Cons &&
        P.CS->expr(*Lhs).Kind == ExprKind::Cons &&
        P.CS->expr(*Lhs).C != P.CS->expr(*Rhs).C)
      return fail("constructor mismatch is trivially inconsistent");
    P.CS->add(*Lhs, *Rhs, *Ann);
    return eat(';');
  }

  std::string_view In;
  size_t Pos = 0;
  size_t LineStart = 0;
  uint32_t Line = 1;
  std::optional<Diag> Err;
};

} // namespace rasc

Expected<ConstraintProgram> ConstraintProgram::parseEx(std::string_view Source) {
  ConstraintFileParser P(Source);
  return P.parse();
}

std::optional<ConstraintProgram>
ConstraintProgram::parse(std::string_view Source, std::string *Error) {
  Expected<ConstraintProgram> P = parseEx(Source);
  if (P)
    return std::move(*P);
  if (Error && Error->empty())
    *Error = P.error().render();
  return std::nullopt;
}

std::optional<Diag>
ConstraintProgram::addStatements(std::string_view Source,
                                 size_t *AppliedBytes) {
  if (AppliedBytes)
    *AppliedBytes = 0;
  ConstraintFileParser P(Source);
  return P.parseInto(*this, AppliedBytes);
}

std::optional<VarId>
ConstraintProgram::varByName(std::string_view Name) const {
  for (const auto &[N, V] : Vars)
    if (N == Name)
      return V;
  return std::nullopt;
}

std::optional<ConsId>
ConstraintProgram::consByName(std::string_view Name) const {
  for (const auto &[N, C] : Constructors)
    if (N == Name)
      return C;
  return std::nullopt;
}

std::vector<ConstraintProgram::Answer>
ConstraintProgram::solveAndAnswer(SolverOptions Options,
                                  SolverStats *StatsOut) {
  BidirectionalSolver Solver(*CS, Options);
  Solver.solve();
  if (StatsOut)
    *StatsOut = Solver.stats();
  return answer(Solver);
}

std::vector<ConstraintProgram::Answer>
ConstraintProgram::answer(BidirectionalSolver &Solver) const {
  std::vector<Answer> Out;
  for (const Query &Q : Queries) {
    Answer A{&Q, false};
    if (Q.Kind == Query::Matched) {
      A.Holds = Solver.entailsConstant(Q.Constant, Q.Var);
    } else {
      AtomReachability AR = Solver.atomReachability(Q.Constant);
      for (AnnId F : AR.annotations(Q.Var))
        A.Holds |= Dom->isAccepting(F);
    }
    Out.push_back(A);
  }
  return Out;
}
