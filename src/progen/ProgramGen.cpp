//===- progen/ProgramGen.cpp - Synthetic workload generation ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "progen/ProgramGen.h"

#include "support/Rng.h"

#include <algorithm>

using namespace rasc;

Program rasc::generateProgram(const ProgGenOptions &Options) {
  Rng R(Options.Seed);
  Program P;

  std::vector<FuncId> Funcs;
  for (unsigned I = 0; I != Options.NumFunctions; ++I)
    Funcs.push_back(
        P.addFunction(I == 0 ? "main" : "f" + std::to_string(I)));

  auto isParametric = [&](const std::string &Sym) {
    return std::find(Options.ParametricSymbols.begin(),
                     Options.ParametricSymbols.end(),
                     Sym) != Options.ParametricSymbols.end();
  };

  for (unsigned FI = 0; FI != Options.NumFunctions; ++FI) {
    FuncId F = Funcs[FI];
    std::vector<StmtId> Body;
    for (unsigned SI = 0; SI != Options.StmtsPerFunction; ++SI) {
      uint64_t Roll = R.below(1000);
      if (Roll < Options.CallPermille && Options.NumFunctions > 1) {
        FuncId Callee;
        if (Options.AllowRecursion) {
          Callee = Funcs[R.below(Options.NumFunctions)];
        } else if (FI + 1 < Options.NumFunctions) {
          Callee = Funcs[FI + 1 + R.below(Options.NumFunctions - FI - 1)];
        } else {
          Body.push_back(P.addNop(F));
          continue;
        }
        Body.push_back(P.addCall(F, Callee));
      } else if (Roll < Options.CallPermille + Options.OpPermille &&
                 !Options.OpSymbols.empty()) {
        const std::string &Sym =
            Options.OpSymbols[R.below(Options.OpSymbols.size())];
        std::vector<std::string> Labels;
        if (isParametric(Sym) && !Options.Labels.empty())
          Labels.push_back(Options.Labels[R.below(Options.Labels.size())]);
        Body.push_back(P.addOp(F, Sym, std::move(Labels)));
      } else {
        Body.push_back(P.addNop(F));
      }
    }

    // Straight-line spine entry -> body -> exit.
    StmtId Prev = P.entry(F);
    for (StmtId S : Body) {
      P.addEdge(Prev, S);
      Prev = S;
    }
    P.addEdge(Prev, P.exit(F));

    // Extra forward branches make diamonds and skips.
    for (size_t I = 0; I + 1 < Body.size(); ++I)
      if (R.below(1000) < Options.BranchPermille) {
        size_t J = I + 1 + R.below(Body.size() - I - 1);
        P.addEdge(Body[I], Body[J]);
      }
  }

  P.finalize();
  return P;
}

Program rasc::generatePackage(size_t Lines, const SpecAutomaton &Spec,
                              uint64_t Seed) {
  ProgGenOptions O;
  O.Seed = Seed;
  // ~3 lines of C per CFG statement, ~60 lines per function.
  O.NumFunctions = static_cast<unsigned>(std::max<size_t>(2, Lines / 60));
  O.StmtsPerFunction = static_cast<unsigned>(
      std::max<size_t>(4, (Lines / 3) / O.NumFunctions));
  O.CallPermille = 120;
  // Security-relevant operations are rare in real code; roughly one
  // per 150 lines.
  O.OpPermille = 20;
  O.BranchPermille = 250;
  // Real packages have almost entirely acyclic call graphs; a random
  // graph with back calls everywhere creates giant mutually recursive
  // SCCs no real program has.
  O.AllowRecursion = false;
  for (SymbolId S = 0, E = Spec.machine().numSymbols(); S != E; ++S) {
    O.OpSymbols.push_back(Spec.symbols()[S].Name);
    if (Spec.isParametric(S))
      O.ParametricSymbols.push_back(Spec.symbols()[S].Name);
  }
  if (!O.ParametricSymbols.empty())
    O.Labels = {"fd1", "fd2", "fd3"};
  return generateProgram(O);
}
