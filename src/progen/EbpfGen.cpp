//===- progen/EbpfGen.cpp - Synthetic eBPF bytecode emitter -----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "progen/EbpfGen.h"

#include "ebpf/Lower.h" // HelperMapLookup
#include "support/Rng.h"

#include <cassert>

namespace rasc {

using namespace ebpf;

namespace {

/// A register that may be written (anything but r10).
uint8_t writableReg(Rng &R) { return static_cast<uint8_t>(R.below(10)); }

/// Any readable register, r10 included.
uint8_t readableReg(Rng &R) { return static_cast<uint8_t>(R.below(NumRegs)); }

/// A base register for memory accesses: r0 with the configured bias
/// (dereferencing the last helper result), otherwise any register.
uint8_t baseReg(Rng &R, const EbpfGenOptions &Opts) {
  if (R.chance(Opts.R0BasePermille, 1000))
    return 0;
  return readableReg(R);
}

MemSize randomSize(Rng &R) {
  switch (R.below(4)) {
  case 0:
    return MemSize::W;
  case 1:
    return MemSize::H;
  case 2:
    return MemSize::B;
  default:
    return MemSize::Dw;
  }
}

int16_t smallOff(Rng &R) {
  return static_cast<int16_t>(static_cast<int64_t>(R.range(0, 256)) - 128);
}

Insn randomAlu(Rng &R) {
  // Every ALU op except the rejected byte-swap group.
  static const AluOp Ops[] = {AluOp::Add,  AluOp::Sub, AluOp::Mul,
                              AluOp::Div,  AluOp::Or,  AluOp::And,
                              AluOp::Lsh,  AluOp::Rsh, AluOp::Neg,
                              AluOp::Mod,  AluOp::Xor, AluOp::Mov,
                              AluOp::Arsh};
  AluOp Op = Ops[R.below(std::size(Ops))];
  bool Is64 = R.chance(1, 2);
  uint8_t Dst = writableReg(R);
  if (Op == AluOp::Neg)
    return mkAluImm(AluOp::Neg, Dst, 0, Is64);
  if (R.chance(1, 2))
    return mkAlu(Op, Dst, readableReg(R), Is64);
  int32_t Imm = static_cast<int32_t>(R.next());
  if (Op == AluOp::Div || Op == AluOp::Mod)
    Imm = static_cast<int32_t>(R.range(1, 1000)); // no zero divisors
  else if (Op == AluOp::Lsh || Op == AluOp::Rsh || Op == AluOp::Arsh)
    Imm = static_cast<int32_t>(R.below(Is64 ? 64 : 32));
  return mkAluImm(Op, Dst, Imm, Is64);
}

Insn randomBody(Rng &R, const EbpfGenOptions &Opts) {
  if (R.chance(Opts.CallPermille, 1000))
    return mkCall(R.chance(Opts.LookupPermille, 1000)
                      ? HelperMapLookup
                      : static_cast<int32_t>(R.range(2, 12)));
  if (R.chance(Opts.WidePermille, 1000))
    return mkLdImm64(writableReg(R), R.next());
  if (R.chance(Opts.MovPermille, 1000))
    return mkAlu(AluOp::Mov, writableReg(R), readableReg(R), R.chance(1, 2));
  switch (R.below(4)) {
  case 0:
    return mkLoad(randomSize(R), writableReg(R), baseReg(R, Opts),
                  smallOff(R));
  case 1:
    return mkStoreReg(randomSize(R), baseReg(R, Opts), readableReg(R),
                      smallOff(R));
  case 2:
    return mkStoreImm(randomSize(R), baseReg(R, Opts),
                      static_cast<int32_t>(R.next()), smallOff(R));
  default:
    return randomAlu(R);
  }
}

/// A conditional jump terminator; the offset is patched after layout.
Insn randomCondJmp(Rng &R, const EbpfGenOptions &Opts) {
  if (R.chance(Opts.CheckPermille, 1000))
    return mkJmpImm(R.chance(1, 2) ? JmpOp::Jeq : JmpOp::Jne, 0, 0, 0);
  static const JmpOp Ops[] = {JmpOp::Jeq,  JmpOp::Jgt,  JmpOp::Jge,
                              JmpOp::Jset, JmpOp::Jne,  JmpOp::Jsgt,
                              JmpOp::Jsge, JmpOp::Jlt,  JmpOp::Jle,
                              JmpOp::Jslt, JmpOp::Jsle};
  JmpOp Op = Ops[R.below(std::size(Ops))];
  bool Is32 = R.chance(1, 4);
  if (R.chance(1, 2))
    return mkJmp(Op, readableReg(R), readableReg(R), 0, Is32);
  return mkJmpImm(Op, readableReg(R), static_cast<int32_t>(R.next()), 0,
                  Is32);
}

} // namespace

std::vector<Insn> generateEbpfInsns(const EbpfGenOptions &Opts) {
  Rng R(Opts.Seed);
  const unsigned NumBlocks =
      static_cast<unsigned>(R.range(Opts.MinBlocks, Opts.MaxBlocks));

  // Per-block instruction lists; terminator jump targets are recorded
  // as block indices and patched to slot offsets after layout.
  struct GenBlock {
    std::vector<Insn> Insns;
    unsigned JumpTarget = ~0u; ///< block index the last insn jumps to
  };
  std::vector<GenBlock> Blocks(NumBlocks);

  for (unsigned B = 0; B != NumBlocks; ++B) {
    GenBlock &GB = Blocks[B];
    const unsigned Body =
        static_cast<unsigned>(R.range(Opts.MinBodyInsns, Opts.MaxBodyInsns));
    for (unsigned I = 0; I != Body; ++I)
      GB.Insns.push_back(randomBody(R, Opts));

    // Terminator. The last block must not fall through the end; any
    // block may exit early or jump backwards (loops).
    const bool IsLast = B + 1 == NumBlocks;
    const uint64_t Kind = R.below(IsLast ? 2 : 5);
    if (Kind == 0) {
      GB.Insns.push_back(mkExit());
    } else if (Kind == 1) {
      GB.Insns.push_back(mkJa(0));
      GB.JumpTarget = static_cast<unsigned>(R.below(NumBlocks));
    } else {
      // Conditional: taken target anywhere, fall-through to B + 1.
      GB.Insns.push_back(randomCondJmp(R, Opts));
      GB.JumpTarget = static_cast<unsigned>(R.below(NumBlocks));
    }
  }

  // Layout: blocks in order; record each block's first slot.
  std::vector<uint32_t> BlockSlot(NumBlocks);
  uint32_t Slot = 0;
  for (unsigned B = 0; B != NumBlocks; ++B) {
    BlockSlot[B] = Slot;
    for (const Insn &I : Blocks[B].Insns)
      Slot += I.slots();
  }

  // Patch jump offsets (slot-relative) and flatten.
  std::vector<Insn> Out;
  for (unsigned B = 0; B != NumBlocks; ++B) {
    GenBlock &GB = Blocks[B];
    if (GB.JumpTarget != ~0u) {
      uint32_t TermSlot = BlockSlot[B];
      for (size_t I = 0; I + 1 != GB.Insns.size(); ++I)
        TermSlot += GB.Insns[I].slots();
      int64_t Off = static_cast<int64_t>(BlockSlot[GB.JumpTarget]) -
                    (static_cast<int64_t>(TermSlot) + 1);
      assert(Off >= INT16_MIN && Off <= INT16_MAX && "layout too large");
      GB.Insns.back().Off = static_cast<int16_t>(Off);
    }
    Out.insert(Out.end(), GB.Insns.begin(), GB.Insns.end());
  }
  return Out;
}

std::vector<uint8_t> generateEbpf(const EbpfGenOptions &Opts) {
  return encode(generateEbpfInsns(Opts));
}

} // namespace rasc
