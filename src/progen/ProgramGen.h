//===- progen/ProgramGen.h - Synthetic workload generation ------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded generators for synthetic programs. Table 1 of
/// the paper checks real packages (VixieCron, At, Sendmail, Apache);
/// those C sources are not available here, and the checkers consume
/// only a CFG with security-relevant operations, so the benchmark
/// harness generates packages with the same line counts and a
/// realistic call/branch structure instead (see DESIGN.md,
/// substitutions). The same generator drives the differential tests
/// between the annotated-constraint checker and the MOPS baseline.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PROGEN_PROGRAMGEN_H
#define RASC_PROGEN_PROGRAMGEN_H

#include "pdmc/Program.h"
#include "spec/SpecParser.h"

#include <cstdint>
#include <string>
#include <vector>

namespace rasc {

/// Tuning for generateProgram().
struct ProgGenOptions {
  uint64_t Seed = 1;
  /// Number of functions (function 0 is main).
  unsigned NumFunctions = 4;
  /// Statements per function body.
  unsigned StmtsPerFunction = 12;
  /// Per-statement permille chance of being a call.
  unsigned CallPermille = 150;
  /// Per-statement permille chance of being a property operation.
  unsigned OpPermille = 120;
  /// Per-statement permille chance of an extra forward branch edge.
  unsigned BranchPermille = 250;
  /// Allow calls to any function (recursion) instead of only
  /// later-indexed ones (a DAG call graph).
  bool AllowRecursion = true;
  /// Property symbols to draw operations from (weighted uniformly).
  std::vector<std::string> OpSymbols;
  /// Label pool for parametric symbols (empty = non-parametric).
  std::vector<std::string> Labels;
  /// Symbols that take a label (subset of OpSymbols).
  std::vector<std::string> ParametricSymbols;
};

/// Generates a random program; deterministic in Options.Seed.
Program generateProgram(const ProgGenOptions &Options);

/// Generates a "package" comparable to a Table 1 row: \p Lines lines
/// of C are modelled as roughly Lines/3 CFG statements spread over
/// Lines/60 functions, with privilege operations drawn from \p Spec's
/// alphabet sprinkled at realistic density.
Program generatePackage(size_t Lines, const SpecAutomaton &Spec,
                        uint64_t Seed);

} // namespace rasc

#endif // RASC_PROGEN_PROGRAMGEN_H
