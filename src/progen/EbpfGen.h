//===- progen/EbpfGen.h - Synthetic eBPF bytecode emitter -------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seeded emitter of *valid-but-adversarial* eBPF
/// programs for the bytecode front-end (DESIGN.md §13): every emitted
/// program decodes (the emitter respects each rule the decoder
/// enforces — no r10 writes, no zero divisors, in-range shifts,
/// in-range jumps, control never falls off the end), but register use
/// is otherwise unconstrained, so reads-before-init, unchecked map
/// lookups, loops, and unreachable blocks all occur naturally. The
/// property/differential tests and bench_ebpf draw their corpora from
/// here; malformed inputs are produced separately by mutating the
/// emitted bytes (see ebpf_property_test).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PROGEN_EBPFGEN_H
#define RASC_PROGEN_EBPFGEN_H

#include "ebpf/Insn.h"

#include <cstdint>
#include <vector>

namespace rasc {

/// Tuning for generateEbpfInsns().
struct EbpfGenOptions {
  uint64_t Seed = 1;
  /// Basic blocks, laid out sequentially (the last always exits).
  unsigned MinBlocks = 2;
  unsigned MaxBlocks = 8;
  /// Non-terminator instructions per block.
  unsigned MinBodyInsns = 1;
  unsigned MaxBodyInsns = 6;
  /// Per-body-instruction permille chance of a helper call.
  unsigned CallPermille = 180;
  /// Of the calls, permille that are bpf_map_lookup_elem (helper 1).
  unsigned LookupPermille = 500;
  /// Of the memory accesses, permille using r0 as the base register —
  /// dereferences of the last lookup result, checked or not.
  unsigned R0BasePermille = 350;
  /// Of the conditional terminators, permille that test "r0 == 0" /
  /// "r0 != 0" (the pdmc "check" event).
  unsigned CheckPermille = 500;
  /// Per-body-instruction permille chance of an LD_IMM64.
  unsigned WidePermille = 120;
  /// Per-body-instruction permille chance of a register-to-register
  /// mov — the only instruction the flow lowering tracks exactly, so
  /// this controls how often the context (r1) can reach the result
  /// (r0) at exit.
  unsigned MovPermille = 150;
};

/// Emits a decoder-valid instruction sequence; deterministic in
/// \p Opts (bit-identical across platforms).
std::vector<ebpf::Insn> generateEbpfInsns(const EbpfGenOptions &Opts);

/// generateEbpfInsns() encoded to wire bytes.
std::vector<uint8_t> generateEbpf(const EbpfGenOptions &Opts);

} // namespace rasc

#endif // RASC_PROGEN_EBPFGEN_H
