//===- ebpf/Decode.cpp - eBPF bytecode decoder ------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "ebpf/Decode.h"

#include <cstdio>
#include <optional>

namespace rasc {
namespace ebpf {

namespace {

std::string hexByte(uint8_t B) {
  char Buf[8];
  std::snprintf(Buf, sizeof(Buf), "0x%02x", B);
  return Buf;
}

/// Diag factory: every decoder rejection names the byte offset and
/// carries the 1-based slot index in SourceLoc::Line.
Diag at(uint32_t Slot, std::string Msg) {
  Msg += " at byte offset " + std::to_string(Slot * SlotBytes);
  return Diag(std::move(Msg), SourceLoc{Slot + 1, 0});
}

uint16_t readLe16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (uint16_t(P[1]) << 8));
}

uint32_t readLe32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

/// Raw field split of one 8-byte slot.
struct RawSlot {
  uint8_t Opcode, Dst, Src;
  int16_t Off;
  int32_t Imm;
};

RawSlot readSlot(const uint8_t *P) {
  RawSlot S;
  S.Opcode = P[0];
  S.Dst = P[1] & 0x0f;
  S.Src = static_cast<uint8_t>(P[1] >> 4);
  S.Off = static_cast<int16_t>(readLe16(P + 2));
  S.Imm = static_cast<int32_t>(readLe32(P + 4));
  return S;
}

/// Registers readable anywhere; r10 is additionally writable nowhere.
std::optional<Diag> checkRegs(uint32_t Slot, const RawSlot &S, bool DstRead,
                              bool DstWritten, bool SrcRead) {
  if ((DstRead || DstWritten) && S.Dst >= NumRegs)
    return at(Slot, "register r" + std::to_string(S.Dst) + " out of range");
  if (SrcRead && S.Src >= NumRegs)
    return at(Slot, "register r" + std::to_string(S.Src) + " out of range");
  if (DstWritten && S.Dst == FrameReg)
    return at(Slot, "write to read-only frame register r10");
  return std::nullopt;
}

std::optional<Diag> validateAlu(uint32_t Slot, const RawSlot &S, Insn &I) {
  AluOp Op = I.aluOp();
  bool Is64 = I.cls() == InsnClass::Alu64;
  if (static_cast<uint8_t>(Op) > static_cast<uint8_t>(AluOp::End))
    return at(Slot, "invalid opcode " + hexByte(S.Opcode));
  if (Op == AluOp::End)
    return at(Slot, "byte-swap (END) instructions are out of scope");
  if (S.Off != 0)
    return at(Slot, "reserved offset field not zero in ALU instruction");
  if (Op == AluOp::Neg) {
    if (I.srcIsReg())
      return at(Slot, "invalid opcode " + hexByte(S.Opcode));
    return checkRegs(Slot, S, /*DstRead=*/true, /*DstWritten=*/true,
                     /*SrcRead=*/false);
  }
  bool ReadsDst = Op != AluOp::Mov;
  if (auto D = checkRegs(Slot, S, ReadsDst, /*DstWritten=*/true,
                         /*SrcRead=*/I.srcIsReg()))
    return D;
  if (!I.srcIsReg() && S.Src != 0)
    return at(Slot, "reserved source register not zero in ALU instruction");
  if (!I.srcIsReg()) {
    if ((Op == AluOp::Div || Op == AluOp::Mod) && S.Imm == 0)
      return at(Slot, "division by zero immediate");
    if (Op == AluOp::Lsh || Op == AluOp::Rsh || Op == AluOp::Arsh) {
      int32_t Width = Is64 ? 64 : 32;
      if (S.Imm < 0 || S.Imm >= Width)
        return at(Slot, "shift amount " + std::to_string(S.Imm) +
                            " out of range for " +
                            (Is64 ? std::string("64") : std::string("32")) +
                            "-bit shift");
    }
  }
  return std::nullopt;
}

std::optional<Diag> validateJmp(uint32_t Slot, const RawSlot &S, Insn &I) {
  JmpOp Op = I.jmpOp();
  bool Is32 = I.cls() == InsnClass::Jmp32;
  if (static_cast<uint8_t>(Op) > static_cast<uint8_t>(JmpOp::Jsle))
    return at(Slot, "invalid opcode " + hexByte(S.Opcode));
  switch (Op) {
  case JmpOp::Call:
    if (Is32)
      return at(Slot, "invalid opcode " + hexByte(S.Opcode));
    if (I.srcIsReg() || S.Src != 0)
      return at(Slot, "unsupported bpf-to-bpf or tail call");
    if (S.Dst != 0 || S.Off != 0)
      return at(Slot, "reserved field not zero in call instruction");
    return std::nullopt;
  case JmpOp::Exit:
    if (Is32 || I.srcIsReg())
      return at(Slot, "invalid opcode " + hexByte(S.Opcode));
    if (S.Dst != 0 || S.Src != 0 || S.Off != 0 || S.Imm != 0)
      return at(Slot, "reserved field not zero in exit instruction");
    return std::nullopt;
  case JmpOp::Ja:
    if (Is32 || I.srcIsReg())
      return at(Slot, "invalid opcode " + hexByte(S.Opcode));
    if (S.Dst != 0 || S.Src != 0 || S.Imm != 0)
      return at(Slot, "reserved field not zero in jump instruction");
    return std::nullopt;
  default:
    // Conditional: dst is read, src read in X form.
    if (auto D = checkRegs(Slot, S, /*DstRead=*/true, /*DstWritten=*/false,
                           /*SrcRead=*/I.srcIsReg()))
      return D;
    if (!I.srcIsReg() && S.Src != 0)
      return at(Slot,
                "reserved source register not zero in jump instruction");
    return std::nullopt;
  }
}

std::optional<Diag> validateMem(uint32_t Slot, const RawSlot &S, Insn &I) {
  switch (I.memMode()) {
  case MemMode::Abs:
  case MemMode::Ind:
    return at(Slot, "legacy packet access (ABS/IND) is out of scope");
  case MemMode::Atomic:
    return at(Slot, "atomic operations are out of scope");
  case MemMode::Imm:
    // Only LD_IMM64, handled by the caller before this point.
    return at(Slot, "invalid opcode " + hexByte(S.Opcode));
  case MemMode::Mem:
    break;
  default:
    return at(Slot, "invalid opcode " + hexByte(S.Opcode));
  }
  switch (I.cls()) {
  case InsnClass::Ldx: // dst <- *(base src + off)
    return checkRegs(Slot, S, /*DstRead=*/false, /*DstWritten=*/true,
                     /*SrcRead=*/true);
  case InsnClass::Stx: // *(base dst + off) <- src
    return checkRegs(Slot, S, /*DstRead=*/true, /*DstWritten=*/false,
                     /*SrcRead=*/true);
  case InsnClass::St: // *(base dst + off) <- imm
    if (S.Src != 0)
      return at(Slot,
                "reserved source register not zero in store instruction");
    return checkRegs(Slot, S, /*DstRead=*/true, /*DstWritten=*/false,
                     /*SrcRead=*/false);
  default: // plain Ld other than LD_IMM64
    return at(Slot, "invalid opcode " + hexByte(S.Opcode));
  }
}

} // namespace

Expected<DecodedProgram> decode(std::span<const uint8_t> Bytes) {
  if (Bytes.empty())
    return Diag("empty program");
  if (Bytes.size() % SlotBytes != 0)
    return Diag("truncated instruction stream: program size " +
                    std::to_string(Bytes.size()) +
                    " is not a multiple of 8",
                SourceLoc{static_cast<uint32_t>(Bytes.size() / SlotBytes) + 1,
                          0});

  DecodedProgram P;
  const uint32_t NumSlots = static_cast<uint32_t>(Bytes.size() / SlotBytes);
  P.InsnAtSlot.resize(NumSlots);

  for (uint32_t Slot = 0; Slot != NumSlots;) {
    RawSlot S = readSlot(Bytes.data() + size_t(Slot) * SlotBytes);
    Insn I;
    I.Opcode = S.Opcode;
    I.Dst = S.Dst;
    I.Src = S.Src;
    I.Off = S.Off;
    I.Imm = S.Imm;

    std::optional<Diag> D;
    switch (I.cls()) {
    case InsnClass::Alu:
    case InsnClass::Alu64:
      D = validateAlu(Slot, S, I);
      break;
    case InsnClass::Jmp:
    case InsnClass::Jmp32:
      D = validateJmp(Slot, S, I);
      break;
    case InsnClass::Ld:
      if (I.Opcode == LdImm64Opcode) {
        if (S.Src != 0)
          D = at(Slot, "map-fd and other pseudo immediates are out of scope");
        else if (S.Off != 0)
          D = at(Slot,
                 "reserved offset field not zero in wide instruction");
        else if (auto RD = checkRegs(Slot, S, /*DstRead=*/false,
                                     /*DstWritten=*/true, /*SrcRead=*/false))
          D = RD;
        else if (Slot + 1 == NumSlots)
          D = at(Slot, "wide instruction split across the end of the program");
        else {
          RawSlot S2 = readSlot(Bytes.data() + size_t(Slot + 1) * SlotBytes);
          if (S2.Opcode != 0 || S2.Dst != 0 || S2.Src != 0 || S2.Off != 0)
            D = at(Slot + 1, "malformed second slot of wide instruction");
          else {
            I.Wide = true;
            I.Imm64 = (static_cast<uint64_t>(static_cast<uint32_t>(S2.Imm))
                       << 32) |
                      static_cast<uint32_t>(S.Imm);
          }
        }
      } else {
        D = validateMem(Slot, S, I);
      }
      break;
    case InsnClass::Ldx:
    case InsnClass::St:
    case InsnClass::Stx:
      D = validateMem(Slot, S, I);
      break;
    }
    if (D)
      return *D;

    uint32_t InsnIdx = static_cast<uint32_t>(P.Insns.size());
    P.SlotOf.push_back(Slot);
    P.InsnAtSlot[Slot] = InsnIdx;
    if (I.Wide)
      P.InsnAtSlot[Slot + 1] = InsnIdx;
    uint32_t Next = Slot + I.slots();
    P.Insns.push_back(I);
    Slot = Next;
  }

  // Control-flow validation over the assembled slot map.
  for (uint32_t Idx = 0; Idx != P.numInsns(); ++Idx) {
    const Insn &I = P.Insns[Idx];
    uint32_t Slot = P.SlotOf[Idx];
    if (I.isBranch()) {
      int64_t Target = static_cast<int64_t>(Slot) + 1 + I.Off;
      if (Target < 0 || Target >= NumSlots)
        return at(Slot, "jump out of range (target slot " +
                            std::to_string(Target) + " of " +
                            std::to_string(NumSlots) + ")");
      uint32_t TargetInsn = P.InsnAtSlot[static_cast<uint32_t>(Target)];
      if (P.SlotOf[TargetInsn] != static_cast<uint32_t>(Target))
        return at(Slot, "jump into the middle of a wide instruction");
    }
    // Anything that can fall through must have a next instruction.
    bool FallsThrough = !I.isExit() && !I.isUncondJump();
    if (FallsThrough && Idx + 1 == P.numInsns())
      return at(Slot, "control falls off the end of the program");
  }

  return P;
}

//===----------------------------------------------------------------------===//
// Encoding (the exact inverse on accepted programs)
//===----------------------------------------------------------------------===//

void encode(const Insn &I, std::vector<uint8_t> &Out) {
  auto emitSlot = [&Out](uint8_t Opcode, uint8_t Dst, uint8_t Src,
                         int16_t Off, int32_t Imm) {
    Out.push_back(Opcode);
    Out.push_back(static_cast<uint8_t>((Src << 4) | (Dst & 0x0f)));
    uint16_t O = static_cast<uint16_t>(Off);
    Out.push_back(static_cast<uint8_t>(O & 0xff));
    Out.push_back(static_cast<uint8_t>(O >> 8));
    uint32_t V = static_cast<uint32_t>(Imm);
    for (int B = 0; B != 4; ++B)
      Out.push_back(static_cast<uint8_t>((V >> (8 * B)) & 0xff));
  };
  if (I.Wide) {
    emitSlot(I.Opcode, I.Dst, I.Src, I.Off,
             static_cast<int32_t>(I.Imm64 & 0xffffffffu));
    emitSlot(0, 0, 0, 0, static_cast<int32_t>(I.Imm64 >> 32));
    return;
  }
  emitSlot(I.Opcode, I.Dst, I.Src, I.Off, I.Imm);
}

std::vector<uint8_t> encode(const std::vector<Insn> &Prog) {
  std::vector<uint8_t> Out;
  Out.reserve(Prog.size() * SlotBytes);
  for (const Insn &I : Prog)
    encode(I, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Disassembly
//===----------------------------------------------------------------------===//

namespace {

const char *aluMnemonic(AluOp Op) {
  switch (Op) {
  case AluOp::Add:
    return "+=";
  case AluOp::Sub:
    return "-=";
  case AluOp::Mul:
    return "*=";
  case AluOp::Div:
    return "/=";
  case AluOp::Or:
    return "|=";
  case AluOp::And:
    return "&=";
  case AluOp::Lsh:
    return "<<=";
  case AluOp::Rsh:
    return ">>=";
  case AluOp::Mod:
    return "%=";
  case AluOp::Xor:
    return "^=";
  case AluOp::Mov:
    return "=";
  case AluOp::Arsh:
    return "s>>=";
  default:
    return "?=";
  }
}

const char *jmpMnemonic(JmpOp Op) {
  switch (Op) {
  case JmpOp::Jeq:
    return "==";
  case JmpOp::Jgt:
    return ">";
  case JmpOp::Jge:
    return ">=";
  case JmpOp::Jset:
    return "&";
  case JmpOp::Jne:
    return "!=";
  case JmpOp::Jsgt:
    return "s>";
  case JmpOp::Jsge:
    return "s>=";
  case JmpOp::Jlt:
    return "<";
  case JmpOp::Jle:
    return "<=";
  case JmpOp::Jslt:
    return "s<";
  case JmpOp::Jsle:
    return "s<=";
  default:
    return "?";
  }
}

const char *sizeName(MemSize S) {
  switch (S) {
  case MemSize::B:
    return "u8";
  case MemSize::H:
    return "u16";
  case MemSize::W:
    return "u32";
  case MemSize::Dw:
    return "u64";
  }
  return "u?";
}

std::string reg(uint8_t R, bool Wide64) {
  return (Wide64 ? "r" : "w") + std::to_string(R);
}

std::string offStr(int32_t Off) {
  return (Off >= 0 ? "+" : "") + std::to_string(Off);
}

std::string memAddr(const char *Size, uint8_t Base, int16_t Off) {
  std::string S = "*(";
  S += Size;
  S += " *)(r" + std::to_string(Base);
  if (Off >= 0)
    S += " + " + std::to_string(Off);
  else
    S += " - " + std::to_string(-static_cast<int32_t>(Off));
  return S + ")";
}

} // namespace

std::string toString(const Insn &I) {
  switch (I.cls()) {
  case InsnClass::Alu:
  case InsnClass::Alu64: {
    bool Is64 = I.cls() == InsnClass::Alu64;
    std::string D = reg(I.Dst, Is64);
    if (I.aluOp() == AluOp::Neg)
      return D + " = -" + D;
    std::string Rhs =
        I.srcIsReg() ? reg(I.Src, Is64) : std::to_string(I.Imm);
    return D + " " + aluMnemonic(I.aluOp()) + " " + Rhs;
  }
  case InsnClass::Jmp:
  case InsnClass::Jmp32: {
    if (I.isExit())
      return "exit";
    if (I.isCall())
      return "call " + std::to_string(I.Imm);
    if (I.isUncondJump())
      return "goto " + offStr(I.Off);
    bool Is64 = I.cls() == InsnClass::Jmp;
    std::string Rhs =
        I.srcIsReg() ? reg(I.Src, Is64) : std::to_string(I.Imm);
    return "if " + reg(I.Dst, Is64) + " " + jmpMnemonic(I.jmpOp()) + " " +
           Rhs + " goto " + offStr(I.Off);
  }
  case InsnClass::Ld: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(I.Imm64));
    return "r" + std::to_string(I.Dst) + " = " + Buf + " ll";
  }
  case InsnClass::Ldx:
    return "r" + std::to_string(I.Dst) + " = " +
           memAddr(sizeName(I.memSize()), I.Src, I.Off);
  case InsnClass::St:
    return memAddr(sizeName(I.memSize()), I.Dst, I.Off) + " = " +
           std::to_string(I.Imm);
  case InsnClass::Stx:
    return memAddr(sizeName(I.memSize()), I.Dst, I.Off) + " = r" +
           std::to_string(I.Src);
  }
  return "<invalid>";
}

std::string dump(const DecodedProgram &P) {
  std::string Out;
  for (uint32_t Idx = 0; Idx != P.numInsns(); ++Idx) {
    Out += std::to_string(P.SlotOf[Idx]) + ": " + toString(P.Insns[Idx]) +
           "\n";
  }
  return Out;
}

} // namespace ebpf
} // namespace rasc
