//===- ebpf/Cfg.cpp - Basic blocks over decoded eBPF ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "ebpf/Cfg.h"

#include <cassert>

namespace rasc {
namespace ebpf {

Cfg buildCfg(DecodedProgram Prog) {
  Cfg G;
  G.Prog = std::move(Prog);
  const DecodedProgram &P = G.Prog;
  const uint32_t N = P.numInsns();
  assert(N != 0 && "decode rejects empty programs");

  // Leader detection.
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (uint32_t I = 0; I != N; ++I) {
    const Insn &In = P.Insns[I];
    if (In.isBranch()) {
      Leader[P.branchTargetInsn(I)] = true;
      if (I + 1 != N)
        Leader[I + 1] = true;
    } else if (In.isExit() && I + 1 != N) {
      Leader[I + 1] = true;
    }
  }

  // Carve blocks and record membership.
  G.BlockOfInsn.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    if (Leader[I]) {
      Block B;
      B.FirstInsn = I;
      G.Blocks.push_back(B);
    }
    uint32_t BlockId = static_cast<uint32_t>(G.Blocks.size()) - 1;
    G.BlockOfInsn[I] = BlockId;
    ++G.Blocks[BlockId].NumInsns;
  }

  // Edges: fall-through first, then the taken target (deterministic
  // order, relied on by the lowering and the differential tests).
  for (Block &B : G.Blocks) {
    uint32_t Last = B.lastInsn();
    const Insn &T = P.Insns[Last];
    if (T.isExit())
      continue;
    if (T.isBranch()) {
      uint32_t Target = G.BlockOfInsn[P.branchTargetInsn(Last)];
      if (T.isUncondJump()) {
        B.Succs.push_back(Target);
      } else {
        B.Succs.push_back(G.BlockOfInsn[Last + 1]); // fall-through
        if (Target != B.Succs.back()) // "goto +0" has one successor
          B.Succs.push_back(Target);
      }
      continue;
    }
    // Block ended because the next instruction is a leader.
    assert(Last + 1 != N && "decode rejects fall-off-the-end");
    B.Succs.push_back(G.BlockOfInsn[Last + 1]);
  }

  return G;
}

} // namespace ebpf
} // namespace rasc
