//===- ebpf/Lower.cpp - eBPF CFG -> analysis inputs -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "ebpf/Lower.h"

#include <array>
#include <cassert>
#include <cstdlib>

namespace rasc {
namespace ebpf {

//===----------------------------------------------------------------------===//
// pdmc lowering
//===----------------------------------------------------------------------===//

/// The property-relevant event of an instruction, or null. The "check"
/// event is direction-insensitive: either branch of "if r0 == 0" counts
/// as having tested the lookup result (the real verifier is
/// path-sensitive here; see DESIGN.md §13 for the deliberate gap).
static const char *eventOf(const Insn &I) {
  if (I.isCall())
    return I.Imm == HelperMapLookup ? "lookup" : "helper";
  if (I.isBranch() && !I.isUncondJump() && !I.srcIsReg() && I.Dst == 0 &&
      I.Imm == 0 &&
      (I.jmpOp() == JmpOp::Jeq || I.jmpOp() == JmpOp::Jne))
    return "check";
  if (I.cls() == InsnClass::Ldx && I.Src == 0)
    return "deref";
  if ((I.cls() == InsnClass::St || I.cls() == InsnClass::Stx) && I.Dst == 0)
    return "deref";
  return nullptr;
}

PdmcLowering lowerToProgram(const Cfg &G, std::string FuncName) {
  PdmcLowering L;
  L.Prog = std::make_unique<Program>();
  Program &P = *L.Prog;
  FuncId F = P.addFunction(std::move(FuncName));
  const DecodedProgram &D = G.Prog;

  // One head Nop per block, then the block's events in instruction
  // order.
  std::vector<StmtId> Tail(G.numBlocks());
  L.BlockHead.resize(G.numBlocks());
  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    const Block &Blk = G.Blocks[B];
    StmtId Head = P.addNop(F, "b" + std::to_string(B));
    L.BlockHead[B] = Head;
    StmtId Cur = Head;
    for (uint32_t I = Blk.FirstInsn, E = Blk.FirstInsn + Blk.NumInsns; I != E;
         ++I) {
      const char *Ev = eventOf(D.Insns[I]);
      if (!Ev)
        continue;
      StmtId S = P.addOp(F, Ev, {},
                         "insn " + std::to_string(I) + ": " +
                             toString(D.Insns[I]));
      P.addEdge(Cur, S);
      Cur = S;
      L.EventInsn.emplace_back(S, I);
    }
    Tail[B] = Cur;
  }

  P.addEdge(P.entry(F), L.BlockHead[0]);
  for (uint32_t B = 0; B != G.numBlocks(); ++B)
    for (uint32_t Succ : G.Blocks[B].Succs)
      P.addEdge(Tail[B], L.BlockHead[Succ]);
  // Exit blocks' tails have no successor; finalize routes them to the
  // function exit.
  P.finalize();
  return L;
}

std::string mapCheckSpecText() {
  return R"spec(# eBPF map-lookup discipline: the pointer bpf_map_lookup_elem returns
# in r0 must be null-checked before it is dereferenced. Events:
#   lookup - call to helper 1 (bpf_map_lookup_elem)
#   check  - conditional "if r0 == 0" / "if r0 != 0" against immediate 0
#   deref  - memory access with r0 as the base register
#   helper - any other helper call (clobbers r0, discarding the lookup)

start state Start :
  | lookup -> Unchecked
  | check -> Start
  | deref -> Start
  | helper -> Start;

state Unchecked :
  | lookup -> Unchecked
  | check -> Start
  | deref -> Error
  | helper -> Start;

accept state Error;
)spec";
}

SpecAutomaton mapCheckSpec() {
  std::string Error;
  std::optional<SpecAutomaton> S = parseSpec(mapCheckSpecText(), &Error);
  assert(S && "map-check spec must parse");
  if (!S)
    std::abort();
  return std::move(*S);
}

//===----------------------------------------------------------------------===//
// dataflow lowering
//===----------------------------------------------------------------------===//

RegEffect regEffect(const Insn &I) {
  auto Bit = [](uint8_t R) { return uint64_t(1) << R; };
  RegEffect E;
  switch (I.cls()) {
  case InsnClass::Alu:
  case InsnClass::Alu64:
    if (I.aluOp() == AluOp::Mov) {
      if (I.srcIsReg())
        E.Use |= Bit(I.Src);
    } else {
      // Neg and every binop read dst; binops in X form also read src.
      E.Use |= Bit(I.Dst);
      if (I.aluOp() != AluOp::Neg && I.srcIsReg())
        E.Use |= Bit(I.Src);
    }
    E.Def |= Bit(I.Dst);
    break;
  case InsnClass::Ld: // LD_IMM64
    E.Def |= Bit(I.Dst);
    break;
  case InsnClass::Ldx:
    E.Use |= Bit(I.Src);
    E.Def |= Bit(I.Dst);
    break;
  case InsnClass::St:
    E.Use |= Bit(I.Dst);
    break;
  case InsnClass::Stx:
    E.Use |= Bit(I.Dst) | Bit(I.Src);
    break;
  case InsnClass::Jmp:
  case InsnClass::Jmp32:
    if (I.isCall()) {
      // Which argument registers a helper reads depends on the helper
      // signature, which we do not model; what every call does is
      // define r0 and clobber the caller-saved r1-r5.
      E.Def |= Bit(0);
      E.Kill |= Bit(1) | Bit(2) | Bit(3) | Bit(4) | Bit(5);
    } else if (I.isExit()) {
      E.Use |= Bit(0); // exit returns r0
    } else if (!I.isUncondJump()) {
      E.Use |= Bit(I.Dst);
      if (I.srcIsReg())
        E.Use |= Bit(I.Src);
    }
    break;
  }
  return E;
}

DataflowLowering lowerToDataflow(const Cfg &G) {
  DataflowLowering L;
  L.Prog = std::make_unique<Program>();
  Program &P = *L.Prog;
  FuncId F = P.addFunction("ebpf");
  const DecodedProgram &D = G.Prog;
  const uint32_t N = D.numInsns();

  L.InsnStmt.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    L.InsnStmt[I] = P.addNop(F, "insn " + std::to_string(I) + ": " +
                                    toString(D.Insns[I]));

  // The BPF calling convention initializes r1 (context pointer) and
  // r10 (frame pointer) before the first instruction.
  StmtId Init = P.addNop(F, "entry: r1 (ctx), r10 (frame) initialized");
  P.addEdge(P.entry(F), Init);
  P.addEdge(Init, L.InsnStmt[0]);

  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    const Block &Blk = G.Blocks[B];
    for (uint32_t I = Blk.FirstInsn; I != Blk.lastInsn(); ++I)
      P.addEdge(L.InsnStmt[I], L.InsnStmt[I + 1]);
    for (uint32_t Succ : Blk.Succs)
      P.addEdge(L.InsnStmt[Blk.lastInsn()],
                L.InsnStmt[G.Blocks[Succ].FirstInsn]);
  }
  P.finalize();

  L.Problem = std::make_unique<BitVectorProblem>(P, NumRegs);
  L.Problem->addTransfer(Init,
                         (uint64_t(1) << 1) | (uint64_t(1) << FrameReg), 0);
  for (uint32_t I = 0; I != N; ++I) {
    RegEffect E = regEffect(D.Insns[I]);
    L.Problem->addTransfer(L.InsnStmt[I], E.Def, E.Kill);
    for (uint8_t R = 0; R != NumRegs; ++R)
      if (((E.Use >> R) & 1) && R != FrameReg)
        L.Reads.push_back({I, R});
  }
  return L;
}

std::vector<UninitRead> uninitReads(const DataflowLowering &L,
                                    const AnnotatedBitVectorAnalysis &A) {
  // The bit vector holds on entry to the reading statement; a read in
  // unreachable code reports as definite (no valid path initializes —
  // or reaches — it).
  std::vector<UninitRead> Out;
  for (const DataflowLowering::Read &R : L.Reads) {
    StmtId S = L.InsnStmt[R.InsnIdx];
    if (!A.mustHold(S, R.Reg))
      Out.push_back({R.InsnIdx, R.Reg, !A.mayHold(S, R.Reg)});
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// flow lowering
//===----------------------------------------------------------------------===//

static FExprId mkLit(FlowProgram &P, long V) {
  FExpr E;
  E.Kind = FExpr::Lit;
  E.LitValue = V;
  return P.addExpr(E);
}

static FExprId mkVar(FlowProgram &P, std::string Name) {
  FExpr E;
  E.Kind = FExpr::Var;
  E.Name = std::move(Name);
  return P.addExpr(E);
}

static FExprId mkProj(FlowProgram &P, FExprId Kid, uint32_t Idx) {
  FExpr E;
  E.Kind = FExpr::Proj;
  E.Kid0 = Kid;
  E.ProjIdx = Idx;
  return P.addExpr(E);
}

static FExprId mkPairOf(FlowProgram &P, FExprId A, FExprId B) {
  FExpr E;
  E.Kind = FExpr::MkPair;
  E.Kid0 = A;
  E.Kid1 = B;
  return P.addExpr(E);
}

static FExprId mkCallTo(FlowProgram &P, std::string Callee, FExprId Arg) {
  FExpr E;
  E.Kind = FExpr::Call;
  E.Name = std::move(Callee);
  E.Kid0 = Arg;
  return P.addExpr(E);
}

/// State = (r0, (r1, (r2, (r3, (r4, r5))))), all int.
static TypeId stateType(FlowProgram &P) {
  TypeId T = P.intType();
  for (unsigned K = 0; K + 1 != FlowTrackedRegs; ++K)
    T = P.pairType(P.intType(), T);
  return T;
}

/// Register \p R's component of a State-typed expression.
static FExprId extractReg(FlowProgram &P, FExprId State, unsigned R) {
  FExprId E = State;
  for (unsigned J = 0; J != R; ++J)
    E = mkProj(P, E, 1);
  if (R + 1 != FlowTrackedRegs)
    E = mkProj(P, E, 0);
  return E;
}

static FExprId packState(FlowProgram &P,
                         const std::array<FExprId, FlowTrackedRegs> &Cur) {
  FExprId Acc = Cur[FlowTrackedRegs - 1];
  for (unsigned K = FlowTrackedRegs - 1; K != 0; --K)
    Acc = mkPairOf(P, Cur[K - 1], Acc);
  return Acc;
}

static std::string blockName(uint32_t B) { return "b" + std::to_string(B); }

FlowLowering lowerToFlowProgram(const Cfg &G) {
  FlowLowering L;
  FlowProgram &P = L.Prog;
  const DecodedProgram &D = G.Prog;
  const TypeId Int = P.intType();
  const TypeId StateTy = stateType(P);
  L.InsnLit.assign(D.numInsns(), ~FExprId(0));
  L.BlockFn.resize(G.numBlocks());

  // Distinct literal values aid debugging only; flow identity is the
  // expression node. 0/1 are the register seeds, 2.. everything else.
  long NextLit = 2;

  for (uint32_t B = 0; B != G.numBlocks(); ++B) {
    const Block &Blk = G.Blocks[B];
    FExprId S = mkVar(P, "s");
    std::array<FExprId, FlowTrackedRegs> Cur;
    for (unsigned R = 0; R != FlowTrackedRegs; ++R)
      Cur[R] = extractReg(P, S, R);

    for (uint32_t I = Blk.FirstInsn, E = Blk.FirstInsn + Blk.NumInsns; I != E;
         ++I) {
      const Insn &In = D.Insns[I];
      switch (In.cls()) {
      case InsnClass::Alu:
      case InsnClass::Alu64:
        if (In.Dst >= FlowTrackedRegs)
          break;
        if (In.aluOp() == AluOp::Mov) {
          if (In.srcIsReg() && In.Src < FlowTrackedRegs)
            Cur[In.Dst] = Cur[In.Src]; // value flow: share the node
          else if (In.srcIsReg())
            Cur[In.Dst] = L.InsnLit[I] = mkLit(P, NextLit++); // r6-r10
          else
            Cur[In.Dst] = L.InsnLit[I] = mkLit(P, In.Imm);
        }
        // Non-mov ALU keeps dst's provenance (taint through
        // arithmetic on dst; the src operand does not taint).
        break;
      case InsnClass::Ld: // LD_IMM64
        if (In.Dst < FlowTrackedRegs)
          Cur[In.Dst] = L.InsnLit[I] = mkLit(P, long(In.Imm64));
        break;
      case InsnClass::Ldx:
        if (In.Dst < FlowTrackedRegs)
          Cur[In.Dst] = L.InsnLit[I] = mkLit(P, NextLit++); // loaded value
        break;
      case InsnClass::St:
      case InsnClass::Stx:
        break; // memory is not tracked
      case InsnClass::Jmp:
      case InsnClass::Jmp32:
        if (In.isCall()) {
          // r0 := helper result; r1-r5 clobbered to unknowns.
          Cur[0] = L.InsnLit[I] = mkLit(P, NextLit++);
          for (unsigned R = 1; R != FlowTrackedRegs; ++R)
            Cur[R] = mkLit(P, NextLit++);
        }
        break; // branches/exit do not change registers
      }
    }

    FExprId Body;
    if (Blk.Succs.empty()) {
      Body = mkCallTo(P, "retv", packState(P, Cur));
    } else if (Blk.Succs.size() == 1) {
      Body = mkCallTo(P, blockName(Blk.Succs[0]), packState(P, Cur));
    } else {
      // Both successor calls must be reachable from the body so both
      // are inferred (the projection's *value* is irrelevant — the
      // flow query observes retv's parameter, not block results).
      FExprId St = packState(P, Cur);
      FExprId C0 = mkCallTo(P, blockName(Blk.Succs[0]), St);
      FExprId C1 = mkCallTo(P, blockName(Blk.Succs[1]), St);
      Body = mkProj(P, mkPairOf(P, C0, C1), 0);
    }
    L.BlockFn[B] = P.addFunction(blockName(B), "s", StateTy, Int, Body);
  }

  // retv: the exit join. Its parameter merges the final state of every
  // return path; ResultExpr is r0 of that join.
  {
    FExprId S = mkVar(P, "s");
    L.ResultExpr = extractReg(P, S, 0);
    L.RetFn = P.addFunction("retv", "s", StateTy, Int, L.ResultExpr);
  }

  // main: seed the register file. r1 = context pointer (CtxLit), the
  // rest zero; r6-r10 are outside the tracked window.
  {
    std::array<FExprId, FlowTrackedRegs> Init;
    Init[0] = mkLit(P, 0);
    Init[1] = L.CtxLit = mkLit(P, 1);
    for (unsigned R = 2; R != FlowTrackedRegs; ++R)
      Init[R] = mkLit(P, 0);
    FExprId Body = mkCallTo(P, blockName(0), packState(P, Init));
    L.MainFn = P.addFunction("main", "z", Int, Int, Body);
  }

  std::string Error;
  bool Ok = P.typecheck(&Error);
  assert(Ok && "eBPF flow lowering must typecheck");
  if (!Ok)
    std::abort();
  return L;
}

} // namespace ebpf
} // namespace rasc
