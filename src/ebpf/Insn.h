//===- ebpf/Insn.h - eBPF instruction representation ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic 64-bit eBPF instruction set, the subset the front-end
/// accepts (DESIGN.md §13): ALU/ALU64 arithmetic, JMP/JMP32 branches,
/// helper call and exit, and MEM-mode loads/stores plus the 16-byte
/// LD_IMM64 wide immediate. Each instruction slot is 8 bytes:
///
///   opcode:8 | dst_reg:4 | src_reg:4 | offset:16 (LE) | imm:32 (LE)
///
/// LD_IMM64 occupies two consecutive slots; the second slot must be a
/// zeroed pseudo instruction carrying the upper 32 immediate bits.
/// The decoded form (Insn) is one entry per *slot index* semantics:
/// a wide instruction is a single Insn with Wide = true, and slot
/// indices (used by jump offsets) are mapped by the decoder.
///
/// Out of scope, rejected with structured diagnostics by the decoder:
/// legacy packet access (ABS/IND modes), atomics, bpf-to-bpf and tail
/// calls, and the byte-swap (END) group. See DESIGN.md §13 for why.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_EBPF_INSN_H
#define RASC_EBPF_INSN_H

#include <cstdint>
#include <string>
#include <vector>

namespace rasc {
namespace ebpf {

/// Instruction class: the low three opcode bits.
enum class InsnClass : uint8_t {
  Ld = 0x00,
  Ldx = 0x01,
  St = 0x02,
  Stx = 0x03,
  Alu = 0x04,
  Jmp = 0x05,
  Jmp32 = 0x06,
  Alu64 = 0x07,
};

/// ALU/ALU64 operation: the high four opcode bits.
enum class AluOp : uint8_t {
  Add = 0x0,
  Sub = 0x1,
  Mul = 0x2,
  Div = 0x3,
  Or = 0x4,
  And = 0x5,
  Lsh = 0x6,
  Rsh = 0x7,
  Neg = 0x8,
  Mod = 0x9,
  Xor = 0xa,
  Mov = 0xb,
  Arsh = 0xc,
  End = 0xd, ///< byte swap — out of scope, decoder rejects
};

/// JMP/JMP32 operation: the high four opcode bits.
enum class JmpOp : uint8_t {
  Ja = 0x0,
  Jeq = 0x1,
  Jgt = 0x2,
  Jge = 0x3,
  Jset = 0x4,
  Jne = 0x5,
  Jsgt = 0x6,
  Jsge = 0x7,
  Call = 0x8,
  Exit = 0x9,
  Jlt = 0xa,
  Jle = 0xb,
  Jslt = 0xc,
  Jsle = 0xd,
};

/// Memory access width: opcode bits 3-4.
enum class MemSize : uint8_t {
  W = 0x00,  ///< 4 bytes
  H = 0x08,  ///< 2 bytes
  B = 0x10,  ///< 1 byte
  Dw = 0x18, ///< 8 bytes
};

/// Memory access mode: opcode bits 5-7.
enum class MemMode : uint8_t {
  Imm = 0x00,    ///< LD_IMM64 only
  Abs = 0x20,    ///< legacy packet access — rejected
  Ind = 0x40,    ///< legacy packet access — rejected
  Mem = 0x60,    ///< register + offset
  Atomic = 0xc0, ///< atomics — rejected
};

/// The source-operand bit of ALU and JMP opcodes: 0 = 32-bit
/// immediate, 1 = source register.
constexpr uint8_t SrcK = 0x00;
constexpr uint8_t SrcX = 0x08;

/// Register file: r0 (return value), r1-r5 (arguments, clobbered by
/// calls), r6-r9 (callee saved), r10 (read-only frame pointer).
constexpr uint8_t NumRegs = 11;
constexpr uint8_t FrameReg = 10;

constexpr size_t SlotBytes = 8;

/// One decoded instruction. Fields mirror the wire layout; Imm is
/// sign-extended from 32 bits except for Wide instructions whose full
/// 64-bit immediate lives in Imm64.
struct Insn {
  uint8_t Opcode = 0;
  uint8_t Dst = 0;
  uint8_t Src = 0;
  int16_t Off = 0;
  int32_t Imm = 0;
  bool Wide = false;    ///< LD_IMM64: occupies two slots
  uint64_t Imm64 = 0;   ///< Wide only: the combined immediate

  InsnClass cls() const { return static_cast<InsnClass>(Opcode & 0x07); }
  AluOp aluOp() const { return static_cast<AluOp>(Opcode >> 4); }
  JmpOp jmpOp() const { return static_cast<JmpOp>(Opcode >> 4); }
  MemSize memSize() const { return static_cast<MemSize>(Opcode & 0x18); }
  MemMode memMode() const { return static_cast<MemMode>(Opcode & 0xe0); }
  /// ALU/JMP: true when the second operand is a register.
  bool srcIsReg() const { return Opcode & SrcX; }

  bool isAlu() const {
    return cls() == InsnClass::Alu || cls() == InsnClass::Alu64;
  }
  bool isJmpClass() const {
    return cls() == InsnClass::Jmp || cls() == InsnClass::Jmp32;
  }
  bool isExit() const {
    return cls() == InsnClass::Jmp && jmpOp() == JmpOp::Exit;
  }
  bool isCall() const {
    return cls() == InsnClass::Jmp && jmpOp() == JmpOp::Call;
  }
  /// An unconditional or conditional jump (not call/exit).
  bool isBranch() const {
    return isJmpClass() && jmpOp() != JmpOp::Call && jmpOp() != JmpOp::Exit;
  }
  bool isUncondJump() const { return isBranch() && jmpOp() == JmpOp::Ja; }
  bool isLoad() const {
    return cls() == InsnClass::Ldx ||
           (cls() == InsnClass::Ld && memMode() == MemMode::Imm);
  }
  bool isStore() const {
    return cls() == InsnClass::St || cls() == InsnClass::Stx;
  }

  /// Slots this instruction occupies (2 for LD_IMM64).
  uint32_t slots() const { return Wide ? 2 : 1; }

  friend bool operator==(const Insn &, const Insn &) = default;
};

/// Builds the opcode byte for an ALU instruction.
constexpr uint8_t aluOpcode(AluOp Op, bool SrcReg, bool Is64 = true) {
  return static_cast<uint8_t>(
      (static_cast<uint8_t>(Op) << 4) | (SrcReg ? SrcX : SrcK) |
      static_cast<uint8_t>(Is64 ? InsnClass::Alu64 : InsnClass::Alu));
}

/// Builds the opcode byte for a JMP instruction.
constexpr uint8_t jmpOpcode(JmpOp Op, bool SrcReg, bool Is32 = false) {
  return static_cast<uint8_t>(
      (static_cast<uint8_t>(Op) << 4) | (SrcReg ? SrcX : SrcK) |
      static_cast<uint8_t>(Is32 ? InsnClass::Jmp32 : InsnClass::Jmp));
}

/// Builds the opcode byte for a MEM-mode load/store.
constexpr uint8_t memOpcode(InsnClass Cls, MemSize Size) {
  return static_cast<uint8_t>(static_cast<uint8_t>(MemMode::Mem) |
                              static_cast<uint8_t>(Size) |
                              static_cast<uint8_t>(Cls));
}

/// The LD_IMM64 opcode (LD class, IMM mode, DW size).
constexpr uint8_t LdImm64Opcode =
    static_cast<uint8_t>(static_cast<uint8_t>(MemMode::Imm) |
                         static_cast<uint8_t>(MemSize::Dw) |
                         static_cast<uint8_t>(InsnClass::Ld));

// Convenience constructors used by the emitter, tests, and benches.

inline Insn mkAlu(AluOp Op, uint8_t Dst, uint8_t Src, bool Is64 = true) {
  Insn I;
  I.Opcode = aluOpcode(Op, /*SrcReg=*/true, Is64);
  I.Dst = Dst;
  I.Src = Src;
  return I;
}

inline Insn mkAluImm(AluOp Op, uint8_t Dst, int32_t Imm, bool Is64 = true) {
  Insn I;
  I.Opcode = aluOpcode(Op, /*SrcReg=*/false, Is64);
  I.Dst = Dst;
  I.Imm = Imm;
  return I;
}

inline Insn mkJmp(JmpOp Op, uint8_t Dst, uint8_t Src, int16_t Off,
                  bool Is32 = false) {
  Insn I;
  I.Opcode = jmpOpcode(Op, /*SrcReg=*/true, Is32);
  I.Dst = Dst;
  I.Src = Src;
  I.Off = Off;
  return I;
}

inline Insn mkJmpImm(JmpOp Op, uint8_t Dst, int32_t Imm, int16_t Off,
                     bool Is32 = false) {
  Insn I;
  I.Opcode = jmpOpcode(Op, /*SrcReg=*/false, Is32);
  I.Dst = Dst;
  I.Imm = Imm;
  I.Off = Off;
  return I;
}

inline Insn mkJa(int16_t Off) { return mkJmpImm(JmpOp::Ja, 0, 0, Off); }

inline Insn mkCall(int32_t HelperId) {
  Insn I;
  I.Opcode = jmpOpcode(JmpOp::Call, /*SrcReg=*/false);
  I.Imm = HelperId;
  return I;
}

inline Insn mkExit() {
  Insn I;
  I.Opcode = jmpOpcode(JmpOp::Exit, /*SrcReg=*/false);
  return I;
}

inline Insn mkLoad(MemSize Size, uint8_t Dst, uint8_t Base, int16_t Off) {
  Insn I;
  I.Opcode = memOpcode(InsnClass::Ldx, Size);
  I.Dst = Dst;
  I.Src = Base;
  I.Off = Off;
  return I;
}

inline Insn mkStoreReg(MemSize Size, uint8_t Base, uint8_t Src, int16_t Off) {
  Insn I;
  I.Opcode = memOpcode(InsnClass::Stx, Size);
  I.Dst = Base;
  I.Src = Src;
  I.Off = Off;
  return I;
}

inline Insn mkStoreImm(MemSize Size, uint8_t Base, int32_t Imm, int16_t Off) {
  Insn I;
  I.Opcode = memOpcode(InsnClass::St, Size);
  I.Dst = Base;
  I.Imm = Imm;
  I.Off = Off;
  return I;
}

inline Insn mkLdImm64(uint8_t Dst, uint64_t Imm) {
  Insn I;
  I.Opcode = LdImm64Opcode;
  I.Dst = Dst;
  I.Wide = true;
  I.Imm64 = Imm;
  I.Imm = static_cast<int32_t>(Imm & 0xffffffffu);
  return I;
}

/// Appends \p I's wire bytes (8 or 16) to \p Out; the exact inverse
/// of the decoder on accepted programs (bit-identical round trip,
/// property tested).
void encode(const Insn &I, std::vector<uint8_t> &Out);

/// Encodes a whole instruction sequence.
std::vector<uint8_t> encode(const std::vector<Insn> &Prog);

/// One-line human-readable disassembly ("r0 += r1", "if r0 == 0 goto
/// +3", ...). Used by the golden-file tests and rasctool.
std::string toString(const Insn &I);

} // namespace ebpf
} // namespace rasc

#endif // RASC_EBPF_INSN_H
