//===- ebpf/Lower.h - eBPF CFG -> analysis inputs ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a bytecode CFG into the native inputs of the three
/// applications (DESIGN.md §13), so the entire existing stack —
/// constraint generation, the parallel sharded closure, incremental
/// retract, proof logging, rascd, BatchSolver — runs on real programs
/// unchanged:
///
///   * pdmc: a Program whose Op statements are the property-relevant
///     events of each instruction (helper calls, null-checks of r0,
///     dereferences through r0), checked against typestate
///     specifications such as mapCheckSpec() — the kernel verifier's
///     "null-check the map lookup before dereferencing" discipline as
///     a temporal safety property.
///
///   * dataflow: the same CFG with one statement per instruction and
///     the register file as the bit vector — bit r is "register r has
///     been written". Definitions gen, helper calls clobber (kill)
///     the caller-saved argument registers r1-r5 and gen r0; a read
///     of r with !mustHold is a (may-)read-before-init, with
///     !mayHold a definite one.
///
///   * flow: a FlowProgram encoding register label flow — the
///     register file r0..r5 as a nested pair tuple threaded through
///     one function per basic block, CFG edges as call sites
///     (parameter joins are the merge points), immediates and loads
///     as distinguished literals. Queries like "does the context
///     pointer (r1 at entry) flow to the return value (r0 at exit)"
///     become FlowAnalysis::flowsPN on the distinguished nodes.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_EBPF_LOWER_H
#define RASC_EBPF_LOWER_H

#include "dataflow/BitVector.h"
#include "ebpf/Cfg.h"
#include "flow/Lang.h"
#include "pdmc/Program.h"
#include "spec/SpecParser.h"

#include <memory>
#include <vector>

namespace rasc {
namespace ebpf {

/// The helper id of bpf_map_lookup_elem, the call the map-check
/// typestate property tracks.
constexpr int32_t HelperMapLookup = 1;

//===----------------------------------------------------------------------===//
// pdmc lowering
//===----------------------------------------------------------------------===//

/// A bytecode-derived typestate-checking program: one pdmc function,
/// one Op statement per property-relevant instruction.
struct PdmcLowering {
  std::unique_ptr<Program> Prog;
  /// Per block: its head statement.
  std::vector<StmtId> BlockHead;
  /// Op statement -> the instruction it came from (for reporting
  /// violations as byte offsets).
  std::vector<std::pair<StmtId, uint32_t>> EventInsn;

  /// The instruction behind an Op statement, or ~0u.
  uint32_t insnOfStmt(StmtId S) const {
    for (const auto &[St, Insn] : EventInsn)
      if (St == S)
        return Insn;
    return ~0u;
  }
};

/// Lowers \p G to a Program over the event alphabet
/// {lookup, check, deref, helper}.
PdmcLowering lowerToProgram(const Cfg &G, std::string FuncName = "ebpf");

/// The map-lookup null-check discipline as a Section 8 specification
/// (source text, and compiled — asserts on parse failure).
std::string mapCheckSpecText();
SpecAutomaton mapCheckSpec();

//===----------------------------------------------------------------------===//
// dataflow lowering
//===----------------------------------------------------------------------===//

/// Register effect of one instruction: registers read, written
/// (gen'd), and clobbered (killed — helper calls trash r1-r5).
struct RegEffect {
  uint64_t Use = 0;
  uint64_t Def = 0;
  uint64_t Kill = 0;
};
RegEffect regEffect(const Insn &I);

/// A bytecode-derived gen/kill problem: bit r of the vector is
/// "register r has been written on this path".
struct DataflowLowering {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<BitVectorProblem> Problem;
  /// Per instruction: its statement.
  std::vector<StmtId> InsnStmt;
  /// Every register read, in instruction order.
  struct Read {
    uint32_t InsnIdx;
    uint8_t Reg;
  };
  std::vector<Read> Reads;
};

DataflowLowering lowerToDataflow(const Cfg &G);

/// One read of a register that may (or must) be uninitialized.
struct UninitRead {
  uint32_t InsnIdx;
  uint8_t Reg;
  /// true: no path initializes it (read of garbage on every path);
  /// false: some path reaches the read without initializing it.
  bool Definite;

  friend bool operator==(const UninitRead &, const UninitRead &) = default;
};

/// Queries a solved analysis of \p L.Problem for reads-before-init.
std::vector<UninitRead> uninitReads(const DataflowLowering &L,
                                    const AnnotatedBitVectorAnalysis &A);

//===----------------------------------------------------------------------===//
// flow lowering
//===----------------------------------------------------------------------===//

/// Registers the flow encoding tracks (r0..r5: return value plus the
/// helper argument registers).
constexpr unsigned FlowTrackedRegs = 6;

/// A bytecode-derived label-flow program. Use FlowMode::Primal: the
/// pair automaton is bounded by the State type; the dual call-string
/// automaton would enumerate acyclic CFG paths.
///
/// Every exit block passes its final state to a distinguished join
/// function "retv", whose parameter therefore merges the exit states
/// of *all* return paths (a pair-projection "join" in a block body
/// would instead select one component under the analysis's precise
/// pair matching). The canonical query is
/// flowsPN(CtxLit, ResultExpr) — PN because the observed value sits
/// under the unreturned CFG-edge calls; the pair-bracket word itself
/// is fully matched.
struct FlowLowering {
  FlowProgram Prog = FlowProgram::empty();
  /// The distinguished literal seeding r1 (the context pointer).
  FExprId CtxLit = 0;
  /// The r0 extraction inside "retv" — r0 at program exit, joined
  /// over every return path.
  FExprId ResultExpr = 0;
  FFuncId MainFn = 0;
  /// The exit-join function "retv".
  FFuncId RetFn = 0;
  /// Per block: its function ("b<i>", State -> int).
  std::vector<FFuncId> BlockFn;
  /// Per instruction: the literal created for its immediate or loaded
  /// value (flow-query source), or ~0u.
  std::vector<FExprId> InsnLit;
};

FlowLowering lowerToFlowProgram(const Cfg &G);

} // namespace ebpf
} // namespace rasc

#endif // RASC_EBPF_LOWER_H
