//===- ebpf/Cfg.h - Basic blocks over decoded eBPF --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a validated instruction stream into basic blocks and builds
/// the control flow graph: leaders are instruction 0, every branch
/// target, and every instruction following a branch or exit; edges
/// are fall-throughs, taken branches, or absent (exit). Because the
/// decoder already range-checked every jump, CFG construction cannot
/// fail — the invariants the property tests pin down are:
///
///   * every instruction belongs to exactly one block,
///   * every edge targets a block leader,
///   * a block's terminator is its only branch/exit instruction.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_EBPF_CFG_H
#define RASC_EBPF_CFG_H

#include "ebpf/Decode.h"

#include <vector>

namespace rasc {
namespace ebpf {

/// One basic block: a contiguous instruction range plus successor
/// block ids. Succs ordering is deterministic: fall-through first,
/// then the taken branch target.
struct Block {
  uint32_t FirstInsn = 0;
  uint32_t NumInsns = 0;
  std::vector<uint32_t> Succs;

  uint32_t lastInsn() const { return FirstInsn + NumInsns - 1; }
};

/// The control flow graph; owns the decoded program. Block 0 is the
/// entry block (instruction 0 is always a leader).
struct Cfg {
  DecodedProgram Prog;
  std::vector<Block> Blocks;
  /// Per instruction: the owning block.
  std::vector<uint32_t> BlockOfInsn;

  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }
  uint32_t numEdges() const {
    uint32_t N = 0;
    for (const Block &B : Blocks)
      N += static_cast<uint32_t>(B.Succs.size());
    return N;
  }
};

/// Builds the CFG of a decoded (hence fully validated) program.
Cfg buildCfg(DecodedProgram Prog);

} // namespace ebpf
} // namespace rasc

#endif // RASC_EBPF_CFG_H
