//===- ebpf/Decode.h - eBPF bytecode decoder --------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decodes a raw eBPF instruction stream into validated instructions.
/// The decoder is the trust boundary for bytecode input: malformed
/// bytes — truncated streams, unknown opcodes, out-of-range
/// registers, jumps outside the program or into the middle of a wide
/// instruction, writes to the read-only frame register, control
/// falling off the end — become structured rasc::Diags carrying the
/// byte offset (and the 1-based slot index in SourceLoc::Line), never
/// UB or a crash (fuzz tested under ASan/UBSan).
///
/// Accepted programs satisfy, by construction: every jump targets a
/// valid instruction boundary, the last instruction cannot fall
/// through, and encode(decode(bytes)) == bytes (property tested).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_EBPF_DECODE_H
#define RASC_EBPF_DECODE_H

#include "ebpf/Insn.h"
#include "support/Diag.h"

#include <span>
#include <vector>

namespace rasc {
namespace ebpf {

/// A validated instruction stream with the slot <-> instruction maps
/// the CFG builder needs (jump offsets are in 8-byte slot units;
/// LD_IMM64 occupies two slots).
struct DecodedProgram {
  std::vector<Insn> Insns;
  /// Per instruction: its first slot index.
  std::vector<uint32_t> SlotOf;
  /// Per slot: the owning instruction (both slots of a wide
  /// instruction map to it).
  std::vector<uint32_t> InsnAtSlot;

  uint32_t numInsns() const { return static_cast<uint32_t>(Insns.size()); }
  uint32_t numSlots() const {
    return static_cast<uint32_t>(InsnAtSlot.size());
  }

  /// The instruction a branch at \p InsnIdx jumps to (valid for
  /// accepted programs: the decoder range-checks every target).
  uint32_t branchTargetInsn(uint32_t InsnIdx) const {
    const Insn &I = Insns[InsnIdx];
    uint32_t Slot = static_cast<uint32_t>(
        static_cast<int64_t>(SlotOf[InsnIdx]) + 1 + I.Off);
    return InsnAtSlot[Slot];
  }

  /// Byte offset of an instruction (for diagnostics and reports).
  uint32_t byteOffset(uint32_t InsnIdx) const {
    return SlotOf[InsnIdx] * static_cast<uint32_t>(SlotBytes);
  }
};

/// Decodes and validates \p Bytes. On failure the Diag's message
/// names the violation and the byte offset; SourceLoc::Line carries
/// the 1-based slot index (0 = whole-program errors).
Expected<DecodedProgram> decode(std::span<const uint8_t> Bytes);

/// Renders a whole program as one instruction per line, each prefixed
/// with its slot index — the golden-file disassembly format.
std::string dump(const DecodedProgram &P);

} // namespace ebpf
} // namespace rasc

#endif // RASC_EBPF_DECODE_H
