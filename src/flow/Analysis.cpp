//===- flow/Analysis.cpp - Type-based flow analysis -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "flow/Analysis.h"

#include "support/Hashing.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

using namespace rasc;

//===----------------------------------------------------------------------===//
// Pair-matching automaton (Figure 10)
//===----------------------------------------------------------------------===//

namespace {

/// A bracket symbol [i_tau (Open) or ]i_tau (Close).
struct Bracket {
  uint32_t Index;
  TypeId CompTy;

  friend bool operator<(const Bracket &A, const Bracket &B) {
    return A.Index != B.Index ? A.Index < B.Index : A.CompTy < B.CompTy;
  }
  friend bool operator==(const Bracket &A, const Bracket &B) {
    return A.Index == B.Index && A.CompTy == B.CompTy;
  }
};

std::string bracketName(const FlowProgram &P, bool Open,
                        const Bracket &B) {
  std::ostringstream OS;
  OS << (Open ? "open" : "close") << (B.Index + 1) << "_"
     << P.typeName(B.CompTy);
  std::string N = OS.str();
  // Symbol names are identifiers; flatten the type syntax.
  for (char &C : N) {
    if (C == '(' || C == ')' || C == ' ')
      C = '_';
    if (C == ',')
      C = 'x';
  }
  return N;
}

} // namespace

Dfa rasc::buildPairAutomaton(const FlowProgram &P) {
  // Bracket symbols: one open/close pair per (component index,
  // component type) of any pair type in the program.
  std::vector<Bracket> Brackets;
  for (TypeId T = 0; T != P.numTypes(); ++T) {
    const FType &Ty = P.type(T);
    if (Ty.Kind != FType::Pair)
      continue;
    for (uint32_t I = 0; I != 2; ++I) {
      Bracket B{I, I == 0 ? Ty.A : Ty.B};
      if (std::find(Brackets.begin(), Brackets.end(), B) == Brackets.end())
        Brackets.push_back(B);
    }
  }
  std::sort(Brackets.begin(), Brackets.end());

  DfaBuilder Builder;
  std::vector<SymbolId> OpenSym(Brackets.size()), CloseSym(Brackets.size());
  for (size_t I = 0; I != Brackets.size(); ++I) {
    OpenSym[I] = Builder.addSymbol(bracketName(P, true, Brackets[I]));
    CloseSym[I] = Builder.addSymbol(bracketName(P, false, Brackets[I]));
  }

  // States: descent chains of brackets. A new frame (j, tau') may
  // follow (i, tau) iff tau' is a pair whose component i is tau: the
  // object pushed at the new frame is the pair built at the previous
  // frame (see Analysis.h). Chains strictly grow the component type,
  // so the construction terminates — the paper's "bounded by the size
  // of the largest type".
  std::map<std::vector<Bracket>, StateId> States;
  std::deque<std::vector<Bracket>> WorkList;
  auto internState = [&](std::vector<Bracket> Chain) -> StateId {
    auto It = States.find(Chain);
    if (It != States.end())
      return It->second;
    StateId S = Builder.addState();
    States.emplace(Chain, S);
    WorkList.push_back(std::move(Chain));
    return S;
  };

  StateId Root = internState({});
  Builder.setStart(Root);
  Builder.setAccepting(Root);

  while (!WorkList.empty()) {
    std::vector<Bracket> Chain = std::move(WorkList.front());
    WorkList.pop_front();
    StateId From = States[Chain];
    for (size_t I = 0; I != Brackets.size(); ++I) {
      const Bracket &B = Brackets[I];
      bool Allowed = true;
      if (!Chain.empty()) {
        const Bracket &Last = Chain.back();
        const FType &Ty = P.type(B.CompTy);
        Allowed = Ty.Kind == FType::Pair &&
                  (Last.Index == 0 ? Ty.A : Ty.B) == Last.CompTy;
      }
      if (Allowed) {
        std::vector<Bracket> Next = Chain;
        Next.push_back(B);
        Builder.addTransition(From, OpenSym[I], internState(Next));
      }
      if (!Chain.empty() && Chain.back() == B) {
        std::vector<Bracket> Popped(Chain.begin(), Chain.end() - 1);
        Builder.addTransition(From, CloseSym[I], internState(Popped));
      }
    }
  }
  return Builder.build();
}

//===----------------------------------------------------------------------===//
// Call-string automaton (Section 7.6)
//===----------------------------------------------------------------------===//

Dfa rasc::buildCallAutomaton(const FlowProgram &P,
                             std::vector<bool> *RecursiveSiteOut) {
  uint32_t NumFuncs = static_cast<uint32_t>(P.functions().size());

  // Call graph and call sites: (site, caller, callee).
  struct Site {
    uint32_t Id;
    FFuncId Caller;
    FFuncId Callee;
  };
  std::vector<Site> Sites;
  std::vector<std::vector<FFuncId>> Adj(NumFuncs);
  {
    // Owning function of each expression: walk bodies.
    std::vector<FFuncId> Owner(P.numExprs(), 0);
    for (FFuncId F = 0; F != NumFuncs; ++F) {
      std::deque<FExprId> Work{P.functions()[F].Body};
      while (!Work.empty()) {
        FExprId E = Work.front();
        Work.pop_front();
        Owner[E] = F;
        const FExpr &Ex = P.expr(E);
        switch (Ex.Kind) {
        case FExpr::MkPair:
          Work.push_back(Ex.Kid0);
          Work.push_back(Ex.Kid1);
          break;
        case FExpr::Proj:
        case FExpr::Call:
          Work.push_back(Ex.Kid0);
          break;
        default:
          break;
        }
        if (Ex.Kind == FExpr::Call) {
          Sites.push_back({Ex.CallSite, F, Ex.Callee});
          Adj[F].push_back(Ex.Callee);
        }
      }
    }
  }

  // Call-graph SCCs (simple iterative Tarjan).
  std::vector<uint32_t> Scc(NumFuncs, ~0u);
  {
    std::vector<uint32_t> Index(NumFuncs, ~0u), Low(NumFuncs, 0);
    std::vector<bool> OnStack(NumFuncs, false);
    std::vector<uint32_t> Stack;
    uint32_t Next = 0, NumSccs = 0;
    struct Frame {
      uint32_t V;
      size_t Child;
    };
    std::vector<Frame> Frames;
    for (uint32_t Root = 0; Root != NumFuncs; ++Root) {
      if (Index[Root] != ~0u)
        continue;
      Frames.push_back({Root, 0});
      while (!Frames.empty()) {
        Frame &F = Frames.back();
        uint32_t V = F.V;
        if (F.Child == 0) {
          Index[V] = Low[V] = Next++;
          Stack.push_back(V);
          OnStack[V] = true;
        }
        if (F.Child < Adj[V].size()) {
          uint32_t W = Adj[V][F.Child++];
          if (Index[W] == ~0u)
            Frames.push_back({W, 0});
          else if (OnStack[W])
            Low[V] = std::min(Low[V], Index[W]);
          continue;
        }
        if (Low[V] == Index[V]) {
          uint32_t Id = NumSccs++;
          while (true) {
            uint32_t W = Stack.back();
            Stack.pop_back();
            OnStack[W] = false;
            Scc[W] = Id;
            if (W == V)
              break;
          }
        }
        Frames.pop_back();
        if (!Frames.empty())
          Low[Frames.back().V] = std::min(Low[Frames.back().V], Low[V]);
      }
    }
  }

  // A site is "recursive" (gets the empty annotation, i.e. the
  // monomorphic approximation) if it stays within one SCC.
  std::vector<bool> Recursive(P.numCallSites(), false);
  for (const Site &S : Sites)
    Recursive[S.Id] = Scc[S.Caller] == Scc[S.Callee];
  if (RecursiveSiteOut)
    *RecursiveSiteOut = Recursive;

  DfaBuilder Builder;
  std::vector<SymbolId> OpenSym(P.numCallSites(), InvalidSymbol);
  std::vector<SymbolId> CloseSym(P.numCallSites(), InvalidSymbol);
  for (const Site &S : Sites) {
    if (Recursive[S.Id])
      continue;
    OpenSym[S.Id] = Builder.addSymbol("call" + std::to_string(S.Id));
    CloseSym[S.Id] = Builder.addSymbol("ret" + std::to_string(S.Id));
  }

  // States: chains of non-recursive sites where each next site lives
  // in the previous site's callee. Cross-SCC edges strictly descend
  // the condensation, so chains are finite.
  std::map<std::vector<uint32_t>, StateId> States;
  std::deque<std::vector<uint32_t>> WorkList;
  auto internState = [&](std::vector<uint32_t> Chain) -> StateId {
    auto It = States.find(Chain);
    if (It != States.end())
      return It->second;
    StateId S = Builder.addState();
    States.emplace(Chain, S);
    WorkList.push_back(std::move(Chain));
    return S;
  };
  StateId Root = internState({});
  Builder.setStart(Root);
  Builder.setAccepting(Root);

  auto siteById = [&](uint32_t Id) -> const Site & {
    for (const Site &S : Sites)
      if (S.Id == Id)
        return S;
    assert(false && "unknown call site");
    return Sites.front();
  };

  while (!WorkList.empty()) {
    std::vector<uint32_t> Chain = std::move(WorkList.front());
    WorkList.pop_front();
    StateId From = States[Chain];
    for (const Site &S : Sites) {
      if (Recursive[S.Id])
        continue;
      bool Allowed =
          Chain.empty() || siteById(Chain.back()).Callee == S.Caller;
      if (Allowed) {
        std::vector<uint32_t> Next = Chain;
        Next.push_back(S.Id);
        Builder.addTransition(From, OpenSym[S.Id], internState(Next));
      }
      if (!Chain.empty() && Chain.back() == S.Id) {
        std::vector<uint32_t> Popped(Chain.begin(), Chain.end() - 1);
        Builder.addTransition(From, CloseSym[S.Id], internState(Popped));
      }
    }
  }
  return Builder.build();
}

//===----------------------------------------------------------------------===//
// FlowAnalysis
//===----------------------------------------------------------------------===//

FlowAnalysis::FlowAnalysis(const FlowProgram &P, FlowMode Mode)
    : P(P), Mode(Mode) {
  Dom = std::make_unique<MonoidDomain>(
      Mode == FlowMode::Primal ? buildPairAutomaton(P)
                               : buildCallAutomaton(P, &RecursiveSite));
  CS = std::make_unique<ConstraintSystem>(*Dom);

  if (Mode == FlowMode::Primal) {
    CallCons.resize(P.numCallSites());
    for (uint32_t I = 0; I != P.numCallSites(); ++I)
      CallCons[I] = CS->addConstructor("o" + std::to_string(I), 1);
  } else {
    PairCons = CS->addConstructor("pair", 2);
  }

  // Signatures first: recursion and forward calls need them.
  std::vector<LType> ParamLTs, RetLTs;
  for (const FFunc &F : P.functions()) {
    ParamLTs.push_back(spread(F.ParamTy));
    RetLTs.push_back(spread(F.RetTy));
    ParamLabels.push_back(ParamLTs.back().L);
    RetLabels.push_back(RetLTs.back().L);
  }

  for (FFuncId F = 0; F != P.functions().size(); ++F) {
    const FFunc &Fn = P.functions()[F];
    InferCache.clear(); // Var nodes mean this function's parameter
    LType Body = Mode == FlowMode::Primal
                     ? inferPrimal(Fn, ParamLTs[F], Fn.Body)
                     : inferDual(Fn, ParamLTs[F], Fn.Body);
    // (Def) + (Sub): the body's result flows to the declared return
    // type, top-level only (non-structural subtyping step).
    CS->add(CS->var(Body.L), CS->var(RetLTs[F].L));
  }

  // Seed a source constant at every literal up front; flow queries
  // (Section 7.3) and the alias queries of Section 7.5 (which compare
  // least-solution term sets) both need them. Literal nodes never
  // reached from a function body carry no label (programmatic
  // builders — the eBPF front-end overwriting a register slot —
  // orphan nodes in the arena); a dead value needs no source.
  for (FExprId Lit : P.literals())
    if (ExprLabel.count(Lit))
      sourceConstant(Lit);
}

FlowAnalysis::LType FlowAnalysis::spread(TypeId T) {
  LType L;
  L.Ty = T;
  L.L = CS->freshVar();
  const FType &Ty = P.type(T);
  if (Ty.Kind == FType::Pair) {
    L.Kids.push_back(spread(Ty.A));
    L.Kids.push_back(spread(Ty.B));
  }
  return L;
}

AnnId FlowAnalysis::bracketAnn(bool Open, uint32_t Index, TypeId CompTy) {
  Bracket B{Index, CompTy};
  return Dom->symbolAnn(bracketName(P, Open, B));
}

AnnId FlowAnalysis::callAnn(bool Open, uint32_t CallSite) {
  std::string Name =
      std::string(Open ? "call" : "ret") + std::to_string(CallSite);
  return Dom->symbolAnn(Name);
}

FlowAnalysis::LType FlowAnalysis::inferPrimal(const FFunc &F,
                                              const LType &ParamLT,
                                              FExprId EId) {
  // Shared sub-DAGs (programmatic builders) are inferred exactly
  // once, so every use sees the same label and constraint set.
  if (auto It = InferCache.find(EId); It != InferCache.end())
    return It->second;
  const FExpr &E = P.expr(EId);
  LType Result{};
  switch (E.Kind) {
  case FExpr::Var:
    Result = ParamLT;
    break;
  case FExpr::Lit:
    Result = spread(P.intType());
    break;
  case FExpr::MkPair: {
    LType A = inferPrimal(F, ParamLT, E.Kid0);
    LType B = inferPrimal(F, ParamLT, E.Kid1);
    Result.Ty = E.Type;
    Result.L = CS->freshVar();
    // (Pair WL): components flow into the pair label under open
    // brackets indexed by (position, component type).
    CS->add(CS->var(A.L), CS->var(Result.L),
            bracketAnn(true, 0, P.expr(E.Kid0).Type));
    CS->add(CS->var(B.L), CS->var(Result.L),
            bracketAnn(true, 1, P.expr(E.Kid1).Type));
    Result.Kids = {std::move(A), std::move(B)};
    break;
  }
  case FExpr::Proj: {
    LType Operand = inferPrimal(F, ParamLT, E.Kid0);
    Result = spread(E.Type);
    CS->add(CS->var(Operand.L), CS->var(Result.L),
            bracketAnn(false, E.ProjIdx, E.Type));
    break;
  }
  case FExpr::Call: {
    LType Arg = inferPrimal(F, ParamLT, E.Kid0);
    // (Inst)/(Neg): the actual argument is wrapped in the call-site
    // constructor and flows to the parameter.
    CS->add(CS->cons(CallCons[E.CallSite], {Arg.L}),
            CS->var(ParamLabels[E.Callee]));
    // (Inst)/(Pos): the result is the projection of the return.
    Result = spread(E.Type);
    CS->add(CS->proj(CallCons[E.CallSite], 0, RetLabels[E.Callee]),
            CS->var(Result.L));
    break;
  }
  }
  ExprLabel[EId] = Result.L;
  InferCache.emplace(EId, Result);
  return Result;
}

FlowAnalysis::LType FlowAnalysis::inferDual(const FFunc &F,
                                            const LType &ParamLT,
                                            FExprId EId) {
  if (auto It = InferCache.find(EId); It != InferCache.end())
    return It->second;
  const FExpr &E = P.expr(EId);
  LType Result{};
  switch (E.Kind) {
  case FExpr::Var:
    Result = ParamLT;
    break;
  case FExpr::Lit:
    Result = spread(P.intType());
    break;
  case FExpr::MkPair: {
    LType A = inferDual(F, ParamLT, E.Kid0);
    LType B = inferDual(F, ParamLT, E.Kid1);
    Result.Ty = E.Type;
    Result.L = CS->freshVar();
    // Section 7.6: a real binary constructor models the pair.
    CS->add(CS->cons(PairCons, {A.L, B.L}), CS->var(Result.L));
    Result.Kids = {std::move(A), std::move(B)};
    break;
  }
  case FExpr::Proj: {
    LType Operand = inferDual(F, ParamLT, E.Kid0);
    Result = spread(E.Type);
    CS->add(CS->proj(PairCons, E.ProjIdx, Operand.L),
            CS->var(Result.L));
    break;
  }
  case FExpr::Call: {
    LType Arg = inferDual(F, ParamLT, E.Kid0);
    Result = spread(E.Type);
    if (RecursiveSite[E.CallSite]) {
      // Monomorphic approximation inside call-graph cycles.
      CS->add(CS->var(Arg.L), CS->var(ParamLabels[E.Callee]));
      CS->add(CS->var(RetLabels[E.Callee]), CS->var(Result.L));
    } else {
      CS->add(CS->var(Arg.L), CS->var(ParamLabels[E.Callee]),
              callAnn(true, E.CallSite));
      CS->add(CS->var(RetLabels[E.Callee]), CS->var(Result.L),
              callAnn(false, E.CallSite));
    }
    break;
  }
  }
  ExprLabel[EId] = Result.L;
  InferCache.emplace(EId, Result);
  return Result;
}

ConsId FlowAnalysis::sourceConstant(FExprId From) {
  auto It = SourceCons.find(From);
  if (It != SourceCons.end())
    return It->second;
  ConsId C = CS->addConstant("src@" + std::to_string(From));
  CS->add(CS->cons(C), CS->var(labelOf(From)));
  SourceCons.emplace(From, C);
  Solved = false;
  return C;
}

void FlowAnalysis::prepare(SolverOptions Opts) {
  RASC_TRACE_SCOPE("flow.prepare");
  if (!Solver)
    Solver = std::make_unique<BidirectionalSolver>(*CS, Opts);
}

void FlowAnalysis::ensureSolved() {
  prepare();
  if (!Solved) {
    RASC_TRACE_SCOPE("flow.solve");
    Solver->solve();
    Solved = true;
  }
}

std::vector<BatchSolver::Result>
FlowAnalysis::solveAll(std::span<FlowAnalysis *const> Analyses,
                       const BatchSolver::Options &BatchOpts,
                       SolverStats *MergedStats) {
  std::vector<BidirectionalSolver *> Solvers;
  Solvers.reserve(Analyses.size());
  for (FlowAnalysis *A : Analyses) {
    A->prepare();
    Solvers.push_back(A->Solver.get());
  }
  BatchSolver Batch(BatchOpts);
  std::vector<BatchSolver::Result> Results = Batch.solveAll(Solvers);
  // An interrupted analysis stays "unsolved" so its next query resumes
  // the solve to completion; a solved one answers queries directly.
  for (size_t I = 0; I != Analyses.size(); ++I)
    Analyses[I]->Solved =
        !BidirectionalSolver::isInterrupted(Analyses[I]->Solver->status());
  if (MergedStats)
    *MergedStats = Batch.mergedStats();
  return Results;
}

const BidirectionalSolver &FlowAnalysis::solver() {
  ensureSolved();
  return *Solver;
}

bool FlowAnalysis::flows(FExprId From, FExprId To) {
  // An expression outside every function body was never inferred and
  // has no label: its value exists nowhere, so nothing flows.
  if (!ExprLabel.count(From) || !ExprLabel.count(To))
    return false;
  ConsId C = sourceConstant(From);
  ensureSolved();
  return Solver->entailsConstant(C, labelOf(To));
}

bool FlowAnalysis::flowsPN(FExprId From, FExprId To) {
  if (!ExprLabel.count(From) || !ExprLabel.count(To))
    return false;
  ConsId C = sourceConstant(From);
  ensureSolved();
  AtomReachability AR =
      Solver->atomReachability(C, /*AllowUnmatchedProjections=*/true);
  for (AnnId F : AR.annotations(labelOf(To)))
    if (Dom->isAccepting(F))
      return true;
  return false;
}

bool FlowAnalysis::mayAlias(VarId A, VarId B) {
  ensureSolved();
  return Solver->solutionsIntersect(A, B);
}
