//===- flow/Analysis.h - Type-based flow analysis ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two label-flow analyses of paper Section 7, both context
/// sensitive and field sensitive, built on regularly annotated set
/// constraints:
///
///   * Primal (Sections 7.2-7.4): function call/return matching is
///     modelled *precisely* with terms (o_i constructors and
///     projections, polymorphic recursion via [15]); type
///     constructor/destructor matching is reduced to a *regular*
///     language of bracket annotations [i_tau / ]i_tau whose automaton
///     (Figure 10) is generated from the program's types, bounded by
///     the largest type.
///
///   * Dual (Section 7.6): the roles swap. Pairs are modelled
///     precisely with a binary "pair" constructor and projections;
///     call/return paths become bracket annotations [i / ]i per call
///     site, with call sites inside call-graph cycles approximated by
///     the empty annotation (monomorphic recursion).
///
/// Both analyses answer flow queries between expression labels. On
/// recursion-free programs they compute the same matched-flow relation
/// (differentially tested); with recursion each is precise on its own
/// context-free dimension.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_FLOW_ANALYSIS_H
#define RASC_FLOW_ANALYSIS_H

#include "core/BatchSolver.h"
#include "core/Domains.h"
#include "core/Solver.h"
#include "flow/Lang.h"

#include <map>
#include <memory>
#include <span>

namespace rasc {

/// Which analysis formulation to run.
enum class FlowMode {
  Primal, ///< terms for calls, annotations for pairs (Section 7.2)
  Dual,   ///< pair constructors, annotations for calls (Section 7.6)
};

/// Builds the Figure 10 pair-matching automaton for a set of pair
/// types: states are descent chains into the program's types, symbols
/// are "[i_tau" / "]i_tau" per (component index, component type),
/// acceptance at the empty chain (a fully cancelled bracket string).
/// Exposed for tests and benches.
Dfa buildPairAutomaton(const FlowProgram &P);

/// Builds the call-string automaton for the dual analysis: symbols
/// "[i" / "]i" per non-recursive call site, states are acyclic call
/// chains; call sites within call-graph SCCs are excluded (they get
/// the empty annotation).
Dfa buildCallAutomaton(const FlowProgram &P,
                       std::vector<bool> *RecursiveSite = nullptr);

/// One run of either analysis over a program.
class FlowAnalysis {
public:
  FlowAnalysis(const FlowProgram &P, FlowMode Mode);

  /// Matched flow (Section 7.3): does the value of expression \p From
  /// flow to the *top level* of expression \p To along a path whose
  /// call/returns and constructor/destructor uses all cancel?
  bool flows(FExprId From, FExprId To);

  /// PN flow: also counts values that sit under unreturned calls
  /// (primal) — e.g. a caller's argument observed inside the callee.
  /// Only meaningful for the primal analysis.
  bool flowsPN(FExprId From, FExprId To);

  /// The label variable of an expression's top-level type.
  VarId labelOf(FExprId E) const { return ExprLabel.at(E); }

  /// The top-level label of a function's parameter / result.
  VarId paramLabel(FFuncId F) const { return ParamLabels[F]; }
  VarId resultLabel(FFuncId F) const { return RetLabels[F]; }

  /// Stack-aware alias query (Section 7.5): do the least solutions of
  /// the two labels share a term? Only meaningful for analyses whose
  /// solutions are term sets (the dual analysis and primal call
  /// terms).
  bool mayAlias(VarId A, VarId B);

  const ConstraintSystem &system() const { return *CS; }
  const BidirectionalSolver &solver();
  const MonoidDomain &domain() const { return *Dom; }

  /// Splits the lazy solve for batch use (solveAll): constructs the
  /// solver with \p Opts without running it. Idempotent; options only
  /// take effect on the first call (before the solver exists).
  void prepare(SolverOptions Opts = SolverOptions());

  /// Solves many independent analyses concurrently on one BatchSolver
  /// pool under shared governance. Queries afterwards behave exactly
  /// as after an eager solve; analyses whose batch solve was
  /// interrupted stay unsolved and re-solve (resume) lazily on their
  /// next query. Returns the per-analysis results in input order.
  /// With BatchSolver::Options::CheckpointDir set, each analysis
  /// snapshots to its own task-<i>.rsnap and a rerun restores the
  /// survivors (the flow monoid domain is built eagerly from the type
  /// skeleton, so its snapshots restore across processes).
  static std::vector<BatchSolver::Result>
  solveAll(std::span<FlowAnalysis *const> Analyses,
           const BatchSolver::Options &BatchOpts = {},
           SolverStats *MergedStats = nullptr);

private:
  /// A labeled type: one fresh set variable per position.
  struct LType {
    TypeId Ty;
    VarId L;
    std::vector<LType> Kids;
  };

  LType spread(TypeId T);
  LType inferPrimal(const FFunc &F, const LType &ParamLT, FExprId E);
  LType inferDual(const FFunc &F, const LType &ParamLT, FExprId E);
  AnnId bracketAnn(bool Open, uint32_t Index, TypeId CompTy);
  AnnId callAnn(bool Open, uint32_t CallSite);
  ConsId sourceConstant(FExprId From);
  void ensureSolved();

  const FlowProgram &P;
  FlowMode Mode;
  std::unique_ptr<MonoidDomain> Dom;
  std::unique_ptr<ConstraintSystem> CS;
  std::unique_ptr<BidirectionalSolver> Solver;
  bool Solved = false;

  std::vector<bool> RecursiveSite; // dual: call sites with eps annotation
  std::vector<VarId> ParamLabels, RetLabels;
  std::map<FExprId, VarId> ExprLabel;
  /// Per-function memo of inferred expression nodes: programmatic
  /// builders (the eBPF front-end in particular) share subexpression
  /// DAGs, and each shared node must get exactly one label so that
  /// labelOf/flows queries see every constraint generated for it.
  /// Cleared between functions — a Var node's meaning depends on the
  /// enclosing function's parameter labeling.
  std::map<FExprId, LType> InferCache;
  std::map<FExprId, ConsId> SourceCons;
  std::vector<ConsId> CallCons; // primal: o_i per call site
  ConsId PairCons = 0;          // dual
};

} // namespace rasc

#endif // RASC_FLOW_ANALYSIS_H
