//===- flow/Lang.cpp - The Section 7 source language ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "flow/Lang.h"

#include <cctype>
#include <map>

using namespace rasc;

TypeId FlowProgram::pairType(TypeId A, TypeId B) {
  for (TypeId I = 0, E = static_cast<TypeId>(Types.size()); I != E; ++I)
    if (Types[I].Kind == FType::Pair && Types[I].A == A && Types[I].B == B)
      return I;
  Types.push_back({FType::Pair, A, B});
  return static_cast<TypeId>(Types.size() - 1);
}

std::string FlowProgram::typeName(TypeId T) const {
  const FType &Ty = type(T);
  if (Ty.Kind == FType::Int)
    return "int";
  return "(" + typeName(Ty.A) + ", " + typeName(Ty.B) + ")";
}

std::optional<FFuncId>
FlowProgram::functionByName(std::string_view Name) const {
  for (FFuncId I = 0, E = static_cast<FFuncId>(Funcs.size()); I != E; ++I)
    if (Funcs[I].Name == Name)
      return I;
  return std::nullopt;
}

std::vector<FExprId> FlowProgram::literals() const {
  std::vector<FExprId> Out;
  for (FExprId I = 0, E = static_cast<FExprId>(Exprs.size()); I != E; ++I)
    if (Exprs[I].Kind == FExpr::Lit)
      Out.push_back(I);
  return Out;
}

FFuncId FlowProgram::addFunction(std::string Name, std::string Param,
                                 TypeId ParamTy, TypeId RetTy,
                                 FExprId Body) {
  Funcs.push_back(
      {std::move(Name), std::move(Param), ParamTy, RetTy, Body});
  return static_cast<FFuncId>(Funcs.size() - 1);
}

FExprId FlowProgram::addExpr(FExpr E) {
  if (E.Kind == FExpr::Call)
    E.CallSite = NumCallSites++;
  Exprs.push_back(std::move(E));
  return static_cast<FExprId>(Exprs.size() - 1);
}

//===----------------------------------------------------------------------===//
// Type checking
//===----------------------------------------------------------------------===//

namespace {

struct Checker {
  FlowProgram &P;
  std::string *Error;

  bool fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg;
    return false;
  }

  bool checkExpr(FExprId EId, const FFunc &F) {
    // Exprs vector may reallocate nowhere here (no additions); safe to
    // take a mutable reference via index each time.
    FExpr &E = const_cast<FExpr &>(P.expr(EId));
    switch (E.Kind) {
    case FExpr::Var:
      if (E.Name != F.Param)
        return fail("unbound variable '" + E.Name + "' in function '" +
                    F.Name + "'");
      E.Type = F.ParamTy;
      return true;
    case FExpr::Lit:
      E.Type = P.intType();
      return true;
    case FExpr::MkPair: {
      if (!checkExpr(E.Kid0, F) || !checkExpr(E.Kid1, F))
        return false;
      TypeId A = P.expr(E.Kid0).Type;
      TypeId B = P.expr(E.Kid1).Type;
      const_cast<FExpr &>(P.expr(EId)).Type = P.pairType(A, B);
      return true;
    }
    case FExpr::Proj: {
      if (!checkExpr(E.Kid0, F))
        return false;
      const FType &Ty = P.type(P.expr(E.Kid0).Type);
      if (Ty.Kind != FType::Pair)
        return fail("projection from a non-pair in '" + F.Name + "'");
      const_cast<FExpr &>(P.expr(EId)).Type =
          P.expr(EId).ProjIdx == 0 ? Ty.A : Ty.B;
      return true;
    }
    case FExpr::Call: {
      std::optional<FFuncId> Callee = P.functionByName(E.Name);
      if (!Callee)
        return fail("call to undeclared function '" + E.Name + "'");
      E.Callee = *Callee;
      if (!checkExpr(E.Kid0, F))
        return false;
      // Non-structural subtyping (Sub) permits any argument type; the
      // analysis simply loses flow on structural mismatch. We still
      // reject the plainly ill-formed case of projecting later, which
      // static types catch above.
      const_cast<FExpr &>(P.expr(EId)).Type =
          P.functions()[*Callee].RetTy;
      return true;
    }
    }
    return fail("corrupt expression");
  }
};

} // namespace

bool FlowProgram::typecheck(std::string *Error) {
  Checker C{*this, Error};
  for (const FFunc &F : Funcs)
    if (!C.checkExpr(F.Body, F))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class FlowParser {
public:
  FlowParser(std::string_view In, FlowProgram &P, std::string *Error)
      : In(In), P(P), Error(Error) {}

  bool parseProgram() {
    skip();
    while (Pos < In.size()) {
      if (!parseFunc())
        return false;
      skip();
    }
    if (P.functions().empty())
      return fail("program has no functions");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Error && Error->empty())
      *Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skip() {
    while (Pos < In.size()) {
      if (std::isspace(static_cast<unsigned char>(In[Pos]))) {
        ++Pos;
      } else if (In[Pos] == '#') {
        while (Pos < In.size() && In[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool eat(char C) {
    skip();
    if (Pos < In.size() && In[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool peekIs(char C) {
    skip();
    return Pos < In.size() && In[Pos] == C;
  }

  std::optional<std::string> ident() {
    skip();
    if (Pos >= In.size() ||
        !(std::isalpha(static_cast<unsigned char>(In[Pos])) ||
          In[Pos] == '_')) {
      fail("expected identifier");
      return std::nullopt;
    }
    size_t Start = Pos;
    while (Pos < In.size() &&
           (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '_'))
      ++Pos;
    return std::string(In.substr(Start, Pos - Start));
  }

  std::optional<TypeId> parseType() {
    skip();
    if (peekIs('(')) {
      ++Pos;
      auto A = parseType();
      if (!A || !eat(','))
        return std::nullopt;
      auto B = parseType();
      if (!B || !eat(')'))
        return std::nullopt;
      return P.pairType(*A, *B);
    }
    auto Id = ident();
    if (!Id)
      return std::nullopt;
    if (*Id != "int") {
      fail("unknown type '" + *Id + "'");
      return std::nullopt;
    }
    return P.intType();
  }

  std::optional<FExprId> parseAtom() {
    skip();
    if (Pos >= In.size()) {
      fail("expected expression");
      return std::nullopt;
    }
    char C = In[Pos];
    if (C == '(') {
      ++Pos;
      auto E1 = parseExpr();
      if (!E1)
        return std::nullopt;
      skip();
      if (peekIs(',')) {
        ++Pos;
        auto E2 = parseExpr();
        if (!E2 || !eat(')'))
          return std::nullopt;
        FExpr E;
        E.Kind = FExpr::MkPair;
        E.Kid0 = *E1;
        E.Kid1 = *E2;
        return P.addExpr(std::move(E));
      }
      if (!eat(')'))
        return std::nullopt;
      return E1;
    }
    if (std::isdigit(static_cast<unsigned char>(C)) || C == '-') {
      size_t Start = Pos;
      if (C == '-')
        ++Pos;
      while (Pos < In.size() &&
             std::isdigit(static_cast<unsigned char>(In[Pos])))
        ++Pos;
      FExpr E;
      E.Kind = FExpr::Lit;
      E.LitValue = std::stol(std::string(In.substr(Start, Pos - Start)));
      return P.addExpr(std::move(E));
    }
    auto Id = ident();
    if (!Id)
      return std::nullopt;
    if (peekIs('(')) {
      ++Pos;
      auto Arg = parseExpr();
      if (!Arg || !eat(')'))
        return std::nullopt;
      FExpr E;
      E.Kind = FExpr::Call;
      E.Name = *Id;
      E.Kid0 = *Arg;
      return P.addExpr(std::move(E));
    }
    FExpr E;
    E.Kind = FExpr::Var;
    E.Name = *Id;
    return P.addExpr(std::move(E));
  }

  std::optional<FExprId> parseExpr() {
    auto E = parseAtom();
    if (!E)
      return std::nullopt;
    while (peekIs('.')) {
      ++Pos;
      skip();
      if (Pos >= In.size() || (In[Pos] != '1' && In[Pos] != '2')) {
        fail("expected .1 or .2");
        return std::nullopt;
      }
      uint32_t Idx = In[Pos] == '1' ? 0 : 1;
      ++Pos;
      FExpr Proj;
      Proj.Kind = FExpr::Proj;
      Proj.ProjIdx = Idx;
      Proj.Kid0 = *E;
      E = P.addExpr(std::move(Proj));
    }
    return E;
  }

  bool parseFunc() {
    auto Name = ident();
    if (!Name || !eat('('))
      return false;
    auto Param = ident();
    if (!Param || !eat(':'))
      return false;
    auto ParamTy = parseType();
    if (!ParamTy || !eat(')') || !eat(':'))
      return false;
    auto RetTy = parseType();
    if (!RetTy || !eat('='))
      return false;
    auto Body = parseExpr();
    if (!Body || !eat(';'))
      return false;
    P.addFunction(*Name, *Param, *ParamTy, *RetTy, *Body);
    return true;
  }

  std::string_view In;
  FlowProgram &P;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::optional<FlowProgram> FlowProgram::parse(std::string_view Source,
                                              std::string *Error) {
  FlowProgram P = FlowProgram::empty();
  FlowParser Parser(Source, P, Error);
  if (!Parser.parseProgram())
    return std::nullopt;
  if (!P.typecheck(Error))
    return std::nullopt;
  return P;
}
