//===- flow/Lang.h - The Section 7 source language --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first-order functional language of paper Section 7.1:
///
///   e ::= x | n | (e1, e2) | e.1 | e.2 | f(e)
///   d ::= f (x : tau) : tau' = e ;
///   tau ::= int | (tau, tau)
///
/// Functions may be recursive and may call functions declared later
/// (mutual recursion). Every call expression is an instantiation site
/// with a unique index i, used by both analyses of Section 7.
///
/// Example (Figure 11):
///
///   pair (y : int) : (int, int) = (1, y);
///   main (z : int) : int = pair(2).2;
///
//===----------------------------------------------------------------------===//

#ifndef RASC_FLOW_LANG_H
#define RASC_FLOW_LANG_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rasc {

using TypeId = uint32_t;
using FExprId = uint32_t;
using FFuncId = uint32_t;

constexpr TypeId InvalidType = ~TypeId(0);

/// Interned unlabeled types.
struct FType {
  enum KindTy : uint8_t { Int, Pair } Kind;
  TypeId A = InvalidType; ///< Pair: first component.
  TypeId B = InvalidType; ///< Pair: second component.
};

/// Expressions; kids index into the program's expression arena.
struct FExpr {
  enum KindTy : uint8_t { Var, Lit, MkPair, Proj, Call } Kind;
  std::string Name;      ///< Var: variable; Call: callee name.
  long LitValue = 0;     ///< Lit.
  uint32_t ProjIdx = 0;  ///< Proj: 0-based component.
  FExprId Kid0 = 0;      ///< MkPair/Proj/Call operand(s).
  FExprId Kid1 = 0;      ///< MkPair second component.
  FFuncId Callee = 0;    ///< Call: resolved in a second pass.
  uint32_t CallSite = 0; ///< Call: unique instantiation index.
  TypeId Type = InvalidType; ///< Filled by type checking.
};

struct FFunc {
  std::string Name;
  std::string Param;
  TypeId ParamTy;
  TypeId RetTy;
  FExprId Body;
};

/// A parsed, type-checked program.
class FlowProgram {
public:
  /// Parses and type checks; on failure returns std::nullopt and sets
  /// \p Error.
  static std::optional<FlowProgram> parse(std::string_view Source,
                                          std::string *Error = nullptr);

  // Type table -----------------------------------------------------------
  TypeId intType() const { return IntTy; }
  TypeId pairType(TypeId A, TypeId B);
  const FType &type(TypeId T) const {
    assert(T < Types.size() && "type out of range");
    return Types[T];
  }
  uint32_t numTypes() const { return static_cast<uint32_t>(Types.size()); }
  std::string typeName(TypeId T) const;

  // Program --------------------------------------------------------------
  const std::vector<FFunc> &functions() const { return Funcs; }
  const FExpr &expr(FExprId E) const {
    assert(E < Exprs.size() && "expression out of range");
    return Exprs[E];
  }
  uint32_t numExprs() const { return static_cast<uint32_t>(Exprs.size()); }
  uint32_t numCallSites() const { return NumCallSites; }

  std::optional<FFuncId> functionByName(std::string_view Name) const;

  /// All expression nodes that are literals (flow-query sources).
  std::vector<FExprId> literals() const;

  // Construction (used by the parser and by generators) --------------------
  FFuncId addFunction(std::string Name, std::string Param, TypeId ParamTy,
                      TypeId RetTy, FExprId Body);
  FExprId addExpr(FExpr E);

  /// Resolves call targets and computes static types; returns false
  /// and sets \p Error on a type error.
  bool typecheck(std::string *Error);

private:
  FlowProgram() {
    Types.push_back({FType::Int, InvalidType, InvalidType});
  }

  TypeId IntTy = 0;
  std::vector<FType> Types;
  std::vector<FFunc> Funcs;
  std::vector<FExpr> Exprs;
  uint32_t NumCallSites = 0;

  friend class FlowProgramBuilder;

public:
  /// Builds programs programmatically (for tests and generators).
  static FlowProgram empty() { return FlowProgram(); }
};

} // namespace rasc

#endif // RASC_FLOW_LANG_H
