//===- check/LogParse.cpp - Proof-log container decoding ------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
//
// Chunk-frame scanning and record decoding, from first principles.
// The format (ProofLog.h v1): a sequence of [tag u32]["len" u64]
// [crc u32][payload] frames, the first tagged "PRFH" carrying the
// header (magic, version, flags, annotation-domain data), the rest
// tagged "PRFC" carrying whole records back to back. The writer never
// splits a record across chunks, so a CRC-valid chunk that does not
// decode to an exact sequence of records is a forgery, not a tear —
// tears only ever truncate the chunk *sequence*.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Internal.h"

#include <cstdio>

namespace rasccheck {

namespace {

constexpr uint32_t HeaderTag = tag4('P', 'R', 'F', 'H');
constexpr uint32_t RecordsTag = tag4('P', 'R', 'F', 'C');
constexpr uint32_t Version = 1;

// Hostile-input caps, mirroring the writer's own producers: state and
// symbol counts come from compiled automata (bounded by the monoid
// construction), names from parsed identifiers, arities from the
// frontend's 1024 cap. Anything beyond is not a log a real solver
// wrote.
constexpr uint32_t MaxStates = 1u << 20;
constexpr uint32_t MaxSymbols = 1u << 20;
constexpr uint32_t MaxNameLen = 1u << 20;
constexpr uint32_t MaxArgs = 1024;
constexpr uint64_t MaxChunkLen = 1u << 30;

Verdict malformed(std::string Msg) {
  return Verdict::fail(ExitMalformed, std::move(Msg));
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out,
              std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    Err = "cannot stat '" + Path + "'";
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  size_t Read =
      Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  if (Read != Out.size()) {
    Err = "short read from '" + Path + "'";
    return false;
  }
  return true;
}

Verdict parseHeader(Cursor &C, LogModel &M) {
  char Magic[8] = {};
  C.take(Magic, 8);
  if (C.Bad || std::memcmp(Magic, "RASCPRF\0", 8) != 0)
    return malformed("header: bad magic (not a proof log)");
  uint32_t V = C.u32();
  if (V != Version)
    return malformed("header: unsupported version " + std::to_string(V));
  uint8_t Flags = C.u8();
  if (Flags & ~3u)
    return malformed("header: unknown flag bits");
  M.FilterUseless = (Flags & 1) != 0;
  M.CycleElimination = (Flags & 2) != 0;
  M.Domain = C.u8();
  switch (M.Domain) {
  case DomTrivial:
    break;
  case DomMonoid: {
    OwnDfa &D = M.Machine;
    D.NumStates = C.u32();
    D.Start = C.u32();
    uint32_t NumSymbols = C.u32();
    if (D.NumStates == 0 || D.NumStates > MaxStates ||
        NumSymbols > MaxSymbols || D.Start >= D.NumStates)
      return malformed("header: automaton dimensions out of range");
    D.Accepting.resize(D.NumStates);
    for (uint32_t S = 0; S != D.NumStates; ++S) {
      uint8_t A = C.u8();
      if (A > 1)
        return malformed("header: non-boolean accepting flag");
      D.Accepting[S] = A;
    }
    D.Symbols.reserve(NumSymbols);
    for (uint32_t S = 0; S != NumSymbols; ++S) {
      uint32_t Len = C.u32();
      if (Len > MaxNameLen)
        return malformed("header: symbol name too long");
      D.Symbols.push_back(C.str(Len));
    }
    D.Trans.resize(static_cast<size_t>(D.NumStates) * NumSymbols);
    for (size_t I = 0, E = D.Trans.size(); I != E; ++I) {
      D.Trans[I] = C.u32();
      if (!C.Bad && D.Trans[I] >= D.NumStates)
        return malformed("header: transition target out of range");
    }
    break;
  }
  case DomGenKill:
    M.GkBits = C.u32();
    if (M.GkBits == 0 || M.GkBits > 64)
      return malformed("header: gen/kill bit width out of range");
    break;
  default:
    return malformed("header: unknown annotation domain kind " +
                     std::to_string(M.Domain));
  }
  if (!C.atEnd())
    return malformed("header: payload does not match its declared layout");
  return Verdict::ok();
}

LogPremise readPremise(Cursor &C) {
  LogPremise P;
  P.Src = C.u32();
  P.Dst = C.u32();
  P.Ann = C.u32();
  return P;
}

/// Decodes one record starting at the cursor; appends to M. The type
/// byte has already been consumed.
Verdict parseRecord(uint8_t Type, Cursor &C, LogModel &M) {
  switch (Type) {
  case RecAnn: {
    uint32_t Id = C.u32();
    LogAnn A;
    if (M.Domain == DomMonoid) {
      A.Table.resize(M.Machine.NumStates);
      for (uint32_t S = 0; S != M.Machine.NumStates; ++S)
        A.Table[S] = C.u32();
    } else if (M.Domain == DomGenKill) {
      A.Gen = C.u64();
      A.Kill = C.u64();
    }
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Anns.size())});
    M.Anns.emplace_back(Id, std::move(A));
    break;
  }
  case RecNode: {
    uint32_t Id = C.u32();
    LogNode N;
    N.Kind = C.u8();
    switch (N.Kind) {
    case KindVar:
      N.V = C.u32();
      break;
    case KindCons: {
      N.C = C.u32();
      N.Alpha = C.u32();
      uint32_t NumArgs = C.u32();
      if (NumArgs > MaxArgs)
        return malformed("NODE: too many constructor arguments");
      N.Args.resize(NumArgs);
      for (uint32_t I = 0; I != NumArgs; ++I)
        N.Args[I] = C.u32();
      break;
    }
    case KindProj:
      N.C = C.u32();
      N.Index = C.u32();
      N.V = C.u32();
      break;
    default:
      return malformed("NODE: unknown expression kind " +
                       std::to_string(N.Kind));
    }
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Nodes.size())});
    M.Nodes.emplace_back(Id, std::move(N));
    break;
  }
  case RecCtor: {
    uint32_t Id = C.u32();
    uint32_t Arity = C.u32();
    if (Arity > MaxArgs)
      return malformed("CTOR: arity too large");
    uint32_t Len = C.u32();
    if (Len > MaxNameLen)
      return malformed("CTOR: name too long");
    std::string Name = C.str(Len);
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Ctors.size())});
    M.Ctors.emplace_back(Id, std::make_pair(std::move(Name), Arity));
    break;
  }
  case RecVarName: {
    uint32_t Id = C.u32();
    uint32_t Len = C.u32();
    if (Len > MaxNameLen)
      return malformed("VARN: name too long");
    std::string Name = C.str(Len);
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Vars.size())});
    M.Vars.emplace_back(Id, std::move(Name));
    break;
  }
  case RecConstraint: {
    LogConstraint K;
    K.Idx = C.u32();
    K.OrigL = C.u32();
    K.OrigR = C.u32();
    K.CanL = C.u32();
    K.CanR = C.u32();
    K.Ann = C.u32();
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Constraints.size())});
    M.Constraints.push_back(K);
    break;
  }
  case RecCollapse: {
    LogCollapse K;
    K.V = C.u32();
    K.Rep = C.u32();
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Collapses.size())});
    M.Collapses.push_back(K);
    break;
  }
  case RecEdge:
  case RecConflict: {
    LogEdge E;
    E.Src = C.u32();
    E.Dst = C.u32();
    E.Ann = C.u32();
    E.Rule = C.u8();
    E.CIdx = C.u32();
    E.P1 = readPremise(C);
    E.P2 = readPremise(C);
    E.Conflict = Type == RecConflict;
    if (E.Rule > RuleProjection)
      return malformed("EDGE: unknown rule byte " + std::to_string(E.Rule));
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Edges.size())});
    M.Edges.push_back(std::move(E));
    break;
  }
  case RecFnVar: {
    LogFnVar F;
    F.From = C.u32();
    F.Fn = C.u32();
    F.To = C.u32();
    F.P = readPremise(C);
    M.Stream.push_back({Type, static_cast<uint32_t>(M.FnVars.size())});
    M.FnVars.push_back(F);
    break;
  }
  case RecStatus: {
    LogStatus S;
    S.Code = C.u8();
    S.Processed = C.u64();
    S.Ingested = C.u64();
    if (S.Code > 7)
      return malformed("STATUS: unknown status code " +
                       std::to_string(S.Code));
    M.Stream.push_back({Type, static_cast<uint32_t>(M.Statuses.size())});
    M.Statuses.push_back(S);
    break;
  }
  default:
    return malformed("unknown record type 0x" + std::to_string(Type));
  }
  if (C.Bad)
    return malformed("record 0x" + std::to_string(Type) +
                     " truncated inside a CRC-valid chunk");
  ++M.Records;
  return Verdict::ok();
}

} // namespace

Verdict parseLogFile(const std::string &Path, LogModel &M) {
  std::vector<uint8_t> Bytes;
  std::string Err;
  if (!readFile(Path, Bytes, Err))
    return malformed(std::move(Err));

  // Frame scan: stop at the first frame whose tag, length, bounds, or
  // CRC fails — everything from there on is a torn tail, recorded in
  // TornBytes and judged by verification (an empty or fully garbage
  // file is "no header", below).
  size_t Pos = 0;
  bool SawHeader = false;
  while (true) {
    if (Bytes.size() - Pos < 16)
      break;
    Cursor F(Bytes.data() + Pos, 16);
    uint32_t Tag = F.u32();
    uint64_t Len = F.u64();
    uint32_t Crc = F.u32();
    if ((Tag != HeaderTag && Tag != RecordsTag) || Len > MaxChunkLen ||
        Len > Bytes.size() - Pos - 16)
      break;
    const uint8_t *Payload = Bytes.data() + Pos + 16;
    if (crc32(Payload, static_cast<size_t>(Len)) != Crc)
      break;

    if (!SawHeader) {
      if (Tag != HeaderTag)
        return malformed("first chunk is not a header");
      Cursor C(Payload, static_cast<size_t>(Len));
      if (Verdict V = parseHeader(C, M); V.Code != 0)
        return V;
      SawHeader = true;
    } else {
      if (Tag != RecordsTag)
        return malformed("duplicate header chunk");
      if (Len == 0)
        return malformed("empty record chunk");
      Cursor C(Payload, static_cast<size_t>(Len));
      while (!C.atEnd()) {
        uint8_t Type = C.u8();
        if (C.Bad)
          return malformed("record chunk ends mid-record");
        if (Verdict V = parseRecord(Type, C, M); V.Code != 0)
          return V;
      }
    }
    ++M.Chunks;
    Pos += 16 + static_cast<size_t>(Len);
  }

  M.TornBytes = Bytes.size() - Pos;
  if (!SawHeader)
    return Verdict::fail(ExitIncomplete,
                         Bytes.empty()
                             ? "empty log (no header chunk survived)"
                             : "no decodable header chunk");
  return Verdict::ok();
}

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

uint32_t crc32(const uint8_t *Data, size_t Len) {
  static const auto Table = [] {
    std::vector<uint32_t> T(256);
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? (0xEDB88320u ^ (C >> 1)) : (C >> 1);
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

} // namespace rasccheck
