//===- check/Verify.cpp - Derivation verification -------------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
//
// The checker's semantic passes over a decoded log:
//
//   Pass A replays the record stream in order: definitions must
//   precede use and be internally consistent, collapses must precede
//   all derivation work, and every EDGE / CONFLICT / FNVAR record must
//   be a correct instance of the closure rule it names, with premises
//   that are earlier records and a conclusion the checker recomputes
//   in its own annotation algebra.
//
//   Pass B judges completeness and the trailers: a torn tail, a
//   missing final trailer, or an Unproven mark is "incomplete"; each
//   trailer's progress counters must agree with the records around it;
//   every cycle collapse must be justified by a strongly connected
//   component of the identity variable-variable constraint digraph,
//   recomputed here with the checker's own Tarjan.
//
//   Pass C mirrors the in-process certifier's closedness obligations
//   (core/Certifier.cpp) from first principles: every consequence of
//   the processed edge prefix — transitive joins at variable nodes,
//   constructor decompositions and their function-variable facts,
//   projection firings, and the surface constraints themselves — must
//   be present, conflict-witnessed, or dropped by the declared
//   useless-annotation filter.
//
// Annotations are compared by *value*: log annotation ids intern into
// the checker's own algebra (monoid state tables / gen-kill masks),
// so a forged id alias cannot smuggle a wrong annotation past an
// equality test.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Internal.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

namespace rasccheck {

//===----------------------------------------------------------------------===//
// Algebra
//===----------------------------------------------------------------------===//

Algebra::Algebra(const LogModel &M) : Dom(M.Domain) {
  if (Dom == DomMonoid) {
    const OwnDfa &D = M.Machine;
    NumStates = D.NumStates;
    // A state is live iff it reaches an accepting state: backward
    // reachability over the reversed transition relation.
    std::vector<std::vector<uint32_t>> Rev(NumStates);
    for (uint32_t S = 0; S != NumStates; ++S)
      for (uint32_t Y = 0, E = static_cast<uint32_t>(D.Symbols.size()); Y != E;
           ++Y)
        Rev[D.next(S, Y)].push_back(S);
    Live.assign(NumStates, 0);
    std::vector<uint32_t> Work;
    for (uint32_t S = 0; S != NumStates; ++S)
      if (D.Accepting[S]) {
        Live[S] = 1;
        Work.push_back(S);
      }
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      for (uint32_t P : Rev[S])
        if (!Live[P]) {
          Live[P] = 1;
          Work.push_back(P);
        }
    }
  } else if (Dom == DomGenKill) {
    Mask = M.GkBits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << M.GkBits) - 1);
  }
}

uint32_t Algebra::keyOfTable(const std::vector<uint32_t> &Table) {
  if (Table.size() != NumStates)
    return InvalidId;
  for (uint32_t S : Table)
    if (S >= NumStates)
      return InvalidId;
  auto It = TableIds.find(Table);
  if (It != TableIds.end())
    return It->second;
  uint32_t Key = static_cast<uint32_t>(Tables.size());
  Tables.push_back(Table);
  TableIds.emplace(Table, Key);
  return Key;
}

uint32_t Algebra::keyOfMasks(uint64_t Gen, uint64_t Kill) {
  if ((Gen & Kill) != 0 || (Gen & ~Mask) != 0 || (Kill & ~Mask) != 0)
    return InvalidId;
  auto Pair = std::make_pair(Gen, Kill);
  auto It = PairIds.find(Pair);
  if (It != PairIds.end())
    return It->second;
  uint32_t Key = static_cast<uint32_t>(Pairs.size());
  Pairs.push_back(Pair);
  PairIds.emplace(Pair, Key);
  return Key;
}

uint32_t Algebra::identityKey() {
  switch (Dom) {
  case DomMonoid: {
    std::vector<uint32_t> Id(NumStates);
    for (uint32_t S = 0; S != NumStates; ++S)
      Id[S] = S;
    return keyOfTable(Id);
  }
  case DomGenKill:
    return keyOfMasks(0, 0);
  default:
    return 0;
  }
}

uint32_t Algebra::compose(uint32_t FirstKey, uint32_t ThenKey) {
  if (Dom == DomTrivial)
    return 0;
  uint64_t Memo = (static_cast<uint64_t>(FirstKey) << 32) | ThenKey;
  auto It = ComposeMemo.find(Memo);
  if (It != ComposeMemo.end())
    return It->second;
  uint32_t Key;
  if (Dom == DomMonoid) {
    const std::vector<uint32_t> &F = Tables[FirstKey];
    const std::vector<uint32_t> &T = Tables[ThenKey];
    std::vector<uint32_t> Out(NumStates);
    for (uint32_t S = 0; S != NumStates; ++S)
      Out[S] = T[F[S]];
    Key = keyOfTable(Out);
  } else {
    auto [GF, KF] = Pairs[FirstKey];
    auto [GT, KT] = Pairs[ThenKey];
    uint64_t Gen = GT | (GF & ~KT);
    uint64_t Kill = (KT | (KF & ~GT)) & ~Gen;
    Key = keyOfMasks(Gen, Kill);
  }
  ComposeMemo.emplace(Memo, Key);
  return Key;
}

bool Algebra::isUseless(uint32_t Key) const {
  if (Dom != DomMonoid)
    return false;
  for (uint32_t S : Tables[Key])
    if (Live[S])
      return false;
  return true;
}

std::string Algebra::describe(uint32_t Key) const {
  switch (Dom) {
  case DomMonoid: {
    std::string S = "[";
    for (size_t I = 0, E = Tables[Key].size(); I != E; ++I)
      S += (I ? "," : "") + std::to_string(Tables[Key][I]);
    return S + "]";
  }
  case DomGenKill:
    return "gen=" + std::to_string(Pairs[Key].first) +
           ",kill=" + std::to_string(Pairs[Key].second);
  default:
    return "1";
  }
}

//===----------------------------------------------------------------------===//
// Verification state
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t pairKey(uint32_t A, uint32_t B) {
  return (static_cast<uint64_t>(A) << 32) | B;
}

/// Union-find over (sparse) variable ids, the checker's own.
class UnionFind {
public:
  uint32_t find(uint32_t V) {
    auto It = Parent.find(V);
    if (It == Parent.end())
      return V;
    uint32_t Root = find(It->second);
    It->second = Root;
    return Root;
  }
  void merge(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (size(A) < size(B))
      std::swap(A, B);
    Parent[B] = A;
    Size[A] = size(A) + size(B);
  }
  uint32_t size(uint32_t Root) {
    auto It = Size.find(Root);
    return It == Size.end() ? 1 : It->second;
  }

private:
  std::unordered_map<uint32_t, uint32_t> Parent;
  std::unordered_map<uint32_t, uint32_t> Size;
};

/// Everything the three passes share. Built by pass A.
struct VerifyState {
  const LogModel &M;
  Algebra &Alg;
  uint32_t IdKey;

  std::unordered_map<uint32_t, uint32_t> AnnKey;       // ann id -> value key
  std::unordered_map<uint32_t, const LogNode *> Nodes; // node id -> def
  std::unordered_map<uint32_t, std::pair<std::string, uint32_t>> Ctors;
  std::unordered_map<uint32_t, std::string> Vars;      // var id -> name
  std::unordered_map<uint32_t, uint32_t> VarToNode;    // var id -> node id
  std::unordered_set<uint32_t> Alphas;
  std::set<std::string> NodeStructs;

  UnionFind UF;
  std::unordered_map<uint32_t, uint32_t> RepClaim; // class root -> claimed var

  std::unordered_map<uint32_t, uint32_t> ConstraintByIdx; // Idx -> vec index
  // (src,dst) -> ann key -> kind (1 edge, 2 conflict); dedup, premise
  // lookup, and pass C's accounted() all read this.
  std::unordered_map<uint64_t, std::unordered_map<uint32_t, uint8_t>> Triples;
  std::vector<uint32_t> EdgeKeys; // value key per M.Edges entry
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> FnVarSeen;

  // Per-trailer progress snapshots, in trailer order.
  struct AtStatus {
    uint64_t Edges, Conflicts, Constraints;
  };
  std::vector<AtStatus> StatusSnap;
  uint64_t NumEdges = 0, NumConflicts = 0;
  bool SawWork = false;

  VerifyState(const LogModel &M, Algebra &Alg)
      : M(M), Alg(Alg), IdKey(Alg.identityKey()) {}
};

Verdict invalid(std::string Msg) {
  return Verdict::fail(ExitInvalidDerivation, std::move(Msg));
}
Verdict incomplete(std::string Msg) {
  return Verdict::fail(ExitIncomplete, std::move(Msg));
}

std::string at(size_t Rec) { return "record " + std::to_string(Rec) + ": "; }

//===----------------------------------------------------------------------===//
// Pass A: stream replay
//===----------------------------------------------------------------------===//

/// Claims V as the solver-elected representative of its class. Two
/// different claimed representatives in one class is a forgery: the
/// solver phrases every canonical form in the unique elected rep.
bool claimRep(VerifyState &S, uint32_t V) {
  uint32_t Root = S.UF.find(V);
  auto [It, Fresh] = S.RepClaim.emplace(Root, V);
  return Fresh || It->second == V;
}

bool sameClass(VerifyState &S, uint32_t A, uint32_t B) {
  return S.UF.find(A) == S.UF.find(B);
}

/// The elected representative of V's class, if the log pins one:
/// singleton classes represent themselves, larger classes need a
/// claim from some canonical usage site. InvalidId = no evidence.
uint32_t repOf(VerifyState &S, uint32_t V) {
  uint32_t Root = S.UF.find(V);
  auto It = S.RepClaim.find(Root);
  if (It != S.RepClaim.end())
    return It->second;
  return S.UF.size(Root) == 1 ? V : InvalidId;
}

Verdict checkAnn(VerifyState &S, size_t Rec, uint32_t Id, const LogAnn &A) {
  if (S.AnnKey.count(Id))
    return invalid(at(Rec) + "annotation " + std::to_string(Id) +
                   " defined twice");
  uint32_t Key;
  switch (S.M.Domain) {
  case DomMonoid:
    Key = S.Alg.keyOfTable(A.Table);
    if (Key == InvalidId)
      return invalid(at(Rec) + "annotation " + std::to_string(Id) +
                     ": state table entry out of range");
    break;
  case DomGenKill:
    Key = S.Alg.keyOfMasks(A.Gen, A.Kill);
    if (Key == InvalidId)
      return invalid(at(Rec) + "annotation " + std::to_string(Id) +
                     ": non-canonical gen/kill masks");
    break;
  default:
    Key = S.Alg.keyTrivial();
  }
  S.AnnKey.emplace(Id, Key);
  return Verdict::ok();
}

Verdict checkNode(VerifyState &S, size_t Rec, uint32_t Id, const LogNode &N) {
  if (S.Nodes.count(Id))
    return invalid(at(Rec) + "node " + std::to_string(Id) + " defined twice");
  std::string Struct;
  switch (N.Kind) {
  case KindVar: {
    if (!S.Vars.count(N.V))
      return invalid(at(Rec) + "variable node over undeclared variable " +
                     std::to_string(N.V));
    auto [It, Fresh] = S.VarToNode.emplace(N.V, Id);
    (void)It;
    if (!Fresh)
      return invalid(at(Rec) + "second node for variable " +
                     std::to_string(N.V));
    break;
  }
  case KindCons: {
    auto CIt = S.Ctors.find(N.C);
    if (CIt == S.Ctors.end())
      return invalid(at(Rec) + "node over undeclared constructor " +
                     std::to_string(N.C));
    if (N.Args.size() != CIt->second.second)
      return invalid(at(Rec) + "constructor node arity mismatch for " +
                     CIt->second.first);
    for (uint32_t A : N.Args)
      if (!S.Vars.count(A))
        return invalid(at(Rec) + "constructor argument is an undeclared "
                                 "variable " +
                       std::to_string(A));
    if (!S.Alphas.insert(N.Alpha).second)
      return invalid(at(Rec) + "annotation variable " +
                     std::to_string(N.Alpha) + " bound to two nodes");
    Struct = "c" + std::to_string(N.C);
    for (uint32_t A : N.Args)
      Struct += "," + std::to_string(A);
    break;
  }
  case KindProj: {
    auto CIt = S.Ctors.find(N.C);
    if (CIt == S.Ctors.end())
      return invalid(at(Rec) + "projection over undeclared constructor " +
                     std::to_string(N.C));
    if (N.Index >= CIt->second.second)
      return invalid(at(Rec) + "projection index out of the constructor's "
                               "arity");
    if (!S.Vars.count(N.V))
      return invalid(at(Rec) + "projection subject is an undeclared "
                               "variable " +
                     std::to_string(N.V));
    Struct = "p" + std::to_string(N.C) + "." + std::to_string(N.Index) + "," +
             std::to_string(N.V);
    break;
  }
  default:
    return invalid(at(Rec) + "unknown node kind");
  }
  if (!Struct.empty() && !S.NodeStructs.insert(Struct).second)
    return invalid(at(Rec) + "structurally duplicate node " +
                   std::to_string(Id));
  S.Nodes.emplace(Id, &N);
  return Verdict::ok();
}

/// Canonical side of a constraint record: must be Orig with every
/// variable replaced by its class's elected representative.
Verdict checkCanonSide(VerifyState &S, size_t Rec, uint32_t Orig,
                       uint32_t Can) {
  const LogNode &O = *S.Nodes.at(Orig);
  const LogNode &C = *S.Nodes.at(Can);
  if (O.Kind != C.Kind)
    return invalid(at(Rec) + "canonical form changes expression kind");
  switch (O.Kind) {
  case KindVar:
    if (!sameClass(S, O.V, C.V) || !claimRep(S, C.V))
      return invalid(at(Rec) + "canonical variable is not its class "
                               "representative");
    break;
  case KindCons:
    if (O.C != C.C || O.Args.size() != C.Args.size())
      return invalid(at(Rec) + "canonical form changes the constructor");
    for (size_t I = 0, E = O.Args.size(); I != E; ++I)
      if (!sameClass(S, O.Args[I], C.Args[I]) || !claimRep(S, C.Args[I]))
        return invalid(at(Rec) + "canonical constructor argument is not its "
                                 "class representative");
    break;
  case KindProj:
    if (O.C != C.C || O.Index != C.Index)
      return invalid(at(Rec) + "canonical form changes the projection");
    if (!sameClass(S, O.V, C.V) || !claimRep(S, C.V))
      return invalid(at(Rec) + "canonical projection subject is not its "
                               "class representative");
    break;
  }
  return Verdict::ok();
}

Verdict checkConstraint(VerifyState &S, size_t Rec, uint32_t VecIdx) {
  const LogConstraint &K = S.M.Constraints[VecIdx];
  if (!S.ConstraintByIdx.emplace(K.Idx, VecIdx).second)
    return invalid(at(Rec) + "constraint " + std::to_string(K.Idx) +
                   " recorded twice");
  for (uint32_t N : {K.OrigL, K.OrigR, K.CanL, K.CanR})
    if (!S.Nodes.count(N))
      return invalid(at(Rec) + "constraint references undefined node " +
                     std::to_string(N));
  if (!S.AnnKey.count(K.Ann))
    return invalid(at(Rec) + "constraint references undefined annotation");
  if (Verdict V = checkCanonSide(S, Rec, K.OrigL, K.CanL); V.Code)
    return V;
  if (Verdict V = checkCanonSide(S, Rec, K.OrigR, K.CanR); V.Code)
    return V;
  const LogNode &L = *S.Nodes.at(K.CanL);
  if (S.Nodes.at(K.CanR)->Kind == KindProj)
    return invalid(at(Rec) + "projection on the right-hand side");
  if (L.Kind == KindProj && S.Nodes.at(K.CanR)->Kind != KindVar)
    return invalid(at(Rec) + "projection constraint with a non-variable "
                             "target");
  return Verdict::ok();
}

/// Premise lookup: the named edge must be an earlier EDGE record
/// (conflicts are dead ends, never premises). Returns its value key
/// through Key.
bool premiseSeen(VerifyState &S, const LogPremise &P, uint32_t &Key) {
  auto AIt = S.AnnKey.find(P.Ann);
  if (AIt == S.AnnKey.end() || !S.Nodes.count(P.Src) || !S.Nodes.count(P.Dst))
    return false;
  Key = AIt->second;
  auto TIt = S.Triples.find(pairKey(P.Src, P.Dst));
  if (TIt == S.Triples.end())
    return false;
  auto KIt = TIt->second.find(Key);
  return KIt != TIt->second.end() && KIt->second == 1;
}

Verdict checkEdge(VerifyState &S, size_t Rec, uint32_t VecIdx) {
  const LogEdge &E = S.M.Edges[VecIdx];
  auto AIt = S.AnnKey.find(E.Ann);
  if (AIt == S.AnnKey.end())
    return invalid(at(Rec) + "edge references undefined annotation");
  uint32_t EK = AIt->second;
  auto SIt = S.Nodes.find(E.Src), DIt = S.Nodes.find(E.Dst);
  if (SIt == S.Nodes.end() || DIt == S.Nodes.end())
    return invalid(at(Rec) + "edge endpoint is an undefined node");
  const LogNode &SN = *SIt->second, &DN = *DIt->second;
  if (SN.Kind == KindProj || DN.Kind == KindProj)
    return invalid(at(Rec) + "projection expression used as a graph node");

  // Conflict/edge split must match the endpoints: a constructor
  // mismatch may only be recorded as a conflict, a match never.
  bool ConsCons = SN.Kind == KindCons && DN.Kind == KindCons;
  if (E.Conflict) {
    if (!ConsCons || SN.C == DN.C)
      return invalid(at(Rec) + "conflict without a constructor mismatch");
  } else if (ConsCons && SN.C != DN.C) {
    return invalid(at(Rec) + "constructor mismatch recorded as an edge");
  }
  if (S.M.FilterUseless && S.Alg.isUseless(EK))
    return invalid(at(Rec) + "edge with a useless annotation survived the "
                             "declared filter");

  // The justification.
  uint32_t P1K = 0, P2K = 0;
  switch (E.Rule) {
  case RuleSurface: {
    if (E.P1.present() || E.P2.present())
      return invalid(at(Rec) + "surface edge with premises");
    auto KIt = S.ConstraintByIdx.find(E.CIdx);
    if (KIt == S.ConstraintByIdx.end())
      return invalid(at(Rec) + "surface edge cites an unrecorded constraint");
    const LogConstraint &K = S.M.Constraints[KIt->second];
    if (S.Nodes.at(K.CanL)->Kind == KindProj)
      return invalid(at(Rec) + "surface edge from a projection constraint");
    if (E.Src != K.CanL || E.Dst != K.CanR || EK != S.AnnKey.at(K.Ann))
      return invalid(at(Rec) + "surface edge does not match its constraint");
    break;
  }
  case RuleTransitive: {
    if (E.CIdx != InvalidId)
      return invalid(at(Rec) + "transitive edge cites a constraint");
    if (!premiseSeen(S, E.P1, P1K) || !premiseSeen(S, E.P2, P2K))
      return invalid(at(Rec) + "transitive premise is not an earlier edge");
    auto JIt = S.Nodes.find(E.P1.Dst);
    if (E.P1.Dst != E.P2.Src || JIt->second->Kind != KindVar)
      return invalid(at(Rec) + "transitive premises do not join at a "
                               "variable");
    if (E.Src != E.P1.Src || E.Dst != E.P2.Dst)
      return invalid(at(Rec) + "transitive conclusion endpoints mismatch");
    if (EK != S.Alg.compose(P1K, P2K))
      return invalid(at(Rec) + "transitive conclusion annotation is not the "
                               "composition of its premises");
    break;
  }
  case RuleDecompose: {
    if (E.CIdx != InvalidId)
      return invalid(at(Rec) + "decompose edge cites a constraint");
    if (!premiseSeen(S, E.P1, P1K) || E.P2.present())
      return invalid(at(Rec) + "decompose needs exactly one earlier edge "
                               "premise");
    const LogNode &PS = *S.Nodes.at(E.P1.Src), &PD = *S.Nodes.at(E.P1.Dst);
    if (PS.Kind != KindCons || PD.Kind != KindCons || PS.C != PD.C)
      return invalid(at(Rec) + "decompose premise is not a matched "
                               "constructor edge");
    if (SN.Kind != KindVar || DN.Kind != KindVar)
      return invalid(at(Rec) + "decompose conclusion is not between "
                               "variables");
    bool Matched = false;
    for (size_t I = 0, N = PS.Args.size(); I != N && !Matched; ++I)
      Matched = sameClass(S, SN.V, PS.Args[I]) && sameClass(S, DN.V, PD.Args[I]);
    if (!Matched)
      return invalid(at(Rec) + "decompose conclusion is not an argument "
                               "pair of its premise");
    if (EK != P1K)
      return invalid(at(Rec) + "decompose must preserve the premise "
                               "annotation");
    break;
  }
  case RuleProjection: {
    auto KIt = S.ConstraintByIdx.find(E.CIdx);
    if (KIt == S.ConstraintByIdx.end())
      return invalid(at(Rec) + "projection edge cites an unrecorded "
                               "constraint");
    const LogConstraint &K = S.M.Constraints[KIt->second];
    const LogNode &PL = *S.Nodes.at(K.CanL);
    if (PL.Kind != KindProj)
      return invalid(at(Rec) + "projection edge cites a non-projection "
                               "constraint");
    if (!premiseSeen(S, E.P1, P1K) || E.P2.present())
      return invalid(at(Rec) + "projection needs exactly one earlier edge "
                               "premise");
    const LogNode &PS = *S.Nodes.at(E.P1.Src), &PD = *S.Nodes.at(E.P1.Dst);
    if (PD.Kind != KindVar || PD.V != PL.V)
      return invalid(at(Rec) + "projection premise does not end at the "
                               "constraint's subject");
    if (PS.Kind != KindCons || PS.C != PL.C)
      return invalid(at(Rec) + "projection premise is not a lower bound by "
                               "the projected constructor");
    if (SN.Kind != KindVar || !sameClass(S, SN.V, PS.Args[PL.Index]))
      return invalid(at(Rec) + "projection conclusion source is not the "
                               "projected argument");
    if (E.Dst != K.CanR)
      return invalid(at(Rec) + "projection conclusion target is not the "
                               "constraint's target");
    if (EK != S.Alg.compose(P1K, S.AnnKey.at(K.Ann)))
      return invalid(at(Rec) + "projection conclusion annotation is not "
                               "premise-then-constraint");
    break;
  }
  default:
    return invalid(at(Rec) + "unknown closure rule");
  }

  // Endpoints are canonical forms: their variables claim rep status.
  if (SN.Kind == KindVar && !claimRep(S, SN.V))
    return invalid(at(Rec) + "edge source variable is not its class "
                             "representative");
  if (DN.Kind == KindVar && !claimRep(S, DN.V))
    return invalid(at(Rec) + "edge target variable is not its class "
                             "representative");
  for (const LogNode *N : {&SN, &DN})
    if (N->Kind == KindCons)
      for (uint32_t A : N->Args)
        if (!claimRep(S, A))
          return invalid(at(Rec) + "edge constructor argument is not its "
                                   "class representative");

  auto [It, Fresh] =
      S.Triples[pairKey(E.Src, E.Dst)].emplace(EK, E.Conflict ? 2 : 1);
  (void)It;
  if (!Fresh)
    return invalid(at(Rec) + "duplicate edge (the solver deduplicates)");
  S.EdgeKeys[VecIdx] = EK;
  return Verdict::ok();
}

Verdict checkFnVar(VerifyState &S, size_t Rec, const LogFnVar &F) {
  uint32_t PK = 0;
  if (!F.P.present() || !premiseSeen(S, F.P, PK))
    return invalid(at(Rec) + "fn-var premise is not an earlier edge");
  const LogNode &PS = *S.Nodes.at(F.P.Src), &PD = *S.Nodes.at(F.P.Dst);
  if (PS.Kind != KindCons || PD.Kind != KindCons || PS.C != PD.C)
    return invalid(at(Rec) + "fn-var premise is not a matched constructor "
                             "edge");
  if (F.From != PS.Alpha || F.To != PD.Alpha)
    return invalid(at(Rec) + "fn-var endpoints are not the premise's "
                             "annotation variables");
  auto AIt = S.AnnKey.find(F.Fn);
  if (AIt == S.AnnKey.end() || AIt->second != PK)
    return invalid(at(Rec) + "fn-var function is not the premise "
                             "annotation");
  if (!S.FnVarSeen.emplace(F.From, F.To, PK).second)
    return invalid(at(Rec) + "duplicate fn-var constraint");
  return Verdict::ok();
}

Verdict passA(VerifyState &S) {
  const LogModel &M = S.M;
  S.EdgeKeys.assign(M.Edges.size(), 0);
  size_t Rec = 0;
  uint64_t ConstraintsSeen = 0;
  for (const LogItem &It : M.Stream) {
    ++Rec;
    switch (It.Type) {
    case RecAnn: {
      const auto &[Id, A] = M.Anns[It.Index];
      if (Verdict V = checkAnn(S, Rec, Id, A); V.Code)
        return V;
      break;
    }
    case RecCtor: {
      const auto &[Id, Def] = M.Ctors[It.Index];
      if (!S.Ctors.emplace(Id, Def).second)
        return invalid(at(Rec) + "constructor " + std::to_string(Id) +
                       " defined twice");
      break;
    }
    case RecVarName: {
      const auto &[Id, Name] = M.Vars[It.Index];
      if (!S.Vars.emplace(Id, Name).second)
        return invalid(at(Rec) + "variable " + std::to_string(Id) +
                       " defined twice");
      break;
    }
    case RecNode: {
      const auto &[Id, N] = M.Nodes[It.Index];
      if (Verdict V = checkNode(S, Rec, Id, N); V.Code)
        return V;
      break;
    }
    case RecCollapse: {
      const LogCollapse &K = M.Collapses[It.Index];
      if (!M.CycleElimination)
        return invalid(at(Rec) + "collapse in a log whose header disables "
                                 "cycle elimination");
      if (S.SawWork)
        return invalid(at(Rec) + "collapse after derivation work started");
      if (!S.Vars.count(K.V) || !S.Vars.count(K.Rep))
        return invalid(at(Rec) + "collapse of undeclared variables");
      S.UF.merge(K.V, K.Rep);
      break;
    }
    case RecConstraint:
      S.SawWork = true;
      ++ConstraintsSeen;
      if (Verdict V = checkConstraint(S, Rec, It.Index); V.Code)
        return V;
      break;
    case RecEdge:
    case RecConflict:
      S.SawWork = true;
      if (Verdict V = checkEdge(S, Rec, It.Index); V.Code)
        return V;
      if (M.Edges[It.Index].Conflict)
        ++S.NumConflicts;
      else
        ++S.NumEdges;
      break;
    case RecFnVar:
      S.SawWork = true;
      if (Verdict V = checkFnVar(S, Rec, M.FnVars[It.Index]); V.Code)
        return V;
      break;
    case RecStatus:
      S.StatusSnap.push_back({S.NumEdges, S.NumConflicts, ConstraintsSeen});
      break;
    }
  }
  return Verdict::ok();
}

//===----------------------------------------------------------------------===//
// Pass B: completeness, trailers, collapse justification
//===----------------------------------------------------------------------===//

Verdict passB(VerifyState &S) {
  const LogModel &M = S.M;

  // Completeness first: these outrank derivation-level complaints
  // about the trailers themselves.
  if (M.TornBytes)
    return incomplete("torn tail of " + std::to_string(M.TornBytes) +
                      " undecodable bytes (crash mid-write or trailing "
                      "mutation)");
  if (M.Statuses.empty())
    return incomplete("log has no status trailer");
  if (M.Stream.back().Type != RecStatus)
    return incomplete("log does not end with a status trailer");
  for (const LogStatus &St : M.Statuses)
    if (St.Code == 7)
      return incomplete("solver marked this log unproven (abandoned "
                        "emission or a retraction)");

  // Trailer progress counters, each against the records before it. A
  // resumed solver appends one trailer per solve; all are checked,
  // the last is authoritative.
  uint64_t PrevP = 0, PrevIng = 0;
  for (size_t I = 0, E = M.Statuses.size(); I != E; ++I) {
    const LogStatus &St = M.Statuses[I];
    const VerifyState::AtStatus &Snap = S.StatusSnap[I];
    if (St.Processed < PrevP || St.Ingested < PrevIng)
      return invalid("trailer " + std::to_string(I) +
                     ": progress counters regressed");
    if (St.Processed > Snap.Edges)
      return invalid("trailer " + std::to_string(I) +
                     ": claims more processed edges than recorded");
    if (Snap.Constraints > St.Ingested)
      return invalid("trailer " + std::to_string(I) +
                     ": more constraints recorded than ingested");
    if (St.Code == 0 && (Snap.Conflicts || St.Processed != Snap.Edges))
      return invalid("trailer " + std::to_string(I) +
                     ": Solved needs a drained worklist and no conflicts");
    if (St.Code == 1 && (!Snap.Conflicts || St.Processed != Snap.Edges))
      return invalid("trailer " + std::to_string(I) +
                     ": Inconsistent needs a drained worklist and a "
                     "witnessed conflict");
    PrevP = St.Processed;
    PrevIng = St.Ingested;
  }
  for (const LogConstraint &K : M.Constraints)
    if (K.Idx >= M.Statuses.back().Ingested)
      return invalid("constraint " + std::to_string(K.Idx) +
                     " beyond the trailer's ingested count");

  // Cycle collapses: each merged pair must share a strongly connected
  // component of the identity variable-variable constraint digraph —
  // only identity cycles license set equality. Computed with the
  // checker's own iterative Tarjan.
  if (M.Collapses.empty())
    return Verdict::ok();
  std::unordered_map<uint32_t, uint32_t> Dense;
  auto denseOf = [&](uint32_t V) {
    return Dense.emplace(V, static_cast<uint32_t>(Dense.size())).first->second;
  };
  std::vector<std::vector<uint32_t>> Adj;
  auto ensure = [&](uint32_t N) {
    if (Adj.size() <= N)
      Adj.resize(N + 1);
  };
  for (const LogConstraint &K : M.Constraints) {
    const LogNode &L = *S.Nodes.at(K.OrigL), &R = *S.Nodes.at(K.OrigR);
    if (L.Kind != KindVar || R.Kind != KindVar ||
        S.AnnKey.at(K.Ann) != S.IdKey)
      continue;
    uint32_t A = denseOf(L.V), B = denseOf(R.V);
    ensure(std::max(A, B));
    Adj[A].push_back(B);
  }
  for (const LogCollapse &K : M.Collapses)
    ensure(std::max(denseOf(K.V), denseOf(K.Rep)));

  uint32_t N = static_cast<uint32_t>(Adj.size());
  std::vector<uint32_t> Index(N, InvalidId), Low(N, 0), Scc(N, InvalidId);
  std::vector<uint8_t> OnStack(N, 0);
  std::vector<uint32_t> Stack;
  uint32_t Next = 0, NumScc = 0;
  struct Frame {
    uint32_t V;
    size_t Child;
  };
  std::vector<Frame> Frames;
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != InvalidId)
      continue;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      uint32_t V = F.V;
      if (F.Child == 0) {
        Index[V] = Low[V] = Next++;
        Stack.push_back(V);
        OnStack[V] = 1;
      }
      if (F.Child < Adj[V].size()) {
        uint32_t W = Adj[V][F.Child++];
        if (Index[W] == InvalidId)
          Frames.push_back({W, 0});
        else if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
        continue;
      }
      if (Low[V] == Index[V]) {
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Scc[W] = NumScc;
          if (W == V)
            break;
        }
        ++NumScc;
      }
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().V] = std::min(Low[Frames.back().V], Low[V]);
    }
  }
  for (const LogCollapse &K : M.Collapses)
    if (Scc[Dense.at(K.V)] != Scc[Dense.at(K.Rep)])
      return invalid("collapse of variables " + std::to_string(K.V) +
                     " and " + std::to_string(K.Rep) +
                     " without an identity constraint cycle");
  return Verdict::ok();
}

//===----------------------------------------------------------------------===//
// Pass C: closedness of the processed prefix
//===----------------------------------------------------------------------===//

/// Is the consequence (Src ⊆^Key Dst) accounted for? Present as an
/// edge, witnessed as a conflict (constructor mismatch only), or
/// dropped by the declared useless-annotation filter.
bool accounted(VerifyState &S, uint32_t Src, uint32_t Dst, uint32_t Key) {
  if (S.M.FilterUseless && S.Alg.isUseless(Key))
    return true;
  auto It = S.Triples.find(pairKey(Src, Dst));
  if (It == S.Triples.end())
    return false;
  auto KIt = It->second.find(Key);
  if (KIt == It->second.end())
    return false;
  const LogNode &SN = *S.Nodes.at(Src), &DN = *S.Nodes.at(Dst);
  bool Mismatch =
      SN.Kind == KindCons && DN.Kind == KindCons && SN.C != DN.C;
  return KIt->second == (Mismatch ? 2 : 1);
}

Verdict passC(VerifyState &S, VerifyCounters &Cnt) {
  const LogModel &M = S.M;
  uint64_t P = M.Statuses.back().Processed;

  // The processed prefix: the first Processed-many EDGE records
  // (conflicts never enter the worklist). Rebuilt logs reorder edges
  // topologically, but rebuilding requires a drained worklist, so the
  // prefix is the same *set* either way — and closedness only reads
  // the set.
  std::unordered_map<uint32_t, std::vector<const LogEdge *>> InProc, OutProc;
  std::unordered_map<const LogEdge *, uint32_t> KeyOf;
  std::vector<const LogEdge *> ProcConsCons;
  uint64_t Taken = 0;
  for (size_t I = 0, E = M.Edges.size(); I != E && Taken != P; ++I) {
    const LogEdge &Ed = M.Edges[I];
    if (Ed.Conflict)
      continue;
    ++Taken;
    KeyOf[&Ed] = S.EdgeKeys[I];
    OutProc[Ed.Src].push_back(&Ed);
    InProc[Ed.Dst].push_back(&Ed);
    const LogNode &SN = *S.Nodes.at(Ed.Src), &DN = *S.Nodes.at(Ed.Dst);
    if (SN.Kind == KindCons && DN.Kind == KindCons)
      ProcConsCons.push_back(&Ed);
  }

  // Transitive closure at variable nodes: every processed in/out pair
  // must have its join accounted for.
  for (const auto &[Node, Ins] : InProc) {
    if (S.Nodes.at(Node)->Kind != KindVar)
      continue;
    auto OIt = OutProc.find(Node);
    if (OIt == OutProc.end())
      continue;
    for (const LogEdge *In : Ins)
      for (const LogEdge *Out : OIt->second) {
        ++Cnt.Transitive;
        uint32_t Key = S.Alg.compose(KeyOf[In], KeyOf[Out]);
        if (!accounted(S, In->Src, Out->Dst, Key))
          return invalid("missing transitive consequence through variable "
                         "node " +
                         std::to_string(Node) + ": " +
                         std::to_string(In->Src) + " -> " +
                         std::to_string(Out->Dst) + " @ " +
                         S.Alg.describe(Key));
      }
  }

  // Decomposition: every processed matched constructor edge must have
  // every argument edge and its fn-var fact.
  for (const LogEdge *Ed : ProcConsCons) {
    const LogNode &SN = *S.Nodes.at(Ed->Src), &DN = *S.Nodes.at(Ed->Dst);
    uint32_t Key = KeyOf[Ed];
    bool Dropped = M.FilterUseless && S.Alg.isUseless(Key);
    for (size_t I = 0, N = SN.Args.size(); I != N; ++I) {
      ++Cnt.Decompose;
      uint32_t A = repOf(S, SN.Args[I]), B = repOf(S, DN.Args[I]);
      auto AIt = A == InvalidId ? S.VarToNode.end() : S.VarToNode.find(A);
      auto BIt = B == InvalidId ? S.VarToNode.end() : S.VarToNode.find(B);
      if (AIt == S.VarToNode.end() || BIt == S.VarToNode.end()) {
        if (Dropped)
          continue;
        return invalid("decomposition argument " + std::to_string(I) +
                       " of a processed constructor edge has no node");
      }
      if (!accounted(S, AIt->second, BIt->second, Key))
        return invalid("missing decomposition consequence: argument " +
                       std::to_string(I) + " of constructor edge " +
                       std::to_string(Ed->Src) + " -> " +
                       std::to_string(Ed->Dst));
    }
    if (!S.FnVarSeen.count({SN.Alpha, DN.Alpha, Key}))
      return invalid("processed constructor edge " + std::to_string(Ed->Src) +
                     " -> " + std::to_string(Ed->Dst) +
                     " has no fn-var constraint record");
  }

  // Projection: every recorded projection constraint must have fired
  // for every processed matching lower bound of its subject.
  for (const LogConstraint &K : M.Constraints) {
    const LogNode &PL = *S.Nodes.at(K.CanL);
    if (PL.Kind != KindProj)
      continue;
    auto SubjIt = S.VarToNode.find(PL.V);
    if (SubjIt == S.VarToNode.end())
      continue;
    auto InIt = InProc.find(SubjIt->second);
    if (InIt == InProc.end())
      continue;
    uint32_t CK = S.AnnKey.at(K.Ann);
    for (const LogEdge *In : InIt->second) {
      const LogNode &SN = *S.Nodes.at(In->Src);
      if (SN.Kind != KindCons || SN.C != PL.C)
        continue;
      ++Cnt.Projection;
      uint32_t Key = S.Alg.compose(KeyOf[In], CK);
      bool Dropped = M.FilterUseless && S.Alg.isUseless(Key);
      uint32_t A = repOf(S, SN.Args[PL.Index]);
      auto AIt = A == InvalidId ? S.VarToNode.end() : S.VarToNode.find(A);
      if (AIt == S.VarToNode.end()) {
        if (Dropped)
          continue;
        return invalid("projected argument of constraint " +
                       std::to_string(K.Idx) + " has no node");
      }
      if (!accounted(S, AIt->second, K.CanR, Key))
        return invalid("missing projection consequence of constraint " +
                       std::to_string(K.Idx));
    }
  }

  // Surface: every recorded constraint's own fact.
  for (const LogConstraint &K : M.Constraints) {
    if (S.Nodes.at(K.CanL)->Kind == KindProj)
      continue;
    ++Cnt.Surface;
    if (!accounted(S, K.CanL, K.CanR, S.AnnKey.at(K.Ann)))
      return invalid("missing surface fact of constraint " +
                     std::to_string(K.Idx));
  }
  return Verdict::ok();
}

int exitOfStatus(uint8_t Code) {
  switch (Code) {
  case 0:
    return ExitSolved;
  case 1:
    return ExitInconsistent;
  case 2:
    return ExitEdgeLimit;
  case 3:
    return ExitStepLimit;
  case 4:
    return ExitDeadline;
  case 5:
    return ExitMemoryLimit;
  default:
    return ExitCancelled;
  }
}

} // namespace

Verdict verifyLog(const LogModel &M, Algebra &Alg, VerifyCounters &C,
                  int *StatusExit) {
  VerifyState S(M, Alg);
  if (Verdict V = passA(S); V.Code)
    return V;
  if (Verdict V = passB(S); V.Code)
    return V;
  if (Verdict V = passC(S, C); V.Code)
    return V;
  if (StatusExit)
    *StatusExit = exitOfStatus(M.Statuses.back().Code);
  return Verdict::ok();
}

} // namespace rasccheck
