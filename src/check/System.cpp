//===- check/System.cpp - --system cross-check ----------------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
//
// Re-derives the constraint system from the .rasc file the log claims
// to prove, with the checker's own frontends: a mirror of the .rasc
// grammar (frontend/ConstraintParser.cpp), of the automaton
// specification language (spec/SpecParser.cpp), and of the regex
// frontend (automata/RegexParser.cpp — Thompson construction plus
// subset construction; minimization is unnecessary because languages
// are compared by product reachability, not state count). The log
// must then agree with the file on:
//
//   - the annotation language: same alphabet (by name) and the same
//     regular language, checked by a BFS over the product of the
//     re-compiled DFA and the log's embedded machine;
//   - every declared name the log mentions: variable and constructor
//     records must match the file's declarations by id (declaration
//     order *is* the solver's id order);
//   - the constraint stream: the trailer's ingested count equals the
//     file's constraint count, exactly the non-retracted indices are
//     recorded, and each record's original sides and annotation
//     (identity, or a symbol's transition column of the embedded
//     machine) structurally match the file's statement.
//
// Any divergence is ExitSystemMismatch; a file this mirror cannot
// parse is ExitMalformed (the genuine frontend would reject it too,
// so no honest log exists for it).
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Internal.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

namespace rasccheck {

namespace {

Verdict mismatch(std::string Msg) {
  return Verdict::fail(ExitSystemMismatch, "system mismatch: " + std::move(Msg));
}
Verdict badFile(std::string Msg) {
  return Verdict::fail(ExitMalformed, "system file: " + std::move(Msg));
}

//===----------------------------------------------------------------------===//
// Specification-language mirror
//===----------------------------------------------------------------------===//

struct SpecArm {
  std::string Symbol;
  std::vector<std::string> Params;
  std::string Target;
};

struct SpecState {
  std::string Name;
  bool IsStart = false, IsAccept = false;
  std::vector<SpecArm> Arms;
};

/// Tokenizer of the spec language: identifiers, ':', ';', '|', '->',
/// '(', ')', ',', '#' comments.
class SpecLexer {
public:
  enum Kind { Ident, Colon, Semi, Pipe, Arrow, LParen, RParen, Comma, End, Bad };
  struct Token {
    Kind K;
    std::string Text;
  };

  explicit SpecLexer(const std::string &In) : In(In) {}

  Token next() {
    while (Pos < In.size()) {
      char C = In[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < In.size() && In[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
    if (Pos >= In.size())
      return {End, ""};
    char C = In[Pos];
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < In.size() &&
             (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
              In[Pos] == '_'))
        ++Pos;
      return {Ident, In.substr(Start, Pos - Start)};
    }
    switch (C) {
    case ':':
      ++Pos;
      return {Colon, ":"};
    case ';':
      ++Pos;
      return {Semi, ";"};
    case '|':
      ++Pos;
      return {Pipe, "|"};
    case '(':
      ++Pos;
      return {LParen, "("};
    case ')':
      ++Pos;
      return {RParen, ")"};
    case ',':
      ++Pos;
      return {Comma, ","};
    case '-':
      if (Pos + 1 < In.size() && In[Pos + 1] == '>') {
        Pos += 2;
        return {Arrow, "->"};
      }
      break;
    default:
      break;
    }
    return {Bad, std::string(1, C)};
  }

private:
  const std::string &In;
  size_t Pos = 0;
};

bool parseSpecText(const std::string &Text, OwnDfa &Out, std::string &Err) {
  SpecLexer Lex(Text);
  SpecLexer::Token Tok = Lex.next();
  auto advance = [&] { Tok = Lex.next(); };

  std::vector<SpecState> States;
  std::vector<std::string> ExtraSymbols;
  while (Tok.K != SpecLexer::End) {
    if (Tok.K != SpecLexer::Ident) {
      Err = "expected declaration";
      return false;
    }
    if (Tok.Text == "symbols") {
      advance();
      while (true) {
        if (Tok.K != SpecLexer::Ident) {
          Err = "expected symbol name";
          return false;
        }
        ExtraSymbols.push_back(Tok.Text);
        advance();
        if (Tok.K == SpecLexer::Comma) {
          advance();
          continue;
        }
        break;
      }
      if (Tok.K != SpecLexer::Semi) {
        Err = "expected ';'";
        return false;
      }
      advance();
      continue;
    }
    SpecState D;
    while (Tok.K == SpecLexer::Ident &&
           (Tok.Text == "start" || Tok.Text == "accept")) {
      (Tok.Text == "start" ? D.IsStart : D.IsAccept) = true;
      advance();
    }
    if (Tok.K != SpecLexer::Ident || Tok.Text != "state") {
      Err = "expected 'state'";
      return false;
    }
    advance();
    if (Tok.K != SpecLexer::Ident) {
      Err = "expected state name";
      return false;
    }
    D.Name = Tok.Text;
    advance();
    if (Tok.K == SpecLexer::Semi) {
      advance();
      States.push_back(std::move(D));
      continue;
    }
    if (Tok.K != SpecLexer::Colon) {
      Err = "expected ':' or ';'";
      return false;
    }
    advance();
    while (Tok.K == SpecLexer::Pipe) {
      advance();
      SpecArm A;
      if (Tok.K != SpecLexer::Ident) {
        Err = "expected symbol name";
        return false;
      }
      A.Symbol = Tok.Text;
      advance();
      if (Tok.K == SpecLexer::LParen) {
        advance();
        while (true) {
          if (Tok.K != SpecLexer::Ident) {
            Err = "expected parameter name";
            return false;
          }
          A.Params.push_back(Tok.Text);
          advance();
          if (Tok.K == SpecLexer::Comma) {
            advance();
            continue;
          }
          break;
        }
        if (Tok.K != SpecLexer::RParen) {
          Err = "expected ')'";
          return false;
        }
        advance();
      }
      if (Tok.K != SpecLexer::Arrow) {
        Err = "expected '->'";
        return false;
      }
      advance();
      if (Tok.K != SpecLexer::Ident) {
        Err = "expected target state name";
        return false;
      }
      A.Target = Tok.Text;
      advance();
      D.Arms.push_back(std::move(A));
    }
    if (Tok.K != SpecLexer::Semi) {
      Err = "expected ';'";
      return false;
    }
    advance();
    States.push_back(std::move(D));
  }

  if (States.empty()) {
    Err = "specification declares no states";
    return false;
  }
  std::map<std::string, uint32_t> StateIds;
  for (const SpecState &D : States) {
    if (!StateIds.emplace(D.Name, static_cast<uint32_t>(StateIds.size()))
             .second) {
      Err = "duplicate state '" + D.Name + "'";
      return false;
    }
  }
  std::vector<std::string> Symbols;
  std::vector<std::vector<std::string>> SymParams;
  auto symbolOf = [&](const std::string &Name,
                      const std::vector<std::string> &Params,
                      std::string &E) -> std::optional<uint32_t> {
    for (uint32_t I = 0, N = static_cast<uint32_t>(Symbols.size()); I != N;
         ++I)
      if (Symbols[I] == Name) {
        if (SymParams[I] != Params) {
          E = "symbol '" + Name + "' used with inconsistent parameters";
          return std::nullopt;
        }
        return I;
      }
    Symbols.push_back(Name);
    SymParams.push_back(Params);
    return static_cast<uint32_t>(Symbols.size() - 1);
  };
  for (const std::string &S : ExtraSymbols)
    if (!symbolOf(S, {}, Err))
      return false;

  uint32_t N = static_cast<uint32_t>(States.size());
  bool HaveStart = false, HaveAccept = false;
  uint32_t Start = 0;
  // (state, symbol) -> target; InvalidId = unset, routed to the
  // implicit dead sink like DfaBuilder::build.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> Trans;
  for (const SpecState &D : States) {
    uint32_t S = StateIds[D.Name];
    if (D.IsStart) {
      if (HaveStart) {
        Err = "multiple start states ('" + D.Name + "')";
        return false;
      }
      Start = S;
      HaveStart = true;
    }
    HaveAccept |= D.IsAccept;
    for (const SpecArm &A : D.Arms) {
      auto TIt = StateIds.find(A.Target);
      if (TIt == StateIds.end()) {
        Err = "unknown target state '" + A.Target + "'";
        return false;
      }
      auto Sym = symbolOf(A.Symbol, A.Params, Err);
      if (!Sym)
        return false;
      if (!Trans.emplace(std::make_pair(S, *Sym), TIt->second).second) {
        Err = "duplicate transition on '" + A.Symbol + "' from state '" +
              D.Name + "'";
        return false;
      }
    }
  }
  if (!HaveStart) {
    Err = "no start state declared";
    return false;
  }
  if (!HaveAccept) {
    Err = "no accept state declared";
    return false;
  }

  uint32_t NumSyms = static_cast<uint32_t>(Symbols.size());
  bool NeedDead = Trans.size() != static_cast<size_t>(N) * NumSyms;
  uint32_t Total = N + (NeedDead ? 1 : 0);
  Out.NumStates = Total;
  Out.Start = Start;
  Out.Symbols = Symbols;
  Out.Accepting.assign(Total, 0);
  for (const SpecState &D : States)
    if (D.IsAccept)
      Out.Accepting[StateIds[D.Name]] = 1;
  Out.Trans.assign(static_cast<size_t>(Total) * NumSyms, N /*dead*/);
  for (const auto &[Key, To] : Trans)
    Out.Trans[static_cast<size_t>(Key.first) * NumSyms + Key.second] = To;
  return true;
}

//===----------------------------------------------------------------------===//
// Regex mirror: Thompson NFA + subset construction
//===----------------------------------------------------------------------===//

struct OwnNfa {
  std::vector<std::vector<uint32_t>> Eps;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> Sym; // (symbol, to)
  std::vector<std::string> Symbols;

  uint32_t addState() {
    Eps.emplace_back();
    Sym.emplace_back();
    return static_cast<uint32_t>(Eps.size() - 1);
  }
  uint32_t symbolOf(const std::string &Name) {
    for (uint32_t I = 0, N = static_cast<uint32_t>(Symbols.size()); I != N;
         ++I)
      if (Symbols[I] == Name)
        return I;
    Symbols.push_back(Name);
    return static_cast<uint32_t>(Symbols.size() - 1);
  }
};

/// Recursive-descent Thompson builder mirroring the regex grammar:
/// alt ::= cat ('|' cat)*, cat ::= rep+, rep ::= atom ('*'|'+'|'?')*,
/// atom ::= IDENT | '(' alt ')' | '%eps'. Same hostile-input caps.
class RegexCompiler {
public:
  RegexCompiler(const std::string &In, OwnNfa &N) : In(In), N(N) {}

  bool compile(uint32_t &Start, uint32_t &Accept, std::string &E) {
    if (In.size() > (1u << 20)) {
      E = "regex pattern too large";
      return false;
    }
    auto Frag = parseAlt(E);
    if (!Frag)
      return false;
    skipSpace();
    if (Pos != In.size()) {
      E = "unexpected trailing input";
      return false;
    }
    Start = Frag->first;
    Accept = Frag->second;
    return true;
  }

private:
  using Frag = std::pair<uint32_t, uint32_t>;

  void skipSpace() {
    while (Pos < In.size() &&
           std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }
  bool atAtomStart() {
    skipSpace();
    if (Pos >= In.size())
      return false;
    char C = In[Pos];
    return C == '(' || C == '%' || C == '_' ||
           std::isalnum(static_cast<unsigned char>(C));
  }

  std::optional<Frag> parseAlt(std::string &E) {
    auto L = parseCat(E);
    if (!L)
      return std::nullopt;
    skipSpace();
    while (Pos < In.size() && In[Pos] == '|') {
      ++Pos;
      auto R = parseCat(E);
      if (!R)
        return std::nullopt;
      uint32_t S = N.addState(), A = N.addState();
      N.Eps[S].push_back(L->first);
      N.Eps[S].push_back(R->first);
      N.Eps[L->second].push_back(A);
      N.Eps[R->second].push_back(A);
      L = Frag{S, A};
      skipSpace();
    }
    return L;
  }

  std::optional<Frag> parseCat(std::string &E) {
    auto L = parseRep(E);
    if (!L)
      return std::nullopt;
    while (atAtomStart()) {
      auto R = parseRep(E);
      if (!R)
        return std::nullopt;
      N.Eps[L->second].push_back(R->first);
      L = Frag{L->first, R->second};
    }
    return L;
  }

  std::optional<Frag> parseRep(std::string &E) {
    auto A = parseAtom(E);
    if (!A)
      return std::nullopt;
    skipSpace();
    while (Pos < In.size() &&
           (In[Pos] == '*' || In[Pos] == '+' || In[Pos] == '?')) {
      char Op = In[Pos++];
      uint32_t S = N.addState(), X = N.addState();
      N.Eps[S].push_back(A->first);
      N.Eps[A->second].push_back(X);
      if (Op == '*' || Op == '?')
        N.Eps[S].push_back(X);
      if (Op == '*' || Op == '+')
        N.Eps[A->second].push_back(A->first);
      A = Frag{S, X};
      skipSpace();
    }
    return A;
  }

  std::optional<Frag> parseAtom(std::string &E) {
    skipSpace();
    if (Pos >= In.size()) {
      E = "expected symbol, '(' or '%eps'";
      return std::nullopt;
    }
    char C = In[Pos];
    if (C == '(') {
      if (Depth >= 500) {
        E = "regex nesting too deep";
        return std::nullopt;
      }
      ++Depth;
      ++Pos;
      auto R = parseAlt(E);
      --Depth;
      if (!R)
        return std::nullopt;
      skipSpace();
      if (Pos >= In.size() || In[Pos] != ')') {
        E = "expected ')'";
        return std::nullopt;
      }
      ++Pos;
      return R;
    }
    if (C == '%') {
      if (In.substr(Pos, 4) == "%eps") {
        Pos += 4;
        uint32_t S = N.addState(), A = N.addState();
        N.Eps[S].push_back(A);
        return Frag{S, A};
      }
      E = "unknown escape; only %eps is recognized";
      return std::nullopt;
    }
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < In.size() &&
             (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
              In[Pos] == '_'))
        ++Pos;
      uint32_t Sym = N.symbolOf(In.substr(Start, Pos - Start));
      uint32_t S = N.addState(), A = N.addState();
      N.Sym[S].emplace_back(Sym, A);
      return Frag{S, A};
    }
    E = "unexpected character";
    return std::nullopt;
  }

  const std::string &In;
  OwnNfa &N;
  size_t Pos = 0;
  unsigned Depth = 0;
};

bool compileRegexMirror(const std::string &Pattern, OwnDfa &Out,
                        std::string &Err) {
  OwnNfa N;
  uint32_t Start = 0, Accept = 0;
  RegexCompiler RC(Pattern, N);
  if (!RC.compile(Start, Accept, Err))
    return false;

  // Subset construction over epsilon closures. The empty subset is the
  // (rejecting) sink, giving a total automaton; no minimization — the
  // equivalence check below is insensitive to state count.
  auto closure = [&](std::vector<uint32_t> Set) {
    std::vector<uint32_t> Work = Set;
    std::set<uint32_t> Seen(Set.begin(), Set.end());
    while (!Work.empty()) {
      uint32_t S = Work.back();
      Work.pop_back();
      for (uint32_t T : N.Eps[S])
        if (Seen.insert(T).second)
          Work.push_back(T);
    }
    return std::vector<uint32_t>(Seen.begin(), Seen.end());
  };

  std::map<std::vector<uint32_t>, uint32_t> Ids;
  std::vector<std::vector<uint32_t>> Sets;
  auto stateOf = [&](std::vector<uint32_t> Set) {
    auto [It, Fresh] = Ids.emplace(Set, static_cast<uint32_t>(Sets.size()));
    if (Fresh)
      Sets.push_back(std::move(Set));
    return It->second;
  };

  uint32_t NumSyms = static_cast<uint32_t>(N.Symbols.size());
  uint32_t S0 = stateOf(closure({Start}));
  Out.Trans.clear();
  for (uint32_t S = 0; S != Sets.size(); ++S) {
    for (uint32_t Y = 0; Y != NumSyms; ++Y) {
      std::vector<uint32_t> Next;
      for (uint32_t Q : Sets[S])
        for (auto [Sym, To] : N.Sym[Q])
          if (Sym == Y)
            Next.push_back(To);
      Out.Trans.push_back(stateOf(closure(std::move(Next))));
    }
  }
  Out.NumStates = static_cast<uint32_t>(Sets.size());
  Out.Start = S0;
  Out.Symbols = N.Symbols;
  Out.Accepting.assign(Out.NumStates, 0);
  for (uint32_t S = 0; S != Out.NumStates; ++S)
    Out.Accepting[S] =
        std::binary_search(Sets[S].begin(), Sets[S].end(), Accept);
  // Trans was built while Sets grew; rows for late-discovered states
  // were appended in the same loop, so the table is already complete
  // and row-major over the final state count.
  return true;
}

//===----------------------------------------------------------------------===//
// .rasc grammar mirror
//===----------------------------------------------------------------------===//

struct ParsedSide {
  uint8_t Kind = KindVar; // NodeKindByte
  uint32_t V = 0, C = 0, Index = 0;
  std::vector<uint32_t> Args;
};

struct ParsedConstraint {
  ParsedSide L, R;
  std::string AnnSym; // empty = identity
};

struct ParsedSystem {
  OwnDfa Lang;
  std::vector<std::string> Vars;                      // id = decl order
  std::vector<std::pair<std::string, uint32_t>> Ctors; // name, arity
  std::vector<ParsedConstraint> Constraints;
  std::set<uint32_t> Retracted;
};

class RascParser {
public:
  RascParser(const std::string &In, ParsedSystem &P) : In(In), P(P) {}

  bool parse(std::string &E) {
    if (!parseLanguage(E))
      return false;
    while (true) {
      skipTrivia();
      if (Pos >= In.size())
        return true;
      if (!parseStatement(E))
        return false;
    }
  }

private:
  void skipTrivia() {
    while (Pos < In.size()) {
      char C = In[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '#') {
        while (Pos < In.size() && In[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }
  bool peekIs(char C) {
    skipTrivia();
    return Pos < In.size() && In[Pos] == C;
  }
  bool eat(char C, std::string &E) {
    if (peekIs(C)) {
      ++Pos;
      return true;
    }
    E = std::string("expected '") + C + "'";
    return false;
  }
  std::optional<std::string> ident(std::string &E) {
    skipTrivia();
    if (Pos >= In.size() ||
        !(std::isalpha(static_cast<unsigned char>(In[Pos])) ||
          In[Pos] == '_')) {
      E = "expected identifier";
      return std::nullopt;
    }
    size_t Start = Pos;
    while (Pos < In.size() &&
           (std::isalnum(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '_'))
      ++Pos;
    return In.substr(Start, Pos - Start);
  }
  std::optional<unsigned> number(std::string &E) {
    skipTrivia();
    if (Pos >= In.size() ||
        !std::isdigit(static_cast<unsigned char>(In[Pos]))) {
      E = "expected number";
      return std::nullopt;
    }
    constexpr unsigned Max = 1u << 20;
    unsigned N = 0;
    while (Pos < In.size() &&
           std::isdigit(static_cast<unsigned char>(In[Pos]))) {
      N = N * 10 + static_cast<unsigned>(In[Pos++] - '0');
      if (N > Max) {
        E = "number too large";
        return std::nullopt;
      }
    }
    return N;
  }

  bool parseLanguage(std::string &E) {
    auto Kw = ident(E);
    if (!Kw || *Kw != "language") {
      E = "constraint files start with a 'language' block";
      return false;
    }
    skipTrivia();
    if (peekIs('{')) {
      ++Pos;
      size_t Start = Pos;
      int Depth = 1;
      while (Pos < In.size() && Depth != 0) {
        if (In[Pos] == '{')
          ++Depth;
        else if (In[Pos] == '}')
          --Depth;
        ++Pos;
      }
      if (Depth != 0) {
        E = "unterminated language block";
        return false;
      }
      std::string Text = In.substr(Start, Pos - 1 - Start);
      return parseSpecText(Text, P.Lang, E);
    }
    auto Sub = ident(E);
    if (!Sub || *Sub != "regex") {
      E = "expected '{' or 'regex' after 'language'";
      return false;
    }
    skipTrivia();
    if (Pos >= In.size() || In[Pos] != '"') {
      E = "expected a quoted regex";
      return false;
    }
    ++Pos;
    size_t Start = Pos;
    while (Pos < In.size() && In[Pos] != '"')
      ++Pos;
    if (Pos >= In.size()) {
      E = "unterminated regex string";
      return false;
    }
    std::string Pattern = In.substr(Start, Pos - Start);
    ++Pos;
    return compileRegexMirror(Pattern, P.Lang, E) && eat(';', E);
  }

  std::optional<uint32_t> varByName(const std::string &Name) {
    for (uint32_t I = 0, N = static_cast<uint32_t>(P.Vars.size()); I != N;
         ++I)
      if (P.Vars[I] == Name)
        return I;
    return std::nullopt;
  }
  std::optional<uint32_t> ctorByName(const std::string &Name) {
    for (uint32_t I = 0, N = static_cast<uint32_t>(P.Ctors.size()); I != N;
         ++I)
      if (P.Ctors[I].first == Name)
        return I;
    return std::nullopt;
  }
  bool isDeclared(const std::string &Name) {
    return varByName(Name) || ctorByName(Name);
  }

  std::optional<ParsedSide> parseSide(std::string &E) {
    auto Name = ident(E);
    if (!Name)
      return std::nullopt;
    ParsedSide S;
    if (auto V = varByName(*Name)) {
      S.Kind = KindVar;
      S.V = *V;
      return S;
    }
    auto C = ctorByName(*Name);
    if (!C) {
      E = "unknown constructor '" + *Name + "'";
      return std::nullopt;
    }
    S.Kind = KindCons;
    S.C = *C;
    if (peekIs('(')) {
      ++Pos;
      while (true) {
        auto ArgName = ident(E);
        if (!ArgName)
          return std::nullopt;
        auto V = varByName(*ArgName);
        if (!V) {
          E = "unknown variable '" + *ArgName + "'";
          return std::nullopt;
        }
        S.Args.push_back(*V);
        if (peekIs(',')) {
          ++Pos;
          continue;
        }
        break;
      }
      if (!eat(')', E))
        return std::nullopt;
    }
    if (S.Args.size() != P.Ctors[*C].second) {
      E = "constructor '" + *Name + "' arity mismatch";
      return std::nullopt;
    }
    return S;
  }

  /// "[sym]" or nothing (identity). Returns false on error; sets Sym.
  bool parseAnnotation(std::string &Sym, std::string &E) {
    Sym.clear();
    if (!peekIs('['))
      return true;
    ++Pos;
    auto Name = ident(E);
    if (!Name)
      return false;
    bool Known = false;
    for (const std::string &S : P.Lang.Symbols)
      Known |= S == *Name;
    if (!Known) {
      E = "'" + *Name + "' is not a symbol of the annotation language";
      return false;
    }
    Sym = *Name;
    return eat(']', E);
  }

  bool expectLeq(std::string &E) {
    skipTrivia();
    if (Pos + 1 < In.size() && In[Pos] == '<' && In[Pos + 1] == '=') {
      Pos += 2;
      return true;
    }
    E = "expected '<='";
    return false;
  }

  bool parseStatement(std::string &E) {
    size_t Save = Pos;
    auto Kw = ident(E);
    if (!Kw)
      return false;

    if (*Kw == "var") {
      while (true) {
        auto Name = ident(E);
        if (!Name)
          return false;
        if (isDeclared(*Name)) {
          E = "'" + *Name + "' is already declared";
          return false;
        }
        P.Vars.push_back(*Name);
        if (peekIs(';')) {
          ++Pos;
          return true;
        }
      }
    }
    if (*Kw == "constant" || *Kw == "constructor") {
      auto Name = ident(E);
      if (!Name)
        return false;
      if (isDeclared(*Name)) {
        E = "'" + *Name + "' is already declared";
        return false;
      }
      uint32_t Arity = 0;
      if (*Kw == "constructor") {
        auto N = number(E);
        if (!N)
          return false;
        if (*N > 1024) {
          E = "constructor arity too large";
          return false;
        }
        Arity = *N;
      }
      P.Ctors.emplace_back(*Name, Arity);
      return eat(';', E);
    }
    if (*Kw == "proj") {
      auto ConsName = ident(E);
      if (!ConsName)
        return false;
      auto C = ctorByName(*ConsName);
      if (!C) {
        E = "unknown constructor '" + *ConsName + "'";
        return false;
      }
      auto Index = number(E);
      if (!Index)
        return false;
      if (*Index < 1 || *Index > P.Ctors[*C].second) {
        E = "projection index out of range";
        return false;
      }
      auto SubjName = ident(E);
      if (!SubjName)
        return false;
      auto Subject = varByName(*SubjName);
      if (!Subject) {
        E = "unknown variable '" + *SubjName + "'";
        return false;
      }
      if (!expectLeq(E))
        return false;
      ParsedConstraint K;
      if (!parseAnnotation(K.AnnSym, E))
        return false;
      auto TargetName = ident(E);
      if (!TargetName)
        return false;
      auto Target = varByName(*TargetName);
      if (!Target) {
        E = "unknown variable '" + *TargetName + "'";
        return false;
      }
      K.L.Kind = KindProj;
      K.L.C = *C;
      K.L.Index = *Index - 1;
      K.L.V = *Subject;
      K.R.Kind = KindVar;
      K.R.V = *Target;
      P.Constraints.push_back(std::move(K));
      return eat(';', E);
    }
    if (*Kw == "query") {
      auto Next = ident(E);
      if (!Next)
        return false;
      if (*Next == "pn") {
        Next = ident(E);
        if (!Next)
          return false;
      }
      auto C = ctorByName(*Next);
      if (!C) {
        E = "unknown constructor '" + *Next + "'";
        return false;
      }
      if (P.Ctors[*C].second != 0) {
        E = "queries are about constants";
        return false;
      }
      auto InKw = ident(E);
      if (!InKw || *InKw != "in") {
        E = "expected 'in'";
        return false;
      }
      auto VarName = ident(E);
      if (!VarName)
        return false;
      if (!varByName(*VarName)) {
        E = "unknown variable '" + *VarName + "'";
        return false;
      }
      return eat(';', E);
    }
    if (*Kw == "retract") {
      auto N = number(E);
      if (!N)
        return false;
      if (*N >= P.Constraints.size()) {
        E = "retract: constraint index out of range";
        return false;
      }
      if (!P.Retracted.insert(*N).second) {
        E = "retract: constraint is already retracted";
        return false;
      }
      return eat(';', E);
    }

    // A plain constraint "side <= [ann] side;".
    Pos = Save;
    auto Lhs = parseSide(E);
    if (!Lhs)
      return false;
    if (!expectLeq(E))
      return false;
    ParsedConstraint K;
    if (!parseAnnotation(K.AnnSym, E))
      return false;
    auto Rhs = parseSide(E);
    if (!Rhs)
      return false;
    if (Lhs->Kind == KindCons && Rhs->Kind == KindCons && Lhs->C != Rhs->C) {
      E = "constructor mismatch is trivially inconsistent";
      return false;
    }
    K.L = std::move(*Lhs);
    K.R = std::move(*Rhs);
    P.Constraints.push_back(std::move(K));
    return eat(';', E);
  }

  const std::string &In;
  ParsedSystem &P;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Language equivalence
//===----------------------------------------------------------------------===//

/// BFS over the product of the two total DFAs, symbols aligned by
/// name; the languages differ iff some reachable pair disagrees on
/// acceptance.
bool sameLanguage(const OwnDfa &A, const OwnDfa &B) {
  std::vector<uint32_t> BSym(A.Symbols.size(), InvalidId);
  for (size_t I = 0; I != A.Symbols.size(); ++I)
    for (uint32_t J = 0; J != B.Symbols.size(); ++J)
      if (B.Symbols[J] == A.Symbols[I]) {
        BSym[I] = J;
        break;
      }
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  std::vector<std::pair<uint32_t, uint32_t>> Work;
  Seen.emplace(A.Start, B.Start);
  Work.emplace_back(A.Start, B.Start);
  while (!Work.empty()) {
    auto [SA, SB] = Work.back();
    Work.pop_back();
    if (static_cast<bool>(A.Accepting[SA]) !=
        static_cast<bool>(B.Accepting[SB]))
      return false;
    for (uint32_t Y = 0; Y != A.Symbols.size(); ++Y) {
      auto Next = std::make_pair(A.next(SA, Y), B.next(SB, BSym[Y]));
      if (Seen.insert(Next).second)
        Work.push_back(Next);
    }
  }
  return true;
}

bool sideMatches(const ParsedSide &S, const LogNode &N) {
  if (S.Kind != N.Kind)
    return false;
  switch (S.Kind) {
  case KindVar:
    return N.V == S.V;
  case KindCons:
    return N.C == S.C && N.Args == S.Args;
  default:
    return N.C == S.C && N.Index == S.Index && N.V == S.V;
  }
}

} // namespace

Verdict crossCheckSystem(const LogModel &M, Algebra &Alg,
                         const std::string &SystemPath) {
  (void)Alg;
  std::string Text;
  {
    std::FILE *F = std::fopen(SystemPath.c_str(), "rb");
    if (!F)
      return badFile("cannot open '" + SystemPath + "'");
    char Buf[65536];
    size_t R;
    while ((R = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Text.append(Buf, R);
    std::fclose(F);
  }

  ParsedSystem P;
  {
    std::string Err;
    RascParser RP(Text, P);
    if (!RP.parse(Err))
      return badFile(Err);
  }

  // A .rasc file always defines a regular annotation language; a log
  // over a different domain kind proves some other system.
  if (M.Domain != DomMonoid)
    return mismatch("the log's annotation domain is not the file's "
                    "regular-language monoid");

  // Alphabet by name, both directions, then the language itself.
  for (const std::string &S : P.Lang.Symbols)
    if (std::find(M.Machine.Symbols.begin(), M.Machine.Symbols.end(), S) ==
        M.Machine.Symbols.end())
      return mismatch("the log's machine lacks symbol '" + S + "'");
  for (const std::string &S : M.Machine.Symbols)
    if (std::find(P.Lang.Symbols.begin(), P.Lang.Symbols.end(), S) ==
        P.Lang.Symbols.end())
      return mismatch("the log's machine has extra symbol '" + S + "'");
  if (!sameLanguage(P.Lang, M.Machine))
    return mismatch("the log's embedded machine accepts a different "
                    "annotation language");

  // Declarations the log mentions, by id: declaration order is the
  // solver's id order. The log only defines what derivations touch, so
  // a subset is fine; a divergent entry is not.
  for (const auto &[Id, Def] : M.Ctors) {
    if (Id >= P.Ctors.size())
      return mismatch("constructor id " + std::to_string(Id) +
                      " beyond the file's declarations");
    if (Def.first != P.Ctors[Id].first || Def.second != P.Ctors[Id].second)
      return mismatch("constructor " + std::to_string(Id) +
                      " differs from the file's declaration");
  }
  for (const auto &[Id, Name] : M.Vars) {
    if (Id >= P.Vars.size())
      return mismatch("variable id " + std::to_string(Id) +
                      " beyond the file's declarations");
    if (Name != P.Vars[Id])
      return mismatch("variable " + std::to_string(Id) +
                      " named '" + Name + "' in the log, '" + P.Vars[Id] +
                      "' in the file");
  }

  // The constraint stream: count, retraction pattern, and each
  // record's original shape and annotation.
  uint64_t Ingested = M.Statuses.back().Ingested;
  if (Ingested != P.Constraints.size())
    return mismatch("the log ingested " + std::to_string(Ingested) +
                    " constraints, the file declares " +
                    std::to_string(P.Constraints.size()));
  std::unordered_map<uint32_t, const LogConstraint *> ByIdx;
  for (const LogConstraint &K : M.Constraints)
    ByIdx.emplace(K.Idx, &K);
  std::unordered_map<uint32_t, const LogNode *> Nodes;
  for (const auto &[Id, N] : M.Nodes)
    Nodes.emplace(Id, &N);
  std::unordered_map<uint32_t, const LogAnn *> Anns;
  for (const auto &[Id, A] : M.Anns)
    Anns.emplace(Id, &A);

  for (uint32_t I = 0; I != P.Constraints.size(); ++I) {
    bool Retracted = P.Retracted.count(I) != 0;
    auto It = ByIdx.find(I);
    if (Retracted != (It == ByIdx.end()))
      return mismatch("constraint " + std::to_string(I) +
                      (Retracted ? " is retracted in the file but recorded"
                                 : " is missing from the log"));
    if (Retracted)
      continue;
    const ParsedConstraint &PK = P.Constraints[I];
    const LogConstraint &K = *It->second;
    if (!sideMatches(PK.L, *Nodes.at(K.OrigL)) ||
        !sideMatches(PK.R, *Nodes.at(K.OrigR)))
      return mismatch("constraint " + std::to_string(I) +
                      " differs structurally from the file's statement");
    // Annotation: identity, or the symbol's transition column of the
    // log's own machine (whose language the file was just shown to
    // define).
    const LogAnn &A = *Anns.at(K.Ann);
    std::vector<uint32_t> Expect(M.Machine.NumStates);
    if (PK.AnnSym.empty()) {
      for (uint32_t S = 0; S != M.Machine.NumStates; ++S)
        Expect[S] = S;
    } else {
      auto SymIt = std::find(M.Machine.Symbols.begin(),
                             M.Machine.Symbols.end(), PK.AnnSym);
      uint32_t Sym =
          static_cast<uint32_t>(SymIt - M.Machine.Symbols.begin());
      for (uint32_t S = 0; S != M.Machine.NumStates; ++S)
        Expect[S] = M.Machine.next(S, Sym);
    }
    if (A.Table != Expect)
      return mismatch("constraint " + std::to_string(I) +
                      " carries a different annotation than the file's "
                      "statement");
  }
  return Verdict::ok();
}

} // namespace rasccheck
