//===- check/Internal.h - Checker internals ---------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal interfaces of the standalone checker: the little-endian
/// byte cursor and CRC-32 (re-implemented here — the checker must not
/// trust support/Serialize.h), the decoded log model, the annotation
/// algebra evaluated from the header's embedded domain data, and a
/// plain total-DFA struct shared by the log header and the --system
/// re-compilation. Everything lives in namespace rasccheck and
/// includes nothing outside the standard library.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CHECK_INTERNAL_H
#define RASC_CHECK_INTERNAL_H

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace rasccheck {

constexpr uint32_t InvalidId = ~uint32_t(0);

//===----------------------------------------------------------------------===//
// Bytes
//===----------------------------------------------------------------------===//

/// Standard reflected CRC-32 (polynomial 0xEDB88320, zero seed) — the
/// framing checksum of the log format.
uint32_t crc32(const uint8_t *Data, size_t Len);

/// Section tag fourcc, matching the writer's little-endian packing.
constexpr uint32_t tag4(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         (static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8) |
         (static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24);
}

/// Bounds-checked little-endian reader. Reading past the end latches
/// Bad and yields zeros, so record decoders can validate once at the
/// end of each record.
struct Cursor {
  const uint8_t *P = nullptr;
  size_t N = 0;
  size_t Off = 0;
  bool Bad = false;

  Cursor(const uint8_t *P, size_t N) : P(P), N(N) {}

  bool take(void *Out, size_t Len) {
    if (Bad || Len > N - Off || Off > N) {
      Bad = true;
      std::memset(Out, 0, Len);
      return false;
    }
    std::memcpy(Out, P + Off, Len);
    Off += Len;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint8_t B[4] = {};
    take(B, 4);
    return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
           (static_cast<uint32_t>(B[2]) << 16) |
           (static_cast<uint32_t>(B[3]) << 24);
  }
  uint64_t u64() {
    uint64_t Lo = u32(), Hi = u32();
    return Lo | (Hi << 32);
  }
  std::string str(size_t Len) {
    if (Bad || Len > N - Off || Off > N) {
      Bad = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(P + Off), Len);
    Off += Len;
    return S;
  }
  bool atEnd() const { return !Bad && Off == N; }
};

//===----------------------------------------------------------------------===//
// Log model
//===----------------------------------------------------------------------===//

/// Record type bytes of the on-disk format (ProofLog.h, v1).
enum RecType : uint8_t {
  RecAnn = 0x01,
  RecNode = 0x02,
  RecCtor = 0x03,
  RecVarName = 0x04,
  RecConstraint = 0x05,
  RecCollapse = 0x06,
  RecEdge = 0x07,
  RecConflict = 0x08,
  RecFnVar = 0x09,
  RecStatus = 0x0A,
};

/// Rule bytes of EDGE / CONFLICT records.
enum RuleByte : uint8_t {
  RuleSurface = 0,
  RuleTransitive = 1,
  RuleDecompose = 2,
  RuleProjection = 3,
};

/// Node kind bytes (the solver's ExprKind).
enum NodeKindByte : uint8_t {
  KindVar = 0,
  KindCons = 1,
  KindProj = 2,
};

/// A plain total DFA: the header's embedded annotation machine, and
/// the shape the --system path re-compiles specs and regexes into.
struct OwnDfa {
  uint32_t NumStates = 0;
  uint32_t Start = 0;
  std::vector<uint8_t> Accepting;       // NumStates entries
  std::vector<std::string> Symbols;     // symbol names, id order
  std::vector<uint32_t> Trans;          // row-major [S * numSymbols + Sym]

  uint32_t next(uint32_t S, uint32_t Sym) const {
    return Trans[static_cast<size_t>(S) * Symbols.size() + Sym];
  }
};

struct LogPremise {
  uint32_t Src = InvalidId, Dst = InvalidId, Ann = 0;
  bool present() const { return Src != InvalidId; }
};

struct LogEdge {
  uint32_t Src, Dst, Ann;
  uint8_t Rule;
  uint32_t CIdx;
  LogPremise P1, P2;
  bool Conflict;
};

struct LogConstraint {
  uint32_t Idx, OrigL, OrigR, CanL, CanR, Ann;
};

struct LogCollapse {
  uint32_t V, Rep;
};

struct LogFnVar {
  uint32_t From, Fn, To;
  LogPremise P;
};

struct LogStatus {
  uint8_t Code;
  uint64_t Processed, Ingested;
};

struct LogNode {
  uint8_t Kind;
  uint32_t C = 0, Index = 0, V = 0, Alpha = 0;
  std::vector<uint32_t> Args;
};

struct LogAnn {
  std::vector<uint32_t> Table; // monoid: NumStates entries
  uint64_t Gen = 0, Kill = 0;  // gen/kill
};

/// One decoded record in stream order: type plus an index into the
/// per-type vector below. Verification replays the stream so
/// "defined before use" and "premise earlier in the log" are exactly
/// positional.
struct LogItem {
  uint8_t Type;
  uint32_t Index;
};

enum DomainKind : uint8_t { DomTrivial = 0, DomMonoid = 1, DomGenKill = 2 };

struct LogModel {
  bool FilterUseless = false;
  bool CycleElimination = false;
  uint8_t Domain = DomTrivial;
  OwnDfa Machine;     // monoid
  uint32_t GkBits = 0; // gen/kill

  std::vector<LogItem> Stream;
  std::vector<std::pair<uint32_t, LogAnn>> Anns;
  std::vector<std::pair<uint32_t, LogNode>> Nodes;
  std::vector<std::pair<uint32_t, std::pair<std::string, uint32_t>>> Ctors;
  std::vector<std::pair<uint32_t, std::string>> Vars;
  std::vector<LogConstraint> Constraints;
  std::vector<LogCollapse> Collapses;
  std::vector<LogEdge> Edges; // EDGE and CONFLICT records, stream order
  std::vector<LogFnVar> FnVars;
  std::vector<LogStatus> Statuses;

  uint64_t Chunks = 0;
  uint64_t Records = 0;
  /// Bytes past the last chunk whose frame and CRC check out — a torn
  /// tail (crash mid-write) or trailing mutation.
  uint64_t TornBytes = 0;
};

/// Outcome of a checker stage: Code 0 means "keep going".
struct Verdict {
  int Code = 0;
  std::string Message;
  static Verdict ok() { return {}; }
  static Verdict fail(int Code, std::string Msg) { return {Code, std::move(Msg)}; }
};

/// Decodes the file at Path into M. Container-level failures (bad
/// magic, unknown record type, record not ending on its declared
/// boundary) come back as ExitMalformed; an undecodable *tail* is not
/// an error here — it sets M.TornBytes and verification decides.
Verdict parseLogFile(const std::string &Path, LogModel &M);

//===----------------------------------------------------------------------===//
// Annotation algebra
//===----------------------------------------------------------------------===//

/// Semantic annotation values, interned by content so equality is one
/// integer compare. Ids from the log map to value keys; conclusions
/// are recomputed by value, never trusted from interned solver ids.
class Algebra {
public:
  /// Builds the algebra from the header (computes monoid live states).
  explicit Algebra(const LogModel &M);

  uint8_t domain() const { return Dom; }

  /// Interns a monoid state table; returns InvalidId if any entry is
  /// out of state range.
  uint32_t keyOfTable(const std::vector<uint32_t> &Table);
  /// Interns a gen/kill pair; returns InvalidId unless canonical
  /// (disjoint, within the declared bit width).
  uint32_t keyOfMasks(uint64_t Gen, uint64_t Kill);
  /// The trivial domain's single value.
  uint32_t keyTrivial() { return 0; }

  /// Key of the identity element (id state table / empty masks).
  uint32_t identityKey();

  /// Key of "First, then Then" — the value the transitive conclusion
  /// of (a ⊆^First x), (x ⊆^Then b) carries.
  uint32_t compose(uint32_t FirstKey, uint32_t ThenKey);

  /// Mirrors the solver's useless-annotation filter: a monoid element
  /// whose image contains no live state (no extension of any word in
  /// the class reaches acceptance). Always false for trivial and
  /// gen/kill, matching the solver's domain defaults.
  bool isUseless(uint32_t Key) const;

  std::string describe(uint32_t Key) const;

private:
  uint8_t Dom;
  uint32_t NumStates = 0;
  uint64_t Mask = 0;
  std::vector<uint8_t> Live; // monoid, per state
  std::vector<std::vector<uint32_t>> Tables;
  std::map<std::vector<uint32_t>, uint32_t> TableIds;
  std::vector<std::pair<uint64_t, uint64_t>> Pairs;
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> PairIds;
  std::unordered_map<uint64_t, uint32_t> ComposeMemo;
};

/// Verification passes over a decoded log (Verify.cpp). Fills the
/// counters of R and returns the final verdict; R.ExitCode is set by
/// the caller from the verdict and the log's status trailer.
struct VerifyCounters {
  uint64_t Transitive = 0, Decompose = 0, Projection = 0, Surface = 0;
};
Verdict verifyLog(const LogModel &M, Algebra &Alg, VerifyCounters &C,
                  int *StatusExit);

/// --system cross-check (System.cpp): re-parses the .rasc file with
/// the checker's own grammar and compares language, declarations, and
/// constraint stream against the log. Returns ok, ExitMalformed (the
/// checker cannot parse the file), or ExitSystemMismatch.
Verdict crossCheckSystem(const LogModel &M, Algebra &Alg,
                         const std::string &SystemPath);

} // namespace rasccheck

#endif // RASC_CHECK_INTERNAL_H
