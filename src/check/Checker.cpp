//===- check/Checker.cpp - Checker entry point ----------------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "check/Checker.h"
#include "check/Internal.h"

namespace rasccheck {

namespace {

const char *statusName(uint8_t Code) {
  switch (Code) {
  case 0:
    return "solved";
  case 1:
    return "inconsistent";
  case 2:
    return "edge-limit";
  case 3:
    return "step-limit";
  case 4:
    return "deadline";
  case 5:
    return "memory-limit";
  case 6:
    return "cancelled";
  default:
    return "unproven";
  }
}

} // namespace

CheckResult checkProofLog(const CheckOptions &Opts) {
  CheckResult R;
  LogModel M;
  Verdict V = parseLogFile(Opts.LogPath, M);

  R.Records = M.Records;
  R.Chunks = M.Chunks;
  R.Constraints = M.Constraints.size();
  R.Collapses = M.Collapses.size();
  R.FnVarConstraints = M.FnVars.size();
  for (const LogEdge &E : M.Edges)
    ++(E.Conflict ? R.Conflicts : R.Edges);

  if (V.Code) {
    R.ExitCode = V.Code;
    R.Message = V.Message;
    return R;
  }

  Algebra Alg(M);
  VerifyCounters C;
  int StatusExit = ExitMalformed;
  Verdict W = verifyLog(M, Alg, C, &StatusExit);
  R.TransitiveObligations = C.Transitive;
  R.DecomposeObligations = C.Decompose;
  R.ProjectionObligations = C.Projection;
  R.SurfaceObligations = C.Surface;
  if (W.Code) {
    R.ExitCode = W.Code;
    R.Message = W.Message;
    return R;
  }

  if (!Opts.SystemPath.empty()) {
    if (Verdict X = crossCheckSystem(M, Alg, Opts.SystemPath); X.Code) {
      R.ExitCode = X.Code;
      R.Message = X.Message;
      return R;
    }
  }

  R.ExitCode = StatusExit;
  uint8_t Code = M.Statuses.back().Code;
  R.Message = std::string("valid ") +
              (Code > 1 ? "partial proof (" : "proof (") + statusName(Code) +
              "): " + std::to_string(R.Edges) + " edges, " +
              std::to_string(R.Conflicts) + " conflicts, " +
              std::to_string(R.Constraints) + " constraints, " +
              std::to_string(C.Transitive + C.Decompose + C.Projection +
                             C.Surface) +
              " obligations discharged";
  return R;
}

} // namespace rasccheck
