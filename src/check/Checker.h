//===- check/Checker.h - Standalone proof-log checker -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standalone derivation-log checker behind the rasccheck tool
/// (DESIGN.md §12). It validates a proof log streamed by the solver
/// (core/ProofLog.h) from first principles and deliberately shares
/// *zero* code with the solver: its own CRC-32, its own little-endian
/// decoding, its own annotation algebra (monoid state tables, gen/kill
/// masks), its own union-find and SCC computation, and — for the
/// --system cross-check — its own parsers for the .rasc constraint
/// grammar, the automaton-specification language, and the regex
/// frontend. A bug anywhere in src/support, src/automata, or src/core
/// therefore cannot leak into verification; the trusted base is this
/// directory and the C++ standard library.
///
/// What a successful check certifies:
///
///   1. Well-formed container — every chunk frame and CRC checks out,
///      every record decodes exactly, definitions (annotations, nodes,
///      constructors, variable names) precede use and are internally
///      consistent (arities, state ranges, canonical masks), and
///      nothing is defined twice.
///   2. Every derivation justified — each EDGE / CONFLICT record names
///      a closure-rule instance (surface, transitive, decompose,
///      projection) whose premises are *earlier* records and whose
///      conclusion the checker recomputes from the rule and the
///      annotation algebra. Cycle collapses are justified by an SCC of
///      the identity variable-variable constraint graph recomputed
///      here; function-variable constraints by their constructor-edge
///      premise.
///   3. Closedness of the processed prefix — mirroring the paper's
///      closure rules, every consequence of the first
///      ProcessedEdges-many edges (transitive joins at variable nodes,
///      constructor decompositions, projection firings, surface
///      constraints) is accounted for: present as an edge, recorded as
///      a constructor-mismatch conflict, or legitimately dropped by
///      the useless-annotation filter the header declares.
///   4. Status consistency — the log ends with a STATUS trailer;
///      Solved means a drained worklist and no conflicts, Inconsistent
///      means a witnessed constructor mismatch, and interrupt statuses
///      bound the closedness claim to the processed prefix.
///
/// Exit codes (also the CheckResult::ExitCode values) extend the
/// rasctool vocabulary (core/Solver.h statusExitCode and the 20/21
/// snapshot/certification codes) without overlapping it:
///
///   0   valid proof, final status Solved
///   1   valid proof, final status Inconsistent (conflict witnessed)
///   10  valid partial proof, solver stopped at its deadline
///   11  valid partial proof, edge budget exhausted
///   12  valid partial proof, step budget exhausted
///   13  valid partial proof, memory budget exhausted
///   14  valid partial proof, cooperative cancellation
///   22  invalid derivation (well-formed log, broken justification)
///   23  malformed container or input the checker cannot decode
///   24  --system cross-check mismatch (log proves a different system)
///   25  incomplete proof (torn tail, missing trailer, records after
///       the trailer, or a trailer the solver marked Unproven)
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CHECK_CHECKER_H
#define RASC_CHECK_CHECKER_H

#include <cstdint>
#include <string>

namespace rasccheck {

/// Exit codes, see the file comment. 0/1/10..14 mirror the solver's
/// documented statusExitCode mapping; 22..25 are checker verdicts.
enum ExitCode : int {
  ExitSolved = 0,
  ExitInconsistent = 1,
  ExitDeadline = 10,
  ExitEdgeLimit = 11,
  ExitStepLimit = 12,
  ExitMemoryLimit = 13,
  ExitCancelled = 14,
  ExitInvalidDerivation = 22,
  ExitMalformed = 23,
  ExitSystemMismatch = 24,
  ExitIncomplete = 25,
};

struct CheckOptions {
  std::string LogPath;
  /// Optional path to the .rasc constraint file the log claims to
  /// prove. When set, the checker re-parses the file with its own
  /// grammar, re-compiles the annotation language with its own
  /// spec/regex engines, and verifies the log's embedded automaton,
  /// constraint stream, and name tables against it (exit 24 on any
  /// divergence).
  std::string SystemPath;
  bool Verbose = false;
};

struct CheckResult {
  int ExitCode = ExitMalformed;
  /// Human-readable verdict: the first failure, or a summary line.
  std::string Message;

  // Counters over the (decodable prefix of the) log.
  uint64_t Records = 0;
  uint64_t Chunks = 0;
  uint64_t Edges = 0;
  uint64_t Conflicts = 0;
  uint64_t Constraints = 0;
  uint64_t Collapses = 0;
  uint64_t FnVarConstraints = 0;
  uint64_t TransitiveObligations = 0;
  uint64_t DecomposeObligations = 0;
  uint64_t ProjectionObligations = 0;
  uint64_t SurfaceObligations = 0;

  bool ok() const { return ExitCode == ExitSolved || ExitCode == ExitInconsistent; }
};

/// Validates the proof log at Opts.LogPath (and, if set, cross-checks
/// it against Opts.SystemPath). Never throws; every failure mode is an
/// exit code plus message.
CheckResult checkProofLog(const CheckOptions &Opts);

} // namespace rasccheck

#endif // RASC_CHECK_CHECKER_H
