//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool shared by the two parallel
/// solving tiers (DESIGN.md section 8): the batch solver runs whole
/// independent solves as pool jobs, and the frontier-parallel closure
/// runs one round's frontier partitions. Each worker owns a deque;
/// submission round-robins across the deques, a worker pops its own
/// back (LIFO, cache-warm), and an idle worker steals another deque's
/// front (FIFO, the oldest — largest — pending job). Jobs are coarse
/// (a partition scan or an entire solve), so a mutex per deque costs
/// noise compared to the work it guards.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_THREADPOOL_H
#define RASC_SUPPORT_THREADPOOL_H

#include "support/Trace.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rasc {

class ThreadPool {
public:
  /// Spawns \p Threads workers (at least one).
  explicit ThreadPool(unsigned Threads) {
    Queues.resize(Threads ? Threads : 1);
    for (auto &Q : Queues)
      Q = std::make_unique<WorkerQueue>();
    Workers.reserve(Queues.size());
    for (unsigned I = 0; I != Queues.size(); ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(SleepMx);
      Stop = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// What "use all the hardware" resolves to (never zero).
  static unsigned hardwareThreads() {
    unsigned N = std::thread::hardware_concurrency();
    return N ? N : 1;
  }

  /// Enqueues \p Job. Jobs may themselves call run() (a worker
  /// finishing early steals the new work). A job that throws does not
  /// take the pool down: the first exception is captured and rethrown
  /// from the next waitIdle()/waitIdleFor() that observes the drained
  /// pool, every other queued job still runs, and the pool remains
  /// usable afterwards. Later exceptions in the same drain are
  /// dropped (first wins).
  void run(std::function<void()> Job) {
    size_t W = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               Queues.size();
    {
      std::lock_guard<std::mutex> L(Queues[W]->Mx);
      Queues[W]->Jobs.push_back(std::move(Job));
    }
    {
      std::lock_guard<std::mutex> L(SleepMx);
      ++Pending;
    }
    WorkCv.notify_one();
  }

  /// Blocks until every submitted job has finished; rethrows the
  /// first exception any of them threw (see run()).
  void waitIdle() {
    std::unique_lock<std::mutex> L(SleepMx);
    IdleCv.wait(L, [&] { return Pending == 0; });
    if (FirstError) {
      std::exception_ptr E = std::exchange(FirstError, nullptr);
      L.unlock();
      std::rethrow_exception(E);
    }
  }

  /// Invokes F(0), F(1), ..., F(N-1) concurrently: indices 1..N-1 as
  /// pool jobs, F(0) inline on the calling thread, then drains the
  /// pool (rethrowing the first job exception, like waitIdle). The
  /// building block of the closure's parallel phases — the compute
  /// partitions and the owner-partitioned shard merges both fan out
  /// through here. \p F is shared by reference across workers; it
  /// must be safe to invoke concurrently for distinct indices.
  template <typename Fn> void parallelFor(size_t N, Fn &&F) {
    if (N == 0)
      return;
    if (N == 1) {
      F(size_t(0));
      return;
    }
    for (size_t I = 1; I != N; ++I)
      run([&F, I] { F(I); });
    try {
      F(size_t(0));
    } catch (...) {
      // The queued jobs capture F by reference: drain before
      // unwinding past it (a job exception would be dropped in favor
      // of the in-flight one, matching run()'s first-wins contract).
      try {
        waitIdle();
      } catch (...) {
      }
      throw;
    }
    waitIdle();
  }

  /// waitIdle with a timeout; \returns true when the pool drained
  /// (rethrowing a job exception then, like waitIdle). Lets a
  /// supervisor poll external conditions (a user cancel flag, a batch
  /// deadline) while jobs run.
  template <typename Rep, typename Period>
  bool waitIdleFor(std::chrono::duration<Rep, Period> D) {
    std::unique_lock<std::mutex> L(SleepMx);
    bool Drained = IdleCv.wait_for(L, D, [&] { return Pending == 0; });
    if (Drained && FirstError) {
      std::exception_ptr E = std::exchange(FirstError, nullptr);
      L.unlock();
      std::rethrow_exception(E);
    }
    return Drained;
  }

private:
  struct WorkerQueue {
    std::mutex Mx;
    std::deque<std::function<void()>> Jobs;
  };

  bool tryPop(size_t W, bool Owner, std::function<void()> &Out) {
    WorkerQueue &Q = *Queues[W];
    std::lock_guard<std::mutex> L(Q.Mx);
    if (Q.Jobs.empty())
      return false;
    if (Owner) {
      Out = std::move(Q.Jobs.back());
      Q.Jobs.pop_back();
    } else {
      Out = std::move(Q.Jobs.front());
      Q.Jobs.pop_front();
      // A successful non-owner pop IS the steal; args: victim queue.
      if (trace::enabled())
        trace::instant("pool.steal", W);
    }
    return true;
  }

  bool findJob(size_t Self, std::function<void()> &Out) {
    if (tryPop(Self, /*Owner=*/true, Out))
      return true;
    for (size_t I = 1; I != Queues.size(); ++I)
      if (tryPop((Self + I) % Queues.size(), /*Owner=*/false, Out))
        return true;
    return false;
  }

  /// Runs \p Job, converting a thrown exception into a captured
  /// exception_ptr (the caller folds it into FirstError under
  /// SleepMx). Workers never unwind out of the loop.
  static std::exception_ptr runJob(std::function<void()> &Job) {
    try {
      Job();
    } catch (...) {
      return std::current_exception();
    }
    return nullptr;
  }

  void workerLoop(size_t Self) {
    std::function<void()> Job;
    while (true) {
      if (findJob(Self, Job)) {
        std::exception_ptr Err = runJob(Job);
        Job = nullptr; // release captures before sleeping
        std::lock_guard<std::mutex> L(SleepMx);
        if (Err && !FirstError)
          FirstError = std::move(Err);
        if (--Pending == 0)
          IdleCv.notify_all();
        continue;
      }
      std::unique_lock<std::mutex> L(SleepMx);
      // Re-check under the sleep mutex: run() bumps Pending under it
      // before notifying, so a job enqueued between the scan above and
      // this wait is observed here and the wakeup cannot be missed.
      WorkCv.wait(L, [&] { return Stop || Pending != Executing; });
      if (Stop)
        return;
      ++Executing; // reserve: leave the wait so the scan can run
      L.unlock();
      bool Found = findJob(Self, Job);
      std::exception_ptr Err = Found ? runJob(Job) : nullptr;
      Job = nullptr;
      L.lock();
      if (Err && !FirstError)
        FirstError = std::move(Err);
      --Executing;
      if (Found && --Pending == 0)
        IdleCv.notify_all();
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;
  std::atomic<size_t> NextQueue{0};

  std::mutex SleepMx;
  std::condition_variable WorkCv, IdleCv;
  uint64_t Pending = 0;   // submitted, not yet finished
  uint64_t Executing = 0; // claimed by a woken worker (see workerLoop)
  bool Stop = false;
  std::exception_ptr FirstError; // first job exception of this drain
};

} // namespace rasc

#endif // RASC_SUPPORT_THREADPOOL_H
