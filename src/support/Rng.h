//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64) used by the synthetic
/// workload generators and the property tests. We avoid <random> engines
/// so that generated workloads are bit-identical across platforms and
/// standard library versions.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_RNG_H
#define RASC_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace rasc {

/// splitmix64: passes BigCrush, two multiplies and three xors per draw.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// \returns the next 64 random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (~Bound + 1) % Bound; // == 2^64 mod Bound
    while (true) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// \returns a uniform integer in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "bad range");
    return Lo + below(Hi - Lo + 1);
  }

  /// \returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "zero denominator");
    return below(Den) < Num;
  }

private:
  uint64_t State;
};

} // namespace rasc

#endif // RASC_SUPPORT_RNG_H
