//===- support/Adjacency.h - Chunked SoA adjacency lists --------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only per-node adjacency lists of (peer, annotation) pairs in
/// structure-of-arrays layout: parallel uint32 arenas carved into
/// fixed-size chunks, with per-node chunk chains. Compared to the
/// vector-of-vector-of-pairs it replaces in the solver, this keeps
/// entries of one list in runs of ChunkCap without a per-node heap
/// allocation, and appends during iteration never invalidate a cursor
/// (cursors hold chunk indices, not pointers, and chunk links are
/// immutable once written).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_ADJACENCY_H
#define RASC_SUPPORT_ADJACENCY_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace rasc {

/// Per-node append-only lists of (peer, ann) uint32 pairs.
class AdjacencyLists {
  static constexpr uint32_t InvalidChunk = ~uint32_t(0);

public:
  /// Entries per chunk: one 64-byte cache line holds a chunk's peer
  /// array and its parallel ann array, so walking a list touches one
  /// line per ChunkCap entries. Large enough that chain-walking is
  /// rare for the fat nodes the closure produces, small enough that
  /// 1-degree nodes don't waste much arena.
  static constexpr uint32_t ChunkCap = 8;

  /// One cache line: the peer array and its parallel ann array.
  struct alignas(64) Chunk {
    uint32_t Peers[ChunkCap];
    uint32_t Anns[ChunkCap];
  };

  size_t numNodes() const { return Nodes.size(); }

  /// Grows the node table to at least \p N nodes.
  void ensureNodes(size_t N) {
    if (Nodes.size() < N)
      Nodes.resize(N);
  }

  uint32_t degree(uint32_t Node) const {
    assert(Node < Nodes.size() && "node out of range");
    return Nodes[Node].Size;
  }

  void append(uint32_t Node, uint32_t Peer, uint32_t Ann) {
    assert(Node < Nodes.size() && "node out of range");
    NodeRef &NR = Nodes[Node];
    uint32_t Off = NR.Size % ChunkCap;
    if (Off == 0) {
      uint32_t C = static_cast<uint32_t>(Chunks.size());
      Chunks.emplace_back();
      NextChunk.push_back(InvalidChunk);
      if (NR.Head == InvalidChunk)
        NR.Head = C;
      else
        NextChunk[NR.Tail] = C;
      NR.Tail = C;
    }
    Chunk &C = Chunks[NR.Tail];
    C.Peers[Off] = Peer;
    C.Anns[Off] = Ann;
    ++NR.Size;
  }

  /// Calls F(Ch, N) for each chunk covering the first \p Limit entries
  /// of a node's list, with the chunk copied to the stack (N <=
  /// ChunkCap valid entries). Chunk granularity lets callers run a
  /// prefetch pass over a whole chunk before acting on its entries.
  /// Safe under append() to any node from inside \p F (the solver's
  /// closure appends while iterating a degree snapshot): entries past
  /// the snapshot are not visited, the stack copy is immune to arena
  /// reallocation, and a chunk's link is read only after the chunk's
  /// entries are exhausted (it is immutable by then — only a tail
  /// chunk's link can still change, and the snapshot bound stops
  /// iteration inside the tail).
  template <typename Fn>
  void forEachChunks(uint32_t Node, uint32_t Limit, Fn &&F) const {
    assert(Node < Nodes.size() && Limit <= Nodes[Node].Size &&
           "iteration bound exceeds list");
    uint32_t Cur = Nodes[Node].Head;
    uint32_t Left = Limit;
    while (Left != 0) {
      Chunk Ch = Chunks[Cur]; // one cache line onto the stack
      uint32_t N = Left < ChunkCap ? Left : ChunkCap;
      F(static_cast<const Chunk &>(Ch), N);
      Left -= N;
      if (Left != 0)
        Cur = NextChunk[Cur]; // fresh load: F may have reallocated
    }
  }

  /// Calls F(Peer, Ann) for the first \p Limit entries of a node's
  /// list; same append-safety as forEachChunks.
  template <typename Fn>
  void forEach(uint32_t Node, uint32_t Limit, Fn &&F) const {
    forEachChunks(Node, Limit, [&](const Chunk &Ch, uint32_t N) {
      for (uint32_t I = 0; I != N; ++I)
        F(Ch.Peers[I], Ch.Anns[I]);
    });
  }

  /// forEach over the entries present at call time.
  template <typename Fn> void forEach(uint32_t Node, Fn &&F) const {
    forEach(Node, degree(Node), static_cast<Fn &&>(F));
  }

  /// Empties every list and returns all chunks to the arena, keeping
  /// the node table size and every capacity. The incremental solver
  /// rebuilds adjacency from the compacted edge arena after a
  /// retraction; reusing the arenas avoids re-paying their growth, and
  /// memoryBytes() (capacity-based) is unchanged.
  void clear() {
    std::fill(Nodes.begin(), Nodes.end(), NodeRef{});
    Chunks.clear();
    NextChunk.clear();
  }

  /// Heap bytes held (for the solver's approximate memory budget).
  size_t memoryBytes() const {
    return Nodes.capacity() * sizeof(NodeRef) +
           Chunks.capacity() * sizeof(Chunk) +
           NextChunk.capacity() * sizeof(uint32_t);
  }

private:
  struct NodeRef {
    uint32_t Head = InvalidChunk;
    uint32_t Tail = InvalidChunk;
    uint32_t Size = 0;
  };

  std::vector<NodeRef> Nodes;
  std::vector<Chunk> Chunks;
  std::vector<uint32_t> NextChunk; // per chunk; immutable once non-invalid
};

} // namespace rasc

#endif // RASC_SUPPORT_ADJACENCY_H
