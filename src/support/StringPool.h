//===- support/StringPool.h - String interner -------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense 32-bit ids. Symbol alphabets, constructor
/// names, variable names, and parametric-annotation labels all go
/// through a pool so the hot paths deal only in integers.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_STRINGPOOL_H
#define RASC_SUPPORT_STRINGPOOL_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rasc {

/// Bidirectional string <-> dense id map. Ids are assigned in insertion
/// order starting at 0 and are stable for the pool's lifetime.
class StringPool {
public:
  static constexpr uint32_t InvalidId = ~uint32_t(0);

  /// Interns \p S, returning its id (allocating a new one if needed).
  uint32_t intern(std::string_view S) {
    auto It = Ids.find(std::string(S));
    if (It != Ids.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.emplace_back(S);
    Ids.emplace(Strings.back(), Id);
    return Id;
  }

  /// \returns the id of \p S if already interned, InvalidId otherwise.
  uint32_t lookup(std::string_view S) const {
    auto It = Ids.find(std::string(S));
    return It == Ids.end() ? InvalidId : It->second;
  }

  /// \returns the string for \p Id.
  const std::string &str(uint32_t Id) const {
    assert(Id < Strings.size() && "invalid string id");
    return Strings[Id];
  }

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Ids;
};

} // namespace rasc

#endif // RASC_SUPPORT_STRINGPOOL_H
