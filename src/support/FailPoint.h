//===- support/FailPoint.h - Fault-injection points -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small failpoint facility for fault-injection tests: code under
/// test consults named points, and a test arms a point to trip after a
/// chosen number of hits — forcing budget exhaustion, cancellation, or
/// allocation failure at a deterministic step (e.g. the Nth fresh edge
/// insert of a solve). The facility is always compiled in; when no
/// point is armed the only cost at a consult site is one relaxed
/// atomic load and a predictable branch, which is why call sites must
/// guard with armedAny() before calling hit().
///
/// Counters are global (per process). Tests that arm points should
/// disarmAll() when done; gtest fixtures in this repo do so in
/// SetUp/TearDown.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_FAILPOINT_H
#define RASC_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>

namespace rasc {
namespace failpoints {

enum class Point : unsigned {
  /// Trips in the solver's fresh-edge insert; the solver reports it as
  /// Status::MemoryLimit (a simulated allocation failure).
  SolverEdgeInsert,
  /// Trips in the solver's amortized governance check; reported as
  /// Status::Deadline (a simulated expired wall clock, deterministic
  /// where a real clock is not).
  SolverDeadline,
  /// Trips in the solver's amortized governance check; reported as
  /// Status::Cancelled.
  SolverCancel,
  /// I/O faults for the snapshot subsystem (support/Serialize.h).
  /// TornWrite: the atomic snapshot commit writes only a prefix of the
  /// payload but still renames the temp file into place — simulating a
  /// kernel/filesystem crash that persisted the rename before the
  /// data. The resulting file must be rejected at load.
  TornWrite,
  /// ShortRead: the snapshot reader sees a truncated file even though
  /// the on-disk bytes are complete (a short read / torn page on the
  /// read side). The load must be rejected.
  ShortRead,
  /// FsyncFail: the commit's fsync "fails"; the commit aborts, removes
  /// its temp file, and reports a Diag — the previous snapshot at the
  /// destination path must be left intact.
  FsyncFail,
  /// CrashAfterRename: consulted by the solver right after a periodic
  /// checkpoint commits; trips a simulated SIGKILL (the solve
  /// interrupts and the in-memory state is meant to be discarded) with
  /// a *valid* snapshot on disk — the kill-and-recover tests restore
  /// from it.
  CrashAfterRename,
  /// Socket faults for the solve service (src/service/Protocol.cpp).
  /// ServiceShortWrite: a framed response write transmits only a prefix
  /// of the frame and then fails — simulating a peer that disappeared
  /// mid-write. The session must close with a structured error path
  /// (never an abort), and the daemon must keep serving.
  ServiceShortWrite,
  /// ServiceConnReset: a framed read observes a connection reset even
  /// though the peer is healthy (injected ECONNRESET). The session
  /// must be torn down cleanly without affecting its neighbors.
  ServiceConnReset,
  /// ServiceAcceptFail: the daemon's accept path fails after the
  /// kernel handed over a connection (resource exhaustion at accept
  /// time). The connection is dropped, a counter records it, and the
  /// accept loop must keep admitting later connections.
  ServiceAcceptFail,
  NumPoints,
};

namespace detail {
extern std::atomic<unsigned> ArmedCount;
extern std::atomic<int64_t> Remaining[static_cast<unsigned>(Point::NumPoints)];
} // namespace detail

/// True if any point is armed. Call sites use this as the cheap guard
/// so disarmed builds pay one relaxed load.
inline bool armedAny() {
  return detail::ArmedCount.load(std::memory_order_relaxed) != 0;
}

/// Arms \p P to trip on the (\p AfterHits + 1)-th hit() from now (0
/// trips the very next hit). Re-arming resets the countdown.
void arm(Point P, uint64_t AfterHits);

/// Disarms \p P; pending countdown is discarded.
void disarm(Point P);

/// Disarms every point.
void disarmAll();

/// Counts one hit of \p P. \returns true exactly once per arming: on
/// the hit that exhausts the countdown. Unarmed points never trip.
bool hit(Point P);

/// Scoped arming: arms \p P for the lifetime of the object and disarms
/// it on scope exit, so a test that returns early (or a failing
/// ASSERT) cannot leak an armed point into later cases. Counters are
/// process-global, so the guard is not reentrant per point.
class ScopedFailPoint {
public:
  ScopedFailPoint(Point P, uint64_t AfterHits) : P(P) { arm(P, AfterHits); }
  ~ScopedFailPoint() { disarm(P); }
  ScopedFailPoint(const ScopedFailPoint &) = delete;
  ScopedFailPoint &operator=(const ScopedFailPoint &) = delete;

private:
  Point P;
};

} // namespace failpoints
} // namespace rasc

#endif // RASC_SUPPORT_FAILPOINT_H
