//===- support/DynamicBitset.h - Growable bitset ----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple dynamically sized bitset. Used for DFA accept sets, subset
/// construction, reachability marks, and gen/kill vectors. The size is
/// fixed at construction (or by resize) and all operations assert
/// compatible sizes.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_DYNAMICBITSET_H
#define RASC_SUPPORT_DYNAMICBITSET_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace rasc {

/// Fixed-width (per instance) bitset with the usual boolean-algebra
/// operations. Bits beyond the logical size are kept zero so that
/// equality and hashing are well defined.
class DynamicBitset {
public:
  DynamicBitset() = default;

  explicit DynamicBitset(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  size_t size() const { return NumBits; }

  bool empty() const { return NumBits == 0; }

  /// Grows or shrinks the bitset; new bits are zero.
  void resize(size_t NewBits) {
    NumBits = NewBits;
    Words.resize((NewBits + 63) / 64, 0);
    clearPadding();
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= (uint64_t(1) << (I % 64));
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Sets every bit.
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearPadding();
  }

  /// Clears every bit.
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// \returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  bool any() const { return !none(); }

  /// \returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// \returns the index of the first set bit, or size() if none.
  size_t findFirst() const { return findNext(0); }

  /// \returns the index of the first set bit >= \p From, or size().
  size_t findNext(size_t From) const {
    if (From >= NumBits)
      return NumBits;
    size_t WordIdx = From / 64;
    uint64_t W = Words[WordIdx] & (~uint64_t(0) << (From % 64));
    while (true) {
      if (W)
        return WordIdx * 64 +
               static_cast<size_t>(__builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return NumBits;
      W = Words[WordIdx];
    }
  }

  DynamicBitset &operator|=(const DynamicBitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= O.Words[I];
    return *this;
  }

  DynamicBitset &operator&=(const DynamicBitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= O.Words[I];
    return *this;
  }

  /// Removes every bit set in \p O.
  DynamicBitset &subtract(const DynamicBitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~O.Words[I];
    return *this;
  }

  /// \returns true if this and \p O share a set bit.
  bool intersects(const DynamicBitset &O) const {
    assert(NumBits == O.NumBits && "size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & O.Words[I])
        return true;
    return false;
  }

  bool operator==(const DynamicBitset &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }

  bool operator!=(const DynamicBitset &O) const { return !(*this == O); }

  uint64_t hash() const {
    return hashRange(Words.begin(), Words.end(),
                     static_cast<uint64_t>(NumBits));
  }

private:
  /// Zeroes the unused high bits of the last word.
  void clearPadding() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

/// Hash functor so DynamicBitset can key unordered containers.
struct BitsetHash {
  size_t operator()(const DynamicBitset &B) const {
    return static_cast<size_t>(B.hash());
  }
};

} // namespace rasc

#endif // RASC_SUPPORT_DYNAMICBITSET_H
