//===- support/Trace.cpp - Structured event tracing -----------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace rasc {
namespace trace {

std::atomic<bool> detail::Enabled{false};

namespace {

/// One single-writer ring. The owning thread stores events and
/// advances Head with a release store; readers load Head with acquire
/// and see fully written slots for every index below it. Readers only
/// run when the owner is quiescent (see header contract), so slots in
/// [Head - Cap, Head) are stable while being copied.
struct Ring {
  explicit Ring(size_t Cap, uint64_t Tid)
      : Slots(Cap), Mask(Cap - 1), Tid(Tid) {}

  void push(const Event &E) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    Slots[H & Mask] = E;
    Head.store(H + 1, std::memory_order_release);
  }

  std::vector<Event> Slots;
  const uint64_t Mask;
  const uint64_t Tid;
  std::atomic<uint64_t> Head{0};
};

struct Registry {
  std::mutex M;
  std::vector<std::shared_ptr<Ring>> Rings;
  size_t Capacity = size_t{1} << 15;
  uint64_t NextTid = 1;
};

Registry &registry() {
  static Registry *R = new Registry(); // leaked: rings must outlive
                                       // late-exiting threads
  return *R;
}

std::chrono::steady_clock::time_point &epoch() {
  static std::chrono::steady_clock::time_point E =
      std::chrono::steady_clock::now();
  return E;
}

size_t roundUpPow2(size_t V) {
  size_t P = 1;
  while (P < V && P < (size_t{1} << 30))
    P <<= 1;
  return P;
}

/// The calling thread's ring; registered on first use. The
/// thread_local holds a shared_ptr so the registry's copy keeps the
/// ring (and its recorded events) alive after the thread exits.
Ring &myRing() {
  thread_local std::shared_ptr<Ring> R = [] {
    Registry &G = registry();
    std::lock_guard<std::mutex> L(G.M);
    auto P = std::make_shared<Ring>(G.Capacity, G.NextTid++);
    G.Rings.push_back(P);
    return P;
  }();
  return *R;
}

void appendJsonEscaped(std::string &Out, const char *S) {
  for (; *S; ++S) {
    char C = *S;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

void appendMicros(std::string &Out, uint64_t Ns) {
  // ts/dur in microseconds with nanosecond precision kept as the
  // fractional part (Chrome accepts fractional timestamps).
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  Out += Buf;
}

struct Tagged {
  Event E;
  uint64_t Tid;
};

std::vector<Tagged> collect() {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  std::vector<Tagged> All;
  for (const auto &R : G.Rings) {
    uint64_t H = R->Head.load(std::memory_order_acquire);
    uint64_t Cap = R->Mask + 1;
    uint64_t N = std::min(H, Cap);
    All.reserve(All.size() + N);
    for (uint64_t I = H - N; I != H; ++I)
      All.push_back({R->Slots[I & R->Mask], R->Tid});
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const Tagged &A, const Tagged &B) {
                     return A.E.StartNs < B.E.StartNs;
                   });
  return All;
}

} // namespace

void setEnabled(bool On) {
  if (On)
    epoch(); // stamp the epoch before any event can be recorded
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void setRingCapacity(size_t Events) {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  G.Capacity = roundUpPow2(std::max<size_t>(Events, 16));
}

size_t ringCapacity() {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  return G.Capacity;
}

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void instant(const char *Name, uint64_t A, uint64_t B) {
  if (!enabled())
    return;
  myRing().push({Name, nowNs(), 0, A, B, 'i'});
}

void complete(const char *Name, uint64_t StartNs, uint64_t DurNs, uint64_t A,
              uint64_t B) {
  if (!enabled())
    return;
  myRing().push({Name, StartNs, DurNs, A, B, 'X'});
}

void counter(const char *Name, uint64_t A, uint64_t B) {
  if (!enabled())
    return;
  myRing().push({Name, nowNs(), 0, A, B, 'C'});
}

uint64_t eventCount() {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  uint64_t N = 0;
  for (const auto &R : G.Rings)
    N += std::min(R->Head.load(std::memory_order_acquire), R->Mask + 1);
  return N;
}

uint64_t droppedCount() {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  uint64_t N = 0;
  for (const auto &R : G.Rings) {
    uint64_t H = R->Head.load(std::memory_order_acquire);
    uint64_t Cap = R->Mask + 1;
    if (H > Cap)
      N += H - Cap;
  }
  return N;
}

void clear() {
  Registry &G = registry();
  std::lock_guard<std::mutex> L(G.M);
  for (const auto &R : G.Rings)
    R->Head.store(0, std::memory_order_release);
}

std::string exportChromeJson() {
  std::vector<Tagged> All = collect();
  uint64_t Dropped = droppedCount();
  std::string Out;
  Out.reserve(All.size() * 96 + 256);
  Out += "{\"traceEvents\":[";
  bool First = true;
  for (const Tagged &T : All) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"";
    appendJsonEscaped(Out, T.E.Name);
    Out += "\",\"ph\":\"";
    Out += T.E.Ph;
    Out += "\",\"ts\":";
    appendMicros(Out, T.E.StartNs);
    if (T.E.Ph == 'X') {
      Out += ",\"dur\":";
      appendMicros(Out, T.E.DurNs);
    }
    Out += ",\"pid\":1,\"tid\":";
    Out += std::to_string(T.Tid);
    if (T.E.Ph == 'i')
      Out += ",\"s\":\"t\"";
    if (T.E.Ph == 'C') {
      Out += ",\"args\":{\"a\":";
      Out += std::to_string(T.E.A);
      if (T.E.B) {
        Out += ",\"b\":";
        Out += std::to_string(T.E.B);
      }
      Out += '}';
    } else {
      Out += ",\"args\":{\"a\":";
      Out += std::to_string(T.E.A);
      Out += ",\"b\":";
      Out += std::to_string(T.E.B);
      Out += '}';
    }
    Out += '}';
  }
  Out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":\"";
  Out += std::to_string(Dropped);
  Out += "\"}}";
  return Out;
}

bool writeChromeJson(const std::string &Path, std::string *Err) {
  std::string Json = exportChromeJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t W = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = W == Json.size() && std::fclose(F) == 0;
  if (!Ok) {
    if (Err)
      *Err = "short write to '" + Path + "'";
    if (W != Json.size())
      std::fclose(F);
  }
  return Ok;
}

} // namespace trace
} // namespace rasc
