//===- support/Serialize.cpp - Checksummed binary snapshots ---------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "support/Serialize.h"

#include "support/FailPoint.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace rasc {

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I < 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

} // namespace

uint32_t crc32(const void *Data, size_t Len, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  for (size_t I = 0; I < Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

namespace {

constexpr char Magic[8] = {'R', 'A', 'S', 'C', 'S', 'N', 'A', 'P'};

Diag ioError(const std::string &Path, const char *What) {
  return Diag(std::string(What) + " '" + Path + "': " + std::strerror(errno));
}

/// Writes all of Buf to Fd, retrying on short writes and EINTR.
bool writeAll(int Fd, const uint8_t *Buf, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// fsyncs the directory containing Path so the rename itself is
/// durable. Best-effort: some filesystems reject directory fsync.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir;
  if (Slash == std::string::npos)
    Dir = ".";
  else if (Slash == 0)
    Dir = "/";
  else
    Dir = Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

std::optional<Diag> SnapshotWriter::commit(const std::string &Path,
                                           uint32_t Version) const {
  // Frame the whole file in memory first; snapshot payloads are far
  // smaller than the solver state they describe, so one flat buffer is
  // fine and makes the torn-write failpoint a simple prefix cut.
  ByteWriter W;
  W.bytes(Magic, sizeof Magic);
  W.u32(Version);
  W.u32(static_cast<uint32_t>(Sections.size()));
  W.u32(crc32(W.data().data(), W.size()));
  for (const Section &S : Sections) {
    W.u32(S.Tag);
    W.u64(S.Body.size());
    W.u32(crc32(S.Body.data().data(), S.Body.size()));
    W.bytes(S.Body.data().data(), S.Body.size());
  }

  size_t Len = W.size();
  bool Torn = false;
  if (failpoints::armedAny() && failpoints::hit(failpoints::Point::TornWrite)) {
    // Persist only a prefix but complete the rename — the on-disk
    // result is what a crash between data and metadata persistence
    // leaves behind. The commit still "succeeds"; detection is the
    // reader's job.
    Len /= 2;
    Torn = true;
  }

  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return ioError(Tmp, "cannot create snapshot temp file");

  if (!writeAll(Fd, W.data().data(), Len)) {
    Diag D = ioError(Tmp, "cannot write snapshot temp file");
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return D;
  }

  bool SyncFailed =
      failpoints::armedAny() && failpoints::hit(failpoints::Point::FsyncFail);
  if (SyncFailed || ::fsync(Fd) != 0) {
    if (SyncFailed)
      errno = EIO;
    Diag D = ioError(Tmp, "cannot fsync snapshot temp file");
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return D;
  }
  if (::close(Fd) != 0) {
    Diag D = ioError(Tmp, "cannot close snapshot temp file");
    ::unlink(Tmp.c_str());
    return D;
  }

  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Diag D = ioError(Path, "cannot rename snapshot into place");
    ::unlink(Tmp.c_str());
    return D;
  }
  fsyncParentDir(Path);
  (void)Torn;
  return std::nullopt;
}

Expected<SnapshotReader> SnapshotReader::read(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return ioError(Path, "cannot open snapshot");

  std::vector<uint8_t> Buf;
  uint8_t Chunk[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Chunk, sizeof Chunk);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Diag D = ioError(Path, "cannot read snapshot");
      ::close(Fd);
      return D;
    }
    if (N == 0)
      break;
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  }
  ::close(Fd);

  if (failpoints::armedAny() && failpoints::hit(failpoints::Point::ShortRead))
    Buf.resize(Buf.size() / 2);

  auto Corrupt = [&](const char *What) {
    return Diag("corrupt snapshot '" + Path + "': " + What);
  };

  constexpr size_t HeaderLen = sizeof Magic + 4 + 4 + 4;
  if (Buf.size() < HeaderLen)
    return Corrupt("file shorter than header");
  if (std::memcmp(Buf.data(), Magic, sizeof Magic) != 0)
    return Corrupt("bad magic");

  ByteReader H(Buf.data() + sizeof Magic, HeaderLen - sizeof Magic);
  uint32_t Version = H.u32();
  uint32_t NumSections = H.u32();
  uint32_t HeaderCrc = H.u32();
  if (crc32(Buf.data(), HeaderLen - 4) != HeaderCrc)
    return Corrupt("header checksum mismatch");

  SnapshotReader R;
  R.Version = Version;
  size_t Off = HeaderLen;
  for (uint32_t I = 0; I < NumSections; ++I) {
    if (Buf.size() - Off < 16)
      return Corrupt("truncated section header");
    ByteReader S(Buf.data() + Off, 16);
    uint32_t Tag = S.u32();
    uint64_t Len = S.u64();
    uint32_t Crc = S.u32();
    Off += 16;
    if (Len > Buf.size() - Off)
      return Corrupt("section length exceeds file size");
    if (crc32(Buf.data() + Off, static_cast<size_t>(Len)) != Crc)
      return Corrupt("section checksum mismatch");
    R.Sections.push_back({Tag, Off, static_cast<size_t>(Len)});
    Off += static_cast<size_t>(Len);
  }
  if (Off != Buf.size())
    return Corrupt("trailing bytes after last section");

  R.File = std::move(Buf);
  return R;
}

} // namespace rasc
