//===- support/UnionFind.h - Disjoint sets ----------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path halving and union by rank. The constraint
/// solver's online cycle elimination collapses strongly connected
/// components of identity-annotated variable edges into a single
/// representative using this structure.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_UNIONFIND_H
#define RASC_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace rasc {

/// Disjoint-set forest over dense uint32_t ids. Elements are added
/// implicitly by growing; all elements start as singletons.
class UnionFind {
public:
  /// Ensures ids [0, N) exist.
  void grow(uint32_t N) {
    while (Parent.size() < N) {
      Parent.push_back(static_cast<uint32_t>(Parent.size()));
      Rank.push_back(0);
    }
  }

  /// \returns the representative of \p X, with path halving.
  uint32_t find(uint32_t X) {
    assert(X < Parent.size() && "id out of range");
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }

  /// Unions the sets of \p A and \p B; \returns the new representative.
  uint32_t merge(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return A;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return A;
  }

  size_t size() const { return Parent.size(); }

  /// Raw forest arrays, exposed for snapshot serialization. Parent
  /// links reflect whatever path compression has happened so far;
  /// restoring them verbatim preserves find() results exactly.
  const std::vector<uint32_t> &parents() const { return Parent; }
  const std::vector<uint8_t> &ranks() const { return Rank; }

  /// Replaces the forest with previously captured arrays. \returns
  /// false (leaving the structure empty) if the arrays are not a valid
  /// forest: mismatched lengths or a parent link out of range.
  bool restore(std::vector<uint32_t> NewParent,
               std::vector<uint8_t> NewRank) {
    if (NewParent.size() != NewRank.size())
      return false;
    for (uint32_t P : NewParent)
      if (P >= NewParent.size())
        return false;
    Parent = std::move(NewParent);
    Rank = std::move(NewRank);
    return true;
  }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace rasc

#endif // RASC_SUPPORT_UNIONFIND_H
