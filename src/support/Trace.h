//===- support/Trace.h - Structured event tracing ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A zero-cost-when-disabled event-tracing sink. Instrumented code
/// emits structured events (worklist pops, compose scans, edge
/// inserts, checkpoint saves, thread-pool steals, ...) into a
/// per-thread ring buffer; a quiescent reader exports everything as
/// Chrome `trace_event` JSON loadable in chrome://tracing or Perfetto.
///
/// Cost model (the part the <2% overhead budget in EXPERIMENTS.md is
/// about):
///
///   * Disabled — every instrumentation site is `if (trace::enabled())`
///     around the emission: one relaxed load of a single process-wide
///     atomic flag plus a predictable branch. No clock reads, no
///     allocation, no stores. `RASC_TRACE_SCOPE` likewise loads the
///     flag once in its constructor and stores a null name.
///   * Enabled — one steady-clock read per instant event (two per
///     scope) and one 40-byte store into a thread-local ring. No locks
///     on the emission path; the registry mutex is taken only the
///     first time a thread emits (to register its ring) and during
///     export/clear.
///
/// Memory bound: each thread that emits at least one event owns one
/// ring of `ringCapacity()` slots (default 1<<15) at sizeof(Event) ==
/// 40 bytes, i.e. 1.25 MiB/thread by default. Rings are kept until
/// process exit (a thread may die before export; its events must
/// survive), so total trace memory is
///   (#distinct emitting threads) * ringCapacity() * 40 bytes.
/// When a ring wraps, the oldest events are overwritten and counted in
/// droppedCount() — the exporter reports the loss rather than hiding
/// it.
///
/// Event names must be string literals (or otherwise have static
/// storage duration): the ring stores the pointer, not a copy.
///
/// Threading: emission is single-writer per ring (the owning thread).
/// The ring head is an atomic so that export from another thread reads
/// a consistent prefix, but export is only well-defined when emitters
/// are quiescent (solve finished / pool idle); callers in this repo
/// export after solve() returns.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_TRACE_H
#define RASC_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace rasc {
namespace trace {

namespace detail {
extern std::atomic<bool> Enabled;
} // namespace detail

/// The one flag every instrumentation site branches on.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Master switch. Turning tracing on stamps the export epoch (event
/// timestamps are nanoseconds since the first enable), turning it off
/// stops emission but keeps recorded events for export.
void setEnabled(bool On);

/// Per-thread ring capacity in events, rounded up to a power of two.
/// Applies to rings created after the call (a thread's ring is created
/// on its first emission); existing rings keep their capacity.
void setRingCapacity(size_t Events);
size_t ringCapacity();

/// Nanoseconds since the trace epoch (first setEnabled(true); process
/// start if tracing was never enabled). Only meaningful to call on the
/// enabled path — it reads the steady clock.
uint64_t nowNs();

/// One recorded event. 40 bytes; stored by value in the ring.
struct Event {
  const char *Name; ///< static-storage string, never owned
  uint64_t StartNs; ///< since trace epoch
  uint64_t DurNs;   ///< 0 for instants/counters
  uint64_t A;       ///< event-specific payload, exported as args.a
  uint64_t B;       ///< event-specific payload, exported as args.b
  char Ph;          ///< Chrome phase: 'X' complete, 'i' instant, 'C' counter
};

/// Emits an instant event ('i') on the calling thread's ring. Callers
/// guard with enabled(); emitting while disabled is a no-op.
void instant(const char *Name, uint64_t A = 0, uint64_t B = 0);

/// Emits a complete event ('X') covering [StartNs, StartNs + DurNs).
void complete(const char *Name, uint64_t StartNs, uint64_t DurNs,
              uint64_t A = 0, uint64_t B = 0);

/// Emits a counter event ('C'); Perfetto renders these as a value
/// track named \p Name with series "a" (and "b" when nonzero).
void counter(const char *Name, uint64_t A, uint64_t B = 0);

/// RAII span: records the start time when tracing is enabled at
/// construction and emits a complete event at destruction (if tracing
/// is still enabled then). Use via RASC_TRACE_SCOPE.
class Scope {
public:
  explicit Scope(const char *N, uint64_t A = 0, uint64_t B = 0) {
    if (enabled()) {
      Name = N;
      ArgA = A;
      ArgB = B;
      StartNs = nowNs();
    }
  }
  ~Scope() {
    if (Name && enabled())
      complete(Name, StartNs, nowNs() - StartNs, ArgA, ArgB);
  }
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

  /// Late-binds payload args (e.g. a result count known only at scope
  /// exit). No-op when the scope was constructed disabled.
  void args(uint64_t A, uint64_t B = 0) {
    ArgA = A;
    ArgB = B;
  }

private:
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  uint64_t ArgA = 0;
  uint64_t ArgB = 0;
};

/// Total events currently held across all rings (post-wrap survivors).
uint64_t eventCount();

/// Events lost to ring wrap-around across all rings since the last
/// clear().
uint64_t droppedCount();

/// Drops all recorded events (rings stay registered and keep their
/// capacity); resets droppedCount(). For tests and repeated solves.
void clear();

/// Renders every recorded event as a Chrome `trace_event` JSON object
/// graph: {"traceEvents":[...],"displayTimeUnit":"ns"}. Events are
/// sorted by start time; ts/dur are microseconds (fractional).
/// Call only when emitters are quiescent.
std::string exportChromeJson();

/// exportChromeJson() to a file. \returns false and fills \p Err (when
/// non-null) on I/O failure.
bool writeChromeJson(const std::string &Path, std::string *Err = nullptr);

} // namespace trace
} // namespace rasc

#define RASC_TRACE_CONCAT_IMPL(A, B) A##B
#define RASC_TRACE_CONCAT(A, B) RASC_TRACE_CONCAT_IMPL(A, B)

/// Times the enclosing scope as a complete trace event. Name must be a
/// string literal. Optional trailing args become args.a / args.b.
#define RASC_TRACE_SCOPE(...)                                                  \
  ::rasc::trace::Scope RASC_TRACE_CONCAT(RascTraceScope_,                      \
                                         __LINE__)(__VA_ARGS__)

#endif // RASC_SUPPORT_TRACE_H
