//===- support/FailPoint.cpp - Fault-injection points -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

using namespace rasc;
using namespace rasc::failpoints;

namespace rasc {
namespace failpoints {
namespace detail {

std::atomic<unsigned> ArmedCount{0};
// Remaining hits before the trip; negative = disarmed. The value -1 is
// the resting state, and a tripped point returns to it.
std::atomic<int64_t> Remaining[static_cast<unsigned>(Point::NumPoints)] = {};

namespace {
struct Init {
  Init() {
    for (auto &R : Remaining)
      R.store(-1, std::memory_order_relaxed);
  }
} InitOnce;
} // namespace

} // namespace detail

void arm(Point P, uint64_t AfterHits) {
  auto &R = detail::Remaining[static_cast<unsigned>(P)];
  if (R.exchange(static_cast<int64_t>(AfterHits),
                 std::memory_order_relaxed) < 0)
    detail::ArmedCount.fetch_add(1, std::memory_order_relaxed);
}

void disarm(Point P) {
  auto &R = detail::Remaining[static_cast<unsigned>(P)];
  if (R.exchange(-1, std::memory_order_relaxed) >= 0)
    detail::ArmedCount.fetch_sub(1, std::memory_order_relaxed);
}

void disarmAll() {
  for (unsigned I = 0; I != static_cast<unsigned>(Point::NumPoints); ++I)
    disarm(static_cast<Point>(I));
}

bool hit(Point P) {
  auto &R = detail::Remaining[static_cast<unsigned>(P)];
  int64_t Cur = R.load(std::memory_order_relaxed);
  if (Cur < 0)
    return false;
  if (Cur == 0) {
    // Trip: return to the resting state so a trip fires exactly once.
    R.store(-1, std::memory_order_relaxed);
    detail::ArmedCount.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  R.store(Cur - 1, std::memory_order_relaxed);
  return false;
}

} // namespace failpoints
} // namespace rasc
