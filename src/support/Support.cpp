//===- support/Support.cpp - Anchor for the support library ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "support/DynamicBitset.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/StringPool.h"
#include "support/UnionFind.h"

// The support library is header-only; this file exists so the static
// archive has at least one object file.
