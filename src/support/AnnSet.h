//===- support/AnnSet.h - Annotation-id sets and edge dedup -----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense set representations keyed by annotation class ids, built for
/// the solver's closure loop where the paper's O(n^3 i^2) cost model
/// (i = |F_M^≡|) assumes O(1) per derived bound:
///
///   * AnnSet — a small insertion-ordered set of AnnIds (growable
///     bitset membership + member vector), replacing linear
///     std::find dedup passes on query paths.
///   * AnnBitsetTable — per-key rows of annotation bits; the key is a
///     packed (src, dst) node pair, so edge dedup is one hash probe
///     plus a test-and-set. Rows share one arena with a common word
///     stride that grows (rarely) when the domain interns new
///     elements past the current capacity.
///   * EdgeDedup — the solver's dedup front end: annotation bitsets
///     while the domain is small (dense ids, near-perfect bit
///     utilization), per-destination FlatSet64 of packed (src, ann)
///     keys when it is large or unbounded (sparse sets; bitset rows
///     would be mostly zero words).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_ANNSET_H
#define RASC_SUPPORT_ANNSET_H

#include "support/FlatSet.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace rasc {

/// A set of small integer ids with O(1) insert-if-absent and
/// insertion-ordered iteration over the members. Membership is a
/// bitset grown on demand; the member list is what callers iterate,
/// so sparse use stays cheap.
class AnnSet {
public:
  AnnSet() = default;

  /// Inserts \p Id. \returns true if it was not present.
  bool insert(uint32_t Id) {
    size_t Word = Id / 64;
    if (Word >= Bits.size())
      Bits.resize(Word + 1, 0);
    uint64_t Mask = uint64_t(1) << (Id % 64);
    if (Bits[Word] & Mask)
      return false;
    Bits[Word] |= Mask;
    Members.push_back(Id);
    return true;
  }

  bool contains(uint32_t Id) const {
    size_t Word = Id / 64;
    return Word < Bits.size() && (Bits[Word] >> (Id % 64)) & 1;
  }

  size_t size() const { return Members.size(); }
  bool empty() const { return Members.empty(); }

  /// Members in insertion order.
  const std::vector<uint32_t> &members() const { return Members; }

  void clear() {
    for (uint32_t Id : Members)
      Bits[Id / 64] &= ~(uint64_t(1) << (Id % 64));
    Members.clear();
  }

  /// Releases the member list (insertion order preserved), leaving the
  /// set usable but empty.
  std::vector<uint32_t> takeMembers() {
    std::vector<uint32_t> Out = std::move(Members);
    Bits.clear();
    Members.clear();
    return Out;
  }

private:
  std::vector<uint64_t> Bits;
  std::vector<uint32_t> Members;
};

/// Rows of annotation bits addressed by an arbitrary 64-bit key.
///
/// While every annotation id fits in one word (id < 64 — true for the
/// paper's machines, whose monoids have a few dozen elements), rows
/// are stored *inline* in the open-addressed slots: a duplicate-edge
/// probe — the closure's single hottest operation, >90% of addEdge
/// attempts on dense workloads — touches exactly one 16-byte slot.
/// The first wider id migrates all rows to a spilled arena with a
/// shared word stride that doubles on demand (a domain interning
/// elements mid-solve, e.g. GenKillDomain); O(total bits) per
/// doubling and geometrically rare.
class AnnBitsetTable {
  static constexpr uint64_t Empty = ~uint64_t(0);

public:
  explicit AnnBitsetTable(size_t AnnCapacityHint = 64) {
    if (AnnCapacityHint > 64) {
      InlineMode = false;
      Stride = (AnnCapacityHint + 63) / 64;
    }
  }

  /// Tests and sets bit \p Ann of row \p Key. \returns true if the
  /// bit was clear (the edge is new).
  bool testAndSet(uint64_t Key, uint32_t Ann) {
    assert(Key != Empty && "the all-ones key is reserved");
    if (InlineMode) {
      if (Ann < 64)
        return testAndSetInline(Key, Ann);
      spill();
    }
    return testAndSetSpilled(Key, Ann);
  }

  /// Clears bit \p Ann of row \p Key. The row's slot is kept even when
  /// its last bit clears — a retraction is usually followed by
  /// re-derivation into the same (src, dst) pairs, and an occupied
  /// zero-bits row costs nothing on the probe path. \returns true if
  /// the bit was set.
  bool testAndClear(uint64_t Key, uint32_t Ann) {
    if (InlineMode) {
      if (Ann >= 64 || Slots.empty())
        return false;
      size_t Mask = Slots.size() - 1;
      size_t I = static_cast<size_t>(mix64(Key)) & Mask;
      uint64_t Bit = uint64_t(1) << Ann;
      while (true) {
        Slot &S = Slots[I];
        if (S.Key == Key) {
          if (!(S.Bits & Bit))
            return false;
          S.Bits &= ~Bit;
          return true;
        }
        if (S.Key == Empty)
          return false;
        I = (I + 1) & Mask;
      }
    }
    if (Ann >= Stride * 64)
      return false;
    const uint32_t *Row = Rows.lookup(Key);
    if (!Row)
      return false;
    uint64_t Mask = uint64_t(1) << (Ann % 64);
    uint64_t &Word = Bits[static_cast<size_t>(*Row) * Stride + Ann / 64];
    if (!(Word & Mask))
      return false;
    Word &= ~Mask;
    return true;
  }

  /// Tests bit \p Ann of row \p Key without modifying the table.
  /// Read-only, so concurrent test() calls are race-free — the
  /// frontier-parallel closure's workers use this to pre-filter
  /// duplicate edges before the sequential merge.
  bool test(uint64_t Key, uint32_t Ann) const {
    if (InlineMode) {
      if (Ann >= 64 || Slots.empty())
        return false;
      size_t Mask = Slots.size() - 1;
      size_t I = static_cast<size_t>(mix64(Key)) & Mask;
      while (true) {
        const Slot &S = Slots[I];
        if (S.Key == Key)
          return (S.Bits >> Ann) & 1;
        if (S.Key == Empty)
          return false;
        I = (I + 1) & Mask;
      }
    }
    if (Ann >= Stride * 64)
      return false;
    const uint32_t *Row = Rows.lookup(Key);
    if (!Row)
      return false;
    return (Bits[static_cast<size_t>(*Row) * Stride + Ann / 64] >>
            (Ann % 64)) &
           1;
  }

  size_t numRows() const {
    return InlineMode ? InlineCount : Rows.size();
  }

  /// Issues a prefetch for the home slot of row \p Key. The closure's
  /// probe stream has no locality (derived edges hash all over the
  /// table), so batching prefetches a chunk ahead turns a serial chain
  /// of cache misses into overlapped ones.
  void prefetch(uint64_t Key) const {
    if (InlineMode && !Slots.empty())
      __builtin_prefetch(
          &Slots[static_cast<size_t>(mix64(Key)) & (Slots.size() - 1)]);
  }

  /// Whether the table has outgrown on-chip caches enough that probe
  /// misses dominate and a prefetch pass pays for its extra hashing
  /// (~512KB of inline slots).
  bool prefetchWorthwhile() const {
    return InlineMode && Slots.size() >= (1u << 15);
  }

  /// Heap bytes held (for the solver's approximate memory budget).
  size_t memoryBytes() const {
    return Slots.capacity() * sizeof(Slot) + Rows.memoryBytes() +
           Bits.capacity() * sizeof(uint64_t);
  }

  /// Invokes \p F(key, ann) for every set bit, rows in hash order —
  /// NOT insertion order. Snapshot serialization relies on the table
  /// being reconstructible from its unordered contents.
  template <typename Fn> void forEach(Fn &&F) const {
    if (InlineMode) {
      for (const Slot &S : Slots) {
        if (S.Key == Empty)
          continue;
        for (uint64_t B = S.Bits; B;) {
          uint32_t Ann = static_cast<uint32_t>(__builtin_ctzll(B));
          B &= B - 1;
          F(S.Key, Ann);
        }
      }
      return;
    }
    Rows.forEach([&](uint64_t Key, uint32_t Row) {
      for (size_t W = 0; W != Stride; ++W) {
        for (uint64_t B = Bits[static_cast<size_t>(Row) * Stride + W]; B;) {
          uint32_t Ann =
              static_cast<uint32_t>(W * 64 + __builtin_ctzll(B));
          B &= B - 1;
          F(Key, Ann);
        }
      }
    });
  }

private:
  bool testAndSetInline(uint64_t Key, uint32_t Ann) {
    if (Slots.empty())
      rehashInline(16);
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    uint64_t Bit = uint64_t(1) << Ann;
    while (true) {
      Slot &S = Slots[I];
      if (S.Key == Key) {
        if (S.Bits & Bit)
          return false;
        S.Bits |= Bit;
        return true;
      }
      if (S.Key == Empty) {
        S.Key = Key;
        S.Bits = Bit;
        if (++InlineCount * 8 >= Slots.size() * 7)
          rehashInline(Slots.size() * 2);
        return true;
      }
      I = (I + 1) & Mask;
    }
  }

  void rehashInline(size_t NewCap) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewCap, Slot{});
    size_t Mask = NewCap - 1;
    for (const Slot &S : Old) {
      if (S.Key == Empty)
        continue;
      size_t I = static_cast<size_t>(mix64(S.Key)) & Mask;
      while (Slots[I].Key != Empty)
        I = (I + 1) & Mask;
      Slots[I] = S;
    }
  }

  /// Migrates inline rows to the arena representation (one-time, on
  /// the first annotation id >= 64).
  void spill() {
    InlineMode = false;
    Rows.reserve(InlineCount);
    for (const Slot &S : Slots) {
      if (S.Key == Empty)
        continue;
      auto [Row, Inserted] =
          Rows.findOrInsert(S.Key, static_cast<uint32_t>(Rows.size()));
      (void)Inserted;
      Bits.resize(Bits.size() + Stride, 0);
      Bits[static_cast<size_t>(Row) * Stride] = S.Bits;
    }
    Slots.clear();
    Slots.shrink_to_fit();
    InlineCount = 0;
  }

  bool testAndSetSpilled(uint64_t Key, uint32_t Ann) {
    if (Ann >= Stride * 64)
      growStride(Ann);
    auto [Row, Inserted] =
        Rows.findOrInsert(Key, static_cast<uint32_t>(Rows.size()));
    if (Inserted)
      Bits.resize(Bits.size() + Stride, 0);
    uint64_t Mask = uint64_t(1) << (Ann % 64);
    uint64_t &Word = Bits[static_cast<size_t>(Row) * Stride + Ann / 64];
    if (Word & Mask)
      return false;
    Word |= Mask;
    return true;
  }

  void growStride(uint32_t Ann) {
    size_t NewStride = Stride;
    while (Ann >= NewStride * 64)
      NewStride *= 2;
    std::vector<uint64_t> NewBits(Rows.size() * NewStride, 0);
    for (size_t Row = 0, E = Rows.size(); Row != E; ++Row)
      for (size_t W = 0; W != Stride; ++W)
        NewBits[Row * NewStride + W] = Bits[Row * Stride + W];
    Bits = std::move(NewBits);
    Stride = NewStride;
  }

  struct Slot {
    uint64_t Key = Empty;
    uint64_t Bits = 0;
  };

  // Inline mode: (key, bits) pairs in one open-addressed array.
  bool InlineMode = true;
  std::vector<Slot> Slots;
  size_t InlineCount = 0;

  // Spilled mode: key -> row index, rows dense in insertion order.
  FlatMap64 Rows;
  std::vector<uint64_t> Bits;
  size_t Stride = 1;
};

/// Deduplication of annotated edges (A, B, Ann): the bitset backend
/// keys rows by the packed (A, B) pair; the flat backend keeps one
/// open-addressed set of packed (A, Ann) keys per B. The solver picks
/// a backend per SolverOptions (bitsets when the annotation domain is
/// small, flat sets otherwise).
class EdgeDedup {
public:
  enum class Backend : uint8_t {
    Bitset, ///< per-(A,B) annotation bitset rows (dense ann ids)
    Flat,   ///< per-B FlatSet64 of packed (A, ann) keys (sparse)
  };

  explicit EdgeDedup(Backend B = Backend::Bitset,
                     size_t AnnCapacityHint = 64)
      : Which(B), Bitsets(AnnCapacityHint) {}

  Backend backend() const { return Which; }

  /// Records the edge. \returns true if it was not present.
  bool insert(uint32_t A, uint32_t B, uint32_t Ann) {
    if (Which == Backend::Bitset)
      return Bitsets.testAndSet(
          (static_cast<uint64_t>(A) << 32) | B, Ann);
    if (B >= PerDst.size())
      PerDst.resize(static_cast<size_t>(B) + 1);
    return PerDst[B].insert((static_cast<uint64_t>(A) << 32) | Ann);
  }

  /// Removes the edge (the incremental solver's cone invalidation).
  /// \returns true if it was recorded. Capacity is retained by both
  /// backends, so memoryBytes() is unchanged by erases.
  bool erase(uint32_t A, uint32_t B, uint32_t Ann) {
    if (Which == Backend::Bitset)
      return Bitsets.testAndClear(
          (static_cast<uint64_t>(A) << 32) | B, Ann);
    if (B >= PerDst.size())
      return false;
    return PerDst[B].erase((static_cast<uint64_t>(A) << 32) | Ann);
  }

  /// \returns whether the edge is already recorded, without modifying
  /// the structure. Read-only, so concurrent contains() calls are
  /// race-free (used by the frontier-parallel workers' pre-filter).
  bool contains(uint32_t A, uint32_t B, uint32_t Ann) const {
    if (Which == Backend::Bitset)
      return Bitsets.test((static_cast<uint64_t>(A) << 32) | B, Ann);
    if (B >= PerDst.size())
      return false;
    return PerDst[B].contains((static_cast<uint64_t>(A) << 32) | Ann);
  }

  /// Prefetches the slot a subsequent insert(A, B, Ann) will probe.
  void prefetch(uint32_t A, uint32_t B, uint32_t Ann) const {
    if (Which == Backend::Bitset)
      Bitsets.prefetch((static_cast<uint64_t>(A) << 32) | B);
    else if (B < PerDst.size())
      PerDst[B].prefetch((static_cast<uint64_t>(A) << 32) | Ann);
  }

  /// Whether a prefetch pass over a batch of probes is likely to pay
  /// off (the working set no longer sits in on-chip caches).
  bool prefetchWorthwhile() const {
    return Which == Backend::Bitset ? Bitsets.prefetchWorthwhile()
                                    : PerDst.size() >= 4096;
  }

  /// Invokes \p F(A, B, Ann) for every recorded edge, in an
  /// unspecified order. The snapshot writer serializes the dedup
  /// structure through this; replay on restore re-inserts every triple
  /// (insertion order does not affect either backend's contents, only
  /// its slot layout).
  template <typename Fn> void forEachEdge(Fn &&F) const {
    if (Which == Backend::Bitset) {
      Bitsets.forEach([&](uint64_t Key, uint32_t Ann) {
        F(static_cast<uint32_t>(Key >> 32), static_cast<uint32_t>(Key),
          Ann);
      });
      return;
    }
    for (size_t B = 0, E = PerDst.size(); B != E; ++B)
      PerDst[B].forEach([&](uint64_t Key) {
        F(static_cast<uint32_t>(Key >> 32), static_cast<uint32_t>(B),
          static_cast<uint32_t>(Key));
      });
  }

  /// Total recorded edges (used to size the snapshot's dedup section).
  size_t edgeCount() const {
    size_t N = 0;
    forEachEdge([&](uint32_t, uint32_t, uint32_t) { ++N; });
    return N;
  }

  /// Heap bytes held. O(1) for the bitset backend; O(#destinations)
  /// for the flat backend, so callers amortize (the solver checks its
  /// memory budget every GovernanceCheckInterval worklist pops).
  size_t memoryBytes() const {
    if (Which == Backend::Bitset)
      return Bitsets.memoryBytes();
    size_t N = PerDst.capacity() * sizeof(FlatSet64);
    for (const FlatSet64 &S : PerDst)
      N += S.memoryBytes();
    return N;
  }

private:
  Backend Which;
  AnnBitsetTable Bitsets;
  std::vector<FlatSet64> PerDst;
};

/// Edge dedup striped into P independent EdgeDedup segments routed by
/// destination node: shard(B) = B % P owns every edge into B. The
/// sharded parallel merge (DESIGN.md §8) lets shard owners run the
/// authoritative insert() for their own destinations concurrently —
/// two owners never touch the same segment, and the segments are
/// cache-line padded so their hot table headers don't false-share.
/// Destinations are stored divided by P inside each segment (B % P is
/// implied by the segment), so per-destination structures stay dense
/// per shard instead of P-times oversized; forEachEdge reconstructs
/// the original ids. P == 1 degenerates to a plain EdgeDedup with no
/// routing arithmetic on the probe path.
class ShardedEdgeDedup {
public:
  using Backend = EdgeDedup::Backend;

  explicit ShardedEdgeDedup(Backend B = Backend::Bitset,
                            size_t AnnCapacityHint = 64,
                            unsigned NumShards = 1) {
    Segs.reserve(NumShards ? NumShards : 1);
    for (unsigned I = 0, E = NumShards ? NumShards : 1; I != E; ++I)
      Segs.emplace_back(B, AnnCapacityHint);
  }

  Backend backend() const { return Segs.front().D.backend(); }
  unsigned numShards() const {
    return static_cast<unsigned>(Segs.size());
  }

  /// The shard owning destination \p B. Owner-partitioned phases route
  /// every edge through this so one segment has exactly one writer.
  unsigned shardOf(uint32_t B) const {
    return Segs.size() == 1
               ? 0
               : B % static_cast<uint32_t>(Segs.size());
  }

  /// Records the edge. \returns true if it was not present. Safe to
  /// call concurrently from different threads *iff* the callers'
  /// destinations map to different shards (the owner-partitioned
  /// merge's contract); never concurrently with contains() on the
  /// same shard.
  bool insert(uint32_t A, uint32_t B, uint32_t Ann) {
    if (Segs.size() == 1)
      return Segs.front().D.insert(A, B, Ann);
    return Segs[B % Segs.size()].D.insert(
        A, B / static_cast<uint32_t>(Segs.size()), Ann);
  }

  /// Removes the edge, routed to its owning shard. \returns true if it
  /// was recorded.
  bool erase(uint32_t A, uint32_t B, uint32_t Ann) {
    if (Segs.size() == 1)
      return Segs.front().D.erase(A, B, Ann);
    return Segs[B % Segs.size()].D.erase(
        A, B / static_cast<uint32_t>(Segs.size()), Ann);
  }

  /// Read-only membership probe; race-free under concurrent contains()
  /// calls (the compute workers' pre-filter).
  bool contains(uint32_t A, uint32_t B, uint32_t Ann) const {
    if (Segs.size() == 1)
      return Segs.front().D.contains(A, B, Ann);
    return Segs[B % Segs.size()].D.contains(
        A, B / static_cast<uint32_t>(Segs.size()), Ann);
  }

  /// Prefetches the slot a subsequent insert/contains(A, B, Ann) will
  /// probe.
  void prefetch(uint32_t A, uint32_t B, uint32_t Ann) const {
    if (Segs.size() == 1)
      return Segs.front().D.prefetch(A, B, Ann);
    Segs[B % Segs.size()].D.prefetch(
        A, B / static_cast<uint32_t>(Segs.size()), Ann);
  }

  /// Whether a prefetch pass over a batch of probes is likely to pay
  /// off in any segment (segments grow together under the modulo
  /// routing, so the first segment is a fair sample).
  bool prefetchWorthwhile() const {
    return Segs.front().D.prefetchWorthwhile();
  }

  /// Invokes \p F(A, B, Ann) for every recorded edge in an unspecified
  /// order, with original (un-divided) destination ids — the snapshot
  /// writer serializes through this, so on-disk triples are
  /// independent of the shard count and a snapshot round-trips across
  /// solvers with different sharding.
  template <typename Fn> void forEachEdge(Fn &&F) const {
    const uint32_t P = static_cast<uint32_t>(Segs.size());
    for (uint32_t S = 0; S != P; ++S)
      Segs[S].D.forEachEdge([&](uint32_t A, uint32_t B, uint32_t Ann) {
        F(A, P == 1 ? B : B * P + S, Ann);
      });
  }

  /// Total recorded edges (sizes the snapshot's dedup section).
  size_t edgeCount() const {
    size_t N = 0;
    for (const Seg &S : Segs)
      N += S.D.edgeCount();
    return N;
  }

  /// Heap bytes held across all segments.
  size_t memoryBytes() const {
    size_t N = Segs.capacity() * sizeof(Seg);
    for (const Seg &S : Segs)
      N += S.D.memoryBytes();
    return N;
  }

private:
  /// Cache-line alignment keeps one shard's mutable table header
  /// (slot pointer, counts) off every other shard's line during the
  /// concurrent merge phase.
  struct alignas(64) Seg {
    Seg(Backend B, size_t AnnCapacityHint) : D(B, AnnCapacityHint) {}
    EdgeDedup D;
  };
  std::vector<Seg> Segs;
};

} // namespace rasc

#endif // RASC_SUPPORT_ANNSET_H
