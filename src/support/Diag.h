//===- support/Diag.h - Structured diagnostics ------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The error type used on untrusted input paths (the constraint, spec,
/// and regex parsers, and the checked ConstraintSystem builders): a
/// message plus an optional source location, and an Expected<T> carrier
/// so frontends report malformed input as a value instead of an assert
/// (release-mode-disabled) or UB. The string-out-parameter parser APIs
/// remain as thin wrappers that render() the diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_DIAG_H
#define RASC_SUPPORT_DIAG_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rasc {

/// A 1-based position in a source text; 0 means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool valid() const { return Line != 0; }
};

/// One diagnostic: what went wrong and where.
class Diag {
public:
  Diag() = default;
  explicit Diag(std::string Message, SourceLoc Loc = {})
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc loc() const { return Loc; }

  /// "line L, col C: message" (or just the message without a location).
  std::string render() const {
    if (!Loc.valid())
      return Message;
    std::string Out = "line " + std::to_string(Loc.Line);
    if (Loc.Col != 0)
      Out += ", col " + std::to_string(Loc.Col);
    return Out + ": " + Message;
  }

private:
  std::string Message;
  SourceLoc Loc;
};

/// A value or a diagnostic. Deliberately minimal: test with operator
/// bool, read the value with * / ->, read the failure with error().
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(Diag D) : Storage(std::move(D)) {}

  explicit operator bool() const {
    return std::holds_alternative<T>(Storage);
  }

  T &operator*() {
    assert(*this && "accessing the value of a failed Expected");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "accessing the value of a failed Expected");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Diag &error() const {
    assert(!*this && "accessing the error of a successful Expected");
    return std::get<Diag>(Storage);
  }

private:
  std::variant<T, Diag> Storage;
};

} // namespace rasc

#endif // RASC_SUPPORT_DIAG_H
