//===- support/FlatSet.h - Open-addressed integer hash sets -----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-friendly open-addressed hash containers over 64-bit integer
/// keys, used on the solver's closure hot path where the generality of
/// std::unordered_set (chained buckets, one allocation per node) costs
/// more than the work being deduplicated. Probing stays tombstone-free
/// even though FlatSet64 supports erase: deletion is backward-shift
/// (displaced keys slide back into the hole), so lookups never probe
/// past a dead marker and the incremental solver's retraction path
/// (SolverOptions::Incremental) pays no probe-length tax on the solves
/// that follow an erase.
///
/// The empty slot is marked with the all-ones key, so ~0ULL cannot be
/// stored; the solver packs (id, id) pairs of valid 32-bit ids, which
/// never produce it.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_FLATSET_H
#define RASC_SUPPORT_FLATSET_H

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace rasc {

/// Open-addressed set of uint64_t keys (linear probing, power-of-two
/// capacity, grown at 7/8 load) with tombstone-free backward-shift
/// erase. The key ~0ULL is reserved as the empty marker.
class FlatSet64 {
  static constexpr uint64_t Empty = ~uint64_t(0);

public:
  FlatSet64() = default;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Inserts \p Key. \returns true if it was not present.
  bool insert(uint64_t Key) {
    assert(Key != Empty && "the all-ones key is reserved");
    if (Slots.empty())
      rehash(8);
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    while (true) {
      uint64_t S = Slots[I];
      if (S == Key)
        return false;
      if (S == Empty)
        break;
      I = (I + 1) & Mask;
    }
    Slots[I] = Key;
    // Grow at 7/8 load; rare enough that the re-probe is amortized.
    if (++Count * 8 >= Slots.size() * 7)
      rehash(Slots.size() * 2);
    return true;
  }

  bool contains(uint64_t Key) const {
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    while (true) {
      uint64_t S = Slots[I];
      if (S == Key)
        return true;
      if (S == Empty)
        return false;
      I = (I + 1) & Mask;
    }
  }

  /// Removes \p Key via backward-shift deletion: members of the probe
  /// cluster after the hole slide back into it when their home slot
  /// permits, so the table never holds a tombstone and lookups keep
  /// their empty-slot termination. Capacity is never shrunk (an erase
  /// is usually followed by re-derivation of a similar set), so
  /// memoryBytes() is unchanged. \returns true if the key was present.
  bool erase(uint64_t Key) {
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    while (true) {
      uint64_t S = Slots[I];
      if (S == Empty)
        return false;
      if (S == Key)
        break;
      I = (I + 1) & Mask;
    }
    size_t Hole = I;
    size_t J = I;
    while (true) {
      J = (J + 1) & Mask;
      uint64_t S = Slots[J];
      if (S == Empty)
        break;
      size_t Home = static_cast<size_t>(mix64(S)) & Mask;
      // S can fill the hole iff the hole lies cyclically within
      // [Home, J) — moving it back never breaks its own probe chain.
      if (((J - Home) & Mask) >= ((J - Hole) & Mask)) {
        Slots[Hole] = S;
        Hole = J;
      }
    }
    Slots[Hole] = Empty;
    --Count;
    return true;
  }

  void reserve(size_t N) {
    size_t Cap = 8;
    while (Cap * 7 < N * 8)
      Cap *= 2;
    if (Cap > Slots.size())
      rehash(Cap);
  }

  /// Issues a prefetch for the home slot of \p Key (probing in batches
  /// overlaps the cache misses of independent lookups).
  void prefetch(uint64_t Key) const {
    if (!Slots.empty())
      __builtin_prefetch(
          &Slots[static_cast<size_t>(mix64(Key)) & (Slots.size() - 1)]);
  }

  /// Heap bytes held (for the solver's approximate memory budget).
  size_t memoryBytes() const { return Slots.capacity() * sizeof(uint64_t); }

  /// Invokes \p F(key) for every stored key, in slot (hash) order —
  /// NOT insertion order. Snapshot serialization relies on the set
  /// being reconstructible from its unordered contents.
  template <typename Fn> void forEach(Fn &&F) const {
    for (uint64_t Key : Slots)
      if (Key != Empty)
        F(Key);
  }

private:
  void rehash(size_t NewCap) {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(NewCap, Empty);
    size_t Mask = NewCap - 1;
    for (uint64_t Key : Old) {
      if (Key == Empty)
        continue;
      size_t I = static_cast<size_t>(mix64(Key)) & Mask;
      while (Slots[I] != Empty)
        I = (I + 1) & Mask;
      Slots[I] = Key;
    }
  }

  std::vector<uint64_t> Slots;
  size_t Count = 0;
};

/// Insert-only open-addressed map uint64_t -> uint32_t (same probing
/// scheme as FlatSet64, keys and values in parallel arrays). Used to
/// assign dense row indices to (src, dst) node pairs.
class FlatMap64 {
  static constexpr uint64_t Empty = ~uint64_t(0);

public:
  FlatMap64() = default;

  size_t size() const { return Count; }

  /// \returns the value of \p Key, inserting \p NewValue if absent,
  /// and whether the insertion happened.
  std::pair<uint32_t, bool> findOrInsert(uint64_t Key, uint32_t NewValue) {
    assert(Key != Empty && "the all-ones key is reserved");
    if (Keys.empty())
      rehash(8);
    size_t Mask = Keys.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    while (true) {
      uint64_t S = Keys[I];
      if (S == Key)
        return {Values[I], false};
      if (S == Empty)
        break;
      I = (I + 1) & Mask;
    }
    Keys[I] = Key;
    Values[I] = NewValue;
    if (++Count * 8 >= Keys.size() * 7)
      rehash(Keys.size() * 2);
    return {NewValue, true};
  }

  /// \returns a pointer to the value of \p Key, or nullptr if absent.
  /// Read-only (safe to call concurrently with other lookups); the
  /// pointer is invalidated by the next findOrInsert.
  const uint32_t *lookup(uint64_t Key) const {
    if (Keys.empty())
      return nullptr;
    size_t Mask = Keys.size() - 1;
    size_t I = static_cast<size_t>(mix64(Key)) & Mask;
    while (true) {
      uint64_t S = Keys[I];
      if (S == Key)
        return &Values[I];
      if (S == Empty)
        return nullptr;
      I = (I + 1) & Mask;
    }
  }

  void reserve(size_t N) {
    size_t Cap = 8;
    while (Cap * 7 < N * 8)
      Cap *= 2;
    if (Cap > Keys.size())
      rehash(Cap);
  }

  /// Empties the map but keeps its capacity (the incremental solver
  /// rebuilds its provenance indexes in place after a retraction).
  void clear() {
    std::fill(Keys.begin(), Keys.end(), Empty);
    std::fill(Values.begin(), Values.end(), 0u);
    Count = 0;
  }

  /// Heap bytes held (for the solver's approximate memory budget).
  size_t memoryBytes() const {
    return Keys.capacity() * sizeof(uint64_t) +
           Values.capacity() * sizeof(uint32_t);
  }

  /// Invokes \p F(key, value) for every entry, in slot (hash) order —
  /// NOT insertion order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0, E = Keys.size(); I != E; ++I)
      if (Keys[I] != Empty)
        F(Keys[I], Values[I]);
  }

private:
  void rehash(size_t NewCap) {
    std::vector<uint64_t> OldK = std::move(Keys);
    std::vector<uint32_t> OldV = std::move(Values);
    Keys.assign(NewCap, Empty);
    Values.assign(NewCap, 0);
    size_t Mask = NewCap - 1;
    for (size_t J = 0, E = OldK.size(); J != E; ++J) {
      if (OldK[J] == Empty)
        continue;
      size_t I = static_cast<size_t>(mix64(OldK[J])) & Mask;
      while (Keys[I] != Empty)
        I = (I + 1) & Mask;
      Keys[I] = OldK[J];
      Values[I] = OldV[J];
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<uint32_t> Values;
  size_t Count = 0;
};

} // namespace rasc

#endif // RASC_SUPPORT_FLATSET_H
