//===- support/Hashing.h - Hash utilities -----------------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hashing helpers used by the interning tables throughout the
/// library. We use a 64-bit FNV/boost-style mixer; the goal is decent
/// dispersion for dense integer ids, not cryptographic strength.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_HASHING_H
#define RASC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rasc {

/// Finalizer of splitmix64: a full-avalanche mix of one 64-bit value.
/// Used directly by the open-addressed tables (support/FlatSet.h) and
/// as the hasher for packed-pair keys, where the identity hash of the
/// standard containers would cluster dense ids into adjacent buckets.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

/// Hash functor applying mix64 to an integral key (e.g. two 32-bit
/// ids packed into a uint64_t).
struct Mix64Hash {
  size_t operator()(uint64_t Key) const {
    return static_cast<size_t>(mix64(Key));
  }
};

/// Mixes \p Value into the running hash \p Seed.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit variant of boost::hash_combine with a splitmix-style finalizer.
  uint64_t X = Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  return Seed ^ X;
}

/// Hashes a contiguous range of integral values.
template <typename Iter>
uint64_t hashRange(Iter Begin, Iter End, uint64_t Seed = 0x12345678ULL) {
  uint64_t H = Seed;
  for (Iter I = Begin; I != End; ++I)
    H = hashCombine(H, static_cast<uint64_t>(*I));
  return H;
}

/// Hash functor for std::pair of integral types, usable as the Hash
/// template argument of unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B> &P) const {
    return static_cast<size_t>(
        hashCombine(static_cast<uint64_t>(P.first),
                    static_cast<uint64_t>(P.second)));
  }
};

/// Hash functor for std::vector of integral types.
struct VectorHash {
  template <typename T>
  size_t operator()(const std::vector<T> &V) const {
    return static_cast<size_t>(hashRange(V.begin(), V.end()));
  }
};

} // namespace rasc

#endif // RASC_SUPPORT_HASHING_H
