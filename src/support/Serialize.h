//===- support/Serialize.h - Checksummed binary snapshots -------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level layer of the solver's durability subsystem
/// (core/Snapshot.cpp): little-endian scalar encoding, CRC32, and a
/// section-framed container file written atomically.
///
/// File layout (all integers little-endian):
///
///   magic        8 bytes  "RASCSNAP"
///   version      u32      format version (consumer-checked)
///   numSections  u32      section count
///   headerCrc    u32      CRC32 of the 16 bytes above
///   section*     numSections times:
///     tag        u32      fourcc, writer-defined
///     length     u64      payload bytes
///     crc        u32      CRC32 of the payload
///     payload    length bytes
///
/// Every section carries its own CRC so a torn write, a bit flip, or a
/// truncation anywhere in the file is *detected and rejected* at load
/// — corruption surfaces as a rasc::Diag, never as silently wrong
/// state. Writes go through a temp file + fsync + rename so a crash
/// mid-save leaves the previous snapshot intact; the I/O failpoints
/// (support/FailPoint.h: TornWrite, ShortRead, FsyncFail) let tests
/// inject each failure mode deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SUPPORT_SERIALIZE_H
#define RASC_SUPPORT_SERIALIZE_H

#include "support/Diag.h"

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace rasc {

/// CRC32 (the standard reflected 0xEDB88320 polynomial, as in zip).
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

/// Append-only little-endian scalar encoder into a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void bytes(const void *Data, size_t Len) { raw(Data, Len); }

  const std::vector<uint8_t> &data() const { return Buf; }
  size_t size() const { return Buf.size(); }

private:
  void raw(const void *P, size_t N) {
    // Scalars are stored host-order; the format is declared
    // little-endian, which every supported target is.
    static_assert(sizeof(uint32_t) == 4 && sizeof(double) == 8);
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Buf.insert(Buf.end(), B, B + N);
  }

  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
/// Reading past the end returns zeros and latches bad(); callers check
/// once per section instead of per scalar, and a bad() reader is how
/// corrupt variable-length data (a length field pointing past the
/// payload) surfaces without UB.
class ByteReader {
public:
  ByteReader() = default;
  ByteReader(const uint8_t *Data, size_t Len) : Cur(Data), End(Data + Len) {}

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof V);
    return V;
  }

  bool bad() const { return Bad; }
  size_t remaining() const { return static_cast<size_t>(End - Cur); }
  bool atEnd() const { return Cur == End; }

private:
  void raw(void *P, size_t N) {
    if (remaining() < N) {
      Bad = true;
      Cur = End;
      return;
    }
    std::memcpy(P, Cur, N);
    Cur += N;
  }

  const uint8_t *Cur = nullptr;
  const uint8_t *End = nullptr;
  bool Bad = false;
};

/// Builder for a section-framed snapshot file. Sections are written in
/// beginSection() order; commit() frames them with lengths and CRCs
/// and writes the file atomically (temp + fsync + rename + directory
/// fsync).
class SnapshotWriter {
public:
  /// Starts a new section and returns the writer for its payload. The
  /// reference stays valid until the next beginSection()/commit().
  ByteWriter &beginSection(uint32_t Tag) {
    Sections.push_back({Tag, {}});
    return Sections.back().Body;
  }

  /// Writes the framed file to \p Path atomically. On failure nothing
  /// at \p Path is disturbed (the temp file is removed). Consults the
  /// TornWrite and FsyncFail failpoints.
  std::optional<Diag> commit(const std::string &Path,
                             uint32_t Version) const;

private:
  struct Section {
    uint32_t Tag;
    ByteWriter Body;
  };
  std::vector<Section> Sections;
};

/// Parsed, CRC-verified view of a snapshot file. All validation that
/// the *container* can do — magic, header CRC, section framing inside
/// the file bounds, per-section CRC — happens in read(); semantic
/// validation of section contents is the consumer's job.
class SnapshotReader {
public:
  /// Reads and verifies \p Path; any I/O error, framing error, or CRC
  /// mismatch is a Diag. Consults the ShortRead failpoint.
  static Expected<SnapshotReader> read(const std::string &Path);

  uint32_t version() const { return Version; }

  /// \returns a reader over the payload of the first section tagged
  /// \p Tag, or an empty optional when absent.
  std::optional<ByteReader> section(uint32_t Tag) const {
    for (const SectionRef &S : Sections)
      if (S.Tag == Tag)
        return ByteReader(File.data() + S.Offset, S.Length);
    return std::nullopt;
  }

private:
  SnapshotReader() = default;

  uint32_t Version = 0;
  std::vector<uint8_t> File;
  struct SectionRef {
    uint32_t Tag;
    size_t Offset;
    size_t Length;
  };
  std::vector<SectionRef> Sections;
};

/// Packs a fourcc section tag, e.g. sectionTag("META").
constexpr uint32_t sectionTag(const char (&S)[5]) {
  return static_cast<uint32_t>(S[0]) | (static_cast<uint32_t>(S[1]) << 8) |
         (static_cast<uint32_t>(S[2]) << 16) |
         (static_cast<uint32_t>(S[3]) << 24);
}

} // namespace rasc

#endif // RASC_SUPPORT_SERIALIZE_H
