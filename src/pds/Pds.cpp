//===- pds/Pds.cpp - Pushdown systems and reachability ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pds/Pds.h"

#include <deque>

using namespace rasc;

bool ConfigAutomaton::addTransition(uint32_t From, StackSym Sym,
                                    uint32_t To) {
  assert(From < NumStates && To < NumStates && "state out of range");
  if (!TransSet[key(From, Sym)].insert(To).second)
    return false;
  if (Out.size() < NumStates)
    Out.resize(NumStates);
  Out[From].emplace_back(Sym, To);
  ++NumTrans;
  return true;
}

namespace {

/// Epsilon closure of a state set.
void epsClose(const ConfigAutomaton &A, std::vector<uint32_t> &States,
              std::unordered_set<uint32_t> &Seen) {
  std::deque<uint32_t> Work(States.begin(), States.end());
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    for (auto [Sym, T] : A.transitionsFrom(S))
      if (Sym == EpsilonSym && Seen.insert(T).second) {
        States.push_back(T);
        Work.push_back(T);
      }
  }
}

} // namespace

bool ConfigAutomaton::accepts(PdsState P,
                              std::span<const StackSym> Word) const {
  assert(P < NumControls && "not a control state");
  std::vector<uint32_t> Cur{P};
  std::unordered_set<uint32_t> Seen{P};
  epsClose(*this, Cur, Seen);
  for (StackSym Sym : Word) {
    std::vector<uint32_t> Next;
    std::unordered_set<uint32_t> NextSeen;
    for (uint32_t S : Cur)
      for (auto [A, T] : transitionsFrom(S))
        if (A == Sym && NextSeen.insert(T).second)
          Next.push_back(T);
    epsClose(*this, Next, NextSeen);
    Cur = std::move(Next);
    Seen = std::move(NextSeen);
    if (Cur.empty())
      return false;
  }
  for (uint32_t S : Cur)
    if (isAccepting(S))
      return true;
  return false;
}

bool ConfigAutomaton::anyAccepted(PdsState P) const {
  return shortestAccepted(P).has_value();
}

std::optional<std::vector<StackSym>>
ConfigAutomaton::shortestAccepted(PdsState P) const {
  assert(P < NumControls && "not a control state");
  // BFS over automaton states, tracking one parent edge each.
  struct Parent {
    uint32_t State;
    StackSym Sym;
  };
  std::vector<std::optional<Parent>> Par(NumStates);
  std::vector<bool> Seen(NumStates, false);
  std::deque<uint32_t> Work{P};
  Seen[P] = true;
  uint32_t Found = ~0u;
  if (isAccepting(P))
    Found = P;
  while (!Work.empty() && Found == ~0u) {
    uint32_t S = Work.front();
    Work.pop_front();
    for (auto [Sym, T] : transitionsFrom(S)) {
      if (Seen[T])
        continue;
      Seen[T] = true;
      Par[T] = Parent{S, Sym};
      if (isAccepting(T)) {
        Found = T;
        break;
      }
      Work.push_back(T);
    }
  }
  if (Found == ~0u)
    return std::nullopt;
  std::vector<StackSym> Word;
  for (uint32_t S = Found; S != P;) {
    assert(Par[S] && "broken BFS parent chain");
    if (Par[S]->Sym != EpsilonSym)
      Word.push_back(Par[S]->Sym);
    S = Par[S]->State;
  }
  std::reverse(Word.begin(), Word.end());
  return Word;
}

ConfigAutomaton rasc::postStar(const Pds &P, const ConfigAutomaton &Init) {
  assert(Init.numControls() == P.numControls() && "mismatched systems");
#ifndef NDEBUG
  for (uint32_t S = 0; S != Init.numStates(); ++S)
    for (auto [Sym, T] : Init.transitionsFrom(S))
      assert(T >= P.numControls() &&
             "initial automaton must not enter control states");
#endif

  // Index rules by (control, stack symbol).
  std::unordered_map<uint64_t, std::vector<const PdsRule *>> RuleIdx;
  for (const PdsRule &R : P.rules())
    RuleIdx[(static_cast<uint64_t>(R.P) << 32) | R.Gamma].push_back(&R);

  ConfigAutomaton A(P.numControls());
  while (A.numStates() < Init.numStates())
    A.addState();
  for (uint32_t S = 0; S != Init.numStates(); ++S)
    if (Init.isAccepting(S))
      A.setAccepting(S);

  // Mid states q_{p', gamma1} for push rules.
  std::unordered_map<uint64_t, uint32_t> MidStates;
  auto midState = [&](PdsState Q, StackSym G) {
    auto [It, New] = MidStates.emplace(
        (static_cast<uint64_t>(Q) << 32) | G, 0);
    if (New)
      It->second = A.addState();
    return It->second;
  };

  // Uniform worklist closure; epsilon compensation is maintained
  // incrementally in both directions.
  std::deque<std::tuple<uint32_t, StackSym, uint32_t>> Work;
  std::vector<std::vector<uint32_t>> EpsIn; // EpsIn[q] = {r : (r,eps,q)}
  auto insert = [&](uint32_t From, StackSym Sym, uint32_t To) {
    if (A.addTransition(From, Sym, To))
      Work.emplace_back(From, Sym, To);
    if (EpsIn.size() < A.numStates())
      EpsIn.resize(A.numStates());
  };

  for (uint32_t S = 0; S != Init.numStates(); ++S)
    for (auto [Sym, T] : Init.transitionsFrom(S))
      insert(S, Sym, T);
  if (EpsIn.size() < A.numStates())
    EpsIn.resize(A.numStates());

  while (!Work.empty()) {
    auto [Q, Sym, Q2] = Work.front();
    Work.pop_front();
    if (EpsIn.size() < A.numStates())
      EpsIn.resize(A.numStates());

    if (Sym != EpsilonSym) {
      // PDS rules fire on transitions out of control states.
      if (Q < P.numControls()) {
        auto It = RuleIdx.find((static_cast<uint64_t>(Q) << 32) | Sym);
        if (It != RuleIdx.end()) {
          for (const PdsRule *R : It->second) {
            switch (R->Push.size()) {
            case 0:
              insert(R->Q, EpsilonSym, Q2);
              break;
            case 1:
              insert(R->Q, R->Push[0], Q2);
              break;
            case 2: {
              uint32_t Mid = midState(R->Q, R->Push[0]);
              if (EpsIn.size() < A.numStates())
                EpsIn.resize(A.numStates());
              insert(R->Q, R->Push[0], Mid);
              insert(Mid, R->Push[1], Q2);
              break;
            }
            default:
              assert(false && "rules push at most two symbols");
            }
          }
        }
      }
      // Epsilon compensation: r --eps--> Q --Sym--> Q2.
      for (uint32_t R : EpsIn[Q])
        insert(R, Sym, Q2);
    } else {
      EpsIn[Q2].push_back(Q);
      // Compensate with existing transitions out of Q2 (copy: insert
      // may grow the adjacency list).
      auto OutQ2 = A.transitionsFrom(Q2);
      for (auto [S2, T2] : OutQ2)
        if (S2 != EpsilonSym)
          insert(Q, S2, T2);
    }
  }
  return A;
}

ConfigAutomaton rasc::preStar(const Pds &P, const ConfigAutomaton &Init) {
  assert(Init.numControls() == P.numControls() && "mismatched systems");

  ConfigAutomaton A(P.numControls());
  while (A.numStates() < Init.numStates())
    A.addState();
  for (uint32_t S = 0; S != Init.numStates(); ++S)
    if (Init.isAccepting(S))
      A.setAccepting(S);

  std::deque<std::tuple<uint32_t, StackSym, uint32_t>> Work;
  auto insert = [&](uint32_t From, StackSym Sym, uint32_t To) {
    if (A.addTransition(From, Sym, To))
      Work.emplace_back(From, Sym, To);
  };

  // Pseudo-rules ⟨p, gamma⟩ -> ⟨q', gamma2⟩ produced from push rules;
  // indexed by (q', gamma2).
  struct Pseudo {
    PdsState From;
    StackSym Gamma;
  };
  std::unordered_map<uint64_t, std::vector<Pseudo>> PseudoIdx;

  // One-symbol (and pseudo) rule application needs transitions indexed
  // by (state, symbol); ConfigAutomaton::transitionsFrom suffices.

  for (uint32_t S = 0; S != Init.numStates(); ++S)
    for (auto [Sym, T] : Init.transitionsFrom(S)) {
      assert(Sym != EpsilonSym && "pre* input must be epsilon-free");
      insert(S, Sym, T);
    }

  // Pop rules fire unconditionally: ⟨p, gamma⟩ -> ⟨p', eps⟩ means
  // ⟨p, gamma w⟩ reaches ⟨p', w⟩, so p --gamma--> p'.
  for (const PdsRule &R : P.rules())
    if (R.Push.empty())
      insert(R.P, R.Gamma, R.Q);

  // Index rules by (target control, first pushed symbol).
  std::unordered_map<uint64_t, std::vector<const PdsRule *>> HeadIdx;
  for (const PdsRule &R : P.rules())
    if (!R.Push.empty())
      HeadIdx[(static_cast<uint64_t>(R.Q) << 32) | R.Push[0]]
          .push_back(&R);

  while (!Work.empty()) {
    auto [Q, Sym, Q2] = Work.front();
    Work.pop_front();

    // Complete pseudo-rules waiting on (Q, Sym).
    auto PIt = PseudoIdx.find((static_cast<uint64_t>(Q) << 32) | Sym);
    if (PIt != PseudoIdx.end()) {
      auto Pending = PIt->second; // copy; may grow
      for (const Pseudo &Ps : Pending)
        insert(Ps.From, Ps.Gamma, Q2);
    }

    if (Q >= P.numControls())
      continue;
    auto HIt = HeadIdx.find((static_cast<uint64_t>(Q) << 32) | Sym);
    if (HIt == HeadIdx.end())
      continue;
    for (const PdsRule *R : HIt->second) {
      if (R->Push.size() == 1) {
        insert(R->P, R->Gamma, Q2);
        continue;
      }
      // Push rule ⟨p,gamma⟩ -> ⟨Q, Sym gamma2⟩ and Q --Sym--> Q2:
      // complete against existing Q2 --gamma2--> q'' and register a
      // pseudo-rule for future ones.
      StackSym G2 = R->Push[1];
      PseudoIdx[(static_cast<uint64_t>(Q2) << 32) | G2].push_back(
          {R->P, R->Gamma});
      auto OutQ2 = A.transitionsFrom(Q2); // copy
      for (auto [S2, T2] : OutQ2)
        if (S2 == G2)
          insert(R->P, R->Gamma, T2);
    }
  }
  return A;
}
