//===- pds/Pds.h - Pushdown systems and reachability ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pushdown systems with post* / pre* saturation (Bouajjani, Esparza,
/// Maler; algorithms as in Schwoon's thesis). Two roles in this
/// repository:
///
///   * the MOPS-style pushdown model checker the paper benchmarks
///     against in Table 1 (program CFG as stack, property automaton as
///     control);
///   * the engine behind the unidirectional (forward/backward)
///     constraint solvers of paper Section 5, where the coarser
///     right/left congruence makes facts (atom, state) pairs and
///     unmatched constructors a stack.
///
/// Configurations ⟨p, w⟩ are recognized by *configuration automata*
/// (P-automata): finite automata over the stack alphabet whose initial
/// states are the PDS control states; ⟨p, w⟩ is accepted iff the
/// automaton accepts w starting from p.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PDS_PDS_H
#define RASC_PDS_PDS_H

#include "support/Hashing.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rasc {

using PdsState = uint32_t;
using StackSym = uint32_t;

constexpr StackSym EpsilonSym = ~StackSym(0);

/// A pushdown rule ⟨P, Gamma⟩ -> ⟨Q, Push⟩ with |Push| <= 2; Push[0]
/// becomes the new top of stack.
struct PdsRule {
  PdsState P;
  StackSym Gamma;
  PdsState Q;
  std::vector<StackSym> Push;
};

/// A pushdown system: a set of rules over dense control-state and
/// stack-symbol ids.
class Pds {
public:
  PdsState addControlState() { return NumControls++; }
  StackSym addStackSymbol() { return NumSymbols++; }

  void addRule(PdsState P, StackSym Gamma, PdsState Q,
               std::vector<StackSym> Push) {
    assert(P < NumControls && Q < NumControls && "control out of range");
    assert(Gamma < NumSymbols && "stack symbol out of range");
    assert(Push.size() <= 2 && "normalize longer pushes");
    for (StackSym S : Push)
      assert(S < NumSymbols && "stack symbol out of range");
    Rules.push_back({P, Gamma, Q, std::move(Push)});
  }

  uint32_t numControls() const { return NumControls; }
  uint32_t numStackSymbols() const { return NumSymbols; }
  const std::vector<PdsRule> &rules() const { return Rules; }

private:
  uint32_t NumControls = 0;
  uint32_t NumSymbols = 0;
  std::vector<PdsRule> Rules;
};

/// A P-automaton recognizing a set of configurations. States [0,
/// numControls) are the PDS control states; further states may be
/// added freely. Transitions are labelled with stack symbols (post*
/// introduces internal epsilon transitions; they are eliminated in the
/// result's accepts()).
class ConfigAutomaton {
public:
  explicit ConfigAutomaton(uint32_t NumControls)
      : NumStates(NumControls), NumControls(NumControls) {}

  uint32_t addState() { return NumStates++; }
  uint32_t numStates() const { return NumStates; }
  uint32_t numControls() const { return NumControls; }

  void setAccepting(uint32_t S) {
    assert(S < NumStates && "state out of range");
    Accepting.insert(S);
  }
  bool isAccepting(uint32_t S) const { return Accepting.count(S) != 0; }

  /// Adds (From, Sym, To); Sym may be EpsilonSym. Idempotent.
  /// \returns true if the transition is new.
  bool addTransition(uint32_t From, StackSym Sym, uint32_t To);

  bool hasTransition(uint32_t From, StackSym Sym, uint32_t To) const {
    auto It = TransSet.find(key(From, Sym));
    return It != TransSet.end() && It->second.count(To) != 0;
  }

  /// All (Sym, To) out of \p From.
  const std::vector<std::pair<StackSym, uint32_t>> &
  transitionsFrom(uint32_t From) const {
    static const std::vector<std::pair<StackSym, uint32_t>> Empty;
    return From < Out.size() ? Out[From] : Empty;
  }

  /// \returns true if configuration ⟨P, Word⟩ is accepted (top of
  /// stack first).
  bool accepts(PdsState P, std::span<const StackSym> Word) const;

  /// \returns true if some configuration with control state \p P is
  /// accepted (i.e. an accepting state is reachable from P).
  bool anyAccepted(PdsState P) const;

  /// A shortest stack word (top first) accepted from \p P, if any;
  /// used for witnesses.
  std::optional<std::vector<StackSym>> shortestAccepted(PdsState P) const;

  size_t numTransitions() const { return NumTrans; }

private:
  /// Packs (From, Sym) into the exact dedup key; the mapped set holds
  /// the targets.
  static uint64_t key(uint32_t From, StackSym Sym) {
    return (static_cast<uint64_t>(From) << 32) | Sym;
  }

  uint32_t NumStates;
  uint32_t NumControls;
  size_t NumTrans = 0;
  std::unordered_set<uint32_t> Accepting;
  std::vector<std::vector<std::pair<StackSym, uint32_t>>> Out;
  std::unordered_map<uint64_t, std::unordered_set<uint32_t>> TransSet;
};

/// Computes an automaton recognizing post*(C): all configurations
/// reachable from configurations C recognized by \p Init. \p Init must
/// have no transitions into control states (standard normal form;
/// asserted).
ConfigAutomaton postStar(const Pds &P, const ConfigAutomaton &Init);

/// Computes an automaton recognizing pre*(C): all configurations from
/// which some configuration in C is reachable.
ConfigAutomaton preStar(const Pds &P, const ConfigAutomaton &Init);

} // namespace rasc

#endif // RASC_PDS_PDS_H
