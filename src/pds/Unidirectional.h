//===- pds/Unidirectional.h - Forward/backward solving ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unidirectional solver strategies of paper Section 5. Instead of
/// closing the constraint graph under the transitive rule with full
/// representative functions (up to |S|^|S| of them), a forward solver
/// propagates *facts* — an atom (constant), its current variable, and
/// the state delta(w, s0) of the word w accumulated so far. The right
/// congruence ≡_r identifies words by that single state, so the number
/// of derivable annotations per edge is |S|, not |F_M^≡|.
///
/// Unmatched constructors form a stack (they are the unreturned calls
/// / unprojected wraps), which makes whole-system forward solving
/// exactly a pushdown reachability problem:
///
///   control  = DFA state of the atom's annotation
///              (plus a pending-projection tag during unwrap);
///   stack    = current variable on top, then the unmatched
///              constructor contexts;
///   rules    = one per constraint and per control state.
///
/// Forward solving is post* from the atom's initial configurations;
/// backward solving is pre* from the target configurations (the
/// symmetric construction with the left congruence — here literally
/// the same pushdown run in reverse). Both answer the paper's queries;
/// the bidirectional solver is needed only when constraints must be
/// solved compositionally/online (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_PDS_UNIDIRECTIONAL_H
#define RASC_PDS_UNIDIRECTIONAL_H

#include "core/ConstraintSystem.h"
#include "core/Domains.h"
#include "pds/Pds.h"

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rasc {

/// Forward/backward solver for a constraint system over a MonoidDomain.
/// The system is encoded once; each queried atom runs one saturation.
class UnidirectionalSolver {
public:
  UnidirectionalSolver(const ConstraintSystem &CS, const MonoidDomain &Dom);

  /// States delta(w, s0) of words w along which \p Atom reaches \p V,
  /// allowing unmatched (PN) constructor contexts. Sorted.
  std::vector<StateId> pnStates(ConsId Atom, VarId V);

  /// Same, but only fully matched (top-level) occurrences.
  std::vector<StateId> matchedStates(ConsId Atom, VarId V);

  /// Forward query: does \p Atom reach \p V along a word in L(M)?
  bool reachesAccepting(ConsId Atom, VarId V, bool RequireMatched = false);

  /// The same query answered by backward (pre*) solving; agrees with
  /// reachesAccepting (tested), demonstrating the symmetric strategy.
  bool reachesAcceptingBackward(ConsId Atom, VarId V,
                                bool RequireMatched = false);

  /// \returns true if a constructor-mismatch constraint was seen while
  /// encoding (the system is inconsistent).
  bool sawMismatch() const { return Mismatch; }

  struct Stats {
    size_t PdsRules = 0;
    size_t PostStarTransitions = 0; // accumulated over queries
    size_t Queries = 0;
  };
  const Stats &stats() const { return Statistics; }

private:
  struct Consumer { // c^-i(subject) ⊆^h Z, or a pseudo-projection
    ConsId C;
    uint32_t Index;
    VarId Target;
    AnnId Ann;
  };

  struct ForwardResult {
    ConfigAutomaton A;
    /// Stack-symbol count when the tables were built (symbols interned
    /// by later queries have no transitions and never hit).
    size_t NumSyms;
    /// PnHit[s * NumSyms + sym]: from control s (after epsilon moves)
    /// a sym-transition reaches a co-reachable state.
    std::vector<bool> PnHit;
    /// Same with a state accepting via epsilon moves only (matched).
    std::vector<bool> MatchedHit;
  };

  void encode();
  StackSym varSym(VarId V);
  StackSym wrapSym(ExprId ConsExpr, uint32_t ArgIdx);
  PdsState projControl(uint32_t ConsumerIdx, StateId S);
  void addConsumer(VarId Subject, const Consumer &C);
  const ForwardResult &forwardResult(ConsId Atom);

  const ConstraintSystem &CS;
  const MonoidDomain &Dom;
  uint32_t NumStates; // |S| of the annotation machine

  Pds P;
  std::unordered_map<VarId, StackSym> VarSyms;
  std::map<std::pair<ExprId, uint32_t>, StackSym> WrapSyms;
  std::vector<std::pair<VarId, Consumer>> Consumers;
  std::unordered_map<uint64_t, PdsState> ProjControls;
  // Atom sources: constant ConsId -> list of (initial state, var).
  std::unordered_map<ConsId, std::vector<std::pair<StateId, VarId>>>
      AtomSources;
  bool Mismatch = false;

  std::unordered_map<ConsId, std::unique_ptr<ForwardResult>> ForwardCache;
  Stats Statistics;
};

} // namespace rasc

#endif // RASC_PDS_UNIDIRECTIONAL_H
