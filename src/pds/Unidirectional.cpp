//===- pds/Unidirectional.cpp - Forward/backward solving --------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pds/Unidirectional.h"

#include <algorithm>
#include <deque>

using namespace rasc;

UnidirectionalSolver::UnidirectionalSolver(const ConstraintSystem &CS,
                                           const MonoidDomain &Dom)
    : CS(CS), Dom(Dom), NumStates(Dom.machine().numStates()) {
  encode();
}

StackSym UnidirectionalSolver::varSym(VarId V) {
  auto [It, New] = VarSyms.emplace(V, 0);
  if (New)
    It->second = P.addStackSymbol();
  return It->second;
}

StackSym UnidirectionalSolver::wrapSym(ExprId ConsExpr, uint32_t ArgIdx) {
  auto [It, New] = WrapSyms.emplace(std::make_pair(ConsExpr, ArgIdx), 0);
  if (New)
    It->second = P.addStackSymbol();
  return It->second;
}

PdsState UnidirectionalSolver::projControl(uint32_t ConsumerIdx, StateId S) {
  uint64_t Key = (static_cast<uint64_t>(ConsumerIdx) << 32) | S;
  auto It = ProjControls.find(Key);
  assert(It != ProjControls.end() && "controls allocated in encode()");
  return It->second;
}

void UnidirectionalSolver::encode() {
  // Pass 1: scan constraints, collect rule specifications, intern all
  // stack symbols and discover all consumers so the control-state set
  // is known before any rule is emitted.
  struct VarVarSpec {
    VarId From, To;
    AnnId Ann;
  };
  struct WrapSpec {
    ExprId ConsExpr;
    VarId To;
    AnnId Ann;
  };
  std::vector<VarVarSpec> VarVars;
  std::vector<WrapSpec> Wraps;

  for (const Constraint &C : CS.constraints()) {
    const Expr &L = CS.expr(C.Lhs);
    const Expr &R = CS.expr(C.Rhs);
    switch (L.Kind) {
    case ExprKind::Var:
      if (R.Kind == ExprKind::Var) {
        VarVars.push_back({L.V, R.V, C.Ann});
        varSym(L.V);
        varSym(R.V);
      } else {
        // X ⊆^h c(Y1..Yn): n pseudo-projections on subject X.
        for (uint32_t I = 0; I != R.Args.size(); ++I)
          Consumers.emplace_back(L.V,
                                 Consumer{R.C, I, R.Args[I], C.Ann});
        varSym(L.V);
        for (VarId A : R.Args)
          varSym(A);
      }
      break;
    case ExprKind::Cons:
      if (R.Kind == ExprKind::Var) {
        if (L.Args.empty()) {
          AtomSources[L.C].emplace_back(
              Dom.apply(C.Ann, Dom.machine().start()), R.V);
        } else {
          Wraps.push_back({C.Lhs, R.V, C.Ann});
          for (uint32_t I = 0; I != L.Args.size(); ++I) {
            varSym(L.Args[I]);
            wrapSym(C.Lhs, I);
          }
        }
        varSym(R.V);
      } else {
        // cons ⊆ cons: decompose statically.
        if (L.C != R.C) {
          Mismatch = true;
          break;
        }
        for (size_t I = 0; I != L.Args.size(); ++I) {
          VarVars.push_back({L.Args[I], R.Args[I], C.Ann});
          varSym(L.Args[I]);
          varSym(R.Args[I]);
        }
      }
      break;
    case ExprKind::Proj:
      assert(R.Kind == ExprKind::Var && "checked by ConstraintSystem");
      Consumers.emplace_back(L.V, Consumer{L.C, L.Index, R.V, C.Ann});
      varSym(L.V);
      varSym(R.V);
      break;
    }
  }

  // Controls: the DFA states, then one pending-projection control per
  // (consumer, state).
  for (StateId S = 0; S != NumStates; ++S) {
    PdsState Ctl = P.addControlState();
    assert(Ctl == S && "DFA states are the first controls");
    (void)Ctl;
  }
  for (uint32_t J = 0; J != Consumers.size(); ++J)
    for (StateId S = 0; S != NumStates; ++S)
      ProjControls[(static_cast<uint64_t>(J) << 32) | S] =
          P.addControlState();

  // Pass 2: emit rules, one per spec per DFA state.
  for (const VarVarSpec &Spec : VarVars)
    for (StateId S = 0; S != NumStates; ++S)
      P.addRule(S, varSym(Spec.From), Dom.apply(Spec.Ann, S),
                {varSym(Spec.To)});

  for (const WrapSpec &Spec : Wraps) {
    const Expr &CE = CS.expr(Spec.ConsExpr);
    for (uint32_t I = 0; I != CE.Args.size(); ++I)
      for (StateId S = 0; S != NumStates; ++S)
        P.addRule(S, varSym(CE.Args[I]), Dom.apply(Spec.Ann, S),
                  {varSym(Spec.To), wrapSym(Spec.ConsExpr, I)});
  }

  for (uint32_t J = 0; J != Consumers.size(); ++J) {
    auto [Subject, C] = Consumers[J];
    // Pop: expose the wrap context under a pending-projection control.
    for (StateId S = 0; S != NumStates; ++S)
      P.addRule(S, varSym(Subject), projControl(J, S), {});
    // Match: resume at the consumer's target on a matching wrap.
    for (const auto &[Key, Sym] : WrapSyms) {
      const Expr &CE = CS.expr(Key.first);
      if (CE.C != C.C || Key.second != C.Index)
        continue;
      for (StateId S = 0; S != NumStates; ++S)
        P.addRule(projControl(J, S), Sym, Dom.apply(C.Ann, S),
                  {varSym(C.Target)});
    }
  }
  Statistics.PdsRules = P.rules().size();
}

namespace {

/// States from which an accepting state is reachable (any symbols).
std::vector<bool> coReachable(const ConfigAutomaton &A) {
  uint32_t N = A.numStates();
  std::vector<std::vector<uint32_t>> RevAdj(N);
  for (uint32_t S = 0; S != N; ++S)
    for (auto [Sym, T] : A.transitionsFrom(S))
      RevAdj[T].push_back(S);
  std::vector<bool> Mark(N, false);
  std::deque<uint32_t> Work;
  for (uint32_t S = 0; S != N; ++S)
    if (A.isAccepting(S)) {
      Mark[S] = true;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    for (uint32_t Pr : RevAdj[S])
      if (!Mark[Pr]) {
        Mark[Pr] = true;
        Work.push_back(Pr);
      }
  }
  return Mark;
}

/// States that reach an accepting state via epsilon transitions only.
std::vector<bool> acceptingByEps(const ConfigAutomaton &A) {
  uint32_t N = A.numStates();
  std::vector<std::vector<uint32_t>> RevEps(N);
  for (uint32_t S = 0; S != N; ++S)
    for (auto [Sym, T] : A.transitionsFrom(S))
      if (Sym == EpsilonSym)
        RevEps[T].push_back(S);
  std::vector<bool> Mark(N, false);
  std::deque<uint32_t> Work;
  for (uint32_t S = 0; S != N; ++S)
    if (A.isAccepting(S)) {
      Mark[S] = true;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    uint32_t S = Work.front();
    Work.pop_front();
    for (uint32_t Pr : RevEps[S])
      if (!Mark[Pr]) {
        Mark[Pr] = true;
        Work.push_back(Pr);
      }
  }
  return Mark;
}

/// Epsilon-forward closure of a single state.
std::vector<uint32_t> epsClosure(const ConfigAutomaton &A, uint32_t S0) {
  std::vector<uint32_t> Out{S0};
  std::vector<bool> Seen(A.numStates(), false);
  Seen[S0] = true;
  for (size_t I = 0; I != Out.size(); ++I)
    for (auto [Sym, T] : A.transitionsFrom(Out[I]))
      if (Sym == EpsilonSym && !Seen[T]) {
        Seen[T] = true;
        Out.push_back(T);
      }
  return Out;
}

} // namespace

const UnidirectionalSolver::ForwardResult &
UnidirectionalSolver::forwardResult(ConsId Atom) {
  auto It = ForwardCache.find(Atom);
  if (It != ForwardCache.end())
    return *It->second;

  ConfigAutomaton Init(P.numControls());
  uint32_t Qf = Init.addState();
  Init.setAccepting(Qf);
  auto SrcIt = AtomSources.find(Atom);
  if (SrcIt != AtomSources.end())
    for (auto [S, V] : SrcIt->second)
      Init.addTransition(S, varSym(V), Qf);

  auto Result = std::make_unique<ForwardResult>(
      ForwardResult{postStar(P, Init), P.numStackSymbols(), {}, {}});
  const ConfigAutomaton &A = Result->A;
  std::vector<bool> CoReach = coReachable(A);
  std::vector<bool> AccEps = acceptingByEps(A);
  size_t NumSyms = Result->NumSyms;
  Result->PnHit.assign(NumStates * NumSyms, false);
  Result->MatchedHit.assign(NumStates * NumSyms, false);
  for (StateId S = 0; S != NumStates; ++S)
    for (uint32_t Q : epsClosure(A, S))
      for (auto [Sym, T] : A.transitionsFrom(Q)) {
        if (Sym == EpsilonSym || Sym >= NumSyms)
          continue;
        size_t Idx = static_cast<size_t>(S) * NumSyms + Sym;
        if (CoReach[T])
          Result->PnHit[Idx] = true;
        if (AccEps[T])
          Result->MatchedHit[Idx] = true;
      }
  Statistics.PostStarTransitions += A.numTransitions();
  ++Statistics.Queries;
  const ForwardResult &Ref = *Result;
  ForwardCache.emplace(Atom, std::move(Result));
  return Ref;
}

std::vector<StateId> UnidirectionalSolver::pnStates(ConsId Atom, VarId V) {
  StackSym Sym = varSym(V);
  const ForwardResult &R = forwardResult(Atom);
  std::vector<StateId> Out;
  for (StateId S = 0; S != NumStates; ++S)
    if (Sym < R.NumSyms &&
        R.PnHit[static_cast<size_t>(S) * R.NumSyms + Sym])
      Out.push_back(S);
  return Out;
}

std::vector<StateId> UnidirectionalSolver::matchedStates(ConsId Atom,
                                                         VarId V) {
  StackSym Sym = varSym(V);
  const ForwardResult &R = forwardResult(Atom);
  std::vector<StateId> Out;
  for (StateId S = 0; S != NumStates; ++S)
    if (Sym < R.NumSyms &&
        R.MatchedHit[static_cast<size_t>(S) * R.NumSyms + Sym])
      Out.push_back(S);
  return Out;
}

bool UnidirectionalSolver::reachesAccepting(ConsId Atom, VarId V,
                                            bool RequireMatched) {
  std::vector<StateId> States =
      RequireMatched ? matchedStates(Atom, V) : pnStates(Atom, V);
  for (StateId S : States)
    if (Dom.machine().isAccepting(S))
      return true;
  return false;
}

bool UnidirectionalSolver::reachesAcceptingBackward(ConsId Atom, VarId V,
                                                    bool RequireMatched) {
  // Target configurations: ⟨s, varSym(V) w⟩ with s accepting (w empty
  // when a fully matched occurrence is required).
  ConfigAutomaton Target(P.numControls());
  uint32_t Qf = Target.addState();
  Target.setAccepting(Qf);
  StackSym Sym = varSym(V);
  const Dfa &M = Dom.machine();
  for (StateId S = 0; S != NumStates; ++S)
    if (M.isAccepting(S))
      Target.addTransition(S, Sym, Qf);
  if (!RequireMatched)
    for (StackSym G = 0; G != P.numStackSymbols(); ++G)
      Target.addTransition(Qf, G, Qf);

  ConfigAutomaton B = preStar(P, Target);
  auto SrcIt = AtomSources.find(Atom);
  if (SrcIt == AtomSources.end())
    return false;
  for (auto [S, V0] : SrcIt->second) {
    std::vector<StackSym> W{varSym(V0)};
    if (B.accepts(S, W))
      return true;
  }
  return false;
}
