//===- service/Rascd.cpp - Persistent solve service -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "service/Rascd.h"

#include "core/BatchSolver.h"
#include "core/ProofLog.h"
#include "service/Session.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace rasc;
using namespace rasc::service;
namespace fs = std::filesystem;

namespace {

bool writeAll(int Fd, const char *Buf, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "."
                    : Slash == 0               ? "/"
                                               : Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

/// Durable whole-file replace: temp + fsync + rename + parent fsync,
/// same discipline as core/Snapshot.cpp, so accepted text either is
/// fully on disk or the previous version is.
std::optional<Diag> atomicWriteText(const std::string &Path,
                                    const std::string &Text) {
  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Diag("cannot create '" + Tmp + "': " + std::strerror(errno));
  bool Ok = writeAll(Fd, Text.data(), Text.size()) && ::fsync(Fd) == 0;
  Ok = (::close(Fd) == 0) && Ok;
  if (!Ok) {
    ::unlink(Tmp.c_str());
    return Diag("cannot write '" + Tmp + "': " + std::strerror(errno));
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::string E = std::strerror(errno);
    ::unlink(Tmp.c_str());
    return Diag("cannot rename '" + Tmp + "' to '" + Path + "': " + E);
  }
  fsyncParentDir(Path);
  return std::nullopt;
}

std::optional<std::string> readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

Rascd::Rascd(RascdOptions O)
    : SessionsAccepted(
          MetricsRegistry::global().counter("service.sessions_accepted")),
      SessionsBusy(MetricsRegistry::global().counter(
          "service.sessions_rejected_busy")),
      AcceptFailures(
          MetricsRegistry::global().counter("service.accept_failures")),
      FramesServed(
          MetricsRegistry::global().counter("service.frames_served")),
      BadFrames(MetricsRegistry::global().counter("service.bad_frames")),
      IoErrors(MetricsRegistry::global().counter("service.io_errors")),
      WriteFailures(
          MetricsRegistry::global().counter("service.write_failures")),
      Opts(std::move(O)) {}

Rascd::~Rascd() {
  if (Started.load() && !Stopped.load())
    stop();
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int &Fd : WakePipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
}

MetricsRegistry::Histogram &Rascd::opLatency(Op O) {
  return MetricsRegistry::global().histogram(
      std::string("service.op.") + opName(O) + "_us");
}

std::optional<Diag> Rascd::ensureDataDir() {
  if (Opts.DataDir.empty())
    return Diag("rascd needs a data directory (--data)");
  std::error_code Ec;
  fs::create_directories(Opts.DataDir, Ec);
  if (Ec || !fs::is_directory(Opts.DataDir))
    return Diag("cannot create data directory '" + Opts.DataDir +
                "': " + Ec.message());
  return std::nullopt;
}

std::optional<Diag> Rascd::bindAndListen() {
  ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Diag(std::string("socket: ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (::inet_pton(AF_INET, Opts.Host.c_str(), &Addr.sin_addr) != 1)
    return Diag("invalid listen address '" + Opts.Host +
                "' (want numeric IPv4)");
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof Addr) != 0)
    return Diag("bind " + Opts.Host + ":" + std::to_string(Opts.Port) +
                ": " + std::strerror(errno));
  if (::listen(ListenFd, 64) != 0)
    return Diag(std::string("listen: ") + std::strerror(errno));
  socklen_t Len = sizeof Addr;
  ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len);
  BoundPort = ntohs(Addr.sin_port);
  if (::pipe(WakePipe) != 0)
    return Diag(std::string("pipe: ") + std::strerror(errno));
  // Nonblocking read end: the accept loop drains wake bytes
  // opportunistically and must never block on the pipe.
  ::fcntl(WakePipe[0], F_SETFL,
          ::fcntl(WakePipe[0], F_GETFL, 0) | O_NONBLOCK);
  return std::nullopt;
}

SolverOptions Rascd::solverOptionsFor(ResidentSystem &Sys) const {
  SolverOptions O = Opts.Session;
  if (Opts.IncrementalRetract) {
    O.Incremental = true;
    O.TrackProvenance = true;
  }
  O.CancelFlag = &Sys.Cancel;
  O.GroupMemory = const_cast<std::atomic<uint64_t> *>(&GroupMem);
  O.MaxGroupMemoryBytes = Opts.MaxTotalMemoryBytes;
  O.CheckpointEveryPops = Opts.CheckpointEveryPops;
  O.CheckpointPath = Sys.SnapPath;
  return O;
}

std::optional<Diag> Rascd::warmBoot() {
  // Recover every persisted system: durable text is the source of
  // truth; the snapshot is a warm-start accelerator that must never be
  // required (restore() re-certifies and falls back to fresh on any
  // Diag).
  std::vector<std::string> Names;
  std::error_code Ec;
  for (fs::directory_iterator It(Opts.DataDir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    if (It->path().extension() == ".rasc")
      Names.push_back(It->path().stem().string());
  }
  std::sort(Names.begin(), Names.end());

  std::vector<std::shared_ptr<ResidentSystem>> Booted;
  for (const std::string &Name : Names) {
    if (!validSystemName(Name)) {
      std::fprintf(stderr, "rascd: skipping '%s.rasc': invalid name\n",
                   Name.c_str());
      continue;
    }
    auto Sys = std::make_shared<ResidentSystem>();
    Sys->Name = Name;
    Sys->TextPath = Opts.DataDir + "/" + Name + ".rasc";
    Sys->SnapPath = Opts.DataDir + "/" + Name + ".rsnap";
    Sys->ProofPath = Opts.DataDir + "/" + Name + ".rprf";
    std::optional<std::string> Text = readWholeFile(Sys->TextPath);
    if (!Text) {
      std::fprintf(stderr, "rascd: skipping '%s': unreadable\n",
                   Sys->TextPath.c_str());
      continue;
    }
    Expected<ConstraintProgram> P = ConstraintProgram::parseEx(*Text);
    if (!P) {
      std::fprintf(stderr, "rascd: skipping '%s': %s\n",
                   Sys->TextPath.c_str(), P.error().render().c_str());
      continue;
    }
    Sys->Text = std::move(*Text);
    Sys->Program.emplace(std::move(*P));
    Sys->Solver = std::make_unique<BidirectionalSolver>(
        Sys->Program->system(), solverOptionsFor(*Sys));
    if (fs::exists(Sys->SnapPath, Ec)) {
      if (std::optional<Diag> D = Sys->Solver->restore(Sys->SnapPath))
        std::fprintf(stderr,
                     "rascd: snapshot '%s' rejected (%s); re-solving "
                     "'%s' from scratch\n",
                     Sys->SnapPath.c_str(), D->render().c_str(),
                     Name.c_str());
    }
    if (fs::exists(Sys->ProofPath, Ec)) {
      // A crash mid-stream leaves a torn tail after the last
      // CRC-complete chunk; truncating it keeps the persisted log
      // decodable (it merely proves less — the checker reports it as
      // an incomplete proof until the next proof-enabled SOLVE seals
      // a fresh trailer). Truncation is always safe, so a recovery
      // Diag only warrants a warning.
      uint64_t Before = fs::file_size(Sys->ProofPath, Ec);
      Expected<uint64_t> Kept = recoverProofLog(Sys->ProofPath);
      if (!Kept)
        std::fprintf(stderr, "rascd: proof log '%s' unrecoverable: %s\n",
                     Sys->ProofPath.c_str(),
                     Kept.error().render().c_str());
      else if (!Ec && Before != *Kept)
        std::fprintf(stderr,
                     "rascd: proof log '%s': truncated torn tail "
                     "(%llu -> %llu bytes)\n",
                     Sys->ProofPath.c_str(),
                     static_cast<unsigned long long>(Before),
                     static_cast<unsigned long long>(*Kept));
    }
    Booted.push_back(Sys);
  }

  if (!Booted.empty()) {
    // Bring every recovered system to a fixpoint before admitting
    // clients, under one shared budget; a SIGTERM during warm boot
    // cancels cleanly through the drain flag.
    BatchSolver::Options BO;
    BO.Threads = Opts.MaxSessions;
    BO.MaxTotalMemoryBytes = Opts.MaxTotalMemoryBytes;
    BO.CancelFlag = &Draining;
    BatchSolver Batch(BO);
    std::vector<BidirectionalSolver *> Solvers;
    for (auto &Sys : Booted)
      Solvers.push_back(Sys->Solver.get());
    Batch.solveAll(Solvers);
    for (auto &Sys : Booted)
      if (std::optional<Diag> D =
              Sys->Solver->saveCheckpoint(Sys->SnapPath))
        std::fprintf(stderr, "rascd: checkpoint '%s' failed: %s\n",
                     Sys->SnapPath.c_str(), D->render().c_str());
  }

  std::lock_guard<std::mutex> L(RegistryMx);
  for (auto &Sys : Booted)
    Registry.emplace(Sys->Name, std::move(Sys));
  return std::nullopt;
}

std::optional<Diag> Rascd::start() {
  if (std::optional<Diag> D = ensureDataDir())
    return D;
  if (std::optional<Diag> D = bindAndListen())
    return D;
  observe::setMetricsEnabled(true);
  if (std::optional<Diag> D = warmBoot())
    return D;
  Pool = std::make_unique<ThreadPool>(
      Opts.MaxSessions ? Opts.MaxSessions : 1);
  Acceptor = std::thread([this] { acceptLoop(); });
  Started.store(true);
  return std::nullopt;
}

void Rascd::acceptLoop() {
  // The loop outlives a drain request on purpose: while sessions wind
  // down, late connections still deserve a structured Busy
  // (reason=draining) instead of a hung connect. Only AcceptorExit —
  // set by the teardown once it is ready to close the listen socket —
  // ends the loop.
  while (!AcceptorExit.load(std::memory_order_relaxed)) {
    struct pollfd P[2] = {{ListenFd, POLLIN, 0},
                          {WakePipe[0], POLLIN, 0}};
    int R = ::poll(P, 2, 250);
    if (AcceptorExit.load(std::memory_order_relaxed))
      break;
    if (R > 0 && (P[1].revents & POLLIN)) {
      // Consume wake bytes so a drain request doesn't leave the pipe
      // permanently readable and turn this poll into a hot spin.
      char Scratch[16];
      while (::read(WakePipe[0], Scratch, sizeof Scratch) > 0)
        ;
    }
    if (R <= 0 || !(P[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
        AcceptFailures.add(1);
      continue;
    }
    if (failpoints::armedAny() &&
        failpoints::hit(failpoints::Point::ServiceAcceptFail)) {
      // Injected post-accept failure: the connection is lost, the
      // failure is counted, and the loop keeps admitting — exactly
      // the containment a transient accept-path fault must have.
      AcceptFailures.add(1);
      ::close(Fd);
      continue;
    }
    bool Drain = Draining.load(std::memory_order_relaxed);
    if (Drain || ActiveSessions.load(std::memory_order_relaxed) >=
                     Opts.MaxSessions) {
      // Admission rejected: structured Busy with a backoff hint, then
      // half-close and briefly drain so the hint outruns the RST.
      SessionsBusy.add(1);
      Conn B(Fd);
      B.setWriteTimeoutMs(Opts.WriteTimeoutMs);
      B.writeFrame(Op::Busy,
                   "retry-after-ms=" + std::to_string(Opts.RetryAfterMs) +
                       "\nreason=" +
                       (Drain ? "draining" : "capacity"));
      ::shutdown(B.fd(), SHUT_WR);
      struct pollfd Q = {B.fd(), POLLIN, 0};
      if (::poll(&Q, 1, 100) > 0) {
        char Scratch[256];
        while (::recv(B.fd(), Scratch, sizeof Scratch, 0) > 0)
          ;
      }
      continue; // Conn dtor closes
    }
    SessionsAccepted.add(1);
    ActiveSessions.fetch_add(1, std::memory_order_relaxed);
    Pool->run([this, Fd] {
      try {
        Session S(*this, Conn(Fd));
        S.serve();
      } catch (const std::exception &E) {
        std::fprintf(stderr, "rascd: session died: %s\n", E.what());
      } catch (...) {
        std::fprintf(stderr, "rascd: session died: unknown exception\n");
      }
      ActiveSessions.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void Rascd::requestDrain() {
  Draining.store(true, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    char One = 1;
    ssize_t Ignored = ::write(WakePipe[1], &One, 1);
    (void)Ignored;
  }
}

void Rascd::joinAndTeardown(bool FlushSnapshots) {
  AcceptorExit.store(true, std::memory_order_relaxed);
  if (WakePipe[1] >= 0) {
    char One = 1;
    ssize_t Ignored = ::write(WakePipe[1], &One, 1);
    (void)Ignored;
  }
  if (Acceptor.joinable())
    Acceptor.join();
  if (Pool) {
    try {
      Pool->waitIdle();
    } catch (const std::exception &E) {
      std::fprintf(stderr, "rascd: session escaped: %s\n", E.what());
    }
  }
  if (FlushSnapshots) {
    std::vector<std::shared_ptr<ResidentSystem>> All;
    {
      std::lock_guard<std::mutex> L(RegistryMx);
      for (auto &[Name, Sys] : Registry)
        All.push_back(Sys);
    }
    for (auto &Sys : All) {
      std::lock_guard<std::mutex> L(Sys->Mx);
      if (std::optional<Diag> D =
              Sys->Solver->saveCheckpoint(Sys->SnapPath))
        std::fprintf(stderr, "rascd: final checkpoint '%s' failed: %s\n",
                     Sys->SnapPath.c_str(), D->render().c_str());
    }
  }
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Rascd::stop() {
  if (Stopped.exchange(true))
    return;
  requestDrain();
  joinAndTeardown(/*FlushSnapshots=*/true);
}

void Rascd::stopHard() {
  if (Stopped.exchange(true))
    return;
  requestDrain();
  {
    std::lock_guard<std::mutex> L(RegistryMx);
    for (auto &[Name, Sys] : Registry)
      Sys->Cancel.store(true, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> L(FdMx);
    for (int Fd : SessionFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  joinAndTeardown(/*FlushSnapshots=*/false);
}

std::shared_ptr<ResidentSystem>
Rascd::findSystem(const std::string &Name) {
  std::lock_guard<std::mutex> L(RegistryMx);
  auto It = Registry.find(Name);
  return It == Registry.end() ? nullptr : It->second;
}

Expected<std::shared_ptr<ResidentSystem>>
Rascd::createSystem(const std::string &Name, std::string Text) {
  // Creation is rare, so the whole parse + persist + insert runs
  // under the registry lock: a name never becomes visible without its
  // durable backing, and a concurrent double-create loses cleanly.
  std::lock_guard<std::mutex> L(RegistryMx);
  if (Registry.count(Name))
    return Diag("system '" + Name + "' already exists");
  Expected<ConstraintProgram> P = ConstraintProgram::parseEx(Text);
  if (!P)
    return P.error();
  auto Sys = std::make_shared<ResidentSystem>();
  Sys->Name = Name;
  Sys->TextPath = Opts.DataDir + "/" + Name + ".rasc";
  Sys->SnapPath = Opts.DataDir + "/" + Name + ".rsnap";
  Sys->ProofPath = Opts.DataDir + "/" + Name + ".rprf";
  if (!Text.empty() && Text.back() != '\n')
    Text.push_back('\n');
  Sys->Text = std::move(Text);
  Sys->Program.emplace(std::move(*P));
  Sys->Solver = std::make_unique<BidirectionalSolver>(
      Sys->Program->system(), solverOptionsFor(*Sys));
  if (std::optional<Diag> D = persistSystemText(*Sys))
    return *D;
  Registry.emplace(Name, Sys);
  return Sys;
}

std::optional<Diag> Rascd::persistSystemText(ResidentSystem &Sys) {
  return atomicWriteText(Sys.TextPath, Sys.Text);
}

size_t Rascd::numResidentSystems() const {
  std::lock_guard<std::mutex> L(RegistryMx);
  return Registry.size();
}

void Rascd::refreshGauges() {
  MetricsRegistry &M = MetricsRegistry::global();
  M.gauge("service.active_sessions")
      .set(ActiveSessions.load(std::memory_order_relaxed));
  M.gauge("service.resident_systems").set(numResidentSystems());
  M.gauge("service.group_memory_bytes").set(groupMemoryBytes());

  // Proof-logging gauges, aggregated over every resident solver whose
  // mutex is free (a system mid-solve keeps its previous contribution
  // out of this snapshot rather than stalling STATS on its lock).
  uint64_t Records = 0, Bytes = 0, Failures = 0, Active = 0;
  std::vector<std::shared_ptr<ResidentSystem>> All;
  {
    std::lock_guard<std::mutex> L(RegistryMx);
    for (auto &[Name, Sys] : Registry)
      All.push_back(Sys);
  }
  for (auto &Sys : All) {
    std::unique_lock<std::mutex> L(Sys->Mx, std::try_to_lock);
    if (!L.owns_lock())
      continue;
    const SolverStats &St = Sys->Solver->stats();
    Records += St.ProofRecords;
    Bytes += St.ProofBytes;
    Failures += St.ProofFailures;
    Active += Sys->Solver->proofActive() ? 1 : 0;
  }
  M.gauge("service.proof_records").set(Records);
  M.gauge("service.proof_bytes").set(Bytes);
  M.gauge("service.proof_failures").set(Failures);
  M.gauge("service.proof_active_logs").set(Active);
}

void Rascd::registerSessionFd(int Fd) {
  std::lock_guard<std::mutex> L(FdMx);
  SessionFds.insert(Fd);
}

void Rascd::unregisterSessionFd(int Fd) {
  std::lock_guard<std::mutex> L(FdMx);
  SessionFds.erase(Fd);
}
