//===- service/Session.h - One rascd client session -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One admitted connection's request loop. A Session owns its Conn,
/// runs to completion on a ThreadPool worker (sessions map 1:1 onto
/// workers; admission control in Rascd guarantees a free worker), and
/// dies without taking anything else with it: every failure — parser
/// Diag, exhausted budget, malformed frame, injected fault, slow
/// client — becomes either a structured Error/Busy response or a
/// session close, never an exception that crosses the pool boundary.
///
/// The session attaches to at most one ResidentSystem at a time (the
/// LOAD op); SOLVE / ADD / RETRACT / ENTAIL / PN operate on the attachment
/// under its mutex, so two sessions sharing a system serialize on it
/// while sessions on different systems proceed in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SERVICE_SESSION_H
#define RASC_SERVICE_SESSION_H

#include "service/Protocol.h"
#include "service/Rascd.h"

#include <memory>
#include <string>

namespace rasc {
namespace service {

class Session {
public:
  Session(Rascd &Daemon, Conn C) : D(Daemon), C(std::move(C)) {
    this->C.setWriteTimeoutMs(D.options().WriteTimeoutMs);
  }

  /// Runs the request loop until the client closes, a fatal framing /
  /// IO error poisons the connection, or the daemon drains. Never
  /// throws.
  void serve();

private:
  /// One request in, one response out. \returns false when the
  /// session must close (unsyncable stream or failed write).
  bool serveOne(const Frame &F);

  // Op handlers: each returns the response frame to write.
  Frame handleLoad(const std::string &Body);
  Frame handleAdd(const std::string &Body);
  Frame handleRetract(const std::string &Body);
  Frame handleSolve(const std::string &Body);
  Frame handleQuery(const std::string &Body, bool Pn);
  Frame handleStats();
  Frame handleDrain();

  static Frame ok(std::string Body) {
    return Frame{Op::Ok, std::move(Body)};
  }
  static Frame err(std::string Msg) {
    return Frame{Op::Error, std::move(Msg)};
  }

  /// Brings the attached solver to a fixpoint (resuming if it was
  /// interrupted) under the session budgets; the caller holds the
  /// system's mutex. \returns the solve status.
  BidirectionalSolver::Status solveAttached(ResidentSystem &Sys);

  Rascd &D;
  Conn C;
  std::shared_ptr<ResidentSystem> Attached;
};

/// Renders a solver status for response bodies ("solved",
/// "inconsistent", "deadline", ...). Mirrors rasctool's exit-code
/// vocabulary (statusExitCode) so clients see one set of names.
const char *solveStatusName(BidirectionalSolver::Status S);

} // namespace service
} // namespace rasc

#endif // RASC_SERVICE_SESSION_H
