//===- service/Protocol.h - rascd wire protocol -----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol of the persistent solve service (rascd)
/// and the connection primitive both sides share. One frame is
///
///   length   u32 LE   byte count of opcode + body (>= 1)
///   opcode   u8       see Op
///   body     bytes    op-specific UTF-8 text (never interpreted as
///                     anything but text; the solver state machine is
///                     the only consumer)
///
/// Requests carry program text or "constant in variable" query text;
/// responses carry newline-separated "key=value" lines (kvGet). A
/// declared length above the daemon's frame cap makes the stream
/// unsyncable, so the session answers with a structured Error frame
/// and closes; every other malformed input (garbage opcode,
/// unparseable text) is answered on the same session, which keeps
/// serving — failure containment is per-session by construction.
///
/// Conn is a nonblocking fd wrapper that does framed reads/writes
/// under poll(2) with an idle/stall timeout, observes a drain flag
/// between frames (never mid-frame: an accepted request is always
/// answered), and consults the Service* fail points
/// (support/FailPoint.h) so tests can inject resets, short writes,
/// and accept failures deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SERVICE_PROTOCOL_H
#define RASC_SERVICE_PROTOCOL_H

#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rasc {
namespace service {

/// Frame opcodes. Requests are client -> daemon; responses daemon ->
/// client. Busy is the one unsolicited frame: the accept path sends it
/// (with a retry-after-ms backoff hint) when the daemon is over its
/// admission cap or draining, instead of queueing unboundedly.
enum class Op : uint8_t {
  // Requests.
  Load = 0x01,    ///< body: name '\n' program text (empty text = attach)
  Add = 0x02,     ///< body: statements to append to the attached system
  Solve = 0x03,   ///< body: empty; runs/resumes the attached solve
  Entail = 0x04,  ///< body: "constant in variable" (Section 3.2)
  QueryPn = 0x05, ///< body: "constant in variable" (PN, Section 6.2)
  Stats = 0x06,   ///< body: empty; answers the metrics JSON snapshot
  Drain = 0x07,   ///< body: empty; asks the daemon to drain + shut down
  Ping = 0x08,    ///< body: empty; liveness probe
  Retract = 0x09, ///< body: decimal constraint index to withdraw

  // Responses.
  Ok = 0x81,    ///< op succeeded; body is op-specific key=value text
  Error = 0x82, ///< structured failure (Diag-derived); body = message
  Busy = 0x83,  ///< admission rejected; body carries retry-after-ms
};

/// True for opcodes a client may send.
bool isRequestOp(uint8_t Raw);
/// Human name of an opcode ("load", "ok", ...); "?" when unknown.
const char *opName(Op O);

struct Frame {
  Op Kind = Op::Error;
  std::string Body;
};

/// Default cap on one frame's declared length (opcode + body). The
/// daemon's RascdOptions can lower it; a hostile declared length is
/// rejected before any allocation of that size.
inline constexpr uint32_t DefaultMaxFrameBytes = 8u << 20;

/// Longest accepted system name in a Load body.
inline constexpr size_t MaxNameBytes = 64;

/// True iff \p Name is a well-formed system name: [A-Za-z0-9_.-]+, at
/// most MaxNameBytes. Names become file names under the data dir, so
/// the alphabet is deliberately closed (no separators, no dotfiles).
bool validSystemName(std::string_view Name);

/// Serializes one frame: length prefix, opcode, body.
std::string encodeFrame(Op O, std::string_view Body);

/// Outcome of Conn::readFrame.
enum class ReadStatus : uint8_t {
  Ok,       ///< a complete frame was read
  Eof,      ///< orderly close at a frame boundary
  Drained,  ///< the drain flag fired between frames
  Timeout,  ///< idle (or mid-frame stall) timeout expired
  TooLarge, ///< declared length exceeds the cap; stream unsyncable
  BadFrame, ///< malformed framing: zero length or truncated mid-frame
  IoError,  ///< read(2)/recv(2) failure or injected fault
};
const char *readStatusName(ReadStatus S);

/// One framed connection over an owned nonblocking stream socket.
class Conn {
public:
  Conn() = default;
  /// Takes ownership of \p Fd and switches it nonblocking.
  explicit Conn(int Fd);
  Conn(Conn &&O) noexcept : Fd(std::exchange(O.Fd, -1)),
                            WriteTimeoutMs(O.WriteTimeoutMs) {}
  Conn &operator=(Conn &&O) noexcept;
  ~Conn() { close(); }
  Conn(const Conn &) = delete;
  Conn &operator=(const Conn &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Total budget for one writeFrame call (poll + send); a slow client
  /// that cannot drain a response within it fails the write.
  void setWriteTimeoutMs(int Ms) { WriteTimeoutMs = Ms; }

  /// Reads one frame. Between frames the call polls in short slices,
  /// observing \p DrainFlag (when non-null) and the idle budget; once
  /// the first byte of a frame arrived, the frame is completed
  /// regardless of drain (an accepted request is always answered) but
  /// still bounded by \p IdleTimeoutMs against mid-frame stalls.
  /// \p IdleTimeoutMs <= 0 means no timeout. On IoError/BadFrame a
  /// rendered reason is stored into \p ErrMsg when non-null.
  ReadStatus readFrame(Frame &Out, uint32_t MaxFrameBytes,
                       const std::atomic<bool> *DrainFlag,
                       int IdleTimeoutMs, std::string *ErrMsg = nullptr);

  /// Writes one frame completely or fails (short write, timeout, or
  /// injected fault); \returns false on failure with the reason in
  /// \p ErrMsg. A failed write poisons only this connection.
  bool writeFrame(Op O, std::string_view Body,
                  std::string *ErrMsg = nullptr);

  /// Half-closes both directions, waking any poll on the peer/thread
  /// without racing fd reuse (the fd itself stays owned until close).
  void shutdownBoth();

  void close();

private:
  enum class IoResult { Ok, Eof, EofMidRead, Drained, Timeout, Error };
  IoResult readExact(uint8_t *Buf, size_t N, bool FrameStarted,
                     const std::atomic<bool> *DrainFlag,
                     int IdleTimeoutMs, std::string *ErrMsg);

  int Fd = -1;
  int WriteTimeoutMs = 5000;
};

/// Client side: blocking TCP connect to \p Host:\p Port; \returns the
/// connected fd, or -1 with the reason in \p ErrMsg.
int connectTcp(const std::string &Host, uint16_t Port,
               std::string *ErrMsg);

/// Parses a query body "constant in variable" into the two names.
std::optional<std::pair<std::string, std::string>>
parseQueryBody(std::string_view Body, std::string *ErrMsg);

/// Looks up \p Key in a newline-separated "key=value" response body;
/// empty string when absent.
std::string kvGet(std::string_view Body, std::string_view Key);

} // namespace service
} // namespace rasc

#endif // RASC_SERVICE_PROTOCOL_H
