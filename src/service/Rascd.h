//===- service/Rascd.h - Persistent solve service ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// rascd: a long-running daemon that keeps named constraint systems
/// resident and serves LOAD / ADD / RETRACT / SOLVE / ENTAIL / PN /
/// STATS / DRAIN over the framed protocol in service/Protocol.h (DESIGN.md
/// §10). The daemon is an exercise in running the resumable solver of
/// Sections 3–6 under live, hostile load:
///
///  - Admission control: at most MaxSessions concurrent connections
///    (sessions map 1:1 onto support/ThreadPool.h workers); a
///    connection beyond the cap is answered with a Busy frame carrying
///    a retry-after-ms backoff hint instead of queueing unboundedly.
///    Every session solves under the per-session budgets in
///    Options.Session (deadline / edges / memory), and all resident
///    solvers share one aggregate-memory cell (SolverOptions::
///    GroupMemory) capped by MaxTotalMemoryBytes.
///
///  - Failure containment: malformed frames, parser Diags, injected
///    faults (support/FailPoint.h Service* points), and slow clients
///    poison at most their own session; the accept loop and every
///    other session keep serving.
///
///  - Durability: accepted LOAD/ADD text is persisted (atomic
///    temp+fsync+rename) under DataDir *before* the OK is written, so
///    acknowledged work survives kill -9. Solver state checkpoints to
///    "<name>.rsnap" periodically during solves and at the end of
///    every solve (core/Snapshot.cpp); start() warm-boots by
///    re-parsing the persisted text, restoring each snapshot (restore
///    re-certifies the fixpoint and falls back to a fresh re-solve on
///    any Diag), and re-solving everything through core/BatchSolver.h
///    under one shared budget.
///
///  - Trust boundary: SOLVE with body "proof=1" additionally streams
///    a machine-checkable derivation log to "<name>.rprf" next to the
///    snapshot (core/ProofLog.h, DESIGN.md §12). The standalone
///    rasccheck tool validates the log without trusting the daemon or
///    the solver, so a client need not believe a "solved" answer — it
///    can demand the proof. Kill -9 mid-stream leaves a torn tail;
///    warm boot truncates it back to the last CRC-complete chunk
///    (recoverProofLog), and the next proof-enabled SOLVE rebuilds a
///    complete log from provenance.
///
///  - Drain: requestDrain() (the DRAIN op, or SIGTERM in the rascd
///    binary) stops admission, lets in-flight requests finish — the
///    drain flag is observed only *between* frames, so an accepted
///    request is always answered — and stop() flushes a final
///    snapshot of every resident system.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SERVICE_RASCD_H
#define RASC_SERVICE_RASCD_H

#include "core/Observe.h"
#include "core/Solver.h"
#include "frontend/ConstraintParser.h"
#include "service/Protocol.h"
#include "support/Diag.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

namespace rasc {

class ThreadPool;

namespace service {

struct RascdOptions {
  /// Listen address. Host must be a numeric IPv4 address; Port 0 asks
  /// the kernel for an ephemeral port (read it back via port()).
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;

  /// Durable state directory (created if missing): "<name>.rasc"
  /// holds the accepted program text, "<name>.rsnap" the latest
  /// solver snapshot.
  std::string DataDir;

  /// Admission cap: concurrent sessions beyond this are answered Busy
  /// with RetryAfterMs and closed. Also the session pool's width.
  unsigned MaxSessions = 8;

  /// Per-session solve governance: DeadlineSeconds / MaxEdges /
  /// MaxComposeSteps / MaxMemoryBytes apply to each session's solve
  /// calls. CancelFlag / GroupMemory / Checkpoint* fields are
  /// overwritten per system by the daemon.
  SolverOptions Session;

  /// Run resident solvers with Incremental + TrackProvenance so the
  /// RETRACT op can invalidate just the retracted constraint's
  /// derivation cone and re-close from the surviving frontier
  /// (DESIGN.md §11). Provenance forces the sequential closure path
  /// and costs memory per derived edge; switch off to trade RETRACT
  /// latency (it then falls back to a fresh re-solve) for cheaper
  /// steady-state solves.
  bool IncrementalRetract = true;

  /// Aggregate cap on solver-owned memory summed over every resident
  /// system (enforced through one shared GroupMemory cell at
  /// governance cadence); 0 = unlimited.
  uint64_t MaxTotalMemoryBytes = 0;

  /// Periodic-checkpoint cadence in worklist pops (0 = only the final
  /// save each solve makes anyway). Kill -9 between checkpoints loses
  /// at most this much closure work, never accepted constraints.
  uint64_t CheckpointEveryPops = 1ull << 14;

  /// Frame cap handed to Conn::readFrame.
  uint32_t MaxFrameBytes = DefaultMaxFrameBytes;

  /// Per-session read budget: idle time between frames and the cap on
  /// a mid-frame stall (slowloris). <= 0 disables.
  int IdleTimeoutMs = 30000;

  /// Per-response write budget (Conn::setWriteTimeoutMs).
  int WriteTimeoutMs = 5000;

  /// Backoff hint carried in Busy frames.
  int RetryAfterMs = 200;
};

/// One named resident constraint system: the parsed program, its
/// solver, and the durable text the two were built from. Sessions
/// serialize solver access through Mx; Cancel is the per-system
/// cooperative cancel flag (wired as the solver's CancelFlag and set
/// by stopHard()).
struct ResidentSystem {
  std::string Name;
  std::string TextPath;  ///< DataDir/Name.rasc
  std::string SnapPath;  ///< DataDir/Name.rsnap
  std::string ProofPath; ///< DataDir/Name.rprf (SOLVE proof=1)

  std::mutex Mx;
  std::string Text; ///< durable program text (mirror of TextPath)
  std::optional<ConstraintProgram> Program;
  std::unique_ptr<BidirectionalSolver> Solver;
  std::atomic<bool> Cancel{false};
};

class Rascd {
public:
  explicit Rascd(RascdOptions Opts);
  ~Rascd();
  Rascd(const Rascd &) = delete;
  Rascd &operator=(const Rascd &) = delete;

  /// Binds and listens, warm-boots every persisted system from
  /// DataDir, then starts admitting connections. A Diag means the
  /// daemon never came up (bad address, unusable data dir); corrupt
  /// persisted state is *not* fatal — bad text is skipped with a
  /// stderr warning, bad snapshots fall back to a fresh re-solve.
  std::optional<Diag> start();

  /// The bound port (after start()); useful with Options.Port == 0.
  uint16_t port() const { return BoundPort; }

  /// Stops admission and asks sessions to wind down at their next
  /// frame boundary. Safe from any thread, including a session thread
  /// handling the DRAIN op — it only sets flags and wakes the accept
  /// loop; the blocking teardown lives in stop().
  void requestDrain();

  /// True once requestDrain() was called (the rascd binary polls this
  /// to notice a client-initiated DRAIN).
  bool draining() const {
    return Draining.load(std::memory_order_relaxed);
  }

  /// Graceful shutdown: requestDrain(), join the accept loop, wait
  /// for every session to finish, then flush a final snapshot of
  /// every resident system. Idempotent; call from the owning thread.
  void stop();

  /// Crash-simulating shutdown for tests: cancels in-flight solves,
  /// severs every session socket, joins — and deliberately skips the
  /// final snapshot flush, so recovery exercises the *periodic*
  /// checkpoints plus the durable text, exactly like kill -9.
  void stopHard();

  /// \name Session-facing API (service/Session.cpp)
  /// @{
  const RascdOptions &options() const { return Opts; }
  const std::atomic<bool> *drainFlag() const { return &Draining; }

  std::shared_ptr<ResidentSystem> findSystem(const std::string &Name);

  /// Parses \p Text, persists it, and makes it resident under
  /// \p Name. The text hits disk before the registry, so a name is
  /// never visible without its durable backing.
  Expected<std::shared_ptr<ResidentSystem>>
  createSystem(const std::string &Name, std::string Text);

  /// Atomically rewrites Sys.TextPath from Sys.Text (caller holds
  /// Sys.Mx).
  std::optional<Diag> persistSystemText(ResidentSystem &Sys);

  size_t numResidentSystems() const;
  /// Sessions currently admitted (counted until their worker returns).
  unsigned activeSessions() const {
    return ActiveSessions.load(std::memory_order_relaxed);
  }
  uint64_t groupMemoryBytes() const {
    return GroupMem.load(std::memory_order_relaxed);
  }

  /// Publishes current service gauges into the metrics registry (done
  /// before every STATS snapshot).
  void refreshGauges();

  /// Service instruments (core/Observe.h), resolved once in the ctor.
  MetricsRegistry::Counter &SessionsAccepted;
  MetricsRegistry::Counter &SessionsBusy;
  MetricsRegistry::Counter &AcceptFailures;
  MetricsRegistry::Counter &FramesServed;
  MetricsRegistry::Counter &BadFrames;
  MetricsRegistry::Counter &IoErrors;
  MetricsRegistry::Counter &WriteFailures;

  /// Latency histogram (microseconds) for one request opcode.
  MetricsRegistry::Histogram &opLatency(Op O);

  /// Live-socket registry so stopHard() can sever in-flight sessions.
  void registerSessionFd(int Fd);
  void unregisterSessionFd(int Fd);
  /// @}

private:
  friend class Session;

  std::optional<Diag> ensureDataDir();
  std::optional<Diag> bindAndListen();
  std::optional<Diag> warmBoot();
  void acceptLoop();
  void joinAndTeardown(bool FlushSnapshots);

  /// Builds the solver options for \p Sys: Options.Session plus the
  /// daemon's cancel / group-memory / checkpoint wiring.
  SolverOptions solverOptionsFor(ResidentSystem &Sys) const;

  RascdOptions Opts;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  int WakePipe[2] = {-1, -1};

  std::unique_ptr<ThreadPool> Pool;
  std::thread Acceptor;
  std::atomic<bool> Draining{false};
  /// Separate from Draining: a draining acceptor keeps answering late
  /// connections with Busy (reason=draining); only teardown ends it.
  std::atomic<bool> AcceptorExit{false};
  std::atomic<bool> Started{false};
  std::atomic<bool> Stopped{false};
  std::atomic<unsigned> ActiveSessions{0};

  mutable std::mutex RegistryMx;
  std::map<std::string, std::shared_ptr<ResidentSystem>> Registry;

  std::atomic<uint64_t> GroupMem{0};

  std::mutex FdMx;
  std::set<int> SessionFds;
};

} // namespace service
} // namespace rasc

#endif // RASC_SERVICE_RASCD_H
