//===- service/Protocol.cpp - rascd wire protocol ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/FailPoint.h"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace rasc;
using namespace rasc::service;

namespace {

/// Poll slice between drain-flag/timeout checks. Short enough that a
/// drain request is observed promptly, long enough that an idle
/// session costs a handful of wakeups per second.
constexpr int PollSliceMs = 50;

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       T0)
      .count();
}

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

bool rasc::service::isRequestOp(uint8_t Raw) {
  return Raw >= static_cast<uint8_t>(Op::Load) &&
         Raw <= static_cast<uint8_t>(Op::Retract);
}

const char *rasc::service::opName(Op O) {
  switch (O) {
  case Op::Load:
    return "load";
  case Op::Add:
    return "add";
  case Op::Solve:
    return "solve";
  case Op::Entail:
    return "entail";
  case Op::QueryPn:
    return "pn";
  case Op::Stats:
    return "stats";
  case Op::Drain:
    return "drain";
  case Op::Ping:
    return "ping";
  case Op::Retract:
    return "retract";
  case Op::Ok:
    return "ok";
  case Op::Error:
    return "error";
  case Op::Busy:
    return "busy";
  }
  return "?";
}

bool rasc::service::validSystemName(std::string_view Name) {
  if (Name.empty() || Name.size() > MaxNameBytes)
    return false;
  for (char C : Name)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '-' || C == '.'))
      return false;
  // No dotfiles / path tricks: the name must not start with a dot.
  return Name[0] != '.';
}

std::string rasc::service::encodeFrame(Op O, std::string_view Body) {
  uint32_t Len = static_cast<uint32_t>(Body.size() + 1);
  std::string Out;
  Out.reserve(4 + Len);
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.push_back(static_cast<char>((Len >> 8) & 0xff));
  Out.push_back(static_cast<char>((Len >> 16) & 0xff));
  Out.push_back(static_cast<char>((Len >> 24) & 0xff));
  Out.push_back(static_cast<char>(O));
  Out.append(Body);
  return Out;
}

const char *rasc::service::readStatusName(ReadStatus S) {
  switch (S) {
  case ReadStatus::Ok:
    return "ok";
  case ReadStatus::Eof:
    return "eof";
  case ReadStatus::Drained:
    return "drained";
  case ReadStatus::Timeout:
    return "timeout";
  case ReadStatus::TooLarge:
    return "too-large";
  case ReadStatus::BadFrame:
    return "bad-frame";
  case ReadStatus::IoError:
    return "io-error";
  }
  return "?";
}

Conn::Conn(int Fd) : Fd(Fd) {
  if (Fd >= 0)
    setNonBlocking(Fd);
}

Conn &Conn::operator=(Conn &&O) noexcept {
  if (this != &O) {
    close();
    Fd = std::exchange(O.Fd, -1);
    WriteTimeoutMs = O.WriteTimeoutMs;
  }
  return *this;
}

void Conn::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

void Conn::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Conn::IoResult Conn::readExact(uint8_t *Buf, size_t N, bool FrameStarted,
                               const std::atomic<bool> *DrainFlag,
                               int IdleTimeoutMs, std::string *ErrMsg) {
  size_t Got = 0;
  auto T0 = std::chrono::steady_clock::now();
  while (Got < N) {
    if (failpoints::armedAny() &&
        failpoints::hit(failpoints::Point::ServiceConnReset)) {
      if (ErrMsg)
        *ErrMsg = "connection reset (injected)";
      return IoResult::Error;
    }
    ssize_t R = ::recv(Fd, Buf + Got, N - Got, 0);
    if (R > 0) {
      Got += static_cast<size_t>(R);
      FrameStarted = true;
      continue;
    }
    if (R == 0)
      return (Got == 0 && !FrameStarted) ? IoResult::Eof
                                         : IoResult::EofMidRead;
    if (errno == EINTR)
      continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      if (ErrMsg)
        *ErrMsg = std::strerror(errno);
      return IoResult::Error;
    }
    // Nothing buffered: park one poll slice, then re-check the drain
    // flag (between frames only) and the idle/stall budget.
    struct pollfd P = {Fd, POLLIN, 0};
    ::poll(&P, 1, PollSliceMs);
    bool MidFrame = FrameStarted || Got > 0;
    if (!MidFrame && DrainFlag &&
        DrainFlag->load(std::memory_order_relaxed))
      return IoResult::Drained;
    if (IdleTimeoutMs > 0 &&
        secondsSince(T0) * 1000.0 >= static_cast<double>(IdleTimeoutMs)) {
      if (MidFrame && ErrMsg)
        *ErrMsg = "timed out mid-frame (slow client)";
      return IoResult::Timeout;
    }
  }
  return IoResult::Ok;
}

ReadStatus Conn::readFrame(Frame &Out, uint32_t MaxFrameBytes,
                           const std::atomic<bool> *DrainFlag,
                           int IdleTimeoutMs, std::string *ErrMsg) {
  uint8_t Hdr[4];
  switch (readExact(Hdr, sizeof Hdr, /*FrameStarted=*/false, DrainFlag,
                    IdleTimeoutMs, ErrMsg)) {
  case IoResult::Ok:
    break;
  case IoResult::Eof:
    return ReadStatus::Eof;
  case IoResult::EofMidRead:
    if (ErrMsg)
      *ErrMsg = "connection closed inside the length prefix";
    return ReadStatus::BadFrame;
  case IoResult::Drained:
    return ReadStatus::Drained;
  case IoResult::Timeout:
    return ReadStatus::Timeout;
  case IoResult::Error:
    return ReadStatus::IoError;
  }
  uint32_t Len = static_cast<uint32_t>(Hdr[0]) |
                 (static_cast<uint32_t>(Hdr[1]) << 8) |
                 (static_cast<uint32_t>(Hdr[2]) << 16) |
                 (static_cast<uint32_t>(Hdr[3]) << 24);
  if (Len == 0) {
    if (ErrMsg)
      *ErrMsg = "zero-length frame (a frame carries at least an opcode)";
    return ReadStatus::BadFrame;
  }
  if (Len > MaxFrameBytes) {
    if (ErrMsg)
      *ErrMsg = "declared frame length " + std::to_string(Len) +
                " exceeds the limit of " + std::to_string(MaxFrameBytes) +
                " bytes";
    return ReadStatus::TooLarge;
  }
  uint8_t OpByte = 0;
  switch (readExact(&OpByte, 1, /*FrameStarted=*/true, DrainFlag,
                    IdleTimeoutMs, ErrMsg)) {
  case IoResult::Ok:
    break;
  case IoResult::Eof:
  case IoResult::EofMidRead:
    if (ErrMsg)
      *ErrMsg = "connection closed mid-frame";
    return ReadStatus::BadFrame;
  case IoResult::Drained:
    return ReadStatus::Drained; // unreachable: mid-frame ignores drain
  case IoResult::Timeout:
    return ReadStatus::Timeout;
  case IoResult::Error:
    return ReadStatus::IoError;
  }
  Out.Kind = static_cast<Op>(OpByte);
  Out.Body.resize(Len - 1);
  if (Len > 1) {
    switch (readExact(reinterpret_cast<uint8_t *>(Out.Body.data()),
                      Len - 1, /*FrameStarted=*/true, DrainFlag,
                      IdleTimeoutMs, ErrMsg)) {
    case IoResult::Ok:
      break;
    case IoResult::Eof:
    case IoResult::EofMidRead:
      if (ErrMsg)
        *ErrMsg = "connection closed mid-frame";
      return ReadStatus::BadFrame;
    case IoResult::Drained:
      return ReadStatus::Drained; // unreachable, as above
    case IoResult::Timeout:
      return ReadStatus::Timeout;
    case IoResult::Error:
      return ReadStatus::IoError;
    }
  }
  return ReadStatus::Ok;
}

bool Conn::writeFrame(Op O, std::string_view Body, std::string *ErrMsg) {
  std::string Wire = encodeFrame(O, Body);
  size_t Limit = Wire.size();
  bool Injected = false;
  if (failpoints::armedAny() &&
      failpoints::hit(failpoints::Point::ServiceShortWrite)) {
    // Transmit a strict prefix, then fail: the peer sees a truncated
    // frame (its reader must reject it), and this side sees a failed
    // write (the session must close without taking the daemon down).
    Limit = Wire.size() / 2;
    Injected = true;
  }
  size_t Sent = 0;
  auto T0 = std::chrono::steady_clock::now();
  while (Sent < Limit) {
    ssize_t W = ::send(Fd, Wire.data() + Sent, Limit - Sent, MSG_NOSIGNAL);
    if (W > 0) {
      Sent += static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    if (W < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      if (ErrMsg)
        *ErrMsg = std::strerror(errno);
      return false;
    }
    struct pollfd P = {Fd, POLLOUT, 0};
    ::poll(&P, 1, PollSliceMs);
    if (WriteTimeoutMs > 0 &&
        secondsSince(T0) * 1000.0 >= static_cast<double>(WriteTimeoutMs)) {
      if (ErrMsg)
        *ErrMsg = "write timed out (slow client)";
      return false;
    }
  }
  if (Injected) {
    if (ErrMsg)
      *ErrMsg = "short write (injected)";
    return false;
  }
  return true;
}

int rasc::service::connectTcp(const std::string &Host, uint16_t Port,
                              std::string *ErrMsg) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (ErrMsg)
      *ErrMsg = std::strerror(errno);
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (ErrMsg)
      *ErrMsg = "invalid IPv4 address '" + Host + "'";
    ::close(Fd);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) !=
      0) {
    if (ErrMsg)
      *ErrMsg = std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  return Fd;
}

std::optional<std::pair<std::string, std::string>>
rasc::service::parseQueryBody(std::string_view Body, std::string *ErrMsg) {
  auto fail = [&](const char *Why) {
    if (ErrMsg)
      *ErrMsg = std::string(Why) +
                " (queries are \"constant in variable\", got \"" +
                std::string(Body.substr(0, 80)) + "\")";
    return std::nullopt;
  };
  size_t I = 0, E = Body.size();
  auto skipWs = [&] {
    while (I < E && std::isspace(static_cast<unsigned char>(Body[I])))
      ++I;
  };
  auto ident = [&]() -> std::string {
    size_t S = I;
    while (I < E && (std::isalnum(static_cast<unsigned char>(Body[I])) ||
                     Body[I] == '_'))
      ++I;
    return std::string(Body.substr(S, I - S));
  };
  skipWs();
  std::string C = ident();
  if (C.empty())
    return fail("expected a constant name");
  skipWs();
  std::string In = ident();
  if (In != "in")
    return fail("expected 'in'");
  skipWs();
  std::string V = ident();
  if (V.empty())
    return fail("expected a variable name");
  skipWs();
  if (I != E)
    return fail("trailing characters after the variable");
  return std::make_pair(std::move(C), std::move(V));
}

std::string rasc::service::kvGet(std::string_view Body,
                                 std::string_view Key) {
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t End = Body.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Body.size();
    std::string_view Line = Body.substr(Pos, End - Pos);
    size_t Eq = Line.find('=');
    if (Eq != std::string_view::npos && Line.substr(0, Eq) == Key)
      return std::string(Line.substr(Eq + 1));
    Pos = End + 1;
  }
  return {};
}
