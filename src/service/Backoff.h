//===- service/Backoff.h - Client retry backoff policy ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capped exponential backoff with deterministic jitter for clients
/// retrying Busy/refused responses from rascd (DESIGN.md §10). The
/// admission path answers over-capacity connects with a structured
/// Busy frame carrying a retry-after-ms hint; a well-behaved client
/// must neither hammer the accept loop on a fixed short period (a
/// retry storm re-rejects in lockstep) nor ignore the server's hint
/// (the daemon knows its own drain/load state better than any client
/// heuristic). This policy combines the two:
///
///   envelope(n) = min(CapMs, BaseMs * Factor^n)      n = retries so far
///   delay(n)    = uniform [envelope/2, envelope]     deterministic PRNG
///   result(n)   = max(delay(n), server hint)         hint is a *floor*
///
/// Halving the jitter window's lower edge keeps the expected delay
/// growing exponentially while decorrelating clients that hit Busy at
/// the same instant. The PRNG is a seeded xorshift64* — deterministic
/// per seed so tests can assert exact schedules, and seedable per
/// connection so concurrent bench shards spread out.
///
/// Header-only and dependency-free: the client binary links no solver
/// code for this.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_SERVICE_BACKOFF_H
#define RASC_SERVICE_BACKOFF_H

#include <cstdint>

namespace rasc {
namespace service {

struct BackoffPolicy {
  /// First retry's envelope in milliseconds.
  int BaseMs = 50;
  /// Envelope ceiling: the exponential growth saturates here. A
  /// server hint above the cap is still honored (the floor wins).
  int CapMs = 2000;
  /// Envelope growth per retry.
  double Factor = 2.0;
};

class Backoff {
public:
  explicit Backoff(BackoffPolicy P = {}, uint64_t Seed = 0x9e3779b97f4a7c15ull)
      : Policy(P), State(Seed ? Seed : 1), Attempt(0) {}

  /// Delay before the next retry, advancing the schedule. \p HintMs
  /// is the server's retry-after-ms (<= 0 when the rejection carried
  /// none, e.g. a refused connect); it floors the result so a client
  /// never returns earlier than the server asked.
  int nextDelayMs(int HintMs = 0) {
    double Envelope = static_cast<double>(Policy.BaseMs);
    for (unsigned I = 0; I < Attempt && Envelope < Policy.CapMs; ++I)
      Envelope *= Policy.Factor;
    if (Envelope > Policy.CapMs)
      Envelope = Policy.CapMs;
    ++Attempt;
    int Env = Envelope < 1 ? 1 : static_cast<int>(Envelope);
    // Uniform in [Env/2, Env]: keep the top half of the window so the
    // expected delay still doubles, jitter the rest away.
    int Lo = Env / 2;
    int Delay = Lo + static_cast<int>(next() % static_cast<uint64_t>(
                                                   Env - Lo + 1));
    return HintMs > Delay ? HintMs : Delay;
  }

  /// Retries consumed so far (== successful nextDelayMs calls).
  unsigned attempts() const { return Attempt; }

  /// Restarts the schedule after a successful exchange, keeping the
  /// PRNG stream (two resets do not replay the same jitter).
  void reset() { Attempt = 0; }

private:
  uint64_t next() {
    // xorshift64*: tiny, full-period, and plenty for jitter.
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }

  BackoffPolicy Policy;
  uint64_t State;
  unsigned Attempt;
};

} // namespace service
} // namespace rasc

#endif // RASC_SERVICE_BACKOFF_H
