//===- service/Session.cpp - One rascd client session -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "service/Session.h"

#include "core/Observe.h"

#include <chrono>
#include <cstdio>

using namespace rasc;
using namespace rasc::service;
using Status = BidirectionalSolver::Status;

const char *rasc::service::solveStatusName(Status S) {
  switch (S) {
  case Status::Solved:
    return "solved";
  case Status::Inconsistent:
    return "inconsistent";
  case Status::EdgeLimit:
    return "edge-limit";
  case Status::StepLimit:
    return "step-limit";
  case Status::Deadline:
    return "deadline";
  case Status::MemoryLimit:
    return "memory-limit";
  case Status::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

void Session::serve() {
  D.registerSessionFd(C.fd());
  while (true) {
    Frame F;
    std::string Err;
    ReadStatus RS =
        C.readFrame(F, D.options().MaxFrameBytes, D.drainFlag(),
                    D.options().IdleTimeoutMs, &Err);
    if (RS == ReadStatus::Ok) {
      if (!serveOne(F))
        break;
      continue;
    }
    if (RS == ReadStatus::Eof || RS == ReadStatus::Drained)
      break;
    if (RS == ReadStatus::Timeout) {
      // Best-effort goodbye; a client too slow to read its own
      // responses will miss it, which is fine.
      C.writeFrame(Op::Error, "session closed: " +
                                  (Err.empty() ? std::string("idle timeout")
                                               : Err));
      break;
    }
    if (RS == ReadStatus::TooLarge || RS == ReadStatus::BadFrame) {
      D.BadFrames.add(1);
      C.writeFrame(Op::Error, "malformed frame (" +
                                  std::string(readStatusName(RS)) +
                                  "): " + Err);
      break;
    }
    // IoError: nothing sensible to say on a broken socket.
    D.IoErrors.add(1);
    break;
  }
  D.unregisterSessionFd(C.fd());
  C.close();
}

bool Session::serveOne(const Frame &F) {
  uint8_t Raw = static_cast<uint8_t>(F.Kind);
  auto T0 = std::chrono::steady_clock::now();
  Frame R;
  if (!isRequestOp(Raw)) {
    // Garbage opcode inside a well-formed frame: the stream stays in
    // sync, so answer the error and keep serving this session.
    char Buf[48];
    std::snprintf(Buf, sizeof Buf, "unknown opcode 0x%02x", Raw);
    D.BadFrames.add(1);
    R = err(Buf);
  } else {
    switch (F.Kind) {
    case Op::Load:
      R = handleLoad(F.Body);
      break;
    case Op::Add:
      R = handleAdd(F.Body);
      break;
    case Op::Retract:
      R = handleRetract(F.Body);
      break;
    case Op::Solve:
      R = handleSolve(F.Body);
      break;
    case Op::Entail:
      R = handleQuery(F.Body, /*Pn=*/false);
      break;
    case Op::QueryPn:
      R = handleQuery(F.Body, /*Pn=*/true);
      break;
    case Op::Stats:
      R = handleStats();
      break;
    case Op::Drain:
      R = handleDrain();
      break;
    case Op::Ping:
      R = ok("pong=1");
      break;
    default:
      R = err("unhandled opcode");
      break;
    }
    if (observe::metricsEnabled()) {
      uint64_t Us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
      D.opLatency(F.Kind).record(Us);
    }
  }
  D.FramesServed.add(1);
  std::string WErr;
  if (!C.writeFrame(R.Kind, R.Body, &WErr)) {
    D.WriteFailures.add(1);
    return false;
  }
  return true;
}

Frame Session::handleLoad(const std::string &Body) {
  size_t NL = Body.find('\n');
  std::string Name = Body.substr(0, NL);
  if (!validSystemName(Name))
    return err("invalid system name '" + Name.substr(0, 80) +
               "' (want [A-Za-z0-9_.-]{1," +
               std::to_string(MaxNameBytes) + "}, no leading dot)");
  if (NL == std::string::npos || NL + 1 >= Body.size()) {
    // Attach-only form: the system must already be resident.
    std::shared_ptr<ResidentSystem> S = D.findSystem(Name);
    if (!S)
      return err("unknown system '" + Name +
                 "' (load with program text to create it)");
    Attached = std::move(S);
    return ok("name=" + Name + "\nattached=true");
  }
  Expected<std::shared_ptr<ResidentSystem>> E =
      D.createSystem(Name, Body.substr(NL + 1));
  if (!E)
    return err(E.error().render());
  Attached = *E;
  return ok("name=" + Name + "\ncreated=true");
}

Frame Session::handleAdd(const std::string &Body) {
  if (!Attached)
    return err("no system attached (send load first)");
  ResidentSystem &Sys = *Attached;
  std::lock_guard<std::mutex> L(Sys.Mx);
  size_t Applied = 0;
  std::optional<Diag> ParseDiag =
      Sys.Program->addStatements(Body, &Applied);
  std::optional<Diag> PersistDiag;
  if (Applied > 0) {
    // Persist exactly the applied prefix, so the durable text never
    // diverges from the in-memory system even on a mid-batch Diag.
    if (!Sys.Text.empty() && Sys.Text.back() != '\n')
      Sys.Text.push_back('\n');
    Sys.Text.append(Body, 0, Applied);
    Sys.Text.push_back('\n');
    PersistDiag = D.persistSystemText(Sys);
  }
  if (ParseDiag)
    return err("add rejected at " + ParseDiag->render() +
               " (applied-bytes=" + std::to_string(Applied) + ")");
  if (PersistDiag)
    return err("add applied in memory but not persisted: " +
               PersistDiag->render());
  return ok("applied-bytes=" + std::to_string(Applied));
}

Frame Session::handleRetract(const std::string &Body) {
  if (!Attached)
    return err("no system attached (send load first)");
  // Body: a decimal constraint index (0-based ingestion order).
  size_t B = Body.find_first_not_of(" \t\r\n");
  size_t E = Body.find_last_not_of(" \t\r\n");
  std::string Tok =
      B == std::string::npos ? std::string() : Body.substr(B, E - B + 1);
  if (Tok.empty() ||
      Tok.find_first_not_of("0123456789") != std::string::npos ||
      Tok.size() > 9)
    return err("retract wants a decimal constraint index, got '" +
               Body.substr(0, 80) + "'");
  uint32_t Idx = static_cast<uint32_t>(std::stoul(Tok));

  ResidentSystem &Sys = *Attached;
  std::lock_guard<std::mutex> L(Sys.Mx);
  // Route through the same statement path as ADD: the parser applies
  // the flag (rejecting out-of-range and double retraction with
  // Applied == 0, so nothing persists), and the durable text gains a
  // "retract N;" line that replays identically on a warm boot.
  std::string Stmt = "retract " + Tok + ";";
  size_t Applied = 0;
  std::optional<Diag> ParseDiag =
      Sys.Program->addStatements(Stmt, &Applied);
  std::optional<Diag> PersistDiag;
  if (Applied > 0) {
    if (!Sys.Text.empty() && Sys.Text.back() != '\n')
      Sys.Text.push_back('\n');
    Sys.Text.append(Stmt);
    Sys.Text.push_back('\n');
    PersistDiag = D.persistSystemText(Sys);
  }
  if (ParseDiag)
    return err("retract rejected: " + ParseDiag->render());
  if (PersistDiag)
    return err("retract applied in memory but not persisted: " +
               PersistDiag->render());

  // Prefer the incremental path (cone invalidation + frontier
  // re-closure); any retract() precondition Diag — interrupted solve,
  // cycle-elimination collapse — degrades to a fresh re-solve, which
  // is always correct because ingestion skips flagged constraints.
  BidirectionalSolver &S = *Sys.Solver;
  const char *Mode = "fresh";
  Status St;
  Expected<Status> RS = S.retract(Idx);
  if (RS) {
    Mode = "incremental";
    St = *RS;
  } else {
    S.resetToFresh();
    St = solveAttached(Sys);
  }
  std::string Resp;
  Resp += "status=";
  Resp += solveStatusName(St);
  Resp += "\nmode=";
  Resp += Mode;
  Resp += "\nretracted-edges=" + std::to_string(S.stats().RetractedEdges);
  Resp += "\nrequeued-edges=" + std::to_string(S.stats().RequeuedEdges);
  Resp += "\nedges=" + std::to_string(S.stats().EdgesInserted);
  return ok(std::move(Resp));
}

Status Session::solveAttached(ResidentSystem &Sys) {
  return Sys.Solver->solve();
}

Frame Session::handleSolve(const std::string &Body) {
  if (!Attached)
    return err("no system attached (send load first)");
  ResidentSystem &Sys = *Attached;
  std::lock_guard<std::mutex> L(Sys.Mx);
  BidirectionalSolver &S = *Sys.Solver;
  // Body "proof=1" opts this system into derivation logging: the
  // solver streams a machine-checkable log to DataDir/<name>.rprf
  // (durable next to the snapshot; rasccheck validates it offline).
  // Opt-in is sticky for the resident solver — later plain SOLVEs
  // keep appending so the log always covers the whole closure. On a
  // started solver the writer replays existing derivations from
  // provenance (rascd runs with TrackProvenance by default).
  if (Body.find("proof=1") != std::string::npos &&
      S.options().ProofLogPath.empty())
    S.options().ProofLogPath = Sys.ProofPath;
  uint64_t SavedBefore = S.stats().CheckpointsSaved;
  Status St = solveAttached(Sys);
  const char *Chk = "none";
  if (!S.options().CheckpointPath.empty()) {
    if (S.lastCheckpointDiag())
      Chk = "failed";
    else if (S.stats().CheckpointsSaved > SavedBefore)
      Chk = "saved";
  }
  std::string B;
  B += "status=";
  B += solveStatusName(St);
  B += "\nedges=" + std::to_string(S.stats().EdgesInserted);
  B += "\ncompose=" + std::to_string(S.stats().ComposeCalls);
  B += "\nresumes=" + std::to_string(S.stats().Resumes);
  B += "\nmemory=" + std::to_string(S.memoryBytes());
  B += "\ncheckpoint=";
  B += Chk;
  B += "\nproof=";
  if (S.proofActive()) {
    B += "streaming\nproof-path=" + Sys.ProofPath;
  } else if (!S.options().ProofLogPath.empty() || S.lastProofDiag()) {
    B += "abandoned";
    if (S.lastProofDiag())
      B += "\nproof-error=" + S.lastProofDiag()->render();
  } else {
    B += "off";
  }
  return ok(std::move(B));
}

Frame Session::handleQuery(const std::string &Body, bool Pn) {
  if (!Attached)
    return err("no system attached (send load first)");
  std::string QErr;
  auto Q = parseQueryBody(Body, &QErr);
  if (!Q)
    return err(QErr);
  ResidentSystem &Sys = *Attached;
  std::lock_guard<std::mutex> L(Sys.Mx);
  std::optional<ConsId> Cst = Sys.Program->consByName(Q->first);
  if (!Cst)
    return err("unknown constant '" + Q->first + "'");
  std::optional<VarId> Var = Sys.Program->varByName(Q->second);
  if (!Var)
    return err("unknown variable '" + Q->second + "'");
  // Queries read the least solution, so the solver must be at a
  // fixpoint; solve() is a cheap no-op when it already is.
  Status St = solveAttached(Sys);
  if (BidirectionalSolver::isInterrupted(St))
    return err(std::string("query needs a completed solve; "
                           "solve interrupted: status=") +
               solveStatusName(St));
  bool Holds = false;
  if (!Pn) {
    Holds = Sys.Solver->entailsConstant(*Cst, *Var);
  } else {
    AtomReachability AR = Sys.Solver->atomReachability(*Cst);
    for (AnnId F : AR.annotations(*Var))
      Holds |= Sys.Program->domain().isAccepting(F);
  }
  return ok(std::string("holds=") + (Holds ? "true" : "false") +
            "\nstatus=" + solveStatusName(St));
}

Frame Session::handleStats() {
  D.refreshGauges();
  return ok(MetricsRegistry::global().snapshot().toJson());
}

Frame Session::handleDrain() {
  D.requestDrain();
  return ok("draining=true");
}
