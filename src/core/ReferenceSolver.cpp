//===- core/ReferenceSolver.cpp - Naive resolution for testing --*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/ReferenceSolver.h"

#include <algorithm>

using namespace rasc;

bool ReferenceSolver::addConstraint(ExprId Lhs, ExprId Rhs, AnnId Ann) {
  uint64_t Key = hashCombine(hashCombine(Lhs, Rhs), Ann);
  // Hash plus full scan on hit: the oracle favours obviousness.
  if (Seen.count(Key)) {
    for (const Constraint &C : Cons)
      if (C.Lhs == Lhs && C.Rhs == Rhs && C.Ann == Ann)
        return false;
  }
  Seen.insert(Key);
  Cons.push_back({Lhs, Rhs, Ann});

  const Expr &L = CS.expr(Lhs);
  const Expr &R = CS.expr(Rhs);
  if (L.Kind == ExprKind::Cons && R.Kind == ExprKind::Cons && L.C != R.C)
    Inconsistent = true;
  return true;
}

bool ReferenceSolver::solve() {
  for (const Constraint &C : CS.constraints())
    addConstraint(C.Lhs, C.Rhs, C.Ann);

  const AnnotationDomain &D = CS.domain();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Snapshot: rules may add constraints; newly added ones are
    // revisited on the next sweep.
    size_t N = Cons.size();
    for (size_t I = 0; I != N; ++I) {
      Constraint A = Cons[I];
      // By value: CS.var() below interns, which can reallocate the
      // expr table under any reference into it.
      const Expr AL = CS.expr(A.Lhs);
      const Expr AR = CS.expr(A.Rhs);

      // Structural rule.
      if (AL.Kind == ExprKind::Cons && AR.Kind == ExprKind::Cons &&
          AL.C == AR.C)
        for (size_t K = 0; K != AL.Args.size(); ++K)
          Changed |= addConstraint(CS.var(AL.Args[K]),
                                   CS.var(AR.Args[K]), A.Ann);

      for (size_t J = 0; J != N; ++J) {
        Constraint B = Cons[J];
        const Expr BL = CS.expr(B.Lhs);
        const Expr BR = CS.expr(B.Rhs);

        // Transitive rule: A.Rhs is the middle variable.
        if (AR.Kind == ExprKind::Var && BL.Kind == ExprKind::Var &&
            AR.V == BL.V && AL.Kind != ExprKind::Proj &&
            BR.Kind != ExprKind::Proj)
          Changed |= addConstraint(A.Lhs, B.Rhs, D.compose(B.Ann, A.Ann));

        // Projection rule: A is c(..) ⊆^f Y, B is c^-i(Y) ⊆^g Z.
        if (AL.Kind == ExprKind::Cons && AR.Kind == ExprKind::Var &&
            BL.Kind == ExprKind::Proj && BL.C == AL.C &&
            BL.V == AR.V)
          Changed |= addConstraint(CS.var(AL.Args[BL.Index]), B.Rhs,
                                   D.compose(B.Ann, A.Ann));
      }
    }
  }
  return !Inconsistent;
}

std::vector<AnnId> ReferenceSolver::constantAnnotations(ConsId C,
                                                        VarId V) const {
  std::vector<AnnId> Out;
  for (const Constraint &Con : Cons) {
    const Expr &L = CS.expr(Con.Lhs);
    const Expr &R = CS.expr(Con.Rhs);
    if (L.Kind == ExprKind::Cons && L.C == C && L.Args.empty() &&
        R.Kind == ExprKind::Var && R.V == V &&
        std::find(Out.begin(), Out.end(), Con.Ann) == Out.end())
      Out.push_back(Con.Ann);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
