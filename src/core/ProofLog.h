//===- core/ProofLog.h - Streaming derivation logs --------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-checkable proof logging (DESIGN.md §12): the solver
/// optionally streams one record per derivation — every inserted edge
/// justified by a closure-rule instance naming its premises, plus
/// cycle collapses, surface-constraint ingests, function-variable
/// constraints, conflicts, and a status trailer — into an append-only
/// log a standalone checker (src/check, zero shared solver code) can
/// replay against the paper's closure rules without trusting this
/// process.
///
/// The log is a sequence of CRC-framed chunks:
///
///   tag      u32   "PRFH" (header) or "PRFC" (records)
///   length   u64   payload byte count
///   crc      u32   CRC-32 of the payload
///   payload  bytes
///
/// so a torn tail (kill -9 mid-write) is detectable: the first chunk
/// whose frame or CRC does not check out, and everything after it, is
/// garbage, and recoverProofLog() truncates the file back to the last
/// good chunk boundary. The header chunk embeds the annotation
/// domain's defining data (the DFA, or the gen/kill width) so the
/// checker can evaluate the annotation algebra from first principles;
/// record chunks carry the derivation stream with definitions (ANN /
/// NODE / CTOR / VARN) interleaved lazily before first use.
///
/// Emission is bounded-memory (one chunk buffer, flushed at a fixed
/// threshold) and *fallible by design*: an I/O failure (including the
/// injected TornWrite / FsyncFail fail points) marks the writer
/// broken and surfaces a Diag, and the owning solve degrades to
/// "unproven" — it keeps solving, it just can no longer produce a
/// checkable artifact. A failed proof never kills a solve.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_PROOFLOG_H
#define RASC_CORE_PROOFLOG_H

#include "core/ConstraintSystem.h"
#include "support/Diag.h"
#include "support/Serialize.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace rasc {

class MonoidDomain;
class GenKillDomain;

/// A premise of a derivation record: the (src, dst, ann) triple of an
/// earlier EDGE record (or a surface edge). Src == InvalidExpr marks
/// an absent premise slot.
struct ProofPremise {
  ExprId Src = InvalidExpr;
  ExprId Dst = InvalidExpr;
  AnnId Ann = 0;
};

/// Cumulative emission counters, surfaced through SolverStats: the
/// writer bumps raw pointers so the counts survive writer teardown
/// and aggregate across rebuilds. Null pointers are skipped.
struct ProofSinks {
  uint64_t *Records = nullptr;
  uint64_t *Chunks = nullptr;
  uint64_t *Bytes = nullptr;
};

/// Streaming writer for one proof log. Owned by BidirectionalSolver;
/// every emitter is a no-op once the writer is broken (first I/O
/// failure latches, diag() explains).
class ProofLogWriter {
public:
  /// On-disk format tags, shared (as documented constants, not code)
  /// with src/check. Bump Version on any layout change.
  static constexpr uint32_t Version = 1;

  /// Record type bytes.
  enum RecordType : uint8_t {
    RecAnn = 0x01,        ///< annotation definition (id -> table)
    RecNode = 0x02,       ///< expression node definition
    RecCtor = 0x03,       ///< constructor definition
    RecVarName = 0x04,    ///< variable name definition
    RecConstraint = 0x05, ///< ingested surface constraint
    RecCollapse = 0x06,   ///< cycle-elimination merge Var -> Rep
    RecEdge = 0x07,       ///< derived edge + rule + premises
    RecConflict = 0x08,   ///< constructor-mismatch edge + premises
    RecFnVar = 0x09,      ///< f ∘ a ⊆ b from the structural rule
    RecStatus = 0x0A,     ///< solve trailer (status + progress)
  };

  /// Rule bytes of RecEdge / RecConflict. Values mirror the solver's
  /// EdgeProv::Rule order; the checker re-derives each rule's
  /// obligation from the paper, not from this enum.
  enum Rule : uint8_t {
    RuleSurface = 0,
    RuleTransitive = 1,
    RuleDecompose = 2,
    RuleProjection = 3,
  };

  /// Status byte of RecStatus. 0–6 mirror BidirectionalSolver::Status;
  /// Unproven marks a log the solver abandoned (emission failure or a
  /// retraction) — the checker refuses to certify such a log.
  enum StatusCode : uint8_t {
    StSolved = 0,
    StInconsistent = 1,
    StEdgeLimit = 2,
    StStepLimit = 3,
    StDeadline = 4,
    StMemoryLimit = 5,
    StCancelled = 6,
    StUnproven = 7,
  };

  /// Creates \p Path (truncating any previous log) and writes the
  /// header chunk: version, the semantic solver flags the checker
  /// must honor (FilterUseless, CycleElimination), and the annotation
  /// domain's defining data. Supported domains: trivial, monoid
  /// (embeds the DFA), gen/kill (embeds the bit width); any other
  /// domain is a Diag ("proof logging unsupported for this domain").
  static Expected<std::unique_ptr<ProofLogWriter>>
  open(std::string Path, const ConstraintSystem &CS, bool FilterUseless,
       bool CycleElimination, ProofSinks Sinks);

  ~ProofLogWriter();
  ProofLogWriter(const ProofLogWriter &) = delete;
  ProofLogWriter &operator=(const ProofLogWriter &) = delete;

  /// False once any write failed; emitters are no-ops from then on.
  bool ok() const { return !Broken; }

  /// The first failure, if any.
  const std::optional<Diag> &diag() const { return FailDiag; }

  const std::string &path() const { return LogPath; }

  /// Approximate writer-owned heap memory (chunk buffer + emitted-id
  /// bitmaps), for the solver's memoryBytes() governance accounting.
  size_t memoryBytes() const;

  /// \name Record emitters
  /// Definitions (annotations, nodes, constructors, variable names)
  /// are emitted lazily before the first record that references them.
  /// @{

  /// Cycle elimination merged \p V into representative \p Rep.
  void collapse(VarId V, VarId Rep);

  /// Constraint \p Idx of the system was ingested; \p CanL / \p CanR
  /// are its sides after representative substitution (the nodes its
  /// surface edge joins).
  void constraint(uint32_t Idx, const Constraint &Orig, ExprId CanL,
                  ExprId CanR);

  /// A derived (non-conflict) edge Src ⊆^Ann Dst. \p CIdx names the
  /// ingested constraint for RuleSurface / RuleProjection; \p P1 / \p
  /// P2 name premise edges per rule (transitive: two; decompose and
  /// projection: one; surface: none).
  void edge(ExprId Src, ExprId Dst, AnnId Ann, Rule R, uint32_t CIdx,
            const ProofPremise &P1, const ProofPremise &P2);

  /// A constructor-mismatch conflict, same payload as edge().
  void conflict(ExprId Src, ExprId Dst, AnnId Ann, Rule R, uint32_t CIdx,
                const ProofPremise &P1, const ProofPremise &P2);

  /// The structural rule emitted f ∘ From ⊆ To while decomposing the
  /// cons-cons premise \p Justifying.
  void fnvar(FnVarId From, AnnId Fn, FnVarId To,
             const ProofPremise &Justifying);

  /// Solve trailer: flushes the chunk buffer and fsyncs. A log may
  /// carry several (one per solve() on a resumed solver); the last one
  /// is authoritative. \p ProcessedEdges / \p IngestedConstraints let
  /// the checker pin the closed prefix its closedness pass covers.
  void finish(StatusCode Code, uint64_t ProcessedEdges,
              uint64_t IngestedConstraints);

  /// @}

private:
  ProofLogWriter(std::string Path, const ConstraintSystem &CS,
                 ProofSinks Sinks);

  void needAnn(AnnId A);
  void needNode(ExprId E);
  void needCtor(ConsId C);
  void needVar(VarId V);
  void premise(ByteWriter &W, const ProofPremise &P);
  void beginRecord(uint8_t Type);
  void flushChunk(bool Fsync);
  void fail(Diag D);

  std::string LogPath;
  const ConstraintSystem &CS;
  const MonoidDomain *MonDom = nullptr;   // exactly one of these is
  const GenKillDomain *GkDom = nullptr;   // set for non-trivial domains
  ProofSinks Sinks;
  int Fd = -1;
  ByteWriter Buf;
  std::vector<bool> AnnEmitted, NodeEmitted, CtorEmitted, VarEmitted;
  bool Broken = false;
  std::optional<Diag> FailDiag;
};

/// Scans \p Path chunk by chunk and truncates the file after the last
/// chunk whose frame and CRC check out (the warm-boot torn-tail
/// recovery; a cleanly written log is untouched). \returns the number
/// of surviving bytes; a Diag only for I/O errors — a fully garbage
/// file truncates to zero bytes successfully.
Expected<uint64_t> recoverProofLog(const std::string &Path);

} // namespace rasc

#endif // RASC_CORE_PROOFLOG_H
