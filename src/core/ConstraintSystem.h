//===- core/ConstraintSystem.h - Annotated set constraints ------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of a system of regularly annotated set constraints
/// (paper Section 2). Set expressions are
///
///   se ::= X | c^alpha(X1, ..., Xn) | c^-i(X)
///
/// i.e. constructor arguments and projection subjects are variables;
/// nested expressions are encoded with auxiliary variables. Every
/// constructor expression carries a *function variable* alpha (its
/// word-set variable, Section 2.4); these are allocated automatically
/// and never appear in the surface API, matching the paper ("it is
/// possible to infer the needed set expression annotations during
/// constraint resolution").
///
/// A constraint lhs ⊆^a rhs carries an annotation-domain element a;
/// surface systems use single symbols or the identity, but any interned
/// element is accepted. Projections may not appear on the right-hand
/// side, and (a representation choice, asserted) a projection
/// left-hand side requires a variable right-hand side.
///
/// Expressions are hash-consed: structurally equal expressions share
/// an ExprId (and hence a function variable), as in BANSHEE.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_CONSTRAINTSYSTEM_H
#define RASC_CORE_CONSTRAINTSYSTEM_H

#include "core/Annotation.h"
#include "support/Diag.h"
#include "support/Hashing.h"

#include <cassert>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace rasc {

using VarId = uint32_t;
using ConsId = uint32_t;
using ExprId = uint32_t;
using FnVarId = uint32_t;

constexpr ExprId InvalidExpr = ~ExprId(0);
constexpr VarId InvalidVar = ~VarId(0);

/// A term constructor with a fixed arity.
struct Constructor {
  std::string Name;
  uint32_t Arity;
};

enum class ExprKind : uint8_t {
  Var,  ///< A set variable.
  Cons, ///< c^alpha(X1, ..., Xn); arity-0 constructors are constants.
  Proj, ///< c^-i(X), 0-based component index.
};

/// One hash-consed set expression.
struct Expr {
  ExprKind Kind;
  ConsId C = 0;             ///< Cons / Proj: the constructor.
  uint32_t Index = 0;       ///< Proj: projected component (0-based).
  VarId V = InvalidVar;     ///< Var: the variable; Proj: the subject.
  FnVarId Alpha = 0;        ///< Cons: this occurrence's function variable.
  std::vector<VarId> Args;  ///< Cons: argument variables.
};

/// One constraint Lhs ⊆^Ann Rhs.
struct Constraint {
  ExprId Lhs;
  ExprId Rhs;
  AnnId Ann;
};

/// Builder and owner of a constraint system over a fixed annotation
/// domain. The solver reads it; systems may keep growing between
/// solver runs (online solving).
class ConstraintSystem {
public:
  explicit ConstraintSystem(const AnnotationDomain &Domain)
      : Domain(Domain) {}

  const AnnotationDomain &domain() const { return Domain; }

  /// Declares a constructor. Names are for diagnostics; distinct calls
  /// always create distinct constructors.
  ConsId addConstructor(std::string Name, uint32_t Arity) {
    Constructors.push_back({std::move(Name), Arity});
    return static_cast<ConsId>(Constructors.size() - 1);
  }

  /// Convenience for an arity-0 constructor (a constant).
  ConsId addConstant(std::string Name) {
    return addConstructor(std::move(Name), 0);
  }

  /// Creates a fresh set variable.
  VarId freshVar(std::string Name = "") {
    if (Name.empty())
      Name = "X" + std::to_string(VarNames.size());
    VarNames.push_back(std::move(Name));
    return static_cast<VarId>(VarNames.size() - 1);
  }

  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }
  uint32_t numExprs() const { return static_cast<uint32_t>(Exprs.size()); }
  uint32_t numFnVars() const { return NumFnVars; }
  uint32_t numConstructors() const {
    return static_cast<uint32_t>(Constructors.size());
  }

  const std::string &varName(VarId V) const {
    assert(V < VarNames.size() && "variable out of range");
    return VarNames[V];
  }

  const Constructor &constructor(ConsId C) const {
    assert(C < Constructors.size() && "constructor out of range");
    return Constructors[C];
  }

  const Expr &expr(ExprId E) const {
    assert(E < Exprs.size() && "expression out of range");
    return Exprs[E];
  }

  /// \name Checked builders
  /// Validating variants of var/cons/proj/add for untrusted input
  /// (frontends, embedders): instead of asserting, a range or arity
  /// violation comes back as a Diag and the system is left unchanged.
  /// The failure is also recorded in lastDiag().
  /// @{
  Expected<ExprId> varChecked(VarId V) const;
  Expected<ExprId> consChecked(ConsId C, std::vector<VarId> Args = {}) const;
  Expected<ExprId> projChecked(ConsId C, uint32_t Index,
                               VarId Subject) const;
  std::optional<Diag> addChecked(ExprId Lhs, ExprId Rhs, AnnId Ann);
  std::optional<Diag> addChecked(ExprId Lhs, ExprId Rhs) {
    return addChecked(Lhs, Rhs, Domain.identity());
  }
  /// @}

  /// The most recent checked-builder failure (also set when an
  /// unchecked builder rejects bad input in a no-assert build).
  const std::optional<Diag> &lastDiag() const { return LastDiag; }

  /// The expression node for a variable. Like the checked builders,
  /// the unchecked var/cons/proj/add validate their arguments in
  /// every build mode; the difference is only how a violation
  /// surfaces — assert where assertions are on, otherwise an
  /// InvalidExpr result (builders) or a dropped constraint (add),
  /// with the Diag in lastDiag(). Passing InvalidExpr onward into
  /// add() is itself caught, so errors propagate without UB.
  ExprId var(VarId V) const { return must(varChecked(V)); }

  /// The expression c^alpha(Args...); a fresh function variable alpha
  /// is allocated the first time this exact expression is built.
  ExprId cons(ConsId C, std::vector<VarId> Args = {}) const {
    return must(consChecked(C, std::move(Args)));
  }

  /// The expression c^-Index(Subject) with a 0-based Index (the paper
  /// writes 1-based c^-i).
  ExprId proj(ConsId C, uint32_t Index, VarId Subject) const {
    return must(projChecked(C, Index, Subject));
  }

  /// Adds Lhs ⊆^Ann Rhs. Projections may not appear on the right; a
  /// projection left-hand side requires a variable right-hand side.
  void add(ExprId Lhs, ExprId Rhs, AnnId Ann) {
    std::optional<Diag> D = addChecked(Lhs, Rhs, Ann);
    assert(!D && "invalid constraint; see lastDiag()");
    (void)D;
  }

  /// Adds Lhs ⊆ Rhs with the identity (epsilon) annotation.
  void add(ExprId Lhs, ExprId Rhs) { add(Lhs, Rhs, Domain.identity()); }

  const std::vector<Constraint> &constraints() const {
    return ConstraintList;
  }

  /// \name Retraction
  /// Constraints are never removed from the list (ids are stable and
  /// solvers index into it), they are *flagged*: a retracted
  /// constraint is skipped by ingestion, excluded from the certifier's
  /// obligations, and its derivation cone is invalidated by
  /// BidirectionalSolver::retract. Flagging keeps the system's text
  /// replayable — "retract N;" statements re-apply on a warm boot.
  /// @{
  std::optional<Diag> retract(uint32_t Idx) {
    if (Idx >= ConstraintList.size()) {
      LastDiag = Diag("retract: constraint index " + std::to_string(Idx) +
                      " out of range (have " +
                      std::to_string(ConstraintList.size()) + ")");
      return LastDiag;
    }
    if (Idx >= RetractedFlags.size())
      RetractedFlags.resize(ConstraintList.size(), 0);
    if (RetractedFlags[Idx]) {
      LastDiag = Diag("retract: constraint " + std::to_string(Idx) +
                      " is already retracted");
      return LastDiag;
    }
    RetractedFlags[Idx] = 1;
    ++NumRetracted;
    return std::nullopt;
  }

  bool isRetracted(uint32_t Idx) const {
    return Idx < RetractedFlags.size() && RetractedFlags[Idx];
  }

  uint32_t numRetracted() const { return NumRetracted; }
  /// @}

  /// A coarse size measure (number of symbols), the "n" of the paper's
  /// complexity discussion (Section 4).
  size_t sizeInSymbols() const {
    size_t N = ConstraintList.size();
    for (const Expr &E : Exprs)
      N += 1 + E.Args.size();
    return N;
  }

  /// Renders an expression for diagnostics.
  std::string exprToString(ExprId E) const;

private:
  ExprId intern(Expr E) const;

  /// Unwraps a checked-builder result for the asserting API.
  ExprId must(Expected<ExprId> E) const {
    assert(E && "invalid expression; see lastDiag()");
    return E ? *E : InvalidExpr;
  }

  const AnnotationDomain &Domain;
  std::vector<Constructor> Constructors;
  std::vector<std::string> VarNames;
  std::vector<Constraint> ConstraintList;
  std::vector<uint8_t> RetractedFlags; ///< grown lazily to list size
  uint32_t NumRetracted = 0;
  mutable std::optional<Diag> LastDiag;

  // Hash-consing tables. Interning is logically const (ids are stable
  // and deduplicated), hence mutable.
  mutable std::vector<Expr> Exprs;
  mutable std::unordered_multimap<uint64_t, ExprId> ExprIds;
  mutable FnVarId NumFnVars = 0;
};

} // namespace rasc

#endif // RASC_CORE_CONSTRAINTSYSTEM_H
