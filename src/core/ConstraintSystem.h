//===- core/ConstraintSystem.h - Annotated set constraints ------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of a system of regularly annotated set constraints
/// (paper Section 2). Set expressions are
///
///   se ::= X | c^alpha(X1, ..., Xn) | c^-i(X)
///
/// i.e. constructor arguments and projection subjects are variables;
/// nested expressions are encoded with auxiliary variables. Every
/// constructor expression carries a *function variable* alpha (its
/// word-set variable, Section 2.4); these are allocated automatically
/// and never appear in the surface API, matching the paper ("it is
/// possible to infer the needed set expression annotations during
/// constraint resolution").
///
/// A constraint lhs ⊆^a rhs carries an annotation-domain element a;
/// surface systems use single symbols or the identity, but any interned
/// element is accepted. Projections may not appear on the right-hand
/// side, and (a representation choice, asserted) a projection
/// left-hand side requires a variable right-hand side.
///
/// Expressions are hash-consed: structurally equal expressions share
/// an ExprId (and hence a function variable), as in BANSHEE.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_CONSTRAINTSYSTEM_H
#define RASC_CORE_CONSTRAINTSYSTEM_H

#include "core/Annotation.h"
#include "support/Hashing.h"

#include <cassert>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace rasc {

using VarId = uint32_t;
using ConsId = uint32_t;
using ExprId = uint32_t;
using FnVarId = uint32_t;

constexpr ExprId InvalidExpr = ~ExprId(0);
constexpr VarId InvalidVar = ~VarId(0);

/// A term constructor with a fixed arity.
struct Constructor {
  std::string Name;
  uint32_t Arity;
};

enum class ExprKind : uint8_t {
  Var,  ///< A set variable.
  Cons, ///< c^alpha(X1, ..., Xn); arity-0 constructors are constants.
  Proj, ///< c^-i(X), 0-based component index.
};

/// One hash-consed set expression.
struct Expr {
  ExprKind Kind;
  ConsId C = 0;             ///< Cons / Proj: the constructor.
  uint32_t Index = 0;       ///< Proj: projected component (0-based).
  VarId V = InvalidVar;     ///< Var: the variable; Proj: the subject.
  FnVarId Alpha = 0;        ///< Cons: this occurrence's function variable.
  std::vector<VarId> Args;  ///< Cons: argument variables.
};

/// One constraint Lhs ⊆^Ann Rhs.
struct Constraint {
  ExprId Lhs;
  ExprId Rhs;
  AnnId Ann;
};

/// Builder and owner of a constraint system over a fixed annotation
/// domain. The solver reads it; systems may keep growing between
/// solver runs (online solving).
class ConstraintSystem {
public:
  explicit ConstraintSystem(const AnnotationDomain &Domain)
      : Domain(Domain) {}

  const AnnotationDomain &domain() const { return Domain; }

  /// Declares a constructor. Names are for diagnostics; distinct calls
  /// always create distinct constructors.
  ConsId addConstructor(std::string Name, uint32_t Arity) {
    Constructors.push_back({std::move(Name), Arity});
    return static_cast<ConsId>(Constructors.size() - 1);
  }

  /// Convenience for an arity-0 constructor (a constant).
  ConsId addConstant(std::string Name) {
    return addConstructor(std::move(Name), 0);
  }

  /// Creates a fresh set variable.
  VarId freshVar(std::string Name = "") {
    if (Name.empty())
      Name = "X" + std::to_string(VarNames.size());
    VarNames.push_back(std::move(Name));
    return static_cast<VarId>(VarNames.size() - 1);
  }

  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }
  uint32_t numExprs() const { return static_cast<uint32_t>(Exprs.size()); }
  uint32_t numFnVars() const { return NumFnVars; }

  const std::string &varName(VarId V) const {
    assert(V < VarNames.size() && "variable out of range");
    return VarNames[V];
  }

  const Constructor &constructor(ConsId C) const {
    assert(C < Constructors.size() && "constructor out of range");
    return Constructors[C];
  }

  const Expr &expr(ExprId E) const {
    assert(E < Exprs.size() && "expression out of range");
    return Exprs[E];
  }

  /// The expression node for a variable.
  ExprId var(VarId V) const {
    assert(V < VarNames.size() && "variable out of range");
    return intern(Expr{ExprKind::Var, 0, 0, V, 0, {}});
  }

  /// The expression c^alpha(Args...); a fresh function variable alpha
  /// is allocated the first time this exact expression is built.
  ExprId cons(ConsId C, std::vector<VarId> Args = {}) const {
    assert(C < Constructors.size() && "constructor out of range");
    assert(Args.size() == Constructors[C].Arity && "arity mismatch");
    return intern(Expr{ExprKind::Cons, C, 0, InvalidVar, 0,
                       std::move(Args)});
  }

  /// The expression c^-Index(Subject) with a 0-based Index (the paper
  /// writes 1-based c^-i).
  ExprId proj(ConsId C, uint32_t Index, VarId Subject) const {
    assert(C < Constructors.size() && "constructor out of range");
    assert(Index < Constructors[C].Arity && "projection out of range");
    return intern(Expr{ExprKind::Proj, C, Index, Subject, 0, {}});
  }

  /// Adds Lhs ⊆^Ann Rhs. Projections may not appear on the right; a
  /// projection left-hand side requires a variable right-hand side.
  void add(ExprId Lhs, ExprId Rhs, AnnId Ann) {
    assert(Lhs < Exprs.size() && Rhs < Exprs.size() && "bad expression");
    assert(Exprs[Rhs].Kind != ExprKind::Proj &&
           "projection on the right-hand side of a constraint");
    assert((Exprs[Lhs].Kind != ExprKind::Proj ||
            Exprs[Rhs].Kind == ExprKind::Var) &&
           "projection constraints need a variable right-hand side; "
           "introduce an auxiliary variable");
    ConstraintList.push_back({Lhs, Rhs, Ann});
  }

  /// Adds Lhs ⊆ Rhs with the identity (epsilon) annotation.
  void add(ExprId Lhs, ExprId Rhs) { add(Lhs, Rhs, Domain.identity()); }

  const std::vector<Constraint> &constraints() const {
    return ConstraintList;
  }

  /// A coarse size measure (number of symbols), the "n" of the paper's
  /// complexity discussion (Section 4).
  size_t sizeInSymbols() const {
    size_t N = ConstraintList.size();
    for (const Expr &E : Exprs)
      N += 1 + E.Args.size();
    return N;
  }

  /// Renders an expression for diagnostics.
  std::string exprToString(ExprId E) const;

private:
  ExprId intern(Expr E) const;

  const AnnotationDomain &Domain;
  std::vector<Constructor> Constructors;
  std::vector<std::string> VarNames;
  std::vector<Constraint> ConstraintList;

  // Hash-consing tables. Interning is logically const (ids are stable
  // and deduplicated), hence mutable.
  mutable std::vector<Expr> Exprs;
  mutable std::unordered_multimap<uint64_t, ExprId> ExprIds;
  mutable FnVarId NumFnVars = 0;
};

} // namespace rasc

#endif // RASC_CORE_CONSTRAINTSYSTEM_H
