//===- core/BatchSolver.cpp - Pooled solving of independent systems -------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/BatchSolver.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>

using namespace rasc;

BatchSolver::BatchSolver(Options Opts) : Opts(Opts) {}

BatchSolver::~BatchSolver() = default;

unsigned BatchSolver::numThreads() const {
  return Opts.Threads ? Opts.Threads : ThreadPool::hardwareThreads();
}

void BatchSolver::cancelAll() {
  std::lock_guard<std::mutex> L(FanMx);
  for (std::atomic<bool> *F : LiveTaskFlags)
    F->store(true, std::memory_order_relaxed);
}

std::vector<BatchSolver::Result>
BatchSolver::solveAll(std::span<BidirectionalSolver *const> Solvers) {
  using Clock = std::chrono::steady_clock;
  const auto Start = Clock::now();
  const size_t N = Solvers.size();

  if (!Pool)
    Pool = std::make_unique<ThreadPool>(numThreads());

  std::vector<Result> Results(N);
  if (N == 0) {
    Merged = SolverStats{};
    return Results;
  }

  // Per-task cancel flags in one contiguous allocation at stable
  // addresses (the vector is sized once and never grows): the
  // supervisor below fans the external flag (and cancelAll) out to
  // these, and each solver polls its own at the governance cadence.
  std::vector<std::atomic<bool>> TaskCancel(N);

  // Register the flags so cancelAll() can reach the running tasks
  // directly while this thread blocks on the pool below.
  {
    std::lock_guard<std::mutex> L(FanMx);
    LiveTaskFlags.clear();
    for (auto &F : TaskCancel)
      LiveTaskFlags.push_back(&F);
  }

  // Save every task's options; the batch governance is an overlay for
  // this call only. Restoring afterwards keeps pointers into this
  // BatchSolver (the group-memory cell, the task flags) out of any
  // solver that outlives it.
  std::vector<SolverOptions> Saved(N);
  for (size_t I = 0; I != N; ++I)
    Saved[I] = Solvers[I]->options();

  auto remaining = [&]() -> double {
    return Opts.DeadlineSeconds -
           std::chrono::duration<double>(Clock::now() - Start).count();
  };

  auto runTask = [&](size_t I) {
    RASC_TRACE_SCOPE("batch.task", I);
    if (trace::enabled())
      trace::instant("batch.task.start", I);
    BidirectionalSolver *S = Solvers[I];
    Result *R = &Results[I];
    SolverOptions &O = S->options();
    O.CancelFlag = &TaskCancel[I];
    if (Opts.MaxTotalMemoryBytes) {
      O.GroupMemory = &GroupMemory;
      O.MaxGroupMemoryBytes = Opts.MaxTotalMemoryBytes;
    }
    if (!Opts.CheckpointDir.empty()) {
      // Per-task durability: restore a previous run's snapshot if
      // this task hasn't started yet (a rejected snapshot means
      // re-solving from scratch — restore() left the solver fresh),
      // then point the solver's own checkpointing at the same file.
      O.CheckpointPath =
          Opts.CheckpointDir + "/task-" + std::to_string(I) + ".rsnap";
      O.CheckpointEveryPops = Opts.CheckpointEveryPops;
      if (S->unstarted())
        (void)S->restore(O.CheckpointPath);
    }
    if (Opts.DeadlineSeconds > 0) {
      // The batch deadline is shared: a task starting late gets
      // only the time left; one already past it is returned
      // unsolved (still resumable by a later solveAll).
      double Left = remaining();
      if (Left <= 0) {
        R->St = BidirectionalSolver::Status::Deadline;
        return;
      }
      O.DeadlineSeconds = O.DeadlineSeconds > 0
                              ? std::min(O.DeadlineSeconds, Left)
                              : Left;
    }
    auto T0 = Clock::now();
    R->St = S->solve();
    R->Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
    if (trace::enabled())
      trace::instant("batch.task.finish", I,
                     static_cast<uint64_t>(statusExitCode(R->St)));
  };

  // Claimer model: min(threads, N) pool jobs race a shared task
  // cursor, instead of one enqueued job per task. A pool wider than
  // the task count (or the core count) then costs almost nothing —
  // the first workers to wake drain the cursor while the rest claim
  // an exhausted index and exit, where per-task jobs forced every
  // queued task through a separate worker wakeup (two mutexes, a
  // notify, and on an oversubscribed machine a context switch each).
  // This is what keeps batch throughput flat in pool size on one
  // core (see BM_BatchSolve in bench/bench_parallel_batch.cpp).
  std::atomic<size_t> NextTask{0};
  const size_t Claimers = std::min<size_t>(numThreads(), N);
  for (size_t C = 0; C != Claimers; ++C)
    Pool->run([&runTask, &NextTask, N] {
      for (size_t I = NextTask.fetch_add(1, std::memory_order_relaxed);
           I < N;
           I = NextTask.fetch_add(1, std::memory_order_relaxed))
        runTask(I);
    });

  // Drain the pool. cancelAll() reaches the tasks directly through
  // the registered flags, so without an external flag this blocks on
  // the pool's condition variable — no polling. Only a caller-owned
  // CancelFlag (an arbitrary atomic nothing can wait on) needs the
  // timed-wait loop, and it stops the moment the flag is fanned out.
  if (!Opts.CancelFlag) {
    Pool->waitIdle();
  } else {
    bool FannedOut = false;
    while (!Pool->waitIdleFor(std::chrono::milliseconds(10))) {
      if (FannedOut) {
        Pool->waitIdle();
        break;
      }
      if (Opts.CancelFlag->load(std::memory_order_relaxed)) {
        for (auto &F : TaskCancel)
          F.store(true, std::memory_order_relaxed);
        FannedOut = true;
      }
    }
  }

  {
    std::lock_guard<std::mutex> L(FanMx);
    LiveTaskFlags.clear();
  }

  Merged = SolverStats{};
  for (size_t I = 0; I != N; ++I) {
    Solvers[I]->options() = Saved[I];
    Merged += Solvers[I]->stats();
  }
  return Results;
}
