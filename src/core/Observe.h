//===- core/Observe.h - Metrics registry and progress -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters, gauges, and histograms fed by the
/// solver at governance cadence, snapshottable mid-solve and
/// exportable as JSON (`rasctool --metrics`). Complements the event
/// stream in support/Trace.h: traces answer "what happened when",
/// metrics answer "how much, in aggregate".
///
/// Like tracing, metrics are off by default and every recording site
/// is guarded by one relaxed atomic flag load
/// (observe::metricsEnabled()), so the disabled cost is a predictable
/// branch. Instruments are atomics, so recording is thread-safe and a
/// snapshot taken mid-solve is a consistent-enough point-in-time read
/// (each instrument individually exact, cross-instrument skew
/// possible — fine for progress reporting).
///
/// Instruments live for the registry's lifetime; counter()/gauge()/
/// histogram() return stable references, so hot paths look a handle up
/// once and keep the pointer. Names are dotted lowercase
/// ("solver.edges_inserted").
///
/// The solver never reads metrics back: enabling them cannot perturb
/// fixpoints or SolverStats (enforced by the trace/metrics
/// differential test).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_OBSERVE_H
#define RASC_CORE_OBSERVE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rasc {

class MetricsRegistry {
public:
  /// Monotonic counter.
  struct Counter {
    void add(uint64_t D) { V.fetch_add(D, std::memory_order_relaxed); }
    uint64_t get() const { return V.load(std::memory_order_relaxed); }
    std::atomic<uint64_t> V{0};
  };

  /// Last-write-wins point-in-time value.
  struct Gauge {
    void set(uint64_t X) { V.store(X, std::memory_order_relaxed); }
    uint64_t get() const { return V.load(std::memory_order_relaxed); }
    std::atomic<uint64_t> V{0};
  };

  /// Log2-bucketed histogram: bucket k counts values with bit-width k
  /// (value 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), capped
  /// at NumBuckets - 1. Tracks count/sum/max exactly.
  struct Histogram {
    static constexpr unsigned NumBuckets = 32;
    void record(uint64_t X) {
      unsigned B = 0;
      for (uint64_t V = X; V; V >>= 1)
        ++B;
      if (B >= NumBuckets)
        B = NumBuckets - 1;
      Buckets[B].fetch_add(1, std::memory_order_relaxed);
      Count.fetch_add(1, std::memory_order_relaxed);
      Sum.fetch_add(X, std::memory_order_relaxed);
      uint64_t M = Max.load(std::memory_order_relaxed);
      while (X > M &&
             !Max.compare_exchange_weak(M, X, std::memory_order_relaxed))
        ;
    }
    std::atomic<uint64_t> Buckets[NumBuckets]{};
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Max{0};
  };

  MetricsRegistry() = default;
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates the named instrument. The returned reference is
  /// stable for the registry's lifetime. Creating the same name with
  /// two different instrument kinds is a programming error (asserted).
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Point-in-time copy of every instrument, ordered by name.
  struct Snapshot {
    struct HistData {
      std::string Name;
      uint64_t Count, Sum, Max;
      std::vector<uint64_t> Buckets; ///< trailing zero buckets trimmed
    };
    std::vector<std::pair<std::string, uint64_t>> Counters;
    std::vector<std::pair<std::string, uint64_t>> Gauges;
    std::vector<HistData> Histograms;

    /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
    /// max,mean,buckets}}} — stable key order (sorted by name).
    std::string toJson() const;
  };
  Snapshot snapshot() const;

  /// Zeroes every instrument's value; names and handles stay valid.
  void reset();

  /// The process-wide registry the solver records into.
  static MetricsRegistry &global();

private:
  struct Impl;
  Impl &impl() const;
  mutable std::atomic<Impl *> P{nullptr};
};

namespace observe {

namespace detail {
extern std::atomic<bool> MetricsOn;
extern std::atomic<uint64_t> ProgressEveryMs;
} // namespace detail

/// The one flag recording sites branch on.
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}
void setMetricsEnabled(bool On);

/// When > 0, the solver prints a one-line progress report to stderr at
/// most this often (checked at governance cadence, so granularity is
/// SolverOptions::GovernanceCheckInterval pops). 0 disables.
void setProgressEverySeconds(double Seconds);
double progressEverySeconds();

} // namespace observe
} // namespace rasc

#endif // RASC_CORE_OBSERVE_H
