//===- core/Snapshot.cpp - Solver checkpoint save/restore -----------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BidirectionalSolver::saveCheckpoint / restore / Create — the
/// durability subsystem's semantic layer over the checksummed
/// container of support/Serialize.h (see core/Snapshot.h for the
/// section vocabulary and invariants).
///
/// Save serializes the primary closure state: the expression table,
/// the edge arena (which doubles as the worklist), the full dedup
/// relation, conflicts, watchers, fn-var constraints, union-find,
/// stats. Everything else the solver holds — adjacency lists,
/// processed-prefix counters, the node-kind cache, the var-node
/// index — is a deterministic function of those and is *rebuilt* on
/// restore rather than stored: the rebuilt layout is bit-identical to
/// the original (appends replay in arena order), and what cannot be
/// forged stays impossible to corrupt.
///
/// Restore is transactional: phase A validates every section against
/// the caller's system, options, and domain without touching solver
/// state (only the constraint system's hash-cons table is extended,
/// which is idempotent); phase B commits; phase C certifies the
/// restored closure independently (core/Certifier.h). Any failure
/// leaves the solver fresh, so callers degrade to re-solving from
/// scratch — a corrupt snapshot can cost time, never a wrong answer.
///
//===----------------------------------------------------------------------===//

#include "core/Snapshot.h"

#include "core/Certifier.h"
#include "core/Solver.h"
#include "support/Serialize.h"

#include <cstring>

using namespace rasc;
using namespace rasc::snapshot;

namespace {

/// FNV-1a over a byte range; used for constructor-name and domain
/// fingerprints (identity matters, content need not be recoverable).
uint64_t fnv1a(const void *Data, size_t Len, uint64_t H = 0xcbf29ce484222325ull) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t nameHash(const std::string &S) {
  return fnv1a(S.data(), S.size());
}

/// Fingerprint of the domain's per-element semantic bits over
/// [0, Size): restore requires the accepting/useless structure the
/// closure's decisions depended on to be unchanged. compose() is
/// deliberately not probed — it may intern new elements.
uint64_t domainFingerprint(const AnnotationDomain &D, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t A = 0; A < Size; ++A) {
    uint8_t Bits = static_cast<uint8_t>(D.isAccepting(static_cast<AnnId>(A))) |
                   static_cast<uint8_t>(D.isUseless(static_cast<AnnId>(A)) << 1);
    H = fnv1a(&Bits, 1, H);
  }
  return H;
}

Diag rejected(const std::string &Path, const std::string &Why) {
  return Diag("snapshot '" + Path + "' rejected: " + Why);
}

} // namespace

std::optional<Diag>
BidirectionalSolver::saveCheckpoint(const std::string &Path) const {
  RASC_TRACE_SCOPE("snapshot.save", EdgeArena.size());
  const AnnotationDomain &D = CS.domain();
  SnapshotWriter W;

  // The status a restored solver should report: mid-closure the
  // member Stat still holds the previous solve's result, so fold the
  // live worklist state into an equivalent resumable status.
  Status Eff;
  if (PendingHead != EdgeArena.size())
    Eff = isInterrupted(Stat) ? Stat : Status::Cancelled;
  else
    Eff = Conflicts.empty() ? Status::Solved : Status::Inconsistent;

  {
    ByteWriter &B = W.beginSection(TagMeta);
    B.u8(static_cast<uint8_t>(resolveDedupBackend(Options, D)));
    B.u8(Options.FilterUseless);
    B.u8(Options.CycleElimination);
    B.u8(Options.EagerFunctionVars);
    B.u8(Options.TrackProvenance);
    B.u8(static_cast<uint8_t>(Eff));
    B.u64(D.size());
    B.u32(D.identity());
    B.u64(domainFingerprint(D, D.size()));
    B.u64(NumIngested);
    B.u64(PendingHead);
    B.u32(CS.numVars());
    B.u32(CS.numConstructors());
    B.u32(CS.numExprs());
    B.u32(CS.numFnVars());
    for (ConsId C = 0; C != CS.numConstructors(); ++C) {
      B.u32(CS.constructor(C).Arity);
      B.u64(nameHash(CS.constructor(C).Name));
    }
  }

  {
    ByteWriter &B = W.beginSection(TagExprs);
    B.u32(CS.numExprs());
    for (ExprId E = 0; E != CS.numExprs(); ++E) {
      const Expr &Ex = CS.expr(E);
      B.u8(static_cast<uint8_t>(Ex.Kind));
      B.u32(Ex.C);
      B.u32(Ex.Index);
      B.u32(Ex.V);
      B.u32(Ex.Alpha);
      B.u32(static_cast<uint32_t>(Ex.Args.size()));
      for (VarId A : Ex.Args)
        B.u32(A);
    }
  }

  {
    ByteWriter &B = W.beginSection(TagConstraints);
    B.u64(NumIngested);
    const std::vector<Constraint> &Cons = CS.constraints();
    for (size_t I = 0; I < NumIngested; ++I) {
      B.u32(Cons[I].Lhs);
      B.u32(Cons[I].Rhs);
      B.u32(Cons[I].Ann);
    }
    // v2: the retraction flags are part of the closure's meaning (a
    // retracted constraint carries no obligations), so they round-trip
    // and are cross-checked against the caller's system on restore.
    for (size_t I = 0; I < NumIngested; ++I)
      B.u8(CS.isRetracted(static_cast<uint32_t>(I)));
  }

  {
    ByteWriter &B = W.beginSection(TagUnionFind);
    const std::vector<uint32_t> &P = VarReps.parents();
    const std::vector<uint8_t> &Rk = VarReps.ranks();
    B.u64(P.size());
    for (uint32_t X : P)
      B.u32(X);
    for (uint8_t X : Rk)
      B.u8(X);
  }

  {
    ByteWriter &B = W.beginSection(TagEdges);
    B.u64(EdgeArena.size());
    for (const Edge &E : EdgeArena) {
      B.u32(E.Src);
      B.u32(E.Dst);
      B.u32(E.Ann);
    }
  }

  {
    ByteWriter &B = W.beginSection(TagConflicts);
    B.u64(Conflicts.size());
    for (const SolvedEdge &E : Conflicts) {
      B.u32(E.Src);
      B.u32(E.Dst);
      B.u32(E.Ann);
    }
  }

  {
    ByteWriter &B = W.beginSection(TagWatchers);
    uint64_t Total = 0;
    for (const std::vector<Watcher> &Ws : Watchers)
      Total += Ws.size();
    B.u64(Total);
    for (uint32_t Node = 0; Node != Watchers.size(); ++Node)
      for (const Watcher &Wt : Watchers[Node]) {
        B.u32(Node);
        B.u32(Wt.C);
        B.u32(Wt.Index);
        B.u32(Wt.Target);
        B.u32(Wt.Ann);
        B.u32(Wt.ConsIdx);
      }
  }

  {
    // The dedup relation is a strict superset of arena ∪ conflicts:
    // useless-filtered edges claimed their dedup bit without entering
    // the arena, and replaying only the arena would re-derive (and
    // re-count) them after restore. Serialize the relation itself.
    ByteWriter &B = W.beginSection(TagDedup);
    B.u64(EdgeSeen.edgeCount());
    EdgeSeen.forEachEdge([&](uint32_t A, uint32_t Bn, uint32_t Ann) {
      B.u32(A);
      B.u32(Bn);
      B.u32(Ann);
    });
  }

  {
    ByteWriter &B = W.beginSection(TagFnVars);
    B.u64(FnVarCons.size());
    for (const FnVarConstraint &F : FnVarCons) {
      B.u32(F.From);
      B.u32(F.Fn);
      B.u32(F.To);
    }
  }

  {
    ByteWriter &B = W.beginSection(TagStats);
    B.u64(Stats.EdgesInserted);
    B.u64(Stats.EdgesDropped);
    B.u64(Stats.UselessFiltered);
    B.u64(Stats.ComposeCalls);
    B.u64(Stats.DecomposeSteps);
    B.u64(Stats.ProjectionSteps);
    B.u64(Stats.FnVarConstraints);
    B.u64(Stats.CollapsedVars);
    B.u64(Stats.BudgetChecks);
    B.u64(Stats.Interrupts);
    B.u64(Stats.Resumes);
    B.u64(Stats.ParallelRounds);
    B.u64(Stats.CheckpointsSaved);
    B.u64(Stats.Retractions);
    B.u64(Stats.RetractedEdges);
    B.u64(Stats.RequeuedEdges);
    B.f64(Stats.IngestSeconds);
    B.f64(Stats.ClosureSeconds);
    B.f64(Stats.FnVarSeconds);
  }

  if (Options.TrackProvenance) {
    ByteWriter &B = W.beginSection(TagProvenance);
    auto writeProv = [&](const std::vector<EdgeProv> &Ps) {
      B.u64(Ps.size());
      for (const EdgeProv &P : Ps) {
        B.u8(static_cast<uint8_t>(P.Kind));
        B.u32(P.CIdx);
        B.u32(P.P1.Src);
        B.u32(P.P1.Dst);
        B.u32(P.P1.Ann);
        B.u32(P.P2.Src);
        B.u32(P.P2.Dst);
        B.u32(P.P2.Ann);
      }
    };
    writeProv(EdgeProvs);
    writeProv(ConflictProvs);
  }

  return W.commit(Path, FormatVersion);
}

std::optional<Diag> BidirectionalSolver::restore(const std::string &Path) {
  RASC_TRACE_SCOPE("snapshot.restore");
  if (!unstarted())
    return Diag("restore requires a fresh solver (state already present)");

  const AnnotationDomain &D = CS.domain();

  Expected<SnapshotReader> RE = SnapshotReader::read(Path);
  if (!RE)
    return RE.error();
  const SnapshotReader &R = *RE;
  // A reader accepts every version it knows (v1 lacks the retraction
  // flags and counters, which then restore as zero); only an unknown
  // — newer — version is rejected.
  if (R.version() < 1 || R.version() > FormatVersion)
    return rejected(Path, "unsupported format version " +
                              std::to_string(R.version()) + " (newest known "
                              "is " + std::to_string(FormatVersion) + ")");
  const bool HasRetraction = R.version() >= 2;

  auto getSection = [&](uint32_t Tag) { return R.section(Tag); };
  auto missing = [&](const char *Name) {
    return rejected(Path, std::string("missing ") + Name + " section");
  };

  //===--------------------------------------------------------------===//
  // Phase A: parse and validate everything before mutating any state.
  //===--------------------------------------------------------------===//

  // META: options, domain, and system-shape fingerprints.
  std::optional<ByteReader> MetaS = getSection(TagMeta);
  if (!MetaS)
    return missing("META");
  ByteReader &M = *MetaS;
  uint8_t SnapBackend = M.u8();
  bool SnapFilterUseless = M.u8();
  bool SnapCycleElim = M.u8();
  bool SnapEagerFnVars = M.u8();
  bool SnapTrackProv = M.u8();
  uint8_t SnapStatus = M.u8();
  uint64_t SnapDomSize = M.u64();
  AnnId SnapIdentity = M.u32();
  uint64_t SnapDomFp = M.u64();
  uint64_t SnapIngested = M.u64();
  uint64_t SnapPendingHead = M.u64();
  uint32_t SnapNumVars = M.u32();
  uint32_t SnapNumCtors = M.u32();
  uint32_t SnapNumExprs = M.u32();
  uint32_t SnapNumFnVars = M.u32();
  if (M.bad())
    return rejected(Path, "truncated META section");

  if (SnapStatus > static_cast<uint8_t>(Status::Cancelled))
    return rejected(Path, "invalid status byte");
  Status EffStatus = static_cast<Status>(SnapStatus);

  if (SnapBackend !=
      static_cast<uint8_t>(resolveDedupBackend(Options, D)))
    return rejected(Path, "dedup backend mismatch");
  if (SnapFilterUseless != Options.FilterUseless ||
      SnapCycleElim != Options.CycleElimination ||
      SnapEagerFnVars != Options.EagerFunctionVars ||
      SnapTrackProv != Options.TrackProvenance)
    return rejected(Path, "semantic solver options mismatch");

  // The domain must be in the exact interned state of the save:
  // resumed composition then interns deterministically, so the
  // resumed run stays id-for-id identical to an in-memory resume.
  // (Domains that intern lazily mid-solve must be reconstructed to
  // the same state before restoring; otherwise this rejects and the
  // caller re-solves.)
  if (D.size() != SnapDomSize || D.identity() != SnapIdentity)
    return rejected(Path, "annotation domain mismatch");
  if (domainFingerprint(D, D.size()) != SnapDomFp)
    return rejected(Path, "annotation domain fingerprint mismatch");

  if (CS.numVars() != SnapNumVars)
    return rejected(Path, "variable count mismatch");
  if (CS.numConstructors() != SnapNumCtors)
    return rejected(Path, "constructor count mismatch");
  for (ConsId C = 0; C != SnapNumCtors; ++C) {
    uint32_t Arity = M.u32();
    uint64_t NH = M.u64();
    if (M.bad())
      return rejected(Path, "truncated META constructor table");
    if (CS.constructor(C).Arity != Arity ||
        nameHash(CS.constructor(C).Name) != NH)
      return rejected(Path, "constructor " + std::to_string(C) +
                                " mismatch");
  }
  if (!M.atEnd())
    return rejected(Path, "trailing bytes in META section");

  // EXPRS: the caller's table must be a prefix of the snapshot's
  // (interning only appends); the tail is replayed through the
  // checked builders below, after all read-only validation passes.
  std::optional<ByteReader> ExprS = getSection(TagExprs);
  if (!ExprS)
    return missing("EXPR");
  ByteReader &XR = *ExprS;
  if (XR.u32() != SnapNumExprs)
    return rejected(Path, "EXPR count disagrees with META");
  struct SnapExpr {
    uint8_t Kind;
    uint32_t C, Index, V, Alpha;
    std::vector<VarId> Args;
  };
  std::vector<SnapExpr> SnapExprs;
  // Clamp by the minimum record size so a corrupt count cannot drive
  // a huge up-front allocation (the per-record bad() checks below
  // reject it either way).
  SnapExprs.reserve(std::min<uint64_t>(SnapNumExprs, XR.remaining() / 21));
  for (uint32_t I = 0; I != SnapNumExprs; ++I) {
    SnapExpr E;
    E.Kind = XR.u8();
    E.C = XR.u32();
    E.Index = XR.u32();
    E.V = XR.u32();
    E.Alpha = XR.u32();
    uint32_t NA = XR.u32();
    if (XR.bad() || NA > XR.remaining() / 4)
      return rejected(Path, "truncated EXPR section");
    E.Args.resize(NA);
    for (uint32_t J = 0; J != NA; ++J)
      E.Args[J] = XR.u32();
    if (E.Kind > static_cast<uint8_t>(ExprKind::Proj))
      return rejected(Path, "invalid expression kind");
    if (E.Kind != static_cast<uint8_t>(ExprKind::Var)) {
      if (E.C >= SnapNumCtors)
        return rejected(Path, "expression constructor out of range");
      if (E.Kind == static_cast<uint8_t>(ExprKind::Cons) &&
          E.Args.size() != CS.constructor(E.C).Arity)
        return rejected(Path, "expression arity mismatch");
    }
    if (E.Kind != static_cast<uint8_t>(ExprKind::Cons) &&
        E.V >= SnapNumVars)
      return rejected(Path, "expression variable out of range");
    for (VarId A : E.Args)
      if (A >= SnapNumVars)
        return rejected(Path, "expression argument out of range");
    SnapExprs.push_back(std::move(E));
  }
  if (XR.bad() || !XR.atEnd())
    return rejected(Path, "malformed EXPR section");
  if (CS.numExprs() > SnapNumExprs)
    return rejected(Path, "system has more expressions than snapshot");
  for (ExprId I = 0; I != CS.numExprs(); ++I) {
    const Expr &Have = CS.expr(I);
    const SnapExpr &Want = SnapExprs[I];
    if (static_cast<uint8_t>(Have.Kind) != Want.Kind ||
        Have.C != Want.C || Have.Index != Want.Index ||
        Have.V != Want.V || Have.Alpha != Want.Alpha ||
        Have.Args != Want.Args)
      return rejected(Path, "expression table prefix mismatch at id " +
                                std::to_string(I));
  }

  // CONSTRAINTS: the snapshot's ingested prefix must equal the
  // caller's constraint list prefix.
  std::optional<ByteReader> ConS = getSection(TagConstraints);
  if (!ConS)
    return missing("CONS");
  ByteReader &CR = *ConS;
  if (CR.u64() != SnapIngested)
    return rejected(Path, "CONS count disagrees with META");
  const std::vector<Constraint> &Cons = CS.constraints();
  if (SnapIngested > Cons.size())
    return rejected(Path, "snapshot ingested more constraints than "
                          "the system contains");
  for (uint64_t I = 0; I != SnapIngested; ++I) {
    uint32_t Lhs = CR.u32(), Rhs = CR.u32(), Ann = CR.u32();
    if (CR.bad())
      return rejected(Path, "truncated CONS section");
    if (Cons[I].Lhs != Lhs || Cons[I].Rhs != Rhs || Cons[I].Ann != Ann)
      return rejected(Path, "constraint prefix mismatch at index " +
                                std::to_string(I));
  }
  // Retraction flags (v2+; a v1 snapshot predates retraction, so all
  // flags are clear). The caller must have flagged its system to the
  // exact state of the save — the closure's obligations depend on it.
  for (uint64_t I = 0; I != SnapIngested; ++I) {
    bool SnapRetracted = HasRetraction && CR.u8() != 0;
    if (CR.bad())
      return rejected(Path, "truncated CONS retraction flags");
    if (SnapRetracted != CS.isRetracted(static_cast<uint32_t>(I)))
      return rejected(Path, "retraction flag mismatch at index " +
                                std::to_string(I) +
                                " (system and snapshot disagree)");
  }
  if (!CR.atEnd())
    return rejected(Path, "trailing bytes in CONS section");

  // UNIONFIND.
  std::optional<ByteReader> UfS = getSection(TagUnionFind);
  if (!UfS)
    return missing("UNIF");
  ByteReader &UR = *UfS;
  uint64_t UfN = UR.u64();
  if (UR.bad() || UfN > SnapNumVars || UR.remaining() != UfN * 5)
    return rejected(Path, "malformed UNIF section");
  std::vector<uint32_t> UfParents(UfN);
  std::vector<uint8_t> UfRanks(UfN);
  for (uint64_t I = 0; I != UfN; ++I)
    UfParents[I] = UR.u32();
  for (uint64_t I = 0; I != UfN; ++I)
    UfRanks[I] = UR.u8();
  UnionFind LocalUF;
  if (!LocalUF.restore(std::move(UfParents), std::move(UfRanks)))
    return rejected(Path, "UNIF section is not a valid forest");

  // EDGES + CONFLICTS.
  auto readTriples = [&](ByteReader &B, uint64_t N, auto &&Push,
                         const char *What) -> std::optional<Diag> {
    // Division form: immune to a corrupt count overflowing N * 12.
    if (B.remaining() % 12 != 0 || B.remaining() / 12 != N)
      return rejected(Path, std::string("malformed ") + What +
                                " section");
    for (uint64_t I = 0; I != N; ++I) {
      uint32_t A = B.u32(), Bn = B.u32(), Ann = B.u32();
      if (A >= SnapNumExprs || Bn >= SnapNumExprs || Ann >= SnapDomSize)
        return rejected(Path, std::string(What) +
                                  " entry references out-of-range ids");
      Push(A, Bn, Ann);
    }
    return std::nullopt;
  };

  std::optional<ByteReader> EdS = getSection(TagEdges);
  if (!EdS)
    return missing("EDGE");
  uint64_t NumEdges = EdS->u64();
  if (EdS->bad())
    return rejected(Path, "truncated EDGE section");
  std::vector<Edge> LocalArena;
  LocalArena.reserve(std::min<uint64_t>(NumEdges, EdS->remaining() / 12));
  if (std::optional<Diag> Dg = readTriples(
          *EdS, NumEdges,
          [&](uint32_t A, uint32_t B, uint32_t Ann) {
            LocalArena.push_back({A, B, Ann});
          },
          "EDGE"))
    return Dg;
  if (SnapPendingHead > NumEdges)
    return rejected(Path, "processed prefix exceeds edge count");
  if (!BidirectionalSolver::isInterrupted(EffStatus) &&
      SnapPendingHead != NumEdges)
    return rejected(Path, "final status with pending edges");

  std::optional<ByteReader> CfS = getSection(TagConflicts);
  if (!CfS)
    return missing("CONF");
  uint64_t NumConf = CfS->u64();
  if (CfS->bad())
    return rejected(Path, "truncated CONF section");
  std::vector<SolvedEdge> LocalConflicts;
  LocalConflicts.reserve(std::min<uint64_t>(NumConf, CfS->remaining() / 12));
  if (std::optional<Diag> Dg = readTriples(
          *CfS, NumConf,
          [&](uint32_t A, uint32_t B, uint32_t Ann) {
            LocalConflicts.push_back({A, B, Ann});
          },
          "CONF"))
    return Dg;
  for (const SolvedEdge &C : LocalConflicts) {
    const SnapExpr &SE = SnapExprs[C.Src];
    const SnapExpr &DE = SnapExprs[C.Dst];
    if (SE.Kind != static_cast<uint8_t>(ExprKind::Cons) ||
        DE.Kind != static_cast<uint8_t>(ExprKind::Cons) || SE.C == DE.C)
      return rejected(Path, "CONF entry is not a constructor mismatch");
  }
  if (EffStatus == Status::Solved && NumConf != 0)
    return rejected(Path, "status Solved with conflicts");
  if (EffStatus == Status::Inconsistent && NumConf == 0)
    return rejected(Path, "status Inconsistent without conflicts");

  // WATCHERS.
  std::optional<ByteReader> WtS = getSection(TagWatchers);
  if (!WtS)
    return missing("WTCH");
  uint64_t NumWatch = WtS->u64();
  if (WtS->bad() || WtS->remaining() % 24 != 0 ||
      WtS->remaining() / 24 != NumWatch)
    return rejected(Path, "malformed WTCH section");
  struct SnapWatcher {
    uint32_t Node;
    Watcher W;
  };
  std::vector<SnapWatcher> LocalWatchers;
  LocalWatchers.reserve(NumWatch);
  for (uint64_t I = 0; I != NumWatch; ++I) {
    uint32_t Node = WtS->u32();
    uint32_t C = WtS->u32(), Index = WtS->u32(), Target = WtS->u32();
    uint32_t Ann = WtS->u32(), ConsIdx = WtS->u32();
    if (Node >= SnapNumExprs ||
        SnapExprs[Node].Kind != static_cast<uint8_t>(ExprKind::Var) ||
        C >= SnapNumCtors || Index >= CS.constructor(C).Arity ||
        Target >= SnapNumVars || Ann >= SnapDomSize ||
        ConsIdx >= SnapIngested)
      return rejected(Path, "WTCH entry references out-of-range ids");
    LocalWatchers.push_back({Node, {C, Index, Target, Ann, ConsIdx}});
  }

  // DEDUP: replay into a fresh table; every entry must be fresh, and
  // the arena and conflicts must be covered (they all claimed a bit).
  std::optional<ByteReader> DdS = getSection(TagDedup);
  if (!DdS)
    return missing("DEDU");
  uint64_t NumDedup = DdS->u64();
  if (DdS->bad())
    return rejected(Path, "truncated DEDU section");
  // The on-disk dedup section is representation-independent (src,
  // dst, ann) triples, so the replay target is striped with *this*
  // solver's shard count — a snapshot taken by a sequential solver
  // restores into a sharded-parallel one and vice versa.
  ShardedEdgeDedup LocalDedup(resolveDedupBackend(Options, D), D.size(),
                              EdgeSeen.numShards());
  bool DedupFresh = true;
  if (std::optional<Diag> Dg = readTriples(
          *DdS, NumDedup,
          [&](uint32_t A, uint32_t B, uint32_t Ann) {
            DedupFresh &= LocalDedup.insert(A, B, Ann);
          },
          "DEDU"))
    return Dg;
  if (!DedupFresh)
    return rejected(Path, "duplicate DEDU entries");
  for (const Edge &E : LocalArena)
    if (!LocalDedup.contains(E.Src, E.Dst, E.Ann))
      return rejected(Path, "arena edge missing from dedup relation");
  for (const SolvedEdge &E : LocalConflicts)
    if (!LocalDedup.contains(E.Src, E.Dst, E.Ann))
      return rejected(Path, "conflict missing from dedup relation");

  // FNVAR: the list is authoritative; its dedup is replayed from it.
  std::optional<ByteReader> FvS = getSection(TagFnVars);
  if (!FvS)
    return missing("FNVR");
  uint64_t NumFv = FvS->u64();
  if (FvS->bad() || FvS->remaining() % 12 != 0 ||
      FvS->remaining() / 12 != NumFv)
    return rejected(Path, "malformed FNVR section");
  std::vector<FnVarConstraint> LocalFnVars;
  LocalFnVars.reserve(NumFv);
  EdgeDedup LocalFnSeen(resolveDedupBackend(Options, D), D.size());
  for (uint64_t I = 0; I != NumFv; ++I) {
    uint32_t From = FvS->u32(), Fn = FvS->u32(), To = FvS->u32();
    if (From >= SnapNumFnVars || To >= SnapNumFnVars ||
        Fn >= SnapDomSize)
      return rejected(Path, "FNVR entry references out-of-range ids");
    if (!LocalFnSeen.insert(From, To, Fn))
      return rejected(Path, "duplicate FNVR entries");
    LocalFnVars.push_back({From, Fn, To});
  }

  // STATS.
  std::optional<ByteReader> StS = getSection(TagStats);
  if (!StS)
    return missing("STAT");
  SolverStats LocalStats;
  LocalStats.EdgesInserted = StS->u64();
  LocalStats.EdgesDropped = StS->u64();
  LocalStats.UselessFiltered = StS->u64();
  LocalStats.ComposeCalls = StS->u64();
  LocalStats.DecomposeSteps = StS->u64();
  LocalStats.ProjectionSteps = StS->u64();
  LocalStats.FnVarConstraints = StS->u64();
  LocalStats.CollapsedVars = StS->u64();
  LocalStats.BudgetChecks = StS->u64();
  LocalStats.Interrupts = StS->u64();
  LocalStats.Resumes = StS->u64();
  LocalStats.ParallelRounds = StS->u64();
  LocalStats.CheckpointsSaved = StS->u64();
  if (HasRetraction) {
    LocalStats.Retractions = StS->u64();
    LocalStats.RetractedEdges = StS->u64();
    LocalStats.RequeuedEdges = StS->u64();
  }
  LocalStats.IngestSeconds = StS->f64();
  LocalStats.ClosureSeconds = StS->f64();
  LocalStats.FnVarSeconds = StS->f64();
  if (StS->bad() || !StS->atEnd())
    return rejected(Path, "malformed STAT section");
  if (LocalStats.FnVarConstraints != NumFv)
    return rejected(Path, "FNVR count disagrees with stats");

  // PROVENANCE (only when tracking; otherwise the section is ignored).
  std::vector<EdgeProv> LocalEdgeProvs;
  std::vector<EdgeProv> LocalConflictProvs;
  if (Options.TrackProvenance) {
    std::optional<ByteReader> PvS = getSection(TagProvenance);
    if (!PvS)
      return missing("PROV");
    auto readProvs = [&](std::vector<EdgeProv> &Out,
                         uint64_t Expect) -> std::optional<Diag> {
      uint64_t N = PvS->u64();
      if (PvS->bad() || N != Expect)
        return rejected(Path, "PROV counts disagree with EDGE/CONF");
      Out.reserve(N);
      for (uint64_t I = 0; I != N; ++I) {
        EdgeProv P;
        uint8_t Kind = PvS->u8();
        if (Kind > static_cast<uint8_t>(EdgeProv::Rule::Projection))
          return rejected(Path, "invalid PROV rule");
        P.Kind = static_cast<EdgeProv::Rule>(Kind);
        P.CIdx = PvS->u32();
        P.P1 = {PvS->u32(), PvS->u32(), PvS->u32()};
        P.P2 = {PvS->u32(), PvS->u32(), PvS->u32()};
        if (PvS->bad())
          return rejected(Path, "truncated PROV section");
        auto okPremise = [&](const Edge &E) {
          return (E.Src == InvalidExpr && E.Dst == InvalidExpr) ||
                 (E.Src < SnapNumExprs && E.Dst < SnapNumExprs &&
                  E.Ann < SnapDomSize);
        };
        if ((P.CIdx != ~0u && P.CIdx >= SnapIngested) ||
            !okPremise(P.P1) || !okPremise(P.P2))
          return rejected(Path, "PROV entry references out-of-range ids");
        Out.push_back(P);
      }
      return std::nullopt;
    };
    if (std::optional<Diag> Dg = readProvs(LocalEdgeProvs, NumEdges))
      return Dg;
    if (std::optional<Diag> Dg = readProvs(LocalConflictProvs, NumConf))
      return Dg;
  }

  // Expression tail replay: re-intern the snapshot's tail through the
  // checked builders, in order. Interning is idempotent and append-
  // only, so this is safe before commit — a later failure leaves only
  // extra interned expressions, which change nothing semantically.
  for (ExprId I = CS.numExprs(); I < SnapNumExprs; ++I) {
    const SnapExpr &E = SnapExprs[I];
    Expected<ExprId> Got = [&]() -> Expected<ExprId> {
      switch (static_cast<ExprKind>(E.Kind)) {
      case ExprKind::Var:
        return CS.varChecked(E.V);
      case ExprKind::Cons:
        return CS.consChecked(E.C, E.Args);
      case ExprKind::Proj:
        return CS.projChecked(E.C, E.Index, E.V);
      }
      return Diag("unreachable");
    }();
    if (!Got)
      return rejected(Path, "expression replay failed at id " +
                                std::to_string(I) + ": " +
                                Got.error().message());
    if (*Got != I || CS.expr(I).Alpha != E.Alpha)
      return rejected(Path, "expression replay diverged at id " +
                                std::to_string(I));
  }
  if (CS.numFnVars() != SnapNumFnVars)
    return rejected(Path, "function-variable allocation diverged");

  //===--------------------------------------------------------------===//
  // Phase B: commit. Everything below is deterministic rebuild from
  // validated data; any later failure (certification) resets to
  // fresh.
  //===--------------------------------------------------------------===//

  VarReps = std::move(LocalUF);
  EdgeSeen = std::move(LocalDedup);
  FnVarSeen = std::move(LocalFnSeen);
  EdgeArena = std::move(LocalArena);
  PendingHead = static_cast<size_t>(SnapPendingHead);
  Conflicts = std::move(LocalConflicts);
  FnVarCons = std::move(LocalFnVars);
  EdgeProvs = std::move(LocalEdgeProvs);
  ConflictProvs = std::move(LocalConflictProvs);
  Stats = LocalStats;
  Stat = EffStatus;
  NumIngested = static_cast<size_t>(SnapIngested);

  // Rebuild the derived structures in arena order: adjacency chunk
  // layout, processed-prefix counters, node kinds, watchers, and the
  // var-node index come out bit-identical to the saved solver's.
  if (CS.numExprs() != 0)
    growTo(0);
  for (const Edge &E : EdgeArena) {
    Succs.append(E.Src, E.Dst, E.Ann);
    Preds.append(E.Dst, E.Src, E.Ann);
  }
  for (size_t I = 0; I != PendingHead; ++I) {
    ++SuccDone[EdgeArena[I].Src];
    ++PredDone[EdgeArena[I].Dst];
  }
  for (const SnapWatcher &SW : LocalWatchers)
    Watchers[SW.Node].push_back(SW.W);
  VarNode.assign(CS.numVars(), InvalidExpr);
  for (ExprId E = 0; E != CS.numExprs(); ++E)
    if (CS.expr(E).Kind == ExprKind::Var)
      VarNode[CS.expr(E).V] = E;
  EagerFnVarSol.clear();
  FnVarSolFresh = false;
  PopsSinceCheckpoint = 0;
  // The retraction indexes (parent arena indices plus the triple map
  // resolving premise edges) are a deterministic function of the
  // committed provenance records, so they are rebuilt, not stored.
  if (incrementalActive())
    rebuildProvIndex();

  //===--------------------------------------------------------------===//
  // Phase C: certify the restored closure independently. A snapshot
  // that passed every structural check but fails certification (e.g.
  // a CRC-colliding corruption) degrades to "re-solve from scratch".
  //===--------------------------------------------------------------===//

  CertificationReport Cert = certifyFixpoint(*this);
  if (!Cert.Ok) {
    resetToFresh();
    std::string Why = "restored state failed certification: ";
    Why += Cert.Failures.empty() ? std::string("(no detail)")
                                 : Cert.Failures.front();
    return rejected(Path, Why);
  }
  return std::nullopt;
}

Expected<std::unique_ptr<BidirectionalSolver>>
BidirectionalSolver::Create(const std::string &Path,
                            const ConstraintSystem &CS, SolverOptions Opts) {
  auto S = std::make_unique<BidirectionalSolver>(CS, Opts);
  if (std::optional<Diag> Dg = S->restore(Path))
    return *Dg;
  return S;
}
