//===- core/ReferenceSolver.h - Naive resolution for testing ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately naive implementation of the resolution rules of
/// paper Section 3.1: keep a set of constraints, scan all pairs, apply
/// every applicable rule, repeat until fixpoint. No indexing, no
/// worklist, no filtering, no cycle elimination. Exists purely as a
/// differential-testing oracle for the optimized solver; do not use it
/// for anything larger than toy systems.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_REFERENCESOLVER_H
#define RASC_CORE_REFERENCESOLVER_H

#include "core/ConstraintSystem.h"

#include <unordered_set>
#include <vector>

namespace rasc {

/// Rule-to-fixpoint oracle over a constraint system.
class ReferenceSolver {
public:
  explicit ReferenceSolver(const ConstraintSystem &CS) : CS(CS) {}

  /// Applies the resolution rules to quiescence. \returns false if a
  /// manifest inconsistency (constructor mismatch) was derived.
  bool solve();

  /// All annotations f with (constant C) ⊆^f V among the derived
  /// constraints, sorted.
  std::vector<AnnId> constantAnnotations(ConsId C, VarId V) const;

  size_t numConstraints() const { return Cons.size(); }

private:
  bool addConstraint(ExprId Lhs, ExprId Rhs, AnnId Ann);

  const ConstraintSystem &CS;
  std::vector<Constraint> Cons;
  std::unordered_set<uint64_t> Seen; // hash-based dedup with full check
  bool Inconsistent = false;
};

} // namespace rasc

#endif // RASC_CORE_REFERENCESOLVER_H
