//===- core/SubstEnv.cpp - Parametric annotations ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/SubstEnv.h"

#include <algorithm>
#include <sstream>

using namespace rasc;

SubstEnvDomain::SubstEnvDomain(const AnnotationDomain &Base) : Base(Base) {
  IdentityEnv = intern(Env{Base.identity(), {}});
  assert(IdentityEnv == 0 && "identity environment must be id 0");
}

AnnId SubstEnvDomain::intern(Env E) const {
  // Canonical order for entries: by key (size, then lexicographic).
  std::sort(E.Entries.begin(), E.Entries.end(),
            [](const SubstEntry &A, const SubstEntry &B) {
              if (A.Key.size() != B.Key.size())
                return A.Key.size() < B.Key.size();
              return A.Key < B.Key;
            });

  uint64_t H = E.Residual;
  for (const SubstEntry &S : E.Entries) {
    H = hashCombine(H, S.Value);
    for (const ParamBinding &P : S.Key)
      H = hashCombine(H, (static_cast<uint64_t>(P.Param) << 32) | P.Label);
  }

  auto Range = EnvIds.equal_range(H);
  for (auto It = Range.first; It != Range.second; ++It) {
    const Env &Cand = Envs[It->second];
    if (Cand.Residual == E.Residual && Cand.Entries == E.Entries)
      return It->second;
  }
  AnnId Id = static_cast<AnnId>(Envs.size());
  Envs.push_back(std::move(E));
  EnvIds.emplace(H, Id);
  return Id;
}

AnnId SubstEnvDomain::lift(AnnId BaseFn) {
  return intern(Env{BaseFn, {}});
}

AnnId SubstEnvDomain::instantiate(std::vector<ParamBinding> Key,
                                  AnnId BaseFn) {
  assert(!Key.empty() && "use lift() for non-parametric annotations");
  std::sort(Key.begin(), Key.end());
  Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
#ifndef NDEBUG
  for (size_t I = 1; I < Key.size(); ++I)
    assert(Key[I - 1].Param != Key[I].Param &&
           "one parameter bound to two labels in a single key");
#endif
  Env E{Base.identity(), {SubstEntry{std::move(Key), BaseFn}}};
  return intern(std::move(E));
}

bool SubstEnvDomain::compatible(const std::vector<ParamBinding> &I,
                                const std::vector<ParamBinding> &J) {
  // "i is compatible with j" is implemented as J ⊆ I (every binding
  // of the entry is present in the queried key; keys are sorted).
  //
  // The paper's Section 6.4.2 definition only requires the *common*
  // parameter/label pairs to agree plus |i| >= |j|. That weaker
  // relation lets an entry absorb effects of entries over disjoint
  // parameters, which makes composition non-associative (an entry
  // (y:b) -> f can swallow an (x:a) effect in one association order
  // but not the other — found by the MonoidLaws property test). With
  // the subset relation, environments are functions from binding sets
  // to base elements, the "largest compatible entry" is the unique
  // maximal materialized subset (domains are merge-closed), and
  // composition is pointwise — hence associative. Effects over
  // parameters a query does not bind are visible at the merged keys,
  // which are exactly the keys composition materializes and queries
  // use.
  size_t A = 0;
  for (const ParamBinding &PJ : J) {
    while (A < I.size() && I[A].Param < PJ.Param)
      ++A;
    if (A >= I.size() || I[A].Param != PJ.Param ||
        I[A].Label != PJ.Label)
      return false;
    ++A;
  }
  return true;
}

AnnId SubstEnvDomain::lookupIn(const Env &E,
                               const std::vector<ParamBinding> &Key) const {
  // An exact entry is the semantically right answer; otherwise the
  // largest compatible entry wins (entries are stored sorted by
  // (size, key), so scanning from the back finds the largest first).
  // Environment domains are merge-closed (compose materializes every
  // compatible union), which keeps this deterministic choice
  // well-defined for the keys that arise during solving.
  for (auto It = E.Entries.rbegin(), End = E.Entries.rend(); It != End;
       ++It) {
    if (It->Key == Key)
      return It->Value;
    if (It->Key.size() < Key.size())
      break; // no exact match; fall through to compatibility scan
  }
  for (auto It = E.Entries.rbegin(), End = E.Entries.rend(); It != End;
       ++It)
    if (compatible(Key, It->Key))
      return It->Value;
  return E.Residual;
}

AnnId SubstEnvDomain::lookup(AnnId Id,
                             const std::vector<ParamBinding> &Key) const {
  assert(Id < Envs.size() && "environment id out of range");
  return lookupIn(Envs[Id], Key);
}

namespace {

/// Merges two sorted binding keys; returns false on conflict (same
/// parameter, different label).
bool mergeKeys(const std::vector<ParamBinding> &A,
               const std::vector<ParamBinding> &B,
               std::vector<ParamBinding> &Out) {
  Out.clear();
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I].Param < B[J].Param) {
      Out.push_back(A[I++]);
    } else if (B[J].Param < A[I].Param) {
      Out.push_back(B[J++]);
    } else {
      if (A[I].Label != B[J].Label)
        return false;
      Out.push_back(A[I++]);
      ++J;
    }
  }
  Out.insert(Out.end(), A.begin() + I, A.end());
  Out.insert(Out.end(), B.begin() + J, B.end());
  return true;
}

} // namespace

AnnId SubstEnvDomain::compose(AnnId F, AnnId G) const {
  assert(F < Envs.size() && G < Envs.size() && "id out of range");
  uint64_t MemoKey = (static_cast<uint64_t>(F) << 32) | G;
  auto MemoIt = ComposeMemo.find(MemoKey);
  if (MemoIt != ComposeMemo.end())
    return MemoIt->second;

  const Env &EF = Envs[F];
  const Env &EG = Envs[G];

  // Candidate keys: every key of either side, plus every compatible
  // merge of a key from each side ("compatible entries are merged by
  // expanding the entries to the union of all the parameter label
  // pairs").
  std::vector<std::vector<ParamBinding>> Keys;
  auto addKey = [&](std::vector<ParamBinding> K) {
    for (const auto &Existing : Keys)
      if (Existing == K)
        return;
    Keys.push_back(std::move(K));
  };
  for (const SubstEntry &S : EF.Entries)
    addKey(S.Key);
  for (const SubstEntry &S : EG.Entries)
    addKey(S.Key);
  std::vector<ParamBinding> Merged;
  for (const SubstEntry &SF : EF.Entries)
    for (const SubstEntry &SG : EG.Entries)
      if (mergeKeys(SF.Key, SG.Key, Merged))
        addKey(Merged);

  Env R;
  R.Residual = Base.compose(EF.Residual, EG.Residual);
  for (std::vector<ParamBinding> &K : Keys) {
    AnnId V = Base.compose(lookupIn(EF, K), lookupIn(EG, K));
    R.Entries.push_back(SubstEntry{std::move(K), V});
  }

  // No value-based normalization: dropping an entry that the rest of
  // the environment "already implies" at its own key can still change
  // lookups of *other* keys that had it as their largest compatible
  // entry, which breaks associativity. Interning dedups structurally
  // equal environments; the entry count is bounded by the finitely
  // many merge-closed binding sets occurring in the program.
  AnnId Id = intern(std::move(R));
  ComposeMemo.emplace(MemoKey, Id);
  return Id;
}

bool SubstEnvDomain::isUseless(AnnId F) const {
  const Env &E = Envs[F];
  if (!Base.isUseless(E.Residual))
    return false;
  for (const SubstEntry &S : E.Entries)
    if (!Base.isUseless(S.Value))
      return false;
  return true;
}

bool SubstEnvDomain::isAccepting(AnnId F) const {
  const Env &E = Envs[F];
  if (Base.isAccepting(E.Residual))
    return true;
  for (const SubstEntry &S : E.Entries)
    if (Base.isAccepting(S.Value))
      return true;
  return false;
}

std::string SubstEnvDomain::toString(AnnId F) const {
  const Env &E = Envs[F];
  if (E.Entries.empty())
    return Base.toString(E.Residual);
  std::ostringstream OS;
  OS << "[";
  bool FirstEntry = true;
  for (const SubstEntry &S : E.Entries) {
    if (!FirstEntry)
      OS << "; ";
    FirstEntry = false;
    OS << "(";
    for (size_t I = 0; I != S.Key.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Names.str(S.Key[I].Param) << ":" << Names.str(S.Key[I].Label);
    }
    OS << ") -> " << Base.toString(S.Value);
  }
  OS << " | " << Base.toString(E.Residual) << "]";
  return OS.str();
}
