//===- core/Domains.cpp - Concrete annotation domains -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/Domains.h"

#include "support/ComposeKernel.h"

#include <sstream>

using namespace rasc;

MonoidDomain::MonoidDomain(Dfa M, TransitionMonoid::Options Opts)
    : Machine(std::make_unique<Dfa>(std::move(M))),
      Mon(std::make_unique<TransitionMonoid>(*Machine, Opts)) {
  assert(!Mon->overflowed() &&
         "annotation monoid exceeded the element cap; raise "
         "TransitionMonoid::Options::MaxElements or use a "
         "unidirectional solver");
}

GenKillDomain::GenKillDomain(unsigned NumBits)
    : NumBits(NumBits),
      Mask(NumBits >= 64 ? ~uint64_t(0)
                         : (uint64_t(1) << NumBits) - 1) {
  assert(NumBits >= 1 && NumBits <= 64 && "1..64 bits supported");
  // Identity first so identity() == 0.
  makeElem(0, 0);
}

AnnId GenKillDomain::makeElem(uint64_t Gen, uint64_t Kill) const {
  Gen &= Mask;
  Kill &= Mask;
  assert((Gen & Kill) == 0 && "gen and kill must be disjoint");
  auto [It, Inserted] =
      Ids.emplace(std::make_pair(Gen, Kill),
                  static_cast<AnnId>(Elems.size()));
  if (Inserted)
    Elems.emplace_back(Gen, Kill);
  return It->second;
}

AnnId GenKillDomain::compose(AnnId F, AnnId G) const {
  assert(F < Elems.size() && G < Elems.size() && "id out of range");
  uint64_t Key = (static_cast<uint64_t>(F) << 32) | G;
  auto It = ComposeMemo.find(Key);
  if (It != ComposeMemo.end())
    return It->second;
  // G first, then F: X |-> apply_F(apply_G(X)). The mask algebra
  // lives in support/ComposeKernel.h so the batch (vectorizable) form
  // and this interning path share one definition.
  auto [GenF, KillF] = Elems[F];
  auto [GenG, KillG] = Elems[G];
  kernel::GenKillMasks C = kernel::genKillCompose(GenF, KillF, GenG, KillG);
  AnnId R = makeElem(C.Gen, C.Kill);
  ComposeMemo.emplace(Key, R);
  return R;
}

std::string GenKillDomain::toString(AnnId F) const {
  assert(F < Elems.size() && "id out of range");
  std::ostringstream OS;
  OS << "{gen=";
  for (unsigned I = 0; I != NumBits; ++I)
    OS << ((Elems[F].first >> I) & 1);
  OS << ", kill=";
  for (unsigned I = 0; I != NumBits; ++I)
    OS << ((Elems[F].second >> I) & 1);
  OS << "}";
  return OS.str();
}
