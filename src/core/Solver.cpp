//===- core/Solver.cpp - Bidirectional annotated solver ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/Solver.h"

#include "core/Observe.h"
#include "core/ProofLog.h"
#include "support/ComposeKernel.h"
#include "support/FailPoint.h"
#include "support/FlatSet.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

using namespace rasc;

/// Resolves SolverOptions::Dedup against the domain size observed at
/// solver construction. A static member (not file-local) because the
/// snapshot code records and re-checks the resolved backend.
EdgeDedup::Backend
BidirectionalSolver::resolveDedupBackend(const SolverOptions &Opts,
                                         const AnnotationDomain &D) {
  switch (Opts.Dedup) {
  case SolverOptions::DedupBackend::Bitset:
    return EdgeDedup::Backend::Bitset;
  case SolverOptions::DedupBackend::FlatSet:
    return EdgeDedup::Backend::Flat;
  case SolverOptions::DedupBackend::Auto:
    break;
  }
  return D.size() <= Opts.AnnBitsetThreshold ? EdgeDedup::Backend::Bitset
                                             : EdgeDedup::Backend::Flat;
}

/// Resolves SolverOptions::MergeShards at construction: 0 follows the
/// thread count (hardware threads when that is 0 too), so the default
/// sequential solver gets exactly one segment — the plain EdgeDedup
/// fast path — and a parallel solver gets one shard per worker. The
/// ceiling only bounds scratch for absurd explicit values; it is far
/// above any thread count that pays off.
unsigned BidirectionalSolver::resolveMergeShards(const SolverOptions &Opts) {
  unsigned P = Opts.MergeShards;
  if (P == 0)
    P = Opts.Threads ? Opts.Threads : ThreadPool::hardwareThreads();
  return std::min(P, 256u);
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Maps a solve status to the proof trailer's status byte. An explicit
/// switch, not a cast: the two enums agree by construction today, and
/// this keeps a reordering of either from silently corrupting logs.
ProofLogWriter::StatusCode proofStatusCode(BidirectionalSolver::Status S) {
  switch (S) {
  case BidirectionalSolver::Status::Solved:
    return ProofLogWriter::StSolved;
  case BidirectionalSolver::Status::Inconsistent:
    return ProofLogWriter::StInconsistent;
  case BidirectionalSolver::Status::EdgeLimit:
    return ProofLogWriter::StEdgeLimit;
  case BidirectionalSolver::Status::StepLimit:
    return ProofLogWriter::StStepLimit;
  case BidirectionalSolver::Status::Deadline:
    return ProofLogWriter::StDeadline;
  case BidirectionalSolver::Status::MemoryLimit:
    return ProofLogWriter::StMemoryLimit;
  case BidirectionalSolver::Status::Cancelled:
    return ProofLogWriter::StCancelled;
  }
  return ProofLogWriter::StUnproven;
}

} // namespace

const std::vector<AnnId> &AtomReachability::annotations(VarId V) const {
  static const std::vector<AnnId> Empty;
  if (Solver)
    V = Solver->rep(V);
  auto It = Facts.find(V);
  return It == Facts.end() ? Empty : It->second;
}

std::vector<ConsId> AtomReachability::witnessStack(VarId V,
                                                   AnnId Ann) const {
  std::vector<ConsId> Stack;
  if (Solver)
    V = Solver->rep(V);
  uint64_t Key = (static_cast<uint64_t>(V) << 32) | Ann;
  auto It = Parents.find(Key);
  while (It != Parents.end() && It->second.InnerVar != InvalidVar) {
    Stack.push_back(It->second.C);
    Key = (static_cast<uint64_t>(It->second.InnerVar) << 32) |
          It->second.InnerAnn;
    It = Parents.find(Key);
  }
  return Stack;
}

BidirectionalSolver::BidirectionalSolver(const ConstraintSystem &CS,
                                         SolverOptions Opts)
    : CS(CS), Options(Opts),
      EdgeSeen(resolveDedupBackend(Opts, CS.domain()), CS.domain().size(),
               resolveMergeShards(Opts)),
      FnVarSeen(resolveDedupBackend(Opts, CS.domain()), CS.domain().size()) {}

BidirectionalSolver::~BidirectionalSolver() = default;

VarId BidirectionalSolver::rep(VarId V) const {
  VarReps.grow(V + 1);
  return VarReps.find(V);
}

void BidirectionalSolver::growTo(ExprId E) {
  size_t Need = std::max<size_t>(E + 1, CS.numExprs());
  if (Succs.numNodes() < Need) {
    size_t Old = Succs.numNodes();
    Succs.ensureNodes(Need);
    Preds.ensureNodes(Need);
    Watchers.resize(Need);
    SuccDone.resize(Need, 0);
    PredDone.resize(Need, 0);
    // Every id below numExprs() is interned by now, so the kind cache
    // can be filled for the whole new range.
    NodeKind.resize(Need);
    for (size_t I = Old; I != Need; ++I)
      NodeKind[I] = static_cast<uint8_t>(CS.expr(I).Kind);
  }
}

ExprId BidirectionalSolver::varNode(VarId V) {
  if (V >= VarNode.size())
    VarNode.resize(std::max<size_t>(CS.numVars(), V + 1), InvalidExpr);
  if (VarNode[V] == InvalidExpr)
    VarNode[V] = CS.var(V);
  return VarNode[V];
}

ExprId BidirectionalSolver::canonicalize(ExprId E) {
  const Expr &Ex = CS.expr(E);
  switch (Ex.Kind) {
  case ExprKind::Var:
    return varNode(rep(Ex.V));
  case ExprKind::Cons: {
    std::vector<VarId> Args;
    Args.reserve(Ex.Args.size());
    bool Changed = false;
    for (VarId A : Ex.Args) {
      VarId R = rep(A);
      Changed |= R != A;
      Args.push_back(R);
    }
    return Changed ? CS.cons(Ex.C, std::move(Args)) : E;
  }
  case ExprKind::Proj: {
    VarId R = rep(Ex.V);
    return R == Ex.V ? E : CS.proj(Ex.C, Ex.Index, R);
  }
  }
  return E;
}

void BidirectionalSolver::collapseCycles(size_t FirstNew) {
  // Collapse strongly connected components of *identity-annotated
  // variable-variable* surface constraints. Only identity cycles may
  // be collapsed: an annotated cycle X ⊆^f Y ⊆ X equates X and Y only
  // up to annotation shifts.
  const std::vector<Constraint> &Cons = CS.constraints();
  AnnId Identity = CS.domain().identity();

  std::vector<std::vector<uint32_t>> Adj(CS.numVars());
  bool Any = false;
  for (size_t I = FirstNew; I != Cons.size(); ++I) {
    if (CS.isRetracted(static_cast<uint32_t>(I)))
      continue;
    const Expr &L = CS.expr(Cons[I].Lhs);
    const Expr &R = CS.expr(Cons[I].Rhs);
    if (Cons[I].Ann != Identity || L.Kind != ExprKind::Var ||
        R.Kind != ExprKind::Var)
      continue;
    Adj[L.V].push_back(R.V);
    Any = true;
  }
  if (!Any)
    return;

  // Iterative Tarjan SCC.
  uint32_t N = CS.numVars();
  std::vector<uint32_t> Index(N, ~0u), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;

  struct Frame {
    uint32_t V;
    size_t Child;
  };
  std::vector<Frame> Frames;

  VarReps.grow(N);
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      Frame &F = Frames.back();
      uint32_t V = F.V;
      if (F.Child == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (F.Child < Adj[V].size()) {
        uint32_t W = Adj[V][F.Child++];
        if (Index[W] == ~0u) {
          Frames.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      // All children done.
      if (Low[V] == Index[V]) {
        uint32_t First = ~0u;
        uint32_t Merged = 0;
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          if (First == ~0u) {
            First = W;
          } else {
            VarReps.merge(First, W);
            ++Stats.CollapsedVars;
            ++Merged;
            // The pair is an unordered "same class" fact for the
            // checker; whichever of the two the union-find elected
            // representative is irrelevant to it.
            if (Proof)
              Proof->collapse(W, First);
          }
          if (W == V)
            break;
        }
        if (Merged && trace::enabled())
          trace::instant("solver.cycle.collapse", First, Merged);
      }
      Frames.pop_back();
      if (!Frames.empty()) {
        Frame &Parent = Frames.back();
        Low[Parent.V] = std::min(Low[Parent.V], Low[V]);
      }
    }
  }
}

void BidirectionalSolver::ingest(const Constraint &C, uint32_t Idx) {
  // A retracted constraint contributes nothing — no surface edge, no
  // watcher. NumIngested still advances past it (the caller's loop),
  // so a fresh solve of an edited system and a warm-boot replay of
  // "retract N;" statements see the same prefix semantics.
  if (CS.isRetracted(Idx))
    return;
  ExprId L = canonicalize(C.Lhs);
  ExprId R = canonicalize(C.Rhs);
  if (Proof)
    Proof->constraint(Idx, C, L, R);
  // By value: varNode() below may intern a fresh var expr, and the
  // interning table can reallocate under any reference into it.
  const Expr LE = CS.expr(L);

  if (LE.Kind != ExprKind::Proj) {
    if (NeedProv)
      CurProv = {EdgeProv::Rule::Surface, Idx};
    addEdge(L, R, C.Ann);
    return;
  }

  // Projection constraint c^-i(Y) ⊆^g Z: register a watcher on Y and
  // replay the constructor lower bounds Y already has. (LE.V and RE.V
  // are representatives: canonicalize rewrote them above.)
  const Expr RE = CS.expr(R);
  assert(RE.Kind == ExprKind::Var && "checked by ConstraintSystem::add");
  ExprId YNode = varNode(LE.V);
  growTo(YNode);
  Watchers[YNode].push_back({LE.C, LE.Index, RE.V, C.Ann, Idx});

  // Snapshot by count: addEdge below appends, but appends never
  // invalidate an in-flight forEach (support/Adjacency.h).
  Preds.forEach(YNode, [&](ExprId Src, AnnId F) {
    const Expr &SE = CS.expr(Src);
    if (SE.Kind != ExprKind::Cons || SE.C != LE.C)
      return;
    VarId Arg = SE.Args[LE.Index]; // before varNode can invalidate SE
    ++Stats.ProjectionSteps;
    ++Stats.ComposeCalls;
    if (trace::enabled())
      trace::instant("solver.projection", Src, YNode);
    if (NeedProv)
      CurProv = {EdgeProv::Rule::Projection, Idx, Edge{Src, YNode, F}};
    addEdge(varNode(Arg), varNode(RE.V), CS.domain().compose(C.Ann, F));
  });
}

void BidirectionalSolver::insertFreshEdge(ExprId Src, ExprId Dst,
                                          AnnId Ann) {
  if (Options.FilterUseless && CS.domain().isUseless(Ann)) {
    ++Stats.UselessFiltered;
    return;
  }
  ++Stats.EdgesInserted;
  if (trace::enabled())
    trace::instant("solver.edge.insert", Src, Dst);
  // Budgets are enforced between worklist pops (see addEdge): an edge
  // that passed dedup is always inserted, so the dedup tables and the
  // arena never disagree across an interrupt. The test-only failpoint
  // requests an interrupt here but still defers it to the pop loop.
  if (failpoints::armedAny() &&
      failpoints::hit(failpoints::Point::SolverEdgeInsert))
    ForcedInterrupt = Status::MemoryLimit;
  growTo(std::max(Src, Dst));

  constexpr uint8_t KCons = static_cast<uint8_t>(ExprKind::Cons);
  if (NodeKind[Src] == KCons && NodeKind[Dst] == KCons &&
      CS.expr(Src).C != CS.expr(Dst).C) {
    // Rule 2: constructor mismatch; manifestly inconsistent.
    Conflicts.push_back({Src, Dst, Ann});
    if (Options.TrackProvenance)
      ConflictProvs.push_back(CurProv);
    if (Proof)
      emitProofEdge(/*IsConflict=*/true, Src, Dst, Ann);
    return;
  }

  Succs.append(Src, Dst, Ann);
  Preds.append(Dst, Src, Ann);
  EdgeArena.push_back({Src, Dst, Ann});
  if (Options.TrackProvenance) {
    EdgeProvs.push_back(CurProv);
    if (Options.Incremental) {
      // Retraction indexes: register this triple and resolve the
      // premise triples to their arena indices while they are O(1)
      // lookups (premises are always already-inserted edges).
      uint32_t I = static_cast<uint32_t>(EdgeArena.size() - 1);
      registerProvEdge(Src, Dst, Ann, I);
      ProvPar1.push_back(provEdgeIndex(CurProv.P1));
      ProvPar2.push_back(provEdgeIndex(CurProv.P2));
    }
  }
  if (Proof)
    emitProofEdge(/*IsConflict=*/false, Src, Dst, Ann);
}

void BidirectionalSolver::decompose(const Edge &E) {
  // By value: varNode() below may intern fresh var exprs and
  // reallocate the expr table (see ingest).
  const Expr L = CS.expr(E.Src);
  const Expr R = CS.expr(E.Dst);
  assert(L.C == R.C && "mismatch handled at insertion");
  ++Stats.DecomposeSteps;
  if (trace::enabled())
    trace::instant("solver.decompose", E.Src, E.Dst);
  if (NeedProv)
    CurProv = {EdgeProv::Rule::Decompose, ~0u, E};
  for (size_t I = 0; I != L.Args.size(); ++I)
    addEdge(varNode(L.Args[I]), varNode(R.Args[I]), E.Ann);
  if (addFnVarConstraint(L.Alpha, E.Ann, R.Alpha) && Proof)
    Proof->fnvar(L.Alpha, E.Ann, R.Alpha, {E.Src, E.Dst, E.Ann});
}

void BidirectionalSolver::process(const Edge &E) {
  const AnnotationDomain &D = CS.domain();
  const bool Track = NeedProv;
  // One-byte kind loads; the full Expr records are only pulled in on
  // the rare constructor paths (decompose, watcher match).
  constexpr uint8_t KCons = static_cast<uint8_t>(ExprKind::Cons);
  constexpr uint8_t KVar = static_cast<uint8_t>(ExprKind::Var);
  uint8_t SrcKind = NodeKind[E.Src];
  uint8_t DstKind = NodeKind[E.Dst];

  if (SrcKind == KCons && DstKind == KCons) {
    decompose(E);
    ++SuccDone[E.Src];
    ++PredDone[E.Dst];
    return;
  }

  // The transitive rule scans only the processed prefix of the
  // adjacent list (see SuccDone/PredDone in Solver.h): the join of a
  // 2-path is performed by whichever edge is processed later, exactly
  // once. Iteration bounded by a prefix is safe against mid-loop
  // appends (support/Adjacency.h).
  if (DstKind == KVar) {
    // Transitive rule forward: E then (Dst ⊆^g S) gives compose(g,
    // E.Ann) with g varying — hoist the right-operand row when the
    // domain has a dense table (Theorem 2.1's table lookup without
    // the per-iteration virtual call and row multiply).
    const AnnId *Row = D.composeRowRhs(E.Ann);
    uint32_t Deg = SuccDone[E.Dst];
    Stats.ComposeCalls += Deg;
    // Aggregated per scan, not per join: an event inside the chunk
    // loops would put a flag load in the innermost hot path.
    if (trace::enabled() && Deg)
      trace::instant("solver.compose", Deg, E.Dst);
    // Prefetch pass first: the dedup probes of one chunk are
    // independent, so their cache misses overlap instead of
    // serializing (the probe stream has no locality). Only worth it
    // when the composed annotation is a table lookup and the dedup
    // table has outgrown the caches.
    bool Pf = Row && EdgeSeen.prefetchWorthwhile();
    Succs.forEachChunks(
        E.Dst, Deg, [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
          if (Pf)
            for (uint32_t I = 0; I != N; ++I)
              EdgeSeen.prefetch(E.Src, Ch.Peers[I], Row[Ch.Anns[I]]);
          for (uint32_t I = 0; I != N; ++I) {
            if (Track)
              CurProv = {EdgeProv::Rule::Transitive, ~0u, E,
                         Edge{E.Dst, Ch.Peers[I], Ch.Anns[I]}};
            addEdge(E.Src, Ch.Peers[I],
                    Row ? Row[Ch.Anns[I]] : D.compose(Ch.Anns[I], E.Ann));
          }
        });
    // A self-loop pairs with itself, and neither processing event sees
    // the other in a processed prefix — join it here explicitly.
    if (E.Src == E.Dst) {
      ++Stats.ComposeCalls;
      if (Track)
        CurProv = {EdgeProv::Rule::Transitive, ~0u, E, E};
      addEdge(E.Src, E.Dst, Row ? Row[E.Ann] : D.compose(E.Ann, E.Ann));
    }
    // Projection rule: new constructor lower bound meets watchers.
    if (SrcKind == KCons && !Watchers[E.Dst].empty()) {
      const Expr SE = CS.expr(E.Src); // by value: varNode may intern
      for (size_t I = 0, N = Watchers[E.Dst].size(); I != N; ++I) {
        Watcher W = Watchers[E.Dst][I];
        if (W.C != SE.C)
          continue;
        ++Stats.ProjectionSteps;
        ++Stats.ComposeCalls;
        if (trace::enabled())
          trace::instant("solver.projection", E.Src, E.Dst);
        if (Track)
          CurProv = {EdgeProv::Rule::Projection, W.ConsIdx, E};
        addEdge(varNode(SE.Args[W.Index]), varNode(W.Target),
                Row ? Row[W.Ann] : D.compose(W.Ann, E.Ann));
      }
    }
  }

  if (SrcKind == KVar) {
    // Transitive rule backward: (P ⊆^g Src) then E gives
    // compose(E.Ann, g) — the left-operand row.
    const AnnId *Row = D.composeRowLhs(E.Ann);
    uint32_t Deg = PredDone[E.Src];
    Stats.ComposeCalls += Deg;
    if (trace::enabled() && Deg)
      trace::instant("solver.compose", Deg, E.Src);
    bool Pf = Row && EdgeSeen.prefetchWorthwhile();
    Preds.forEachChunks(
        E.Src, Deg, [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
          if (Pf)
            for (uint32_t I = 0; I != N; ++I)
              EdgeSeen.prefetch(Ch.Peers[I], E.Dst, Row[Ch.Anns[I]]);
          for (uint32_t I = 0; I != N; ++I) {
            if (Track)
              CurProv = {EdgeProv::Rule::Transitive, ~0u,
                         Edge{Ch.Peers[I], E.Src, Ch.Anns[I]}, E};
            addEdge(Ch.Peers[I], E.Dst,
                    Row ? Row[Ch.Anns[I]] : D.compose(E.Ann, Ch.Anns[I]));
          }
        });
  }

  // E is the next unprocessed entry of Succs[Src] and Preds[Dst]
  // (appends and processing both follow arena order), so the prefixes
  // extend by exactly this edge.
  ++SuccDone[E.Src];
  ++PredDone[E.Dst];
}

bool BidirectionalSolver::addFnVarConstraint(FnVarId From, AnnId Fn,
                                             FnVarId To) {
  if (!FnVarSeen.insert(From, To, Fn))
    return false;
  FnVarCons.push_back({From, Fn, To});
  ++Stats.FnVarConstraints;
  FnVarSolFresh = false;
  return true;
}

BidirectionalSolver::Status
BidirectionalSolver::governanceCheck(std::chrono::steady_clock::time_point Start) {
  ++Stats.BudgetChecks;
  if (trace::enabled())
    trace::instant("solver.governance", Stats.EdgesInserted,
                   pendingEdges());
  if (observe::metricsEnabled()) {
    // Point-in-time occupancy at the governance cadence: cheap enough
    // to sample every check, and mid-solve snapshots see live values.
    MetricsRegistry &M = MetricsRegistry::global();
    M.gauge("solver.pending_edges").set(pendingEdges());
    M.gauge("solver.dedup_bytes").set(EdgeSeen.memoryBytes());
    M.gauge("solver.monoid_size").set(CS.domain().size());
  }
  if (double Every = observe::progressEverySeconds(); Every > 0) {
    auto Now = std::chrono::steady_clock::now();
    if (LastProgress.time_since_epoch().count() == 0) {
      LastProgress = Now; // arm on first check; report from then on
    } else if (std::chrono::duration<double>(Now - LastProgress).count() >=
               Every) {
      LastProgress = Now;
      std::fprintf(
          stderr,
          "[rasc] edges=%llu dup=%llu pending=%zu compose=%llu "
          "mem=%.1fMiB\n",
          static_cast<unsigned long long>(Stats.EdgesInserted),
          static_cast<unsigned long long>(Stats.EdgesDropped),
          pendingEdges(),
          static_cast<unsigned long long>(Stats.ComposeCalls),
          static_cast<double>(memoryBytes()) / (1024.0 * 1024.0));
    }
  }
  if (Options.CancelFlag &&
      Options.CancelFlag->load(std::memory_order_relaxed))
    return Status::Cancelled;
  if (Options.DeadlineSeconds > 0 &&
      secondsSince(Start) >= Options.DeadlineSeconds)
    return Status::Deadline;
  if (Options.MaxMemoryBytes && memoryBytes() > Options.MaxMemoryBytes)
    return Status::MemoryLimit;
  if (Options.GroupMemory) {
    // Publish this solver's delta into the batch's shared cell.
    // Deltas can be negative (capacity rarely shrinks, but can);
    // unsigned wrap-around makes fetch_add(cur - last) correct either
    // way. Relaxed suffices: the total is an approximate budget, not
    // a synchronization point. A new cell restarts the chain: the
    // first publish contributes this solver's full footprint.
    if (Options.GroupMemory != LastGroupCell) {
      LastGroupCell = Options.GroupMemory;
      LastPublishedMemory = 0;
    }
    uint64_t Cur = memoryBytes();
    uint64_t Total = Options.GroupMemory->fetch_add(
                         Cur - LastPublishedMemory,
                         std::memory_order_relaxed) +
                     (Cur - LastPublishedMemory);
    LastPublishedMemory = Cur;
    if (Options.MaxGroupMemoryBytes && Total > Options.MaxGroupMemoryBytes)
      return Status::MemoryLimit;
  }
  if (failpoints::armedAny()) {
    if (failpoints::hit(failpoints::Point::SolverCancel))
      return Status::Cancelled;
    if (failpoints::hit(failpoints::Point::SolverDeadline))
      return Status::Deadline;
  }
  return Status::Solved;
}

BidirectionalSolver::Status
BidirectionalSolver::runClosure(std::chrono::steady_clock::time_point Start) {
  // The arena is the worklist: edges enter once at insertion, the
  // head cursor drains in FIFO order. On any interrupt the tail stays
  // queued and the processed-prefix counters are exact, so a later
  // call continues from precisely this point.
  //
  // Every budget is enforced here, between pops — never inside
  // process() — so an interrupted closure is always at an edge
  // boundary (see addEdge in Solver.h). The edge and step budgets are
  // two integer compares per pop; the expensive checks (clock read,
  // atomic load, memory walk, failpoints) run every
  // GovernanceCheckInterval pops via governanceCheck().
  const uint32_t Interval =
      Options.GovernanceCheckInterval ? Options.GovernanceCheckInterval : 1;
  uint32_t UntilSlow = Interval;

  while (PendingHead != EdgeArena.size()) {
    if (Options.MaxEdges != 0 && Stats.EdgesInserted > Options.MaxEdges)
      return Status::EdgeLimit;
    if (Options.MaxComposeSteps != 0 &&
        Stats.ComposeCalls >= Options.MaxComposeSteps)
      return Status::StepLimit;
    if (ForcedInterrupt) {
      Status S = *ForcedInterrupt;
      ForcedInterrupt.reset();
      return S;
    }
    if (--UntilSlow == 0) {
      UntilSlow = Interval;
      Status S = governanceCheck(Start);
      if (S != Status::Solved)
        return S;
    }
    Edge E = EdgeArena[PendingHead++]; // by value: process() appends
    if (trace::enabled())
      trace::instant("solver.pop", E.Src, E.Dst);
    process(E);
    if (Options.CheckpointEveryPops &&
        ++PopsSinceCheckpoint >= Options.CheckpointEveryPops)
      periodicCheckpoint();
  }
  // A failpoint that fired during the worklist's final fan-out has
  // nothing left to interrupt; don't leak it into the next solve().
  ForcedInterrupt.reset();
  return Status::Solved;
}

BidirectionalSolver::Status BidirectionalSolver::runClosureParallel(
    std::chrono::steady_clock::time_point Start, unsigned Threads) {
  const uint32_t Interval =
      Options.GovernanceCheckInterval ? Options.GovernanceCheckInterval : 1;
  uint32_t UntilSlow = Interval;
  // Cap on edges per round: bounds the interrupt latency (budgets are
  // only enforced between rounds) and the round scratch.
  constexpr size_t MaxRoundEdges = size_t(1) << 16;

  if (!Pool || Pool->numThreads() != Threads - 1)
    Pool = std::make_unique<ThreadPool>(Threads - 1);

  while (PendingHead != EdgeArena.size()) {
    if (Options.MaxEdges != 0 && Stats.EdgesInserted > Options.MaxEdges)
      return Status::EdgeLimit;
    if (Options.MaxComposeSteps != 0 &&
        Stats.ComposeCalls >= Options.MaxComposeSteps)
      return Status::StepLimit;
    if (ForcedInterrupt) {
      Status S = *ForcedInterrupt;
      ForcedInterrupt.reset();
      return S;
    }
    if (--UntilSlow == 0) {
      UntilSlow = Interval;
      Status S = governanceCheck(Start);
      if (S != Status::Solved)
        return S;
    }
    size_t Frontier = EdgeArena.size() - PendingHead;
    if (Frontier < Options.ParallelFrontierThreshold) {
      Edge E = EdgeArena[PendingHead++]; // by value: process() appends
      process(E);
      Frontier = 1;
    } else {
      Frontier = std::min(Frontier, MaxRoundEdges);
      parallelRound(Frontier, Threads);
    }
    // Rounds count as their edge total so the checkpoint cadence is
    // comparable across the two paths; saves still land only at round
    // boundaries (the parallel path's resumable states).
    if (Options.CheckpointEveryPops &&
        (PopsSinceCheckpoint += Frontier) >= Options.CheckpointEveryPops)
      periodicCheckpoint();
  }
  ForcedInterrupt.reset();
  return Status::Solved;
}

/// One bulk-synchronous round over the frontier, in four phases.
///
/// Phase 1 (sequential limits sweep) replays exactly the counter
/// evolution the sequential loop would produce: frontier edge j
/// snapshots the processed prefixes its scans may read — SuccDone of
/// its destination, PredDone of its source — and then advances its
/// own nodes' counters, so edge j's snapshot covers every earlier
/// edge (pre-round and frontier positions < j) and nothing later.
/// Each 2-path is therefore joined by exactly the later of its two
/// edges, once, just as in process(); the join *sets* of the two
/// modes coincide, so by confluence so do the fixpoints — and so do
/// the stats totals (see phase 4). Options.RelaxedParallelStats
/// skips the snapshots entirely: workers scan the full current
/// adjacency degrees, which are stable during the read-only compute
/// phase because every arena edge was appended to both lists at
/// insertion. The relaxed scans are a *superset* of the exact join
/// schedule — every adjacent pair is joined by at least its later
/// edge, possibly by both — so the fixpoint is unchanged while
/// ComposeCalls/EdgesDropped may exceed the sequential totals. The
/// processed-prefix counters still advance exactly once per frontier
/// edge in either mode: the certifier's recount and a sequential
/// resume depend on their exactness, not on which schedule performed
/// the joins.
///
/// Phase 2 (parallel compute) partitions the frontier across workers.
/// Workers are strictly read-only — frontier slice of the arena,
/// NodeKind, adjacency prefixes within their scan limits (all
/// appended before the round), dense composition rows, and read-only
/// dedup probes — and write only their own RoundBuf, so the phase is
/// race-free without any locking. A worker routes each surviving
/// (not-yet-seen) edge into the mailbox of the dedup shard owning its
/// destination: one single-producer/single-consumer buffer per
/// (producer, shard) pair, handed off by the pool barrier. Work that
/// must mutate shared state is left for the epilogue: constructor
/// decompositions and watcher projections intern var nodes, and a
/// scan whose annotation has no dense row would go through the
/// domain's mutating compose(). Row availability is a pure function
/// of the domain (fixed at monoid construction), so the epilogue
/// re-detects those edges with the same null-row test instead of any
/// cross-thread handoff.
///
/// Phase 3 (parallel owner merge) runs one owner per dedup shard:
/// owner S drains every producer's mailbox for S in producer order
/// and performs the *authoritative* test-and-set against its own
/// dedup segment. Destinations are partitioned by shard, so no two
/// owners touch the same segment, and each owner writes only its own
/// ShardScratch — fresh edges in drain order, plus a private drop
/// counter for the within-round duplicates the pre-filter could not
/// see. This moves the round's dominant sequential cost, the dedup
/// insertion probes, onto all cores.
///
/// Phase 4 (sequential epilogue) performs the deferred
/// decompositions, projections, and row-less scans through addEdge —
/// still the single writer for those — then appends the shards'
/// fresh lists (shard-major: a fixed, deterministic order) through
/// insertFreshEdge: useless filter, conflict check, arena and
/// adjacency appends, all sequential. Exact-mode stats still match
/// the sequential run at any fixpoint: joins are in bijection with
/// the final edge set's adjacent pairs and insertions with its
/// unique derived triples, so the attempt multiset is
/// schedule-independent; reordering only shifts which attempt is the
/// first claim, and the totals are blind to that.
void BidirectionalSolver::parallelRound(size_t Frontier, unsigned Threads) {
  ++Stats.ParallelRounds;
  RASC_TRACE_SCOPE("solver.round", Frontier, Threads);
  const bool Metrics = observe::metricsEnabled();
  if (Metrics)
    MetricsRegistry::global()
        .histogram("solver.frontier_width")
        .record(Frontier);
  const AnnotationDomain &D = CS.domain();
  constexpr uint8_t KCons = static_cast<uint8_t>(ExprKind::Cons);
  constexpr uint8_t KVar = static_cast<uint8_t>(ExprKind::Var);
  const size_t Base = PendingHead;
  const bool Relaxed = Options.RelaxedParallelStats;
  const unsigned NumShards = EdgeSeen.numShards();

  // Phase 1: limits sweep — or, relaxed, just the exact bulk advance
  // of the processed-prefix counters (resumability and certification
  // need the counters; the relaxed scans don't need the snapshots).
  if (!Relaxed) {
    RoundSuccLimit.resize(Frontier);
    RoundPredLimit.resize(Frontier);
    for (size_t J = 0; J != Frontier; ++J) {
      const Edge &E = EdgeArena[Base + J];
      RoundSuccLimit[J] = SuccDone[E.Dst];
      RoundPredLimit[J] = PredDone[E.Src];
      ++SuccDone[E.Src];
      ++PredDone[E.Dst];
    }
  } else {
    for (size_t J = 0; J != Frontier; ++J) {
      const Edge &E = EdgeArena[Base + J];
      ++SuccDone[E.Src];
      ++PredDone[E.Dst];
    }
  }

  // Phase 2: compute.
  const size_t NumParts = std::min<size_t>(Threads, Frontier);
  if (RoundBufs.size() < NumParts)
    RoundBufs.resize(NumParts);
  auto computePart = [&](size_t P) {
    RoundBuf &B = RoundBufs[P];
    if (B.Mail.size() < NumShards)
      B.Mail.resize(NumShards);
    B.ComposeCalls = 0;
    B.EdgesDropped = 0;
    auto emit = [&](ExprId S, ExprId T, AnnId A) {
      if (EdgeSeen.contains(S, T, A))
        ++B.EdgesDropped;
      else
        B.Mail[EdgeSeen.shardOf(T)].push_back({S, T, A});
    };
    // Chunk-wide staging for the dense-row gather: the kernel runs
    // the pure table lookups over the whole chunk before the branchy
    // probe-and-buffer loop touches them.
    AnnId Comp[AdjacencyLists::ChunkCap];
    const size_t Lo = Frontier * P / NumParts;
    const size_t Hi = Frontier * (P + 1) / NumParts;
    for (size_t J = Lo; J != Hi; ++J) {
      const Edge E = EdgeArena[Base + J];
      uint8_t SrcKind = NodeKind[E.Src];
      uint8_t DstKind = NodeKind[E.Dst];
      if (SrcKind == KCons && DstKind == KCons)
        continue; // decompose interns var nodes: epilogue
      if (DstKind == KVar) {
        if (const AnnId *Row = D.composeRowRhs(E.Ann)) {
          const uint32_t Deg =
              Relaxed ? Succs.degree(E.Dst) : RoundSuccLimit[J];
          B.ComposeCalls += Deg;
          Succs.forEachChunks(
              E.Dst, Deg,
              [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
                kernel::composeMapRow(Row, Ch.Anns, Comp, N);
                for (uint32_t I = 0; I != N; ++I)
                  emit(E.Src, Ch.Peers[I], Comp[I]);
              });
          // Exact mode joins a self-loop with itself explicitly:
          // neither processing event sees the other inside a
          // processed prefix. The relaxed full-degree scan already
          // covered it — E is its own Succs[E.Dst] entry.
          if (!Relaxed && E.Src == E.Dst) {
            ++B.ComposeCalls;
            emit(E.Src, E.Dst, Row[E.Ann]);
          }
        }
        // Null row or watcher projections: epilogue.
      }
      if (SrcKind == KVar) {
        if (const AnnId *Row = D.composeRowLhs(E.Ann)) {
          const uint32_t Deg =
              Relaxed ? Preds.degree(E.Src) : RoundPredLimit[J];
          B.ComposeCalls += Deg;
          Preds.forEachChunks(
              E.Src, Deg,
              [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
                kernel::composeMapRow(Row, Ch.Anns, Comp, N);
                for (uint32_t I = 0; I != N; ++I)
                  emit(Ch.Peers[I], E.Dst, Comp[I]);
              });
        }
      }
    }
  };
  Pool->parallelFor(NumParts, computePart);

  // Phase 3: owner-partitioned merge.
  if (Shards.size() < NumShards)
    Shards.resize(NumShards);
  auto mergeShard = [&](size_t S) {
    const auto T0 = std::chrono::steady_clock::now();
    ShardScratch &Sh = Shards[S];
    Sh.Fresh.clear();
    Sh.Dropped = 0;
    Sh.MailEdges = 0;
    for (size_t P = 0; P != NumParts; ++P) {
      std::vector<Edge> &M = RoundBufs[P].Mail[S];
      Sh.MailEdges += M.size();
      for (const Edge &NE : M) {
        if (EdgeSeen.insert(NE.Src, NE.Dst, NE.Ann))
          Sh.Fresh.push_back(NE);
        else
          ++Sh.Dropped;
      }
      M.clear();
    }
    Sh.MergeNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
  };
  Pool->parallelFor(NumShards, mergeShard);

  // Phase 4: sequential epilogue.
  PendingHead = Base + Frontier;
  for (size_t J = 0; J != Frontier; ++J) {
    const Edge E = EdgeArena[Base + J]; // by value: addEdge appends
    uint8_t SrcKind = NodeKind[E.Src];
    uint8_t DstKind = NodeKind[E.Dst];
    if (SrcKind == KCons && DstKind == KCons) {
      decompose(E);
      continue;
    }
    if (DstKind == KVar) {
      const AnnId *Row = D.composeRowRhs(E.Ann);
      if (!Row) {
        // Relaxed scans read the degree at epilogue time: a superset
        // of the exact limit (append-safe; entries appended by this
        // loop's own addEdges past the bound are pending edges that
        // run their own scans later).
        const uint32_t Lim =
            Relaxed ? Succs.degree(E.Dst) : RoundSuccLimit[J];
        Stats.ComposeCalls += Lim;
        Succs.forEachChunks(
            E.Dst, Lim, [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
              for (uint32_t I = 0; I != N; ++I)
                addEdge(E.Src, Ch.Peers[I], D.compose(Ch.Anns[I], E.Ann));
            });
        if (!Relaxed && E.Src == E.Dst) {
          ++Stats.ComposeCalls;
          addEdge(E.Src, E.Dst, D.compose(E.Ann, E.Ann));
        }
      }
      if (SrcKind == KCons && !Watchers[E.Dst].empty()) {
        const Expr SE = CS.expr(E.Src); // by value: varNode may intern
        for (size_t I = 0, N = Watchers[E.Dst].size(); I != N; ++I) {
          Watcher W = Watchers[E.Dst][I];
          if (W.C != SE.C)
            continue;
          ++Stats.ProjectionSteps;
          ++Stats.ComposeCalls;
          if (trace::enabled())
            trace::instant("solver.projection", E.Src, E.Dst);
          addEdge(varNode(SE.Args[W.Index]), varNode(W.Target),
                  Row ? Row[W.Ann] : D.compose(W.Ann, E.Ann));
        }
      }
    }
    if (SrcKind == KVar) {
      if (!D.composeRowLhs(E.Ann)) {
        const uint32_t Lim =
            Relaxed ? Preds.degree(E.Src) : RoundPredLimit[J];
        Stats.ComposeCalls += Lim;
        Preds.forEachChunks(
            E.Src, Lim, [&](const AdjacencyLists::Chunk &Ch, uint32_t N) {
              for (uint32_t I = 0; I != N; ++I)
                addEdge(Ch.Peers[I], E.Dst, D.compose(E.Ann, Ch.Anns[I]));
            });
      }
    }
  }

  // Fold worker counters, then append the shards' fresh edges. Their
  // dedup bits were claimed in phase 3, so they go straight to
  // insertFreshEdge (useless filter, conflict check, arena append);
  // shard-major drain order is fixed, keeping rounds deterministic.
  for (size_t P = 0; P != NumParts; ++P) {
    Stats.ComposeCalls += RoundBufs[P].ComposeCalls;
    Stats.EdgesDropped += RoundBufs[P].EdgesDropped;
  }
  for (unsigned S = 0; S != NumShards; ++S) {
    ShardScratch &Sh = Shards[S];
    Stats.EdgesDropped += Sh.Dropped;
    for (const Edge &NE : Sh.Fresh)
      insertFreshEdge(NE.Src, NE.Dst, NE.Ann);
    Sh.Fresh.clear();
  }

  // Per-shard scaling telemetry: merge-time and mailbox-occupancy
  // histograms, and an imbalance instant (slowest vs fastest shard
  // merge this round) so skewed ownership shows up in --metrics and
  // traces instead of only in end-to-end benchmarks.
  if (Metrics) {
    MetricsRegistry &M = MetricsRegistry::global();
    auto &MergeH = M.histogram("solver.shard_merge_ns");
    auto &MailH = M.histogram("solver.shard_mailbox_edges");
    for (unsigned S = 0; S != NumShards; ++S) {
      MergeH.record(Shards[S].MergeNs);
      MailH.record(Shards[S].MailEdges);
    }
  }
  if (trace::enabled() && NumShards > 1) {
    uint64_t MaxNs = 0, MinNs = ~uint64_t(0);
    for (unsigned S = 0; S != NumShards; ++S) {
      MaxNs = std::max(MaxNs, Shards[S].MergeNs);
      MinNs = std::min(MinNs, Shards[S].MergeNs);
    }
    trace::instant("parallel.imbalance", MaxNs, MinNs);
  }
}

BidirectionalSolver::Status BidirectionalSolver::solve() {
  RASC_TRACE_SCOPE("solver.solve");
  auto Start = std::chrono::steady_clock::now();
  // Metrics are recorded as deltas over this call so repeated solves
  // (resumes, online re-solves) accumulate instead of double-counting.
  const SolverStats Before = Stats;

  if (isInterrupted(Stat))
    ++Stats.Resumes;

  // Proof logging opens before cycle elimination so the collapse
  // records land in the log ahead of anything that depends on the
  // merged representatives. NeedProv then arms CurProv population for
  // this solve: provenance retention *or* a live writer.
  openProofLogIfRequested();
  NeedProv = Options.TrackProvenance || Proof != nullptr;

  // Cycle elimination only considers the first batch: merging
  // variables after edges exist would orphan bounds recorded on the
  // pre-merge nodes.
  if (Options.CycleElimination && NumIngested == 0)
    collapseCycles(0);

  const std::vector<Constraint> &Cons = CS.constraints();
  {
    RASC_TRACE_SCOPE("solver.ingest", Cons.size() - NumIngested);
    while (NumIngested < Cons.size()) {
      uint32_t Idx = static_cast<uint32_t>(NumIngested);
      ingest(Cons[NumIngested++], Idx);
    }
  }

  Stats.IngestSeconds += secondsSince(Start);
  auto ClosureStart = std::chrono::steady_clock::now();

  // Threads == 1 is the sequential algorithm, untouched; provenance
  // tracking records arena order (which rounds permute), so it pins
  // the sequential path too — and so does a live proof log, whose
  // records must name premises in the order derivations happened.
  unsigned Threads =
      Options.Threads ? Options.Threads : ThreadPool::hardwareThreads();
  Status S;
  {
    RASC_TRACE_SCOPE("solver.closure", pendingEdges(), Threads);
    S = (Threads > 1 && !Options.TrackProvenance && !Proof)
            ? runClosureParallel(Start, Threads)
            : runClosure(Start);
  }

  Stats.ClosureSeconds += secondsSince(ClosureStart);
  auto FnVarStart = std::chrono::steady_clock::now();

  FnVarSolFresh = false;
  if (Options.EagerFunctionVars && S == Status::Solved) {
    RASC_TRACE_SCOPE("solver.fnvar");
    runEagerFnVars();
  }

  Stats.FnVarSeconds += secondsSince(FnVarStart);

  if (S == Status::Solved) {
    Stat = Conflicts.empty() ? Status::Solved : Status::Inconsistent;
  } else {
    ++Stats.Interrupts;
    Stat = S;
  }

  // Proof trailer: even an interrupted solve gets one, so the checker
  // can certify the closed prefix. An emission failure here (FsyncFail
  // included) degrades to unproven like any other write failure.
  if (Proof) {
    Proof->finish(proofStatusCode(Stat), PendingHead, NumIngested);
    if (!Proof->ok())
      abandonProof(nullptr);
  }

  // Final checkpoint: covers both completion and interrupts, so a
  // process killed between solve() calls restarts from the last
  // solve's exact end state. Failure degrades durability, never the
  // result.
  if (!Options.CheckpointPath.empty()) {
    PopsSinceCheckpoint = 0;
    if (std::optional<Diag> D = saveCheckpoint(Options.CheckpointPath))
      LastCheckpointDiag = std::move(D);
    else
      ++Stats.CheckpointsSaved;
  }
  if (observe::metricsEnabled())
    recordSolveMetrics(Before);
  return Stat;
}

void BidirectionalSolver::recordSolveMetrics(
    const SolverStats &Before) const {
  MetricsRegistry &M = MetricsRegistry::global();
  uint64_t Ins = Stats.EdgesInserted - Before.EdgesInserted;
  uint64_t Dup = Stats.EdgesDropped - Before.EdgesDropped;
  M.counter("solver.edges_inserted").add(Ins);
  M.counter("solver.edges_deduped").add(Dup);
  M.counter("solver.useless_filtered")
      .add(Stats.UselessFiltered - Before.UselessFiltered);
  M.counter("solver.compose_calls")
      .add(Stats.ComposeCalls - Before.ComposeCalls);
  M.counter("solver.decompose_steps")
      .add(Stats.DecomposeSteps - Before.DecomposeSteps);
  M.counter("solver.projection_steps")
      .add(Stats.ProjectionSteps - Before.ProjectionSteps);
  M.counter("solver.parallel_rounds")
      .add(Stats.ParallelRounds - Before.ParallelRounds);
  M.counter("solver.checkpoints_saved")
      .add(Stats.CheckpointsSaved - Before.CheckpointsSaved);
  M.counter("solver.proof_records")
      .add(Stats.ProofRecords - Before.ProofRecords);
  M.counter("solver.proof_bytes").add(Stats.ProofBytes - Before.ProofBytes);
  auto Ns = [](double Seconds) {
    return static_cast<uint64_t>(Seconds * 1e9);
  };
  M.counter("solver.ingest_ns")
      .add(Ns(Stats.IngestSeconds - Before.IngestSeconds));
  M.counter("solver.closure_ns")
      .add(Ns(Stats.ClosureSeconds - Before.ClosureSeconds));
  M.counter("solver.fnvar_ns")
      .add(Ns(Stats.FnVarSeconds - Before.FnVarSeconds));
  M.gauge("solver.monoid_size").set(CS.domain().size());
  M.gauge("solver.dedup_bytes").set(EdgeSeen.memoryBytes());
  M.gauge("solver.memory_bytes").set(memoryBytes());
  if (Ins + Dup)
    M.gauge("solver.dedup_hit_rate_pct").set(100 * Dup / (Ins + Dup));
}

void BidirectionalSolver::periodicCheckpoint() {
  PopsSinceCheckpoint = 0;
  if (std::optional<Diag> D = saveCheckpoint(Options.CheckpointPath)) {
    LastCheckpointDiag = std::move(D);
    return;
  }
  ++Stats.CheckpointsSaved;
  if (trace::enabled())
    trace::instant("solver.checkpoint.save", Stats.CheckpointsSaved,
                   processedEdges());
  // Simulated SIGKILL right after a durable checkpoint: the solve
  // interrupts (in-memory state to be discarded by the test) with a
  // valid snapshot on disk for recovery.
  if (failpoints::armedAny() &&
      failpoints::hit(failpoints::Point::CrashAfterRename))
    ForcedInterrupt = Status::Cancelled;
}

void BidirectionalSolver::openProofLogIfRequested() {
  if (Options.ProofLogPath.empty() || Proof || ProofDisabled)
    return;
  const bool Started = NumIngested != 0 || !EdgeArena.empty();
  if (Started) {
    // Rebuilding a started solver's log replays its derivations from
    // provenance, so the records must be complete and the solver
    // quiescent (an interrupted closure still owes derivations whose
    // positions a rebuilt log could not promise).
    if (!Options.TrackProvenance || EdgeProvs.size() != EdgeArena.size() ||
        ConflictProvs.size() != Conflicts.size() || isInterrupted(Stat) ||
        pendingEdges() != 0) {
      LastProofDiag = Diag(
          "proof log unavailable: enabling ProofLogPath on a started "
          "solver requires TrackProvenance from the first solve() and a "
          "quiescent (fully closed) state");
      ProofDisabled = true;
      ++Stats.ProofFailures;
      return;
    }
  }
  auto W = ProofLogWriter::open(
      Options.ProofLogPath, CS, Options.FilterUseless,
      Options.CycleElimination,
      ProofSinks{&Stats.ProofRecords, &Stats.ProofChunks,
                 &Stats.ProofBytes});
  if (!W) {
    LastProofDiag = W.error();
    ProofDisabled = true;
    ++Stats.ProofFailures;
    return;
  }
  Proof = std::move(*W);
  if (Started) {
    rebuildProofLog();
    if (Proof && !Proof->ok())
      abandonProof(nullptr);
  }
}

void BidirectionalSolver::rebuildProofLog() {
  // Collapses first: everything after them is phrased in
  // representatives.
  for (VarId V = 0; V != CS.numVars(); ++V) {
    VarId R = rep(V);
    if (R != V)
      Proof->collapse(V, R);
  }
  // Ingested (surviving) constraints, re-canonicalized — pure lookups:
  // every canonical form was interned at its original ingest under the
  // same representatives.
  for (uint32_t J = 0; J != NumIngested; ++J) {
    if (CS.isRetracted(J))
      continue;
    const Constraint &C = CS.constraints()[J];
    Proof->constraint(J, C, canonicalize(C.Lhs), canonicalize(C.Rhs));
  }

  // Edge replay order: the arena is derivation order on the
  // provenance-pinned sequential path, except that a retraction's
  // compaction can move a requeued parent behind a surviving child —
  // then a Kahn walk over the premise links restores a
  // premise-before-use order (index-order FIFO keeps it near arena
  // order and deterministic).
  const uint32_t E = static_cast<uint32_t>(EdgeArena.size());
  std::vector<uint32_t> Order(E);
  if (Stats.Retractions == 0 || ProvPar1.size() != E ||
      ProvPar2.size() != E) {
    for (uint32_t I = 0; I != E; ++I)
      Order[I] = I;
  } else {
    std::vector<uint32_t> Indeg(E, 0);
    std::vector<uint32_t> ChildHead(E, ~0u), ChildNext1(E, ~0u),
        ChildNext2(E, ~0u);
    for (uint32_t I = 0; I != E; ++I) {
      if (uint32_t P = ProvPar1[I]; P != ~0u) {
        ChildNext1[I] = ChildHead[P];
        ChildHead[P] = I;
        ++Indeg[I];
      }
      if (uint32_t P = ProvPar2[I]; P != ~0u && P != ProvPar1[I]) {
        ChildNext2[I] = ChildHead[P];
        ChildHead[P] = I;
        ++Indeg[I];
      }
    }
    std::vector<uint32_t> Queue;
    Queue.reserve(E);
    for (uint32_t I = 0; I != E; ++I)
      if (Indeg[I] == 0)
        Queue.push_back(I);
    size_t Head = 0, Done = 0;
    while (Head != Queue.size()) {
      uint32_t P = Queue[Head++];
      Order[Done++] = P;
      for (uint32_t C = ChildHead[P]; C != ~0u;
           C = ProvPar1[C] == P ? ChildNext1[C] : ChildNext2[C])
        if (--Indeg[C] == 0)
          Queue.push_back(C);
    }
    if (Done != E) {
      abandonProof("proof log rebuild failed: premise links do not "
                   "topologically order the arena");
      return;
    }
  }

  // Walk the edges; each fn-var constraint is emitted at its first
  // justifying constructor-constructor edge (the same "first
  // derivation decides" convention retract() uses).
  std::map<std::array<uint32_t, 3>, bool> FnPending;
  for (const FnVarConstraint &C : FnVarCons)
    FnPending[{C.From, C.Fn, C.To}] = true;
  constexpr uint8_t KCons = static_cast<uint8_t>(ExprKind::Cons);
  for (uint32_t K = 0; K != E && Proof->ok(); ++K) {
    const Edge &Ed = EdgeArena[Order[K]];
    const EdgeProv &P = EdgeProvs[Order[K]];
    Proof->edge(Ed.Src, Ed.Dst, Ed.Ann,
                static_cast<ProofLogWriter::Rule>(P.Kind), P.CIdx,
                {P.P1.Src, P.P1.Dst, P.P1.Ann},
                {P.P2.Src, P.P2.Dst, P.P2.Ann});
    if (!FnPending.empty() && Ed.Src < NodeKind.size() &&
        Ed.Dst < NodeKind.size() && NodeKind[Ed.Src] == KCons &&
        NodeKind[Ed.Dst] == KCons) {
      const Expr &L = CS.expr(Ed.Src);
      const Expr &R = CS.expr(Ed.Dst);
      auto It = FnPending.find({L.Alpha, Ed.Ann, R.Alpha});
      if (It != FnPending.end()) {
        Proof->fnvar(L.Alpha, Ed.Ann, R.Alpha, {Ed.Src, Ed.Dst, Ed.Ann});
        FnPending.erase(It);
      }
    }
  }
  if (!FnPending.empty()) {
    abandonProof("proof log rebuild failed: function-variable "
                 "constraint has no surviving deriving edge");
    return;
  }
  for (size_t I = 0; I != Conflicts.size() && Proof->ok(); ++I) {
    const EdgeProv &P = ConflictProvs[I];
    Proof->conflict(Conflicts[I].Src, Conflicts[I].Dst, Conflicts[I].Ann,
                    static_cast<ProofLogWriter::Rule>(P.Kind), P.CIdx,
                    {P.P1.Src, P.P1.Dst, P.P1.Ann},
                    {P.P2.Src, P.P2.Dst, P.P2.Ann});
  }
}

void BidirectionalSolver::emitProofEdge(bool IsConflict, ExprId Src,
                                        ExprId Dst, AnnId Ann) {
  auto R = static_cast<ProofLogWriter::Rule>(CurProv.Kind);
  ProofPremise P1{CurProv.P1.Src, CurProv.P1.Dst, CurProv.P1.Ann};
  ProofPremise P2{CurProv.P2.Src, CurProv.P2.Dst, CurProv.P2.Ann};
  if (IsConflict)
    Proof->conflict(Src, Dst, Ann, R, CurProv.CIdx, P1, P2);
  else
    Proof->edge(Src, Dst, Ann, R, CurProv.CIdx, P1, P2);
  // Degrade, never interrupt: the solve keeps its result, it just can
  // no longer produce a checkable artifact (lastProofDiag says why).
  if (!Proof->ok())
    abandonProof(nullptr);
}

void BidirectionalSolver::abandonProof(const char *Why) {
  if (Proof && Proof->diag())
    LastProofDiag = *Proof->diag();
  else if (Why)
    LastProofDiag = Diag(Why);
  Proof.reset();
  ProofDisabled = true;
  ++Stats.ProofFailures;
}

uint32_t BidirectionalSolver::provEdgeIndex(const Edge &E) const {
  if (E.Src == InvalidExpr)
    return ~0u;
  const uint32_t *Pid =
      ProvPairIds.lookup((static_cast<uint64_t>(E.Src) << 32) | E.Dst);
  if (!Pid)
    return ~0u;
  const uint32_t *Idx =
      ProvTriples.lookup((static_cast<uint64_t>(*Pid) << 32) | E.Ann);
  return Idx ? *Idx : ~0u;
}

void BidirectionalSolver::registerProvEdge(ExprId Src, ExprId Dst,
                                           AnnId Ann, uint32_t I) {
  auto [Pid, Fresh] = ProvPairIds.findOrInsert(
      (static_cast<uint64_t>(Src) << 32) | Dst, NextProvPairId);
  if (Fresh)
    ++NextProvPairId;
  ProvTriples.findOrInsert((static_cast<uint64_t>(Pid) << 32) | Ann, I);
}

void BidirectionalSolver::rebuildProvIndex() {
  ProvPairIds.clear();
  ProvTriples.clear();
  NextProvPairId = 0;
  const uint32_t E = static_cast<uint32_t>(EdgeArena.size());
  ProvPairIds.reserve(E);
  ProvTriples.reserve(E);
  // Two passes: a retraction compaction can move a requeued parent
  // *behind* its surviving child in the arena, so every triple must
  // be registered before any premise is resolved.
  for (uint32_t I = 0; I != E; ++I)
    registerProvEdge(EdgeArena[I].Src, EdgeArena[I].Dst, EdgeArena[I].Ann,
                     I);
  ProvPar1.assign(E, ~0u);
  ProvPar2.assign(E, ~0u);
  for (uint32_t I = 0; I != E; ++I) {
    ProvPar1[I] = provEdgeIndex(EdgeProvs[I].P1);
    ProvPar2[I] = provEdgeIndex(EdgeProvs[I].P2);
  }
}

/// Delta re-solve (DESIGN.md §11), in five steps:
///
/// 1. *Cone.* The parent links are inverted into a transient children
///    index and the derivation cone of the retracted constraint's
///    facts — surface/projection records with its index, plus
///    everything whose *first* derivation rests on a cone edge — is
///    collected by BFS. Conflicts are checked against the same cone
///    through their premise triples.
///
/// 2. *Affected set and frontier.* Every endpoint of a removed edge
///    or conflict is "affected". A surviving edge is requeued when it
///    touches an affected node (it may hold an alternative transitive
///    derivation of a removed edge: both endpoints of that edge are
///    affected, so both premises of any 2-path deriving it requeue),
///    when it is a constructor-constructor edge one of whose argument
///    pairs or function-variable facts was removed (alternative
///    decompose), or when it is a constructor lower bound of a
///    watched variable and a surviving watcher's output was removed
///    (alternative projection).
///
/// 3. *Erase.* Cone edges and dead conflicts release their dedup
///    bits (backward-shift/flag-clear erase in the backends; see
///    support/FlatSet.h, support/AnnSet.h) and dead watchers of a
///    retracted projection constraint are dropped.
///
/// 4. *Compact.* The arena keeps survivors in derivation order with
///    the frontier moved to the pending tail; adjacency is rebuilt
///    from the compacted arena into the retained chunk arenas, the
///    exactly-once processed-prefix counters are recounted over the
///    new processed prefix, and the retraction indexes are rebuilt.
///
/// 5. *Re-ingest and re-close.* Surviving surface constraints are
///    re-added (a dedup bit first claimed by a removed derivation
///    must not orphan a still-asserted surface fact) and solve()
///    drains the frontier to the fixpoint a fresh solve of the edited
///    system reaches — differentially tested and certified.
Expected<BidirectionalSolver::Status>
BidirectionalSolver::retract(uint32_t Idx) {
  if (!incrementalActive())
    return Diag("retract: requires SolverOptions::Incremental and "
                "SolverOptions::TrackProvenance from the first solve()");
  if (Idx >= CS.constraints().size())
    return Diag("retract: constraint index " + std::to_string(Idx) +
                " out of range (have " +
                std::to_string(CS.constraints().size()) + ")");
  if (!CS.isRetracted(Idx))
    return Diag("retract: constraint " + std::to_string(Idx) +
                " must be flagged via ConstraintSystem::retract first");
  if (isInterrupted(Stat) || pendingEdges() != 0)
    return Diag("retract: solver must be quiescent (Solved or "
                "Inconsistent with an empty worklist); resume the "
                "interrupted solve first");
  if (EdgeProvs.size() != EdgeArena.size() ||
      ConflictProvs.size() != Conflicts.size() ||
      ProvPar1.size() != EdgeArena.size() ||
      ProvPar2.size() != EdgeArena.size())
    return Diag("retract: provenance records are incomplete — "
                "Incremental and TrackProvenance must both be on from "
                "the first solve()");
  const Constraint &RC = CS.constraints()[Idx];
  if (Stats.CollapsedVars > 0 && RC.Ann == CS.domain().identity() &&
      CS.expr(RC.Lhs).Kind == ExprKind::Var &&
      CS.expr(RC.Rhs).Kind == ExprKind::Var)
    return Diag("retract: cannot retract an identity variable-variable "
                "constraint after cycle elimination merged variables "
                "(representatives cannot be un-merged); solve with "
                "SolverOptions::CycleElimination = false to keep such "
                "constraints retractable");

  ++Stats.Retractions;
  if (Idx >= NumIngested)
    return solve(); // never ingested: the system flag alone suffices
                    // (and the proof log, having never mentioned the
                    // constraint, stays valid)

  // An ingested retraction invalidates every log emitted so far: its
  // records mention derivations about to be erased. Seal the file as
  // Unproven, drop the writer, and clear the request — re-setting
  // ProofLogPath after this retract rebuilds a fresh log from the
  // post-retract state (ProofDisabled latches only for I/O failures).
  if (Proof) {
    Proof->finish(ProofLogWriter::StUnproven, PendingHead, NumIngested);
    abandonProof("proof log abandoned: retract() erases derivations the "
                 "log already recorded; set ProofLogPath again to "
                 "rebuild a post-retract log");
    Options.ProofLogPath.clear();
    ProofDisabled = false;
  }

  RASC_TRACE_SCOPE("solver.retract", Idx, EdgeArena.size());
  const uint32_t OldE = static_cast<uint32_t>(EdgeArena.size());
  constexpr uint8_t KCons = static_cast<uint8_t>(ExprKind::Cons);
  constexpr uint8_t KVar = static_cast<uint8_t>(ExprKind::Var);

  // Step 1: derivation cone. Children index: per-parent intrusive
  // lists threaded through the two per-child slots (a child links
  // into at most two parents' lists).
  std::vector<uint32_t> ChildHead(OldE, ~0u);
  std::vector<uint32_t> ChildNext1(OldE, ~0u);
  std::vector<uint32_t> ChildNext2(OldE, ~0u);
  for (uint32_t I = 0; I != OldE; ++I) {
    if (uint32_t P = ProvPar1[I]; P != ~0u) {
      ChildNext1[I] = ChildHead[P];
      ChildHead[P] = I;
    }
    if (uint32_t P = ProvPar2[I]; P != ~0u && P != ProvPar1[I]) {
      ChildNext2[I] = ChildHead[P];
      ChildHead[P] = I;
    }
  }
  std::vector<uint8_t> InCone(OldE, 0);
  std::vector<uint32_t> Work;
  auto isSeed = [&](const EdgeProv &P) {
    return (P.Kind == EdgeProv::Rule::Surface ||
            P.Kind == EdgeProv::Rule::Projection) &&
           P.CIdx == Idx;
  };
  for (uint32_t I = 0; I != OldE; ++I)
    if (isSeed(EdgeProvs[I])) {
      InCone[I] = 1;
      Work.push_back(I);
    }
  while (!Work.empty()) {
    uint32_t P = Work.back();
    Work.pop_back();
    for (uint32_t C = ChildHead[P]; C != ~0u;
         C = ProvPar1[C] == P ? ChildNext1[C] : ChildNext2[C])
      if (!InCone[C]) {
        InCone[C] = 1;
        Work.push_back(C);
      }
  }
  uint32_t ConeCount = 0;
  for (uint32_t I = 0; I != OldE; ++I)
    ConeCount += InCone[I];

  // Step 2a: affected nodes, split by side. RemovedSrc[N] / RemovedDst[N]
  // hold "some removed fact had N as its source / destination" — the
  // direction matters because each re-derivation rule consumes its
  // premise on a known side (see Step 2b), and the one-sided sets keep
  // a retraction near a hub node from requeueing the hub's entire
  // unrelated neighborhood.
  std::vector<uint8_t> RemovedSrc(NodeKind.size(), 0);
  std::vector<uint8_t> RemovedDst(NodeKind.size(), 0);
  auto markRemoved = [&](ExprId Src, ExprId Dst) {
    if (Src < RemovedSrc.size())
      RemovedSrc[Src] = 1;
    if (Dst < RemovedDst.size())
      RemovedDst[Dst] = 1;
  };
  for (uint32_t I = 0; I != OldE; ++I)
    if (InCone[I])
      markRemoved(EdgeArena[I].Src, EdgeArena[I].Dst);

  // Conflicts resting on the cone (or asserted by the retracted
  // constraint itself) die with it; their endpoints count as affected
  // so surviving premises requeue and re-derive any conflict that is
  // still derivable.
  std::vector<uint8_t> ConflictGone(Conflicts.size(), 0);
  for (size_t I = 0; I != Conflicts.size(); ++I) {
    const EdgeProv &P = ConflictProvs[I];
    bool Gone = isSeed(P);
    if (!Gone && P.P1.Src != InvalidExpr) {
      uint32_t J = provEdgeIndex(P.P1);
      Gone = J != ~0u && InCone[J];
    }
    if (!Gone && P.P2.Src != InvalidExpr) {
      uint32_t J = provEdgeIndex(P.P2);
      Gone = J != ~0u && InCone[J];
    }
    if (!Gone)
      continue;
    ConflictGone[I] = 1;
    markRemoved(Conflicts[I].Src, Conflicts[I].Dst);
    EdgeSeen.erase(Conflicts[I].Src, Conflicts[I].Dst, Conflicts[I].Ann);
  }

  // Step 3 (watchers first: the frontier rules below must only see
  // surviving watchers): a retracted projection constraint takes its
  // watcher registrations with it.
  if (CS.expr(RC.Lhs).Kind == ExprKind::Proj)
    for (std::vector<Watcher> &WL : Watchers)
      WL.erase(std::remove_if(WL.begin(), WL.end(),
                              [&](const Watcher &W) {
                                return W.ConsIdx == Idx;
                              }),
               WL.end());

  // Function-variable constraints whose deriving decompose is in the
  // cone. The deriving edge of a fn-var fact is the first processed
  // constructor-constructor edge emitting its triple — recomputed
  // here (arena order is processing order on the provenance-pinned
  // sequential path) so it stays exact across snapshot round-trips.
  std::vector<uint8_t> FnGone(FnVarCons.size(), 0);
  FlatSet64 DroppedFnPairs;
  if (!FnVarCons.empty()) {
    std::map<std::array<uint32_t, 3>, uint32_t> FnIdx;
    for (uint32_t K = 0; K != FnVarCons.size(); ++K)
      FnIdx.emplace(std::array<uint32_t, 3>{FnVarCons[K].From,
                                            FnVarCons[K].Fn,
                                            FnVarCons[K].To},
                    K);
    for (uint32_t I = 0; I != OldE && !FnIdx.empty(); ++I) {
      const Edge &E = EdgeArena[I];
      if (NodeKind[E.Src] != KCons || NodeKind[E.Dst] != KCons)
        continue;
      const Expr &L = CS.expr(E.Src);
      const Expr &R = CS.expr(E.Dst);
      auto It = FnIdx.find({L.Alpha, E.Ann, R.Alpha});
      if (It == FnIdx.end())
        continue;
      if (InCone[I]) {
        FnGone[It->second] = 1;
        DroppedFnPairs.insert(
            (static_cast<uint64_t>(FnVarCons[It->second].From) << 32) |
            FnVarCons[It->second].To);
      }
      FnIdx.erase(It); // only the first derivation decides
    }
  }

  // Step 2b: frontier marking among survivors. Every removed fact that
  // is still derivable must be re-derivable by reprocessing some
  // frontier edge, and each rule pins which premise side suffices:
  //
  //  * Transitive: a removed U→W re-derivable as (U→V, V→W) only needs
  //    its *right* premise requeued — joins go through variable middle
  //    nodes, and process() on V→W scans the processed prefix of
  //    Preds[V], which holds every surviving left premise (two requeued
  //    premises meet by the usual later-edge-joins discipline). So the
  //    general rule is RemovedDst[E.Dst] alone; adding the src side
  //    would requeue hub out-neighborhoods for nothing.
  //  * Decompose / projection are single-premise: the premise edge is
  //    requeued iff some conclusion it would re-emit was removed,
  //    recognized by the conclusion's (src, dst) pair — a directional
  //    conjunction, not an either-endpoint test.
  //
  // Conflicts are conclusions of the same rules (insertFreshEdge turns
  // a constructor mismatch into a conflict instead of an edge), so the
  // markRemoved calls above cover their re-derivation too.
  std::vector<uint8_t> IsFrontier(OldE, 0);
  uint32_t FrontierCount = 0;
  for (uint32_t I = 0; I != OldE; ++I) {
    if (InCone[I])
      continue;
    const Edge &E = EdgeArena[I];
    uint8_t SK = NodeKind[E.Src];
    uint8_t DK = NodeKind[E.Dst];
    bool F = RemovedDst[E.Dst];
    if (!F && SK == KCons && DK == KCons) {
      // Alternative decompose: a removed argument edge or fn-var fact
      // this edge would re-derive.
      const Expr &L = CS.expr(E.Src);
      const Expr &R = CS.expr(E.Dst);
      for (size_t A = 0; !F && A != L.Args.size(); ++A) {
        ExprId SN = varNodeIfAny(rep(L.Args[A]));
        ExprId DN = varNodeIfAny(rep(R.Args[A]));
        F = SN != InvalidExpr && DN != InvalidExpr && RemovedSrc[SN] &&
            RemovedDst[DN];
      }
      if (!F && !DroppedFnPairs.empty())
        F = DroppedFnPairs.contains(
            (static_cast<uint64_t>(L.Alpha) << 32) | R.Alpha);
    }
    if (!F && SK == KCons && DK == KVar && E.Dst < Watchers.size() &&
        !Watchers[E.Dst].empty()) {
      // Alternative projection: a surviving watcher whose output from
      // this lower bound was removed.
      const Expr &SE = CS.expr(E.Src);
      for (const Watcher &W : Watchers[E.Dst]) {
        if (W.C != SE.C)
          continue;
        ExprId AN = varNodeIfAny(rep(SE.Args[W.Index]));
        ExprId TN = varNodeIfAny(rep(W.Target));
        if (AN != InvalidExpr && TN != InvalidExpr && RemovedSrc[AN] &&
            RemovedDst[TN]) {
          F = true;
          break;
        }
      }
    }
    if (F) {
      IsFrontier[I] = 1;
      ++FrontierCount;
    }
  }

  // Step 3: release the cone's dedup bits.
  for (uint32_t I = 0; I != OldE; ++I)
    if (InCone[I])
      EdgeSeen.erase(EdgeArena[I].Src, EdgeArena[I].Dst, EdgeArena[I].Ann);

  // Step 4: compaction. Conflicts first, then the arena — survivors
  // in derivation order, frontier moved to the pending tail.
  {
    size_t W = 0;
    for (size_t I = 0; I != Conflicts.size(); ++I) {
      if (ConflictGone[I])
        continue;
      Conflicts[W] = Conflicts[I];
      ConflictProvs[W] = ConflictProvs[I];
      ++W;
    }
    Conflicts.resize(W);
    ConflictProvs.resize(W);
  }
  {
    std::vector<Edge> NewArena;
    std::vector<EdgeProv> NewProvs;
    NewArena.reserve(OldE - ConeCount);
    NewProvs.reserve(OldE - ConeCount);
    for (int Pass = 0; Pass != 2; ++Pass)
      for (uint32_t I = 0; I != OldE; ++I) {
        if (InCone[I] || IsFrontier[I] != (Pass == 1))
          continue;
        NewArena.push_back(EdgeArena[I]);
        NewProvs.push_back(EdgeProvs[I]);
      }
    EdgeArena = std::move(NewArena);
    EdgeProvs = std::move(NewProvs);
    PendingHead = EdgeArena.size() - FrontierCount;
  }
  {
    size_t W = 0;
    for (size_t K = 0; K != FnVarCons.size(); ++K) {
      if (FnGone[K])
        continue;
      FnVarCons[W++] = FnVarCons[K];
    }
    FnVarCons.resize(W);
    Stats.FnVarConstraints = W;
    FnVarSeen =
        EdgeDedup(resolveDedupBackend(Options, CS.domain()),
                  CS.domain().size());
    for (const FnVarConstraint &C : FnVarCons)
      FnVarSeen.insert(C.From, C.To, C.Fn);
    EagerFnVarSol.clear();
    FnVarSolFresh = false;
  }
  Succs.clear();
  Preds.clear();
  for (const Edge &E : EdgeArena) {
    Succs.append(E.Src, E.Dst, E.Ann);
    Preds.append(E.Dst, E.Src, E.Ann);
  }
  std::fill(SuccDone.begin(), SuccDone.end(), 0);
  std::fill(PredDone.begin(), PredDone.end(), 0);
  for (size_t I = 0; I != PendingHead; ++I) {
    ++SuccDone[EdgeArena[I].Src];
    ++PredDone[EdgeArena[I].Dst];
  }
  rebuildProvIndex();

  // Step 5a: re-ingest surviving surface constraints. A constraint
  // whose surface triple was first claimed by a removed derivation
  // would otherwise lose its fact; re-adding is a dedup drop for the
  // (overwhelming) rest. Projection constraints are skipped — their
  // watchers survived above, and re-registering would double them.
  for (uint32_t J = 0; J != NumIngested; ++J) {
    if (CS.isRetracted(J))
      continue;
    const Constraint &C = CS.constraints()[J];
    ExprId L = canonicalize(C.Lhs);
    if (CS.expr(L).Kind == ExprKind::Proj)
      continue;
    ExprId R = canonicalize(C.Rhs);
    CurProv = {EdgeProv::Rule::Surface, J};
    addEdge(L, R, C.Ann);
  }

  Stats.RetractedEdges += ConeCount;
  Stats.RequeuedEdges += FrontierCount;
  if (trace::enabled())
    trace::instant("solver.retract", ConeCount, FrontierCount);

  // Step 5b: drain the frontier (plus any re-ingested edges) to the
  // post-retract fixpoint.
  return solve();
}

void BidirectionalSolver::resetToFresh() {
  const AnnotationDomain &D = CS.domain();
  Stats = SolverStats{};
  Stat = Status::Solved;
  NumIngested = 0;
  ForcedInterrupt.reset();
  EdgeProvs.clear();
  ConflictProvs.clear();
  CurProv = EdgeProv{};
  ProvPar1.clear();
  ProvPar2.clear();
  ProvPairIds = FlatMap64{};
  ProvTriples = FlatMap64{};
  NextProvPairId = 0;
  VarReps = UnionFind{};
  Succs = AdjacencyLists{};
  Preds = AdjacencyLists{};
  Watchers.clear();
  NodeKind.clear();
  SuccDone.clear();
  PredDone.clear();
  EdgeSeen = ShardedEdgeDedup(resolveDedupBackend(Options, D), D.size(),
                              resolveMergeShards(Options));
  EdgeArena.clear();
  PendingHead = 0;
  Conflicts.clear();
  FnVarCons.clear();
  FnVarSeen = EdgeDedup(resolveDedupBackend(Options, D), D.size());
  EagerFnVarSol.clear();
  FnVarSolFresh = false;
  VarNode.clear();
  PopsSinceCheckpoint = 0;
  LastCheckpointDiag.reset();
  Proof.reset();
  NeedProv = false;
  ProofDisabled = false;
  LastProofDiag.reset();
  // The thread pool and round scratch are state-free between rounds;
  // keeping them avoids re-spawning workers on a retry.
}

size_t BidirectionalSolver::memoryBytes() const {
  size_t N = EdgeArena.capacity() * sizeof(Edge) + Succs.memoryBytes() +
             Preds.memoryBytes() + EdgeSeen.memoryBytes() +
             FnVarSeen.memoryBytes() +
             Conflicts.capacity() * sizeof(SolvedEdge) +
             FnVarCons.capacity() * sizeof(FnVarConstraint) +
             NodeKind.capacity() +
             (SuccDone.capacity() + PredDone.capacity()) * sizeof(uint32_t) +
             VarNode.capacity() * sizeof(ExprId) +
             (EdgeProvs.capacity() + ConflictProvs.capacity()) *
                 sizeof(EdgeProv) +
             (ProvPar1.capacity() + ProvPar2.capacity()) *
                 sizeof(uint32_t) +
             ProvPairIds.memoryBytes() + ProvTriples.memoryBytes() +
             Watchers.capacity() * sizeof(std::vector<Watcher>) +
             (RoundSuccLimit.capacity() + RoundPredLimit.capacity()) *
                 sizeof(uint32_t) +
             RoundBufs.capacity() * sizeof(RoundBuf) +
             Shards.capacity() * sizeof(ShardScratch);
  for (const std::vector<Watcher> &W : Watchers)
    N += W.capacity() * sizeof(Watcher);
  for (const RoundBuf &B : RoundBufs) {
    N += B.Mail.capacity() * sizeof(std::vector<Edge>);
    for (const std::vector<Edge> &M : B.Mail)
      N += M.capacity() * sizeof(Edge);
  }
  for (const ShardScratch &Sh : Shards)
    N += Sh.Fresh.capacity() * sizeof(Edge);
  if (Proof)
    N += Proof->memoryBytes();
  return N;
}

std::vector<std::string>
BidirectionalSolver::conflictWitness(size_t I) const {
  std::vector<std::string> Out;
  // Provenance must have been tracked from the first solve(): the
  // records are parallel to the arena and the conflict list.
  if (I >= Conflicts.size() || ConflictProvs.size() != Conflicts.size() ||
      EdgeProvs.size() != EdgeArena.size())
    return Out;

  const AnnotationDomain &D = CS.domain();
  auto renderEdge = [&](const Edge &E) {
    return CS.exprToString(E.Src) + " <=[" + D.toString(E.Ann) + "] " +
           CS.exprToString(E.Dst);
  };
  auto renderCons = [&](uint32_t Idx) {
    const Constraint &C = CS.constraints()[Idx];
    return CS.exprToString(C.Lhs) + " <=[" + D.toString(C.Ann) + "] " +
           CS.exprToString(C.Rhs);
  };

  // Resolve premise triples against the arena (cold path; built per
  // query rather than carried on the hot insert path).
  using Triple = std::array<uint32_t, 3>;
  std::map<Triple, uint32_t> ByTriple;
  for (uint32_t J = 0, E = static_cast<uint32_t>(EdgeArena.size()); J != E;
       ++J) {
    const Edge &Ed = EdgeArena[J];
    ByTriple.emplace(Triple{Ed.Src, Ed.Dst, Ed.Ann}, J);
  }

  // Post-order walk of the derivation DAG: premises render before the
  // steps that use them, so the chain reads top-down from surface
  // constraints to the mismatch. Iterative — derivations can be as
  // deep as the arena.
  struct Frame {
    Edge E;
    const EdgeProv *P;
    bool Expanded;
  };
  std::set<Triple> Emitted;
  std::vector<Frame> Stack;
  const SolvedEdge &CE = Conflicts[I];
  Stack.push_back({Edge{CE.Src, CE.Dst, CE.Ann}, &ConflictProvs[I], false});

  while (!Stack.empty()) {
    if (!Stack.back().Expanded) {
      Stack.back().Expanded = true;
      const EdgeProv *P = Stack.back().P;
      // Push P2 first so P1's subtree renders first.
      for (const Edge *Prem : {&P->P2, &P->P1}) {
        if (Prem->Src == InvalidExpr)
          continue;
        Triple K{Prem->Src, Prem->Dst, Prem->Ann};
        if (Emitted.count(K))
          continue;
        auto It = ByTriple.find(K);
        if (It != ByTriple.end())
          Stack.push_back({*Prem, &EdgeProvs[It->second], false});
      }
      continue;
    }
    Frame Cur = Stack.back();
    Stack.pop_back();
    bool IsConflict = Stack.empty();
    if (!IsConflict &&
        !Emitted.insert(Triple{Cur.E.Src, Cur.E.Dst, Cur.E.Ann}).second)
      continue; // shared premise already rendered
    std::string Line;
    switch (Cur.P->Kind) {
    case EdgeProv::Rule::Surface:
      Line = "[surface #" + std::to_string(Cur.P->CIdx) + "] " +
             renderEdge(Cur.E);
      break;
    case EdgeProv::Rule::Transitive:
      Line = "[trans] " + renderEdge(Cur.E) + "  from  " +
             renderEdge(Cur.P->P1) + "  and  " + renderEdge(Cur.P->P2);
      break;
    case EdgeProv::Rule::Decompose:
      Line = "[decomp] " + renderEdge(Cur.E) + "  from  " +
             renderEdge(Cur.P->P1);
      break;
    case EdgeProv::Rule::Projection:
      Line = "[proj #" + std::to_string(Cur.P->CIdx) + " (" +
             renderCons(Cur.P->CIdx) + ")] " + renderEdge(Cur.E) +
             "  from  " + renderEdge(Cur.P->P1);
      break;
    }
    Out.push_back(std::move(Line));
    if (IsConflict)
      Out.push_back("[inconsistent] constructor mismatch: " +
                    renderEdge(Cur.E));
  }
  return Out;
}

Expected<std::vector<std::string>>
BidirectionalSolver::conflictWitnessEx(size_t I) const {
  if (ConflictProvs.size() != Conflicts.size() ||
      EdgeProvs.size() != EdgeArena.size())
    return Diag(
        "conflict witness unavailable: provenance was not recorded — "
        "enable SolverOptions::TrackProvenance before the first solve() "
        "(a snapshot saved without provenance cannot gain it on "
        "restore)");
  if (I >= Conflicts.size())
    return Diag("conflict witness: index " + std::to_string(I) +
                " out of range (have " + std::to_string(Conflicts.size()) +
                " conflicts)");
  return conflictWitness(I);
}

std::vector<std::pair<ExprId, AnnId>>
BidirectionalSolver::consLowerBounds(VarId V) const {
  std::vector<std::pair<ExprId, AnnId>> Out;
  ExprId Node = varNodeIfAny(rep(V));
  if (Node == InvalidExpr || Node >= Preds.numNodes())
    return Out;
  Preds.forEach(Node, [&](ExprId Src, AnnId Ann) {
    if (CS.expr(Src).Kind == ExprKind::Cons)
      Out.emplace_back(Src, Ann);
  });
  return Out;
}

std::vector<std::pair<ExprId, AnnId>>
BidirectionalSolver::consUpperBounds(VarId V) const {
  std::vector<std::pair<ExprId, AnnId>> Out;
  ExprId Node = varNodeIfAny(rep(V));
  if (Node == InvalidExpr || Node >= Succs.numNodes())
    return Out;
  Succs.forEach(Node, [&](ExprId Dst, AnnId Ann) {
    if (CS.expr(Dst).Kind == ExprKind::Cons)
      Out.emplace_back(Dst, Ann);
  });
  return Out;
}

std::vector<std::pair<VarId, AnnId>>
BidirectionalSolver::varSuccessors(VarId V) const {
  std::vector<std::pair<VarId, AnnId>> Out;
  ExprId Node = varNodeIfAny(rep(V));
  if (Node == InvalidExpr || Node >= Succs.numNodes())
    return Out;
  Succs.forEach(Node, [&](ExprId Dst, AnnId Ann) {
    const Expr &E = CS.expr(Dst);
    if (E.Kind == ExprKind::Var)
      Out.emplace_back(E.V, Ann);
  });
  return Out;
}

std::vector<AnnId>
BidirectionalSolver::constantAnnotations(ConsId C, VarId V) const {
  AnnSet Seen;
  for (auto [Src, Ann] : consLowerBounds(V)) {
    const Expr &E = CS.expr(Src);
    if (E.C == C && E.Args.empty())
      Seen.insert(Ann);
  }
  return Seen.takeMembers();
}

bool BidirectionalSolver::entailsConstant(ConsId C, VarId V) const {
  for (AnnId Ann : constantAnnotations(C, V))
    if (CS.domain().isAccepting(Ann))
      return true;
  return false;
}

std::vector<std::vector<AnnId>> BidirectionalSolver::fnVarLeastSolution(
    std::span<const std::pair<FnVarId, AnnId>> Seeds) const {
  uint32_t N = CS.numFnVars();
  std::vector<std::vector<AnnId>> Sol(N);
  FlatSet64 Seen;
  std::vector<std::pair<FnVarId, AnnId>> Work;
  size_t Head = 0;

  auto addFact = [&](FnVarId A, AnnId F) {
    if (A >= N)
      return;
    if (!Seen.insert((static_cast<uint64_t>(A) << 32) | F))
      return;
    Sol[A].push_back(F);
    Work.emplace_back(A, F);
  };

  for (auto [A, F] : Seeds)
    addFact(A, F);

  // Index triples by source variable.
  std::vector<std::vector<std::pair<AnnId, FnVarId>>> Index(N);
  for (const FnVarConstraint &C : FnVarCons)
    if (C.From < N)
      Index[C.From].emplace_back(C.Fn, C.To);

  const AnnotationDomain &D = CS.domain();
  while (Head != Work.size()) {
    auto [A, F] = Work[Head++];
    for (auto [Fn, To] : Index[A])
      addFact(To, D.compose(Fn, F));
  }
  for (std::vector<AnnId> &S : Sol)
    std::sort(S.begin(), S.end());
  return Sol;
}

const std::vector<std::vector<AnnId>> &
BidirectionalSolver::fnVarSolution() const {
  if (!FnVarSolFresh || EagerFnVarSol.size() != CS.numFnVars()) {
    std::vector<std::pair<FnVarId, AnnId>> Seeds;
    Seeds.reserve(CS.numFnVars());
    for (FnVarId A = 0, E = CS.numFnVars(); A != E; ++A)
      Seeds.emplace_back(A, CS.domain().identity());
    EagerFnVarSol = fnVarLeastSolution(Seeds);
    FnVarSolFresh = true;
  }
  return EagerFnVarSol;
}

void BidirectionalSolver::runEagerFnVars() { (void)fnVarSolution(); }

AtomReachability
BidirectionalSolver::atomReachability(ConsId Atom,
                                      bool AllowUnmatchedProjections) const {
  AtomReachability R;
  R.Solver = this;
  const AnnotationDomain &D = CS.domain();

  // Index: wrap steps. For each constructor lower bound ce ⊆^f Y with
  // ce = c(..., Xi, ...), an atom at Xi with class a occurs inside Y's
  // terms with class f ∘ a.
  struct WrapStep {
    VarId Outer;
    AnnId Fn;
    ConsId C;
  };
  std::unordered_map<VarId, std::vector<WrapStep>> WrapIdx;

  // Phase: false = "N" (unmatched projections still allowed), true =
  // "P" (under unmatched constructors). N steps precede P steps.
  std::vector<std::tuple<VarId, AnnId, bool>> Work;
  size_t Head = 0;
  FlatSet64 Seen;

  auto addFact = [&](VarId V, AnnId A, bool Phase,
                     AtomReachability::Provenance Prov) {
    uint64_t Key =
        (static_cast<uint64_t>(V) << 33) | (static_cast<uint64_t>(A) << 1) |
        (Phase ? 1 : 0);
    if (!Seen.insert(Key))
      return;
    uint64_t AnnKey = (static_cast<uint64_t>(V) << 32) | A;
    std::vector<AnnId> &Anns = R.Facts[V];
    if (std::find(Anns.begin(), Anns.end(), A) == Anns.end()) {
      Anns.push_back(A);
      R.Parents.emplace(AnnKey, Prov);
    }
    Work.emplace_back(V, A, Phase);
  };

  for (ExprId Node = 0; Node != Preds.numNodes(); ++Node) {
    const Expr &NE = CS.expr(Node);
    if (NE.Kind != ExprKind::Var)
      continue;
    Preds.forEach(Node, [&](ExprId Src, AnnId Ann) {
      const Expr &SE = CS.expr(Src);
      if (SE.Kind != ExprKind::Cons)
        return;
      if (SE.C == Atom && SE.Args.empty())
        addFact(NE.V, Ann, /*Phase=*/false, {});
      for (uint32_t I = 0; I != SE.Args.size(); ++I)
        WrapIdx[rep(SE.Args[I])].push_back({NE.V, Ann, SE.C});
    });
  }

  while (Head != Work.size()) {
    auto [V, A, Phase] = Work[Head++];

    // P steps: wrap under a constructor flowing somewhere.
    if (auto It = WrapIdx.find(V); It != WrapIdx.end()) {
      for (const WrapStep &W : It->second) {
        AnnId Wrapped = D.compose(W.Fn, A);
        if (Options.FilterUseless && D.isUseless(Wrapped))
          continue;
        addFact(W.Outer, Wrapped, /*Phase=*/true, {W.C, V, A});
      }
    }

    if (!AllowUnmatchedProjections || Phase)
      continue;

    // N steps (phase N only): follow a projection constraint whose
    // subject contains the atom's context unmatched, and then plain
    // variable flow from the landing spot (which the closure has not
    // pre-propagated, unlike the initial facts). V is a
    // representative, so the VarNode index applies.
    ExprId Node = varNodeIfAny(V);
    if (Node == InvalidExpr)
      continue;
    if (Node < Watchers.size()) {
      for (const Watcher &W : Watchers[Node]) {
        AnnId Out = D.compose(W.Ann, A);
        if (Options.FilterUseless && D.isUseless(Out))
          continue;
        addFact(rep(W.Target), Out, /*Phase=*/false, {});
      }
    }
    if (Node < Succs.numNodes()) {
      Succs.forEach(Node, [&, A = A](ExprId Dst, AnnId G) {
        const Expr &DE = CS.expr(Dst);
        if (DE.Kind != ExprKind::Var)
          return;
        AnnId Out = D.compose(G, A);
        if (Options.FilterUseless && D.isUseless(Out))
          return;
        addFact(DE.V, Out, /*Phase=*/false, {});
      });
    }
  }
  return R;
}

void BidirectionalSolver::enumerateTerms(VarId V, unsigned MaxDepth,
                                         size_t MaxCount,
                                         std::vector<VarId> &Visiting,
                                         std::vector<GroundTerm> &Out) const {
  V = rep(V);
  if (std::find(Visiting.begin(), Visiting.end(), V) != Visiting.end())
    return;
  Visiting.push_back(V);

  const AnnotationDomain &D = CS.domain();
  const std::vector<std::vector<AnnId>> &FnSol = fnVarSolution();
  // Root annotation classes of terms built by ce ⊆^F V: the edge
  // annotation composed with the constructor's own function-variable
  // solution (identity-seeded).
  auto rootAnns = [&](const Expr &SE, AnnId F) {
    AnnSet Roots;
    for (AnnId A : FnSol[SE.Alpha])
      Roots.insert(D.compose(F, A));
    return Roots.takeMembers();
  };

  for (auto [Src, F] : consLowerBounds(V)) {
    if (Out.size() >= MaxCount)
      break;
    const Expr &SE = CS.expr(Src);
    if (SE.Args.empty()) {
      for (AnnId Root : rootAnns(SE, F))
        Out.push_back(GroundTerm{SE.C, Root, {}});
      continue;
    }
    if (MaxDepth == 0)
      continue;
    // Enumerate each component, then take the capped product.
    std::vector<std::vector<GroundTerm>> KidChoices(SE.Args.size());
    bool AnyEmpty = false;
    for (size_t I = 0; I != SE.Args.size(); ++I) {
      enumerateTerms(SE.Args[I], MaxDepth - 1, MaxCount, Visiting,
                     KidChoices[I]);
      if (KidChoices[I].empty())
        AnyEmpty = true;
    }
    if (AnyEmpty)
      continue; // see Solver.h: bottom components are not materialized
    for (AnnId Root : rootAnns(SE, F)) {
      std::vector<size_t> Pick(SE.Args.size(), 0);
      while (Out.size() < MaxCount) {
        GroundTerm T{SE.C, Root, {}};
        for (size_t I = 0; I != Pick.size(); ++I)
          T.Kids.push_back(appendAnn(D, KidChoices[I][Pick[I]], F));
        Out.push_back(std::move(T));
        // Advance the mixed-radix counter.
        size_t I = 0;
        for (; I != Pick.size(); ++I) {
          if (++Pick[I] < KidChoices[I].size())
            break;
          Pick[I] = 0;
        }
        if (I == Pick.size())
          break;
      }
    }
  }
  Visiting.pop_back();
}

std::vector<GroundTerm>
BidirectionalSolver::groundTerms(VarId V, unsigned MaxDepth,
                                 size_t MaxCount) const {
  std::vector<GroundTerm> Out;
  std::vector<VarId> Visiting;
  enumerateTerms(V, MaxDepth, MaxCount, Visiting, Out);
  return Out;
}

bool BidirectionalSolver::exprIntersectsVar(
    ExprId E, VarId V,
    bool (*AcceptAnn)(const AnnotationDomain &, AnnId),
    unsigned MaxDepth, size_t MaxCount) const {
  const Expr &Ex = CS.expr(E);
  assert(Ex.Kind == ExprKind::Cons &&
         "the general query takes a constructor expression");
  const AnnotationDomain &D = CS.domain();
  for (auto [Src, F] : consLowerBounds(V)) {
    const Expr &SE = CS.expr(Src);
    if (SE.C != Ex.C)
      continue;
    if (AcceptAnn && !AcceptAnn(D, F))
      continue;
    // Each component of the bound must share terms with the query
    // expression's corresponding component variable.
    bool AllShare = true;
    for (size_t I = 0; I != Ex.Args.size() && AllShare; ++I)
      AllShare = solutionsIntersect(Ex.Args[I], SE.Args[I],
                                    MaxDepth > 0 ? MaxDepth - 1 : 0,
                                    MaxCount);
    if (AllShare)
      return true;
  }
  return false;
}

std::string BidirectionalSolver::toDot(std::string_view Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n  rankdir=LR;\n";
  const AnnotationDomain &D = CS.domain();
  for (ExprId Node = 0; Node != Succs.numNodes(); ++Node) {
    if (Succs.degree(Node) == 0 &&
        (Node >= Preds.numNodes() || Preds.degree(Node) == 0))
      continue;
    const Expr &E = CS.expr(Node);
    OS << "  n" << Node << " [label=\"" << CS.exprToString(Node)
       << "\", shape="
       << (E.Kind == ExprKind::Var ? "ellipse" : "box") << "];\n";
  }
  for (ExprId Node = 0; Node != Succs.numNodes(); ++Node) {
    Succs.forEach(Node, [&](ExprId Dst, AnnId Ann) {
      OS << "  n" << Node << " -> n" << Dst;
      if (Ann != D.identity())
        OS << " [label=\"" << D.toString(Ann) << "\"]";
      OS << ";\n";
    });
  }
  OS << "}\n";
  return OS.str();
}

bool BidirectionalSolver::solutionsIntersect(VarId A, VarId B,
                                             unsigned MaxDepth,
                                             size_t MaxCount) const {
  std::vector<GroundTerm> TA = groundTerms(A, MaxDepth, MaxCount);
  std::vector<GroundTerm> TB = groundTerms(B, MaxDepth, MaxCount);
  for (const GroundTerm &X : TA)
    for (const GroundTerm &Y : TB)
      if (sameSkeleton(X, Y))
        return true;
  return false;
}
