//===- core/GroundTerm.h - Annotated ground terms ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Annotated ground terms c^w(t1, ..., tn) from the M-annotated domain
/// T^{M^sub} (paper Section 2.3), with the annotation class stored as
/// a domain element. Used to materialize (finite fragments of) least
/// solutions, as witnesses for queries, and for the stack-aware alias
/// queries of Section 7.5, where solutions are intersected.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_GROUNDTERM_H
#define RASC_CORE_GROUNDTERM_H

#include "core/Annotation.h"
#include "core/ConstraintSystem.h"

#include <string>
#include <vector>

namespace rasc {

/// A ground term with one annotation class per constructor level.
struct GroundTerm {
  ConsId C;
  AnnId Ann;
  std::vector<GroundTerm> Kids;

  friend bool operator==(const GroundTerm &A, const GroundTerm &B) {
    return A.C == B.C && A.Ann == B.Ann && A.Kids == B.Kids;
  }
};

/// t . w: appends annotation class \p W at every level (the paper's
/// append operation on annotated terms).
GroundTerm appendAnn(const AnnotationDomain &D, GroundTerm T, AnnId W);

/// \returns true if the unannotated skeletons of A and B are equal
/// (constructors and arity, ignoring annotation classes). Alias
/// queries intersect solutions modulo annotations.
bool sameSkeleton(const GroundTerm &A, const GroundTerm &B);

/// Renders e.g. "o1^[0->1,1->1](pc^[...])".
std::string toString(const ConstraintSystem &CS, const GroundTerm &T);

} // namespace rasc

#endif // RASC_CORE_GROUNDTERM_H
