//===- core/ProofLog.cpp - Streaming derivation logs ------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/ProofLog.h"

#include "core/Domains.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace rasc;

namespace {

constexpr uint32_t HeaderTag = sectionTag("PRFH");
constexpr uint32_t RecordsTag = sectionTag("PRFC");
constexpr size_t FlushThreshold = 256u << 10;

// Domain kind bytes in the header chunk.
constexpr uint8_t DomTrivial = 0;
constexpr uint8_t DomMonoid = 1;
constexpr uint8_t DomGenKill = 2;

Diag errnoDiag(const std::string &What, const std::string &Path) {
  return Diag(What + " '" + Path + "': " + std::strerror(errno));
}

bool writeFull(int Fd, const uint8_t *Data, size_t Len) {
  while (Len != 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += static_cast<size_t>(N);
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

Expected<std::unique_ptr<ProofLogWriter>>
ProofLogWriter::open(std::string Path, const ConstraintSystem &CS,
                     bool FilterUseless, bool CycleElimination,
                     ProofSinks Sinks) {
  const AnnotationDomain &D = CS.domain();
  const auto *Mon = dynamic_cast<const MonoidDomain *>(&D);
  const auto *Gk = dynamic_cast<const GenKillDomain *>(&D);
  if (!Mon && !Gk && !dynamic_cast<const TrivialDomain *>(&D))
    return Diag("proof logging unsupported for this annotation domain "
                "(supported: trivial, monoid, gen/kill)");

  std::unique_ptr<ProofLogWriter> W(
      new ProofLogWriter(std::move(Path), CS, Sinks));
  W->MonDom = Mon;
  W->GkDom = Gk;

  W->Fd = ::open(W->LogPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (W->Fd < 0)
    return errnoDiag("proof log: cannot create", W->LogPath);

  // Header chunk: magic, version, semantic flags, and the annotation
  // domain's defining data, from which the checker evaluates the
  // algebra without trusting any interned table of ours.
  ByteWriter H;
  H.bytes("RASCPRF\0", 8);
  H.u32(Version);
  uint8_t Flags = 0;
  if (FilterUseless)
    Flags |= 1;
  if (CycleElimination)
    Flags |= 2;
  H.u8(Flags);
  if (Mon) {
    const Dfa &M = Mon->machine();
    H.u8(DomMonoid);
    H.u32(M.numStates());
    H.u32(M.start());
    H.u32(M.numSymbols());
    for (StateId S = 0; S < M.numStates(); ++S)
      H.u8(M.isAccepting(S) ? 1 : 0);
    for (SymbolId Sym = 0; Sym < M.numSymbols(); ++Sym) {
      const std::string &Name = M.symbolName(Sym);
      H.u32(static_cast<uint32_t>(Name.size()));
      H.bytes(Name.data(), Name.size());
    }
    for (StateId S = 0; S < M.numStates(); ++S)
      for (SymbolId Sym = 0; Sym < M.numSymbols(); ++Sym)
        H.u32(M.next(S, Sym));
  } else if (Gk) {
    H.u8(DomGenKill);
    H.u32(Gk->numBits());
  } else {
    H.u8(DomTrivial);
  }

  ByteWriter Frame;
  Frame.u32(HeaderTag);
  Frame.u64(H.size());
  Frame.u32(crc32(H.data().data(), H.size()));
  Frame.bytes(H.data().data(), H.size());
  if (!writeFull(W->Fd, Frame.data().data(), Frame.size()))
    return errnoDiag("proof log: write failed", W->LogPath);
  if (Sinks.Chunks)
    ++*Sinks.Chunks;
  if (Sinks.Bytes)
    *Sinks.Bytes += Frame.size();
  return W;
}

ProofLogWriter::ProofLogWriter(std::string Path, const ConstraintSystem &CS,
                               ProofSinks Sinks)
    : LogPath(std::move(Path)), CS(CS), Sinks(Sinks) {}

ProofLogWriter::~ProofLogWriter() {
  if (Fd >= 0)
    ::close(Fd);
}

size_t ProofLogWriter::memoryBytes() const {
  auto BitmapBytes = [](const std::vector<bool> &B) {
    return B.capacity() / 8;
  };
  return Buf.data().capacity() + BitmapBytes(AnnEmitted) +
         BitmapBytes(NodeEmitted) + BitmapBytes(CtorEmitted) +
         BitmapBytes(VarEmitted);
}

void ProofLogWriter::fail(Diag D) {
  if (Broken)
    return;
  Broken = true;
  FailDiag = std::move(D);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void ProofLogWriter::flushChunk(bool Fsync) {
  if (Broken)
    return;
  if (Buf.size() != 0) {
    ByteWriter Frame;
    Frame.u32(RecordsTag);
    Frame.u64(Buf.size());
    Frame.u32(crc32(Buf.data().data(), Buf.size()));
    Frame.bytes(Buf.data().data(), Buf.size());
    Buf = ByteWriter();
    if (failpoints::armedAny() &&
        failpoints::hit(failpoints::Point::TornWrite)) {
      // Simulate a crash that persisted only a prefix of the chunk:
      // write half the framed bytes, then report the failure. The
      // on-disk tail is torn exactly the way recoverProofLog() must
      // detect and truncate.
      (void)writeFull(Fd, Frame.data().data(), Frame.size() / 2);
      fail(Diag("proof log: injected torn write to '" + LogPath + "'"));
      return;
    }
    if (!writeFull(Fd, Frame.data().data(), Frame.size())) {
      fail(errnoDiag("proof log: write failed", LogPath));
      return;
    }
    if (Sinks.Chunks)
      ++*Sinks.Chunks;
    if (Sinks.Bytes)
      *Sinks.Bytes += Frame.size();
  }
  if (Fsync) {
    if (failpoints::armedAny() &&
        failpoints::hit(failpoints::Point::FsyncFail)) {
      fail(Diag("proof log: injected fsync failure on '" + LogPath + "'"));
      return;
    }
    if (::fsync(Fd) != 0)
      fail(errnoDiag("proof log: fsync failed", LogPath));
  }
}

void ProofLogWriter::beginRecord(uint8_t Type) {
  Buf.u8(Type);
  if (Sinks.Records)
    ++*Sinks.Records;
}

void ProofLogWriter::needAnn(AnnId A) {
  if (A < AnnEmitted.size() && AnnEmitted[A])
    return;
  if (A >= AnnEmitted.size())
    AnnEmitted.resize(A + 1, false);
  AnnEmitted[A] = true;
  beginRecord(RecAnn);
  Buf.u32(A);
  if (MonDom) {
    // The element's representative function as an explicit state
    // table; the checker recomputes composition from these tables,
    // never from our interned ids.
    for (StateId S = 0; S < MonDom->machine().numStates(); ++S)
      Buf.u32(MonDom->apply(A, S));
  } else if (GkDom) {
    Buf.u64(GkDom->genMask(A));
    Buf.u64(GkDom->killMask(A));
  }
}

void ProofLogWriter::needCtor(ConsId C) {
  if (C < CtorEmitted.size() && CtorEmitted[C])
    return;
  if (C >= CtorEmitted.size())
    CtorEmitted.resize(C + 1, false);
  CtorEmitted[C] = true;
  const Constructor &K = CS.constructor(C);
  beginRecord(RecCtor);
  Buf.u32(C);
  Buf.u32(K.Arity);
  Buf.u32(static_cast<uint32_t>(K.Name.size()));
  Buf.bytes(K.Name.data(), K.Name.size());
}

void ProofLogWriter::needVar(VarId V) {
  if (V < VarEmitted.size() && VarEmitted[V])
    return;
  if (V >= VarEmitted.size())
    VarEmitted.resize(V + 1, false);
  VarEmitted[V] = true;
  const std::string &Name = CS.varName(V);
  beginRecord(RecVarName);
  Buf.u32(V);
  Buf.u32(static_cast<uint32_t>(Name.size()));
  Buf.bytes(Name.data(), Name.size());
}

void ProofLogWriter::needNode(ExprId E) {
  if (E == InvalidExpr)
    return;
  if (E < NodeEmitted.size() && NodeEmitted[E])
    return;
  if (E >= NodeEmitted.size())
    NodeEmitted.resize(E + 1, false);
  NodeEmitted[E] = true;
  const Expr &X = CS.expr(E);
  switch (X.Kind) {
  case ExprKind::Var:
    needVar(X.V);
    break;
  case ExprKind::Cons:
    needCtor(X.C);
    for (VarId A : X.Args)
      needVar(A);
    break;
  case ExprKind::Proj:
    needCtor(X.C);
    needVar(X.V);
    break;
  }
  beginRecord(RecNode);
  Buf.u32(E);
  Buf.u8(static_cast<uint8_t>(X.Kind));
  switch (X.Kind) {
  case ExprKind::Var:
    Buf.u32(X.V);
    break;
  case ExprKind::Cons:
    Buf.u32(X.C);
    Buf.u32(X.Alpha);
    Buf.u32(static_cast<uint32_t>(X.Args.size()));
    for (VarId A : X.Args)
      Buf.u32(A);
    break;
  case ExprKind::Proj:
    Buf.u32(X.C);
    Buf.u32(X.Index);
    Buf.u32(X.V);
    break;
  }
}

void ProofLogWriter::premise(ByteWriter &W, const ProofPremise &P) {
  W.u32(P.Src);
  W.u32(P.Dst);
  W.u32(P.Ann);
}

void ProofLogWriter::collapse(VarId V, VarId Rep) {
  if (Broken)
    return;
  needVar(V);
  needVar(Rep);
  beginRecord(RecCollapse);
  Buf.u32(V);
  Buf.u32(Rep);
  if (Buf.size() >= FlushThreshold)
    flushChunk(false);
}

void ProofLogWriter::constraint(uint32_t Idx, const Constraint &Orig,
                                ExprId CanL, ExprId CanR) {
  if (Broken)
    return;
  needNode(Orig.Lhs);
  needNode(Orig.Rhs);
  needNode(CanL);
  needNode(CanR);
  needAnn(Orig.Ann);
  beginRecord(RecConstraint);
  Buf.u32(Idx);
  Buf.u32(Orig.Lhs);
  Buf.u32(Orig.Rhs);
  Buf.u32(CanL);
  Buf.u32(CanR);
  Buf.u32(Orig.Ann);
  if (Buf.size() >= FlushThreshold)
    flushChunk(false);
}

void ProofLogWriter::edge(ExprId Src, ExprId Dst, AnnId Ann, Rule R,
                          uint32_t CIdx, const ProofPremise &P1,
                          const ProofPremise &P2) {
  if (Broken)
    return;
  needNode(Src);
  needNode(Dst);
  needAnn(Ann);
  beginRecord(RecEdge);
  Buf.u32(Src);
  Buf.u32(Dst);
  Buf.u32(Ann);
  Buf.u8(static_cast<uint8_t>(R));
  Buf.u32(CIdx);
  premise(Buf, P1);
  premise(Buf, P2);
  if (Buf.size() >= FlushThreshold)
    flushChunk(false);
}

void ProofLogWriter::conflict(ExprId Src, ExprId Dst, AnnId Ann, Rule R,
                              uint32_t CIdx, const ProofPremise &P1,
                              const ProofPremise &P2) {
  if (Broken)
    return;
  needNode(Src);
  needNode(Dst);
  needAnn(Ann);
  beginRecord(RecConflict);
  Buf.u32(Src);
  Buf.u32(Dst);
  Buf.u32(Ann);
  Buf.u8(static_cast<uint8_t>(R));
  Buf.u32(CIdx);
  premise(Buf, P1);
  premise(Buf, P2);
  if (Buf.size() >= FlushThreshold)
    flushChunk(false);
}

void ProofLogWriter::fnvar(FnVarId From, AnnId Fn, FnVarId To,
                           const ProofPremise &Justifying) {
  if (Broken)
    return;
  needAnn(Fn);
  beginRecord(RecFnVar);
  Buf.u32(From);
  Buf.u32(Fn);
  Buf.u32(To);
  premise(Buf, Justifying);
  if (Buf.size() >= FlushThreshold)
    flushChunk(false);
}

void ProofLogWriter::finish(StatusCode Code, uint64_t ProcessedEdges,
                            uint64_t IngestedConstraints) {
  if (Broken)
    return;
  beginRecord(RecStatus);
  Buf.u8(static_cast<uint8_t>(Code));
  Buf.u64(ProcessedEdges);
  Buf.u64(IngestedConstraints);
  flushChunk(/*Fsync=*/true);
}

Expected<uint64_t> rasc::recoverProofLog(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDWR);
  if (Fd < 0)
    return errnoDiag("proof log: cannot open", Path);

  // Scan chunk frames; Good tracks the end of the last chunk whose
  // frame fields are sane and whose payload matches its CRC.
  uint64_t Good = 0;
  uint64_t Pos = 0;
  std::vector<uint8_t> Payload;
  for (;;) {
    if (failpoints::armedAny() &&
        failpoints::hit(failpoints::Point::ShortRead))
      // Simulate a read that comes up short mid-scan: everything from
      // here on is treated as a torn tail and truncated away, which is
      // always safe (the log merely proves less).
      break;
    uint8_t Hdr[16];
    ssize_t N = ::pread(Fd, Hdr, sizeof Hdr, static_cast<off_t>(Pos));
    if (N < 0) {
      ::close(Fd);
      return errnoDiag("proof log: read failed", Path);
    }
    if (static_cast<size_t>(N) < sizeof Hdr)
      break;
    ByteReader R(Hdr, sizeof Hdr);
    uint32_t Tag = R.u32();
    uint64_t Len = R.u64();
    uint32_t Crc = R.u32();
    if ((Tag != HeaderTag && Tag != RecordsTag) || Len > (1u << 30))
      break;
    Payload.resize(Len);
    N = ::pread(Fd, Payload.data(), Len, static_cast<off_t>(Pos + 16));
    if (N < 0) {
      ::close(Fd);
      return errnoDiag("proof log: read failed", Path);
    }
    if (static_cast<uint64_t>(N) < Len ||
        crc32(Payload.data(), Len) != Crc)
      break;
    Pos += 16 + Len;
    Good = Pos;
  }

  std::optional<Diag> Err;
  struct stat St;
  if (::fstat(Fd, &St) != 0 ||
      (static_cast<uint64_t>(St.st_size) != Good &&
       ::ftruncate(Fd, static_cast<off_t>(Good)) != 0))
    Err = errnoDiag("proof log: truncate failed", Path);
  else if (::fsync(Fd) != 0)
    Err = errnoDiag("proof log: fsync failed", Path);
  ::close(Fd);
  if (Err)
    return *Err;
  return Good;
}
