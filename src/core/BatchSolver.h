//===- core/BatchSolver.h - Pooled solving of independent systems -*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every RASC application solves *many independent* constraint
/// systems per run — one per spec/entry pair in the pushdown checker
/// (Section 6), one per function in the bit-vector baseline
/// (Section 3), one per SCC in the flow analysis (Section 7). The
/// batch solver runs them concurrently on a work-stealing pool under
/// *shared* governance: one wall-clock deadline for the whole batch,
/// one aggregate memory budget across all tasks, and one cancel flag
/// fanned out to a per-task flag each solver polls.
///
/// Interrupted tasks stay resumable: a task that hits the batch
/// deadline (or never started before it expired) keeps its worklist
/// tail, and a later solveAll() with a fresh budget continues each
/// one to the same fixpoint a dedicated solve would reach.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_BATCHSOLVER_H
#define RASC_CORE_BATCHSOLVER_H

#include "core/Solver.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace rasc {

class ThreadPool;

/// Solves batches of independent BidirectionalSolvers on a shared
/// pool. One BatchSolver owns one pool and one aggregate-memory cell;
/// reuse the same instance for repeated solveAll() calls over the
/// same solvers (e.g. resuming after an interrupt) so the memory
/// accounting deltas stay on one cell.
class BatchSolver {
public:
  struct Options {
    /// Pool width; 0 = one thread per hardware thread.
    unsigned Threads = 0;

    /// Shared wall-clock budget for one solveAll() call, measured
    /// from its entry; 0 = none. Each task gets the time remaining
    /// when it starts; tasks still queued at expiry are returned as
    /// Status::Deadline without solving (resumable). A task's own
    /// DeadlineSeconds, if set, still applies (the smaller wins).
    double DeadlineSeconds = 0;

    /// Aggregate budget on solver-owned memory summed across all
    /// tasks of this BatchSolver; 0 = unlimited. Enforced through
    /// SolverOptions::GroupMemory at each task's governance cadence;
    /// tasks over budget interrupt with Status::MemoryLimit.
    uint64_t MaxTotalMemoryBytes = 0;

    /// External cancellation: when non-null and set, every running
    /// task is cancelled (Status::Cancelled, resumable). Fanned out
    /// to per-task flags by the supervisor, so the pointee only needs
    /// to outlive solveAll(). Only with an external flag does
    /// solveAll() poll at all; cancelAll() alone wakes tasks through
    /// their flags directly and solveAll() blocks on the pool.
    const std::atomic<bool> *CancelFlag = nullptr;

    /// Per-task durability (core/Snapshot.cpp): when non-empty, task I
    /// checkpoints to "<CheckpointDir>/task-<I>.rsnap" — periodically
    /// every CheckpointEveryPops worklist pops (0 = only each task's
    /// final save) and always at the end of its solve, complete or
    /// interrupted. At the start of solveAll(), any still-unstarted
    /// task whose snapshot exists is restored from it first, so a
    /// batch killed mid-run resumes finished tasks instantly and
    /// re-runs only the crashed ones; a corrupt or mismatched snapshot
    /// is ignored (that task re-solves from scratch). The directory
    /// must exist.
    std::string CheckpointDir;
    uint64_t CheckpointEveryPops = 0;
  };

  /// Per-task outcome of one solveAll() call.
  struct Result {
    BidirectionalSolver::Status St = BidirectionalSolver::Status::Solved;
    double Seconds = 0; ///< wall-clock spent solving this task
  };

  BatchSolver() : BatchSolver(Options{}) {}
  explicit BatchSolver(Options Opts);
  ~BatchSolver();
  BatchSolver(const BatchSolver &) = delete;
  BatchSolver &operator=(const BatchSolver &) = delete;

  /// Solves every system concurrently and returns per-task results in
  /// input order. Each solver's options are overridden with the batch
  /// governance for the duration of the call and restored afterwards
  /// (so no pointer into this BatchSolver outlives the call inside a
  /// solver's options). Solvers must be distinct objects; their
  /// constraint systems must also be distinct — two solvers sharing
  /// one ConstraintSystem would race on its interning tables.
  std::vector<Result>
  solveAll(std::span<BidirectionalSolver *const> Solvers);

  /// Requests cancellation of the in-flight solveAll() from another
  /// thread; running tasks interrupt with Status::Cancelled. Writes
  /// the per-task flags directly (no supervisor round-trip), so it
  /// takes effect at each task's next governance check even while
  /// solveAll() blocks on the pool. A call with no solveAll() in
  /// flight is a no-op.
  void cancelAll();

  /// Field-wise sum of stats() over the solvers of the last
  /// solveAll() call (each solver's stats are cumulative over its own
  /// lifetime, so the merge is too).
  const SolverStats &mergedStats() const { return Merged; }

  unsigned numThreads() const;

private:
  Options Opts;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<uint64_t> GroupMemory{0};
  SolverStats Merged;

  // The in-flight call's per-task cancel flags, registered by
  // solveAll() and written by cancelAll() under the mutex. Empty when
  // no call is in flight.
  std::mutex FanMx;
  std::vector<std::atomic<bool> *> LiveTaskFlags;
};

} // namespace rasc

#endif // RASC_CORE_BATCHSOLVER_H
