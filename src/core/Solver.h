//===- core/Solver.h - Bidirectional annotated solver -----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bidirectional constraint resolution algorithm of paper
/// Section 3: a worklist transitive closure over the constraint graph
/// that composes annotations through the domain's (table-backed)
/// composition, with the three resolution rules
///
///   c^a(X1..Xn) ⊆^f c^b(Y1..Yn)  =>  /\ Xi ⊆^f Yi  and  f∘a ⊆ b
///   c^a(...)    ⊆^f d^b(...)     =>  inconsistent (c != d)
///   c^a(..Xi..) ⊆^f Y, c^-i(Y) ⊆^g Z  =>  Xi ⊆^{g∘f} Z
///   se1 ⊆^f X,  X ⊆^g se2        =>  se1 ⊆^{g∘f} se2
///
/// (The projection rule is the paper's rule generalized to annotated
/// premises; with epsilon annotations it is literally the paper's.)
/// The solver is online: constraints appended to the system after a
/// solve() are picked up by the next solve().
///
/// Queries (Section 3.2) are answered on the solved form: entailment
/// of annotated constants, function-variable least solutions under
/// query seeds, least-solution ground term enumeration, and the
/// PN-reachability atom queries used by pushdown model checking
/// (Section 6.2), with witnesses.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_SOLVER_H
#define RASC_CORE_SOLVER_H

#include "core/ConstraintSystem.h"
#include "core/GroundTerm.h"
#include "support/Adjacency.h"
#include "support/AnnSet.h"
#include "support/FlatSet.h"
#include "support/Trace.h"
#include "support/UnionFind.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace rasc {

class ProofLogWriter;
class ThreadPool;

/// Tuning knobs; the defaults match the paper's implementation notes.
/// The resource-governance fields (MaxEdges, MaxComposeSteps,
/// DeadlineSeconds, MaxMemoryBytes, CancelFlag) bound a solve against
/// the superexponential bidirectional worst case (Section 4); all of
/// them interrupt the closure in a *resumable* state — see the Status
/// contract on BidirectionalSolver.
struct SolverOptions {
  /// Drop edges whose annotation can never extend to an accepting
  /// word (Section 3.1). Ablation: Figure 2-style machines explode
  /// without it on constraint systems with dead compositions.
  bool FilterUseless = true;

  /// Collapse cycles of identity-annotated variable-variable surface
  /// constraints before solving (an offline variant of partial online
  /// cycle elimination [Fähndrich et al.]; only identity cycles are
  /// sound to collapse in the annotated setting).
  bool CycleElimination = true;

  /// Maintain the function-variable least solution (seeded with the
  /// identity everywhere) during solving instead of reconstructing it
  /// at query time. The paper's implementation omits the eager work
  /// (Section 8); both modes answer queries identically.
  bool EagerFunctionVars = false;

  /// Cap on inserted edges; 0 = unlimited. Reaching it interrupts the
  /// closure with Status::EdgeLimit (protects the superexponential
  /// bidirectional worst case, Section 4). The interrupt is
  /// *resumable*: raise the cap via options() and call solve() again
  /// to continue from where the closure stopped. The cap is checked
  /// between worklist pops, so the count may overshoot by the fan-out
  /// of the edge being processed when it trips.
  uint64_t MaxEdges = uint64_t(1) << 24;

  /// Budget on logical compositions (SolverStats::ComposeCalls);
  /// 0 = unlimited. Reaching it interrupts with Status::StepLimit
  /// (resumable). Compose steps are a machine-independent measure of
  /// closure work, useful for fair per-request budgets.
  uint64_t MaxComposeSteps = 0;

  /// Wall-clock budget for one solve() call, measured from its entry;
  /// 0 = none. Expiring interrupts with Status::Deadline (resumable).
  /// Checked every GovernanceCheckInterval worklist pops, so the
  /// precision is one check interval's worth of closure work.
  double DeadlineSeconds = 0;

  /// Approximate budget on solver-owned heap memory (edge arena,
  /// adjacency chunks, dedup tables, fn-var store — see
  /// memoryBytes()); 0 = unlimited. Exceeding it interrupts with
  /// Status::MemoryLimit (resumable). Approximate: container
  /// capacities, sampled at the governance cadence.
  uint64_t MaxMemoryBytes = 0;

  /// Cooperative cancellation token: when non-null and set, the
  /// closure interrupts with Status::Cancelled (resumable after the
  /// flag is cleared). The flag is read with relaxed ordering at the
  /// governance cadence; the pointee must outlive every solve() call.
  const std::atomic<bool> *CancelFlag = nullptr;

  /// Worker threads for the frontier-parallel closure (DESIGN.md §8):
  /// 1 (the default) runs the sequential algorithm, bit-for-bit the
  /// single-threaded code path; 0 means one thread per hardware
  /// thread. With more than one thread the closure runs in
  /// bulk-synchronous rounds — the pending frontier is partitioned
  /// across workers that compute 2-path joins into per-shard
  /// mailboxes, shard owners merge their own destinations through
  /// striped dedup segments concurrently (see MergeShards), and a
  /// small sequential epilogue handles the cross-shard effects —
  /// reaching the identical fixpoint (the closure is confluent;
  /// differentially tested). TrackProvenance records arena order, so
  /// it forces the sequential path regardless.
  unsigned Threads = 1;

  /// Minimum frontier size for a parallel round; smaller frontiers
  /// drain through the sequential per-edge path (partitioning a
  /// handful of edges costs more than it saves). Tests set 1 to force
  /// rounds on tiny systems.
  uint32_t ParallelFrontierThreshold = 128;

  /// Shard count for the owner-partitioned parallel merge (DESIGN.md
  /// §8): the edge-dedup table is striped into this many independent
  /// segments routed by destination node id, and each round's merge
  /// runs one owner per shard concurrently — the authoritative dedup
  /// insertion stops being a sequential bottleneck. 0 (the default)
  /// resolves to the thread count. Resolved at solver construction
  /// like the dedup backend; changing it afterwards has no effect.
  /// Purely a layout/scheduling knob: fixpoint, stats, and snapshot
  /// format are shard-count independent (differentially tested), so
  /// any value is sound, including with Threads == 1.
  unsigned MergeShards = 0;

  /// Relaxed-stats parallel mode: skip the sequential per-edge
  /// processed-prefix limits sweep and let round workers scan the
  /// full current adjacency degrees instead (stable during the
  /// read-only compute phase). Every join the exact schedule performs
  /// is contained in the relaxed scans, and extra attempts are
  /// absorbed by the dedup filter, so the *fixpoint* stays
  /// bit-identical to the sequential one — certified by
  /// core/Certifier.h in the differential tests — and interrupts stay
  /// resumable (the processed-prefix counters still advance exactly
  /// once per edge). Only the work accounting is allowed to drift:
  /// ComposeCalls and EdgesDropped may exceed the sequential totals.
  /// Ignored on the sequential path (Threads == 1).
  bool RelaxedParallelStats = false;

  /// Aggregate memory accounting across a batch of solvers (see
  /// core/BatchSolver.h): when non-null, every governance check
  /// publishes this solver's memoryBytes() delta into the shared cell
  /// (relaxed fetch_add; unsigned wrap-around absorbs shrinkage), and
  /// a non-zero MaxGroupMemoryBytes interrupts with
  /// Status::MemoryLimit once the cell's total exceeds it. The cell
  /// must outlive every solve() call. Per-solver MaxMemoryBytes still
  /// applies independently.
  std::atomic<uint64_t> *GroupMemory = nullptr;
  uint64_t MaxGroupMemoryBytes = 0;

  /// Worklist pops between the "slow" governance checks (deadline,
  /// cancellation, memory, failpoints). Edge and compose budgets are
  /// cheap integer compares and are checked every pop. The default
  /// keeps governance overhead under 2% of closure time (see
  /// EXPERIMENTS.md) while bounding interrupt latency.
  uint32_t GovernanceCheckInterval = 256;

  /// Periodic checkpointing: when CheckpointPath is non-empty, the
  /// closure saves a crash-consistent snapshot (core/Snapshot.cpp) to
  /// that path every CheckpointEveryPops worklist pops (0 = only the
  /// final save at the end of each solve() call, covering both
  /// completion and interrupts). Saves happen at the same between-pops
  /// boundaries as governance, so every snapshot is a resumable state;
  /// BidirectionalSolver::Create(path, system) restores one and
  /// resumes to the bit-identical fixpoint. A failed save never
  /// interrupts the solve — it is recorded in lastCheckpointDiag()
  /// and the solve continues (durability degrades, correctness
  /// doesn't).
  uint64_t CheckpointEveryPops = 0;
  std::string CheckpointPath;

  /// Machine-checkable proof logging (core/ProofLog.h, DESIGN.md §12):
  /// when non-empty, every solve() streams a derivation log to this
  /// path — one record per inserted edge naming its closure-rule
  /// premises — which the standalone rasccheck tool can verify
  /// without trusting solver code. Setting the path on an unstarted
  /// solver logs live; setting it on a started, quiescent solver with
  /// TrackProvenance replays the existing derivations from provenance
  /// first. An emission failure (disk full, injected fault) never
  /// interrupts the solve: the log is abandoned with a final
  /// "unproven" trailer and the Diag lands in lastProofDiag().
  /// retract() likewise abandons the log (a compaction reorders the
  /// arena, invalidating the emitted premise order) and clears this
  /// path; re-set it to rebuild a fresh proof from the post-retract
  /// state. Proof logging pins the sequential closure path, like
  /// TrackProvenance.
  std::string ProofLogPath;

  /// Record the provenance of every derived edge (which rule, from
  /// which premises) so that conflictWitness() can explain a
  /// Status::Inconsistent result as a chain of surface constraints
  /// and resolution steps. Costs memory per edge and time per fresh
  /// insert; off by default.
  bool TrackProvenance = false;

  /// Maintain the retraction indexes during solving — the premise
  /// parent links of every derived edge plus the (src, dst, ann) →
  /// arena map they are resolved through — so that retract() can
  /// compute a derivation cone without replaying the closure (DESIGN.md
  /// §11). Requires TrackProvenance (the parent links compress the
  /// premise records it keeps); retract() rejects solvers missing
  /// either flag. Costs two hash-map operations per fresh edge; off by
  /// default.
  bool Incremental = false;

  /// Edge-dedup data layout (DESIGN.md "Solver data layout"). Bitset
  /// keeps one annotation bitset per (src, dst) node pair — dedup is
  /// a test-and-set, ideal while annotation ids are dense and small.
  /// FlatSet keeps one open-addressed set of packed (src, ann) keys
  /// per destination — bounded memory per present edge when the
  /// domain is large or grows without bound.
  enum class DedupBackend : uint8_t { Auto, Bitset, FlatSet };
  DedupBackend Dedup = DedupBackend::Auto;

  /// Auto picks Bitset when domain().size() at solver construction is
  /// at most this, FlatSet otherwise. (A domain that interns past the
  /// threshold mid-solve stays on its chosen backend; the bitset rows
  /// widen on demand.)
  uint32_t AnnBitsetThreshold = 256;
};

/// Counters for the complexity experiments. ComposeCalls counts
/// logical compositions (including those served by a hoisted dense
/// row rather than an AnnotationDomain::compose call).
struct SolverStats {
  uint64_t EdgesInserted = 0;
  uint64_t EdgesDropped = 0; // duplicate edges
  uint64_t UselessFiltered = 0;
  uint64_t ComposeCalls = 0;
  uint64_t DecomposeSteps = 0;
  uint64_t ProjectionSteps = 0;
  uint64_t FnVarConstraints = 0;
  uint64_t CollapsedVars = 0;

  // Resource-governance counters.
  uint64_t BudgetChecks = 0; ///< slow governance checks performed
  uint64_t Interrupts = 0;   ///< solves ended by a budget/cancel/failpoint
  uint64_t Resumes = 0;      ///< solves that continued an interrupted closure

  // Parallel-closure counters (zero on the sequential path).
  uint64_t ParallelRounds = 0; ///< bulk-synchronous frontier rounds run

  // Durability counters.
  uint64_t CheckpointsSaved = 0; ///< snapshots committed to disk

  // Proof-logging counters (SolverOptions::ProofLogPath). Cumulative
  // across writer rebuilds; ProofFailures counts logs abandoned to an
  // I/O failure, an unsupported state, or a retraction.
  uint64_t ProofRecords = 0;  ///< derivation records emitted
  uint64_t ProofChunks = 0;   ///< CRC-framed chunks written
  uint64_t ProofBytes = 0;    ///< log bytes written
  uint64_t ProofFailures = 0; ///< proof logs abandoned

  // Incremental re-solve counters (SolverOptions::Incremental).
  uint64_t Retractions = 0;    ///< validated retract() calls
  uint64_t RetractedEdges = 0; ///< derivation-cone edges removed
  uint64_t RequeuedEdges = 0;  ///< surviving edges requeued for re-closure

  // Wall-clock phase timings, accumulated across solve() calls.
  double IngestSeconds = 0;  ///< canonicalization + surface ingest
  double ClosureSeconds = 0; ///< worklist transitive/projection closure
  double FnVarSeconds = 0;   ///< eager function-variable propagation

  /// Field-wise merge, for aggregating per-solver stats across a
  /// batch (core/BatchSolver.h). Every counter and timing is a plain
  /// sum — each solver owns its stats object, so merging after the
  /// solves is race-free by construction.
  SolverStats &operator+=(const SolverStats &O) {
    EdgesInserted += O.EdgesInserted;
    EdgesDropped += O.EdgesDropped;
    UselessFiltered += O.UselessFiltered;
    ComposeCalls += O.ComposeCalls;
    DecomposeSteps += O.DecomposeSteps;
    ProjectionSteps += O.ProjectionSteps;
    FnVarConstraints += O.FnVarConstraints;
    CollapsedVars += O.CollapsedVars;
    BudgetChecks += O.BudgetChecks;
    Interrupts += O.Interrupts;
    Resumes += O.Resumes;
    ParallelRounds += O.ParallelRounds;
    CheckpointsSaved += O.CheckpointsSaved;
    ProofRecords += O.ProofRecords;
    ProofChunks += O.ProofChunks;
    ProofBytes += O.ProofBytes;
    ProofFailures += O.ProofFailures;
    Retractions += O.Retractions;
    RetractedEdges += O.RetractedEdges;
    RequeuedEdges += O.RequeuedEdges;
    IngestSeconds += O.IngestSeconds;
    ClosureSeconds += O.ClosureSeconds;
    FnVarSeconds += O.FnVarSeconds;
    return *this;
  }
};

/// A derived inclusion edge src ⊆^Ann dst between expression nodes.
struct SolvedEdge {
  ExprId Src;
  ExprId Dst;
  AnnId Ann;
};

/// A function-variable constraint f ∘ From ⊆ To produced by the
/// structural rule.
struct FnVarConstraint {
  FnVarId From;
  AnnId Fn;
  FnVarId To;
};

class BidirectionalSolver;

/// Result of PN-reachability atom queries: for each variable, the set
/// of annotation classes with which the queried constant occurs
/// (possibly nested under unmatched constructors) in the variable's
/// least solution. See Section 6.2.
class AtomReachability {
public:
  /// Annotation classes of the atom at \p V (empty if none). \p V may
  /// be any variable; cycle-collapsed representatives are resolved.
  const std::vector<AnnId> &annotations(VarId V) const;

  /// The unmatched-constructor context ("stack") under which the atom
  /// occurs at \p V with annotation \p Ann: outermost first. Empty for
  /// top-level occurrences.
  std::vector<ConsId> witnessStack(VarId V, AnnId Ann) const;

private:
  friend class BidirectionalSolver;
  struct Provenance {
    // Wrap step: the atom at InnerVar with InnerAnn was wrapped by
    // constructor C. InnerVar == InvalidVar marks an initial fact.
    ConsId C = 0;
    VarId InnerVar = InvalidVar;
    AnnId InnerAnn = InvalidAnn;
  };
  const BidirectionalSolver *Solver = nullptr;
  std::unordered_map<VarId, std::vector<AnnId>> Facts;
  std::unordered_map<uint64_t, Provenance> Parents; // (var, ann) packed
};

/// Online bidirectional solver over one constraint system.
class BidirectionalSolver {
public:
  /// The solve() status lattice. Solved and Inconsistent describe a
  /// *complete* closure; the remaining values are interrupts: the
  /// closure stopped early with its worklist tail preserved, and a
  /// later solve() — typically after raising the corresponding budget
  /// via options(), clearing the cancel flag, or just retrying —
  /// continues from exactly where it stopped and reaches the same
  /// fixpoint as an uninterrupted run. Queries on an interrupted
  /// solver see the (sound but incomplete) bounds derived so far.
  enum class Status {
    Solved,       ///< closure complete, no inconsistency found
    Inconsistent, ///< a constructor-mismatch constraint was derived
    EdgeLimit,    ///< Options.MaxEdges reached; resumable
    StepLimit,    ///< Options.MaxComposeSteps reached; resumable
    Deadline,     ///< Options.DeadlineSeconds expired; resumable
    MemoryLimit,  ///< Options.MaxMemoryBytes exceeded; resumable
    Cancelled,    ///< Options.CancelFlag observed set; resumable
  };

  /// True for the interrupted (budget/cancel) statuses — every status
  /// except Solved and Inconsistent. An interrupted solver resumes on
  /// the next solve() call.
  static bool isInterrupted(Status S) {
    return S != Status::Solved && S != Status::Inconsistent;
  }

  explicit BidirectionalSolver(const ConstraintSystem &CS)
      : BidirectionalSolver(CS, SolverOptions{}) {}
  BidirectionalSolver(const ConstraintSystem &CS, SolverOptions Opts);
  ~BidirectionalSolver(); // out-of-line: owns the (fwd-declared) pool

  /// Ingests constraints added to the system since the last call and
  /// runs the closure to quiescence — or to the first exhausted budget
  /// (see Status). Calling solve() on an interrupted solver resumes
  /// the closure; the interrupted-then-resumed fixpoint is identical
  /// to an uninterrupted one (differentially tested).
  Status solve();

  /// Incremental retraction (delta re-solve, DESIGN.md §11): undoes
  /// the consequences of constraint \p Idx — which the caller must
  /// already have flagged via ConstraintSystem::retract — and re-runs
  /// the closure from the surviving support, reaching the fixpoint a
  /// fresh solve of the edited system would (differentially tested
  /// and certified). The derivation cone of the constraint's surface
  /// facts is removed from the arena, adjacency, and dedup tables;
  /// surviving edges incident to an affected node (or carrying an
  /// alternative decompose/projection derivation into one) are
  /// requeued, and surviving surface constraints are re-ingested so a
  /// shared dedup bit never orphans an independently-derivable fact.
  ///
  /// Requires SolverOptions::Incremental and TrackProvenance from the
  /// first solve(), and a quiescent solver (Solved or Inconsistent,
  /// empty worklist). Retracting an identity variable-variable
  /// constraint after cycle elimination merged variables is rejected
  /// (representatives cannot be un-merged); every other shape is fair
  /// game. On any Diag the solver is unchanged.
  Expected<Status> retract(uint32_t Idx);

  /// Returns the solver to its freshly-constructed state: restore()'s
  /// failure path, and the callers' fallback when retract()'s
  /// preconditions fail — a fresh solve() then re-ingests the edited
  /// system (retracted constraints are skipped), which is always
  /// correct, just not incremental.
  void resetToFresh();

  Status status() const { return Stat; }
  const SolverStats &stats() const { return Stats; }

  /// The solver's options. The mutable overload lets a caller raise
  /// budgets between solve() calls to resume an interrupted closure.
  /// The dedup backend choice (Dedup, AnnBitsetThreshold) is resolved
  /// at construction; changing it afterwards has no effect.
  SolverOptions &options() { return Options; }
  const SolverOptions &options() const { return Options; }

  /// Approximate solver-owned heap memory: the edge arena, both
  /// adjacency stores, both dedup tables, watchers, and the fn-var
  /// store, by container capacity. This is what MaxMemoryBytes is
  /// checked against.
  size_t memoryBytes() const;

  /// What this solver has published into the shared aggregate-memory
  /// cell \p Cell via Options.GroupMemory (0 when it last published
  /// into a different cell, or never). A long-lived owner of the cell
  /// (core/BatchSolver.h keeps one per batch; the solve service keeps
  /// one per daemon) subtracts this when retiring a solver, so the
  /// aggregate does not accumulate the footprints of dead sessions.
  uint64_t publishedGroupMemory(const std::atomic<uint64_t> *Cell) const {
    return Cell && LastGroupCell == Cell ? LastPublishedMemory : 0;
  }

  /// \name Durability (core/Snapshot.cpp)
  /// Crash-safe checkpoint/restore. A snapshot captures the complete
  /// closure state — processed prefix, pending worklist tail, dedup
  /// contents, stats — so a restored solver resumes to the
  /// bit-identical fixpoint the in-memory resume would reach.
  /// @{

  /// Atomically writes a snapshot of the current state to \p Path
  /// (temp file + fsync + rename; a crash mid-save leaves any previous
  /// snapshot at \p Path intact). Legal in any state, including
  /// mid-interrupt. \returns a Diag on I/O failure (nothing at \p Path
  /// is disturbed then).
  std::optional<Diag> saveCheckpoint(const std::string &Path) const;

  /// Restores this solver from a snapshot file. The solver must be
  /// fresh (no solve() yet and nothing ingested); the snapshot must
  /// have been taken from the same constraint-system prefix (same
  /// constructors, same ingested constraints), a compatible domain,
  /// and matching semantic options (FilterUseless, CycleElimination,
  /// EagerFunctionVars, TrackProvenance, resolved dedup backend) —
  /// all verified, any mismatch is a Diag. On success the restored
  /// closure is certified (core/Certifier.h) before control returns.
  /// On *any* Diag the solver is left in its fresh state, so the
  /// caller can fall back to solving from scratch.
  std::optional<Diag> restore(const std::string &Path);

  /// Convenience: constructs a solver over \p CS with \p Opts and
  /// restores it from \p Path. A Diag means the snapshot was rejected
  /// (corrupt, version-skewed, or mismatched) — the caller should
  /// re-solve from scratch.
  static Expected<std::unique_ptr<BidirectionalSolver>>
  Create(const std::string &Path, const ConstraintSystem &CS,
         SolverOptions Opts = {});

  /// True while nothing has been ingested or derived (the state
  /// restore() requires).
  bool unstarted() const {
    return NumIngested == 0 && EdgeArena.empty() && Conflicts.empty();
  }

  /// Diagnostic from the most recent *periodic* checkpoint attempt
  /// that failed, if any (periodic save failures never interrupt the
  /// solve; they degrade durability and are surfaced here).
  const std::optional<Diag> &lastCheckpointDiag() const {
    return LastCheckpointDiag;
  }

  /// Why the proof log (SolverOptions::ProofLogPath) was abandoned,
  /// if it was: an emission failure, an unsupported state when the
  /// path was set, or a retraction. Like checkpoint failures, an
  /// abandoned proof never interrupts a solve — the result stands,
  /// it is merely unproven. Cleared by resetToFresh().
  const std::optional<Diag> &lastProofDiag() const {
    return LastProofDiag;
  }

  /// True while a proof-log writer is live: the last solve() sealed
  /// the on-disk log with a checkable trailer and the next solve()
  /// will keep appending. False before the first proof-enabled
  /// solve() and after any abandonment.
  bool proofActive() const { return Proof != nullptr; }

  /// @}

  /// \name Certification interface (core/Certifier.h)
  /// Read-only views of the closure for the independent fixpoint
  /// certifier, which re-verifies the resolution rules without
  /// trusting any solver invariant beyond these accessors.
  /// @{

  /// Invokes \p F(src, dst, ann, processed) for every non-conflict
  /// derived edge, in derivation (arena) order. \p processed is true
  /// for the closed prefix — edges whose consequences have been
  /// derived; false for the pending worklist tail of an interrupted
  /// solve.
  template <typename Fn> void forEachDerivedEdge(Fn &&F) const {
    for (size_t I = 0, E = EdgeArena.size(); I != E; ++I)
      F(EdgeArena[I].Src, EdgeArena[I].Dst, EdgeArena[I].Ann,
        I < PendingHead);
  }

  /// Edges whose consequences have been fully derived.
  size_t processedEdges() const { return PendingHead; }

  /// Worklist tail still to process (0 iff the closure is complete).
  size_t pendingEdges() const { return EdgeArena.size() - PendingHead; }

  /// Constraints of system() already ingested (a prefix of
  /// system().constraints()).
  size_t ingestedConstraints() const { return NumIngested; }

  /// Nodes the closure graph has grown to (valid ids for the two
  /// accessors below).
  size_t numGraphNodes() const { return SuccDone.size(); }

  /// Processed-prefix counters per node: the number of *processed*
  /// arena edges with source (resp. destination) \p Node. At every
  /// resumable boundary these must equal a recount over
  /// forEachDerivedEdge's processed edges — the certifier cross-checks
  /// them, because the exactly-once join accounting is built on them
  /// (a corrupt counter silently skips or duplicates 2-path joins).
  uint32_t processedOut(ExprId Node) const { return SuccDone[Node]; }
  uint32_t processedIn(ExprId Node) const { return PredDone[Node]; }

  /// @}

  /// Constructor-mismatch edges discovered (manifest inconsistencies).
  const std::vector<SolvedEdge> &conflicts() const { return Conflicts; }

  /// Explains conflicts()[I] as an ordered derivation chain: surface
  /// constraints first, then the resolution steps (transitive,
  /// decomposition, projection) that derived the constructor
  /// mismatch, one rendered line per step. Requires
  /// Options.TrackProvenance from the first solve(); returns an empty
  /// vector otherwise or when I is out of range.
  std::vector<std::string> conflictWitness(size_t I) const;

  /// conflictWitness with a diagnosis instead of a silent empty
  /// vector: explains *why* no witness is available (provenance not
  /// tracked from the first solve, or the index out of range) so
  /// frontends can tell the user to enable TrackProvenance rather
  /// than print nothing.
  Expected<std::vector<std::string>> conflictWitnessEx(size_t I) const;

  /// The representative of \p V after cycle elimination (vars merged
  /// into a cycle share all bounds).
  VarId rep(VarId V) const;

  /// All constructor-expression lower bounds of \p V in the solved
  /// form: pairs (cons expr, annotation) with ce ⊆^f V derived.
  std::vector<std::pair<ExprId, AnnId>> consLowerBounds(VarId V) const;

  /// All constructor-expression upper bounds of \p V: V ⊆^f ce.
  std::vector<std::pair<ExprId, AnnId>> consUpperBounds(VarId V) const;

  /// All variable-to-variable derived edges out of \p V.
  std::vector<std::pair<VarId, AnnId>> varSuccessors(VarId V) const;

  /// Annotation classes f with (constant C) ⊆^f V in the solved form.
  std::vector<AnnId> constantAnnotations(ConsId C, VarId V) const;

  /// Entailment of the paper's simple query (Section 3.2): does every
  /// solution put the constant C, annotated with a full word of L(M),
  /// in V? True iff some derived annotation is in F_accept.
  bool entailsConstant(ConsId C, VarId V) const;

  /// Function-variable constraints recorded by the structural rule.
  const std::vector<FnVarConstraint> &fnVarConstraints() const {
    return FnVarCons;
  }

  /// Least solution of the function-variable constraints under the
  /// given seeds (pairs alpha, f meaning f ⊆ alpha); Section 3.2
  /// queries seed f_epsilon on the queried term's variables. The
  /// result maps each FnVarId to its set of classes.
  std::vector<std::vector<AnnId>> fnVarLeastSolution(
      std::span<const std::pair<FnVarId, AnnId>> Seeds) const;

  /// The eager all-identity-seeded function-variable solution (cached;
  /// maintained online when Options.EagerFunctionVars).
  const std::vector<std::vector<AnnId>> &fnVarSolution() const;

  /// PN-reachability: annotation classes of the constant \p Atom in
  /// each variable's least solution, including occurrences nested
  /// under unmatched constructors (Section 6.2). With
  /// \p AllowUnmatchedProjections the query also follows projection
  /// constraints the atom's context never matched — the "N" half of
  /// PN reachability [15], needed for flow queries that observe a
  /// value after it escaped the call that created it (Section 7.3).
  /// N steps precede P steps on any PN path.
  AtomReachability
  atomReachability(ConsId Atom,
                   bool AllowUnmatchedProjections = false) const;

  /// Enumerates ground terms of V's least solution up to \p MaxDepth
  /// constructor nesting, at most \p MaxCount terms. Constructor
  /// annotation variables are seeded with the identity.
  std::vector<GroundTerm> groundTerms(VarId V, unsigned MaxDepth,
                                      size_t MaxCount = 64) const;

  /// Stack-aware alias query (Section 7.5): do the least solutions of
  /// A and B share a term skeleton (annotations ignored)?
  bool solutionsIntersect(VarId A, VarId B, unsigned MaxDepth = 8,
                          size_t MaxCount = 256) const;

  /// The general query form of Section 3.2: is the set of terms
  /// denoted by the constructor expression \p E (in the least
  /// solution) intersected with \p V non-empty, restricted to
  /// occurrences whose top-level annotation class satisfies
  /// \p AcceptAnn (pass nullptr for "any")? E.g. searching for an
  /// error term c(X) in a variable with an accepting annotation.
  bool exprIntersectsVar(ExprId E, VarId V,
                         bool (*AcceptAnn)(const AnnotationDomain &,
                                           AnnId) = nullptr,
                         unsigned MaxDepth = 8,
                         size_t MaxCount = 256) const;

  const ConstraintSystem &system() const { return CS; }

  /// Graphviz rendering of the solved constraint graph (variable and
  /// constructor-expression nodes, edges labelled with annotation
  /// classes). Intended for debugging small systems.
  std::string toDot(std::string_view Title = "constraints") const;

private:
  /// Test-only backdoor (tests/certifier_mutation_test.cpp): mutates
  /// solved states into corrupt ones to prove the certifier rejects
  /// them. Never referenced by product code.
  friend struct SolverTestAccess;

  struct Edge {
    ExprId Src;
    ExprId Dst;
    AnnId Ann;
  };
  struct Watcher {
    ConsId C;
    uint32_t Index;
    VarId Target;
    AnnId Ann;
    uint32_t ConsIdx; ///< originating constraint (for witnesses)
  };

  /// Provenance of one derived edge (Options.TrackProvenance): the
  /// rule that first derived it and its premises. Premise edges are
  /// stored as (src, dst, ann) triples; conflictWitness() resolves
  /// them against the arena when rendering.
  struct EdgeProv {
    enum class Rule : uint8_t { Surface, Transitive, Decompose, Projection };
    Rule Kind = Rule::Surface;
    uint32_t CIdx = ~0u; ///< Surface/Projection: constraint index
    Edge P1{InvalidExpr, InvalidExpr, 0}; ///< premise (all but Surface)
    Edge P2{InvalidExpr, InvalidExpr, 0}; ///< second premise (Transitive)
  };

  /// Maps an expression to its node id after variable representative
  /// substitution (cycle elimination), interning rewritten exprs.
  ExprId canonicalize(ExprId E);

  void ingest(const Constraint &C, uint32_t Idx);

  /// Hot shell: dedup probe (the overwhelmingly common duplicate
  /// exit), defined inline so the closure's scan loops pay no call
  /// overhead for a duplicate; fresh edges fall through to the
  /// out-of-line cold path below. Budgets are deliberately *not*
  /// checked here: an interrupt mid-process() would lose derivations
  /// (the dedup bit is claimed before the arena push, and the
  /// processed-prefix counters advance per edge, not per join), so
  /// the closure loop enforces every budget between worklist pops —
  /// process() always runs to completion once started.
  void addEdge(ExprId Src, ExprId Dst, AnnId Ann) {
    // Dedup before the useless filter: duplicates are the
    // overwhelming majority of attempts on dense workloads, and the
    // probe is one cache line while isUseless() is a virtual call. A
    // useless edge thus claims its dedup bit on first sight and
    // repeats count as dropped, which only shifts stats between the
    // two counters.
    if (!EdgeSeen.insert(Src, Dst, Ann)) {
      ++Stats.EdgesDropped;
      if (trace::enabled())
        trace::instant("solver.edge.dup", Src, Dst);
      return;
    }
    insertFreshEdge(Src, Dst, Ann);
  }
  void insertFreshEdge(ExprId Src, ExprId Dst, AnnId Ann);
  void process(const Edge &E);
  void decompose(const Edge &E);
  /// \returns true when the constraint was fresh (not a dedup drop).
  bool addFnVarConstraint(FnVarId From, AnnId Fn, FnVarId To);
  void runEagerFnVars();
  void collapseCycles(size_t FirstNew);
  bool isVarNode(ExprId E) const {
    return CS.expr(E).Kind == ExprKind::Var;
  }
  void growTo(ExprId E);

  /// The expression node of (representative) variable \p V, interned
  /// on first use and recorded in the VarNode index. All solving-side
  /// var-node creation goes through here so that query paths can use
  /// the O(1) lookup below instead of re-interning via CS.var().
  ExprId varNode(VarId V);

  /// Query-side O(1) lookup: the node of representative \p V, or
  /// InvalidExpr if solving never touched it (then it has no bounds).
  ExprId varNodeIfAny(VarId V) const {
    return V < VarNode.size() ? VarNode[V] : InvalidExpr;
  }

  void enumerateTerms(VarId V, unsigned MaxDepth, size_t MaxCount,
                      std::vector<VarId> &Visiting,
                      std::vector<GroundTerm> &Out) const;

  /// Runs the worklist closure until quiescence or the first
  /// exhausted budget; returns the interrupt status, or Solved when
  /// the worklist drained (the caller folds in Inconsistent).
  /// \p Start is the solve() entry time (the deadline's epoch).
  Status runClosure(std::chrono::steady_clock::time_point Start);

  /// The frontier-parallel closure (Options.Threads > 1): drains the
  /// worklist in bulk-synchronous rounds of up to MaxRoundEdges edges
  /// each, falling back to per-edge process() for frontiers below
  /// Options.ParallelFrontierThreshold. Budgets are enforced between
  /// rounds (and between fallback pops), so interrupts land at the
  /// same edge-boundary states the sequential path produces — a
  /// parallel solve can resume sequentially and vice versa.
  Status runClosureParallel(std::chrono::steady_clock::time_point Start,
                            unsigned Threads);

  /// One bulk-synchronous round over the next \p Frontier pending
  /// edges with \p Threads-way compute and an owner-partitioned
  /// parallel merge (see Solver.cpp for the phase structure and the
  /// exactly-once argument).
  void parallelRound(size_t Frontier, unsigned Threads);

  /// The slow governance checks (cancellation, deadline, memory,
  /// failpoints), run every Options.GovernanceCheckInterval pops.
  /// \returns Solved when nothing tripped.
  Status governanceCheck(std::chrono::steady_clock::time_point Start);

  /// The backend a solver constructed with \p Opts over \p D uses
  /// (resolves DedupBackend::Auto against the domain size). Snapshot
  /// save/restore records and re-checks this.
  static EdgeDedup::Backend resolveDedupBackend(const SolverOptions &Opts,
                                                const AnnotationDomain &D);

  /// The dedup shard count a solver constructed with \p Opts uses
  /// (resolves MergeShards == 0 against the thread count, clamped to
  /// a sane ceiling). Like the dedup backend, fixed at construction;
  /// *not* recorded in snapshots — the on-disk dedup section is
  /// shard-independent triples, so snapshots round-trip across
  /// differently-sharded solvers.
  static unsigned resolveMergeShards(const SolverOptions &Opts);

  /// Periodic checkpoint save (Options.CheckpointEveryPops): commits a
  /// snapshot to Options.CheckpointPath, records a failure in
  /// LastCheckpointDiag without interrupting, and consults the
  /// CrashAfterRename failpoint (a successful save followed by a
  /// simulated kill, for the crash-recovery tests).
  void periodicCheckpoint();

  /// True when the retraction indexes are maintained (both flags are
  /// required; retract() enforces the pairing with a Diag).
  bool incrementalActive() const {
    return Options.Incremental && Options.TrackProvenance;
  }

  /// Arena index of the edge with this exact (src, dst, ann) triple,
  /// or ~0u when absent / the triple is an invalid premise slot.
  /// O(1) via the incremental triple map.
  uint32_t provEdgeIndex(const Edge &E) const;

  /// Registers arena edge \p I in the triple map (two-level: (src,
  /// dst) pair id, then (pair, ann) → index).
  void registerProvEdge(ExprId Src, ExprId Dst, AnnId Ann, uint32_t I);

  /// Rebuilds the triple map and the parent links from
  /// EdgeArena/EdgeProvs (after a snapshot restore or a retraction
  /// compaction; both are deterministic functions of the provenance
  /// records, which is how snapshots round-trip the index without
  /// serializing it).
  void rebuildProvIndex();

  /// \name Proof emission (core/ProofLog.cpp hosts the writer;
  /// Solver.cpp hosts these hooks)
  /// @{

  /// Opens (or rebuilds) the proof log when Options.ProofLogPath is
  /// set and no writer is live. On a started solver this replays the
  /// existing derivations from provenance in premise-respecting
  /// order; any unsupported state degrades to lastProofDiag().
  void openProofLogIfRequested();

  /// Replays collapses, ingested constraints, arena edges (topological
  /// over the parent links after a retraction, arena order otherwise),
  /// fn-var constraints, and conflicts into a freshly opened writer.
  void rebuildProofLog();

  /// Emits the EDGE / CONFLICT record for the derivation described by
  /// CurProv. Only called while the writer is live.
  void emitProofEdge(bool IsConflict, ExprId Src, ExprId Dst, AnnId Ann);

  /// Drops the writer, records why in LastProofDiag (the writer's own
  /// Diag wins over \p Why), counts the failure, and latches
  /// ProofDisabled so the solve stream does not thrash reopening a
  /// failing log.
  void abandonProof(const char *Why);

  /// @}

  /// Records this solve() call's deltas into the global
  /// MetricsRegistry (core/Observe.h). Only called when
  /// observe::metricsEnabled(); writes instruments, never reads them,
  /// so enabling metrics cannot perturb the fixpoint or SolverStats.
  void recordSolveMetrics(const SolverStats &Before) const;

  const ConstraintSystem &CS;
  SolverOptions Options;
  SolverStats Stats;
  Status Stat = Status::Solved;

  size_t NumIngested = 0;

  /// Interrupt requested by a failpoint during edge insertion (test
  /// harness only); honored at the next governance check so the
  /// in-flight process() still completes.
  std::optional<Status> ForcedInterrupt;

  // Provenance (Options.TrackProvenance). EdgeProvs is parallel to
  // EdgeArena; ConflictProvs to Conflicts. CurProv is set by each
  // derivation site just before its addEdge call and consumed by
  // insertFreshEdge.
  std::vector<EdgeProv> EdgeProvs;
  std::vector<EdgeProv> ConflictProvs;
  EdgeProv CurProv;

  // Retraction indexes (incrementalActive()): per arena edge, the
  // arena indices of its first derivation's premise edges (~0u =
  // none/not an edge premise), resolved at insertion through the
  // two-level triple map below. retract() inverts the parent links
  // into a children index on demand and walks it to the derivation
  // cone. Parallel to EdgeArena, like EdgeProvs.
  std::vector<uint32_t> ProvPar1;
  std::vector<uint32_t> ProvPar2;
  FlatMap64 ProvPairIds; // (src << 32 | dst) -> dense pair id
  FlatMap64 ProvTriples; // (pair id << 32 | ann) -> arena index
  uint32_t NextProvPairId = 0;

  // Cycle elimination: variable representatives.
  mutable UnionFind VarReps;

  // Graph. Chunked SoA adjacency indexed by ExprId (grown on demand);
  // see support/Adjacency.h.
  AdjacencyLists Succs;
  AdjacencyLists Preds;
  std::vector<std::vector<Watcher>> Watchers; // on var nodes

  // Dense ExprKind per node, filled by growTo: the closure inner loop
  // only needs the kind to route an edge, and a one-byte load beats
  // pulling in the full Expr record (args vector and all) per edge.
  std::vector<uint8_t> NodeKind;

  // Processed-prefix lengths per node: edges are appended to both
  // adjacency lists in arena order and processed in arena order, so
  // the already-processed entries of any list form a prefix. The
  // transitive rule scans only that prefix: a 2-path is joined exactly
  // once, by whichever of its two edges is processed later (the other
  // is in the prefix by then), instead of up to twice with full-list
  // scans.
  std::vector<uint32_t> SuccDone;
  std::vector<uint32_t> PredDone;

  // Edge dedup (annotation bitsets or per-destination flat sets; see
  // SolverOptions::Dedup), striped by destination into MergeShards
  // segments for the owner-partitioned merge (one segment on the
  // sequential path), and the edge arena. The arena doubles as the
  // FIFO worklist: every edge is enqueued exactly once, so the ring
  // never wraps and the head cursor suffices.
  ShardedEdgeDedup EdgeSeen;
  std::vector<Edge> EdgeArena;
  size_t PendingHead = 0;
  std::vector<SolvedEdge> Conflicts;

  std::vector<FnVarConstraint> FnVarCons;
  EdgeDedup FnVarSeen; // dedup of FnVarCons
  mutable std::vector<std::vector<AnnId>> EagerFnVarSol;
  mutable bool FnVarSolFresh = false;

  // VarId -> ExprId node (or InvalidExpr), for query-side lookups
  // without re-interning through CS.var()'s hash-cons table.
  std::vector<ExprId> VarNode;

  // Frontier-parallel round scratch (Options.Threads > 1), kept
  // across rounds so allocations amortize. The limit vectors hold the
  // per-frontier-edge processed-prefix snapshots taken by the
  // sequential limits sweep (exact-stats mode only). One RoundBuf per
  // compute partition holds the worker's private counters and its
  // per-shard mailboxes: Mail[S] collects the partition's derived
  // edges owned by shard S, written only by the producing worker
  // during compute and read only by shard S's owner during the merge
  // phase (a fan-out of single-producer/single-consumer buffers with
  // the pool barrier as the handoff). One ShardScratch per dedup
  // shard holds the owner's merge results until the sequential
  // epilogue folds them in.
  std::unique_ptr<ThreadPool> Pool;
  std::vector<uint32_t> RoundSuccLimit;
  std::vector<uint32_t> RoundPredLimit;
  struct RoundBuf {
    std::vector<std::vector<Edge>> Mail; // per-shard outboxes
    uint64_t ComposeCalls = 0;
    uint64_t EdgesDropped = 0;
  };
  std::vector<RoundBuf> RoundBufs;
  struct alignas(64) ShardScratch {
    std::vector<Edge> Fresh; // dedup-fresh edges, mailbox drain order
    uint64_t Dropped = 0;    // duplicates caught by this shard's probe
    uint64_t MailEdges = 0;  // mailbox edges drained this round
    uint64_t MergeNs = 0;    // wall time of this shard's merge
  };
  std::vector<ShardScratch> Shards;

  // Last memoryBytes() published into Options.GroupMemory (the shared
  // cell accumulates deltas, so each solver remembers its own
  // contribution) and the cell it was published into: pointing the
  // solver at a different cell restarts the delta chain from zero.
  uint64_t LastPublishedMemory = 0;
  const std::atomic<uint64_t> *LastGroupCell = nullptr;

  // Periodic checkpoint state: pops since the last save, and the
  // diagnostic of the last failed periodic save (surfaced via
  // lastCheckpointDiag(), never an interrupt).
  uint64_t PopsSinceCheckpoint = 0;
  std::optional<Diag> LastCheckpointDiag;

  // Proof logging (Options.ProofLogPath). NeedProv is the per-solve
  // "populate CurProv" switch: TrackProvenance *or* a live writer —
  // the derivation sites consult it instead of TrackProvenance so
  // proof emission works without paying for provenance retention.
  // ProofDisabled latches after an abandoned log (see abandonProof);
  // resetToFresh() clears it.
  std::unique_ptr<ProofLogWriter> Proof;
  bool NeedProv = false;
  bool ProofDisabled = false;
  std::optional<Diag> LastProofDiag;

  // Last progress line emitted (observe::setProgressEverySeconds);
  // epoch-zero until the first governance check arms it. Ephemeral
  // reporting state — deliberately not serialized by Snapshot.cpp.
  std::chrono::steady_clock::time_point LastProgress{};
};

/// Exit codes rasctool reports for snapshot/certification failures,
/// disjoint from the per-Status codes below.
inline constexpr int ExitCodeCorruptSnapshot = 20;
inline constexpr int ExitCodeCertifyFailed = 21;

/// The documented process exit code for a final solve status, used by
/// rasctool so shell retry loops can branch on the interrupt kind:
/// Solved=0, Inconsistent=1, Deadline=10, EdgeLimit=11, StepLimit=12,
/// MemoryLimit=13, Cancelled=14 (corrupt snapshot=20 and failed
/// certification=21 are reported separately, see above).
inline int statusExitCode(BidirectionalSolver::Status S) {
  using Status = BidirectionalSolver::Status;
  switch (S) {
  case Status::Solved:
    return 0;
  case Status::Inconsistent:
    return 1;
  case Status::Deadline:
    return 10;
  case Status::EdgeLimit:
    return 11;
  case Status::StepLimit:
    return 12;
  case Status::MemoryLimit:
    return 13;
  case Status::Cancelled:
    return 14;
  }
  return 2; // unreachable; defensive for out-of-range casts
}

} // namespace rasc

#endif // RASC_CORE_SOLVER_H
