//===- core/Annotation.h - Annotation domain interface ----------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver is parametric in the *annotation domain*: a finite
/// monoid of interned elements with constant-time composition. The
/// paper's domain is the transition monoid of the annotation DFA
/// (MonoidDomain); the bit-vector language of Section 3.3 admits a
/// specialized representation (GenKillDomain); parametric annotations
/// (Section 6.4) are substitution environments over a base domain
/// (SubstEnvDomain); and the trivial one-element domain recovers plain
/// unannotated set constraints, which serves as the cubic-time
/// baseline.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_ANNOTATION_H
#define RASC_CORE_ANNOTATION_H

#include <cstdint>
#include <string>

namespace rasc {

/// Dense id of an annotation element within its domain.
using AnnId = uint32_t;

constexpr AnnId InvalidAnn = ~AnnId(0);

/// A finite monoid of annotation classes. Elements are interned; a
/// domain may grow while the solver runs (substitution environments
/// intern compositions on demand), but composition of existing
/// elements must always be defined.
class AnnotationDomain {
public:
  virtual ~AnnotationDomain() = default;

  /// The class of the empty word, f_epsilon.
  virtual AnnId identity() const = 0;

  /// F ∘ G: the class of vw for v in class G and w in class F (G is
  /// applied first). The solver's transitive rule
  ///   se1 ⊆^F X ∧ X ⊆^G se2  ⇒  se1 ⊆^{G∘F} se2
  /// calls compose(G, F).
  virtual AnnId compose(AnnId F, AnnId G) const = 0;

  /// Optional O(1)-composition fast path: a dense row of products
  /// with the left operand fixed, composeRowLhs(F)[G] == compose(F, G)
  /// for every currently interned G. The solver hoists the row (and
  /// with it this virtual call) out of its inner closure loops.
  /// \returns nullptr when no dense table exists; callers must fall
  /// back to compose(). The pointer is invalidated by interning new
  /// elements into the domain.
  virtual const AnnId *composeRowLhs(AnnId F) const {
    (void)F;
    return nullptr;
  }

  /// The transposed fast path, fixing the right operand:
  /// composeRowRhs(G)[F] == compose(F, G).
  virtual const AnnId *composeRowRhs(AnnId G) const {
    (void)G;
    return nullptr;
  }

  /// \returns true if no extension of a word in class \p F can be in
  /// L(M); the solver may drop such annotations (Section 3.1).
  virtual bool isUseless(AnnId F) const {
    (void)F;
    return false;
  }

  /// \returns true if words in class \p F are full words of L(M)
  /// (F_accept membership, used by entailment queries, Section 3.2).
  virtual bool isAccepting(AnnId F) const = 0;

  /// Number of elements interned so far.
  virtual size_t size() const = 0;

  /// Human-readable rendering for diagnostics.
  virtual std::string toString(AnnId F) const = 0;
};

} // namespace rasc

#endif // RASC_CORE_ANNOTATION_H
