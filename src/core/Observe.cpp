//===- core/Observe.cpp - Metrics registry and progress -------------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/Observe.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace rasc {

struct MetricsRegistry::Impl {
  std::mutex M;
  // Node-stable maps: references handed out by counter()/gauge()/
  // histogram() must survive later insertions.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  Impl *I = P.load(std::memory_order_acquire);
  if (I)
    return *I;
  Impl *Fresh = new Impl();
  if (P.compare_exchange_strong(I, Fresh, std::memory_order_acq_rel))
    return *Fresh;
  delete Fresh; // another thread won the race
  return *I;
}

MetricsRegistry::~MetricsRegistry() {
  delete P.load(std::memory_order_acquire);
}

MetricsRegistry::Counter &MetricsRegistry::counter(std::string_view Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.M);
  assert(I.Gauges.find(Name) == I.Gauges.end() &&
         I.Histograms.find(Name) == I.Histograms.end() &&
         "metric name registered with a different instrument kind");
  auto It = I.Counters.find(Name);
  if (It == I.Counters.end())
    It = I.Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

MetricsRegistry::Gauge &MetricsRegistry::gauge(std::string_view Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.M);
  assert(I.Counters.find(Name) == I.Counters.end() &&
         I.Histograms.find(Name) == I.Histograms.end() &&
         "metric name registered with a different instrument kind");
  auto It = I.Gauges.find(Name);
  if (It == I.Gauges.end())
    It = I.Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

MetricsRegistry::Histogram &MetricsRegistry::histogram(std::string_view Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.M);
  assert(I.Counters.find(Name) == I.Counters.end() &&
         I.Gauges.find(Name) == I.Gauges.end() &&
         "metric name registered with a different instrument kind");
  auto It = I.Histograms.find(Name);
  if (It == I.Histograms.end())
    It = I.Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.M);
  Snapshot S;
  S.Counters.reserve(I.Counters.size());
  for (const auto &[N, C] : I.Counters)
    S.Counters.emplace_back(N, C->get());
  S.Gauges.reserve(I.Gauges.size());
  for (const auto &[N, G] : I.Gauges)
    S.Gauges.emplace_back(N, G->get());
  S.Histograms.reserve(I.Histograms.size());
  for (const auto &[N, H] : I.Histograms) {
    Snapshot::HistData D;
    D.Name = N;
    D.Count = H->Count.load(std::memory_order_relaxed);
    D.Sum = H->Sum.load(std::memory_order_relaxed);
    D.Max = H->Max.load(std::memory_order_relaxed);
    unsigned Last = 0;
    uint64_t Vals[Histogram::NumBuckets];
    for (unsigned B = 0; B != Histogram::NumBuckets; ++B) {
      Vals[B] = H->Buckets[B].load(std::memory_order_relaxed);
      if (Vals[B])
        Last = B + 1;
    }
    D.Buckets.assign(Vals, Vals + Last);
    S.Histograms.push_back(std::move(D));
  }
  return S;
}

void MetricsRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> L(I.M);
  for (auto &[N, C] : I.Counters)
    C->V.store(0, std::memory_order_relaxed);
  for (auto &[N, G] : I.Gauges)
    G->V.store(0, std::memory_order_relaxed);
  for (auto &[N, H] : I.Histograms) {
    for (auto &B : H->Buckets)
      B.store(0, std::memory_order_relaxed);
    H->Count.store(0, std::memory_order_relaxed);
    H->Sum.store(0, std::memory_order_relaxed);
    H->Max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *R = new MetricsRegistry(); // leaked: handles may
                                                     // be cached by
                                                     // late-exiting threads
  return *R;
}

std::string MetricsRegistry::Snapshot::toJson() const {
  std::string Out;
  Out += "{\"counters\":{";
  bool First = true;
  for (const auto &[N, V] : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += N;
    Out += "\":";
    Out += std::to_string(V);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[N, V] : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += N;
    Out += "\":";
    Out += std::to_string(V);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const HistData &H : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"';
    Out += H.Name;
    Out += "\":{\"count\":";
    Out += std::to_string(H.Count);
    Out += ",\"sum\":";
    Out += std::to_string(H.Sum);
    Out += ",\"max\":";
    Out += std::to_string(H.Max);
    Out += ",\"mean\":";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.3f",
                  H.Count ? static_cast<double>(H.Sum) /
                                static_cast<double>(H.Count)
                          : 0.0);
    Out += Buf;
    Out += ",\"buckets\":[";
    for (size_t B = 0; B != H.Buckets.size(); ++B) {
      if (B)
        Out += ',';
      Out += std::to_string(H.Buckets[B]);
    }
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

namespace observe {

std::atomic<bool> detail::MetricsOn{false};
std::atomic<uint64_t> detail::ProgressEveryMs{0};

void setMetricsEnabled(bool On) {
  detail::MetricsOn.store(On, std::memory_order_relaxed);
}

void setProgressEverySeconds(double Seconds) {
  uint64_t Ms = Seconds > 0 ? static_cast<uint64_t>(Seconds * 1000.0) : 0;
  if (Seconds > 0 && Ms == 0)
    Ms = 1;
  detail::ProgressEveryMs.store(Ms, std::memory_order_relaxed);
}

double progressEverySeconds() {
  return static_cast<double>(
             detail::ProgressEveryMs.load(std::memory_order_relaxed)) /
         1000.0;
}

} // namespace observe
} // namespace rasc
