//===- core/Domains.h - Concrete annotation domains -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete AnnotationDomain implementations:
///
///   * TrivialDomain  - one element; plain (unannotated) set
///     constraints, the cubic-time baseline.
///   * MonoidDomain   - the transition monoid F_M^≡ of an annotation
///     DFA (the paper's general construction, Section 2.4).
///   * GenKillDomain  - the n-bit gen/kill language of Section 3.3
///     represented as (gen mask, kill mask) pairs; equivalent to the
///     transition monoid of the 2^n-state product machine but without
///     ever materializing it.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_DOMAINS_H
#define RASC_CORE_DOMAINS_H

#include "automata/Dfa.h"
#include "automata/Monoid.h"
#include "core/Annotation.h"
#include "support/Hashing.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace rasc {

/// The one-element domain: annotations carry no information. With it
/// the solver degenerates to the classical cubic fragment of set
/// constraints.
class TrivialDomain final : public AnnotationDomain {
public:
  AnnId identity() const override { return 0; }
  AnnId compose(AnnId F, AnnId G) const override {
    assert(F == 0 && G == 0 && "trivial domain has one element");
    (void)F;
    (void)G;
    return 0;
  }
  bool isAccepting(AnnId) const override { return true; }
  const AnnId *composeRowLhs(AnnId F) const override {
    assert(F == 0 && "trivial domain has one element");
    (void)F;
    static constexpr AnnId Row[1] = {0};
    return Row;
  }
  const AnnId *composeRowRhs(AnnId G) const override {
    return composeRowLhs(G);
  }
  size_t size() const override { return 1; }
  std::string toString(AnnId) const override { return "eps"; }
};

/// Annotation classes are representative functions of a DFA M. Owns
/// the automaton and its transition monoid. AnnId coincides with the
/// monoid's FnId.
class MonoidDomain final : public AnnotationDomain {
public:
  explicit MonoidDomain(Dfa M,
                        TransitionMonoid::Options Opts = defaultOptions());

  static TransitionMonoid::Options defaultOptions() {
    return TransitionMonoid::Options{};
  }

  AnnId identity() const override { return Mon->identity(); }
  AnnId compose(AnnId F, AnnId G) const override {
    return Mon->compose(F, G);
  }
  bool isUseless(AnnId F) const override { return Mon->isUseless(F); }
  bool isAccepting(AnnId F) const override {
    return Mon->acceptingFromStart(F);
  }
  const AnnId *composeRowLhs(AnnId F) const override {
    return Mon->composeRowLhs(F);
  }
  const AnnId *composeRowRhs(AnnId G) const override {
    return Mon->composeRowRhs(G);
  }
  size_t size() const override { return Mon->size(); }
  std::string toString(AnnId F) const override { return Mon->toString(F); }

  /// The class of a single symbol; the surface syntax of constraints
  /// (se1 ⊆^x se2, x in Sigma or eps) uses exactly these.
  AnnId symbolAnn(SymbolId Sym) const { return Mon->symbolFn(Sym); }

  /// The class of a symbol given by name; asserts the name exists.
  AnnId symbolAnn(std::string_view Name) const {
    auto S = Machine->symbol(Name);
    assert(S && "unknown annotation symbol");
    return Mon->symbolFn(*S);
  }

  /// delta(w, S) for any word w in class \p F.
  StateId apply(AnnId F, StateId S) const { return Mon->apply(F, S); }

  const Dfa &machine() const { return *Machine; }
  const TransitionMonoid &monoid() const { return *Mon; }

private:
  std::unique_ptr<Dfa> Machine; // stable address for the monoid
  std::unique_ptr<TransitionMonoid> Mon;
};

/// The n-bit gen/kill language (Section 3.3). An element is the
/// classical transfer function X |-> (X \ Kill) ∪ Gen with
/// Gen ∩ Kill = ∅ (a later gen cancels an earlier kill and vice
/// versa). Composition never leaves this set, and there are 3^n
/// elements, matching the transition monoid of the n-bit product
/// machine bit for bit.
class GenKillDomain final : public AnnotationDomain {
public:
  explicit GenKillDomain(unsigned NumBits);

  AnnId identity() const override { return 0; }
  AnnId compose(AnnId F, AnnId G) const override;
  bool isAccepting(AnnId) const override { return true; }
  size_t size() const override { return Elems.size(); }
  std::string toString(AnnId F) const override;

  unsigned numBits() const { return NumBits; }

  /// The class of the single-symbol word g_i / k_i.
  AnnId gen(unsigned Bit) { return makeElem(uint64_t(1) << Bit, 0); }
  AnnId kill(unsigned Bit) { return makeElem(0, uint64_t(1) << Bit); }

  /// The class of an arbitrary transfer function (Gen, Kill); bits in
  /// both masks are treated as gen-after-kill (gen wins).
  AnnId transfer(uint64_t Gen, uint64_t Kill) {
    return makeElem(Gen, Kill & ~Gen);
  }

  uint64_t genMask(AnnId F) const { return Elems[F].first; }
  uint64_t killMask(AnnId F) const { return Elems[F].second; }

  /// Applies the transfer function to a bit-vector value.
  uint64_t apply(AnnId F, uint64_t Bits) const {
    return (Bits & ~Elems[F].second) | Elems[F].first;
  }

private:
  // Composition interns the result, so the tables are mutable: the
  // domain grows monotonically while ids stay stable.
  AnnId makeElem(uint64_t Gen, uint64_t Kill) const;

  unsigned NumBits;
  uint64_t Mask;
  mutable std::vector<std::pair<uint64_t, uint64_t>> Elems;
  mutable std::unordered_map<std::pair<uint64_t, uint64_t>, AnnId, PairHash>
      Ids;
  mutable std::unordered_map<uint64_t, AnnId> ComposeMemo;
};

} // namespace rasc

#endif // RASC_CORE_DOMAINS_H
