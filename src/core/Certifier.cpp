//===- core/Certifier.cpp - Independent fixpoint certification ------------===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/Certifier.h"

#include "core/Solver.h"
#include "support/AnnSet.h"
#include "support/Trace.h"

#include <unordered_map>

using namespace rasc;

namespace {

uint64_t pack(uint32_t A, uint32_t B) {
  return (static_cast<uint64_t>(A) << 32) | B;
}

/// The certifier's own view of the claimed closure, built once from
/// the solver's public enumeration and queried per obligation.
struct ClosureView {
  const ConstraintSystem &CS;
  const AnnotationDomain &D;
  bool FilterUseless;

  // All derived edges (processed and pending) keyed (src, dst):
  // conclusions of obligations may legitimately sit in the pending
  // tail of an interrupted solve.
  std::unordered_map<uint64_t, AnnSet> Edges;
  // Conflicts keyed the same way.
  std::unordered_map<uint64_t, AnnSet> ConflictSet;
  // Per-node processed edges — the premise sets. Processed edges
  // only: the solver's resumable invariant is that a pending edge has
  // produced no consequences yet.
  std::unordered_map<uint32_t, std::vector<SolvedEdge>> InProcessed;
  std::unordered_map<uint32_t, std::vector<SolvedEdge>> OutProcessed;
  // Function-variable constraints as packed (from, to) -> fn set.
  std::unordered_map<uint64_t, AnnSet> FnVars;
  // VarId -> its interned Var-expression node, from the expr table.
  std::vector<ExprId> VarExpr;

  explicit ClosureView(const BidirectionalSolver &S)
      : CS(S.system()), D(CS.domain()),
        FilterUseless(S.options().FilterUseless) {
    S.forEachDerivedEdge([&](ExprId Src, ExprId Dst, AnnId Ann,
                             bool Processed) {
      Edges[pack(Src, Dst)].insert(Ann);
      if (Processed) {
        OutProcessed[Src].push_back({Src, Dst, Ann});
        InProcessed[Dst].push_back({Src, Dst, Ann});
      }
    });
    for (const SolvedEdge &C : S.conflicts())
      ConflictSet[pack(C.Src, C.Dst)].insert(C.Ann);
    for (const FnVarConstraint &F : S.fnVarConstraints())
      FnVars[pack(F.From, F.To)].insert(F.Fn);
    VarExpr.assign(CS.numVars(), InvalidExpr);
    for (ExprId E = 0, N = CS.numExprs(); E != N; ++E) {
      const Expr &Ex = CS.expr(E);
      if (Ex.Kind == ExprKind::Var && Ex.V < VarExpr.size())
        VarExpr[Ex.V] = E;
    }
  }

  bool hasEdge(ExprId Src, ExprId Dst, AnnId Ann) const {
    auto It = Edges.find(pack(Src, Dst));
    return It != Edges.end() && It->second.contains(Ann);
  }

  bool hasConflict(ExprId Src, ExprId Dst, AnnId Ann) const {
    auto It = ConflictSet.find(pack(Src, Dst));
    return It != ConflictSet.end() && It->second.contains(Ann);
  }

  /// Whether the conclusion src ⊆^ann dst is accounted for: derived,
  /// recorded as a constructor-mismatch conflict, or legitimately
  /// dropped by the useless-annotation filter.
  bool accounted(ExprId Src, ExprId Dst, AnnId Ann) const {
    if (FilterUseless && D.isUseless(Ann))
      return true;
    const Expr &SE = CS.expr(Src);
    const Expr &DE = CS.expr(Dst);
    if (SE.Kind == ExprKind::Cons && DE.Kind == ExprKind::Cons &&
        SE.C != DE.C)
      return hasConflict(Src, Dst, Ann);
    return hasEdge(Src, Dst, Ann);
  }
};

void fail(CertificationReport &R, std::string Msg) {
  R.Ok = false;
  if (R.Failures.size() < CertificationReport::MaxFailures)
    R.Failures.push_back(std::move(Msg));
}

std::string edgeStr(const ConstraintSystem &CS, ExprId Src, ExprId Dst,
                    AnnId Ann) {
  return CS.exprToString(Src) + " <=[" + CS.domain().toString(Ann) +
         "] " + CS.exprToString(Dst);
}

} // namespace

std::string CertificationReport::summary() const {
  std::string S = Ok ? "certified" : "CERTIFICATION FAILED";
  S += ": " + std::to_string(EdgesChecked) + " edges, " +
       std::to_string(TransitiveObligations) + " transitive + " +
       std::to_string(DecomposeObligations) + " structural + " +
       std::to_string(ProjectionObligations) + " projection + " +
       std::to_string(SurfaceObligations) + " surface obligations";
  if (!Failures.empty())
    S += ", " + std::to_string(Failures.size()) + "+ violations";
  return S;
}

CertificationReport rasc::certifyFixpoint(const BidirectionalSolver &S) {
  RASC_TRACE_SCOPE("certify");
  CertificationReport R;
  const ConstraintSystem &CS = S.system();
  const AnnotationDomain &D = CS.domain();
  ClosureView V(S);

  using Status = BidirectionalSolver::Status;

  // Processed-prefix counter cross-check: the exactly-once join
  // accounting (and the transitive obligations above) is built on the
  // solver's per-node processed counts, so re-derive them from the
  // edge enumeration and compare. A corrupt counter means joins were
  // silently skipped or double-counted even if the edge set looks
  // closed.
  for (ExprId Node = 0, N = static_cast<ExprId>(S.numGraphNodes());
       Node != N; ++Node) {
    auto OutIt = V.OutProcessed.find(Node);
    auto InIt = V.InProcessed.find(Node);
    size_t Outs = OutIt == V.OutProcessed.end() ? 0 : OutIt->second.size();
    size_t Ins = InIt == V.InProcessed.end() ? 0 : InIt->second.size();
    if (S.processedOut(Node) != Outs)
      fail(R, "processed-out counter of node " + std::to_string(Node) +
                  " claims " + std::to_string(S.processedOut(Node)) +
                  ", arena recount gives " + std::to_string(Outs));
    if (S.processedIn(Node) != Ins)
      fail(R, "processed-in counter of node " + std::to_string(Node) +
                  " claims " + std::to_string(S.processedIn(Node)) +
                  ", arena recount gives " + std::to_string(Ins));
  }

  // Status consistency: a final status claims a drained worklist, and
  // the Solved/Inconsistent split must match the conflict list.
  if (!BidirectionalSolver::isInterrupted(S.status()) &&
      S.pendingEdges() != 0)
    fail(R, "final status with " + std::to_string(S.pendingEdges()) +
                " pending edges");
  if (S.status() == Status::Solved && !S.conflicts().empty())
    fail(R, "status Solved with recorded conflicts");
  if (S.status() == Status::Inconsistent && S.conflicts().empty())
    fail(R, "status Inconsistent without a conflict");

  // Conflicts must really be constructor mismatches.
  for (const SolvedEdge &C : S.conflicts()) {
    if (C.Src >= CS.numExprs() || C.Dst >= CS.numExprs()) {
      fail(R, "conflict references an unknown expression");
      continue;
    }
    const Expr &SE = CS.expr(C.Src);
    const Expr &DE = CS.expr(C.Dst);
    if (SE.Kind != ExprKind::Cons || DE.Kind != ExprKind::Cons ||
        SE.C == DE.C)
      fail(R, "recorded conflict is not a constructor mismatch: " +
                  edgeStr(CS, C.Src, C.Dst, C.Ann));
  }

  // Transitivity through variable nodes: every 2-path of processed
  // edges meeting at a variable must have its composition accounted
  // for. (The solver only joins through variable intermediates;
  // cons-cons edges resolve via decomposition instead.) A self-loop
  // pairs with itself, matching the closure's explicit (e, e) join.
  for (const auto &[Node, Ins] : V.InProcessed) {
    if (CS.expr(Node).Kind != ExprKind::Var)
      continue;
    auto OutIt = V.OutProcessed.find(Node);
    if (OutIt == V.OutProcessed.end())
      continue;
    for (const SolvedEdge &In : Ins) {
      for (const SolvedEdge &Out : OutIt->second) {
        ++R.TransitiveObligations;
        AnnId Comp = D.compose(Out.Ann, In.Ann);
        if (!V.accounted(In.Src, Out.Dst, Comp))
          fail(R, "missing transitive conclusion " +
                      edgeStr(CS, In.Src, Out.Dst, Comp) + " from " +
                      edgeStr(CS, In.Src, In.Dst, In.Ann) + " and " +
                      edgeStr(CS, Out.Src, Out.Dst, Out.Ann));
      }
    }
  }

  // Walk the processed edges once for the per-edge rules.
  S.forEachDerivedEdge([&](ExprId Src, ExprId Dst, AnnId Ann,
                           bool Processed) {
    ++R.EdgesChecked;
    if (!Processed)
      return;
    const Expr SE = CS.expr(Src);
    const Expr DE = CS.expr(Dst);

    // Structural decomposition of matching cons-cons edges.
    if (SE.Kind == ExprKind::Cons && DE.Kind == ExprKind::Cons) {
      ++R.DecomposeObligations;
      if (SE.C != DE.C) {
        fail(R, "constructor mismatch survived in the edge set: " +
                    edgeStr(CS, Src, Dst, Ann));
        return;
      }
      for (size_t I = 0; I != SE.Args.size(); ++I) {
        VarId A = S.rep(SE.Args[I]);
        VarId B = S.rep(DE.Args[I]);
        ExprId AN = A < V.VarExpr.size() ? V.VarExpr[A] : InvalidExpr;
        ExprId BN = B < V.VarExpr.size() ? V.VarExpr[B] : InvalidExpr;
        bool Dropped = V.FilterUseless && D.isUseless(Ann);
        if (AN == InvalidExpr || BN == InvalidExpr) {
          if (!Dropped)
            fail(R, "decomposition argument variable has no node: " +
                        edgeStr(CS, Src, Dst, Ann));
          continue;
        }
        if (!V.accounted(AN, BN, Ann))
          fail(R, "missing decomposition conclusion " +
                      edgeStr(CS, AN, BN, Ann) + " from " +
                      edgeStr(CS, Src, Dst, Ann));
      }
      // The annotation obligation f∘a ⊆ b of the structural rule.
      auto It = V.FnVars.find(pack(SE.Alpha, DE.Alpha));
      if (It == V.FnVars.end() || !It->second.contains(Ann))
        fail(R, "missing function-variable constraint for " +
                    edgeStr(CS, Src, Dst, Ann));
    }
  });

  // Projection rule: for every ingested projection constraint
  // c^-i(Y) ⊆^g Z and every processed constructor edge
  // c^a(..Xi..) ⊆^f Y', the conclusion Xi ⊆^{g∘f} Z must be
  // accounted for.
  const std::vector<Constraint> &Cons = CS.constraints();
  size_t Ingested = S.ingestedConstraints();
  for (size_t Idx = 0; Idx < Ingested; ++Idx) {
    // A retracted constraint carries no obligations: its watcher was
    // removed and its cone invalidated (BidirectionalSolver::retract).
    if (CS.isRetracted(static_cast<uint32_t>(Idx)))
      continue;
    const Expr &L = CS.expr(Cons[Idx].Lhs);
    if (L.Kind != ExprKind::Proj)
      continue;
    const Expr &Rhs = CS.expr(Cons[Idx].Rhs);
    VarId Subject = S.rep(L.V);
    VarId Target = S.rep(Rhs.V);
    ExprId SubjNode =
        Subject < V.VarExpr.size() ? V.VarExpr[Subject] : InvalidExpr;
    if (SubjNode == InvalidExpr)
      continue; // the subject was never touched: no premises exist
    auto InIt = V.InProcessed.find(SubjNode);
    if (InIt == V.InProcessed.end())
      continue;
    for (const SolvedEdge &In : InIt->second) {
      const Expr &SrcE = CS.expr(In.Src);
      if (SrcE.Kind != ExprKind::Cons || SrcE.C != L.C)
        continue;
      ++R.ProjectionObligations;
      VarId Arg = S.rep(SrcE.Args[L.Index]);
      ExprId ArgNode =
          Arg < V.VarExpr.size() ? V.VarExpr[Arg] : InvalidExpr;
      ExprId TgtNode =
          Target < V.VarExpr.size() ? V.VarExpr[Target] : InvalidExpr;
      AnnId Comp = D.compose(Cons[Idx].Ann, In.Ann);
      bool Dropped = V.FilterUseless && D.isUseless(Comp);
      if (ArgNode == InvalidExpr || TgtNode == InvalidExpr) {
        if (!Dropped)
          fail(R, "projection conclusion variables have no nodes "
                  "(constraint " +
                      std::to_string(Idx) + ")");
        continue;
      }
      if (!V.accounted(ArgNode, TgtNode, Comp))
        fail(R, "missing projection conclusion " +
                    edgeStr(CS, ArgNode, TgtNode, Comp) +
                    " (constraint " + std::to_string(Idx) + ")");
    }
  }

  // Surface rule: every ingested non-projection constraint's
  // canonical edge must be accounted for.
  for (size_t Idx = 0; Idx < Ingested; ++Idx) {
    if (CS.isRetracted(static_cast<uint32_t>(Idx)))
      continue;
    const Expr &L = CS.expr(Cons[Idx].Lhs);
    if (L.Kind == ExprKind::Proj)
      continue;
    ++R.SurfaceObligations;
    // Canonicalize by representative substitution, without interning:
    // look the rewritten expression up in the certifier's own view of
    // the (already complete) expr table.
    auto canon = [&](ExprId E) -> ExprId {
      const Expr &Ex = CS.expr(E);
      switch (Ex.Kind) {
      case ExprKind::Var: {
        VarId Rp = S.rep(Ex.V);
        return Rp < V.VarExpr.size() ? V.VarExpr[Rp] : InvalidExpr;
      }
      case ExprKind::Cons: {
        bool Changed = false;
        for (VarId A : Ex.Args)
          Changed |= S.rep(A) != A;
        if (!Changed)
          return E;
        // Find the interned rewritten cons expression by scanning:
        // rare (only cycle-collapsed systems reach here), and the
        // certifier must not intern into the system.
        for (ExprId I = 0, N = CS.numExprs(); I != N; ++I) {
          const Expr &Cand = CS.expr(I);
          if (Cand.Kind != ExprKind::Cons || Cand.C != Ex.C ||
              Cand.Args.size() != Ex.Args.size())
            continue;
          bool Match = true;
          for (size_t J = 0; J != Ex.Args.size(); ++J)
            if (Cand.Args[J] != S.rep(Ex.Args[J])) {
              Match = false;
              break;
            }
          if (Match)
            return I;
        }
        return InvalidExpr;
      }
      case ExprKind::Proj:
        return InvalidExpr; // unreachable: filtered above
      }
      return InvalidExpr;
    };
    ExprId LC = canon(Cons[Idx].Lhs);
    ExprId RC = canon(Cons[Idx].Rhs);
    bool Dropped = V.FilterUseless && D.isUseless(Cons[Idx].Ann);
    if (LC == InvalidExpr || RC == InvalidExpr) {
      if (!Dropped)
        fail(R, "surface constraint " + std::to_string(Idx) +
                    " has no canonical nodes");
      continue;
    }
    if (!V.accounted(LC, RC, Cons[Idx].Ann))
      fail(R, "missing surface edge for constraint " +
                  std::to_string(Idx) + ": " +
                  edgeStr(CS, LC, RC, Cons[Idx].Ann));
  }

  return R;
}
