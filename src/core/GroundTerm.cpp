//===- core/GroundTerm.cpp - Annotated ground terms -------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/GroundTerm.h"

#include <sstream>

using namespace rasc;

GroundTerm rasc::appendAnn(const AnnotationDomain &D, GroundTerm T,
                           AnnId W) {
  T.Ann = D.compose(W, T.Ann);
  for (GroundTerm &Kid : T.Kids)
    Kid = appendAnn(D, std::move(Kid), W);
  return T;
}

bool rasc::sameSkeleton(const GroundTerm &A, const GroundTerm &B) {
  if (A.C != B.C || A.Kids.size() != B.Kids.size())
    return false;
  for (size_t I = 0; I != A.Kids.size(); ++I)
    if (!sameSkeleton(A.Kids[I], B.Kids[I]))
      return false;
  return true;
}

std::string rasc::toString(const ConstraintSystem &CS, const GroundTerm &T) {
  std::ostringstream OS;
  OS << CS.constructor(T.C).Name << "^" << CS.domain().toString(T.Ann);
  if (!T.Kids.empty()) {
    OS << "(";
    for (size_t I = 0; I != T.Kids.size(); ++I) {
      if (I)
        OS << ", ";
      OS << toString(CS, T.Kids[I]);
    }
    OS << ")";
  }
  return OS.str();
}
