//===- core/ConstraintSystem.cpp - Annotated set constraints ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintSystem.h"

#include <sstream>

using namespace rasc;

ExprId ConstraintSystem::intern(Expr E) const {
  uint64_t H = hashCombine(static_cast<uint64_t>(E.Kind),
                           (static_cast<uint64_t>(E.C) << 32) | E.Index);
  H = hashCombine(H, E.V);
  H = hashRange(E.Args.begin(), E.Args.end(), H);

  auto Range = ExprIds.equal_range(H);
  for (auto It = Range.first; It != Range.second; ++It) {
    const Expr &Cand = Exprs[It->second];
    if (Cand.Kind == E.Kind && Cand.C == E.C && Cand.Index == E.Index &&
        Cand.V == E.V && Cand.Args == E.Args)
      return It->second;
  }
  if (E.Kind == ExprKind::Cons)
    E.Alpha = NumFnVars++;
  ExprId Id = static_cast<ExprId>(Exprs.size());
  Exprs.push_back(std::move(E));
  ExprIds.emplace(H, Id);
  return Id;
}

Expected<ExprId> ConstraintSystem::varChecked(VarId V) const {
  if (V >= VarNames.size()) {
    LastDiag = Diag("variable id " + std::to_string(V) +
                    " out of range (system has " +
                    std::to_string(VarNames.size()) + " variables)");
    return *LastDiag;
  }
  return intern(Expr{ExprKind::Var, 0, 0, V, 0, {}});
}

Expected<ExprId> ConstraintSystem::consChecked(ConsId C,
                                               std::vector<VarId> Args) const {
  if (C >= Constructors.size()) {
    LastDiag = Diag("constructor id " + std::to_string(C) +
                    " out of range (system has " +
                    std::to_string(Constructors.size()) + " constructors)");
    return *LastDiag;
  }
  if (Args.size() != Constructors[C].Arity) {
    LastDiag = Diag("arity mismatch: constructor '" + Constructors[C].Name +
                    "' takes " + std::to_string(Constructors[C].Arity) +
                    " arguments, got " + std::to_string(Args.size()));
    return *LastDiag;
  }
  for (VarId A : Args)
    if (A >= VarNames.size()) {
      LastDiag = Diag("argument variable id " + std::to_string(A) +
                      " of constructor '" + Constructors[C].Name +
                      "' out of range");
      return *LastDiag;
    }
  return intern(Expr{ExprKind::Cons, C, 0, InvalidVar, 0, std::move(Args)});
}

Expected<ExprId> ConstraintSystem::projChecked(ConsId C, uint32_t Index,
                                               VarId Subject) const {
  if (C >= Constructors.size()) {
    LastDiag = Diag("constructor id " + std::to_string(C) +
                    " out of range (system has " +
                    std::to_string(Constructors.size()) + " constructors)");
    return *LastDiag;
  }
  if (Index >= Constructors[C].Arity) {
    LastDiag = Diag("projection index " + std::to_string(Index + 1) +
                    " out of range for constructor '" +
                    Constructors[C].Name + "' of arity " +
                    std::to_string(Constructors[C].Arity));
    return *LastDiag;
  }
  if (Subject >= VarNames.size()) {
    LastDiag = Diag("projection subject variable id " +
                    std::to_string(Subject) + " out of range");
    return *LastDiag;
  }
  return intern(Expr{ExprKind::Proj, C, Index, Subject, 0, {}});
}

std::optional<Diag> ConstraintSystem::addChecked(ExprId Lhs, ExprId Rhs,
                                                 AnnId Ann) {
  auto fail = [&](std::string Msg) {
    LastDiag = Diag(std::move(Msg));
    return LastDiag;
  };
  if (Lhs >= Exprs.size() || Rhs >= Exprs.size())
    return fail("constraint references an invalid expression id");
  if (Ann >= Domain.size())
    return fail("annotation id " + std::to_string(Ann) +
                " out of range (domain has " +
                std::to_string(Domain.size()) + " classes)");
  if (Exprs[Rhs].Kind == ExprKind::Proj)
    return fail("projection on the right-hand side of a constraint");
  if (Exprs[Lhs].Kind == ExprKind::Proj &&
      Exprs[Rhs].Kind != ExprKind::Var)
    return fail("projection constraints need a variable right-hand side; "
                "introduce an auxiliary variable");
  ConstraintList.push_back({Lhs, Rhs, Ann});
  return std::nullopt;
}

std::string ConstraintSystem::exprToString(ExprId Id) const {
  const Expr &E = expr(Id);
  std::ostringstream OS;
  switch (E.Kind) {
  case ExprKind::Var:
    OS << varName(E.V);
    break;
  case ExprKind::Cons:
    OS << constructor(E.C).Name;
    if (!E.Args.empty()) {
      OS << "(";
      for (size_t I = 0; I != E.Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << varName(E.Args[I]);
      }
      OS << ")";
    }
    break;
  case ExprKind::Proj:
    OS << constructor(E.C).Name << "^-" << (E.Index + 1) << "("
       << varName(E.V) << ")";
    break;
  }
  return OS.str();
}
