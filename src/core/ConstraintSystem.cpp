//===- core/ConstraintSystem.cpp - Annotated set constraints ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "core/ConstraintSystem.h"

#include <sstream>

using namespace rasc;

ExprId ConstraintSystem::intern(Expr E) const {
  uint64_t H = hashCombine(static_cast<uint64_t>(E.Kind),
                           (static_cast<uint64_t>(E.C) << 32) | E.Index);
  H = hashCombine(H, E.V);
  H = hashRange(E.Args.begin(), E.Args.end(), H);

  auto Range = ExprIds.equal_range(H);
  for (auto It = Range.first; It != Range.second; ++It) {
    const Expr &Cand = Exprs[It->second];
    if (Cand.Kind == E.Kind && Cand.C == E.C && Cand.Index == E.Index &&
        Cand.V == E.V && Cand.Args == E.Args)
      return It->second;
  }
  if (E.Kind == ExprKind::Cons)
    E.Alpha = NumFnVars++;
  ExprId Id = static_cast<ExprId>(Exprs.size());
  Exprs.push_back(std::move(E));
  ExprIds.emplace(H, Id);
  return Id;
}

std::string ConstraintSystem::exprToString(ExprId Id) const {
  const Expr &E = expr(Id);
  std::ostringstream OS;
  switch (E.Kind) {
  case ExprKind::Var:
    OS << varName(E.V);
    break;
  case ExprKind::Cons:
    OS << constructor(E.C).Name;
    if (!E.Args.empty()) {
      OS << "(";
      for (size_t I = 0; I != E.Args.size(); ++I) {
        if (I)
          OS << ", ";
        OS << varName(E.Args[I]);
      }
      OS << ")";
    }
    break;
  case ExprKind::Proj:
    OS << constructor(E.C).Name << "^-" << (E.Index + 1) << "("
       << varName(E.V) << ")";
    break;
  }
  return OS.str();
}
