//===- core/Snapshot.h - Solver checkpoint format ---------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's crash-safe snapshot format: constants shared between
/// the save/restore implementation (Snapshot.cpp, defining
/// BidirectionalSolver::saveCheckpoint / restore / Create) and the
/// durability tests. The container framing (magic, per-section CRC32,
/// atomic temp+fsync+rename commit) lives in support/Serialize.h; this
/// header pins the section vocabulary and the version.
///
/// A snapshot captures the *complete* resumable closure state:
///
///   META  options fingerprint (semantic flags + resolved dedup
///         backend), effective status, domain fingerprint
///         (size/identity/accepting+useless bits), system shape
///         (vars, constructors with arity + name hash, expr and
///         fn-var counts), ingested-constraint count, processed
///         prefix length
///   EXPR  full interned expression table (the solver interns
///         canonicalized expressions mid-solve; restore verifies the
///         surface prefix and replays the tail through the checked
///         builders, asserting identical ids and function variables)
///   CONS  the ingested constraint prefix plus per-constraint
///         retracted flags (v2+), verified against the caller's
///         system on restore
///   UNIF  union-find forest (cycle-elimination representatives)
///   EDGE  the edge arena = worklist, in derivation order; adjacency
///         lists and processed-prefix counters are deterministically
///         rebuilt from it
///   CONF  constructor-mismatch conflict edges
///   WTCH  projection watchers
///   DEDU  the full dedup relation — a strict superset of EDGE∪CONF
///         (useless-filtered edges claim dedup bits without entering
///         the arena), so it must be serialized, not rebuilt
///   FNVR  function-variable constraints (their dedup is replayed)
///   STAT  SolverStats
///   PROV  per-edge provenance records (only when TrackProvenance)
///
/// Restore is transactional: every section is validated (ranges,
/// cross-references, dedup replay freshness) before the solver is
/// mutated, the restored closure is then certified independently
/// (core/Certifier.h), and on *any* diagnostic the solver is left in
/// its fresh state so the caller can fall back to solving from
/// scratch. A reader newer than the writer accepts old versions it
/// knows; an unknown (newer) version is rejected with a Diag — never
/// guessed at.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_SNAPSHOT_H
#define RASC_CORE_SNAPSHOT_H

#include "support/Serialize.h"

namespace rasc {
namespace snapshot {

/// Bumped on any incompatible layout change; restore rejects versions
/// it does not know. Version history:
///   1  initial layout
///   2  CONS gains a per-constraint retracted flag byte; STAT gains
///      the three retraction counters (Retractions, RetractedEdges,
///      RequeuedEdges). Version-1 snapshots restore with all flags
///      clear and the counters zero.
inline constexpr uint32_t FormatVersion = 2;

inline constexpr uint32_t TagMeta = sectionTag("META");
inline constexpr uint32_t TagExprs = sectionTag("EXPR");
inline constexpr uint32_t TagConstraints = sectionTag("CONS");
inline constexpr uint32_t TagUnionFind = sectionTag("UNIF");
inline constexpr uint32_t TagEdges = sectionTag("EDGE");
inline constexpr uint32_t TagConflicts = sectionTag("CONF");
inline constexpr uint32_t TagWatchers = sectionTag("WTCH");
inline constexpr uint32_t TagDedup = sectionTag("DEDU");
inline constexpr uint32_t TagFnVars = sectionTag("FNVR");
inline constexpr uint32_t TagStats = sectionTag("STAT");
inline constexpr uint32_t TagProvenance = sectionTag("PROV");

} // namespace snapshot
} // namespace rasc

#endif // RASC_CORE_SNAPSHOT_H
