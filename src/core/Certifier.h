//===- core/Certifier.h - Independent fixpoint certification ----*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent checker for a claimed (possibly partial) fixpoint of
/// the bidirectional closure: given a solver, it re-verifies in one
/// pass that every resolution rule of Section 3 is saturated over the
/// *processed* edges —
///
///   transitivity   x ⊆^f Y, Y ⊆^g z    =>  x ⊆^{g∘f} z   (Y a variable)
///   decomposition  c^a(..) ⊆^f c^b(..) =>  arg edges + f∘a ⊆ b
///   projection     c^a(..Xi..) ⊆^f Y, c^-i(Y) ⊆^g Z  =>  Xi ⊆^{g∘f} Z
///   surface        every ingested constraint's canonical edge present
///
/// — using only the solver's public read-only views (the derived-edge
/// enumeration, conflicts, fn-var constraints, representatives) and
/// its own hash maps: no dedup table, adjacency list, or prefix
/// counter is trusted. Run after every snapshot restore and exposed as
/// `rasctool --certify`, so a corrupted-but-CRC-colliding or
/// version-skewed snapshot degrades to "recompute from scratch"
/// instead of a wrong answer. Cost is proportional to the number of
/// 2-path joins the closure itself performed.
///
/// For an interrupted solver, certification covers the processed
/// prefix (the solver's resumable invariant: a pending edge imposes no
/// obligations yet); a complete solve has everything processed, so the
/// check is then full saturation.
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_CERTIFIER_H
#define RASC_CORE_CERTIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace rasc {

class BidirectionalSolver;

/// Outcome of certifyFixpoint: Ok plus per-rule obligation counts and
/// a capped list of rendered violations.
struct CertificationReport {
  bool Ok = true;
  uint64_t EdgesChecked = 0;           ///< derived edges visited
  uint64_t TransitiveObligations = 0;  ///< 2-path joins re-verified
  uint64_t DecomposeObligations = 0;   ///< structural rule instances
  uint64_t ProjectionObligations = 0;  ///< projection rule instances
  uint64_t SurfaceObligations = 0;     ///< ingested constraints checked
  std::vector<std::string> Failures;   ///< rendered, capped at MaxFailures

  static constexpr size_t MaxFailures = 16;

  /// One-line human-readable result.
  std::string summary() const;
};

/// Re-verifies the solver's claimed closure as described above.
CertificationReport certifyFixpoint(const BidirectionalSolver &S);

} // namespace rasc

#endif // RASC_CORE_CERTIFIER_H
