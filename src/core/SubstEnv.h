//===- core/SubstEnv.h - Parametric annotations -----------------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Substitution environments (paper Section 6.4) support *parametric*
/// annotations such as open(x)/close(x): the property automaton is
/// conceptually instantiated once per parameter label occurring in the
/// program, but the instantiation happens lazily during constraint
/// resolution rather than up front (the automaton is compiled away
/// before the program is seen).
///
/// An environment
///
///   [ (x:fd1) -> f;  (x:fd2) -> g  |  r ]
///
/// maps instantiated parameter entries to representative functions of
/// the base automaton and carries a *residual* function r recording
/// non-parametric transitions; the residual has already been folded
/// into the existing entries. Looking up an entry key k returns the
/// value of the largest entry k is compatible with, or the residual.
/// Composition is pointwise over the merged entry domains:
///
///   (phi1 ∘ phi2)(i) = phi1(i) ∘ phi2(i)
///
/// Entries with multiple parameters (Section 6.4.2) merge when
/// compatible: all common parameter/label pairs agree.
///
/// SubstEnvDomain is itself an AnnotationDomain (environments are
/// interned to dense ids), so the generic solver handles parametric
/// annotations unchanged; it degrades to the base domain when no
/// parametric annotations occur (an empty environment is just its
/// residual).
///
//===----------------------------------------------------------------------===//

#ifndef RASC_CORE_SUBSTENV_H
#define RASC_CORE_SUBSTENV_H

#include "core/Annotation.h"
#include "support/Hashing.h"
#include "support/StringPool.h"

#include <unordered_map>
#include <vector>

namespace rasc {

/// An instantiated parameter binding: parameter name x bound to a
/// program label such as fd1 (both interned).
struct ParamBinding {
  uint32_t Param;
  uint32_t Label;

  friend bool operator==(const ParamBinding &A, const ParamBinding &B) {
    return A.Param == B.Param && A.Label == B.Label;
  }
  friend bool operator<(const ParamBinding &A, const ParamBinding &B) {
    return A.Param != B.Param ? A.Param < B.Param : A.Label < B.Label;
  }
};

/// One entry of a substitution environment: a sorted, duplicate-free
/// key of bindings and the representative function it maps to.
struct SubstEntry {
  std::vector<ParamBinding> Key;
  AnnId Value;

  friend bool operator==(const SubstEntry &A, const SubstEntry &B) {
    return A.Value == B.Value && A.Key == B.Key;
  }
};

/// The annotation domain of substitution environments over a base
/// domain (normally a MonoidDomain).
class SubstEnvDomain final : public AnnotationDomain {
public:
  explicit SubstEnvDomain(const AnnotationDomain &Base);

  /// Interns a parameter or label name.
  uint32_t name(std::string_view S) { return Names.intern(S); }
  const std::string &nameStr(uint32_t Id) const { return Names.str(Id); }

  /// Lifts a base element to the empty environment [ | F ].
  AnnId lift(AnnId BaseFn);

  /// The environment for one parametric transition: the symbol's
  /// base function under the given bindings, identity residual.
  /// E.g. open(fd1):  [ (x:fd1) -> f_open | f_eps ].
  AnnId instantiate(std::vector<ParamBinding> Key, AnnId BaseFn);

  /// Looks up what \p Env does to entry key \p Key: value of the
  /// largest compatible entry, or the residual.
  AnnId lookup(AnnId Env, const std::vector<ParamBinding> &Key) const;

  /// The residual (non-parametric effect) of an environment.
  AnnId residual(AnnId Env) const { return Envs[Env].Residual; }

  /// The explicit entries of an environment.
  const std::vector<SubstEntry> &entries(AnnId Env) const {
    return Envs[Env].Entries;
  }

  // AnnotationDomain interface.
  AnnId identity() const override { return IdentityEnv; }
  AnnId compose(AnnId F, AnnId G) const override;
  bool isUseless(AnnId F) const override;
  bool isAccepting(AnnId F) const override;
  size_t size() const override { return Envs.size(); }
  std::string toString(AnnId F) const override;

  const AnnotationDomain &base() const { return Base; }

private:
  struct Env {
    AnnId Residual;
    std::vector<SubstEntry> Entries; // sorted by key
  };

  AnnId intern(Env E) const;
  static bool compatible(const std::vector<ParamBinding> &I,
                         const std::vector<ParamBinding> &J);
  AnnId lookupIn(const Env &E,
                 const std::vector<ParamBinding> &Key) const;

  const AnnotationDomain &Base;
  StringPool Names;
  AnnId IdentityEnv;

  mutable std::vector<Env> Envs;
  mutable std::unordered_map<uint64_t, AnnId> EnvIds; // hash -> first id
  mutable std::unordered_map<uint64_t, AnnId> ComposeMemo;
};

} // namespace rasc

#endif // RASC_CORE_SUBSTENV_H
