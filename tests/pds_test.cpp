//===- tests/pds_test.cpp - Pushdown reachability tests ---------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "pds/Pds.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>

using namespace rasc;

namespace {

/// Brute-force reachability: explores configurations by direct rule
/// application, bounded by stack depth and step count.
std::set<std::pair<PdsState, std::vector<StackSym>>>
explore(const Pds &P, PdsState P0, std::vector<StackSym> W0,
        size_t MaxDepth, size_t MaxSteps) {
  std::set<std::pair<PdsState, std::vector<StackSym>>> Seen;
  std::deque<std::pair<PdsState, std::vector<StackSym>>> Work;
  Work.emplace_back(P0, std::move(W0));
  Seen.insert(Work.front());
  size_t Steps = 0;
  while (!Work.empty() && Steps++ < MaxSteps) {
    auto [S, W] = Work.front();
    Work.pop_front();
    if (W.empty())
      continue;
    for (const PdsRule &R : P.rules()) {
      if (R.P != S || R.Gamma != W.front())
        continue;
      std::vector<StackSym> W2(R.Push.begin(), R.Push.end());
      W2.insert(W2.end(), W.begin() + 1, W.end());
      if (W2.size() > MaxDepth)
        continue;
      auto Config = std::make_pair(R.Q, std::move(W2));
      if (Seen.insert(Config).second)
        Work.push_back(std::move(Config));
    }
  }
  return Seen;
}

/// Singleton configuration automaton for ⟨P0, W0⟩.
ConfigAutomaton singleton(const Pds &P, PdsState P0,
                          std::span<const StackSym> W0) {
  ConfigAutomaton A(P.numControls());
  uint32_t Cur = P0;
  for (StackSym S : W0) {
    uint32_t Next = A.addState();
    A.addTransition(Cur, S, Next);
    Cur = Next;
  }
  if (W0.empty()) {
    // Accept the empty stack from P0 via a fresh accepting state
    // reached by nothing: P0 itself must accept.
    A.setAccepting(P0);
  } else {
    A.setAccepting(Cur);
  }
  return A;
}

TEST(Pds, SchwoonExample) {
  // The classic example: from ⟨p0, g0⟩ the system loops through
  // pushes and pops.
  Pds P;
  PdsState P0 = P.addControlState();
  PdsState P1 = P.addControlState();
  PdsState P2 = P.addControlState();
  StackSym G0 = P.addStackSymbol();
  StackSym G1 = P.addStackSymbol();
  StackSym G2 = P.addStackSymbol();
  P.addRule(P0, G0, P1, {G1, G0});
  P.addRule(P1, G1, P2, {G2, G0});
  P.addRule(P2, G2, P0, {G1});
  P.addRule(P0, G1, P0, {});

  std::vector<StackSym> Init{G0};
  ConfigAutomaton A = postStar(P, singleton(P, P0, Init));

  // Spot-check reachable and unreachable configurations.
  EXPECT_TRUE(A.accepts(P0, std::vector<StackSym>{G0}));
  EXPECT_TRUE(A.accepts(P1, std::vector<StackSym>{G1, G0}));
  EXPECT_TRUE(A.accepts(P2, std::vector<StackSym>{G2, G0, G0}));
  EXPECT_TRUE(A.accepts(P0, std::vector<StackSym>{G1, G0, G0}));
  EXPECT_TRUE(A.accepts(P0, std::vector<StackSym>{G0, G0}));
  EXPECT_FALSE(A.accepts(P2, std::vector<StackSym>{G0}));
  EXPECT_FALSE(A.accepts(P1, std::vector<StackSym>{G0}));

  // pre* duality on the same system.
  std::vector<StackSym> Target{G1, G0, G0};
  ConfigAutomaton B = preStar(P, singleton(P, P0, Target));
  EXPECT_TRUE(B.accepts(P0, std::vector<StackSym>{G0}));
}

TEST(Pds, PopToEmptyStack) {
  Pds P;
  PdsState S = P.addControlState();
  PdsState T = P.addControlState();
  StackSym G = P.addStackSymbol();
  P.addRule(S, G, T, {});
  std::vector<StackSym> Init{G};
  ConfigAutomaton A = postStar(P, singleton(P, S, Init));
  EXPECT_TRUE(A.accepts(T, std::vector<StackSym>{}));
  EXPECT_FALSE(A.accepts(S, std::vector<StackSym>{}));
  EXPECT_TRUE(A.anyAccepted(T));
}

TEST(Pds, ShortestWitness) {
  Pds P;
  PdsState S = P.addControlState();
  StackSym A0 = P.addStackSymbol();
  StackSym A1 = P.addStackSymbol();
  P.addRule(S, A0, S, {A1, A0}); // grow the stack
  std::vector<StackSym> Init{A0};
  ConfigAutomaton A = postStar(P, singleton(P, S, Init));
  auto W = A.shortestAccepted(S);
  ASSERT_TRUE(W.has_value());
  EXPECT_EQ(W->size(), 1u); // ⟨S, A0⟩ itself
  EXPECT_TRUE(A.accepts(S, *W));
}

class PdsRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PdsRandom, PostStarMatchesBruteForce) {
  Rng R(GetParam());
  Pds P;
  unsigned NumControls = 2 + R.below(2);
  unsigned NumSyms = 2 + R.below(2);
  for (unsigned I = 0; I != NumControls; ++I)
    P.addControlState();
  for (unsigned I = 0; I != NumSyms; ++I)
    P.addStackSymbol();
  unsigned NumRules = 3 + R.below(5);
  for (unsigned I = 0; I != NumRules; ++I) {
    PdsState From = static_cast<PdsState>(R.below(NumControls));
    StackSym G = static_cast<StackSym>(R.below(NumSyms));
    PdsState To = static_cast<PdsState>(R.below(NumControls));
    std::vector<StackSym> Push;
    switch (R.below(3)) {
    case 0:
      break;
    case 1:
      Push = {static_cast<StackSym>(R.below(NumSyms))};
      break;
    case 2:
      Push = {static_cast<StackSym>(R.below(NumSyms)),
              static_cast<StackSym>(R.below(NumSyms))};
      break;
    }
    P.addRule(From, G, To, std::move(Push));
  }

  std::vector<StackSym> W0{static_cast<StackSym>(R.below(NumSyms))};
  ConfigAutomaton A = postStar(P, singleton(P, 0, W0));
  // Deep exploration vs shallow membership queries keeps the bounded
  // brute force exact for the configurations we compare.
  auto Reachable = explore(P, 0, W0, /*MaxDepth=*/12, /*MaxSteps=*/200000);

  for (const auto &[S, W] : Reachable) {
    if (W.size() > 3)
      continue;
    EXPECT_TRUE(A.accepts(S, W)) << "seed " << GetParam();
  }

  // Unreachable short configurations must be rejected.
  for (PdsState S = 0; S != NumControls; ++S)
    for (StackSym G0 = 0; G0 != NumSyms; ++G0)
      for (StackSym G1 = 0; G1 != NumSyms; ++G1) {
        std::vector<StackSym> W{G0, G1};
        bool InBrute = Reachable.count({S, W}) != 0;
        EXPECT_EQ(A.accepts(S, W), InBrute)
            << "seed " << GetParam() << " state " << S;
      }
}

TEST_P(PdsRandom, PrePostDuality) {
  // ⟨p1, w1⟩ ∈ post*({⟨p0, w0⟩}) iff ⟨p0, w0⟩ ∈ pre*({⟨p1, w1⟩}).
  Rng R(GetParam() ^ 0xd0a11);
  Pds P;
  unsigned NumControls = 2 + R.below(2);
  unsigned NumSyms = 2;
  for (unsigned I = 0; I != NumControls; ++I)
    P.addControlState();
  for (unsigned I = 0; I != NumSyms; ++I)
    P.addStackSymbol();
  for (unsigned I = 0, E = 3 + R.below(5); I != E; ++I) {
    std::vector<StackSym> Push;
    for (unsigned K = 0, KE = R.below(3); K != KE; ++K)
      Push.push_back(static_cast<StackSym>(R.below(NumSyms)));
    P.addRule(static_cast<PdsState>(R.below(NumControls)),
              static_cast<StackSym>(R.below(NumSyms)),
              static_cast<PdsState>(R.below(NumControls)),
              std::move(Push));
  }

  auto randConfig = [&] {
    std::vector<StackSym> W;
    for (unsigned I = 0, E = 1 + R.below(3); I != E; ++I)
      W.push_back(static_cast<StackSym>(R.below(NumSyms)));
    return std::make_pair(static_cast<PdsState>(R.below(NumControls)), W);
  };

  for (int Trial = 0; Trial != 10; ++Trial) {
    auto [P0, W0] = randConfig();
    auto [P1, W1] = randConfig();
    ConfigAutomaton Post = postStar(P, singleton(P, P0, W0));
    ConfigAutomaton Pre = preStar(P, singleton(P, P1, W1));
    EXPECT_EQ(Post.accepts(P1, W1), Pre.accepts(P0, W0))
        << "seed " << GetParam() << " trial " << Trial;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PdsRandom,
                         ::testing::Range(uint64_t(1), uint64_t(40)));

} // namespace
