//===- tests/solver_property_test.cpp - Differential solver tests -*- C++ -*-//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential tests: the optimized bidirectional solver
/// against the naive rule-to-fixpoint reference on small random
/// constraint systems over random annotation automata, plus
/// option-matrix agreement (filtering, cycle elimination must not
/// change query answers).
///
//===----------------------------------------------------------------------===//

#include "automata/DfaOps.h"
#include "core/Domains.h"
#include "core/ReferenceSolver.h"
#include "core/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace rasc;

namespace {

/// Builds a random total DFA with \p NumStates states over \p NumSyms
/// symbols, minimized.
Dfa randomDfa(Rng &R, unsigned NumStates, unsigned NumSyms) {
  DfaBuilder B;
  std::vector<SymbolId> Syms;
  for (unsigned I = 0; I != NumSyms; ++I)
    Syms.push_back(B.addSymbol("s" + std::to_string(I)));
  for (unsigned I = 0; I != NumStates; ++I)
    B.addState();
  B.setStart(0);
  bool AnyAccept = false;
  for (unsigned I = 0; I != NumStates; ++I) {
    if (R.chance(1, 2)) {
      B.setAccepting(I);
      AnyAccept = true;
    }
    for (SymbolId S : Syms)
      B.addTransition(I, S, static_cast<StateId>(R.below(NumStates)));
  }
  if (!AnyAccept)
    B.setAccepting(static_cast<StateId>(R.below(NumStates)));
  return minimize(B.build());
}

struct RandomSystem {
  std::unique_ptr<MonoidDomain> Dom;
  std::unique_ptr<ConstraintSystem> CS;
  std::vector<ConsId> Constants;
  std::vector<ConsId> Constructors; // arity >= 1
  std::vector<VarId> Vars;
};

/// Appends \p NumCons random constraints (all surface forms, including
/// projections) to an existing system.
void addRandomConstraints(RandomSystem &Sys, Rng &R, unsigned NumCons) {
  auto randVar = [&] {
    return Sys.Vars[R.below(Sys.Vars.size())];
  };
  auto randAnn = [&]() -> AnnId {
    if (R.chance(1, 3))
      return Sys.Dom->identity();
    SymbolId S =
        static_cast<SymbolId>(R.below(Sys.Dom->machine().numSymbols()));
    return Sys.Dom->symbolAnn(S);
  };
  auto randCons = [&]() -> ExprId {
    ConsId C = Sys.Constructors[R.below(Sys.Constructors.size())];
    std::vector<VarId> Args;
    for (uint32_t I = 0; I != Sys.CS->constructor(C).Arity; ++I)
      Args.push_back(randVar());
    return Sys.CS->cons(C, std::move(Args));
  };

  for (unsigned I = 0; I != NumCons; ++I) {
    switch (R.below(6)) {
    case 0:
      Sys.CS->add(Sys.CS->cons(Sys.Constants[R.below(Sys.Constants.size())]),
                  Sys.CS->var(randVar()), randAnn());
      break;
    case 1:
    case 2:
      Sys.CS->add(Sys.CS->var(randVar()), Sys.CS->var(randVar()),
                  randAnn());
      break;
    case 3:
      Sys.CS->add(randCons(), Sys.CS->var(randVar()), randAnn());
      break;
    case 4: {
      Sys.CS->add(Sys.CS->var(randVar()), randCons(), randAnn());
      break;
    }
    case 5: {
      ConsId C = Sys.Constructors[R.below(Sys.Constructors.size())];
      uint32_t Index =
          static_cast<uint32_t>(R.below(Sys.CS->constructor(C).Arity));
      Sys.CS->add(Sys.CS->proj(C, Index, randVar()),
                  Sys.CS->var(randVar()), randAnn());
      break;
    }
    }
  }
}

/// Domain, symbols, and variables only — no constraints yet.
RandomSystem randomSkeleton(Rng &R) {
  RandomSystem Sys;
  Sys.Dom = std::make_unique<MonoidDomain>(
      randomDfa(R, 2 + R.below(3), 2 + R.below(2)));
  Sys.CS = std::make_unique<ConstraintSystem>(*Sys.Dom);

  unsigned NumConsts = 1 + R.below(2);
  for (unsigned I = 0; I != NumConsts; ++I)
    Sys.Constants.push_back(
        Sys.CS->addConstant("k" + std::to_string(I)));
  unsigned NumCtors = 1 + R.below(2);
  for (unsigned I = 0; I != NumCtors; ++I)
    Sys.Constructors.push_back(Sys.CS->addConstructor(
        "c" + std::to_string(I), 1 + static_cast<uint32_t>(R.below(2))));

  unsigned NumVars = 3 + R.below(5);
  for (unsigned I = 0; I != NumVars; ++I)
    Sys.Vars.push_back(Sys.CS->freshVar());
  return Sys;
}

RandomSystem randomSystem(Rng &R) {
  RandomSystem Sys = randomSkeleton(R);
  addRandomConstraints(Sys, R, 4 + R.below(10));
  return Sys;
}

class SolverDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverDifferential, MatchesReference) {
  Rng R(GetParam());
  RandomSystem Sys = randomSystem(R);

  SolverOptions Opts;
  Opts.FilterUseless = false; // reference does not filter
  Opts.CycleElimination = false;
  BidirectionalSolver Fast(*Sys.CS, Opts);
  BidirectionalSolver::Status St = Fast.solve();
  ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();
  EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved);

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      std::vector<AnnId> A = Fast.constantAnnotations(K, V);
      std::sort(A.begin(), A.end());
      std::vector<AnnId> B = Ref.constantAnnotations(K, V);
      EXPECT_EQ(A, B) << "constant " << Sys.CS->constructor(K).Name
                      << " in " << Sys.CS->varName(V) << " (seed "
                      << GetParam() << ")";
    }
}

TEST_P(SolverDifferential, OptionsDoNotChangeQueries) {
  Rng R(GetParam() ^ 0xabcdef);
  RandomSystem Sys = randomSystem(R);

  SolverOptions Plain;
  Plain.FilterUseless = false;
  Plain.CycleElimination = false;
  BidirectionalSolver A(*Sys.CS, Plain);
  A.solve();

  SolverOptions Tuned;
  Tuned.FilterUseless = true;
  Tuned.CycleElimination = true;
  Tuned.EagerFunctionVars = true;
  BidirectionalSolver B(*Sys.CS, Tuned);
  B.solve();

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      // Filtering drops non-accepting classes only, so the entailment
      // answers must agree even though the raw sets may differ.
      EXPECT_EQ(A.entailsConstant(K, V), B.entailsConstant(K, V))
          << "seed " << GetParam();
      // Accepting classes must match exactly.
      auto Accepting = [&](const std::vector<AnnId> &Anns) {
        std::vector<AnnId> Out;
        for (AnnId F : Anns)
          if (Sys.Dom->isAccepting(F))
            Out.push_back(F);
        std::sort(Out.begin(), Out.end());
        return Out;
      };
      EXPECT_EQ(Accepting(A.constantAnnotations(K, V)),
                Accepting(B.constantAnnotations(K, V)))
          << "seed " << GetParam();
    }
}

TEST_P(SolverDifferential, DedupBackendsMatchReference) {
  // Both edge-dedup backends (annotation bitsets and per-destination
  // flat sets) must compute the identical closure; Auto merely picks
  // between them by domain size.
  Rng R(GetParam() ^ 0xded09);
  RandomSystem Sys = randomSystem(R);

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();

  for (SolverOptions::DedupBackend Backend :
       {SolverOptions::DedupBackend::Bitset,
        SolverOptions::DedupBackend::FlatSet}) {
    SolverOptions Opts;
    Opts.FilterUseless = false;
    Opts.CycleElimination = false;
    Opts.Dedup = Backend;
    BidirectionalSolver Fast(*Sys.CS, Opts);
    BidirectionalSolver::Status St = Fast.solve();
    ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);
    EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved)
        << "seed " << GetParam();

    for (ConsId K : Sys.Constants)
      for (VarId V : Sys.Vars) {
        std::vector<AnnId> A = Fast.constantAnnotations(K, V);
        std::sort(A.begin(), A.end());
        EXPECT_EQ(A, Ref.constantAnnotations(K, V))
            << "backend "
            << (Backend == SolverOptions::DedupBackend::Bitset ? "bitset"
                                                               : "flatset")
            << ", seed " << GetParam();
      }
  }
}

TEST_P(SolverDifferential, OnlineSolveMatchesFromScratch) {
  // Constraints appended after a solve() must be picked up by the next
  // solve() and land in the same least solution as solving everything
  // from scratch (and as the reference). The generator emits
  // projection constraints too, so the watcher-replay path in ingest
  // is exercised with a half-closed graph.
  Rng R(GetParam() ^ 0x0411e);
  RandomSystem Sys = randomSkeleton(R);
  unsigned FirstBatch = 2 + R.below(6);
  unsigned SecondBatch = 2 + R.below(6);

  SolverOptions Opts;
  Opts.FilterUseless = false;
  Opts.CycleElimination = false;

  addRandomConstraints(Sys, R, FirstBatch);
  BidirectionalSolver Online(*Sys.CS, Opts);
  ASSERT_NE(Online.solve(), BidirectionalSolver::Status::EdgeLimit);

  addRandomConstraints(Sys, R, SecondBatch);
  BidirectionalSolver::Status St = Online.solve();
  ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);

  BidirectionalSolver Scratch(*Sys.CS, Opts);
  EXPECT_EQ(Scratch.solve(), St) << "seed " << GetParam();

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();
  EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved)
      << "seed " << GetParam();

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      std::vector<AnnId> A = Online.constantAnnotations(K, V);
      std::vector<AnnId> B = Scratch.constantAnnotations(K, V);
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      EXPECT_EQ(A, B) << "online vs scratch, seed " << GetParam();
      EXPECT_EQ(A, Ref.constantAnnotations(K, V))
          << "online vs reference, seed " << GetParam();
    }
}

TEST_P(SolverDifferential, AtomReachabilityIncludesTopLevel) {
  // Invariant: top-level constant annotations are a subset of the
  // PN-reachability annotations (the atom at nesting depth zero).
  Rng R(GetParam() ^ 0x5eed);
  RandomSystem Sys = randomSystem(R);
  BidirectionalSolver S(*Sys.CS);
  if (S.solve() == BidirectionalSolver::Status::EdgeLimit)
    GTEST_SKIP();
  for (ConsId K : Sys.Constants) {
    AtomReachability AR = S.atomReachability(K);
    for (VarId V : Sys.Vars) {
      const std::vector<AnnId> &All = AR.annotations(V);
      for (AnnId F : S.constantAnnotations(K, V))
        EXPECT_NE(std::find(All.begin(), All.end(), F), All.end())
            << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverDifferential,
                         ::testing::Range(uint64_t(1), uint64_t(60)));

} // namespace
