//===- tests/solver_property_test.cpp - Differential solver tests -*- C++ -*-//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential tests: the optimized bidirectional solver
/// against the naive rule-to-fixpoint reference on small random
/// constraint systems over random annotation automata, plus
/// option-matrix agreement (filtering, cycle elimination must not
/// change query answers).
///
//===----------------------------------------------------------------------===//

#include "TestSystems.h"
#include "core/ReferenceSolver.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace rasc;
using testgen::addRandomConstraints;
using testgen::RandomSystem;
using testgen::randomSkeleton;
using testgen::randomSystem;

namespace {

class SolverDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverDifferential, MatchesReference) {
  Rng R(GetParam());
  RandomSystem Sys = randomSystem(R);

  SolverOptions Opts;
  Opts.FilterUseless = false; // reference does not filter
  Opts.CycleElimination = false;
  BidirectionalSolver Fast(*Sys.CS, Opts);
  BidirectionalSolver::Status St = Fast.solve();
  ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();
  EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved);

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      std::vector<AnnId> A = Fast.constantAnnotations(K, V);
      std::sort(A.begin(), A.end());
      std::vector<AnnId> B = Ref.constantAnnotations(K, V);
      EXPECT_EQ(A, B) << "constant " << Sys.CS->constructor(K).Name
                      << " in " << Sys.CS->varName(V) << " (seed "
                      << GetParam() << ")";
    }
}

TEST_P(SolverDifferential, OptionsDoNotChangeQueries) {
  Rng R(GetParam() ^ 0xabcdef);
  RandomSystem Sys = randomSystem(R);

  SolverOptions Plain;
  Plain.FilterUseless = false;
  Plain.CycleElimination = false;
  BidirectionalSolver A(*Sys.CS, Plain);
  A.solve();

  SolverOptions Tuned;
  Tuned.FilterUseless = true;
  Tuned.CycleElimination = true;
  Tuned.EagerFunctionVars = true;
  BidirectionalSolver B(*Sys.CS, Tuned);
  B.solve();

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      // Filtering drops non-accepting classes only, so the entailment
      // answers must agree even though the raw sets may differ.
      EXPECT_EQ(A.entailsConstant(K, V), B.entailsConstant(K, V))
          << "seed " << GetParam();
      // Accepting classes must match exactly.
      auto Accepting = [&](const std::vector<AnnId> &Anns) {
        std::vector<AnnId> Out;
        for (AnnId F : Anns)
          if (Sys.Dom->isAccepting(F))
            Out.push_back(F);
        std::sort(Out.begin(), Out.end());
        return Out;
      };
      EXPECT_EQ(Accepting(A.constantAnnotations(K, V)),
                Accepting(B.constantAnnotations(K, V)))
          << "seed " << GetParam();
    }
}

TEST_P(SolverDifferential, DedupBackendsMatchReference) {
  // Both edge-dedup backends (annotation bitsets and per-destination
  // flat sets) must compute the identical closure; Auto merely picks
  // between them by domain size.
  Rng R(GetParam() ^ 0xded09);
  RandomSystem Sys = randomSystem(R);

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();

  for (SolverOptions::DedupBackend Backend :
       {SolverOptions::DedupBackend::Bitset,
        SolverOptions::DedupBackend::FlatSet}) {
    SCOPED_TRACE(testgen::seedContext(GetParam(), Backend));
    SolverOptions Opts;
    Opts.FilterUseless = false;
    Opts.CycleElimination = false;
    Opts.Dedup = Backend;
    BidirectionalSolver Fast(*Sys.CS, Opts);
    BidirectionalSolver::Status St = Fast.solve();
    ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);
    EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved);

    for (ConsId K : Sys.Constants)
      for (VarId V : Sys.Vars) {
        std::vector<AnnId> A = Fast.constantAnnotations(K, V);
        std::sort(A.begin(), A.end());
        EXPECT_EQ(A, Ref.constantAnnotations(K, V));
      }
  }
}

TEST_P(SolverDifferential, OnlineSolveMatchesFromScratch) {
  // Constraints appended after a solve() must be picked up by the next
  // solve() and land in the same least solution as solving everything
  // from scratch (and as the reference). The generator emits
  // projection constraints too, so the watcher-replay path in ingest
  // is exercised with a half-closed graph.
  Rng R(GetParam() ^ 0x0411e);
  RandomSystem Sys = randomSkeleton(R);
  unsigned FirstBatch = 2 + R.below(6);
  unsigned SecondBatch = 2 + R.below(6);

  SolverOptions Opts;
  Opts.FilterUseless = false;
  Opts.CycleElimination = false;

  addRandomConstraints(Sys, R, FirstBatch);
  BidirectionalSolver Online(*Sys.CS, Opts);
  ASSERT_NE(Online.solve(), BidirectionalSolver::Status::EdgeLimit);

  addRandomConstraints(Sys, R, SecondBatch);
  BidirectionalSolver::Status St = Online.solve();
  ASSERT_NE(St, BidirectionalSolver::Status::EdgeLimit);

  BidirectionalSolver Scratch(*Sys.CS, Opts);
  EXPECT_EQ(Scratch.solve(), St) << "seed " << GetParam();

  ReferenceSolver Ref(*Sys.CS);
  bool RefConsistent = Ref.solve();
  EXPECT_EQ(RefConsistent, St == BidirectionalSolver::Status::Solved)
      << "seed " << GetParam();

  for (ConsId K : Sys.Constants)
    for (VarId V : Sys.Vars) {
      std::vector<AnnId> A = Online.constantAnnotations(K, V);
      std::vector<AnnId> B = Scratch.constantAnnotations(K, V);
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      EXPECT_EQ(A, B) << "online vs scratch, seed " << GetParam();
      EXPECT_EQ(A, Ref.constantAnnotations(K, V))
          << "online vs reference, seed " << GetParam();
    }
}

TEST_P(SolverDifferential, AtomReachabilityIncludesTopLevel) {
  // Invariant: top-level constant annotations are a subset of the
  // PN-reachability annotations (the atom at nesting depth zero).
  Rng R(GetParam() ^ 0x5eed);
  RandomSystem Sys = randomSystem(R);
  BidirectionalSolver S(*Sys.CS);
  if (S.solve() == BidirectionalSolver::Status::EdgeLimit)
    GTEST_SKIP();
  for (ConsId K : Sys.Constants) {
    AtomReachability AR = S.atomReachability(K);
    for (VarId V : Sys.Vars) {
      const std::vector<AnnId> &All = AR.annotations(V);
      for (AnnId F : S.constantAnnotations(K, V))
        EXPECT_NE(std::find(All.begin(), All.end(), F), All.end())
            << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverDifferential,
                         ::testing::Range(uint64_t(1), uint64_t(60)));

} // namespace
