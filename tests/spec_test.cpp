//===- tests/spec_test.cpp - Specification language tests -------*- C++ -*-===//
//
// Part of the RASC project: regularly annotated set constraints.
//
//===----------------------------------------------------------------------===//

#include "automata/Monoid.h"
#include "spec/SpecParser.h"

#include <gtest/gtest.h>

using namespace rasc;

namespace {

// Figure 3, with the self-loops Figure 4's representative functions
// imply (irrelevant operations keep the state; Error absorbs).
const char *PrivilegeSpec = R"(
# Figure 3: Unix process privilege (simple model).
start state Unpriv :
  | seteuid_zero -> Priv
  | seteuid_nonzero -> Unpriv
  | execl -> Unpriv;

state Priv :
  | seteuid_zero -> Priv
  | seteuid_nonzero -> Unpriv
  | execl -> Error;

accept state Error :
  | seteuid_zero -> Error
  | seteuid_nonzero -> Error
  | execl -> Error;
)";

TEST(Spec, ParsesFigure3) {
  std::string Err;
  std::optional<SpecAutomaton> A = parseSpec(PrivilegeSpec, &Err);
  ASSERT_TRUE(A) << Err;

  const Dfa &M = A->machine();
  // Total as written: no dead state materialized.
  EXPECT_EQ(M.numStates(), 3u);
  EXPECT_EQ(M.numSymbols(), 3u);
  EXPECT_EQ(A->stateName(M.start()), "Unpriv");
  ASSERT_TRUE(A->stateByName("Error").has_value());
  EXPECT_TRUE(M.isAccepting(*A->stateByName("Error")));

  auto Sym = [&](const char *N) { return *M.symbol(N); };
  // The violating word: seteuid_zero execl.
  EXPECT_TRUE(M.accepts(Word{Sym("seteuid_zero"), Sym("execl")}));
  // Dropping privilege first avoids the error state.
  EXPECT_FALSE(M.accepts(
      Word{Sym("seteuid_zero"), Sym("seteuid_nonzero"), Sym("execl")}));
  // execl while unprivileged is harmless.
  EXPECT_FALSE(M.accepts(Word{Sym("execl")}));
}

TEST(Spec, Figure4RepresentativeFunctions) {
  // Figure 4 lists representative functions f_0 (seteuid_zero), f_1
  // (seteuid_nonzero), f_2 (execl) for the privilege model. Check
  // their action on the named states.
  std::string Err;
  std::optional<SpecAutomaton> A = parseSpec(PrivilegeSpec, &Err);
  ASSERT_TRUE(A) << Err;
  const Dfa &M = A->machine();
  TransitionMonoid Mon(M);

  StateId Unpriv = *A->stateByName("Unpriv");
  StateId Priv = *A->stateByName("Priv");
  StateId Error = *A->stateByName("Error");

  FnId F0 = Mon.symbolFn(*M.symbol("seteuid_zero"));
  FnId F1 = Mon.symbolFn(*M.symbol("seteuid_nonzero"));
  FnId F2 = Mon.symbolFn(*M.symbol("execl"));

  // Exactly Figure 4's f_0, f_1, f_2.
  EXPECT_EQ(Mon.apply(F0, Unpriv), Priv);
  EXPECT_EQ(Mon.apply(F0, Priv), Priv);
  EXPECT_EQ(Mon.apply(F1, Priv), Unpriv);
  EXPECT_EQ(Mon.apply(F1, Unpriv), Unpriv);
  EXPECT_EQ(Mon.apply(F2, Priv), Error);
  EXPECT_EQ(Mon.apply(F2, Error), Error);
  EXPECT_EQ(Mon.apply(F0, Error), Error);

  // Composition f_2 ∘ f_0 maps Unpriv to Error: the violation.
  FnId Viol = Mon.compose(F2, F0);
  EXPECT_EQ(Mon.apply(Viol, Unpriv), Error);
  EXPECT_TRUE(Mon.acceptingFromStart(Viol));
}

TEST(Spec, ParametricSymbols) {
  const char *FileSpec = R"(
# Figure 5: file state tracking with a parametric descriptor.
start accept state Closed :
  | open(x) -> Opened;

state Opened :
  | close(x) -> Closed;
)";
  std::string Err;
  std::optional<SpecAutomaton> A = parseSpec(FileSpec, &Err);
  ASSERT_TRUE(A) << Err;
  auto Open = A->machine().symbol("open");
  auto Close = A->machine().symbol("close");
  ASSERT_TRUE(Open && Close);
  EXPECT_TRUE(A->isParametric(*Open));
  EXPECT_TRUE(A->isParametric(*Close));
  ASSERT_EQ(A->symbols()[*Open].Params.size(), 1u);
  EXPECT_EQ(A->symbols()[*Open].Params[0], "x");
  // Balanced open/close accepted; unbalanced rejected.
  EXPECT_TRUE(A->machine().accepts(Word{*Open, *Close}));
  EXPECT_FALSE(A->machine().accepts(Word{*Open}));
  EXPECT_FALSE(A->machine().accepts(Word{*Open, *Open}));
}

TEST(Spec, ExtraSymbolsDeclaration) {
  const char *Text = R"(
symbols unused_a, unused_b;
start state S : | go -> T;
accept state T;
)";
  std::string Err;
  std::optional<SpecAutomaton> A = parseSpec(Text, &Err);
  ASSERT_TRUE(A) << Err;
  EXPECT_EQ(A->machine().numSymbols(), 3u);
  // Unused symbols lead to the dead state from everywhere.
  auto U = A->machine().symbol("unused_a");
  ASSERT_TRUE(U);
  EXPECT_FALSE(A->machine().accepts(Word{*U}));
}

TEST(Spec, Errors) {
  std::string Err;

  Err.clear();
  EXPECT_FALSE(parseSpec("state S;", &Err));
  EXPECT_NE(Err.find("start"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseSpec("start state S;", &Err));
  EXPECT_NE(Err.find("accept"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseSpec("start state S : | a -> Nowhere;", &Err));
  EXPECT_NE(Err.find("Nowhere"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(
      parseSpec("start accept state S : | a -> S | a -> S;", &Err));
  EXPECT_NE(Err.find("duplicate transition"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseSpec("start accept state S;\nstate S;", &Err));
  EXPECT_NE(Err.find("duplicate state"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseSpec(
      "start accept state S : | f(x) -> S | f -> S;", &Err));
  EXPECT_NE(Err.find("inconsistent parameters"), std::string::npos);

  Err.clear();
  EXPECT_FALSE(parseSpec("start state S :", &Err));
  EXPECT_FALSE(Err.empty());

  Err.clear();
  EXPECT_FALSE(parseSpec("", &Err));
  EXPECT_NE(Err.find("no states"), std::string::npos);
}

TEST(Spec, MultipleStartStatesRejected) {
  std::string Err;
  EXPECT_FALSE(parseSpec(
      "start state A;\nstart accept state B;", &Err));
  EXPECT_NE(Err.find("multiple start"), std::string::npos);
}

} // namespace
